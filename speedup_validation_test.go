package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// This file retires a ROADMAP open item: regenerate the paper's speedup
// curves from the *real* runtime — dist.ListenAndServe, real loopback
// sockets, real donor loops — and check them against the internal/figures
// (simnet) prediction for the same parameters. The figure benchmarks only
// exercise the simulator; this test pins the simulator to reality.

// spinAlg sleeps for the unit's declared cost so compute time is exactly
// cost * spinMsPerCost, the same analytic model (cost units / donor speed)
// the simulator uses — which is what makes real and simulated makespans
// comparable. Sleeping (not burning CPU) keeps N in-process donors
// "computing" concurrently on any machine, like N real lab PCs would.
type spinAlg struct{}

const spinMsPerCost = 2 * time.Millisecond

func (spinAlg) Init([]byte) error { return nil }

func (spinAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	cost := int64(payload[0])
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(time.Duration(cost) * spinMsPerCost):
	}
	return []byte{1}, nil
}

var registerSpinOnce sync.Once

// spinDM hands out `units` work units of identical cost.
type spinDM struct {
	units    int64
	unitCost int64
	seq      int64
	done     int64
}

func (d *spinDM) NextUnit(int64) (*dist.Unit, bool, error) {
	if d.seq >= d.units {
		return nil, false, nil
	}
	d.seq++
	return &dist.Unit{
		ID:        d.seq,
		Algorithm: "it/spin",
		Payload:   []byte{byte(d.unitCost)},
		Cost:      d.unitCost,
	}, true, nil
}

func (d *spinDM) Consume(int64, []byte) error  { d.done++; return nil }
func (d *spinDM) Done() bool                   { return d.done >= d.units }
func (d *spinDM) FinalResult() ([]byte, error) { return nil, nil }

// measureRealMakespan runs the synthetic workload on a real network server
// with n in-process donors attached over loopback Dial and returns the
// Submit-to-result wall time.
func measureRealMakespan(t *testing.T, n int, units, unitCost int64) time.Duration {
	t.Helper()
	srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		dist.WithPolicy(sched.Fixed{Size: unitCost}),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	pool := make([]*dist.Donor, n)
	for i := range pool {
		cl, err := dist.Dial(srv.RPCAddr(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		pool[i] = dist.NewDonor(cl, dist.WithName(fmt.Sprintf("spin-%d-%d", n, i)))
		wg.Add(1)
		go func(d *dist.Donor) { defer wg.Done(); _ = d.Run(context.Background()) }(pool[i])
	}
	defer func() {
		for _, d := range pool {
			d.Stop()
		}
		wg.Wait()
	}()

	start := time.Now()
	if err := srv.Submit(context.Background(), &dist.Problem{
		ID: fmt.Sprintf("spin-%d", n),
		DM: &spinDM{units: units, unitCost: unitCost},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(context.Background(), fmt.Sprintf("spin-%d", n)); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestRealRuntimeSpeedupMatchesFigures drives 1/2/4/8-donor pools through
// the full network stack on a synthetic equal-cost workload and demands
// the measured speedup curve stay within tolerance of the simnet curve
// internal/figures would predict for the same parameters (equal-speed
// donors, no owner load, same unit sizing). Guarded by -short: the n=1
// baseline alone is units*unitCost*spinMsPerCost of real wall time.
func TestRealRuntimeSpeedupMatchesFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runtime speedup curve skipped in -short mode")
	}
	registerSpinOnce.Do(func() {
		dist.RegisterAlgorithm("it/spin", func() dist.Algorithm { return spinAlg{} })
	})

	counts := []int{1, 2, 4, 8}
	const (
		units    = 48
		unitCost = 25 // per-unit compute: 25 * 2ms = 50ms
	)

	// The prediction: the same workload shape through the discrete-event
	// simulator the figure series is generated from. One simulated cost
	// unit is one simulated second; speedup ratios are scale-free, so the
	// differing time base does not matter — only the workload's shape and
	// the donor pool's uniformity do.
	predicted, err := simnet.SpeedupCurve(counts,
		func(n int) []simnet.DonorSpec {
			return simnet.Uniform(n, 1.0, 0, time.Millisecond, 0)
		},
		func() simnet.Workload {
			return simnet.NewDivisibleWorkload(units*unitCost, 1, 64)
		},
		simnet.Config{
			Policy:         sched.Fixed{Size: unitCost},
			ServerOverhead: time.Millisecond,
			Lease:          time.Hour,
			WaitHint:       50 * time.Millisecond,
			Seed:           7,
		})
	if err != nil {
		t.Fatal(err)
	}
	predBySize := make(map[int]float64, len(predicted))
	for _, p := range predicted {
		predBySize[p.Donors] = p.Speedup
	}

	base := measureRealMakespan(t, 1, units, unitCost)
	t.Logf("real runtime: 1 donor makespan %s (ideal %s)", base.Round(time.Millisecond),
		time.Duration(units*unitCost)*spinMsPerCost)
	for _, n := range counts[1:] {
		m := measureRealMakespan(t, n, units, unitCost)
		real := base.Seconds() / m.Seconds()
		pred := predBySize[n]
		t.Logf("real runtime: %d donors makespan %s, speedup %.2f (simnet predicts %.2f)",
			n, m.Round(time.Millisecond), real, pred)
		if pred == 0 {
			t.Fatalf("no simnet prediction for %d donors", n)
		}
		// 25% tolerance absorbs what separates a real deployment from the
		// simulator: RPC round trips, gob codecs, goroutine scheduling.
		// A broken dispatch path (serialized donors, lost wakeups, refused
		// parallelism) misses by far more — e.g. speedup 1.0 vs ~8.
		if ratio := real / pred; ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%d donors: measured speedup %.2f vs predicted %.2f (ratio %.2f outside [0.75, 1.25])",
				n, real, pred, ratio)
		}
	}
}
