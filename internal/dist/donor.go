package dist

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DonorOptions tunes one donor worker.
type DonorOptions struct {
	// Name identifies the donor in server statistics and logs.
	Name string
	// Throttle pauses between units so the donor stays a polite background
	// service on a machine someone else is using.
	Throttle time.Duration
	// Logf, when non-nil, receives progress and failure messages.
	Logf func(format string, args ...any)
}

// Donor is one worker's compute loop: poll the coordinator for units, run
// the registered algorithm, return results, and report failures so lost
// units are requeued. The paper ran one of these as a low-priority
// background service on ~200 lab PCs.
type Donor struct {
	coord Coordinator
	opts  DonorOptions

	stop     chan struct{}
	stopOnce sync.Once
	units    atomic.Int64

	// Per-problem algorithm instances, initialised once with the problem's
	// shared data (keyed by problemID + "\x00" + algorithm name).
	algs map[string]Algorithm
	// Per-problem shared blobs, fetched once.
	shared map[string][]byte
	// problemOrder tracks shared-blob insertion order so the cache can be
	// bounded: a donor is a long-lived service, and the server cycles
	// through many problems over its lifetime.
	problemOrder []string
}

// maxCachedProblems bounds how many problems' shared data and algorithm
// state a donor keeps resident. Oldest-first eviction; a still-active
// problem that gets evicted is simply re-fetched and re-initialised.
const maxCachedProblems = 8

// NewDonor creates a donor bound to a coordinator — a *Server for
// in-process workers or an *RPCClient from Dial for the real deployment.
func NewDonor(coord Coordinator, opts DonorOptions) *Donor {
	if opts.Name == "" {
		opts.Name = "donor"
	}
	return &Donor{
		coord:  coord,
		opts:   opts,
		stop:   make(chan struct{}),
		algs:   make(map[string]Algorithm),
		shared: make(map[string][]byte),
	}
}

// Units reports how many work units this donor has completed.
func (d *Donor) Units() int { return int(d.units.Load()) }

// Stop asks Run to return after the unit in progress (idempotent).
func (d *Donor) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// Run polls for work until Stop is called or the coordinator goes away.
// A unit that fails to compute is reported (and thereby requeued to another
// donor); only coordinator-level errors end the loop.
func (d *Donor) Run() error {
	for {
		select {
		case <-d.stop:
			return nil
		default:
		}
		task, wait, err := d.coord.RequestTask(d.opts.Name)
		if err != nil {
			if d.stopped() || errors.Is(err, ErrClosed) {
				return nil
			}
			if isTransient(err) {
				d.logf("donor %s: transient: %v", d.opts.Name, err)
				if !d.sleep(wait) {
					return nil
				}
				continue
			}
			return err
		}
		if task == nil {
			if !d.sleep(wait) {
				return nil
			}
			continue
		}
		out, elapsed, perr := d.process(task)
		if perr != nil {
			d.logf("donor %s: unit %d of %s failed: %v", d.opts.Name, task.Unit.ID, task.ProblemID, perr)
			report := d.coord.ReportFailure
			// A shared-data fetch failure is transport-level, not evidence
			// the unit is bad: route it past the poisoned-unit caps when
			// the coordinator can make the distinction.
			var sf *sharedFetchError
			if errors.As(perr, &sf) {
				if tr, ok := d.coord.(transportFailureReporter); ok {
					report = tr.reportTransportFailure
				}
			}
			if err := report(d.opts.Name, task.ProblemID, task.Unit.ID, perr.Error()); err != nil {
				if d.stopped() || errors.Is(err, ErrClosed) {
					return nil
				}
				return err
			}
			continue
		}
		err = d.coord.SubmitResult(&Result{
			ProblemID: task.ProblemID,
			UnitID:    task.Unit.ID,
			Payload:   out,
			Elapsed:   elapsed,
			Donor:     d.opts.Name,
		})
		if err != nil {
			if d.stopped() || errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		d.units.Add(1)
		if d.opts.Throttle > 0 {
			if !d.sleep(d.opts.Throttle) {
				return nil
			}
		}
	}
}

// process computes one unit, lazily creating and initialising the
// algorithm instance for (problem, algorithm name). elapsed covers only
// Process — the scheduler's throughput estimate must not absorb one-time
// shared-data fetch and Init cost, or a donor's first sample would make it
// look far slower than it is.
func (d *Donor) process(t *Task) (out []byte, elapsed time.Duration, err error) {
	defer func() {
		// A panicking Algorithm must not kill the donor loop: convert it to
		// a failure so the unit is requeued.
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("algorithm panicked: %v", r)
		}
	}()
	alg, err := d.algorithm(t.ProblemID, t.Unit.Algorithm)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	out, err = alg.Process(t.Unit.Payload)
	return out, time.Since(start), err
}

func (d *Donor) algorithm(problemID, name string) (Algorithm, error) {
	key := problemID + "\x00" + name
	if alg, ok := d.algs[key]; ok {
		return alg, nil
	}
	alg, err := newAlgorithm(name)
	if err != nil {
		return nil, err
	}
	shared, ok := d.shared[problemID]
	if !ok {
		var err error
		shared, err = d.coord.SharedData(problemID)
		if err != nil {
			return nil, &sharedFetchError{fmt.Errorf("fetching shared data: %w", err)}
		}
		if len(d.problemOrder) >= maxCachedProblems {
			d.evictProblem(d.problemOrder[0])
		}
		d.shared[problemID] = shared
		d.problemOrder = append(d.problemOrder, problemID)
	}
	if err := alg.Init(shared); err != nil {
		return nil, fmt.Errorf("initialising %s: %w", name, err)
	}
	d.algs[key] = alg
	return alg, nil
}

// evictProblem drops one problem's shared blob and algorithm instances.
func (d *Donor) evictProblem(problemID string) {
	delete(d.shared, problemID)
	for i, id := range d.problemOrder {
		if id == problemID {
			d.problemOrder = append(d.problemOrder[:i], d.problemOrder[i+1:]...)
			break
		}
	}
	prefix := problemID + "\x00"
	for key := range d.algs {
		if strings.HasPrefix(key, prefix) {
			delete(d.algs, key)
		}
	}
}

// sleep waits for at most wait, returning false if Stop fired first.
func (d *Donor) sleep(wait time.Duration) bool {
	if wait <= 0 {
		wait = time.Millisecond
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-d.stop:
		return false
	case <-t.C:
		return true
	}
}

func (d *Donor) stopped() bool {
	select {
	case <-d.stop:
		return true
	default:
		return false
	}
}

func (d *Donor) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// transientError wraps coordinator errors a donor should retry rather than
// exit on (e.g. a bulk payload fetch that failed after the unit was already
// reported lost to the server).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// sharedFetchError marks a failure to obtain a problem's shared blob.
type sharedFetchError struct{ err error }

func (e *sharedFetchError) Error() string { return e.err.Error() }
func (e *sharedFetchError) Unwrap() error { return e.err }

// transportFailureReporter is implemented by coordinators that distinguish
// payload-transport failures (which requeue without feeding the
// poisoned-unit caps) from compute failures.
type transportFailureReporter interface {
	reportTransportFailure(donor, problemID string, unitID int64, reason string) error
}
