package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// DonorOptions tunes one donor worker. Construct donors with functional
// options (WithName, WithThrottle, ...); the struct is the bag they mutate
// and can be adopted wholesale with WithDonorOptions.
type DonorOptions struct {
	// Name identifies the donor in server statistics and logs.
	Name string
	// Throttle pauses between units so the donor stays a polite background
	// service on a machine someone else is using.
	Throttle time.Duration
	// Logf, when non-nil, receives progress and failure messages.
	Logf func(format string, args ...any)
	// Redial, when non-nil, re-establishes the coordinator connection
	// after the server becomes unreachable (ErrServerGone): Run closes the
	// old coordinator and retries Redial with capped exponential backoff
	// until it succeeds or Stop is called. Without Redial the donor exits
	// cleanly when the server vanishes — the pre-reconnect behaviour,
	// still right for RunLocal-style in-process pools. An explicit server
	// Close (ErrClosed) always ends the loop; only lost connections are
	// retried.
	Redial func() (Coordinator, error)
	// RedialMin and RedialMax bound the exponential backoff between
	// redial attempts. Zero values default to 250ms and 30s.
	RedialMin, RedialMax time.Duration
	// CancelPoll is how often the donor polls the coordinator for cancel
	// notices while a unit is computing, so a server-side Forget aborts
	// the in-flight ProcessCtx instead of letting it finish doomed work.
	// Zero defaults to 500ms; negative disables the poll (cancellation is
	// then observed at unit boundaries only). Coordinators that do not
	// implement CancelNotifier are never polled.
	CancelPoll time.Duration
	// LongPollWait is the park duration the donor requests per WaitTask
	// long-poll when the coordinator supports one (see TaskWaiter): the
	// server holds the call until a unit is dispatchable or the park
	// expires, and the donor re-parks immediately on an empty reply — no
	// idle latency, no poll traffic. Zero defaults to 45s; negative
	// disables long-polling, restoring the jittered RequestTask poll loop
	// even against a capable server. Against a server that lacks the
	// capability the donor falls back to polling automatically.
	LongPollWait time.Duration
	// BlobCacheBytes budgets the donor's shared-blob cache (see BlobCache)
	// when BlobCache is nil. Zero defaults to 256 MiB; negative keeps only
	// the single most recently used blob. The budget also derives how many
	// problems' algorithm state stays resident (problemCacheCap).
	BlobCacheBytes int64
	// BlobCache, when non-nil, is the shared-blob cache this donor uses —
	// set the same instance on several in-process donors to share it, so a
	// blob every worker needs is fetched once per process. Nil gives the
	// donor a private cache of BlobCacheBytes.
	BlobCache *BlobCache
	// DispatchBatch caps how many units the donor asks for per WaitTask
	// long-poll when the coordinator supports batched dispatch
	// (TaskBatchWaiter). The actual request adapts to measured compute
	// time (see batchSize): a batch is only worth its load-balance cost
	// when units are so small that control round trips dominate, so the
	// donor asks for a tail of at most ~batchLatencyTarget of queued work
	// and a fleet on coarse units degrades to single-unit dispatch by
	// itself. The batch is drained locally before the donor re-parks,
	// amortizing one frame and one park wakeup across the units; the
	// server clamps the request to its own ServerOptions.DispatchBatch.
	// Zero defaults to 8; negative (or 1) keeps single-unit dispatch. Only
	// the long-poll path batches — the legacy poll loop stays single-unit.
	DispatchBatch int
	// WrapAlgorithm, when non-nil, interposes on every algorithm instance
	// the donor creates: it receives the registered name and the fresh
	// instance and returns the Algorithm actually run. The swarm harness
	// throttles simulated slow machines through it; metering and fault
	// injection fit the same seam. Returning the argument unchanged is
	// allowed; returning nil is not.
	WrapAlgorithm func(name string, a Algorithm) Algorithm
}

func (o *DonorOptions) applyDefaults() {
	if o.Name == "" {
		o.Name = "donor"
	}
	if o.RedialMin <= 0 {
		o.RedialMin = 250 * time.Millisecond
		// An explicit cap below the default floor wins: "-retry 100ms"
		// must mean backoff ≤ 100ms, not a silent raise to the floor.
		if o.RedialMax > 0 && o.RedialMax < o.RedialMin {
			o.RedialMin = o.RedialMax
		}
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 30 * time.Second
	}
	if o.RedialMax < o.RedialMin {
		o.RedialMax = o.RedialMin
	}
	if o.CancelPoll == 0 {
		o.CancelPoll = 500 * time.Millisecond
	}
	if o.LongPollWait == 0 {
		o.LongPollWait = 45 * time.Second
	}
	if o.DispatchBatch == 0 {
		o.DispatchBatch = 8
	}
	if o.BlobCacheBytes == 0 {
		o.BlobCacheBytes = defaultBlobCacheBytes
	}
	if o.BlobCache == nil {
		o.BlobCache = NewBlobCache(o.BlobCacheBytes)
	}
}

// defaultBlobCacheBytes is the default shared-blob cache budget.
const defaultBlobCacheBytes = 256 << 20

// problemBytesQuantum is the slice of blob-cache budget one resident
// problem's algorithm state is assumed to accompany; minCachedProblems
// floors the derived bound so even a tiny budget keeps the problem being
// computed (plus one being switched to) resident.
const (
	problemBytesQuantum = 32 << 20
	minCachedProblems   = 2
)

// problemCacheCap derives how many problems' shared data and algorithm
// state a donor keeps resident from its blob budget — one problem per
// problemBytesQuantum, floored. At the 256 MiB default this reproduces the
// pre-budget hardcoded bound of 8.
func (o *DonorOptions) problemCacheCap() int {
	c := int(o.BlobCacheBytes / problemBytesQuantum)
	if c < minCachedProblems {
		c = minCachedProblems
	}
	return c
}

// pollJitterFrac spreads each poll-wait uniformly ±20% around the server's
// hint, so hundreds of donors released by the same stage barrier do not
// thundering-herd RequestTask in lockstep forever after.
const pollJitterFrac = 0.2

// jitter returns d perturbed uniformly within ±pollJitterFrac.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f := 1 - pollJitterFrac + 2*pollJitterFrac*rand.Float64()
	return time.Duration(float64(d) * f)
}

// Donor is one worker's compute loop: poll the coordinator for units, run
// the registered algorithm, return results, and report failures so lost
// units are requeued. The paper ran one of these as a low-priority
// background service on ~200 lab PCs.
type Donor struct {
	coord Coordinator
	opts  DonorOptions

	stop     chan struct{}
	stopOnce sync.Once
	units    atomic.Int64
	aborted  atomic.Int64

	// Per-problem algorithm instances, initialised once with the problem's
	// shared data (keyed by problemID + "\x00" + algorithm name). The
	// shared bytes themselves live in opts.BlobCache, keyed by content
	// digest (or a per-incarnation pseudo-key against legacy servers).
	algs map[string]Algorithm
	// epochs records the incarnation tag each cached problem was fetched
	// under: a forgotten ID may be resubmitted with different shared data,
	// and serving the successor from the predecessor's cache would
	// silently corrupt results (the epoch on the result would be correct,
	// so the server could not catch it). A task whose epoch differs from
	// the cache's evicts and refetches.
	epochs map[string]int64
	// problemOrder tracks problem first-use order so resident algorithm
	// state stays bounded (problemCacheCap): a donor is a long-lived
	// service, and the server cycles through many problems over its
	// lifetime. Oldest-first eviction; a still-active problem that gets
	// evicted is simply re-initialised.
	problemOrder []string

	// unitEWMA tracks this donor's recent per-unit compute time
	// (exponential moving average), feeding batchSize's adaptive dispatch
	// sizing. Only Run's goroutine touches it.
	unitEWMA time.Duration

	// cancelMu guards cancelledIncs.
	cancelMu sync.Mutex
	// cancelledIncs records the problem incarnations cancel notices named
	// while the current batch drains. With batched dispatch a Forget can
	// arrive (via the watcher polling during unit 1) for units 2..N still
	// queued locally; checking this set before each pending unit drops
	// them without wasted compute. Cleared at every batch refill — stale
	// incarnations can never be re-dispatched, so old entries are dead
	// weight.
	//dist:guardedby cancelMu
	cancelledIncs map[string]struct{}
}

// incKey is the cancelledIncs map key for one problem incarnation.
func incKey(problemID string, epoch int64) string {
	return fmt.Sprintf("%s\x00%d", problemID, epoch)
}

// noteCancelled records cancel notices' problem incarnations.
func (d *Donor) noteCancelled(notices []CancelNotice) {
	if len(notices) == 0 {
		return
	}
	d.cancelMu.Lock()
	if d.cancelledIncs == nil {
		d.cancelledIncs = make(map[string]struct{})
	}
	for _, n := range notices {
		d.cancelledIncs[incKey(n.ProblemID, n.Epoch)] = struct{}{}
	}
	d.cancelMu.Unlock()
}

// incCancelled reports whether a cancel notice named this incarnation
// since the last batch refill.
func (d *Donor) incCancelled(problemID string, epoch int64) bool {
	d.cancelMu.Lock()
	defer d.cancelMu.Unlock()
	_, ok := d.cancelledIncs[incKey(problemID, epoch)]
	return ok
}

// resetCancelled clears the recorded incarnations (called before each
// batch fetch; notices only matter for units already in hand).
func (d *Donor) resetCancelled() {
	d.cancelMu.Lock()
	clear(d.cancelledIncs)
	d.cancelMu.Unlock()
}

// NewDonor creates a donor bound to a coordinator — a *Server for
// in-process workers or an *RPCClient from Dial for the real deployment.
// Configure WithRedial to make the donor a resilient background service
// that reconnects when the server bounces instead of exiting.
func NewDonor(coord Coordinator, opts ...DonorOption) *Donor {
	var o DonorOptions
	for _, opt := range opts {
		opt(&o)
	}
	o.applyDefaults()
	return &Donor{
		coord:  coord,
		opts:   o,
		stop:   make(chan struct{}),
		algs:   make(map[string]Algorithm),
		epochs: make(map[string]int64),
	}
}

// Units reports how many work units this donor has completed.
func (d *Donor) Units() int { return int(d.units.Load()) }

// Aborted reports how many in-flight units this donor abandoned on a
// server cancel notice (the problem was forgotten or finished early).
func (d *Donor) Aborted() int { return int(d.aborted.Load()) }

// Stop asks Run to return after the unit in progress (idempotent).
func (d *Donor) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// Run fetches and computes work until ctx is cancelled, Stop is called, or
// the server tells the donor it is shutting down (ErrClosed). Against a
// coordinator that supports long-poll dispatch (TaskWaiter; negotiated at
// Dial for networked donors) the loop parks in WaitTask between units and
// is woken the moment work appears; with batched dispatch (TaskBatchWaiter
// and DispatchBatch > 1) a park may return several units when measured
// compute times make batching worthwhile (see batchSize), which the
// loop drains before parking again; otherwise it polls RequestTask on the
// server's jittered wait hint. A unit that fails to
// compute is reported (and thereby requeued to another donor); a unit whose
// problem is forgotten mid-compute is aborted on the server's cancel notice
// and nothing is submitted for it. When the server merely becomes
// unreachable (ErrServerGone — a crash, a restart, a partition) and Redial
// is configured, Run reconnects with capped exponential backoff and keeps
// going; without Redial it exits cleanly, the pre-reconnect behaviour.
func (d *Donor) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() //dist:allow-background nil-ctx normalisation in a public entry point
	}
	// One context carries both stop signals: the caller's ctx and Stop().
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-d.stop:
			cancel()
		case <-stopWatch:
		}
	}()

	// pending holds the not-yet-computed tail of the last dispatch batch.
	// It is drained before the donor re-parks, and dropped on reconnect:
	// the old server's leases died with it, and a restarted server may
	// carry different work under the same unit IDs.
	var pending []*Task
	for {
		if runCtx.Err() != nil {
			return nil
		}
		if len(pending) == 0 {
			d.resetCancelled()
			var tasks []*Task
			var wait time.Duration
			var parked bool
			fetchStart := time.Now()
			err := d.call(runCtx, func() error {
				var err error
				tasks, wait, parked, err = d.nextTasks(runCtx)
				return err
			})
			if err != nil {
				if runCtx.Err() != nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrServerGone) {
					return nil
				}
				if isTransient(err) {
					d.logf("donor %s: transient: %v", d.opts.Name, err)
					if !d.sleep(runCtx, jitter(wait)) {
						return nil
					}
					continue
				}
				return err
			}
			if len(tasks) == 0 {
				if parked && wait <= 0 {
					// The long-poll park expired with nothing to hand out: the
					// server already did the waiting, so re-park immediately.
					// Unless it did no such thing — the hint rides the wire, so
					// a buggy or hostile server can answer "parked" instantly
					// with a zero hint forever; an empty reply that came back
					// faster than any real park gets the poll loop's sleep
					// floor instead of spinning the control channel hot.
					if time.Since(fetchStart) >= 5*time.Millisecond {
						continue
					}
					if !d.sleep(runCtx, time.Millisecond) {
						return nil
					}
					continue
				}
				if !d.sleep(runCtx, jitter(wait)) {
					return nil
				}
				continue
			}
			// Within one batch, urgent units run first: tasks echo their
			// problem's Submit-time priority, and the stable sort keeps the
			// server's dispatch order among equals.
			sort.SliceStable(tasks, func(i, j int) bool {
				return tasks[i].Priority > tasks[j].Priority
			})
			pending = tasks
		}
		task := pending[0]
		pending = pending[1:]
		if d.incCancelled(task.ProblemID, task.Epoch) {
			// A notice during an earlier unit of this batch already killed
			// the incarnation; its queued siblings die unstarted.
			d.aborted.Add(1)
			d.logf("donor %s: unit %d of %s cancelled by server; dropped before compute",
				d.opts.Name, task.Unit.ID, task.ProblemID)
			continue
		}
		out, elapsed, aborted, perr := d.process(runCtx, task)
		d.observeUnitTime(elapsed)
		if aborted {
			// The server cancelled this unit (Forget, early finish): no
			// result, no failure report — the lease is already discarded.
			d.aborted.Add(1)
			d.logf("donor %s: unit %d of %s cancelled by server; dropped mid-compute",
				d.opts.Name, task.Unit.ID, task.ProblemID)
			continue
		}
		if perr != nil {
			if runCtx.Err() != nil {
				return nil // shutting down; the lease will expire and reissue
			}
			d.logf("donor %s: unit %d of %s failed: %v", d.opts.Name, task.Unit.ID, task.ProblemID, perr)
			// A shared-data fetch failure is transport-level, not evidence
			// the unit is bad: route it past the poisoned-unit caps when
			// the coordinator can make the distinction. The tagged path
			// also carries the task's epoch so a straggler report can
			// never revoke a lease of a successor problem reusing the ID.
			var sf *sharedFetchError
			transport := errors.As(perr, &sf)
			var err error
			if tr, ok := d.coord.(taggedFailureReporter); ok {
				err = tr.reportTaggedFailure(runCtx, d.opts.Name, task.ProblemID, task.Unit.ID, perr.Error(), transport, task.Epoch)
			} else {
				err = d.coord.ReportFailure(runCtx, d.opts.Name, task.ProblemID, task.Unit.ID, perr.Error())
			}
			if gone, alive := d.handleGone(runCtx, err, "failure report for unit", task); gone {
				pending = nil // leases died with the connection; don't compute the batch tail
				if !alive {
					return nil
				}
				continue
			}
			if err != nil {
				if runCtx.Err() != nil || errors.Is(err, ErrClosed) {
					return nil
				}
				return err
			}
			continue
		}
		err := d.coord.SubmitResult(runCtx, &Result{
			ProblemID: task.ProblemID,
			UnitID:    task.Unit.ID,
			Payload:   out,
			Elapsed:   elapsed,
			Donor:     d.opts.Name,
			Epoch:     task.Epoch,
		})
		if gone, alive := d.handleGone(runCtx, err, "result of unit", task); gone {
			pending = nil // leases died with the connection; don't compute the batch tail
			if !alive {
				return nil
			}
			continue
		}
		if err != nil {
			if runCtx.Err() != nil || errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		d.units.Add(1)
		if d.opts.Throttle > 0 {
			if !d.sleep(runCtx, d.opts.Throttle) {
				return nil
			}
		}
	}
}

// batchLatencyTarget bounds the compute time a donor queues behind its
// current unit via batched dispatch: small enough that a batch tail never
// meaningfully delays redistribution to an idle donor, large enough to
// amortize many control round trips when units are tiny.
const batchLatencyTarget = 10 * time.Millisecond

// batchSize adaptively sizes the next dispatch request. Batching trades
// load balance for fewer control round trips, and that trade only pays
// when units are so small that the round trip dominates: a donor hoarding
// eight 50ms units serializes 400ms of work an idle neighbour could have
// shared. The request is therefore sized so the batch tail represents at
// most ~batchLatencyTarget of compute at this donor's measured per-unit
// time, capped by DispatchBatch. Before the first measurement the donor
// asks for a single unit — the conservative start costs one round trip
// and keeps a fresh fleet from carving an evenly divisible workload into
// lumpy batches.
func (d *Donor) batchSize() int {
	limit := d.opts.DispatchBatch
	if limit <= 1 || d.unitEWMA <= 0 {
		return 1
	}
	return min(1+int(batchLatencyTarget/d.unitEWMA), limit)
}

// observeUnitTime folds one unit's compute time into the donor's EWMA.
func (d *Donor) observeUnitTime(elapsed time.Duration) {
	if elapsed <= 0 {
		return
	}
	if d.unitEWMA == 0 {
		d.unitEWMA = elapsed
		return
	}
	d.unitEWMA += (elapsed - d.unitEWMA) * 3 / 10
}

// nextTasks fetches the donor's next batch of units: a batched WaitTask
// long-poll when the coordinator supports it and batchSize asks for
// more than one unit, a single-unit WaitTask park when it only supports
// that, and the classic RequestTask poll otherwise. parked reports that a
// long-poll path was used — only then may an empty reply with a zero hint
// mean "re-park immediately" (and Run still floors replies that came back
// too fast to have parked); a foreign Coordinator returning a zero hint
// from RequestTask always gets the sleep floor.
func (d *Donor) nextTasks(ctx context.Context) (tasks []*Task, wait time.Duration, parked bool, err error) {
	if d.opts.LongPollWait > 0 {
		if batch := d.batchSize(); batch > 1 {
			if tbw, ok := d.coord.(TaskBatchWaiter); ok {
				tasks, wait, err = tbw.WaitTasks(ctx, d.opts.Name, d.opts.LongPollWait, batch)
				return tasks, wait, true, err
			}
		}
		if tw, ok := d.coord.(TaskWaiter); ok {
			task, wait, err := tw.WaitTask(ctx, d.opts.Name, d.opts.LongPollWait)
			return taskSlice(task), wait, true, err
		}
	}
	task, wait, err := d.coord.RequestTask(ctx, d.opts.Name)
	return taskSlice(task), wait, false, err
}

// taskSlice lifts a single dispatch into batch shape.
func taskSlice(t *Task) []*Task {
	if t == nil {
		return nil
	}
	return []*Task{t}
}

// call runs one coordinator operation, transparently redialing and
// retrying while the server is unreachable. Only use it for operations
// that are safe to replay against a *different* server instance —
// RequestTask is (it merely asks the current server for work). Results
// and failure reports are NOT replayed after a reconnect: a restarted
// server may carry a resubmitted problem under the same ID whose unit IDs
// cover different ranges, and a stale replayed payload would be silently
// folded into the wrong unit (see handleGone). call returns ErrServerGone
// only when redialing is not configured or ctx was cancelled mid-backoff.
func (d *Donor) call(ctx context.Context, op func() error) error {
	for {
		err := op()
		if err == nil || !errors.Is(err, ErrServerGone) {
			return err
		}
		if d.opts.Redial == nil || !d.reconnect(ctx) {
			return err
		}
	}
}

// handleGone deals with a result/failure-report delivery that died with
// the server connection. The pending message is dropped, never replayed:
// the reconnected server may be a different instance carrying a
// resubmitted problem whose unit IDs mean different work, so replaying a
// stale payload could be silently consumed as the wrong unit. Dropping is
// always safe — the old server's lease expires and the unit reissues.
// gone reports whether err was a lost-connection error; alive is false
// when the donor should exit (no Redial configured, or the run context was
// cancelled / Stop fired during backoff).
func (d *Donor) handleGone(ctx context.Context, err error, what string, task *Task) (gone, alive bool) {
	if err == nil || !errors.Is(err, ErrServerGone) {
		return false, true
	}
	if d.opts.Redial == nil {
		return true, false
	}
	d.logf("donor %s: %s %d of %s lost with the server connection (a lease expiry will reissue it)",
		d.opts.Name, what, task.Unit.ID, task.ProblemID)
	return true, d.reconnect(ctx)
}

// reconnect closes the dead coordinator and redials — immediately at
// first (a rolling restart may already be back up), then with exponential
// backoff between RedialMin and RedialMax — until a dial succeeds or the
// donor is stopped (returning false). Problem caches are cleared on
// success: a restarted server may resubmit an ID with different shared
// data, and a stale Init would silently corrupt results.
func (d *Donor) reconnect(ctx context.Context) bool {
	if c, ok := d.coord.(io.Closer); ok {
		_ = c.Close()
	}
	backoff := d.opts.RedialMin
	for attempt := 1; ; attempt++ {
		if d.stopped() || ctxErr(ctx) != nil {
			return false
		}
		coord, err := d.opts.Redial()
		if err == nil {
			d.logf("donor %s: reconnected to server (attempt %d)", d.opts.Name, attempt)
			d.coord = coord
			d.algs = make(map[string]Algorithm)
			d.epochs = make(map[string]int64)
			d.problemOrder = nil
			// Digest-keyed blobs are content-addressed and survive the
			// reconnect; legacy per-incarnation entries do not — a restarted
			// server reuses epochs from 1, so their keys could collide with
			// different bytes.
			d.opts.BlobCache.dropNonContent()
			return true
		}
		d.logf("donor %s: server unreachable, retrying in %s (attempt %d): %v",
			d.opts.Name, backoff, attempt, err)
		if !d.sleep(ctx, jitter(backoff)) {
			return false
		}
		backoff *= 2
		if backoff > d.opts.RedialMax {
			backoff = d.opts.RedialMax
		}
	}
}

// process computes one unit, lazily creating and initialising the
// algorithm instance for (problem, algorithm name). While ProcessCtx runs,
// a watcher goroutine polls the coordinator for cancel notices; a notice
// matching the task's problem incarnation cancels the unit's context, and
// process reports aborted=true so the loop drops the unit without
// submitting anything. elapsed covers only ProcessCtx — the scheduler's
// throughput estimate must not absorb one-time shared-data fetch and Init
// cost, or a donor's first sample would make it look far slower than it
// is.
func (d *Donor) process(ctx context.Context, t *Task) (out []byte, elapsed time.Duration, aborted bool, err error) {
	defer func() {
		// A panicking Algorithm must not kill the donor loop: convert it to
		// a failure so the unit is requeued.
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("algorithm panicked: %v", r)
		}
	}()
	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var cancelled atomic.Bool
	if cn, ok := d.coord.(CancelNotifier); ok && d.opts.CancelPoll > 0 {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go d.watchCancels(unitCtx, watchDone, cn, t, &cancelled, cancel)
	}
	alg, err := d.algorithm(unitCtx, t)
	if err != nil {
		return nil, 0, cancelled.Load(), err
	}
	start := time.Now()
	out, err = alg.ProcessCtx(unitCtx, t.Unit.Payload)
	if cancelled.Load() {
		// Whether ProcessCtx aborted with the context error or raced to a
		// completed result, the unit is dead server-side; drop everything.
		return nil, 0, true, nil
	}
	return out, time.Since(start), false, err
}

// watchCancels polls the coordinator for cancel notices until the unit
// finishes, cancelling the unit's context when a notice matches its
// problem incarnation. Notices for other incarnations (or problems this
// donor no longer computes) are discarded — their leases are already gone
// server-side.
func (d *Donor) watchCancels(ctx context.Context, done <-chan struct{}, cn CancelNotifier, t *Task, cancelled *atomic.Bool, cancel context.CancelFunc) {
	ticker := time.NewTicker(jitter(d.opts.CancelPoll))
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			notices, err := cn.CancelNotices(ctx, d.opts.Name)
			if err != nil {
				continue // transport hiccup; the next tick retries
			}
			// Record every named incarnation — with batched dispatch the
			// notices may cover units still queued locally, and the drain
			// loop checks the set before starting each one.
			d.noteCancelled(notices)
			if d.incCancelled(t.ProblemID, t.Epoch) {
				cancelled.Store(true)
				cancel()
				return
			}
		}
	}
}

// algorithm returns the cached (problem, algorithm) instance, fetching
// shared data and running Init on first use. The task's epoch is its
// incarnation tag: a mismatch with the cache means the problem ID was
// forgotten and reused — possibly with different shared data — so the
// stale entry is evicted and refetched. Epoch zero (a server predating
// the tag) disables the check.
func (d *Donor) algorithm(ctx context.Context, t *Task) (Algorithm, error) {
	problemID, name := t.ProblemID, t.Unit.Algorithm
	if t.Epoch != 0 {
		if cached, ok := d.epochs[problemID]; ok && cached != t.Epoch {
			d.evictProblem(problemID)
		}
	}
	key := problemID + "\x00" + name
	if alg, ok := d.algs[key]; ok {
		return alg, nil
	}
	alg, err := newAlgorithm(name)
	if err != nil {
		return nil, err
	}
	if d.opts.WrapAlgorithm != nil {
		alg = d.opts.WrapAlgorithm(name, alg)
	}
	shared, err := d.sharedBlob(ctx, t)
	if err != nil {
		return nil, &sharedFetchError{fmt.Errorf("fetching shared data: %w", err)}
	}
	if _, tracked := d.epochs[problemID]; !tracked {
		if len(d.problemOrder) >= d.opts.problemCacheCap() {
			d.evictProblem(d.problemOrder[0])
		}
		d.epochs[problemID] = t.Epoch
		d.problemOrder = append(d.problemOrder, problemID)
	}
	if err := alg.Init(shared); err != nil {
		return nil, fmt.Errorf("initialising %s: %w", name, err)
	}
	d.algs[key] = alg
	return alg, nil
}

// sharedBlob returns the task's shared data through the blob cache.
//
// With a content digest on the task, the cache key is the digest itself:
// every problem sharing the bytes hits one entry, an epoch-bumped
// resubmission with different bytes carries a different digest (so stale
// bytes are unreachable by construction), and the fetched blob is verified
// against the digest before use whichever path delivered it — a mismatch
// is a transport-level failure (wire.ErrDigestMismatch) that requeues the
// unit without feeding the poisoned-unit caps. Without a digest (a legacy
// or content-disabled server) the key is a per-incarnation pseudo-key and
// the bytes are trusted as fetched, the pre-content behaviour.
func (d *Donor) sharedBlob(ctx context.Context, t *Task) ([]byte, error) {
	digest := t.SharedDigest
	if digest == "" {
		key := fmt.Sprintf("problem\x00%s\x00%d", t.ProblemID, t.Epoch)
		return d.opts.BlobCache.Get(ctx, key, func(ctx context.Context) ([]byte, error) {
			return d.coord.SharedData(ctx, t.ProblemID)
		})
	}
	return d.opts.BlobCache.Get(ctx, digest, func(ctx context.Context) ([]byte, error) {
		var data []byte
		var err error
		if cf, ok := d.coord.(ContentFetcher); ok {
			data, err = cf.FetchContent(ctx, t.ProblemID, digest)
		} else {
			data, err = d.coord.SharedData(ctx, t.ProblemID)
		}
		if err != nil {
			return nil, err
		}
		if got := wire.Digest(data); got != digest {
			return nil, fmt.Errorf("%w: shared blob of %s: fetched %d bytes hashing to %s, task says %s",
				wire.ErrDigestMismatch, t.ProblemID, len(data), got, digest)
		}
		return data, nil
	})
}

// evictProblem drops one problem's resident state: its algorithm
// instances, its incarnation tag, and — for legacy per-incarnation cache
// entries — its shared blob. A digest-keyed blob is left to the cache's
// own LRU: it may be serving other problems that share the bytes.
func (d *Donor) evictProblem(problemID string) {
	if epoch, ok := d.epochs[problemID]; ok {
		d.opts.BlobCache.drop(fmt.Sprintf("problem\x00%s\x00%d", problemID, epoch))
	}
	delete(d.epochs, problemID)
	for i, id := range d.problemOrder {
		if id == problemID {
			d.problemOrder = append(d.problemOrder[:i], d.problemOrder[i+1:]...)
			break
		}
	}
	prefix := problemID + "\x00"
	for key := range d.algs {
		if strings.HasPrefix(key, prefix) {
			delete(d.algs, key)
		}
	}
}

// sleep waits for at most wait, returning false if ctx was cancelled or
// Stop fired first.
func (d *Donor) sleep(ctx context.Context, wait time.Duration) bool {
	if wait <= 0 {
		wait = time.Millisecond
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-d.stop:
		return false
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

func (d *Donor) stopped() bool {
	select {
	case <-d.stop:
		return true
	default:
		return false
	}
}

func (d *Donor) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// transientError wraps coordinator errors a donor should retry rather than
// exit on (e.g. a bulk payload fetch that failed after the unit was already
// reported lost to the server).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// sharedFetchError marks a failure to obtain a problem's shared blob.
type sharedFetchError struct{ err error }

func (e *sharedFetchError) Error() string { return e.err.Error() }
func (e *sharedFetchError) Unwrap() error { return e.err }

// taggedFailureReporter is implemented by coordinators that accept the
// full failure context Coordinator.ReportFailure cannot carry: transport
// marks payload-fetch failures (requeued without feeding the
// poisoned-unit caps), and epoch is the failed task's incarnation tag (a
// mismatched straggler report from a forgotten problem ID is dropped
// instead of revoking the successor's lease). *Server and *RPCClient both
// implement it; foreign Coordinators fall back to plain ReportFailure.
type taggedFailureReporter interface {
	reportTaggedFailure(ctx context.Context, donor, problemID string, unitID int64, reason string, transport bool, epoch int64) error
}
