package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/sched"
)

// RunLocal executes one problem to completion with n in-process workers —
// the zero-configuration deployment shape for tests and single-machine
// runs. The full coordinator drives it (scheduling policy budgets, leases,
// failure requeue), so results are identical to the networked deployment.
//
// Cancelling ctx abandons the run: the problem is forgotten, which
// propagates cancel notices to the workers so in-flight ProcessCtx calls
// abort promptly, and ctx's error is returned.
func RunLocal(ctx context.Context, p *Problem, n int, policy sched.Policy) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background() //dist:allow-background nil-ctx normalisation in a public entry point
	}
	if n < 1 {
		n = 1
	}
	srv := NewServer(
		WithPolicy(policy),
		// In-process workers cannot vanish, so leases only matter for the
		// failure-requeue path, which reports explicitly.
		WithLeaseTTL(time.Hour),
		WithExpiryScan(time.Hour),
		WithWaitHint(time.Millisecond),
		// The problem's state is evicted as soon as Wait delivers the
		// result below — the Submit → Wait → Forget lifecycle in one call.
		WithAutoForget(true),
	)
	defer srv.Close()
	if err := srv.Submit(ctx, p); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	donors := make([]*Donor, n)
	// One blob cache for the whole pool: the workers singleflight their
	// shared-data fetch instead of each taking its own copy.
	blobs := NewBlobCache(defaultBlobCacheBytes)
	for i := range donors {
		donors[i] = NewDonor(srv,
			WithName(fmt.Sprintf("local-%d", i)),
			// In-process notice delivery is cheap; poll fast so a
			// cancelled ctx stops worker compute almost immediately.
			WithCancelPoll(2*time.Millisecond),
			WithBlobCache(blobs),
		)
		wg.Add(1)
		go func(d *Donor) {
			defer wg.Done()
			_ = d.Run(ctx)
		}(donors[i])
	}
	out, err := srv.Wait(ctx, p.ID)
	if err != nil && ctxErr(ctx) != nil {
		// Abandoned run: evict the problem so the cancel notices reach the
		// workers before they are stopped below.
		_ = srv.Forget(p.ID)
	}
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	return out, err
}
