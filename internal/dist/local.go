package dist

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sched"
)

// RunLocal executes one problem to completion with n in-process workers —
// the zero-configuration deployment shape for tests and single-machine
// runs. The full coordinator drives it (scheduling policy budgets, leases,
// failure requeue), so results are identical to the networked deployment.
func RunLocal(p *Problem, n int, policy sched.Policy) ([]byte, error) {
	if n < 1 {
		n = 1
	}
	srv := NewServer(ServerOptions{
		Policy: policy,
		// In-process workers cannot vanish, so leases only matter for the
		// failure-requeue path, which reports explicitly.
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
		// The problem's state is evicted as soon as Wait delivers the
		// result below — the Submit → Wait → Forget lifecycle in one call.
		AutoForget: true,
	})
	defer srv.Close()
	if err := srv.Submit(p); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	donors := make([]*Donor, n)
	for i := range donors {
		donors[i] = NewDonor(srv, DonorOptions{Name: fmt.Sprintf("local-%d", i)})
		wg.Add(1)
		go func(d *Donor) {
			defer wg.Done()
			_ = d.Run()
		}(donors[i])
	}
	out, err := srv.Wait(p.ID)
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	return out, err
}
