package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
)

// Typed adapters: the v2 programming model. Applications implement
// TypedDM[U, R] (server side) and TypedAlgorithm[S, U, R] (donor side) in
// terms of their own payload structs; AdaptDM/AdaptAlgorithm own the gob
// marshal/unmarshal at the byte boundary, so no application code touches
// []byte codecs. S is the shared-data type, U the unit-payload type, R the
// unit-result type.

// Marshal gob-encodes a unit payload, shared blob or result. Applications
// should prefer the typed adapters (TypedDM, TypedAlgorithm) or the generic
// Encode/Decode pair; Marshal remains for the byte-level interfaces.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: marshal %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes data produced by Marshal (or Encode).
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("dist: unmarshal %T: %w", v, err)
	}
	return nil
}

// MustMarshal is Marshal for values that cannot fail (tests, literals).
func MustMarshal(v any) []byte {
	data, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// Encode gob-encodes a typed value — the typed successor of Marshal.
func Encode[T any](v T) ([]byte, error) { return Marshal(v) }

// Decode gob-decodes data produced by Encode (or Marshal) into a T.
func Decode[T any](data []byte) (T, error) {
	var v T
	if err := Unmarshal(data, &v); err != nil {
		return v, err
	}
	return v, nil
}

// MustEncode is Encode for values that cannot fail (tests, literals).
func MustEncode[T any](v T) []byte { return MustMarshal(v) }

// NoShared marks a problem without shared data: use it as the S parameter
// of TypedAlgorithm and pass NoShared{} to NewTypedProblem, which then
// leaves Problem.SharedData nil.
type NoShared = struct{}

// UnitOf is a work unit whose payload is still typed — what a TypedDM hands
// out before the adapter encodes it into a wire Unit.
type UnitOf[U any] struct {
	// ID is unique within the problem.
	ID int64
	// Algorithm names the registered donor-side computation.
	Algorithm string
	// Payload is the unit's typed input.
	Payload U
	// Cost is the unit's size in the problem's cost units.
	Cost int64
}

// TypedDM is the typed server-side extension point: units carry U payloads
// and come back as R results. Wrap implementations with AdaptDM (or
// NewTypedProblem) to obtain the byte-level DataManager the server drives.
// The optional extensions (CostReporter, Progresser, Requeuer) are probed
// on the implementation and forwarded by the adapter.
//
// As with DataManager, the server serialises all calls per problem, so
// implementations need no internal locking.
type TypedDM[U, R any] interface {
	// NextUnit returns the next typed work unit, sized to approximately
	// the given cost budget; ok is false at a stage barrier or when the
	// problem is complete.
	NextUnit(budget int64) (u *UnitOf[U], ok bool, err error)
	// Consume folds one completed unit's typed result.
	Consume(unitID int64, res R) error
	// Done reports whether the final result is ready.
	Done() bool
	// FinalResult returns the completed problem's output. Its concrete
	// type is the application's choice (often distinct from R); the
	// adapter gob-encodes it, and callers decode with Decode[F].
	FinalResult() (any, error)
}

// AdaptDM wraps a typed DataManager as a byte-level one, owning the gob
// codec for unit payloads, unit results and the final result. The optional
// CostReporter/Progresser/Requeuer extensions are forwarded when the typed
// implementation provides them.
func AdaptDM[U, R any](impl TypedDM[U, R]) DataManager {
	base := typedDM[U, R]{impl: impl}
	if _, ok := impl.(Requeuer); ok {
		// Requeuer changes server behaviour (regenerate vs re-dispatch
		// cached payload), so the adapter exposes it only when the typed
		// implementation actually has it.
		return &typedRequeueDM[U, R]{base}
	}
	return &base
}

type typedDM[U, R any] struct{ impl TypedDM[U, R] }

var (
	_ DataManager  = (*typedDM[int, int])(nil)
	_ CostReporter = (*typedDM[int, int])(nil)
	_ Progresser   = (*typedDM[int, int])(nil)
	_ DurableDM    = (*typedDM[int, int])(nil)
	_ Requeuer     = (*typedRequeueDM[int, int])(nil)
)

func (a *typedDM[U, R]) NextUnit(budget int64) (*Unit, bool, error) {
	u, ok, err := a.impl.NextUnit(budget)
	if err != nil || !ok {
		return nil, false, err
	}
	if u == nil {
		return nil, false, fmt.Errorf("dist: typed DataManager %T returned ok with a nil unit", a.impl)
	}
	payload, err := Encode(u.Payload)
	if err != nil {
		return nil, false, err
	}
	return &Unit{ID: u.ID, Algorithm: u.Algorithm, Payload: payload, Cost: u.Cost}, true, nil
}

func (a *typedDM[U, R]) Consume(unitID int64, payload []byte) error {
	res, err := Decode[R](payload)
	if err != nil {
		return err
	}
	return a.impl.Consume(unitID, res)
}

func (a *typedDM[U, R]) Done() bool { return a.impl.Done() }

func (a *typedDM[U, R]) FinalResult() ([]byte, error) {
	v, err := a.impl.FinalResult()
	if err != nil {
		return nil, err
	}
	return Marshal(v)
}

// RemainingCost forwards to the typed implementation; without the
// extension it reports 0, the same "unknown" value the server assumes for
// a DataManager that does not implement CostReporter.
func (a *typedDM[U, R]) RemainingCost() int64 {
	if cr, ok := a.impl.(CostReporter); ok {
		return cr.RemainingCost()
	}
	return 0
}

// Progress forwards to the typed implementation (zeros without it, the
// same as a DataManager that does not implement Progresser).
func (a *typedDM[U, R]) Progress() (done, total int) {
	if p, ok := a.impl.(Progresser); ok {
		return p.Progress()
	}
	return 0, 0
}

// DurableKind forwards to the typed implementation; without the extension
// it reports "", the same "not durable" value the server assumes for a
// DataManager that does not implement DurableDM.
func (a *typedDM[U, R]) DurableKind() string {
	if d, ok := a.impl.(DurableDM); ok {
		return d.DurableKind()
	}
	return ""
}

// MarshalState forwards to the typed implementation.
func (a *typedDM[U, R]) MarshalState() ([]byte, error) {
	if d, ok := a.impl.(DurableDM); ok {
		return d.MarshalState()
	}
	return nil, fmt.Errorf("dist: typed DataManager %T does not implement DurableDM", a.impl)
}

type typedRequeueDM[U, R any] struct{ typedDM[U, R] }

func (a *typedRequeueDM[U, R]) Requeue(unitID int64) { a.impl.(Requeuer).Requeue(unitID) }

// NewTypedProblem assembles a Problem from a typed DataManager and typed
// shared data, encoding the shared blob at the boundary. Instantiate the
// unit types explicitly and let shared's type be inferred:
//
//	p, err := dist.NewTypedProblem[unitPayload, resultPayload](id, dm, sharedData{...})
//
// Pass NoShared{} for problems without shared data; SharedData then stays
// nil and the donor-side Init receives the zero S.
func NewTypedProblem[U, R, S any](id string, dm TypedDM[U, R], shared S) (*Problem, error) {
	p := &Problem{ID: id, DM: AdaptDM(dm)}
	if _, none := any(shared).(NoShared); !none {
		blob, err := Encode(shared)
		if err != nil {
			return nil, err
		}
		p.SharedData = blob
	}
	return p, nil
}

// TypedAlgorithm is the typed donor-side extension point: Init receives the
// problem's decoded shared data, ProcessCtx one decoded unit. ProcessCtx
// must honour ctx — it is cancelled when the server forgets the problem
// mid-unit or the donor shuts down, and an aborted unit should return
// ctx.Err() promptly instead of finishing doomed work.
type TypedAlgorithm[S, U, R any] interface {
	Init(shared S) error
	ProcessCtx(ctx context.Context, unit U) (R, error)
}

// AdaptAlgorithm wraps a typed algorithm as a byte-level one, owning the
// gob codec for shared data, unit payloads and results. An empty shared
// blob (a problem submitted with no shared data) decodes to the zero S.
func AdaptAlgorithm[S, U, R any](impl TypedAlgorithm[S, U, R]) Algorithm {
	return &typedAlgorithm[S, U, R]{impl: impl}
}

type typedAlgorithm[S, U, R any] struct{ impl TypedAlgorithm[S, U, R] }

var _ Algorithm = (*typedAlgorithm[int, int, int])(nil)

func (a *typedAlgorithm[S, U, R]) Init(shared []byte) error {
	var s S
	if len(shared) > 0 {
		var err error
		if s, err = Decode[S](shared); err != nil {
			return err
		}
	}
	return a.impl.Init(s)
}

func (a *typedAlgorithm[S, U, R]) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	u, err := Decode[U](payload)
	if err != nil {
		return nil, err
	}
	res, err := a.impl.ProcessCtx(ctx, u)
	if err != nil {
		return nil, err
	}
	return Encode(res)
}

// RegisterTypedAlgorithm registers a typed algorithm factory under name,
// adapting each instance with AdaptAlgorithm:
//
//	dist.RegisterTypedAlgorithm(name, func() dist.TypedAlgorithm[shared, unit, result] {
//		return &Algorithm{}
//	})
func RegisterTypedAlgorithm[S, U, R any](name string, f func() TypedAlgorithm[S, U, R]) {
	if f == nil {
		panic("dist: RegisterTypedAlgorithm with nil factory")
	}
	RegisterAlgorithm(name, func() Algorithm { return AdaptAlgorithm(f()) })
}
