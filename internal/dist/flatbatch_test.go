package dist

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

// TestFlatEnvelopeRoundTrip pins the frozen field order of every flat
// envelope: a fully populated value must decode back DeepEqual. A field
// added to an envelope without extending its Marshal/UnmarshalFlat pair
// shows up here as a mismatch.
func TestFlatEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   wire.FlatMarshaler
		out  wire.FlatUnmarshaler
	}{
		{"TaskArgs", TaskArgs{Donor: "d-1"}, &TaskArgs{}},
		{"WaitTaskArgs", WaitTaskArgs{Donor: "d-1", MaxWaitNs: int64(45 * time.Second), MaxBatch: 8}, &WaitTaskArgs{}},
		{"TaskReply", TaskReply{
			HasTask:      true,
			ProblemID:    "p-1",
			Unit:         Unit{ID: 7, Algorithm: "sum/v1", Payload: []byte("range"), Cost: 3},
			BulkKey:      "p-1/7",
			WaitHintNs:   int64(time.Millisecond),
			Epoch:        2,
			SharedDigest: "sha256:aa",
			Batch: []BatchTask{
				{ProblemID: "p-1", Unit: Unit{ID: 8, Algorithm: "sum/v1", Payload: []byte("next"), Cost: 1}, Epoch: 2, SharedDigest: "sha256:aa"},
				{ProblemID: "p-1", Unit: Unit{ID: 9, Algorithm: "sum/v1", Cost: 1}, BulkKey: "p-1/9", Epoch: 2},
			},
		}, &TaskReply{}},
		{"TaskReply/empty", TaskReply{WaitHintNs: 5}, &TaskReply{}},
		{"ResultArgs", ResultArgs{Donor: "d-1", ProblemID: "p-1", UnitID: 7, Payload: []byte("out"), ElapsedNs: 12345, Epoch: 2}, &ResultArgs{}},
		{"FailureArgs", FailureArgs{Donor: "d-1", ProblemID: "p-1", UnitID: 7, Reason: "injected", Transport: true, Epoch: 2}, &FailureArgs{}},
		{"CancelArgs", CancelArgs{Donor: "d-1"}, &CancelArgs{}},
		{"CancelReply", CancelReply{Notices: []CancelNotice{
			{ProblemID: "p-1", Epoch: 2, UnitID: 7},
			{ProblemID: "p-2", Epoch: 1, UnitID: -1},
		}}, &CancelReply{}},
		{"HandshakeReply", HandshakeReply{BulkAddr: "127.0.0.1:7071", Caps: []string{wire.CapWaitTask, wire.CapFlatCodec}}, &HandshakeReply{}},
		{"Empty", Empty{}, &Empty{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			frame := wire.MarshalFlatMessage(c.in)
			d := wire.NewDecoder(frame)
			c.out.UnmarshalFlat(d)
			if err := d.Err(); err != nil {
				t.Fatalf("decode: %v", err)
			}
			got := reflect.ValueOf(c.out).Elem().Interface()
			if !reflect.DeepEqual(got, c.in) {
				t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, c.in)
			}
		})
	}
}

// drainEcho submits one echo problem, runs the given client under a donor
// until the problem completes, and checks the echoed shared blob.
func drainEcho(t *testing.T, srv *NetworkServer, cl *RPCClient, id string, units int, shared []byte) {
	t.Helper()
	if err := srv.Submit(bg, &Problem{ID: id, DM: newEchoDM(units), SharedData: shared}); err != nil {
		t.Fatal(err)
	}
	d := newTestDonor(cl, DonorOptions{Name: id + "-donor", Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	out, err := srv.Wait(bg, id)
	d.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, shared) {
		t.Errorf("echoed result = %q, want the shared blob (%d bytes)", out, len(shared))
	}
}

// TestFlatCodecNegotiated: a default server and a default Dial settle on
// the flat codec, and the upgraded connection drains a real problem.
func TestFlatCodecNegotiated(t *testing.T) {
	registerEcho(t)
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.Supports(wire.CapFlatCodec) {
		t.Fatal("server did not advertise CapFlatCodec")
	}
	if !cl.flat {
		t.Fatal("client did not upgrade to the flat codec")
	}
	drainEcho(t, srv, cl, "flat-neg", 6, []byte("flat codec blob"))
}

// TestFlatDonorGobOnlyServer: a flat-capable donor against a server with
// the flat codec disabled must stay on gob and still drain — the mixed
// fleet degrades per connection via the missing capability token.
func TestFlatDonorGobOnlyServer(t *testing.T) {
	registerEcho(t)
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		WithServerOptions(netOpts()), WithFlatCodec(false))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Supports(wire.CapFlatCodec) {
		t.Fatal("gob-only server advertised CapFlatCodec")
	}
	if cl.flat {
		t.Fatal("client upgraded to flat against a gob-only server")
	}
	drainEcho(t, srv, cl, "flat-gobsrv", 6, []byte("gob-only server blob"))
}

// TestGobDonorFlatServer: the reverse fleet mix — a legacy (gob-only)
// donor against a flat-capable server keeps its gob connection and drains.
func TestGobDonorFlatServer(t *testing.T) {
	registerEcho(t)
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.RPCAddr(), 5*time.Second, WithDialFlatCodec(false))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.Supports(wire.CapFlatCodec) {
		t.Fatal("server stopped advertising CapFlatCodec")
	}
	if cl.flat {
		t.Fatal("client upgraded to flat despite WithDialFlatCodec(false)")
	}
	drainEcho(t, srv, cl, "flat-gobcli", 6, []byte("gob donor blob"))
}

// TestBatchedWaitTasksOverWire proves multi-unit batches actually cross
// the wire: one WaitTasks call against a stocked server returns several
// units, each individually lease-accounted; failing them back requeues
// every one, and a batching donor then drains the problem.
func TestBatchedWaitTasksOverWire(t *testing.T) {
	registerEcho(t)
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "batch-wire", DM: newEchoDM(12), SharedData: []byte("batch blob")}); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tasks, _, err := cl.WaitTasks(bg, "batcher", time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 8 {
		t.Fatalf("WaitTasks returned %d units, want a full batch of 8", len(tasks))
	}
	seen := map[int64]bool{}
	for _, task := range tasks {
		if task.ProblemID != "batch-wire" || seen[task.Unit.ID] {
			t.Fatalf("bad batch entry %+v (duplicate or wrong problem)", task)
		}
		seen[task.Unit.ID] = true
	}
	if st, _ := srv.Stats(bg, "batch-wire"); st.Dispatched != 8 {
		t.Errorf("dispatched = %d after one batched WaitTasks, want 8 (every entry lease-accounted)", st.Dispatched)
	}
	// Hand every leased unit back so the draining donor below does not
	// have to wait out the (hour-long) test lease.
	for _, task := range tasks {
		if err := cl.ReportFailure(bg, "batcher", task.ProblemID, task.Unit.ID, "handed back"); err != nil {
			t.Fatal(err)
		}
	}

	d := newTestDonor(cl, DonorOptions{Name: "batch-drain", Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	out, err := srv.Wait(bg, "batch-wire")
	d.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("batch blob")) {
		t.Errorf("batched drain result = %q", out)
	}
}

// TestWaitTasksManyParkedDonorsOneUnit is the batched variant of the
// 16-donor herd test: with batching enabled a single unit must still be
// dispatched exactly once across every parked WaitTasks call.
func TestWaitTasksManyParkedDonorsOneUnit(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond})
	defer srv.Close()

	const parked = 16
	type batchResult struct {
		tasks []*Task
		err   error
	}
	got := make(chan batchResult, parked)
	for i := 0; i < parked; i++ {
		name := fmt.Sprintf("bherd-%d", i)
		go func() {
			tasks, _, err := srv.WaitTasks(bg, name, 400*time.Millisecond, 8)
			got <- batchResult{tasks, err}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Submit(bg, &Problem{ID: "bherd", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}

	units := 0
	for i := 0; i < parked; i++ {
		r := <-got
		if r.err != nil {
			t.Fatalf("herd WaitTasks err = %v", r.err)
		}
		units += len(r.tasks)
	}
	if units != 1 {
		t.Errorf("single unit dispatched %d times across the batched herd, want exactly 1", units)
	}
}

// TestWaitTasksWakesOnLeaseExpiry is the batched variant of the
// lease-expiry wake test: donor A leases the only unit and goes silent;
// the expiry sweep requeues it and must wake a donor parked in the
// batched WaitTasks path.
func TestWaitTasksWakesOnLeaseExpiry(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1000},
		Lease:      50 * time.Millisecond,
		ExpiryScan: 20 * time.Millisecond,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "bwake-expiry", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "a")
	if err != nil || task == nil {
		t.Fatalf("no task for donor a: %v", err)
	}

	type batchResult struct {
		tasks []*Task
		err   error
	}
	got := make(chan batchResult, 1)
	go func() {
		tasks, _, err := srv.WaitTasks(bg, "b", 10*time.Second, 8)
		got <- batchResult{tasks, err}
	}()
	select {
	case r := <-got:
		if r.err != nil || len(r.tasks) != 1 {
			t.Fatalf("batched WaitTasks after lease expiry = %d tasks, err %v; want the one requeued unit", len(r.tasks), r.err)
		}
		if r.tasks[0].Unit.ID != task.Unit.ID {
			t.Errorf("woke with unit %d, want requeued unit %d", r.tasks[0].Unit.ID, task.Unit.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batched WaitTasks still parked 5s after the lease expired")
	}
}
