package dist

// Tests for the PR 9 scheduler work: speculative re-dispatch of
// stragglers, priority- and deadline-aware dispatch ordering, and the
// inflight-balancing scan that lets a starved problem borrow donors from
// a saturated one. All drive the in-process Server directly through the
// Coordinator surface, so the assertions are about scheduling decisions,
// not transport.

import (
	"testing"
	"time"

	"repro/internal/sched"
)

// gridDM hands out n unit-cost units and counts folds per unit.
type gridDM struct {
	n     int64
	seq   int64
	folds map[int64]int
}

func newGridDM(n int64) *gridDM { return &gridDM{n: n, folds: make(map[int64]int)} }

func (d *gridDM) NextUnit(int64) (*Unit, bool, error) {
	if d.seq >= d.n {
		return nil, false, nil
	}
	d.seq++
	return &Unit{ID: d.seq, Algorithm: "sum", Cost: 1, Payload: []byte{byte(d.seq)}}, true, nil
}

func (d *gridDM) Consume(unitID int64, _ []byte) error { d.folds[unitID]++; return nil }
func (d *gridDM) Done() bool                           { return int64(len(d.folds)) >= d.n }
func (d *gridDM) FinalResult() ([]byte, error)         { return nil, nil }

func TestSpeculativeRedispatch(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:         sched.Fixed{Size: 1},
		Lease:          time.Hour, // expiry must not rescue the straggler
		ExpiryScan:     time.Hour,
		SpeculateAfter: 0.7,
	})
	defer srv.Close()
	dm := newGridDM(4)
	if err := srv.Submit(bg, &Problem{ID: "spec", DM: dm}); err != nil {
		t.Fatal(err)
	}
	// Donor a claims all four units, completes three, sits on the last.
	var tasks []*Task
	for i := 0; i < 4; i++ {
		task, _, err := srv.RequestTask(bg, "a")
		if err != nil || task == nil {
			t.Fatalf("a task %d: %v %v", i, task, err)
		}
		tasks = append(tasks, task)
	}
	for _, task := range tasks[:3] {
		if err := srv.SubmitResult(bg, &Result{ProblemID: "spec", UnitID: task.Unit.ID, Donor: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	straggler := tasks[3].Unit.ID

	// Donor b arrives: 3/4 complete >= 0.7, so it gets a speculative
	// copy of the straggler instead of a "nothing to do" reply.
	spec, _, err := srv.RequestTask(bg, "b")
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.Unit.ID != straggler {
		t.Fatalf("b got %+v, want speculative copy of unit %d", spec, straggler)
	}
	if spec.Priority != 0 {
		t.Errorf("speculated task priority = %d, want the problem's (0)", spec.Priority)
	}

	// A third donor gets nothing: the one straggler is already
	// speculated, and single-lease reassignment never fans one unit out
	// twice.
	if extra, _, _ := srv.RequestTask(bg, "c"); extra != nil {
		t.Fatalf("c got %+v, want nothing (straggler already speculated)", extra)
	}

	// First result wins: b reports, the problem finishes.
	if err := srv.SubmitResult(bg, &Result{ProblemID: "spec", UnitID: straggler, Donor: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(bg, "spec"); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// The original donor's late result lands harmlessly: no double fold.
	if err := srv.SubmitResult(bg, &Result{ProblemID: "spec", UnitID: straggler, Donor: "a"}); err != nil {
		t.Errorf("late duplicate result rejected loudly: %v", err)
	}
	if got := dm.folds[straggler]; got != 1 {
		t.Errorf("straggler folded %d times, want exactly 1", got)
	}

	st, _ := srv.Stats(bg, "spec")
	if st.Speculated != 1 {
		t.Errorf("Speculated = %d, want 1", st.Speculated)
	}
	if st.Dispatched != 5 || st.Completed != 4 {
		t.Errorf("dispatched/completed = %d/%d, want 5/4", st.Dispatched, st.Completed)
	}
	if st.Completed > st.Dispatched {
		t.Errorf("completed %d > dispatched %d", st.Completed, st.Dispatched)
	}
	status, _ := srv.Status(bg, "spec")
	if status.Inflight != 0 {
		t.Errorf("inflight = %d after completion, want 0", status.Inflight)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "nospec", DM: newGridDM(2)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if task, _, err := srv.RequestTask(bg, "a"); err != nil || task == nil {
			t.Fatalf("a task %d: %v %v", i, task, err)
		}
	}
	if err := srv.SubmitResult(bg, &Result{ProblemID: "nospec", UnitID: 1, Donor: "a"}); err != nil {
		t.Fatal(err)
	}
	// 1/2 complete, one straggler out — but speculation is disabled, so
	// a second donor is told to wait.
	if task, _, _ := srv.RequestTask(bg, "b"); task != nil {
		t.Fatalf("b got %+v with speculation disabled", task)
	}
}

func TestSpeculatedUnitSurvivesOriginalDonorFailure(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:         sched.Fixed{Size: 1},
		Lease:          time.Hour,
		ExpiryScan:     time.Hour,
		SpeculateAfter: 0.5,
	})
	defer srv.Close()
	dm := newGridDM(2)
	if err := srv.Submit(bg, &Problem{ID: "fail", DM: dm}); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 2; i++ {
		task, _, err := srv.RequestTask(bg, "a")
		if err != nil || task == nil {
			t.Fatalf("a task %d: %v %v", i, task, err)
		}
		ids = append(ids, task.Unit.ID)
	}
	if err := srv.SubmitResult(bg, &Result{ProblemID: "fail", UnitID: ids[0], Donor: "a"}); err != nil {
		t.Fatal(err)
	}
	spec, _, err := srv.RequestTask(bg, "b")
	if err != nil || spec == nil || spec.Unit.ID != ids[1] {
		t.Fatalf("b got %+v, want speculative copy of %d", spec, ids[1])
	}
	// The original donor now reports a (compute) failure for the unit it
	// no longer owns: the lease belongs to b, so the report is stale and
	// must not requeue the unit.
	if err := srv.ReportFailure(bg, "a", "fail", ids[1], "boom"); err != nil {
		t.Fatalf("stale failure report: %v", err)
	}
	if task, _, _ := srv.RequestTask(bg, "c"); task != nil {
		t.Fatalf("stale failure requeued the unit: c got %+v", task)
	}
	if err := srv.SubmitResult(bg, &Result{ProblemID: "fail", UnitID: ids[1], Donor: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(bg, "fail"); err != nil {
		t.Fatal(err)
	}
	if got := dm.folds[ids[1]]; got != 1 {
		t.Errorf("unit folded %d times, want 1", got)
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "low", DM: newGridDM(2), Priority: -1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "mid", DM: newGridDM(2)}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "high", DM: newGridDM(2), Priority: 5}); err != nil {
		t.Fatal(err)
	}
	// The scan drains strictly by priority tier: high, high, mid, mid,
	// low, low — whatever the round-robin start position.
	want := []string{"high", "high", "mid", "mid", "low", "low"}
	for i, w := range want {
		task, _, err := srv.RequestTask(bg, "d")
		if err != nil || task == nil {
			t.Fatalf("request %d: %v %v", i, task, err)
		}
		if task.ProblemID != w {
			t.Fatalf("request %d went to %s, want %s", i, task.ProblemID, w)
		}
		if w == "high" && task.Priority != 5 {
			t.Errorf("high-priority task carries Priority %d, want 5", task.Priority)
		}
	}
}

func TestDeadlineBreaksPriorityTies(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "whenever", DM: newGridDM(1)}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "soon", DM: newGridDM(1), Deadline: time.Now().Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "later", DM: newGridDM(1), Deadline: time.Now().Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	want := []string{"soon", "later", "whenever"}
	for i, w := range want {
		task, _, err := srv.RequestTask(bg, "d")
		if err != nil || task == nil {
			t.Fatalf("request %d: %v %v", i, task, err)
		}
		if task.ProblemID != w {
			t.Fatalf("request %d went to %s, want %s", i, task.ProblemID, w)
		}
	}
}

func TestStarvedProblemBorrowsDonors(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "saturated", DM: newGridDM(8)}); err != nil {
		t.Fatal(err)
	}
	// Four donors pile onto the only problem: 4 leases out.
	for i := 0; i < 4; i++ {
		if task, _, err := srv.RequestTask(bg, string(rune('a'+i))); err != nil || task == nil {
			t.Fatalf("warm-up %d: %v %v", i, task, err)
		}
	}
	// A second problem arrives with no leases at all. Equal priority, no
	// deadlines — the inflight-ascending tiebreak must route the next
	// donors there until the books balance, not round-robin away from it.
	if err := srv.Submit(bg, &Problem{ID: "starved", DM: newGridDM(8)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		task, _, err := srv.RequestTask(bg, "fresh")
		if err != nil || task == nil {
			t.Fatalf("steal %d: %v %v", i, task, err)
		}
		if task.ProblemID != "starved" {
			t.Fatalf("steal %d went to %s, want starved (inflight balance)", i, task.ProblemID)
		}
	}
}
