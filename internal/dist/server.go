package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/sched"
	"repro/internal/wire"
)

// ErrClosed is returned by coordinator calls after Close.
var ErrClosed = errors.New("dist: server closed")

// ErrUnknownProblem is returned by problem-addressed calls (Wait, Status,
// Stats, SharedData, Watch, Forget) for an ID that was never submitted.
var ErrUnknownProblem = errors.New("dist: unknown problem")

// ErrForgotten is returned by problem-addressed calls for an ID that was
// submitted and later retired with Forget (or auto-retired after Wait), so
// callers can distinguish "never existed" from "completed and evicted".
// A Wait already blocked when the problem is forgotten mid-run also fails
// with this error.
var ErrForgotten = errors.New("dist: problem forgotten")

// throughputAlpha weights the newest cost/elapsed sample in the EWMA the
// scheduler sizes units from.
const throughputAlpha = 0.3

// ServerOptions tunes scheduling and fault tolerance. Construct servers
// with functional options (WithPolicy, WithLeaseTTL, ...); the struct is
// the bag they mutate and can be adopted wholesale with WithServerOptions.
type ServerOptions struct {
	// Policy sizes work units per donor; nil defaults to the paper's
	// adaptive strategy with a 5s target.
	Policy sched.Policy
	// Lease is how long a dispatched unit may stay out before it is
	// presumed lost and reissued to another donor. Zero defaults to 2m.
	Lease time.Duration
	// ExpiryScan is the interval between lease sweeps. Zero defaults to
	// Lease/4 (at least one second).
	ExpiryScan time.Duration
	// WaitHint is how long donors are told to wait before polling again
	// when no unit is available. Zero defaults to 50ms. Donors jitter the
	// hint ±20% so a barrier release does not thundering-herd the server.
	WaitHint time.Duration
	// SpeculateAfter enables speculative re-dispatch of straggler units: a
	// free donor with nothing fresh to compute is handed a copy of a unit
	// that is already leased elsewhere, but only once the owning problem
	// is at least this fraction complete (completed over completed plus
	// in-flight). The lease moves to the speculating donor — first result
	// wins by the existing straggler rule (the server accepts whichever
	// copy folds first and drops the other), so a unit can never be folded
	// twice. Zero (the default) disables speculation; values outside
	// (0, 1] are ignored. 0.9 is a reasonable tail-chasing setting.
	SpeculateAfter float64
	// BulkThreshold is the payload size in bytes above which a network
	// server ships unit payloads over the raw-socket bulk channel instead
	// of inline in the RPC reply (the paper's §2.2 rationale). Zero
	// defaults to 64 KiB; negative disables offloading.
	BulkThreshold int
	// AutoForget retires a problem automatically once a Wait call has
	// delivered its final result, so a long-lived server submitting many
	// problems does not accumulate their states. Waiters already blocked
	// when the first Wait returns still receive the result (they hold the
	// problem's state directly); later Status/Stats/Wait calls get
	// ErrForgotten.
	AutoForget bool
	// WatchBuffer is each Watch subscriber's event buffer; a consumer that
	// falls further behind loses the oldest events (Event.Dropped counts
	// them). Zero defaults to 64.
	WatchBuffer int
	// LongPoll caps how long one WaitTask call may stay parked server-side
	// before replying "no task" (the donor immediately re-parks, so the
	// cap only bounds how long a single RPC is outstanding). Zero defaults
	// to 45s. Negative disables long-poll dispatch entirely: WaitTask
	// degrades to RequestTask, the capability is not advertised at
	// Handshake, and donors fall back to the jittered poll loop.
	LongPoll time.Duration
	// NoContentBulk disables content-addressed shared blobs: tasks carry
	// no SharedDigest, a network server publishes each problem's shared
	// data under its per-problem key only, and wire.CapContentBulk is not
	// advertised at Handshake — the pre-content wire behaviour, kept for
	// ablation benchmarks and mixed-fleet debugging. Content addressing is
	// on by default because it is what makes N problems sharing one
	// alignment ship it once per donor instead of N times.
	NoContentBulk bool
	// DispatchBatch caps how many units one batched WaitTask reply may
	// carry (see TaskBatchWaiter); the effective batch is the smaller of
	// this cap and what the donor asked for, and every unit is leased
	// individually. Zero defaults to 8. Negative (or 1) disables batching:
	// replies carry a single unit, the pre-batch behaviour, kept for
	// ablation benchmarks.
	DispatchBatch int
	// NoFlatCodec disables the flat control-channel codec:
	// wire.CapFlatCodec is not advertised at Handshake and the accept loop
	// stops sniffing for the flat preamble, so every connection speaks
	// gob — the pre-flat wire behaviour, kept for ablation benchmarks and
	// mixed-fleet debugging.
	NoFlatCodec bool
	// DataDir enables the durable coordinator: submits, folds and forgets
	// of DurableDM-backed problems are journaled under this directory and
	// a restarted server recovers them (see durable.go). Empty — the
	// default — keeps the in-memory behaviour. Construct servers with a
	// DataDir via OpenServer, which surfaces the journal's I/O errors.
	DataDir string
	// JournalFsyncEveryRecord makes every journaled record durable before
	// its mutation is acknowledged, instead of the default group-commit
	// batching (folds become durable within one sync interval; submits and
	// forgets always wait for the fsync). Kept for the durability-cost
	// ablation benchmark.
	JournalFsyncEveryRecord bool
	// SnapshotBytes/SnapshotRecords bound the live WAL segment: when
	// either is exceeded the background snapshotter checkpoints every
	// problem and prunes the log. Zero defaults to 8 MiB / 4096 records;
	// negative disables that trigger (tests drive snapshots directly).
	SnapshotBytes   int64
	SnapshotRecords int
	// SnapshotScan is the interval between compaction-budget checks. Zero
	// defaults to 2s.
	SnapshotScan time.Duration
	// VerifyFraction enables quorum spot-checking of results from untrusted
	// donors: this fraction of freshly dispatched units (deterministically
	// sampled per problem) — plus every unit handed to a donor still in
	// probation — is replicated to VerifyQuorum distinct donors, and the
	// unit folds only once quorum replica results agree (byte-identical, or
	// equivalent under the DataManager's ResultEquivaler). Zero — the
	// default — disables verification entirely: no replicas, no trust
	// tracking, no quarantine. Values above 1 verify every unit.
	VerifyFraction float64
	// VerifyQuorum is how many agreeing replica results fold a verified
	// unit. Zero defaults to 2; values below 2 are raised to 2 (a quorum of
	// one would be the unverified fold). Meaningless without VerifyFraction.
	VerifyQuorum int
	// QuarantineBelow is the trust floor: a donor whose trust EWMA falls
	// below it is quarantined — it receives no further work, its in-flight
	// leases are requeued (failure kind "verify"), and its pending and
	// future results are rejected. Zero defaults to 0.3; negative disables
	// quarantine while keeping trust tracking. Meaningless without
	// VerifyFraction.
	QuarantineBelow float64
	// ProbationUnits is how many quorum *agreements* a new donor must
	// accrue before its results are trusted: until then every unit it is
	// handed is spot-checked regardless of VerifyFraction, and its results
	// cannot complete a quorum on their own once any trusted donor exists
	// (see verify.go). Zero defaults to 4; negative disables probation.
	// Meaningless without VerifyFraction.
	ProbationUnits int
	// ReadmitAfter lets a quarantined donor back in after this long, on
	// re-entry probation: its trust and probation progress reset as if it
	// had just joined. Zero — the default — quarantines forever.
	// Meaningless without VerifyFraction.
	ReadmitAfter time.Duration
}

func (o *ServerOptions) applyDefaults() {
	if o.Policy == nil {
		o.Policy = sched.Adaptive{Target: 5 * time.Second, Bootstrap: 1000, Min: 1}
	}
	if o.Lease <= 0 {
		o.Lease = 2 * time.Minute
	}
	if o.ExpiryScan <= 0 {
		o.ExpiryScan = o.Lease / 4
		if o.ExpiryScan < time.Second {
			o.ExpiryScan = time.Second
		}
	}
	if o.WaitHint <= 0 {
		o.WaitHint = 50 * time.Millisecond
	}
	if o.BulkThreshold == 0 {
		o.BulkThreshold = 64 << 10
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = 64
	}
	if o.LongPoll == 0 {
		o.LongPoll = 45 * time.Second
	}
	if o.DispatchBatch == 0 {
		o.DispatchBatch = 8
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 8 << 20
	}
	if o.SnapshotRecords == 0 {
		o.SnapshotRecords = 4096
	}
	if o.SnapshotScan <= 0 {
		o.SnapshotScan = 2 * time.Second
	}
	if o.VerifyFraction > 1 {
		o.VerifyFraction = 1
	}
	if o.VerifyFraction > 0 {
		if o.VerifyQuorum < 2 {
			o.VerifyQuorum = 2
		}
		if o.QuarantineBelow == 0 {
			o.QuarantineBelow = 0.3
		}
		if o.QuarantineBelow < 0 {
			o.QuarantineBelow = 0 // trust can never go negative: quarantine off
		}
		if o.ProbationUnits == 0 {
			o.ProbationUnits = 4
		}
		if o.ProbationUnits < 0 {
			o.ProbationUnits = 0
		}
	}
}

// maxUnitAttempts bounds how often one cached unit is re-dispatched after
// failures before the whole problem is failed — a deterministically
// poisoned unit must not ping-pong between donors forever.
const maxUnitAttempts = 8

// maxConsecutiveFailures bounds compute failures with no intervening
// success for one problem. Requeuer DataManagers regenerate lost units
// under fresh IDs, so the per-unit attempt cap cannot see a poisoned unit
// cycling there; this problem-level bound catches it.
const maxConsecutiveFailures = 64

// maxForgottenTombstones bounds the retired-ID set a long-lived server
// keeps for ErrForgotten answers.
const maxForgottenTombstones = 4096

// maxConsecutiveTransport bounds transport failures (unfetchable payloads)
// with no intervening success. Deliberately very loose — partial-fleet
// bulk-connectivity problems self-heal via requeue and any completed unit
// resets it — but it turns "no donor can reach the bulk channel at all"
// (a misconfigured advertised address, a NAT forwarding only the RPC port)
// from a silent livelock into a diagnosable failure.
const maxConsecutiveTransport = 1024

// maxPendingCancels bounds one donor's queued cancel notices; a donor that
// never drains (a v1 binary without the poll) loses the oldest notices,
// which only costs it some wasted compute on doomed units.
const maxPendingCancels = 256

// leaseInfo tracks one in-flight unit.
type leaseInfo struct {
	unit     *Unit
	donor    string
	deadline time.Time
	attempts int
	// speculated marks a lease re-dispatched to a second donor under
	// SpeculateAfter, so the tail-chasing scan never stacks a third copy on
	// the same unit. Reset when the unit leaves the lease table.
	speculated bool
}

// queuedUnit is a cached unit awaiting reissue (DataManagers implementing
// Requeuer regenerate units instead and never enter this queue).
type queuedUnit struct {
	unit      *Unit
	lastDonor string
	attempts  int
}

// problemState is the server's bookkeeping for one submitted problem. Each
// problem carries its own mutex, lease table and requeue queue, so
// RequestTask/SubmitResult/ReportFailure for different problems never
// contend — the registry lock is held only for the map lookup.
type problemState struct {
	// id duplicates p.ID so lock-free callers (cleanup hooks, rotation
	// pruning) never have to touch the caller-owned Problem struct.
	id string
	// epoch tags this incarnation of the ID (Forget frees IDs for reuse);
	// dispatched tasks carry it and results must echo it, so a straggler
	// from a forgotten predecessor is never folded into this problem.
	// Immutable after Submit.
	epoch int64
	// sharedDigest is the content address of the problem's shared blob,
	// stamped on every dispatched Task so donors can cache and verify it.
	// Empty under ServerOptions.NoContentBulk. Immutable after Submit.
	sharedDigest string
	// durable marks a problem whose mutations are journaled; kind names
	// its registered restorer. recovered marks a problem this process
	// rebuilt from the journal rather than accepted via Submit. All three
	// are immutable after registration.
	durable   bool
	kind      string
	recovered bool
	// priority and deadline order this problem in the dispatch scan (see
	// sched.DispatchKey); copied from the Problem at Submit and immutable
	// afterwards, so RequestTask reads them without taking mu.
	priority int
	deadline time.Time
	// inflightN mirrors len(inflight) as an atomic, so the dispatch scan
	// can rank problems by outstanding leases (the work-stealing key)
	// without locking shards it will not visit. Updated wherever the lease
	// table grows or shrinks, always under mu.
	inflightN atomic.Int64

	// mu guards every field below. DataManager methods are called with mu
	// held, so DataManager implementations need no internal
	// synchronisation (but must not call back into the server).
	mu sync.Mutex

	p *Problem //dist:guardedby mu
	// shared is the server's own reference to the problem's shared blob,
	// so retiring the problem can release it without mutating the
	// caller-owned Problem struct.
	//dist:guardedby mu
	shared   []byte
	inflight map[int64]*leaseInfo //dist:guardedby mu
	requeue  []queuedUnit         //dist:guardedby mu
	// verify tracks the units under quorum spot-checking, keyed by unit ID.
	// A verified unit lives here INSTEAD of the inflight table: every
	// replica lease, held result and excluded donor belongs to its
	// verifySet, and the unit only folds when the set resolves (verify.go).
	// Nil until the first set is created; lazily allocated.
	//dist:guardedby mu
	verify map[int64]*verifySet
	// verifyAcc is the deterministic sampling accumulator: each fresh
	// dispatch adds VerifyFraction and a unit is spot-checked whenever the
	// accumulator crosses 1 — no randomness, so tests can count on exact
	// sampling.
	//dist:guardedby mu
	verifyAcc float64
	// watchers are the live Watch subscriptions (see events.go).
	//dist:guardedby mu
	watchers []*watcher

	dispatched int //dist:guardedby mu
	completed  int //dist:guardedby mu
	reissued   int //dist:guardedby mu
	// speculated counts units re-dispatched by the straggler-speculation
	// scan; each also counts once more in dispatched.
	//dist:guardedby mu
	speculated int
	// verified counts units folded through quorum agreement; conflicts
	// counts quorum resolutions that discarded at least one disagreeing
	// replica result.
	//dist:guardedby mu
	verified int
	//dist:guardedby mu
	conflicts int
	// consecFails / consecTransport count compute and transport failures
	// since the last successful Consume.
	//dist:guardedby mu
	consecFails int
	//dist:guardedby mu
	consecTransport int

	// starved records that a dispatch scan came up empty-handed for this
	// problem while it was still live (NextUnit said "nothing yet" — a
	// stage barrier, typically). Only then can folding a result release
	// new units, so only then does submitResult wake parked WaitTask
	// donors; gating the wake this way keeps a busy fleet's result stream
	// from making every parked donor rescan on every fold.
	//dist:guardedby mu
	starved bool

	done   bool   //dist:guardedby mu
	result []byte //dist:guardedby mu
	err    error  //dist:guardedby mu
	// doneCh is created at Submit and closed exactly once on completion;
	// the channel value itself is immutable, so Wait reads it lock-free.
	doneCh chan struct{}
}

// donorState is the server's measured view of one donor. Its own mutex
// keeps stats updates off both the registry lock and the problem locks.
type donorState struct {
	mu       sync.Mutex
	stats    sched.DonorStats //dist:guardedby mu
	lastSeen time.Time        //dist:guardedby mu
	// trust is the donor's reputation EWMA in [0, 1], fed by quorum
	// outcomes (agree pulls toward 1, disagree and timeout toward 0);
	// seeded at sched.TrustNeutral on first contact. Only meaningful while
	// verification is enabled.
	//dist:guardedby mu
	trust float64
	// verifiedOK counts the donor's quorum agreements; probation ends once
	// it reaches ServerOptions.ProbationUnits.
	//dist:guardedby mu
	verifiedOK int
	// quarantined marks a donor whose trust fell below the floor: it
	// receives no work and its results are rejected until readmission
	// (ServerOptions.ReadmitAfter) resets it to re-entry probation.
	//dist:guardedby mu
	quarantined bool
	//dist:guardedby mu
	quarantinedAt time.Time
}

// Status is a point-in-time snapshot of one problem's progress.
type Status struct {
	// Completed, Inflight and Reissued count work units.
	Completed, Inflight, Reissued int
	// AppDone/AppTotal are application-level progress (from Progresser);
	// both zero when the DataManager does not report progress.
	AppDone, AppTotal int
	// Done reports whether the final result is ready.
	Done bool
	// Recovered reports the problem was restored from the journal after a
	// coordinator restart rather than submitted to this process.
	Recovered bool
}

// Server is the coordinating node: it owns the submitted problems, sizes
// units per donor via the scheduling policy, tracks leases, and requeues
// failed or expired units. It implements Coordinator for in-process donors;
// wrap it with ListenAndServe for the networked deployment.
//
// State is sharded per problem: a small RWMutex-guarded registry maps IDs
// to problemStates, each of which owns its mutex, lease table, requeue
// queue and Watch subscriber list. Coordinator calls for different problems
// proceed in parallel, and RequestTask skips problem shards whose lock is
// momentarily contended before falling back to a blocking pass.
//
// Lock order (outer to inner): registry (regMu) → problemState.mu →
// donorMu / donorState.mu / cancelMu / parkMu. A problem lock is never held
// while acquiring the registry lock, and the donor, cancel and park locks
// are leaves: no code path takes a registry or problem lock while holding
// one.
type Server struct {
	opts ServerOptions

	// regMu guards the problem registry: problems, order, forgotten and
	// closed. Held only for lookup and registration — never across
	// DataManager calls.
	regMu    sync.RWMutex
	problems map[string]*problemState //dist:guardedby regMu
	// order is the dispatch rotation; done problems are pruned lazily.
	//dist:guardedby regMu
	order []string
	// forgotten tombstones retired IDs so Status/Stats/Wait can answer
	// ErrForgotten instead of ErrUnknownProblem. The set is bounded
	// (oldest-first eviction) so the eviction feature cannot itself grow
	// without bound; an ID whose tombstone has aged out degrades to the
	// unknown-problem error.
	//dist:guardedby regMu
	forgotten      map[string]struct{}
	forgottenOrder []string //dist:guardedby regMu
	closed         bool     //dist:guardedby regMu

	// rr is the round-robin dispatch cursor across live problems, advanced
	// once per RequestTask so concurrent instances keep every donor busy
	// across stage barriers (the paper's Figure 2 usage pattern).
	rr atomic.Uint64

	// epochSeq allocates problem incarnation tags (see problemState.epoch).
	epochSeq atomic.Int64

	donorMu sync.RWMutex
	donors  map[string]*donorState //dist:guardedby donorMu

	// trusted counts donors past probation and not quarantined — the
	// fleet-wide signal the quorum rule keys on: once any trusted donor
	// exists, a quorum must include one (see verify.go). Maintained on the
	// probation/quarantine/prune transitions.
	trusted atomic.Int64

	// cancelMu guards cancels, the per-donor queues of epoch-tagged cancel
	// notices for in-flight units of problems that ended while the unit
	// was out. Donors drain their queue via CancelNotices while computing
	// and abort matching units. A leaf lock (taken under ps.mu).
	cancelMu sync.Mutex
	cancels  map[string][]CancelNotice //dist:guardedby cancelMu

	// parkMu guards parkCh, the broadcast channel WaitTask callers park on
	// while no unit is dispatchable. wakeParked closes and replaces it, so
	// every parked donor re-runs its dispatch scan; the events that can
	// make a unit dispatchable — a Submit, a failure or lease-expiry
	// requeue, and a folded result on a problem some scan starved on
	// (stage barriers release new units on a fold; see problemState.
	// starved) — all wake it. A leaf lock.
	parkMu sync.Mutex
	parkCh chan struct{} //dist:guardedby parkMu

	// onProblemDone, when non-nil, is invoked (under the problem's lock)
	// each time a problem finalizes, fails, or is forgotten; the network
	// layer uses it to drop the problem's bulk-channel blobs however the
	// problem ended.
	onProblemDone func(problemID string)
	// onUnitRetired, when non-nil, is invoked (under the problem's lock)
	// when a lost unit is regenerated by a Requeuer DataManager — its old
	// ID will never be dispatched again, so the network layer can drop the
	// ID's offloaded payload immediately instead of at problem end.
	onUnitRetired func(problemID string, epoch, unitID int64)

	// journal is the durable coordinator's write-ahead store (nil without
	// ServerOptions.DataDir); recovery holds what was rebuilt from it at
	// startup. Both are set before start() and immutable afterwards. The
	// store's internal locks are leaves under ps.mu (fold appends);
	// snapMu serialises whole snapshots (the background loop racing a
	// final Close checkpoint) and is only ever taken first, before any
	// registry or problem lock.
	journal  *journal.Store
	recovery *Recovery
	snapMu   sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

var _ Coordinator = (*Server)(nil)
var _ CancelNotifier = (*Server)(nil)

// NewServer creates an in-process coordinator. With ServerOptions.DataDir
// set it panics if the journal cannot be opened — use OpenServer when the
// durable path's I/O errors should be handled instead.
func NewServer(opts ...ServerOption) *Server {
	s, err := OpenServer(opts...)
	if err != nil {
		panic(fmt.Sprintf("dist: NewServer: %v (use OpenServer to handle journal errors)", err))
	}
	return s
}

// newServer builds the coordinator without starting its background loops,
// so OpenServer can replay a journal into a quiescent server first.
func newServer(o ServerOptions) *Server {
	return &Server{
		opts:      o,
		problems:  make(map[string]*problemState),
		forgotten: make(map[string]struct{}),
		donors:    make(map[string]*donorState),
		cancels:   make(map[string][]CancelNotice),
		parkCh:    make(chan struct{}),
		stop:      make(chan struct{}),
	}
}

// start launches the background loops once construction (and any journal
// recovery) is complete.
func (s *Server) start() {
	s.wg.Add(1)
	go s.expiryLoop()
	if s.journal != nil {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
}

// Submit registers a problem for dispatch. An ID retired with Forget may be
// reused; a live or completed-but-unforgotten ID may not.
func (s *Server) Submit(ctx context.Context, p *Problem) error {
	return s.submitWith(ctx, p, nil)
}

// submitWith registers a problem, invoking publish (when non-nil) under the
// registry lock after validation but before the problem becomes
// dispatchable. The network server uses this to put the shared blob on the
// bulk channel so no donor can be handed a unit whose shared data is not
// yet fetchable — and a rejected duplicate Submit never touches the live
// problem's blob. publish receives the blob's content digest (empty under
// NoContentBulk) so the network layer stores the blob content-addressed
// without hashing it a second time.
func (s *Server) submitWith(ctx context.Context, p *Problem, publish func(sharedDigest string)) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if p == nil || p.DM == nil {
		return errors.New("dist: Submit with nil problem or DataManager")
	}
	if p.ID == "" {
		return errors.New("dist: Submit with empty problem ID")
	}
	// The digest is computed outside the registry lock: hashing a large
	// alignment must not stall every other problem's lookups.
	var sharedDigest string
	if !s.opts.NoContentBulk {
		sharedDigest = wire.Digest(p.SharedData)
	}
	// Durable problems marshal their submit record before registration —
	// the DataManager is still caller-owned here, so no lock is needed —
	// and a state that cannot be marshalled is rejected up front rather
	// than discovered at the first checkpoint.
	var jrec *journal.Submit
	var kind string
	if s.journal != nil {
		if kind = durableKind(p.DM); kind != "" {
			state, merr := p.DM.(DurableDM).MarshalState()
			if merr != nil {
				return fmt.Errorf("dist: problem %q: marshal durable state: %w", p.ID, merr)
			}
			jrec = &journal.Submit{ProblemID: p.ID, Kind: kind, State: state, Shared: p.SharedData}
		}
	}
	s.regMu.Lock()
	if s.closed {
		s.regMu.Unlock()
		return ErrClosed
	}
	if _, dup := s.problems[p.ID]; dup {
		s.regMu.Unlock()
		return fmt.Errorf("dist: problem %q already submitted", p.ID)
	}
	if publish != nil {
		publish(sharedDigest)
	}
	ps := &problemState{
		id:           p.ID,
		epoch:        s.epochSeq.Add(1),
		sharedDigest: sharedDigest,
		durable:      jrec != nil,
		kind:         kind,
		priority:     p.Priority,
		deadline:     p.Deadline,
		p:            p,
		shared:       p.SharedData,
		inflight:     make(map[int64]*leaseInfo),
		doneCh:       make(chan struct{}),
	}
	s.problems[p.ID] = ps
	s.order = append(s.order, p.ID)
	s.untombstoneLocked(p.ID) // the ID is live again
	s.regMu.Unlock()

	if jrec != nil {
		// The submit record is fsynced before Submit returns: an
		// acknowledged problem survives a crash. The problem is already
		// dispatchable during the append — a crash inside that window
		// merely loses work donors recompute — but a journal that cannot
		// accept the record rolls the registration back and fails the
		// Submit, because an unjournaled "durable" problem would silently
		// vanish on restart.
		jrec.Epoch = ps.epoch
		if jerr := s.journal.AppendSync(jrec); jerr != nil {
			jerr = fmt.Errorf("dist: problem %q: journal submit: %w", p.ID, jerr)
			ps.mu.Lock()
			s.failLocked(ps, jerr)
			ps.mu.Unlock()
			s.regMu.Lock()
			if cur := s.problems[p.ID]; cur == ps {
				delete(s.problems, p.ID)
				s.removeFromOrderLocked(p.ID)
			}
			s.regMu.Unlock()
			return jerr
		}
	}

	// The DataManager calls below (Done, a Progresser snapshot, possibly
	// FinalResult) run under the problem's own lock only — regMu is never
	// held across DataManager calls, or one slow implementation would stall
	// every other problem's lookups. The problem is dispatchable from the
	// moment regMu drops; a donor racing in merely discovers Done() itself
	// and finalizeLocked is idempotent.
	ps.mu.Lock()
	s.publishLocked(ps, s.snapshotEventLocked(ps))
	if p.DM.Done() {
		s.finalizeLocked(ps)
	}
	ps.mu.Unlock()
	// A fresh problem means fresh dispatchable units: wake long-poll
	// donors parked in WaitTask so they pick them up now instead of at
	// their next poll tick.
	s.wakeParked()
	return nil
}

// ctxErr is the nil-tolerant ctx.Err().
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// lookup resolves a problem ID, distinguishing never-submitted from
// forgotten IDs.
func (s *Server) lookup(id string) (*problemState, error) {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	if ps, ok := s.problems[id]; ok {
		return ps, nil
	}
	if _, ok := s.forgotten[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrForgotten, id)
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownProblem, id)
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.closed
}

// liveEpoch reports the incarnation currently registered — and not yet
// done — under id. The network layer uses it to detect that an offload it
// just published was for a stale task.
func (s *Server) liveEpoch(id string) (int64, bool) {
	ps, err := s.lookup(id)
	if err != nil {
		return 0, false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.done {
		return 0, false
	}
	return ps.epoch, true
}

// Wait blocks until the problem completes (or ctx is cancelled) and returns
// its final result. With ServerOptions.AutoForget the problem is retired
// once the result has been delivered; subsequent calls return ErrForgotten.
// A ctx cancellation only abandons this Wait — pair it with Forget to also
// stop the donors' in-flight compute (RunLocal does exactly that).
func (s *Server) Wait(ctx context.Context, id string) ([]byte, error) {
	ps, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background() //dist:allow-background nil-ctx normalisation in a public entry point
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-ps.doneCh:
	}
	ps.mu.Lock()
	out, werr := ps.result, ps.err
	ps.mu.Unlock()
	if s.opts.AutoForget {
		// Idempotent across concurrent waiters; each already holds ps, so
		// every Wait in flight still delivers the result. The eviction is
		// identity-checked: if another waiter already forgot this ID and
		// the caller resubmitted a fresh problem under it, a slow waiter's
		// deferred forget must not evict the new problem mid-run.
		_ = s.forgetMatching(id, ps)
	}
	return out, werr
}

// Forget retires a problem: its state is evicted from the server and its
// network-layer resources (shared blob, offloaded unit payloads) are
// released. A problem forgotten before completion fails with ErrForgotten,
// unblocking any Wait; leased and requeued units are discarded, not
// reissued, and every donor holding one of its leases is queued an
// epoch-tagged cancel notice so it aborts the unit's ProcessCtx instead of
// finishing doomed work. Forgetting an already-forgotten ID is a no-op;
// forgetting a never-submitted ID returns ErrUnknownProblem.
func (s *Server) Forget(id string) error {
	return s.forgetMatching(id, nil)
}

// forgetMatching is Forget, optionally restricted to a specific problem
// instance: with only non-nil the eviction happens just when the registry
// still maps id to that exact state, so a stale ID-addressed forget (an
// AutoForget waiter racing a resubmission of the same ID) never evicts a
// successor problem.
func (s *Server) forgetMatching(id string, only *problemState) error {
	s.regMu.Lock()
	if s.closed {
		s.regMu.Unlock()
		return ErrClosed
	}
	ps, ok := s.problems[id]
	if !ok {
		_, wasForgotten := s.forgotten[id]
		s.regMu.Unlock()
		if wasForgotten {
			return nil // idempotent double-Forget
		}
		return fmt.Errorf("%w %q", ErrUnknownProblem, id)
	}
	if only != nil && ps != only {
		s.regMu.Unlock()
		return nil // the ID was reused; the caller's problem is already gone
	}
	s.regMu.Unlock()

	// Release the problem BEFORE unregistering its ID. The network layer's
	// blob cleanup is keyed by problem ID, so it must run while the ID is
	// still registered — a duplicate Submit is rejected until the delete
	// below, which means the cleanup can only ever touch this incarnation's
	// blobs, never a successor's. This ordering also keeps the exclusive
	// registry lock from being held while waiting on the problem's lock
	// (a DataManager call may hold it for a while, and stalling every
	// other problem's lookups behind regMu would re-serialize the
	// coordinator).
	ps.mu.Lock()
	// A still-running problem fails (releasing its units and blobs,
	// cancelling its donors, and unblocking waiters); a completed one
	// already released everything in finalize/fail, so this is a no-op.
	s.failLocked(ps, fmt.Errorf("%w: %q evicted before completion", ErrForgotten, id))
	ps.mu.Unlock()

	s.regMu.Lock()
	// Identity-checked removal: a concurrent Forget of the same ID may
	// have completed (and the ID may even have been resubmitted) while the
	// release above ran; never unregister a successor.
	removed := false
	if cur := s.problems[id]; cur == ps {
		delete(s.problems, id)
		s.tombstoneLocked(id)
		s.removeFromOrderLocked(id)
		removed = true
	}
	s.regMu.Unlock()
	if removed && ps.durable && s.journal != nil {
		// Fsynced before Forget acknowledges: a forgotten problem must not
		// resurrect on restart. An I/O error cannot un-forget the
		// in-memory eviction above; it sticks in the store and surfaces at
		// Close.
		_ = s.journal.AppendSync(&journal.Forget{ProblemID: id, Epoch: ps.epoch})
	}
	return nil
}

// tombstoneLocked records a retired ID, evicting the oldest tombstones
// past the cap so the set stays bounded on a long-lived server. Callers
// hold regMu.
//
//dist:locked regMu
func (s *Server) tombstoneLocked(id string) {
	if _, ok := s.forgotten[id]; !ok {
		s.forgotten[id] = struct{}{}
		s.forgottenOrder = append(s.forgottenOrder, id)
	}
	for len(s.forgottenOrder) > maxForgottenTombstones {
		old := s.forgottenOrder[0]
		s.forgottenOrder = s.forgottenOrder[1:]
		delete(s.forgotten, old)
	}
}

// untombstoneLocked clears a retired ID that is live again, keeping the
// eviction order in sync with the set. Callers hold regMu.
//
//dist:locked regMu
func (s *Server) untombstoneLocked(id string) {
	if _, ok := s.forgotten[id]; !ok {
		return
	}
	delete(s.forgotten, id)
	for i, oid := range s.forgottenOrder {
		if oid == id {
			s.forgottenOrder = append(s.forgottenOrder[:i], s.forgottenOrder[i+1:]...)
			break
		}
	}
}

// removeFromOrderLocked drops one ID from the dispatch rotation. Callers
// hold regMu.
//
//dist:locked regMu
func (s *Server) removeFromOrderLocked(id string) {
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Status reports a problem's progress. Prefer Watch for continuous
// observation; Status remains for one-shot probes.
func (s *Server) Status(ctx context.Context, id string) (Status, error) {
	if err := ctxErr(ctx); err != nil {
		return Status{}, err
	}
	ps, err := s.lookup(id)
	if err != nil {
		return Status{}, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := Status{
		Completed: ps.completed,
		Inflight:  ps.inflightLocked(),
		Reissued:  ps.reissued,
		Done:      ps.done,
		Recovered: ps.recovered,
	}
	if pr, ok := ps.p.DM.(Progresser); ok {
		st.AppDone, st.AppTotal = pr.Progress()
	}
	return st, nil
}

// ProblemStats are a problem's lifetime unit counters plus its recovery
// provenance.
type ProblemStats struct {
	// Dispatched, Completed and Reissued count work units over the
	// problem's lifetime, surviving coordinator restarts for durable
	// problems (the snapshot carries them).
	Dispatched, Completed, Reissued int
	// Speculated counts straggler units re-dispatched to a second donor
	// under ServerOptions.SpeculateAfter (each also counts in Dispatched).
	Speculated int
	// Verified counts units folded through quorum agreement
	// (ServerOptions.VerifyFraction); Conflicts counts quorum resolutions
	// that discarded at least one disagreeing replica result.
	Verified, Conflicts int
	// Recovered reports the problem was restored from the journal after a
	// coordinator restart rather than submitted to this process.
	Recovered bool
}

// Stats reports a problem's unit counters.
func (s *Server) Stats(ctx context.Context, id string) (ProblemStats, error) {
	if err := ctxErr(ctx); err != nil {
		return ProblemStats{}, err
	}
	ps, lerr := s.lookup(id)
	if lerr != nil {
		return ProblemStats{}, lerr
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ProblemStats{
		Dispatched: ps.dispatched,
		Completed:  ps.completed,
		Reissued:   ps.reissued,
		Speculated: ps.speculated,
		Verified:   ps.verified,
		Conflicts:  ps.conflicts,
		Recovered:  ps.recovered,
	}, nil
}

// DonorCount reports how many distinct donors have contacted the server.
func (s *Server) DonorCount() int {
	s.donorMu.RLock()
	defer s.donorMu.RUnlock()
	return len(s.donors)
}

// Close stops the server. Problems still running fail with ErrClosed so
// concurrent Wait calls return. A durable server writes a final
// checkpoint first — before the problems are marked failed, so their live
// state is what persists — making a deliberate Close a clean shutdown the
// next Open resumes from.
func (s *Server) Close() error {
	s.regMu.Lock()
	first := !s.closed
	s.regMu.Unlock()
	var jerr error
	if first && s.journal != nil {
		jerr = s.snapshotNow()
	}

	s.regMu.Lock()
	var toFail []*problemState
	if !s.closed {
		s.closed = true
		for _, ps := range s.problems {
			toFail = append(toFail, ps)
		}
	}
	s.regMu.Unlock()
	for _, ps := range toFail {
		ps.mu.Lock()
		s.failLocked(ps, ErrClosed)
		ps.mu.Unlock()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.journal != nil {
		if cerr := s.journal.Close(); jerr == nil {
			jerr = cerr
		}
	}
	return jerr
}

// RequestTask implements Coordinator: pick the next unit for a donor,
// round-robin across live problems. The rotation is snapshotted under the
// registry read lock; each candidate problem is then tried under its own
// lock. The first pass only TryLocks each shard — a problem whose
// DataManager is busy partitioning or folding under its lock is skipped
// rather than blocked on, so one slow problem never adds latency to a
// request that an idle problem could serve. Shards skipped as contended
// are retried with a blocking lock only if the fast pass found nothing.
func (s *Server) RequestTask(ctx context.Context, donor string) (*Task, time.Duration, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, 0, err
	}
	s.regMu.RLock()
	if s.closed {
		s.regMu.RUnlock()
		return nil, 0, ErrClosed
	}
	rotation := make([]*problemState, 0, len(s.order))
	for _, id := range s.order {
		if ps := s.problems[id]; ps != nil {
			rotation = append(rotation, ps)
		}
	}
	s.regMu.RUnlock()

	ds := s.touchDonor(donor)
	n := len(rotation)
	if n == 0 {
		return nil, s.opts.WaitHint, nil
	}
	view, quarantined := s.donorDispatchView(ds)
	if quarantined {
		// A quarantined donor gets no work at all; it keeps polling (and
		// long-polling) and is let back in only by ReadmitAfter.
		return nil, s.opts.WaitHint, nil
	}
	live := s.liveDonorCount()
	// Peer liveness is sampled lazily — the O(donors) scan only runs when
	// some problem actually has a requeued unit to arbitrate — and at most
	// once per request. The memoized value can be a poll interval stale;
	// the consequence is at most one deferred requeue pickup (see
	// popRequeueLocked), never a lost unit.
	othersAliveMemo := -1
	othersAlive := func() bool {
		if othersAliveMemo < 0 {
			othersAliveMemo = 0
			if s.otherDonorAlive(donor) {
				othersAliveMemo = 1
			}
		}
		return othersAliveMemo == 1
	}

	// The visit order starts from the round-robin cursor (the fairness
	// tiebreak) and is then reordered by urgency: priority descending,
	// deadline, then fewest leases first. The lease rank is the
	// work-stealing rule — a starved problem outranks a hot one, so the hot
	// problem's surplus donors drain toward it. Keys are built from
	// immutable Submit-time fields plus an atomic lease counter; no problem
	// lock is taken for problems the scan never reaches.
	start := int(s.rr.Add(1) % uint64(n))
	keys := make([]sched.DispatchKey, n)
	for i, ps := range rotation {
		keys[i] = sched.DispatchKey{Priority: ps.priority, Deadline: ps.deadline, Inflight: ps.inflightN.Load(), Trust: view.trust}
	}
	scan := sched.ScanOrder(keys, start)
	var finished []*problemState
	var contended []*problemState
	for _, idx := range scan {
		ps := rotation[idx]
		task, done, tried := s.tryDispatch(ps, donor, view, live, othersAlive, false)
		if !tried {
			contended = append(contended, ps)
			continue
		}
		if done {
			finished = append(finished, ps)
		}
		if task != nil {
			s.pruneRotation(finished)
			return task, s.opts.WaitHint, nil
		}
	}
	// Slow pass: everything uncontended came up empty, so waiting on the
	// busy shards is now worth it (their DataManagers may be mid-partition
	// with units to give).
	for _, ps := range contended {
		task, done, _ := s.tryDispatch(ps, donor, view, live, othersAlive, true)
		if done {
			finished = append(finished, ps)
		}
		if task != nil {
			s.pruneRotation(finished)
			return task, s.opts.WaitHint, nil
		}
	}
	s.pruneRotation(finished)
	return nil, s.opts.WaitHint, nil
}

// tryDispatch attempts to hand one of ps's units to donor under ps's own
// lock — acquired blockingly when block is set, with TryLock otherwise
// (tried is false when the shard was skipped as contended). It returns the
// dispatched task (nil when the problem has nothing for this donor) and
// whether the problem is done — finished problems are pruned from the
// rotation by the caller.
func (s *Server) tryDispatch(ps *problemState, donor string, view dispatchView, live int, othersAlive func() bool, block bool) (task *Task, done, tried bool) {
	if block {
		ps.mu.Lock()
	} else if !ps.mu.TryLock() {
		return nil, false, false
	}
	defer ps.mu.Unlock()
	if ps.done {
		return nil, true, true
	}
	// A probation donor with ProbationUnits of unresolved verification
	// backlog gets no new units — only replica service — until its
	// quorums resolve: every unit it takes must be replicated, so an
	// unbounded stream of them multiplies the problem by the quorum (and
	// hands a malicious donor free amplification).
	verifyCapped := s.verifyEnabled() && view.probation &&
		ps.verifyBacklogLocked(donor, s.opts.ProbationUnits)
	if !verifyCapped {
		if u, attempts, ok := s.popRequeueLocked(ps, donor, othersAlive); ok {
			// A probationary donor's requeued units are spot-checked like
			// its fresh ones — no unit handed to an untrusted donor may
			// fold unverified.
			if s.verifyEnabled() && view.probation {
				return s.startVerifyLocked(ps, u, donor, attempts, view), false, true
			}
			s.leaseLocked(ps, u, donor, attempts)
			return s.taskLocked(ps, u), false, true
		}
	}
	// A pending verification set wanting one more replica outranks fresh
	// work: resolving a held unit unblocks its fold.
	if t := s.replicaLocked(ps, donor, view); t != nil {
		return t, false, true
	}
	if verifyCapped {
		// Parked at the backlog cap: a resolving quorum must wake this
		// donor so it can claim fresh work again.
		ps.starved = true
		return nil, false, true
	}
	budget := s.opts.Policy.Budget(view.stats, remainingCost(ps.p.DM), live)
	budget = scaleBudgetByTrust(budget, view.trust)
	for {
		u, ok, err := ps.p.DM.NextUnit(budget)
		if err != nil {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: NextUnit: %w", ps.id, err))
			return nil, true, true
		}
		if !ok {
			if ps.p.DM.Done() {
				s.finalizeLocked(ps)
				return nil, true, true
			}
			if len(ps.inflight) == 0 && len(ps.requeue) == 0 && len(ps.verify) == 0 {
				// Nothing dispatchable, nothing in flight, nothing awaiting
				// reissue or quorum, not done: no future event can unstick
				// this problem. Fail loudly rather than leaving Wait hanging.
				s.failLocked(ps, fmt.Errorf("dist: problem %q stalled: no dispatchable units, none in flight, not done", ps.id))
				return nil, true, true
			}
			// Nothing fresh, but the problem is close to done with leases
			// still out: offer this free donor a speculative copy of the
			// oldest straggler before parking it. Probationary donors are
			// never offered speculation — first-result-wins would let an
			// untrusted copy fold unverified.
			if !(s.verifyEnabled() && view.probation) {
				if t := s.speculateLocked(ps, donor); t != nil {
					return t, false, true
				}
			}
			// A dispatch scan starved on this problem: the next folded result
			// may release stage-barrier units, so it must wake parked donors.
			ps.starved = true
			return nil, false, true
		}
		if vs, hasSet := ps.verify[u.ID]; hasSet {
			// A recovered verification set whose unit the DataManager just
			// regenerated: attach the unit, and hand this donor a replica if
			// it is eligible. Otherwise keep scanning — the set's replica
			// slots are served to other donors by replicaLocked.
			if vs.unit == nil {
				vs.unit = u
			}
			if t := s.replicaForSetLocked(ps, vs, donor, view); t != nil {
				return t, false, true
			}
			continue
		}
		if s.verifyEnabled() && (view.probation || s.sampleVerifyLocked(ps)) {
			return s.startVerifyLocked(ps, u, donor, 0, view), false, true
		}
		s.leaseLocked(ps, u, donor, 0)
		return s.taskLocked(ps, u), false, true
	}
}

// taskLocked builds the dispatched Task for one of ps's units. Callers
// hold ps.mu.
//
//dist:locked mu
func (s *Server) taskLocked(ps *problemState, u *Unit) *Task {
	return &Task{ProblemID: ps.id, Unit: *u, Epoch: ps.epoch, SharedDigest: ps.sharedDigest, Priority: ps.priority}
}

// speculateLocked implements straggler speculation (ServerOptions.
// SpeculateAfter): when a problem has no fresh units but is at least the
// configured fraction complete, a free donor is handed a copy of the
// oldest outstanding lease instead of parking. The lease itself moves to
// the speculating donor — the original holder becomes the straggler, and
// whichever copy reports first is folded by submitResult's existing
// unit-ID accept rule while the other is dropped, so no unit can fold
// twice. The moved lease also redirects failure reports: the original
// donor's are dropped as stale (li.donor no longer matches), the
// speculator's requeue normally. Each lease is speculated at most once
// per time through the lease table, and a donor is never handed a copy
// of a unit it already holds. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) speculateLocked(ps *problemState, donor string) *Task {
	frac := s.opts.SpeculateAfter
	if frac <= 0 || frac > 1 {
		return nil
	}
	if len(ps.inflight) == 0 || len(ps.requeue) > 0 {
		return nil
	}
	total := ps.completed + len(ps.inflight)
	if float64(ps.completed) < frac*float64(total) {
		return nil
	}
	var pick *leaseInfo
	for _, li := range ps.inflight {
		if li.speculated || li.donor == donor {
			continue
		}
		if pick == nil || li.deadline.Before(pick.deadline) {
			pick = li
		}
	}
	if pick == nil {
		return nil
	}
	pick.donor = donor
	pick.deadline = time.Now().Add(s.opts.Lease)
	pick.speculated = true
	ps.dispatched++
	ps.speculated++
	s.publishUnitEventLocked(ps, EventUnitSpeculated, pick.unit.ID, donor)
	return s.taskLocked(ps, pick.unit)
}

// pruneRotation removes finished problems from the dispatch order. Their
// states stay addressable for Wait/Status/Stats until Forget. Pointer
// identity is checked so a forgotten-and-resubmitted ID's fresh problem is
// never pruned by a stale reference to its predecessor.
func (s *Server) pruneRotation(finished []*problemState) {
	if len(finished) == 0 {
		return
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	for _, ps := range finished {
		if cur := s.problems[ps.id]; cur != ps {
			continue
		}
		s.removeFromOrderLocked(ps.id)
	}
}

// SharedData implements Coordinator.
func (s *Server) SharedData(ctx context.Context, problemID string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	ps, err := s.lookup(problemID)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.shared, nil
}

// SubmitResult implements Coordinator: fold one completed unit and feed the
// donor's measured cost/elapsed back into its scheduling statistics.
func (s *Server) SubmitResult(ctx context.Context, res *Result) error {
	_, err := s.submitResult(ctx, res)
	return err
}

// submitResult additionally reports whether the result was accepted (false
// for stragglers whose unit already completed elsewhere or whose problem is
// done) so the network layer keeps bulk payloads a reissued copy may still
// need.
func (s *Server) submitResult(ctx context.Context, res *Result) (accepted bool, err error) {
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	if res == nil {
		return false, errors.New("dist: SubmitResult with nil result")
	}
	if s.isClosed() {
		return false, ErrClosed
	}
	ds := s.touchDonor(res.Donor)
	donorTrusted := false
	if s.verifyEnabled() {
		ds.mu.Lock()
		rejected := ds.quarantined
		donorTrusted = !ds.quarantined && ds.verifiedOK >= s.opts.ProbationUnits
		ds.mu.Unlock()
		if rejected {
			// Results from quarantined donors are rejected outright; their
			// revoked leases were already requeued with failure kind verify.
			return false, nil
		}
	}
	ps, lerr := s.lookup(res.ProblemID)
	if lerr != nil {
		return false, nil // problem finished (or was forgotten) while the unit was out
	}
	ps.mu.Lock()
	if ps.done {
		ps.mu.Unlock()
		return false, nil
	}
	if res.Epoch != 0 && res.Epoch != ps.epoch {
		// A straggler computed for a forgotten predecessor of this ID:
		// unit numbering restarts per incarnation, so the IDs can collide
		// while the payloads mean entirely different work. Drop it; the
		// current incarnation's unit stays leased and completes normally.
		ps.mu.Unlock()
		return false, nil
	}
	if vs, ok := ps.verify[res.UnitID]; ok {
		// A spot-checked unit: hold the result in its verification set and
		// fold only on quorum agreement (verify.go). Trust updates are
		// applied after the problem lock drops — donor locks are leaves and
		// a quarantine walks every problem.
		deltas, wake, held, cost := s.verifySubmitLocked(ps, vs, res, donorTrusted)
		ps.mu.Unlock()
		if wake {
			s.wakeParked()
		}
		s.applyTrustDeltas(deltas)
		if held && cost > 0 {
			s.feedThroughput(ds, cost, res.Elapsed)
		}
		return held, nil
	}
	var cost int64
	if li, ok := ps.inflight[res.UnitID]; ok {
		cost = li.unit.Cost
		delete(ps.inflight, res.UnitID)
		ps.inflightN.Add(-1)
	} else if q, ok := s.takeQueuedLocked(ps, res.UnitID); ok {
		// The donor outlived its lease but finished before the unit was
		// re-dispatched: the result is perfectly good, and accepting it
		// saves recomputing the whole unit.
		cost = q.unit.Cost
	} else {
		ps.mu.Unlock()
		return false, nil // reissued copy already completed; drop the straggler
	}
	if cerr := ps.p.DM.Consume(res.UnitID, res.Payload); cerr != nil {
		s.failLocked(ps, fmt.Errorf("dist: problem %q: Consume unit %d: %w", ps.id, res.UnitID, cerr))
		ps.mu.Unlock()
		return false, nil
	}
	if ps.durable {
		// Folds are journaled with a buffered write before the ack; the
		// group commit makes them durable within one sync interval (or
		// before this append returns, under JournalFsyncEveryRecord). A
		// crash inside that window loses at most an interval's folds,
		// which recovery regenerates and the fleet recomputes. An I/O
		// error here sticks in the store and surfaces at the next
		// checkpoint or Close; the fold itself proceeds — durability
		// degrades rather than aborting a healthy run.
		_ = s.journal.Append(&journal.Fold{ProblemID: ps.id, Epoch: ps.epoch, UnitID: res.UnitID, Payload: res.Payload})
	}
	ps.completed++
	ps.consecFails = 0
	ps.consecTransport = 0
	// Folding a result only creates dispatchable work when a dispatch scan
	// previously starved on this problem (stage-barrier DataManagers
	// release their next stage on a fold). Wake parked donors exactly
	// then — an unconditional wake would make every parked donor rescan on
	// every result a busy fleet folds.
	wake := ps.starved && !ps.done
	ps.starved = false
	s.publishUnitEventLocked(ps, EventUnitDone, res.UnitID, res.Donor)
	s.publishProgressLocked(ps)
	if ps.p.DM.Done() {
		s.finalizeLocked(ps)
		wake = false // a finished problem releases no new units
	}
	ps.mu.Unlock()
	if wake {
		s.wakeParked()
	}

	// Scheduler feedback happens outside the problem lock: stats are
	// per-donor state, not per-problem state.
	s.feedThroughput(ds, cost, res.Elapsed)
	return true, nil
}

// feedThroughput feeds one completed unit's measured cost/elapsed into the
// donor's scheduling statistics. Elapsed is floored at 1ms: a
// sub-millisecond (or bogus donor-reported) sample would otherwise make
// the EWMA throughput — and with it the next adaptive budget, which has no
// upper clamp by default — effectively infinite, serializing the whole
// problem onto one donor.
func (s *Server) feedThroughput(ds *donorState, cost int64, elapsed time.Duration) {
	sec := elapsed.Seconds()
	if sec < 1e-3 {
		sec = 1e-3
	}
	ds.mu.Lock()
	ds.stats.Completed++
	ds.stats.Throughput = sched.EWMA(ds.stats.Throughput, float64(cost)/sec, throughputAlpha)
	ds.mu.Unlock()
}

// publishUnitEventLocked emits a unit-granularity event. Callers hold
// ps.mu.
//
//dist:locked mu
func (s *Server) publishUnitEventLocked(ps *problemState, kind EventKind, unitID int64, donor string) {
	if len(ps.watchers) == 0 {
		return
	}
	s.publishLocked(ps, Event{
		Kind:      kind,
		ProblemID: ps.id,
		Epoch:     ps.epoch,
		Time:      time.Now(),
		UnitID:    unitID,
		Donor:     donor,
		Completed: ps.completed,
		Inflight:  ps.inflightLocked(),
	})
}

// publishProgressLocked emits an EventProgress with current counters.
// Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) publishProgressLocked(ps *problemState) {
	if len(ps.watchers) == 0 {
		return
	}
	ev := Event{
		Kind:      EventProgress,
		ProblemID: ps.id,
		Epoch:     ps.epoch,
		Time:      time.Now(),
		Completed: ps.completed,
		Inflight:  ps.inflightLocked(),
	}
	if pr, ok := ps.p.DM.(Progresser); ok {
		ev.AppDone, ev.AppTotal = pr.Progress()
	}
	s.publishLocked(ps, ev)
}

// ReportFailure implements Coordinator: attribute the failure to the donor
// and requeue the unit for another donor. The epoch goes unchecked on this
// legacy path; in-process and RPC donors use the tagged variant.
func (s *Server) ReportFailure(ctx context.Context, donor, problemID string, unitID int64, reason string) error {
	return s.reportFailure(ctx, donor, problemID, unitID, reason, failCompute, 0)
}

// reportTaggedFailure implements taggedFailureReporter for in-process
// donors.
func (s *Server) reportTaggedFailure(ctx context.Context, donor, problemID string, unitID int64, reason string, transport bool, epoch int64) error {
	kind := failCompute
	if transport {
		kind = failTransport
	}
	return s.reportFailure(ctx, donor, problemID, unitID, reason, kind, epoch)
}

// reportFailure requeues a failed unit. kind is failTransport for failures
// to *fetch* the payload: those say nothing about the unit itself and must
// not feed the poisoned-unit caps — half a fleet with a firewalled bulk
// port would otherwise fail the whole problem while healthy donors remain.
// A non-zero epoch that does not match the problem's incarnation marks a
// straggler report from a forgotten predecessor of a reused ID: dropped,
// like its submitResult counterpart, so it cannot revoke a live lease of
// the successor when donor names collide.
//
// The donor's reputation (its Failures count, and lastSeen liveness) is
// only touched AFTER the report validates against a live lease held by
// this donor under the current epoch: a report for a never-leased unit, a
// stale epoch, or someone else's lease says nothing about this donor and
// must not move its stats.
func (s *Server) reportFailure(ctx context.Context, donor, problemID string, unitID int64, reason string, kind failureKind, epoch int64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	if s.verifyEnabled() {
		if ds := s.peekDonor(donor); ds != nil {
			ds.mu.Lock()
			rejected := ds.quarantined
			ds.mu.Unlock()
			if rejected {
				return nil // quarantined donors' reports are rejected like their results
			}
		}
	}
	ps, lerr := s.lookup(problemID)
	if lerr != nil {
		return nil // problem finished or forgotten; nothing to requeue
	}
	var deltas []trustDelta
	ps.mu.Lock()
	if ps.done {
		ps.mu.Unlock()
		return nil
	}
	if epoch != 0 && epoch != ps.epoch {
		ps.mu.Unlock()
		return nil
	}
	if vs, ok := ps.verify[unitID]; ok {
		if _, held := vs.leases[donor]; !held {
			ps.mu.Unlock()
			return nil // no replica lease: a straggler or an impostor
		}
		deltas = s.verifyFailureLocked(ps, vs, donor, reason, kind)
		ps.mu.Unlock()
	} else {
		li, ok := ps.inflight[unitID]
		if !ok {
			ps.mu.Unlock()
			return nil
		}
		if li.donor != donor {
			// Stale report: the unit's lease already expired and the unit was
			// re-dispatched to someone else. Results from stragglers are
			// accepted; their failure reports must not revoke the new lease.
			ps.mu.Unlock()
			return nil
		}
		s.requeueLocked(ps, li, reason, kind)
		ps.mu.Unlock()
	}
	// The requeued unit (or reopened replica slot) is dispatchable again,
	// to a different donor by preference: wake parked WaitTask callers.
	s.wakeParked()
	s.applyTrustDeltas(deltas)
	ds := s.touchDonor(donor)
	ds.mu.Lock()
	ds.stats.Failures++
	ds.mu.Unlock()
	return nil
}

// failureKind classifies why an in-flight unit came back, because each
// class gets a different bound: compute failures feed the tight
// poisoned-unit caps; transport failures (payload unfetchable) feed only a
// very loose cap that catches a bulk channel no donor can reach; lease
// expiries feed no cap at all — a healthy unit that merely takes many
// lease periods, or a mass outage expiring every lease in one sweep, must
// reissue, not fail the problem. Verify failures (a quarantined donor's
// revoked leases) are uncapped like expiries: they blame the donor, not
// the unit.
type failureKind int

const (
	failCompute failureKind = iota
	failTransport
	failExpiry
	failVerify
)

// requeueLocked returns a lost or failed in-flight unit to the dispatch
// pool: Requeuer DataManagers regenerate it, others get the cached payload
// re-dispatched (preferring a different donor). Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) requeueLocked(ps *problemState, li *leaseInfo, reason string, kind failureKind) {
	if ps.done {
		return
	}
	delete(ps.inflight, li.unit.ID)
	ps.inflightN.Add(-1)
	ps.reissued++
	switch kind {
	case failCompute:
		ps.consecFails++
		attempts := li.attempts + 1
		if attempts >= maxUnitAttempts {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: unit %d failed %d times, last: %s",
				ps.id, li.unit.ID, attempts, reason))
			return
		}
		li.attempts = attempts
		if ps.consecFails >= maxConsecutiveFailures {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: %d consecutive failures without a completed unit, last: %s",
				ps.id, ps.consecFails, reason))
			return
		}
	case failTransport:
		ps.consecTransport++
		if ps.consecTransport >= maxConsecutiveTransport {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: %d consecutive transport failures without a completed unit (bulk channel unreachable from every donor?), last: %s",
				ps.id, ps.consecTransport, reason))
			return
		}
	}
	if rq, ok := ps.p.DM.(Requeuer); ok {
		rq.Requeue(li.unit.ID)
		if s.onUnitRetired != nil {
			s.onUnitRetired(ps.id, ps.epoch, li.unit.ID)
		}
		return
	}
	ps.requeue = append(ps.requeue, queuedUnit{unit: li.unit, lastDonor: li.donor, attempts: li.attempts})
}

// takeQueuedLocked removes and returns the queued unit with the given ID,
// if the unit is awaiting reissue (its lease expired but it has not been
// handed out again). Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) takeQueuedLocked(ps *problemState, unitID int64) (queuedUnit, bool) {
	for i, q := range ps.requeue {
		if q.unit.ID == unitID {
			ps.requeue = append(ps.requeue[:i], ps.requeue[i+1:]...)
			return q, true
		}
	}
	return queuedUnit{}, false
}

// popRequeueLocked takes a queued unit for the donor, preferring units last
// held by a different donor so a unit one machine cannot compute migrates.
// The preference only holds while some *other* donor is actually alive — a
// donor that has not polled for a full lease is presumed gone, and waiting
// for it would starve the unit forever. othersAlive is memoized per
// request by the caller; a stale value defers the pickup by at most one
// poll interval. Evaluating it here acquires donor locks under ps.mu,
// which the lock order permits: donor locks are leaves — no code path
// takes a registry or problem lock while holding one. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) popRequeueLocked(ps *problemState, donor string, othersAlive func() bool) (*Unit, int, bool) {
	pick := -1
	for i, q := range ps.requeue {
		if q.lastDonor != donor {
			pick = i
			break
		}
	}
	if pick < 0 {
		if len(ps.requeue) == 0 || othersAlive() {
			return nil, 0, false // let another donor claim it
		}
		pick = 0 // no other live donor: better to retry than to stall
	}
	q := ps.requeue[pick]
	ps.requeue = append(ps.requeue[:pick], ps.requeue[pick+1:]...)
	return q.unit, q.attempts, true
}

// otherDonorAlive reports whether any donor other than name has polled
// within the last lease interval.
func (s *Server) otherDonorAlive(name string) bool {
	cutoff := time.Now().Add(-s.opts.Lease)
	s.donorMu.RLock()
	defer s.donorMu.RUnlock()
	for n, ds := range s.donors {
		if n == name {
			continue
		}
		ds.mu.Lock()
		alive := ds.lastSeen.After(cutoff)
		ds.mu.Unlock()
		if alive {
			return true
		}
	}
	return false
}

// liveDonorCount counts donors seen within the last lease interval — the
// pool size scheduling policies divide remaining work by. Counting every
// donor ever seen would permanently shrink GSS/factoring unit sizes after
// churn. Never returns less than 1 (the caller itself just polled).
func (s *Server) liveDonorCount() int {
	cutoff := time.Now().Add(-s.opts.Lease)
	n := 0
	s.donorMu.RLock()
	for _, ds := range s.donors {
		ds.mu.Lock()
		if ds.lastSeen.After(cutoff) {
			n++
		}
		ds.mu.Unlock()
	}
	s.donorMu.RUnlock()
	if n < 1 {
		n = 1
	}
	return n
}

// leaseLocked records a dispatched unit. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) leaseLocked(ps *problemState, u *Unit, donor string, attempts int) {
	ps.inflight[u.ID] = &leaseInfo{
		unit:     u,
		donor:    donor,
		deadline: time.Now().Add(s.opts.Lease),
		attempts: attempts,
	}
	ps.inflightN.Add(1)
	ps.dispatched++
	s.publishUnitEventLocked(ps, EventUnitDispatched, u.ID, donor)
}

// touchDonor returns the donor's state, creating it on first contact, and
// stamps its last-seen time.
func (s *Server) touchDonor(name string) *donorState {
	now := time.Now()
	s.donorMu.RLock()
	ds, ok := s.donors[name]
	s.donorMu.RUnlock()
	if !ok {
		s.donorMu.Lock()
		ds, ok = s.donors[name]
		if !ok {
			ds = &donorState{trust: sched.TrustNeutral}
			s.donors[name] = ds
		}
		s.donorMu.Unlock()
	}
	ds.mu.Lock()
	ds.lastSeen = now
	ds.mu.Unlock()
	return ds
}

// peekDonor returns the donor's state without creating it or stamping its
// last-seen time — for checks that must not count as donor activity.
func (s *Server) peekDonor(name string) *donorState {
	s.donorMu.RLock()
	defer s.donorMu.RUnlock()
	return s.donors[name]
}

// bumpFailures charges one failure to a donor's scheduling statistics, if
// the donor is still tracked.
func (s *Server) bumpFailures(name string) {
	s.donorMu.RLock()
	ds, ok := s.donors[name]
	s.donorMu.RUnlock()
	if !ok {
		return
	}
	ds.mu.Lock()
	ds.stats.Failures++
	ds.mu.Unlock()
}

func remainingCost(dm DataManager) int64 {
	if cr, ok := dm.(CostReporter); ok {
		return cr.RemainingCost()
	}
	return 0
}

// CancelNotices implements CancelNotifier: drain and return the donor's
// pending epoch-tagged cancel notices. Donors poll this while computing a
// unit and abort when a notice matches the unit's problem incarnation.
func (s *Server) CancelNotices(ctx context.Context, donor string) ([]CancelNotice, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if s.isClosed() {
		return nil, ErrClosed
	}
	s.cancelMu.Lock()
	notices := s.cancels[donor]
	if notices != nil {
		delete(s.cancels, donor)
	}
	s.cancelMu.Unlock()
	return notices, nil
}

// queueCancels records a cancel notice for every donor holding one of ps's
// in-flight leases — called when the problem ends (finalized early, failed,
// forgotten, closed) with units still out, all compute on which is now
// wasted. Callers hold ps.mu; cancelMu is a leaf below it.
//
//dist:locked mu
func (s *Server) queueCancels(ps *problemState) {
	if len(ps.inflight) == 0 && len(ps.verify) == 0 {
		return
	}
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	for _, li := range ps.inflight {
		s.queueOneCancelLocked(ps, li.donor, li.unit.ID)
	}
	for _, vs := range ps.verify {
		for donor := range vs.leases {
			s.queueOneCancelLocked(ps, donor, vs.uid)
		}
	}
}

// queueOneCancelLocked appends one cancel notice to a donor's bounded
// queue. Callers hold ps.mu and cancelMu.
//
//dist:locked mu
//dist:locked cancelMu
func (s *Server) queueOneCancelLocked(ps *problemState, donor string, unitID int64) {
	q := append(s.cancels[donor], CancelNotice{
		ProblemID: ps.id,
		Epoch:     ps.epoch,
		UnitID:    unitID,
	})
	if len(q) > maxPendingCancels {
		q = q[len(q)-maxPendingCancels:]
	}
	s.cancels[donor] = q
}

// finalizeLocked marks a problem done with its DataManager's final result.
// Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) finalizeLocked(ps *problemState) {
	if ps.done {
		return
	}
	out, err := ps.p.DM.FinalResult()
	ps.done = true
	ps.result, ps.err = out, err
	close(ps.doneCh)
	s.releaseLocked(ps)
}

// failLocked marks a problem done with an error. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) failLocked(ps *problemState, err error) {
	if ps.done {
		return
	}
	ps.done = true
	ps.err = err
	close(ps.doneCh)
	s.releaseLocked(ps)
}

// releaseLocked drops a finished problem's queued and leased unit payloads
// and the shared blob: a problem that finalized early (Done with units
// still out) must not pin them for the server's lifetime, and Status should
// not report in-flight work for a done problem. Donors still computing one
// of the leased units get a cancel notice so they abort instead of
// finishing work whose result would be dropped. (A donor fetching shared
// data for a finished problem gets nil, fails Init, and the failure report
// is ignored — the problem is done.) The network layer's cleanup hook and
// the terminal Watch event fire here too, under the problem lock. Callers
// hold ps.mu; ps.done is already true.
//
//dist:locked mu
func (s *Server) releaseLocked(ps *problemState) {
	s.queueCancels(ps)
	s.publishLocked(ps, s.terminalEventLocked(ps))
	ps.requeue = nil
	ps.inflightN.Add(-int64(len(ps.inflight)))
	ps.inflight = nil
	for _, vs := range ps.verify {
		ps.inflightN.Add(-int64(len(vs.leases)))
	}
	ps.verify = nil
	ps.shared = nil // the server's reference only; the caller's Problem is untouched
	if s.onProblemDone != nil {
		s.onProblemDone(ps.id)
	}
}

// expiryLoop periodically reissues units whose lease has lapsed — the
// fault-tolerance path that lets the run survive donors being powered off.
func (s *Server) expiryLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.ExpiryScan)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.expireLeases(time.Now())
		}
	}
}

// expireLeases requeues every in-flight unit whose lease deadline passed
// and prunes donors gone long enough that their scheduling statistics are
// worthless, so the donor map stays bounded on a long-lived server.
func (s *Server) expireLeases(now time.Time) {
	if s.isClosed() {
		return
	}
	donorCutoff := now.Add(-10 * s.opts.Lease)
	s.donorMu.Lock()
	var pruned []string
	for name, ds := range s.donors {
		ds.mu.Lock()
		gone := ds.lastSeen.Before(donorCutoff)
		wasTrusted := gone && s.verifyEnabled() && !ds.quarantined && ds.verifiedOK >= s.opts.ProbationUnits
		ds.mu.Unlock()
		if gone {
			delete(s.donors, name)
			pruned = append(pruned, name)
			if wasTrusted {
				// The trusted count must track live donors only, or a fleet
				// that fully churned could leave quorums forever demanding a
				// trusted participant that no longer exists.
				s.trusted.Add(-1)
			}
		}
	}
	s.donorMu.Unlock()
	if len(pruned) > 0 {
		// A pruned donor will never drain its cancel queue; drop it.
		s.cancelMu.Lock()
		for _, name := range pruned {
			delete(s.cancels, name)
		}
		s.cancelMu.Unlock()
	}

	s.regMu.RLock()
	states := make([]*problemState, 0, len(s.problems))
	for _, ps := range s.problems {
		states = append(states, ps)
	}
	s.regMu.RUnlock()

	requeued := false
	for _, ps := range states {
		var blamed []string
		var deltas []trustDelta
		ps.mu.Lock()
		if ps.done {
			ps.mu.Unlock()
			continue
		}
		for _, li := range ps.inflight {
			if ps.done {
				break // requeueLocked failed the problem mid-sweep
			}
			if now.After(li.deadline) {
				blamed = append(blamed, li.donor)
				s.requeueLocked(ps, li, "lease expired", failExpiry)
				requeued = true
			}
		}
		// Expired replica leases reopen their verification slots; the
		// timeout is a quorum outcome that drags the donor's trust down
		// (gently — an outage is not a wrong answer).
		for _, vs := range ps.verify {
			if ps.done {
				break
			}
			dropped := false
			for donor, l := range vs.leases {
				if now.After(l.deadline) {
					delete(vs.leases, donor)
					ps.inflightN.Add(-1)
					ps.reissued++
					blamed = append(blamed, donor)
					deltas = append(deltas, trustDelta{donor: donor, outcome: outcomeTimeout})
					dropped = true
					requeued = true
				}
			}
			if dropped && !ps.done {
				// No new result, so this cannot fold — but it can expose a
				// set that exhausted every allowed donor without quorum.
				d2, _ := s.resolveVerifyLocked(ps, vs)
				deltas = append(deltas, d2...)
			}
		}
		ps.mu.Unlock()
		// Donor stats are charged outside the problem lock (lock order:
		// problem locks never nest around donor state).
		for _, name := range blamed {
			s.bumpFailures(name)
		}
		s.applyTrustDeltas(deltas)
	}
	if requeued {
		// Expired leases put units back in play; one wake after the sweep
		// lets parked WaitTask callers claim them all.
		s.wakeParked()
	}
}
