package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sched"
)

// ErrClosed is returned by coordinator calls after Close.
var ErrClosed = errors.New("dist: server closed")

// throughputAlpha weights the newest cost/elapsed sample in the EWMA the
// scheduler sizes units from.
const throughputAlpha = 0.3

// ServerOptions tunes scheduling and fault tolerance.
type ServerOptions struct {
	// Policy sizes work units per donor; nil defaults to the paper's
	// adaptive strategy with a 5s target.
	Policy sched.Policy
	// Lease is how long a dispatched unit may stay out before it is
	// presumed lost and reissued to another donor. Zero defaults to 2m.
	Lease time.Duration
	// ExpiryScan is the interval between lease sweeps. Zero defaults to
	// Lease/4 (at least one second).
	ExpiryScan time.Duration
	// WaitHint is how long donors are told to wait before polling again
	// when no unit is available. Zero defaults to 50ms.
	WaitHint time.Duration
	// BulkThreshold is the payload size in bytes above which a network
	// server ships unit payloads over the raw-socket bulk channel instead
	// of inline in the RPC reply (the paper's §2.2 rationale). Zero
	// defaults to 64 KiB; negative disables offloading.
	BulkThreshold int
}

func (o *ServerOptions) applyDefaults() {
	if o.Policy == nil {
		o.Policy = sched.Adaptive{Target: 5 * time.Second, Bootstrap: 1000, Min: 1}
	}
	if o.Lease <= 0 {
		o.Lease = 2 * time.Minute
	}
	if o.ExpiryScan <= 0 {
		o.ExpiryScan = o.Lease / 4
		if o.ExpiryScan < time.Second {
			o.ExpiryScan = time.Second
		}
	}
	if o.WaitHint <= 0 {
		o.WaitHint = 50 * time.Millisecond
	}
	if o.BulkThreshold == 0 {
		o.BulkThreshold = 64 << 10
	}
}

// maxUnitAttempts bounds how often one cached unit is re-dispatched after
// failures before the whole problem is failed — a deterministically
// poisoned unit must not ping-pong between donors forever.
const maxUnitAttempts = 8

// maxConsecutiveFailures bounds compute failures with no intervening
// success for one problem. Requeuer DataManagers regenerate lost units
// under fresh IDs, so the per-unit attempt cap cannot see a poisoned unit
// cycling there; this problem-level bound catches it.
const maxConsecutiveFailures = 64

// maxConsecutiveTransport bounds transport failures (unfetchable payloads)
// with no intervening success. Deliberately very loose — partial-fleet
// bulk-connectivity problems self-heal via requeue and any completed unit
// resets it — but it turns "no donor can reach the bulk channel at all"
// (a misconfigured advertised address, a NAT forwarding only the RPC port)
// from a silent livelock into a diagnosable failure.
const maxConsecutiveTransport = 1024

// leaseInfo tracks one in-flight unit.
type leaseInfo struct {
	unit     *Unit
	donor    string
	deadline time.Time
	attempts int
}

// queuedUnit is a cached unit awaiting reissue (DataManagers implementing
// Requeuer regenerate units instead and never enter this queue).
type queuedUnit struct {
	unit      *Unit
	lastDonor string
	attempts  int
}

// problemState is the server's bookkeeping for one submitted problem.
type problemState struct {
	p *Problem
	// shared is the server's own reference to the problem's shared blob,
	// so retiring the problem can release it without mutating the
	// caller-owned Problem struct.
	shared   []byte
	inflight map[int64]*leaseInfo
	requeue  []queuedUnit

	dispatched      int
	completed       int
	reissued        int
	consecFails     int // compute failures since the last successful Consume
	consecTransport int // transport failures since the last successful Consume

	done   bool
	result []byte
	err    error
	doneCh chan struct{}
}

// donorState is the server's measured view of one donor.
type donorState struct {
	stats    sched.DonorStats
	lastSeen time.Time
}

// Status is a point-in-time snapshot of one problem's progress.
type Status struct {
	// Completed, Inflight and Reissued count work units.
	Completed, Inflight, Reissued int
	// AppDone/AppTotal are application-level progress (from Progresser);
	// both zero when the DataManager does not report progress.
	AppDone, AppTotal int
	// Done reports whether the final result is ready.
	Done bool
}

// Server is the coordinating node: it owns the submitted problems, sizes
// units per donor via the scheduling policy, tracks leases, and requeues
// failed or expired units. It implements Coordinator for in-process donors;
// wrap it with ListenAndServe for the networked deployment.
type Server struct {
	opts ServerOptions

	mu       sync.Mutex
	problems map[string]*problemState
	order    []string // live problems in submission order, for round-robin dispatch
	rr       int
	donors   map[string]*donorState
	closed   bool

	// onProblemDone, when non-nil, is invoked (under the server lock) each
	// time a problem finalizes or fails; the network layer uses it to drop
	// the problem's bulk-channel blobs however the problem ended.
	onProblemDone func(problemID string)
	// onUnitRetired, when non-nil, is invoked (under the server lock) when
	// a lost unit is regenerated by a Requeuer DataManager — its old ID
	// will never be dispatched again, so the network layer can drop the
	// ID's offloaded payload immediately instead of at problem end.
	onUnitRetired func(problemID string, unitID int64)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

var _ Coordinator = (*Server)(nil)

// NewServer creates an in-process coordinator.
func NewServer(opts ServerOptions) *Server {
	opts.applyDefaults()
	s := &Server{
		opts:     opts,
		problems: make(map[string]*problemState),
		donors:   make(map[string]*donorState),
		stop:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.expiryLoop()
	return s
}

// Submit registers a problem for dispatch.
func (s *Server) Submit(p *Problem) error {
	return s.submitWith(p, nil)
}

// submitWith registers a problem, invoking publish (when non-nil) under the
// server lock after validation but before the problem becomes dispatchable.
// The network server uses this to put the shared blob on the bulk channel
// so no donor can be handed a unit whose shared data is not yet fetchable —
// and a rejected duplicate Submit never touches the live problem's blob.
func (s *Server) submitWith(p *Problem, publish func()) error {
	if p == nil || p.DM == nil {
		return errors.New("dist: Submit with nil problem or DataManager")
	}
	if p.ID == "" {
		return errors.New("dist: Submit with empty problem ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.problems[p.ID]; dup {
		return fmt.Errorf("dist: problem %q already submitted", p.ID)
	}
	if publish != nil {
		publish()
	}
	ps := &problemState{
		p:        p,
		shared:   p.SharedData,
		inflight: make(map[int64]*leaseInfo),
		doneCh:   make(chan struct{}),
	}
	s.problems[p.ID] = ps
	s.order = append(s.order, p.ID)
	if p.DM.Done() {
		s.finalize(ps)
	}
	return nil
}

// Wait blocks until the problem completes and returns its final result.
func (s *Server) Wait(id string) ([]byte, error) {
	s.mu.Lock()
	ps, ok := s.problems[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown problem %q", id)
	}
	<-ps.doneCh
	s.mu.Lock()
	defer s.mu.Unlock()
	return ps.result, ps.err
}

// Status reports a problem's progress.
func (s *Server) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.problems[id]
	if !ok {
		return Status{}, fmt.Errorf("dist: unknown problem %q", id)
	}
	st := Status{
		Completed: ps.completed,
		Inflight:  len(ps.inflight),
		Reissued:  ps.reissued,
		Done:      ps.done,
	}
	if pr, ok := ps.p.DM.(Progresser); ok {
		st.AppDone, st.AppTotal = pr.Progress()
	}
	return st, nil
}

// Stats reports a problem's unit counters.
func (s *Server) Stats(id string) (dispatched, completed, reissued int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.problems[id]
	if !ok {
		return 0, 0, 0, fmt.Errorf("dist: unknown problem %q", id)
	}
	return ps.dispatched, ps.completed, ps.reissued, nil
}

// DonorCount reports how many distinct donors have contacted the server.
func (s *Server) DonorCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.donors)
}

// Close stops the server. Problems still running fail with ErrClosed so
// concurrent Wait calls return.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, ps := range s.problems {
			if !ps.done {
				s.fail(ps, ErrClosed)
			}
		}
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// RequestTask implements Coordinator: pick the next unit for a donor,
// round-robin across live problems so concurrent instances keep every donor
// busy across stage barriers (the paper's Figure 2 usage pattern).
func (s *Server) RequestTask(donor string) (*Task, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	ds := s.touchDonor(donor)
	// Snapshot the rotation: dispatch failures inside the loop can retire a
	// problem, which mutates s.order.
	ids := append([]string(nil), s.order...)
	n := len(ids)
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		ps := s.problems[ids[idx]]
		if ps == nil || ps.done {
			continue
		}
		if u, attempts, ok := s.popRequeue(ps, donor); ok {
			s.lease(ps, u, donor, attempts)
			s.rr = (idx + 1) % n
			return &Task{ProblemID: ps.p.ID, Unit: *u}, s.opts.WaitHint, nil
		}
		budget := s.opts.Policy.Budget(ds.stats, remainingCost(ps.p.DM), s.liveDonorCount())
		u, ok, err := ps.p.DM.NextUnit(budget)
		if err != nil {
			s.fail(ps, fmt.Errorf("dist: problem %q: NextUnit: %w", ps.p.ID, err))
			continue
		}
		if !ok {
			if ps.p.DM.Done() {
				s.finalize(ps)
			} else if len(ps.inflight) == 0 && len(ps.requeue) == 0 {
				// Nothing dispatchable, nothing in flight, nothing awaiting
				// reissue, not done: no future event can unstick this
				// problem. Fail loudly rather than leaving Wait hanging.
				s.fail(ps, fmt.Errorf("dist: problem %q stalled: no dispatchable units, none in flight, not done", ps.p.ID))
			}
			continue
		}
		s.lease(ps, u, donor, 0)
		s.rr = (idx + 1) % n
		return &Task{ProblemID: ps.p.ID, Unit: *u}, s.opts.WaitHint, nil
	}
	return nil, s.opts.WaitHint, nil
}

// SharedData implements Coordinator.
func (s *Server) SharedData(problemID string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.problems[problemID]
	if !ok {
		return nil, fmt.Errorf("dist: unknown problem %q", problemID)
	}
	return ps.shared, nil
}

// SubmitResult implements Coordinator: fold one completed unit and feed the
// donor's measured cost/elapsed back into its scheduling statistics.
func (s *Server) SubmitResult(res *Result) error {
	_, err := s.submitResult(res)
	return err
}

// submitResult additionally reports whether the result was accepted (false
// for stragglers whose unit already completed elsewhere or whose problem is
// done) so the network layer keeps bulk payloads a reissued copy may still
// need.
func (s *Server) submitResult(res *Result) (accepted bool, err error) {
	if res == nil {
		return false, errors.New("dist: SubmitResult with nil result")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	ds := s.touchDonor(res.Donor)
	ps, ok := s.problems[res.ProblemID]
	if !ok || ps.done {
		return false, nil // problem finished (or failed) while the unit was out
	}
	var cost int64
	if li, ok := ps.inflight[res.UnitID]; ok {
		cost = li.unit.Cost
		delete(ps.inflight, res.UnitID)
	} else if q, ok := s.takeQueued(ps, res.UnitID); ok {
		// The donor outlived its lease but finished before the unit was
		// re-dispatched: the result is perfectly good, and accepting it
		// saves recomputing the whole unit.
		cost = q.unit.Cost
	} else {
		return false, nil // reissued copy already completed; drop the straggler
	}
	if err := ps.p.DM.Consume(res.UnitID, res.Payload); err != nil {
		s.fail(ps, fmt.Errorf("dist: problem %q: Consume unit %d: %w", ps.p.ID, res.UnitID, err))
		return false, nil
	}
	ps.completed++
	ps.consecFails = 0
	ps.consecTransport = 0
	ds.stats.Completed++
	// Floor elapsed at 1ms: a sub-millisecond (or bogus donor-reported)
	// sample would otherwise make the EWMA throughput — and with it the
	// next adaptive budget, which has no upper clamp by default —
	// effectively infinite, serializing the whole problem onto one donor.
	elapsed := res.Elapsed.Seconds()
	if elapsed < 1e-3 {
		elapsed = 1e-3
	}
	ds.stats.Throughput = sched.EWMA(ds.stats.Throughput, float64(cost)/elapsed, throughputAlpha)
	if ps.p.DM.Done() {
		s.finalize(ps)
	}
	return true, nil
}

// ReportFailure implements Coordinator: attribute the failure to the donor
// and requeue the unit for another donor.
func (s *Server) ReportFailure(donor, problemID string, unitID int64, reason string) error {
	return s.reportFailure(donor, problemID, unitID, reason, failCompute)
}

// reportTransportFailure implements transportFailureReporter for in-process
// donors.
func (s *Server) reportTransportFailure(donor, problemID string, unitID int64, reason string) error {
	return s.reportFailure(donor, problemID, unitID, reason, failTransport)
}

// reportFailure requeues a failed unit. kind is failTransport for failures
// to *fetch* the payload: those say nothing about the unit itself and must
// not feed the poisoned-unit caps — half a fleet with a firewalled bulk
// port would otherwise fail the whole problem while healthy donors remain.
func (s *Server) reportFailure(donor, problemID string, unitID int64, reason string, kind failureKind) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ds := s.touchDonor(donor)
	ps, ok := s.problems[problemID]
	if !ok || ps.done {
		return nil
	}
	li, ok := ps.inflight[unitID]
	if !ok {
		return nil
	}
	if li.donor != donor {
		// Stale report: the unit's lease already expired and the unit was
		// re-dispatched to someone else. Results from stragglers are
		// accepted; their failure reports must not revoke the new lease.
		return nil
	}
	ds.stats.Failures++
	s.requeueLocked(ps, li, reason, kind)
	return nil
}

// failureKind classifies why an in-flight unit came back, because each
// class gets a different bound: compute failures feed the tight
// poisoned-unit caps; transport failures (payload unfetchable) feed only a
// very loose cap that catches a bulk channel no donor can reach; lease
// expiries feed no cap at all — a healthy unit that merely takes many
// lease periods, or a mass outage expiring every lease in one sweep, must
// reissue, not fail the problem.
type failureKind int

const (
	failCompute failureKind = iota
	failTransport
	failExpiry
)

// requeueLocked returns a lost or failed in-flight unit to the dispatch
// pool: Requeuer DataManagers regenerate it, others get the cached payload
// re-dispatched (preferring a different donor).
func (s *Server) requeueLocked(ps *problemState, li *leaseInfo, reason string, kind failureKind) {
	if ps.done {
		return
	}
	delete(ps.inflight, li.unit.ID)
	ps.reissued++
	switch kind {
	case failCompute:
		ps.consecFails++
		attempts := li.attempts + 1
		if attempts >= maxUnitAttempts {
			s.fail(ps, fmt.Errorf("dist: problem %q: unit %d failed %d times, last: %s",
				ps.p.ID, li.unit.ID, attempts, reason))
			return
		}
		li.attempts = attempts
		if ps.consecFails >= maxConsecutiveFailures {
			s.fail(ps, fmt.Errorf("dist: problem %q: %d consecutive failures without a completed unit, last: %s",
				ps.p.ID, ps.consecFails, reason))
			return
		}
	case failTransport:
		ps.consecTransport++
		if ps.consecTransport >= maxConsecutiveTransport {
			s.fail(ps, fmt.Errorf("dist: problem %q: %d consecutive transport failures without a completed unit (bulk channel unreachable from every donor?), last: %s",
				ps.p.ID, ps.consecTransport, reason))
			return
		}
	}
	if rq, ok := ps.p.DM.(Requeuer); ok {
		rq.Requeue(li.unit.ID)
		if s.onUnitRetired != nil {
			s.onUnitRetired(ps.p.ID, li.unit.ID)
		}
		return
	}
	ps.requeue = append(ps.requeue, queuedUnit{unit: li.unit, lastDonor: li.donor, attempts: li.attempts})
}

// takeQueued removes and returns the queued unit with the given ID, if the
// unit is awaiting reissue (its lease expired but it has not been handed
// out again).
func (s *Server) takeQueued(ps *problemState, unitID int64) (queuedUnit, bool) {
	for i, q := range ps.requeue {
		if q.unit.ID == unitID {
			ps.requeue = append(ps.requeue[:i], ps.requeue[i+1:]...)
			return q, true
		}
	}
	return queuedUnit{}, false
}

// popRequeue takes a queued unit for the donor, preferring units last held
// by a different donor so a unit one machine cannot compute migrates. The
// preference only holds while some *other* donor is actually alive — a
// donor that has not polled for a full lease is presumed gone, and waiting
// for it would starve the unit forever.
func (s *Server) popRequeue(ps *problemState, donor string) (*Unit, int, bool) {
	pick := -1
	for i, q := range ps.requeue {
		if q.lastDonor != donor {
			pick = i
			break
		}
	}
	if pick < 0 {
		if len(ps.requeue) == 0 || s.otherDonorAlive(donor) {
			return nil, 0, false // let another donor claim it
		}
		pick = 0 // no other live donor: better to retry than to stall
	}
	q := ps.requeue[pick]
	ps.requeue = append(ps.requeue[:pick], ps.requeue[pick+1:]...)
	return q.unit, q.attempts, true
}

// otherDonorAlive reports whether any donor other than name has polled
// within the last lease interval.
func (s *Server) otherDonorAlive(name string) bool {
	cutoff := time.Now().Add(-s.opts.Lease)
	for n, ds := range s.donors {
		if n != name && ds.lastSeen.After(cutoff) {
			return true
		}
	}
	return false
}

// liveDonorCount counts donors seen within the last lease interval — the
// pool size scheduling policies divide remaining work by. Counting every
// donor ever seen would permanently shrink GSS/factoring unit sizes after
// churn. Never returns less than 1 (the caller itself just polled).
func (s *Server) liveDonorCount() int {
	cutoff := time.Now().Add(-s.opts.Lease)
	n := 0
	for _, ds := range s.donors {
		if ds.lastSeen.After(cutoff) {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// lease records a dispatched unit.
func (s *Server) lease(ps *problemState, u *Unit, donor string, attempts int) {
	ps.inflight[u.ID] = &leaseInfo{
		unit:     u,
		donor:    donor,
		deadline: time.Now().Add(s.opts.Lease),
		attempts: attempts,
	}
	ps.dispatched++
}

func (s *Server) touchDonor(name string) *donorState {
	ds, ok := s.donors[name]
	if !ok {
		ds = &donorState{}
		s.donors[name] = ds
	}
	ds.lastSeen = time.Now()
	return ds
}

func remainingCost(dm DataManager) int64 {
	if cr, ok := dm.(CostReporter); ok {
		return cr.RemainingCost()
	}
	return 0
}

// finalize marks a problem done with its DataManager's final result.
// Callers hold s.mu.
func (s *Server) finalize(ps *problemState) {
	if ps.done {
		return
	}
	out, err := ps.p.DM.FinalResult()
	ps.done = true
	ps.result, ps.err = out, err
	close(ps.doneCh)
	s.retire(ps)
}

// fail marks a problem done with an error. Callers hold s.mu.
func (s *Server) fail(ps *problemState, err error) {
	if ps.done {
		return
	}
	ps.done = true
	ps.err = err
	close(ps.doneCh)
	s.retire(ps)
}

// retire removes a completed problem from the dispatch rotation (its state
// stays addressable for Wait/Status/Stats) and releases any network-layer
// resources. Callers hold s.mu.
func (s *Server) retire(ps *problemState) {
	for i, id := range s.order {
		if id == ps.p.ID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if len(s.order) > 0 {
		s.rr %= len(s.order)
	} else {
		s.rr = 0
	}
	// Drop queued and leased unit payloads and the shared blob: a problem
	// that finalized early (Done with units still out) must not pin them
	// for the server's lifetime, and Status should not report in-flight
	// work for a done problem. (A donor fetching shared data for a retired
	// problem gets nil, fails Init, and the failure report is ignored —
	// the problem is done.)
	ps.requeue = nil
	ps.inflight = nil
	ps.shared = nil // the server's reference only; the caller's Problem is untouched
	if s.onProblemDone != nil {
		s.onProblemDone(ps.p.ID)
	}
}

// expiryLoop periodically reissues units whose lease has lapsed — the
// fault-tolerance path that lets the run survive donors being powered off.
func (s *Server) expiryLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.ExpiryScan)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.expireLeases(time.Now())
		}
	}
}

// expireLeases requeues every in-flight unit whose lease deadline passed
// and prunes donors gone long enough that their scheduling statistics are
// worthless, so the donor map stays bounded on a long-lived server.
func (s *Server) expireLeases(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	donorCutoff := now.Add(-10 * s.opts.Lease)
	for name, ds := range s.donors {
		if ds.lastSeen.Before(donorCutoff) {
			delete(s.donors, name)
		}
	}
	for _, ps := range s.problems {
		if ps.done {
			continue
		}
		for _, li := range ps.inflight {
			if ps.done {
				break // requeueLocked failed the problem mid-sweep
			}
			if now.After(li.deadline) {
				if ds, ok := s.donors[li.donor]; ok {
					ds.stats.Failures++
				}
				s.requeueLocked(ps, li, "lease expired", failExpiry)
			}
		}
	}
}
