package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// rpcServiceName is the registration name of the control-channel service.
const rpcServiceName = "Dist"

// sharedKey is the bulk-channel key of a problem's shared blob.
func sharedKey(problemID string) string { return "shared/" + problemID }

// unitKey is the bulk-channel key of one offloaded unit payload. The
// problem's incarnation epoch is part of the key: unit numbering restarts
// when a forgotten ID is resubmitted, and a stale offload racing the
// Forget must never overwrite — or be fetched as — the successor's
// payload for a colliding unit ID.
func unitKey(problemID string, epoch, unitID int64) string {
	return fmt.Sprintf("unit/%s/%d.%d", problemID, epoch, unitID)
}

// unitRef identifies one offloaded payload within a problem ID's
// bookkeeping.
type unitRef struct{ epoch, unitID int64 }

// NetworkServer is a Server with the paper's two network channels attached:
// control traffic (task handout, results, failures, cancel notices) over
// net/rpc — Go's analogue of the Java RMI the paper used — and bulk data
// (shared blobs, large unit payloads) over raw TCP sockets with
// length-prefixed, checksummed frames.
type NetworkServer struct {
	*Server
	rpcLn net.Listener
	bulk  *wire.BulkServer

	closeOnce sync.Once
	closeErr  error
	acceptWG  sync.WaitGroup

	// connsMu guards the accepted control connections so Close can tear
	// them down instead of leaving ServeConn goroutines to donors' mercy.
	connsMu sync.Mutex
	conns   map[net.Conn]struct{} //dist:guardedby connsMu
	connWG  sync.WaitGroup

	// keysMu guards the bulk keys created for offloaded unit payloads, so
	// they can be dropped once the unit (or the whole problem) completes,
	// and the per-problem shared-blob digests whose content references
	// must be released the same way.
	keysMu sync.Mutex
	// unitKeys maps problemID -> (epoch, unitID) -> key.
	//dist:guardedby keysMu
	unitKeys map[string]map[unitRef]string
	// sharedDigests maps problemID -> content digest of its shared blob.
	//dist:guardedby keysMu
	sharedDigests map[string]string
}

// ListenAndServe starts a network-facing coordinator. rpcAddr carries
// control traffic, bulkAddr carries bulk data; ":0" picks free ports.
// Under ServerOptions.DataDir the coordinator first recovers journaled
// problems (see OpenServer) and republishes their shared blobs on the
// bulk channel before accepting connections, so a redialling donor never
// races an unpublished blob.
func ListenAndServe(rpcAddr, bulkAddr string, opts ...ServerOption) (*NetworkServer, error) {
	srv, err := OpenServer(opts...)
	if err != nil {
		return nil, err
	}
	bulk, err := wire.NewBulkServer(bulkAddr)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", rpcAddr)
	if err != nil {
		_ = bulk.Close()
		_ = srv.Close()
		return nil, fmt.Errorf("dist: rpc listen: %w", err)
	}
	ns := &NetworkServer{
		Server:        srv,
		rpcLn:         ln,
		bulk:          bulk,
		unitKeys:      make(map[string]map[unitRef]string),
		sharedDigests: make(map[string]string),
		conns:         make(map[net.Conn]struct{}),
	}
	// Release a problem's bulk blobs however it ends — finalized, failed,
	// stalled, or shut down — not only on a final accepted RPC result; and
	// release a regenerated unit's offloaded payload as soon as its old ID
	// is retired.
	srv.onProblemDone = ns.dropProblemKeys
	srv.onUnitRetired = ns.dropUnitKey
	ns.republishRecovered()
	rsrv := rpc.NewServer()
	if err := rsrv.RegisterName(rpcServiceName, &rpcService{ns: ns}); err != nil {
		_ = ns.Close()
		return nil, fmt.Errorf("dist: registering rpc service: %w", err)
	}
	ns.acceptWG.Add(1)
	go func() {
		defer ns.acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ns.connsMu.Lock()
			ns.conns[conn] = struct{}{}
			ns.connsMu.Unlock()
			ns.connWG.Add(1)
			go func(c net.Conn) {
				defer ns.connWG.Done()
				ns.serveControlConn(rsrv, c)
				ns.connsMu.Lock()
				delete(ns.conns, c)
				ns.connsMu.Unlock()
			}(conn)
		}
	}()
	return ns, nil
}

// serveControlConn sniffs which codec a freshly accepted control
// connection speaks and serves it accordingly. A new donor that negotiated
// wire.CapFlatCodec opens its upgraded connection with wire.FlatPreamble;
// anything else — every legacy donor — is a gob-rpc stream, which can
// never begin with the preamble's leading zero byte. Under NoFlatCodec the
// sniff is skipped entirely so an ablation server is truly gob-only.
func (ns *NetworkServer) serveControlConn(rsrv *rpc.Server, conn net.Conn) {
	br := bufio.NewReader(conn)
	if !ns.opts.NoFlatCodec {
		if peek, err := br.Peek(len(wire.FlatPreamble)); err == nil && string(peek) == wire.FlatPreamble {
			_, _ = br.Discard(len(wire.FlatPreamble))
			rsrv.ServeCodec(wire.NewFlatServerCodec(&bufferedConn{r: br, Conn: conn}))
			return
		}
	}
	rsrv.ServeConn(&bufferedConn{r: br, Conn: conn})
}

// bufferedConn rejoins a sniffed bufio.Reader with its connection's write
// and close halves.
type bufferedConn struct {
	r *bufio.Reader
	net.Conn
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// RPCAddr returns the control-channel listen address.
func (ns *NetworkServer) RPCAddr() string { return ns.rpcLn.Addr().String() }

// BulkAddr returns the bulk-data listen address.
func (ns *NetworkServer) BulkAddr() string { return ns.bulk.Addr() }

// Submit registers a problem and publishes its shared blob on the bulk
// channel. Publication happens under the server lock after validation but
// before the problem becomes dispatchable: a donor can never be handed a
// unit whose shared data is not yet fetchable, and a rejected duplicate
// Submit never touches the live problem's blob.
//
// The blob is stored content-addressed (refcounted, one copy however many
// problems share the bytes) with the legacy "shared/<problemID>" key
// aliased onto it for donors predating wire.CapContentBulk; under
// ServerOptions.NoContentBulk it is stored under the per-problem key only.
func (ns *NetworkServer) Submit(ctx context.Context, p *Problem) error {
	if p != nil && len(p.SharedData)+1 > wire.MaxFrameSize {
		return fmt.Errorf("dist: shared data of %d bytes exceeds the bulk frame limit of %d",
			len(p.SharedData), wire.MaxFrameSize-1)
	}
	return ns.Server.submitWith(ctx, p, func(sharedDigest string) {
		if sharedDigest == "" {
			ns.bulk.Put(sharedKey(p.ID), p.SharedData)
			return
		}
		ns.bulk.PutContent(sharedDigest, p.SharedData)
		ns.bulk.Alias(sharedKey(p.ID), sharedDigest)
		ns.keysMu.Lock()
		ns.sharedDigests[p.ID] = sharedDigest
		ns.keysMu.Unlock()
	})
}

// republishRecovered puts the shared blobs of journal-recovered problems
// back on the bulk channel. Submit published them in the coordinator's
// previous life; the blobs themselves live only in memory, so a restart
// must re-derive them from the recovered problem state before any donor
// is allowed to fetch. Runs once, before the control listener accepts.
func (ns *NetworkServer) republishRecovered() {
	ns.regMu.RLock()
	var recovered []*problemState
	for _, ps := range ns.problems {
		recovered = append(recovered, ps)
	}
	ns.regMu.RUnlock()
	for _, ps := range recovered {
		ps.mu.Lock()
		skip := ps.done || !ps.recovered
		shared := ps.p.SharedData
		digest := ps.sharedDigest
		id := ps.id
		ps.mu.Unlock()
		if skip {
			continue
		}
		if digest == "" {
			ns.bulk.Put(sharedKey(id), shared)
			continue
		}
		ns.bulk.PutContent(digest, shared)
		ns.bulk.Alias(sharedKey(id), digest)
		ns.keysMu.Lock()
		ns.sharedDigests[id] = digest
		ns.keysMu.Unlock()
	}
}

// BulkStats reports the bulk channel's storage and traffic counters — the
// observable the dedup benchmark and the blob-cache tests read.
func (ns *NetworkServer) BulkStats() wire.BulkStats { return ns.bulk.Stats() }

// Close shuts down the coordinator and then both listeners. The
// coordinator is closed FIRST and the control channel keeps answering for
// a short drain window — a couple of poll intervals — so polling donors
// receive the explicit ErrClosed reply that cleanly ends their reconnect
// loops. Severing the connections first would turn every clean shutdown
// into an ambiguous EOF that a Redial-configured donor treats as a crash
// and retries forever. Long-poll donors need no window: closing the
// coordinator answers every parked WaitTask with ErrClosed immediately.
// A donor that spends the whole window inside a long unit still misses
// the sentinel and sees connection-refused on its next call; that
// residual is inherent to the poll-era control channel.
func (ns *NetworkServer) Close() error {
	ns.closeOnce.Do(func() {
		err := ns.Server.Close()
		// Drain only when someone is listening: a donor polls over a
		// persistent control connection, so an empty conns map means
		// nobody can receive the sentinel and the sleep would be wasted
		// (e.g. the constructor's own error path, or an idle teardown).
		ns.connsMu.Lock()
		draining := len(ns.conns) > 0
		ns.connsMu.Unlock()
		if draining {
			grace := 2 * ns.opts.WaitHint
			if grace < 100*time.Millisecond {
				grace = 100 * time.Millisecond
			}
			if grace > time.Second {
				grace = time.Second
			}
			time.Sleep(grace)
		}
		if lerr := ns.rpcLn.Close(); err == nil {
			err = lerr
		}
		ns.acceptWG.Wait()
		ns.connsMu.Lock()
		for c := range ns.conns {
			_ = c.Close()
		}
		ns.connsMu.Unlock()
		ns.connWG.Wait()
		if berr := ns.bulk.Close(); err == nil {
			err = berr
		}
		ns.closeErr = err
	})
	return ns.closeErr
}

// offloadPayload moves a large unit payload onto the bulk channel,
// returning the key the donor should fetch. Small payloads stay inline, as
// do payloads too large for a single bulk frame (net/rpc has no frame
// limit; the bulk server would answer not-found for them).
func (ns *NetworkServer) offloadPayload(t *Task) (bulkKey string) {
	if ns.opts.BulkThreshold < 0 || len(t.Unit.Payload) <= ns.opts.BulkThreshold {
		return ""
	}
	if len(t.Unit.Payload)+1 > wire.MaxFrameSize {
		return ""
	}
	key := unitKey(t.ProblemID, t.Epoch, t.Unit.ID)
	ns.bulk.Put(key, t.Unit.Payload)
	ns.keysMu.Lock()
	m := ns.unitKeys[t.ProblemID]
	if m == nil {
		m = make(map[unitRef]string)
		ns.unitKeys[t.ProblemID] = m
	}
	m[unitRef{t.Epoch, t.Unit.ID}] = key
	ns.keysMu.Unlock()
	// The problem may have finalized, failed, or been forgotten — even
	// forgotten and resubmitted under the same ID — between the task being
	// leased and the payload being published; the cleanup hook has already
	// run and will not cover this key, so undo the publication ourselves.
	// The check is by incarnation, not just ID, and the undo removes only
	// this task's key: a live successor's blobs must never be touched. The
	// key was registered before this check, so a cleanup racing in after
	// it also finds and deletes the blob — either way nothing leaks.
	if epoch, live := ns.Server.liveEpoch(t.ProblemID); !live || epoch != t.Epoch {
		ns.dropUnitKey(t.ProblemID, t.Epoch, t.Unit.ID)
		return ""
	}
	return key
}

// dropUnitKey discards one offloaded payload once its unit completed (or
// its publication turned out stale).
func (ns *NetworkServer) dropUnitKey(problemID string, epoch, unitID int64) {
	ns.keysMu.Lock()
	defer ns.keysMu.Unlock()
	if m := ns.unitKeys[problemID]; m != nil {
		ref := unitRef{epoch, unitID}
		if key, ok := m[ref]; ok {
			ns.bulk.Delete(key)
			delete(m, ref)
		}
		if len(m) == 0 {
			// A stale offload can re-create this entry after the problem's
			// cleanup already ran; don't leak empty maps for retired IDs.
			delete(ns.unitKeys, problemID)
		}
	}
}

// dropProblemKeys discards a completed problem's bulk blobs: the legacy
// shared key (a plain blob or an alias onto the content store), one
// content reference — the bytes themselves survive while other problems
// still reference them — and every offloaded unit payload.
func (ns *NetworkServer) dropProblemKeys(problemID string) {
	ns.keysMu.Lock()
	defer ns.keysMu.Unlock()
	if digest, ok := ns.sharedDigests[problemID]; ok {
		delete(ns.sharedDigests, problemID)
		ns.bulk.DropAlias(sharedKey(problemID))
		ns.bulk.Release(digest)
	} else {
		ns.bulk.Delete(sharedKey(problemID))
	}
	for _, key := range ns.unitKeys[problemID] {
		ns.bulk.Delete(key)
	}
	delete(ns.unitKeys, problemID)
}

// Control-channel message types (gob-encoded by net/rpc).

// TaskArgs identifies the donor requesting work.
type TaskArgs struct{ Donor string }

// WaitTaskArgs identifies the donor long-polling for work. MaxWaitNs is
// the longest park the donor wants from this call (<=0 means no
// preference); the server further clamps it to ServerOptions.LongPoll.
type WaitTaskArgs struct {
	Donor     string
	MaxWaitNs int64
	// MaxBatch asks for up to this many units in one reply (extras ride in
	// TaskReply.Batch). Zero or one requests single-unit dispatch; the
	// server further clamps to ServerOptions.DispatchBatch. Legacy donors
	// never set the field and legacy servers never read it — gob drops
	// unknown fields — so batching degrades to singles across a mixed
	// fleet without negotiation.
	MaxBatch int
}

// TaskReply carries one dispatched unit. When the payload was offloaded to
// the bulk channel, Unit.Payload is nil and BulkKey names the blob.
type TaskReply struct {
	HasTask    bool
	ProblemID  string
	Unit       Unit
	BulkKey    string
	WaitHintNs int64
	// Epoch is the problem incarnation tag (see Task.Epoch); donors echo
	// it in ResultArgs.
	Epoch int64
	// SharedDigest is the content address of the problem's shared blob
	// (see Task.SharedDigest). Donors predating the field — or the whole
	// content-bulk scheme — simply never see it: gob drops unknown fields.
	SharedDigest string
	// Priority echoes the problem's Submit-time priority (see
	// Task.Priority) so donors order batched units. Donors predating the
	// field ignore it: gob drops unknown fields, and the flat codec carries
	// it only under the bumped wire.CapFlatCodec token.
	Priority int64
	// Verify marks the unit as one replica of a quorum-verified dispatch
	// (see Task.Verify). Advisory; donors predating the field ignore it
	// (gob drops unknown fields, the flat codec carries it only under the
	// bumped wire.CapFlatCodec token).
	Verify bool
	// Batch carries the extra units of a batched WaitTask dispatch (the
	// first unit stays in the legacy fields above). Only present when the
	// donor asked via WaitTaskArgs.MaxBatch; every entry is leased and
	// epoch-tagged individually, exactly as if dispatched alone.
	Batch []BatchTask
}

// BatchTask is one extra unit in a batched TaskReply, carrying the same
// per-unit dispatch fields as the reply's legacy head unit.
type BatchTask struct {
	ProblemID string
	Unit      Unit
	BulkKey   string
	Epoch     int64
	// SharedDigest mirrors TaskReply.SharedDigest for this entry's problem
	// (batches may span problems under round-robin sharing).
	SharedDigest string
	// Priority mirrors TaskReply.Priority for this entry's problem.
	Priority int64
	// Verify mirrors TaskReply.Verify for this entry's unit.
	Verify bool
}

// ResultArgs carries one completed unit's output back to the server.
// Epoch echoes TaskReply.Epoch (zero from donors predating the field is
// accepted unchecked).
type ResultArgs struct {
	Donor     string
	ProblemID string
	UnitID    int64
	Payload   []byte
	ElapsedNs int64
	Epoch     int64
}

// FailureArgs reports a unit the donor could not compute. Transport marks
// failures to *obtain* the unit (bulk payload fetch) rather than failures
// of the computation itself; they requeue the unit without feeding the
// poisoned-unit attempt caps. Epoch echoes TaskReply.Epoch (zero from
// donors predating the field is accepted unchecked).
type FailureArgs struct {
	Donor     string
	ProblemID string
	UnitID    int64
	Reason    string
	Transport bool
	Epoch     int64
}

// CancelArgs identifies the donor draining its cancel-notice queue.
type CancelArgs struct{ Donor string }

// CancelReply carries the donor's pending epoch-tagged cancel notices —
// the control verb that lets a server-side Forget abort in-flight donor
// compute instead of collecting straggler results it would only drop.
type CancelReply struct{ Notices []CancelNotice }

// HandshakeReply tells a connecting donor where the bulk channel lives and
// which optional control verbs the server speaks. Caps carries capability
// tokens (wire.CapWaitTask, ...); gob drops fields unknown to the peer, so
// an old donor ignores the list and a new donor dialing an old server sees
// it empty and falls back to the baseline verbs.
type HandshakeReply struct {
	BulkAddr string
	Caps     []string
}

// Empty is the placeholder reply for calls with no return value.
type Empty struct{}

// rpcService adapts the Server's Coordinator interface to net/rpc. net/rpc
// carries no caller context, so handlers run under context.Background();
// cancellation crosses the wire as data (cancel notices), not as context.
type rpcService struct{ ns *NetworkServer }

// Handshake returns the bulk-channel address and the server's optional
// control-verb capabilities.
func (s *rpcService) Handshake(_ Empty, reply *HandshakeReply) error {
	reply.BulkAddr = s.ns.BulkAddr()
	if s.ns.opts.LongPoll >= 0 {
		reply.Caps = append(reply.Caps, wire.CapWaitTask)
	}
	if !s.ns.opts.NoContentBulk {
		reply.Caps = append(reply.Caps, wire.CapContentBulk)
	}
	if !s.ns.opts.NoFlatCodec {
		reply.Caps = append(reply.Caps, wire.CapFlatCodec)
	}
	return nil
}

// fillTaskReply encodes one dispatch outcome, offloading a large payload
// onto the bulk channel.
func (s *rpcService) fillTaskReply(reply *TaskReply, task *Task, wait time.Duration) {
	reply.WaitHintNs = int64(wait)
	if task == nil {
		return
	}
	reply.HasTask = true
	reply.ProblemID = task.ProblemID
	reply.Unit = task.Unit
	reply.Epoch = task.Epoch
	reply.SharedDigest = task.SharedDigest
	reply.Priority = int64(task.Priority)
	reply.Verify = task.Verify
	if key := s.ns.offloadPayload(task); key != "" {
		reply.BulkKey = key
		reply.Unit.Payload = nil
	}
}

// RequestTask hands the donor its next unit.
func (s *rpcService) RequestTask(args TaskArgs, reply *TaskReply) error {
	task, wait, err := s.ns.Server.RequestTask(context.Background(), args.Donor) //dist:allow-background net/rpc handlers have no caller ctx
	if err != nil {
		return err
	}
	s.fillTaskReply(reply, task, wait)
	return nil
}

// WaitTask is the long-poll dispatch verb: the call parks server-side
// until a unit is dispatchable for the donor or the park deadline fires
// (nil task, zero hint: the donor re-parks immediately). net/rpc runs each
// request in its own goroutine, so a parked call never blocks the
// connection; a server Close answers every parked call with ErrClosed
// before the listener goes down, so long-poll donors always receive the
// clean-shutdown sentinel the legacy drain window only delivers to lucky
// pollers. net/rpc gives handlers no view of their connection, so a donor
// that dies mid-park leaves this handler (and its ServeConn goroutine)
// parked until the deadline — a deliberate, bounded cost: at most
// ServerOptions.LongPoll per abandoned park, freed early by any wake and
// entirely by Close.
func (s *rpcService) WaitTask(args WaitTaskArgs, reply *TaskReply) error {
	if args.MaxBatch > 1 {
		tasks, wait, err := s.ns.Server.WaitTasks(context.Background(), args.Donor, time.Duration(args.MaxWaitNs), args.MaxBatch) //dist:allow-background net/rpc handlers have no caller ctx
		if err != nil {
			return err
		}
		s.fillTaskReplyBatch(reply, tasks, wait)
		return nil
	}
	task, wait, err := s.ns.Server.WaitTask(context.Background(), args.Donor, time.Duration(args.MaxWaitNs)) //dist:allow-background net/rpc handlers have no caller ctx
	if err != nil {
		return err
	}
	s.fillTaskReply(reply, task, wait)
	return nil
}

// fillTaskReplyBatch encodes a batched dispatch: the first unit in the
// reply's legacy fields, extras as Batch entries, each offloaded to the
// bulk channel independently when large.
func (s *rpcService) fillTaskReplyBatch(reply *TaskReply, tasks []*Task, wait time.Duration) {
	if len(tasks) == 0 {
		s.fillTaskReply(reply, nil, wait)
		return
	}
	s.fillTaskReply(reply, tasks[0], wait)
	for _, task := range tasks[1:] {
		bt := BatchTask{
			ProblemID:    task.ProblemID,
			Unit:         task.Unit,
			Epoch:        task.Epoch,
			SharedDigest: task.SharedDigest,
			Priority:     int64(task.Priority),
			Verify:       task.Verify,
		}
		if key := s.ns.offloadPayload(task); key != "" {
			bt.BulkKey = key
			bt.Unit.Payload = nil
		}
		reply.Batch = append(reply.Batch, bt)
	}
}

// SubmitResult folds one completed unit. Offloaded payloads are only
// dropped for *accepted* results: a straggler's reissued copy may still
// need to fetch the same blob.
func (s *rpcService) SubmitResult(args ResultArgs, _ *Empty) error {
	accepted, err := s.ns.Server.submitResult(context.Background(), &Result{ //dist:allow-background net/rpc handlers have no caller ctx
		ProblemID: args.ProblemID,
		UnitID:    args.UnitID,
		Payload:   args.Payload,
		Elapsed:   time.Duration(args.ElapsedNs),
		Donor:     args.Donor,
		Epoch:     args.Epoch,
	})
	if err != nil || !accepted {
		return err
	}
	s.ns.dropUnitKey(args.ProblemID, args.Epoch, args.UnitID)
	return nil
}

// ReportFailure requeues a unit the donor could not compute. The offloaded
// payload (if any) is kept: the reissue needs it.
func (s *rpcService) ReportFailure(args FailureArgs, _ *Empty) error {
	kind := failCompute
	if args.Transport {
		kind = failTransport
	}
	return s.ns.Server.reportFailure(context.Background(), args.Donor, args.ProblemID, args.UnitID, args.Reason, kind, args.Epoch) //dist:allow-background net/rpc handlers have no caller ctx
}

// CancelNotices drains the donor's pending cancel notices.
func (s *rpcService) CancelNotices(args CancelArgs, reply *CancelReply) error {
	notices, err := s.ns.Server.CancelNotices(context.Background(), args.Donor) //dist:allow-background net/rpc handlers have no caller ctx
	if err != nil {
		return err
	}
	reply.Notices = notices
	return nil
}

// RPCClient is the donor-side coordinator proxy: control calls over
// net/rpc, payload and shared-blob fetches over the bulk socket channel.
// Context cancellation abandons a call client-side; the RPC itself may
// still complete on the server.
type RPCClient struct {
	c        *rpc.Client
	bulkAddr string
	timeout  time.Duration
	// caps are the capability tokens the server advertised at Handshake;
	// optional verbs (WaitTask) are only called when listed.
	caps map[string]bool
	// flat records whether the control connection was upgraded to the flat
	// codec after negotiation (false: gob, the versioned fallback).
	flat bool
}

var _ Coordinator = (*RPCClient)(nil)
var _ CancelNotifier = (*RPCClient)(nil)
var _ TaskWaiter = (*RPCClient)(nil)
var _ TaskBatchWaiter = (*RPCClient)(nil)
var _ ContentFetcher = (*RPCClient)(nil)

// Dial connects to a server's control channel and learns its bulk address.
// timeout bounds the dial and every bulk fetch.
//
// The handshake always runs over gob — it is what discovers whether the
// peer speaks anything else. When the server advertises wire.CapFlatCodec
// (and no DialOption disables it), Dial opens a second connection with the
// flat preamble and retires the gob one; if that upgrade dial fails the
// gob connection is kept, so a flat-capable donor still drains a server it
// can only reach over the baseline codec.
func Dial(rpcAddr string, timeout time.Duration, opts ...DialOption) (*RPCClient, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	var dopts dialOptions
	for _, o := range opts {
		o(&dopts)
	}
	conn, err := net.DialTimeout("tcp", rpcAddr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", rpcAddr, err)
	}
	if dopts.wrapConn != nil {
		conn = dopts.wrapConn(conn)
	}
	c := rpc.NewClient(conn)
	var hr HandshakeReply
	if err := c.Call(rpcServiceName+".Handshake", Empty{}, &hr); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("dist: handshake with %s: %w", rpcAddr, err)
	}
	cl := &RPCClient{
		c:        c,
		bulkAddr: resolveBulkAddr(rpcAddr, hr.BulkAddr),
		timeout:  timeout,
		caps:     wire.NegotiateCaps(hr.Caps),
	}
	if cl.caps[wire.CapFlatCodec] && !dopts.noFlat {
		if fc, err := dialFlat(rpcAddr, timeout, dopts.wrapConn); err == nil {
			_ = c.Close()
			cl.c = fc
			cl.flat = true
		}
	}
	return cl, nil
}

// dialFlat opens a flat-codec control connection: the preamble first, then
// net/rpc over the flat codec. wrapConn (when non-nil) wraps the socket
// before any bytes flow — the preamble itself rides the shaped connection.
func dialFlat(rpcAddr string, timeout time.Duration, wrapConn func(net.Conn) net.Conn) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", rpcAddr, timeout)
	if err != nil {
		return nil, err
	}
	if wrapConn != nil {
		conn = wrapConn(conn)
	}
	if _, err := conn.Write([]byte(wire.FlatPreamble)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return rpc.NewClientWithCodec(wire.NewFlatClientCodec(conn)), nil
}

// Supports reports whether the server advertised a capability token (see
// package wire's Cap constants) at Dial.
func (c *RPCClient) Supports(token string) bool { return c.caps[token] }

// resolveBulkAddr fills in the bulk address's host from the RPC address
// when the server listens on the wildcard interface.
func resolveBulkAddr(rpcAddr, bulkAddr string) string {
	bhost, bport, err := net.SplitHostPort(bulkAddr)
	if err != nil {
		return bulkAddr
	}
	if bhost != "" && bhost != "0.0.0.0" && bhost != "::" {
		return bulkAddr
	}
	rhost, _, err := net.SplitHostPort(rpcAddr)
	if err != nil || rhost == "" {
		return bulkAddr
	}
	return net.JoinHostPort(rhost, bport)
}

// Close tears down the control connection.
func (c *RPCClient) Close() error { return c.c.Close() }

// call runs one control-channel RPC under ctx: a cancelled context
// abandons the wait (the reply, if any, is discarded by net/rpc).
func (c *RPCClient) call(ctx context.Context, method string, args, reply any) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if ctx == nil || ctx.Done() == nil {
		return rpcErr(c.c.Call(method, args, reply))
	}
	done := make(chan *rpc.Call, 1)
	c.c.Go(method, args, reply, done)
	select {
	case <-ctx.Done():
		return ctx.Err()
	case res := <-done:
		return rpcErr(res.Error)
	}
}

// RequestTask implements Coordinator. A failure fetching an offloaded
// payload is reported to the server (so the unit is requeued to another
// donor, not silently dropped) and surfaced as a transient error the donor
// loop retries past.
func (c *RPCClient) RequestTask(ctx context.Context, donor string) (*Task, time.Duration, error) {
	var r TaskReply
	if err := c.call(ctx, rpcServiceName+".RequestTask", TaskArgs{Donor: donor}, &r); err != nil {
		return nil, 0, err
	}
	return c.taskFromReply(ctx, donor, &r)
}

// WaitTask implements TaskWaiter over the control channel. Against a
// server that did not advertise wire.CapWaitTask at Dial it falls back to
// a plain RequestTask — the reply then carries the server's positive poll
// hint, which is exactly what tells the donor loop to sleep like a legacy
// poller instead of re-parking immediately.
func (c *RPCClient) WaitTask(ctx context.Context, donor string, maxWait time.Duration) (*Task, time.Duration, error) {
	if !c.caps[wire.CapWaitTask] {
		return c.RequestTask(ctx, donor)
	}
	var r TaskReply
	args := WaitTaskArgs{Donor: donor, MaxWaitNs: int64(maxWait)}
	if err := c.call(ctx, rpcServiceName+".WaitTask", args, &r); err != nil {
		return nil, 0, err
	}
	return c.taskFromReply(ctx, donor, &r)
}

// WaitTasks implements TaskBatchWaiter over the control channel: one
// long-poll carrying MaxBatch, extras decoded from TaskReply.Batch. The
// same legacy fallbacks as WaitTask apply — a server without
// wire.CapWaitTask degrades to single-unit polling, and a server that
// ignores MaxBatch simply replies with an empty Batch.
func (c *RPCClient) WaitTasks(ctx context.Context, donor string, maxWait time.Duration, max int) ([]*Task, time.Duration, error) {
	if !c.caps[wire.CapWaitTask] {
		task, wait, err := c.RequestTask(ctx, donor)
		if task == nil {
			return nil, wait, err
		}
		return []*Task{task}, wait, nil
	}
	var r TaskReply
	args := WaitTaskArgs{Donor: donor, MaxWaitNs: int64(maxWait), MaxBatch: max}
	if err := c.call(ctx, rpcServiceName+".WaitTask", args, &r); err != nil {
		return nil, 0, err
	}
	return c.tasksFromReply(ctx, donor, &r)
}

// tasksFromReply decodes a batched dispatch reply. Entries whose offloaded
// payload cannot be fetched are reported to the server as transport
// failures (requeued elsewhere, not dropped) and skipped; only when the
// whole batch is lost that way does the call surface a transient error for
// the donor loop to retry past.
func (c *RPCClient) tasksFromReply(ctx context.Context, donor string, r *TaskReply) ([]*Task, time.Duration, error) {
	wait := time.Duration(r.WaitHintNs)
	if !r.HasTask {
		return nil, wait, nil
	}
	entries := make([]BatchTask, 0, 1+len(r.Batch))
	entries = append(entries, BatchTask{ProblemID: r.ProblemID, Unit: r.Unit, BulkKey: r.BulkKey,
		Epoch: r.Epoch, SharedDigest: r.SharedDigest, Priority: r.Priority, Verify: r.Verify})
	entries = append(entries, r.Batch...)
	tasks := make([]*Task, 0, len(entries))
	var lastErr error
	for i := range entries {
		ent := &entries[i]
		if ent.BulkKey != "" {
			payload, err := wire.FetchBlob(c.bulkAddr, ent.BulkKey, c.timeout)
			if err != nil {
				ferr := fmt.Errorf("dist: fetching bulk payload %s: %w", ent.BulkKey, err)
				fargs := FailureArgs{Donor: donor, ProblemID: ent.ProblemID, UnitID: ent.Unit.ID,
					Reason: ferr.Error(), Transport: true, Epoch: ent.Epoch}
				_ = c.call(ctx, rpcServiceName+".ReportFailure", fargs, &Empty{})
				lastErr = ferr
				continue
			}
			ent.Unit.Payload = payload
		}
		tasks = append(tasks, &Task{ProblemID: ent.ProblemID, Unit: ent.Unit, Epoch: ent.Epoch,
			SharedDigest: ent.SharedDigest, Priority: int(ent.Priority), Verify: ent.Verify})
	}
	if len(tasks) == 0 && lastErr != nil {
		return nil, wait, &transientError{lastErr}
	}
	return tasks, wait, nil
}

// taskFromReply decodes a dispatch reply, fetching an offloaded payload
// from the bulk channel. A failed fetch is reported to the server as a
// transport failure (the unit requeues without feeding the poisoned-unit
// caps) and surfaced as a transient error the donor loop retries past.
func (c *RPCClient) taskFromReply(ctx context.Context, donor string, r *TaskReply) (*Task, time.Duration, error) {
	wait := time.Duration(r.WaitHintNs)
	if !r.HasTask {
		return nil, wait, nil
	}
	if r.BulkKey != "" {
		payload, err := wire.FetchBlob(c.bulkAddr, r.BulkKey, c.timeout)
		if err != nil {
			ferr := fmt.Errorf("dist: fetching bulk payload %s: %w", r.BulkKey, err)
			args := FailureArgs{Donor: donor, ProblemID: r.ProblemID, UnitID: r.Unit.ID,
				Reason: ferr.Error(), Transport: true, Epoch: r.Epoch}
			_ = c.call(ctx, rpcServiceName+".ReportFailure", args, &Empty{})
			return nil, wait, &transientError{ferr}
		}
		r.Unit.Payload = payload
	}
	return &Task{ProblemID: r.ProblemID, Unit: r.Unit, Epoch: r.Epoch,
		SharedDigest: r.SharedDigest, Priority: int(r.Priority), Verify: r.Verify}, wait, nil
}

// SharedData implements Coordinator: fetch the problem's shared blob over
// the bulk channel.
func (c *RPCClient) SharedData(ctx context.Context, problemID string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return wire.FetchBlob(c.bulkAddr, sharedKey(problemID), c.timeout)
}

// FetchContent implements ContentFetcher: fetch a shared blob by content
// digest from a server that advertised wire.CapContentBulk, degrading to
// the problem's per-problem key otherwise — the fallback that lets a new
// donor drain an old (or content-disabled) server. The caller (the donor's
// blob cache) verifies the bytes against the digest either way.
func (c *RPCClient) FetchContent(ctx context.Context, problemID, digest string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if digest != "" && c.caps[wire.CapContentBulk] {
		return wire.FetchBlob(c.bulkAddr, wire.ContentKey(digest), c.timeout)
	}
	return wire.FetchBlob(c.bulkAddr, sharedKey(problemID), c.timeout)
}

// SubmitResult implements Coordinator.
func (c *RPCClient) SubmitResult(ctx context.Context, res *Result) error {
	args := ResultArgs{
		Donor:     res.Donor,
		ProblemID: res.ProblemID,
		UnitID:    res.UnitID,
		Payload:   res.Payload,
		ElapsedNs: int64(res.Elapsed),
		Epoch:     res.Epoch,
	}
	return c.call(ctx, rpcServiceName+".SubmitResult", args, &Empty{})
}

// ReportFailure implements Coordinator.
func (c *RPCClient) ReportFailure(ctx context.Context, donor, problemID string, unitID int64, reason string) error {
	args := FailureArgs{Donor: donor, ProblemID: problemID, UnitID: unitID, Reason: reason}
	return c.call(ctx, rpcServiceName+".ReportFailure", args, &Empty{})
}

// reportTaggedFailure implements taggedFailureReporter.
func (c *RPCClient) reportTaggedFailure(ctx context.Context, donor, problemID string, unitID int64, reason string, transport bool, epoch int64) error {
	args := FailureArgs{Donor: donor, ProblemID: problemID, UnitID: unitID, Reason: reason,
		Transport: transport, Epoch: epoch}
	return c.call(ctx, rpcServiceName+".ReportFailure", args, &Empty{})
}

// CancelNotices implements CancelNotifier over the control channel.
func (c *RPCClient) CancelNotices(ctx context.Context, donor string) ([]CancelNotice, error) {
	var r CancelReply
	if err := c.call(ctx, rpcServiceName+".CancelNotices", CancelArgs{Donor: donor}, &r); err != nil {
		return nil, err
	}
	return r.Notices, nil
}

// ErrServerGone is returned by RPC-backed coordinator calls when the
// control connection is lost without an explicit close reply from the
// server — a crash, a restart, or a network partition. It is deliberately
// distinct from ErrClosed: ErrClosed means the server *told* the donor it
// is shutting down (the sentinel travelled back in an RPC reply), while
// ErrServerGone means the wire went dead mid-conversation and the server
// may well come back. Donors configured with DonorOptions.Redial reconnect
// on ErrServerGone and exit only on ErrClosed.
var ErrServerGone = errors.New("dist: server gone (connection lost)")

// rpcErr classifies transport-level failures of a control-channel call.
//
//   - A reply actually carrying the ErrClosed sentinel (flattened to a
//     string by net/rpc) is an explicit, clean shutdown: ErrClosed.
//   - EOF, unexpected EOF, a reset or severed connection, and a shut-down
//     rpc.Client all mean the conversation died without a goodbye — the
//     server crashed, restarted, or the network dropped. Observed in
//     loopback runs, even a clean server exit surfaces this way when a
//     request was in flight, so the donor cannot tell a crash from a
//     finish: both map to ErrServerGone and the reconnect loop (or, with
//     no Redial configured, a clean donor exit) decides what happens next.
func rpcErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrServerGone
	}
	msg := err.Error()
	if strings.Contains(msg, ErrClosed.Error()) {
		return ErrClosed
	}
	if strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "broken pipe") ||
		strings.Contains(msg, "use of closed network connection") {
		return ErrServerGone
	}
	return err
}
