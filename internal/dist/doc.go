// Package dist implements the paper's server/donor distributed-computing
// platform (Page, Keane, Naughton): a coordinating server partitions a
// problem into work units whose size is chosen per donor by an adaptive
// scheduling policy (package sched), and donor machines fetch units,
// compute them with a registered Algorithm, and return results. Control
// traffic travels over net/rpc (Go's analogue of the paper's Java RMI) and
// bulk data over raw TCP sockets with length-prefixed, CRC-32C-checksummed
// frames (package wire), matching the paper's two-channel design. Failed
// or expired units are requeued to other donors, which is how the system
// tolerates lab machines being switched off mid-run. See
// docs/ARCHITECTURE.md at the repository root for the layer map, the wire
// protocol specification and the problem lifecycle.
//
// # Programming model
//
// The model is the paper's: a Problem bundles a DataManager (server side —
// partitions work, folds results) with optional shared data every donor
// fetches once; the donor side is an Algorithm registered under the name
// the DataManager stamps on each Unit. Three deployment shapes run the
// same Problem unchanged: RunLocal (in-process workers), ListenAndServe +
// Dial/NewDonor (the paper's networked shape), and package simnet's
// discrete-event simulation.
//
// # The v2 surface
//
// The API is context-first and typed:
//
//   - Lifecycle calls (Submit, Wait, Status, donor Run, every Coordinator
//     method) take a context.Context. A server-side Forget — or a cancelled
//     RunLocal context — propagates an epoch-tagged cancel notice to the
//     donors holding the problem's in-flight units, whose ProcessCtx
//     contexts are cancelled so they abort instead of computing straggler
//     results that would only be dropped.
//   - TypedDM[U, R] and TypedAlgorithm[S, U, R] (see typed.go) adapt typed
//     implementations to the byte-level DataManager/Algorithm interfaces,
//     owning the gob codec at the boundary so applications never marshal by
//     hand.
//   - Server.Watch(ctx, id) streams lifecycle events (submitted,
//     unit-dispatched, unit-done, progress, failed, finished, forgotten)
//     over a bounded non-blocking fan-out, replacing Status polling.
//
// v1 Algorithms (blocking Process with no context) keep working through
// LegacyShim / RegisterLegacyAlgorithm; their only loss is that a cancel
// notice takes effect at the next unit boundary rather than mid-unit.
//
// # Dispatch: long-poll push vs. polling
//
// Donors obtain work over one of two control-channel shapes. The preferred
// path is WaitTask (see TaskWaiter): the server parks the call until a
// unit is dispatchable for that donor — a Submit, a failure or
// lease-expiry requeue, or a fold that can release stage-barrier units
// all wake parked donors — so idle dispatch latency is a channel
// wake, not a poll interval, and an idle fleet costs almost no control
// traffic. The capability is negotiated at Dial (wire.CapWaitTask in the
// Handshake reply); against a server that predates the verb, or with
// DonorOptions.LongPollWait negative, donors fall back to the classic
// RequestTask poll loop, sleeping the server's WaitHint jittered ±20%
// between empty replies. ServerOptions.LongPoll caps how long one call
// stays parked (donors re-park on expiry) and disables the verb when
// negative.
//
// # Options
//
// Servers and donors are constructed with functional options so new knobs
// never break call sites: WithPolicy, WithLeaseTTL, WithExpiryScan,
// WithWaitHint, WithBulkThreshold, WithAutoForget, WithWatchBuffer and
// WithLongPoll mutate ServerOptions; WithName, WithThrottle, WithLogf,
// WithRedial, WithRedialBackoff, WithCancelPoll and WithLongPollWait
// mutate DonorOptions. WithServerOptions/WithDonorOptions adopt a whole
// bag at once.
//
// # Error sentinels
//
// Three sentinels partition "the thing you addressed is not there":
//
//   - ErrClosed: the server was shut down explicitly — Close ran, and for
//     networked donors the sentinel travelled back in an RPC reply. A
//     donor loop treats it as "finish cleanly"; it is never retried.
//   - ErrServerGone: the control connection died without a goodbye (EOF,
//     reset, a crashed or restarted server). The server may come back:
//     donors configured with DonorOptions.Redial reconnect with capped
//     exponential backoff, all others exit cleanly.
//   - ErrForgotten: the problem existed but was retired with Forget (or
//     auto-retired by ServerOptions.AutoForget after Wait). Distinct from
//     ErrUnknownProblem, which marks an ID that was never submitted; the
//     tombstone set behind the distinction is bounded, so very old retired
//     IDs eventually degrade to ErrUnknownProblem.
package dist
