package dist

// Property tests for quorum verification and donor trust: the EWMA's
// monotonicity, probation's always-spot-check guarantee, quorum's
// never-fold-a-minority rule, replica-set donor distinctness, quarantine's
// exactly-once requeue, readmission, and the crash-recovery of pending
// verification sets.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// recDM hands out `units` unit-cost units with distinct payloads and
// records every folded payload — the wrong-fold/double-fold detector for
// the manual-submit tests below. Like every DataManager it runs under the
// problem lock; the mutex covers the test's own reads.
type recDM struct {
	mu    sync.Mutex
	units int64
	seq   int64
	folds map[int64][][]byte
}

func newRecDM(units int64) *recDM {
	return &recDM{units: units, folds: make(map[int64][][]byte)}
}

func (d *recDM) NextUnit(int64) (*Unit, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seq >= d.units {
		return nil, false, nil
	}
	d.seq++
	return &Unit{ID: d.seq, Algorithm: "verify-test/echo", Cost: 1, Payload: []byte{byte(d.seq)}}, true, nil
}

func (d *recDM) Consume(unitID int64, payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.folds[unitID] = append(d.folds[unitID], append([]byte(nil), payload...))
	return nil
}

func (d *recDM) Done() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.folds)) >= d.units
}

func (d *recDM) FinalResult() ([]byte, error) { return nil, nil }

func (d *recDM) foldsOf(unitID int64) [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.folds[unitID]
}

// submitRaw submits an arbitrary payload for the task, reporting whether
// the server accepted it.
func submitRaw(t *testing.T, s *Server, task *Task, donor string, payload []byte) bool {
	t.Helper()
	accepted, err := s.submitResult(bg, &Result{
		ProblemID: task.ProblemID, UnitID: task.Unit.ID, Payload: payload,
		Elapsed: time.Millisecond, Donor: donor, Epoch: task.Epoch,
	})
	if err != nil {
		t.Fatalf("submitResult(%s): %v", donor, err)
	}
	return accepted
}

// verifyTestOptions is the shared bag: deterministic single-unit
// dispatches, verification on every unit, quorum 2, no quarantine, no
// probation — individual tests override the knobs they exercise.
func verifyTestOptions() ServerOptions {
	return ServerOptions{
		Policy:          sched.Fixed{Size: 1},
		VerifyFraction:  1,
		VerifyQuorum:    2,
		ProbationUnits:  -1,
		QuarantineBelow: -1,
		WaitHint:        time.Millisecond,
	}
}

// TestTrustEWMAMonotone pins the reputation step's properties: strictly
// decreasing under disagreement and timeout, strictly increasing (toward
// 1) under agreement, always within [0, 1], and — the quarantine
// guarantee — repeated disagreement from neutral crosses the default
// floor within two steps and never climbs back without agreements.
func TestTrustEWMAMonotone(t *testing.T) {
	for _, outcome := range []verifyOutcome{outcomeDisagree, outcomeTimeout} {
		cur := sched.TrustNeutral
		for i := 0; i < 64; i++ {
			next := nextTrust(cur, outcome)
			if next >= cur {
				t.Fatalf("outcome %d step %d: trust %v -> %v did not decrease", outcome, i, cur, next)
			}
			if next < 0 {
				t.Fatalf("outcome %d step %d: trust %v below 0", outcome, i, next)
			}
			cur = next
		}
	}
	cur := 0.01
	for i := 0; i < 64; i++ {
		next := nextTrust(cur, outcomeAgree)
		if next <= cur || next > 1 {
			t.Fatalf("agree step %d: trust %v -> %v not increasing within (cur, 1]", i, cur, next)
		}
		cur = next
	}
	if after2 := nextTrust(nextTrust(sched.TrustNeutral, outcomeDisagree), outcomeDisagree); after2 >= 0.3 {
		t.Errorf("two disagreements from neutral left trust at %v, above the default 0.3 floor", after2)
	}
}

// TestProbationAlwaysVerifies: a donor inside its probation window has
// every unit spot-checked regardless of the sampling fraction, and stops
// being spot-checked (modulo sampling) once it has accrued the configured
// quorum agreements — while a donor joining later starts its own window.
func TestProbationAlwaysVerifies(t *testing.T) {
	o := verifyTestOptions()
	o.VerifyFraction = 0.0001 // sampling alone would verify ~nothing
	o.ProbationUnits = 2
	s := newTestServer(o)
	defer s.Close()
	dm := newRecDM(20)
	if err := s.Submit(bg, &Problem{ID: "prob", DM: dm}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		ta := dispatch(t, s, "a")
		if !ta.Verify {
			t.Fatalf("round %d: unit %d for probationary donor a not spot-checked", round, ta.Unit.ID)
		}
		tb := dispatch(t, s, "b")
		if !tb.Verify || tb.Unit.ID != ta.Unit.ID {
			t.Fatalf("round %d: donor b got %+v, want a verify replica of unit %d", round, tb, ta.Unit.ID)
		}
		if !submitRaw(t, s, ta, "a", []byte{42}) {
			t.Fatalf("round %d: primary replica result rejected", round)
		}
		if !submitRaw(t, s, tb, "b", []byte{42}) {
			t.Fatalf("round %d: agreeing replica result rejected", round)
		}
		if got := dm.foldsOf(ta.Unit.ID); len(got) != 1 {
			t.Fatalf("round %d: unit %d folded %d times, want exactly 1", round, ta.Unit.ID, len(got))
		}
	}
	for _, donor := range []string{"a", "b"} {
		info, ok := s.DonorTrust(donor)
		if !ok || info.Probation || info.Agreements != 2 {
			t.Fatalf("donor %s after 2 agreements: %+v, ok=%v; want out of probation", donor, info, ok)
		}
	}
	if task := dispatch(t, s, "a"); task.Verify {
		t.Error("post-probation dispatch still spot-checked at fraction 0.0001")
	}
	if task := dispatch(t, s, "late"); !task.Verify {
		t.Error("late-joining donor's first unit not spot-checked")
	}
}

// TestQuorumNeverFoldsMinority: with results X, Y, Y held for one unit,
// the quorum folds Y exactly once, records the conflict, and charges the
// minority donor a disagreement — X never reaches the DataManager.
func TestQuorumNeverFoldsMinority(t *testing.T) {
	s := newTestServer(verifyTestOptions())
	defer s.Close()
	dm := newRecDM(1)
	if err := s.Submit(bg, &Problem{ID: "minority", DM: dm}); err != nil {
		t.Fatal(err)
	}
	ta := dispatch(t, s, "a")
	tb := dispatch(t, s, "b")
	if !ta.Verify || !tb.Verify || ta.Unit.ID != tb.Unit.ID {
		t.Fatalf("expected two replicas of one unit, got %+v / %+v", ta, tb)
	}
	if !submitRaw(t, s, ta, "a", []byte("X")) {
		t.Fatal("a's result rejected")
	}
	if !submitRaw(t, s, tb, "b", []byte("Y")) {
		t.Fatal("b's result rejected")
	}
	// 1-vs-1: no quorum yet, nothing may fold, and a tie-breaking replica
	// must be wanted.
	if got := dm.foldsOf(ta.Unit.ID); len(got) != 0 {
		t.Fatalf("folded %v before quorum", got)
	}
	tc := dispatch(t, s, "c")
	if !tc.Verify || tc.Unit.ID != ta.Unit.ID {
		t.Fatalf("tie-breaker dispatch got %+v, want replica of unit %d", tc, ta.Unit.ID)
	}
	if !submitRaw(t, s, tc, "c", []byte("Y")) {
		t.Fatal("c's result rejected")
	}
	folds := dm.foldsOf(ta.Unit.ID)
	if len(folds) != 1 || string(folds[0]) != "Y" {
		t.Fatalf("folds = %q, want exactly one Y", folds)
	}
	stats, err := s.Stats(bg, "minority")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verified != 1 || stats.Conflicts != 1 {
		t.Errorf("Verified/Conflicts = %d/%d, want 1/1", stats.Verified, stats.Conflicts)
	}
	ia, _ := s.DonorTrust("a")
	ib, _ := s.DonorTrust("b")
	if ia.Trust >= sched.TrustNeutral {
		t.Errorf("minority donor a's trust %v did not drop below neutral", ia.Trust)
	}
	if ib.Trust <= sched.TrustNeutral {
		t.Errorf("majority donor b's trust %v did not rise above neutral", ib.Trust)
	}
}

// TestReplicaDonorsDistinct: a verification set never leases two replicas
// of its unit to one donor, even across that donor's repeated requests.
func TestReplicaDonorsDistinct(t *testing.T) {
	s := newTestServer(verifyTestOptions())
	defer s.Close()
	if err := s.Submit(bg, &Problem{ID: "distinct", DM: newRecDM(1)}); err != nil {
		t.Fatal(err)
	}
	ta := dispatch(t, s, "a")
	if !ta.Verify {
		t.Fatalf("fraction 1 dispatch not verified: %+v", ta)
	}
	for i := 0; i < 3; i++ {
		task, _, err := s.RequestTask(bg, "a")
		if err != nil {
			t.Fatal(err)
		}
		if task != nil {
			t.Fatalf("donor a holding a replica of unit %d was leased %+v of the same set", ta.Unit.ID, task)
		}
	}
	tb := dispatch(t, s, "b")
	if !tb.Verify || tb.Unit.ID != ta.Unit.ID {
		t.Fatalf("donor b got %+v, want the second replica of unit %d", tb, ta.Unit.ID)
	}
}

// TestQuarantineRequeuesInflightOnce: when a donor crosses the trust
// floor, its unverified in-flight lease is requeued exactly once, its
// later result for that lease is rejected, and it stops receiving work.
func TestQuarantineRequeuesInflightOnce(t *testing.T) {
	o := verifyTestOptions()
	o.VerifyFraction = 0.5 // alternate: unit1 unverified, unit2 verified
	o.QuarantineBelow = 0.3
	s := newTestServer(o)
	defer s.Close()
	dm := newRecDM(3)
	if err := s.Submit(bg, &Problem{ID: "quar", DM: dm}); err != nil {
		t.Fatal(err)
	}
	held := dispatch(t, s, "evil") // unit1, unverified, stays in flight
	if held.Verify {
		t.Fatalf("first unit at fraction 0.5 unexpectedly verified")
	}
	tv := dispatch(t, s, "evil") // unit2, verified, primary=evil
	if !tv.Verify {
		t.Fatalf("second unit at fraction 0.5 not verified")
	}
	tb := dispatch(t, s, "b")
	if tb.Unit.ID != tv.Unit.ID {
		t.Fatalf("donor b got unit %d, want replica of %d", tb.Unit.ID, tv.Unit.ID)
	}
	if !submitRaw(t, s, tv, "evil", []byte("WRONG")) {
		t.Fatal("evil's held result rejected before any quorum")
	}
	if !submitRaw(t, s, tb, "b", []byte("right")) {
		t.Fatal("b's result rejected")
	}
	tc := dispatch(t, s, "c")
	if tc.Unit.ID != tv.Unit.ID {
		t.Fatalf("donor c got unit %d, want the tie-breaker of %d", tc.Unit.ID, tv.Unit.ID)
	}
	if !submitRaw(t, s, tc, "c", []byte("right")) {
		t.Fatal("c's result rejected")
	}
	// The quorum resolved against evil: one disagreement from neutral is
	// 0.25, under the floor — quarantined, and unit1's lease requeued.
	if q := s.QuarantinedDonors(); len(q) != 1 || q[0] != "evil" {
		t.Fatalf("QuarantinedDonors = %v, want [evil]", q)
	}
	stats, err := s.Stats(bg, "quar")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reissued != 1 {
		t.Errorf("Reissued = %d, want exactly 1 (the quarantined donor's in-flight unit)", stats.Reissued)
	}
	if submitRaw(t, s, held, "evil", []byte("late")) {
		t.Error("quarantined donor's result was accepted")
	}
	if task, _, err := s.RequestTask(bg, "evil"); err != nil || task != nil {
		t.Errorf("quarantined donor was dispatched %+v, %v", task, err)
	}
	// The requeued unit goes back into play for someone else — once.
	td := dispatch(t, s, "d")
	if td.Unit.ID != held.Unit.ID {
		t.Fatalf("donor d got unit %d, want the requeued unit %d", td.Unit.ID, held.Unit.ID)
	}
	if stats2, _ := s.Stats(bg, "quar"); stats2.Reissued != 1 {
		t.Errorf("Reissued = %d after re-dispatch, want still 1", stats2.Reissued)
	}
}

// TestReadmitAfterReprobation: with ReadmitAfter set, a quarantined donor
// re-enters after the window on a fresh probation — neutral trust, zero
// agreements, spot-checked work.
func TestReadmitAfterReprobation(t *testing.T) {
	o := verifyTestOptions()
	o.QuarantineBelow = 0.3
	o.ProbationUnits = 1
	o.ReadmitAfter = 30 * time.Millisecond
	s := newTestServer(o)
	defer s.Close()
	dm := newRecDM(8)
	if err := s.Submit(bg, &Problem{ID: "readmit", DM: dm}); err != nil {
		t.Fatal(err)
	}
	ta := dispatch(t, s, "evil")
	tb := dispatch(t, s, "b")
	if ta.Unit.ID != tb.Unit.ID {
		t.Fatalf("donors got units %d/%d, want replicas of one unit", ta.Unit.ID, tb.Unit.ID)
	}
	submitRaw(t, s, ta, "evil", []byte("WRONG"))
	submitRaw(t, s, tb, "b", []byte("right"))
	tc := dispatch(t, s, "c")
	submitRaw(t, s, tc, "c", []byte("right"))
	if q := s.QuarantinedDonors(); len(q) != 1 || q[0] != "evil" {
		t.Fatalf("QuarantinedDonors = %v, want [evil]", q)
	}
	if task, _, _ := s.RequestTask(bg, "evil"); task != nil {
		t.Fatalf("quarantined donor dispatched %+v before the readmission window", task)
	}
	time.Sleep(40 * time.Millisecond)
	task := dispatch(t, s, "evil")
	if !task.Verify {
		t.Error("readmitted donor's first unit not spot-checked")
	}
	info, ok := s.DonorTrust("evil")
	if !ok || info.Quarantined || !info.Probation || info.Trust != sched.TrustNeutral || info.Agreements != 0 {
		t.Errorf("readmitted donor state %+v, want fresh probation at neutral trust", info)
	}
}

// TestCrashRecoveryResumesVerification is the durability satellite: a
// coordinator crashes holding one replica result of a spot-checked unit;
// the restarted coordinator replays the pending replica, re-attaches the
// regenerated unit, leases the remaining replica to a second donor, and
// the quorum completes across the crash — folding exactly once.
func TestCrashRecoveryResumesVerification(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	const n = 20 // 2 units of 10 under Fixed{10}

	o := durableServerOptions(dir)
	o.VerifyFraction = 1
	o.VerifyQuorum = 2
	o.ProbationUnits = -1
	o.QuarantineBelow = -1
	s1, err := OpenServer(WithServerOptions(o))
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	if err := s1.Submit(bg, &Problem{ID: "vcrash", DM: newDurSumDM(n)}); err != nil {
		t.Fatal(err)
	}
	ta := dispatch(t, s1, "a")
	if !ta.Verify {
		t.Fatalf("fraction-1 dispatch not verified: %+v", ta)
	}
	if !foldTask(t, s1, ta, "a") {
		t.Fatal("replica result rejected")
	}
	st, err := s1.Stats(bg, "vcrash")
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 0 {
		t.Fatalf("held replica folded before quorum: completed %d", st.Completed)
	}
	crashServer(s1)

	s2, err := OpenServer(WithServerOptions(o))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	// The restored DataManager regenerates the unit under its original ID;
	// the recovered verification set must hand donor b the second replica
	// of it rather than a fresh single lease.
	tb := dispatch(t, s2, "b")
	if tb.Unit.ID != ta.Unit.ID {
		t.Fatalf("post-crash dispatch got unit %d, want the pending verified unit %d", tb.Unit.ID, ta.Unit.ID)
	}
	if !tb.Verify {
		t.Error("post-crash replica of a recovered set not marked Verify")
	}
	if !foldTask(t, s2, tb, "b") {
		t.Fatal("second replica result rejected after recovery")
	}
	st2, err := s2.Stats(bg, "vcrash")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Completed != 1 || st2.Verified != 1 {
		t.Fatalf("after cross-crash quorum: completed %d verified %d, want 1/1", st2.Completed, st2.Verified)
	}
	// Finish the remaining unit — also spot-checked at fraction 1, so it
	// needs two distinct donors — and check the exact total: the
	// cross-crash unit folded exactly once (a double fold would double its
	// range's sum and fail the DataManager's unknown-unit check).
	tc := dispatch(t, s2, "c")
	if !foldTask(t, s2, tc, "c") {
		t.Fatal("post-crash primary result rejected")
	}
	td := dispatch(t, s2, "d")
	if td.Unit.ID != tc.Unit.ID {
		t.Fatalf("donor d got unit %d, want a replica of %d", td.Unit.ID, tc.Unit.ID)
	}
	if !foldTask(t, s2, td, "d") {
		t.Fatal("post-crash replica result rejected")
	}
	out, err := s2.Wait(bg, "vcrash")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
}

// TestVerifyExhaustionFailsLoudly: a unit whose replicas never agree must
// fail the problem with a diagnostic once it has burned the donor cap —
// not livelock redispatching forever.
func TestVerifyExhaustionFailsLoudly(t *testing.T) {
	s := newTestServer(verifyTestOptions())
	defer s.Close()
	if err := s.Submit(bg, &Problem{ID: "exhaust", DM: newRecDM(1)}); err != nil {
		t.Fatal(err)
	}
	var first *Task
	for i := 0; ; i++ {
		donor := fmt.Sprintf("d%02d", i)
		task, _, err := s.RequestTask(bg, donor)
		if err != nil {
			t.Fatal(err)
		}
		if task == nil {
			break // set stopped wanting replicas: either resolved or failed
		}
		if first == nil {
			first = task
		} else if task.Unit.ID != first.Unit.ID {
			t.Fatalf("dispatch %d switched units: %d then %d", i, first.Unit.ID, task.Unit.ID)
		}
		// Every donor answers differently: no group ever reaches quorum.
		submitRaw(t, s, task, donor, []byte(donor))
		if i > maxVerifyDonors+2 {
			t.Fatalf("still dispatching replicas after %d distinct donors (cap %d)", i, maxVerifyDonors)
		}
	}
	if _, err := s.Wait(bg, "exhaust"); err == nil {
		t.Fatal("problem with un-agreeable replicas completed instead of failing")
	} else if got := err.Error(); !contains(got, "verification exhausted") {
		t.Errorf("failure %q does not name verification exhaustion", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
