package dist

import (
	"context"
	"time"
)

// TaskWaiter is implemented by coordinators that support long-poll
// dispatch: WaitTask parks until a unit is dispatchable for the donor (or
// maxWait passes) instead of returning "nothing yet" with a poll hint.
// *Server implements it directly; *RPCClient implements it when the server
// advertised the capability at Dial and falls back to a plain RequestTask
// otherwise, so the donor loop can always call it and let the returned
// wait hint decide whether to sleep (legacy poll) or re-park immediately.
type TaskWaiter interface {
	// WaitTask is RequestTask with server-side parking. A nil task with a
	// zero wait hint means the park deadline elapsed with nothing to hand
	// out — re-park immediately; a nil task with a positive hint means the
	// coordinator could not park (legacy server, long-poll disabled) and
	// the caller should sleep the hint like a poller.
	WaitTask(ctx context.Context, donor string, maxWait time.Duration) (t *Task, wait time.Duration, err error)
}

var _ TaskWaiter = (*Server)(nil)

// TaskBatchWaiter is implemented by coordinators that can hand a donor
// several units per long-poll, amortizing one frame and one park wakeup
// across the batch. Every unit is leased and epoch-tagged individually —
// batching changes transport granularity, never lease accounting. *Server
// implements it directly (which is how in-process donors batch);
// *RPCClient implements it over the batched WaitTask verb.
type TaskBatchWaiter interface {
	// WaitTasks is WaitTask returning up to max units: the first obtained
	// by parking exactly like WaitTask, the rest by immediate re-scans
	// that stop as soon as nothing more is dispatchable. A nil/empty slice
	// follows WaitTask's nil-task conventions for the wait hint.
	WaitTasks(ctx context.Context, donor string, maxWait time.Duration, max int) (tasks []*Task, wait time.Duration, err error)
}

var _ TaskBatchWaiter = (*Server)(nil)

// batchByteBudget caps the cumulative inline payload bytes one batch may
// carry, so batching many "small" units never snowballs into a frame-sized
// reply. Offloaded (bulk-channel) payloads don't count against it — the
// reply holds only their keys.
const batchByteBudget = 1 << 20

// WaitTasks implements TaskBatchWaiter. The park semantics are WaitTask's;
// once a first unit arrives, up to limit-1 extras are collected with
// non-parking dispatch scans. Extras stop early when the scan comes up
// empty (leave the rest for other donors' parks), when the inline byte
// budget is spent, or on error (whatever was already leased is returned —
// the donor computes it; its leases are live either way).
func (s *Server) WaitTasks(ctx context.Context, donor string, maxWait time.Duration, max int) ([]*Task, time.Duration, error) {
	limit := s.batchLimit(max)
	task, wait, err := s.WaitTask(ctx, donor, maxWait)
	if err != nil || task == nil {
		return nil, wait, err
	}
	tasks := []*Task{task}
	inline := len(task.Unit.Payload)
	for len(tasks) < limit && inline < batchByteBudget {
		extra, _, err := s.RequestTask(ctx, donor)
		if err != nil || extra == nil {
			break
		}
		tasks = append(tasks, extra)
		if len(extra.Unit.Payload) <= s.opts.BulkThreshold || s.opts.BulkThreshold < 0 {
			inline += len(extra.Unit.Payload)
		}
	}
	return tasks, wait, nil
}

// batchLimit clamps a donor's requested batch size to the server's
// DispatchBatch cap (always at least one unit).
func (s *Server) batchLimit(requested int) int {
	limit := s.opts.DispatchBatch
	if limit < 1 {
		limit = 1
	}
	if requested >= 1 && requested < limit {
		limit = requested
	}
	return limit
}

// parkChan returns the current park broadcast channel. Callers must grab
// it BEFORE scanning for dispatchable work: a wake that fires between the
// grab and the scan closes the grabbed channel, so the subsequent park
// returns immediately instead of missing the event.
func (s *Server) parkChan() <-chan struct{} {
	s.parkMu.Lock()
	defer s.parkMu.Unlock()
	return s.parkCh
}

// wakeParked wakes every parked WaitTask call by closing and replacing the
// broadcast channel. Deliberately a broadcast, not a single hand-off: one
// event can make many units dispatchable (a Submit, a mass lease expiry),
// and a spurious wake only costs a parked donor one dispatch scan before
// it re-parks. Safe under any lock that permits leaf acquisition (see the
// Server lock order); never blocks.
func (s *Server) wakeParked() {
	s.parkMu.Lock()
	close(s.parkCh)
	s.parkCh = make(chan struct{})
	s.parkMu.Unlock()
}

// WaitTask implements TaskWaiter: the long-poll dispatch path. It runs the
// same dispatch scan as RequestTask, but instead of handing an empty reply
// back to a donor that would sleep WaitHint and ask again, it parks until
// a wake source fires — a Submit, a failure or lease-expiry requeue, or a
// folded result on a problem some scan starved on (stage barriers release
// new units on a fold) — and rescans. The park is bounded by the smaller of
// maxWait (donor-requested; <=0 means no preference) and
// ServerOptions.LongPoll, after which a nil task with a zero hint tells
// the donor to re-park immediately; the bound only limits how long one
// call stays outstanding. With LongPoll negative the method degrades to a
// single RequestTask scan, hint and all.
func (s *Server) WaitTask(ctx context.Context, donor string, maxWait time.Duration) (*Task, time.Duration, error) {
	if s.opts.LongPoll < 0 {
		return s.RequestTask(ctx, donor)
	}
	limit := s.opts.LongPoll
	if maxWait > 0 && maxWait < limit {
		limit = maxWait
	}
	deadline := time.NewTimer(limit)
	defer deadline.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	// A parked donor makes no coordinator calls, but donor-liveness
	// bookkeeping (liveDonorCount feeding policy budgets, otherDonorAlive
	// arbitrating requeues) presumes anyone alive has been seen within one
	// Lease. The park is therefore sliced at half the lease: each slice
	// expiry loops back through the dispatch scan, whose touchDonor stamps
	// lastSeen, without ending the caller-visible park. With the default
	// Lease (2m) ≥ LongPoll (45s) the slice never fires; it only matters
	// when the operator shortens the lease below the park.
	refresh := s.opts.Lease / 2
	for {
		ch := s.parkChan() // before the scan, or a wake in between is lost
		task, wait, err := s.RequestTask(ctx, donor)
		if err != nil || task != nil {
			return task, wait, err
		}
		slice := time.NewTimer(refresh)
		select {
		case <-ch:
			// Something may have become dispatchable; rescan. The deadline
			// keeps running: wakes extend the park's work, not its life.
			slice.Stop()
		case <-slice.C:
			// Liveness refresh: rescan (and re-stamp lastSeen), keep
			// parking against the same deadline.
		case <-deadline.C:
			slice.Stop()
			return nil, 0, nil
		case <-done:
			slice.Stop()
			return nil, 0, ctx.Err()
		case <-s.stop:
			slice.Stop()
			return nil, 0, ErrClosed
		}
	}
}
