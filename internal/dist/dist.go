package dist // package documentation lives in doc.go

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Problem bundles the server-side half of a computation with the shared
// blob donors fetch once before processing any of its units.
type Problem struct {
	// ID names the problem; it must be unique within a server.
	ID string
	// DM partitions the work and folds results. Use AdaptDM (or
	// NewTypedProblem) to derive one from a TypedDM.
	DM DataManager
	// SharedData is sent to each donor once per problem (the paper's "data
	// files over ordinary sockets"); may be nil.
	SharedData []byte
	// Priority orders this problem in the dispatch scan: higher-priority
	// problems are offered free donors first. Zero is the default tier;
	// negative values yield to everything else. Immutable after Submit.
	Priority int
	// Deadline is an optional completion target used to break priority
	// ties in the dispatch scan (earlier deadlines first; the zero time
	// means none). Advisory only — the server never fails a problem for
	// missing it. Immutable after Submit.
	Deadline time.Time
}

// DataManager is the byte-level server-side extension point: it hands out
// work units sized to a cost budget and folds completed results. Most
// applications implement the typed TypedDM instead and wrap it with
// AdaptDM, which owns the gob codec.
//
// The server calls all methods under the owning problem's lock, so
// implementations need no internal synchronisation; different problems'
// DataManagers run concurrently with each other.
type DataManager interface {
	// NextUnit returns the next work unit, sized to approximately the given
	// cost budget. ok is false when no unit is currently available — either
	// because the problem is complete or because outstanding units must be
	// consumed first (a stage barrier).
	NextUnit(budget int64) (u *Unit, ok bool, err error)
	// Consume folds one completed unit's result payload.
	Consume(unitID int64, payload []byte) error
	// Done reports whether the final result is ready. It may become true
	// while units are still in flight (e.g. a search that found its target);
	// the server then finalises immediately and discards late results.
	Done() bool
	// FinalResult returns the completed problem's output.
	FinalResult() ([]byte, error)
}

// CostReporter is optionally implemented by DataManagers that can estimate
// their outstanding work; policies like GSS and factoring use it.
type CostReporter interface {
	RemainingCost() int64
}

// Progresser is optionally implemented by DataManagers that can report
// application-level progress for status displays and Watch events.
type Progresser interface {
	Progress() (done, total int)
}

// Requeuer is optionally implemented by DataManagers that prefer to
// regenerate lost units themselves. When a unit fails or its lease expires
// the server calls Requeue instead of re-dispatching its cached payload.
type Requeuer interface {
	Requeue(unitID int64)
}

// ResultEquivaler is optionally implemented by DataManagers whose results
// are not byte-deterministic (floating-point reductions, unordered
// collections): quorum verification (ServerOptions.VerifyFraction) then
// groups replica results by EquivalentResults instead of byte equality.
// Like every DataManager method it is called under the owning problem's
// lock; it must be reflexive, symmetric and transitive over the payloads
// one unit can produce.
type ResultEquivaler interface {
	EquivalentResults(unitID int64, a, b []byte) bool
}

// Algorithm is the donor-side extension point: the computation for one kind
// of work unit. A fresh instance is created per problem on each donor (via
// the factory registered under the unit's algorithm name) and initialised
// once with the problem's shared data.
//
// ProcessCtx must honour ctx cancellation promptly: the context is
// cancelled when the server forgets the problem mid-unit (the work's result
// would be discarded) and when the donor is shut down. Most applications
// implement the typed TypedAlgorithm instead and register it with
// RegisterTypedAlgorithm.
type Algorithm interface {
	Init(shared []byte) error
	ProcessCtx(ctx context.Context, payload []byte) ([]byte, error)
}

// LegacyAlgorithm is the v1 donor-side shape: a blocking Process with no
// context. Wrap one with LegacyShim (or register it via
// RegisterLegacyAlgorithm) to run it on the v2 runtime; cancellation then
// takes effect at unit boundaries only, since a running Process cannot be
// interrupted.
type LegacyAlgorithm interface {
	Init(shared []byte) error
	Process(payload []byte) ([]byte, error)
}

// LegacyShim adapts a v1 LegacyAlgorithm to the context-aware Algorithm
// interface. A cancellation arriving mid-Process is only observed after the
// unit finishes: the computed result is then discarded by returning the
// context's error instead.
func LegacyShim(a LegacyAlgorithm) Algorithm { return legacyShim{a} }

type legacyShim struct{ a LegacyAlgorithm }

func (s legacyShim) Init(shared []byte) error { return s.a.Init(shared) }

func (s legacyShim) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out, err := s.a.Process(payload)
	if cerr := ctx.Err(); cerr != nil {
		// The unit was cancelled while Process ran; its result would be a
		// straggler for a forgotten problem, so drop it here.
		return nil, cerr
	}
	return out, err
}

// Unit is one dispatched piece of work.
type Unit struct {
	// ID is unique within the problem.
	ID int64
	// Algorithm names the registered donor-side computation.
	Algorithm string
	// Payload is the unit's input, typically produced by a typed adapter.
	Payload []byte
	// Cost is the unit's size in the problem's cost units (residues for
	// DSEARCH, candidate topologies for DPRml); the scheduler divides it by
	// elapsed time to measure donor throughput.
	Cost int64
}

// Result is a completed unit's output as carried back to the server.
type Result struct {
	ProblemID string
	UnitID    int64
	Payload   []byte
	// Elapsed is the donor-measured compute time, fed into the scheduler's
	// throughput estimate.
	Elapsed time.Duration
	// Donor names the worker that computed the unit.
	Donor string
	// Epoch echoes the Task's incarnation tag so the server can drop a
	// straggler computed for a forgotten problem whose ID was reused.
	// Zero means "unknown" (a donor predating the field) and is accepted
	// unchecked.
	Epoch int64
}

// Task is one unit of work handed to a specific donor.
type Task struct {
	ProblemID string
	Unit      Unit
	// Epoch identifies the incarnation of the problem that issued this
	// task: Forget frees a problem ID for reuse, and without the tag a
	// straggler result from the old incarnation could collide with an
	// identically numbered unit of its successor and be silently folded
	// into the wrong problem. Donors echo it in Result.Epoch.
	Epoch int64
	// SharedDigest is the content address (wire.Digest) of the problem's
	// shared blob. Donors key their blob cache by it — N problems sharing
	// one alignment cost one fetch — and verify every fetched blob against
	// it before use. Empty when the server predates (or disabled) content
	// addressing; donors then fall back to per-problem fetches with no
	// verification, the legacy behaviour.
	SharedDigest string
	// Priority echoes the owning problem's Submit-time priority so a donor
	// holding a batch can compute urgent units first. Zero for servers
	// predating the field (gob drops it; the flat codec carries it under
	// its own capability token).
	Priority int
	// Verify marks this task as one replica of a spot-checked unit: the
	// server holds its result out of the fold until a quorum of replicas
	// agrees (ServerOptions.VerifyFraction). Advisory on the donor side —
	// the computation is identical — but surfaced for logs and metering.
	// False from servers predating the field (gob drops it; the flat codec
	// carries it under its own capability token).
	Verify bool
}

// CancelNotice tells a donor that a unit it holds is dead: its problem
// incarnation was forgotten, failed, or finished early, so any in-flight
// compute for it is wasted. The donor cancels the matching unit's
// ProcessCtx context. Epoch-tagged for the same reason Task.Epoch exists —
// a notice for a forgotten incarnation must never abort a unit of a
// resubmitted successor under the same ID.
type CancelNotice struct {
	ProblemID string
	Epoch     int64
	UnitID    int64
}

// Coordinator is the donor's view of a server: the in-process *Server and
// the networked *RPCClient both implement it. Every call is context-bound;
// cancelling the context abandons the call (the RPC may still complete
// server-side).
type Coordinator interface {
	// RequestTask returns the next unit for the named donor, or a nil task
	// when none is currently available together with a hint for how long to
	// wait before polling again.
	RequestTask(ctx context.Context, donor string) (t *Task, wait time.Duration, err error)
	// SharedData fetches a problem's shared blob.
	SharedData(ctx context.Context, problemID string) ([]byte, error)
	// SubmitResult returns a completed unit's output.
	SubmitResult(ctx context.Context, res *Result) error
	// ReportFailure tells the server a unit could not be computed so it can
	// be requeued to another donor.
	ReportFailure(ctx context.Context, donor, problemID string, unitID int64, reason string) error
}

// CancelNotifier is implemented by coordinators that deliver epoch-tagged
// cancel notices for in-flight units (*Server and *RPCClient both do). The
// donor polls it while a unit is computing; foreign Coordinators without it
// simply never abort mid-unit.
type CancelNotifier interface {
	// CancelNotices drains and returns the pending notices for the donor.
	CancelNotices(ctx context.Context, donor string) ([]CancelNotice, error)
}

// ContentFetcher is implemented by coordinators that can fetch a shared
// blob by its content digest (Task.SharedDigest). *RPCClient implements it,
// fetching the digest's bulk key against servers that advertised
// wire.CapContentBulk at Dial and transparently degrading to the problem's
// legacy per-problem key otherwise — which is why problemID rides along.
// Donors verify every digest-addressed blob against the digest regardless
// of which path delivered it; coordinators without the interface are
// fetched through Coordinator.SharedData and verified the same way.
type ContentFetcher interface {
	FetchContent(ctx context.Context, problemID, digest string) ([]byte, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]func() Algorithm)
)

// RegisterAlgorithm adds a named Algorithm factory to the donor-side
// registry — the Go substitute for Java's runtime class shipping: every
// algorithm a donor can run is compiled into its binary and selected by
// name. Registering the same name twice panics.
func RegisterAlgorithm(name string, f func() Algorithm) {
	if name == "" {
		panic("dist: RegisterAlgorithm with empty name")
	}
	if f == nil {
		panic("dist: RegisterAlgorithm with nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dist: algorithm %q registered twice", name))
	}
	registry[name] = f
}

// RegisterLegacyAlgorithm registers a v1 Algorithm through LegacyShim.
func RegisterLegacyAlgorithm(name string, f func() LegacyAlgorithm) {
	if f == nil {
		panic("dist: RegisterLegacyAlgorithm with nil factory")
	}
	RegisterAlgorithm(name, func() Algorithm { return LegacyShim(f()) })
}

// RegisteredAlgorithms lists the registry's algorithm names, sorted.
func RegisteredAlgorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newAlgorithm instantiates a registered algorithm.
func newAlgorithm(name string) (Algorithm, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dist: algorithm %q not registered (have %v)", name, RegisteredAlgorithms())
	}
	return f(), nil
}
