// Package dist implements the paper's server/donor distributed-computing
// platform (Page, Keane, Naughton): a coordinating server partitions a
// problem into work units whose size is chosen per donor by an adaptive
// scheduling policy (package sched), and donor machines fetch units,
// compute them with a registered Algorithm, and return results. Control
// traffic travels over net/rpc (Go's analogue of the paper's Java RMI) and
// bulk data over raw TCP sockets with length-prefixed frames (package
// wire), matching the paper's two-channel design. Failed or expired units
// are requeued to other donors, which is how the system tolerates lab
// machines being switched off mid-run.
//
// The programming model is the paper's: a Problem bundles a DataManager
// (server side — partitions work, folds results) with optional shared data
// every donor fetches once; the donor side is an Algorithm registered under
// the name the DataManager stamps on each Unit.
package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Problem bundles the server-side half of a computation with the shared
// blob donors fetch once before processing any of its units.
type Problem struct {
	// ID names the problem; it must be unique within a server.
	ID string
	// DM partitions the work and folds results.
	DM DataManager
	// SharedData is sent to each donor once per problem (the paper's "data
	// files over ordinary sockets"); may be nil.
	SharedData []byte
}

// DataManager is the server-side extension point: it hands out work units
// sized to a cost budget and folds completed results.
//
// The server calls all methods under the owning problem's lock, so
// implementations need no internal synchronisation; different problems'
// DataManagers run concurrently with each other.
type DataManager interface {
	// NextUnit returns the next work unit, sized to approximately the given
	// cost budget. ok is false when no unit is currently available — either
	// because the problem is complete or because outstanding units must be
	// consumed first (a stage barrier).
	NextUnit(budget int64) (u *Unit, ok bool, err error)
	// Consume folds one completed unit's result payload.
	Consume(unitID int64, payload []byte) error
	// Done reports whether the final result is ready. It may become true
	// while units are still in flight (e.g. a search that found its target);
	// the server then finalises immediately and discards late results.
	Done() bool
	// FinalResult returns the completed problem's output.
	FinalResult() ([]byte, error)
}

// CostReporter is optionally implemented by DataManagers that can estimate
// their outstanding work; policies like GSS and factoring use it.
type CostReporter interface {
	RemainingCost() int64
}

// Progresser is optionally implemented by DataManagers that can report
// application-level progress for status displays.
type Progresser interface {
	Progress() (done, total int)
}

// Requeuer is optionally implemented by DataManagers that prefer to
// regenerate lost units themselves. When a unit fails or its lease expires
// the server calls Requeue instead of re-dispatching its cached payload.
type Requeuer interface {
	Requeue(unitID int64)
}

// Algorithm is the donor-side extension point: the computation for one kind
// of work unit. A fresh instance is created per problem on each donor (via
// the factory registered under the unit's algorithm name) and initialised
// once with the problem's shared data.
type Algorithm interface {
	Init(shared []byte) error
	Process(payload []byte) ([]byte, error)
}

// Unit is one dispatched piece of work.
type Unit struct {
	// ID is unique within the problem.
	ID int64
	// Algorithm names the registered donor-side computation.
	Algorithm string
	// Payload is the unit's input, typically produced by Marshal.
	Payload []byte
	// Cost is the unit's size in the problem's cost units (residues for
	// DSEARCH, candidate topologies for DPRml); the scheduler divides it by
	// elapsed time to measure donor throughput.
	Cost int64
}

// Result is a completed unit's output as carried back to the server.
type Result struct {
	ProblemID string
	UnitID    int64
	Payload   []byte
	// Elapsed is the donor-measured compute time, fed into the scheduler's
	// throughput estimate.
	Elapsed time.Duration
	// Donor names the worker that computed the unit.
	Donor string
	// Epoch echoes the Task's incarnation tag so the server can drop a
	// straggler computed for a forgotten problem whose ID was reused.
	// Zero means "unknown" (a donor predating the field) and is accepted
	// unchecked.
	Epoch int64
}

// Task is one unit of work handed to a specific donor.
type Task struct {
	ProblemID string
	Unit      Unit
	// Epoch identifies the incarnation of the problem that issued this
	// task: Forget frees a problem ID for reuse, and without the tag a
	// straggler result from the old incarnation could collide with an
	// identically numbered unit of its successor and be silently folded
	// into the wrong problem. Donors echo it in Result.Epoch.
	Epoch int64
}

// Coordinator is the donor's view of a server: the in-process *Server and
// the networked *RPCClient both implement it.
type Coordinator interface {
	// RequestTask returns the next unit for the named donor, or a nil task
	// when none is currently available together with a hint for how long to
	// wait before polling again.
	RequestTask(donor string) (t *Task, wait time.Duration, err error)
	// SharedData fetches a problem's shared blob.
	SharedData(problemID string) ([]byte, error)
	// SubmitResult returns a completed unit's output.
	SubmitResult(res *Result) error
	// ReportFailure tells the server a unit could not be computed so it can
	// be requeued to another donor.
	ReportFailure(donor, problemID string, unitID int64, reason string) error
}

// Marshal gob-encodes a unit payload, shared blob or result.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: marshal %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes data produced by Marshal.
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("dist: unmarshal %T: %w", v, err)
	}
	return nil
}

// MustMarshal is Marshal for values that cannot fail (tests, literals).
func MustMarshal(v any) []byte {
	data, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]func() Algorithm)
)

// RegisterAlgorithm adds a named Algorithm factory to the donor-side
// registry — the Go substitute for Java's runtime class shipping: every
// algorithm a donor can run is compiled into its binary and selected by
// name. Registering the same name twice panics.
func RegisterAlgorithm(name string, f func() Algorithm) {
	if name == "" {
		panic("dist: RegisterAlgorithm with empty name")
	}
	if f == nil {
		panic("dist: RegisterAlgorithm with nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dist: algorithm %q registered twice", name))
	}
	registry[name] = f
}

// RegisteredAlgorithms lists the registry's algorithm names, sorted.
func RegisteredAlgorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newAlgorithm instantiates a registered algorithm.
func newAlgorithm(name string) (Algorithm, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dist: algorithm %q not registered (have %v)", name, RegisteredAlgorithms())
	}
	return f(), nil
}
