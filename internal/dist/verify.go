package dist

// Result verification for untrusted donors (BOINC-style quorum spot
// checking). The paper's premise is folding results computed on donated
// machines; without verification any donor can submit an arbitrary fold
// and the coordinator trusts it blindly. With ServerOptions.VerifyFraction
// set, a sampled fraction of units — and every unit handed to a donor
// still in probation — is dispatched redundantly to VerifyQuorum distinct
// donors; the replica results are held out of the fold until enough of
// them agree, then exactly one winner is folded. Quorum outcomes feed a
// per-donor trust EWMA; donors falling below the trust floor are
// quarantined.
//
// The design differs from straggler speculation deliberately: speculation
// MOVES a single lease (first result wins), while verification holds a
// SET of concurrent replica leases per unit and compares their results. A
// spot-checked unit therefore lives in problemState.verify instead of the
// inflight table, and every lease, held result and excluded donor belongs
// to its verifySet until the quorum resolves.
//
// Collusion defense: once any post-probation ("trusted") donor exists, a
// result group only wins a quorum if it contains at least one trusted
// member — two unproven donors can never validate each other past the
// cold start, so a pair submitting identical wrong answers merely forces
// a trusted tie-breaking replica that outvotes them. Before any trusted
// donor exists (bootstrap), plain count-based quorum applies.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/sched"
)

// maxVerifyDonors caps how many distinct donors one verification set may
// involve. A unit that burns through this many donors without reaching
// quorum agreement fails the problem loudly — a nondeterministic
// DataManager (missing its ResultEquivaler) or a majority-malicious fleet
// must surface, not livelock.
const maxVerifyDonors = 8

// Trust EWMA weights per quorum outcome. Disagreement is punished much
// harder than it is forgiven: from neutral (0.5), two disagreements cross
// the default quarantine floor (0.3), while climbing back the same
// distance takes many agreements. Timeouts drag gently — an outage is not
// a wrong answer.
const (
	trustAgreeAlpha    = 0.15
	trustDisagreeAlpha = 0.5
	trustTimeoutAlpha  = 0.1
)

// verifyOutcome classifies one donor's part in a quorum resolution.
type verifyOutcome int

const (
	outcomeAgree verifyOutcome = iota
	outcomeDisagree
	outcomeTimeout
)

// trustDelta is one pending trust update, collected under a problem lock
// and applied after it drops: donor locks are leaves, and enacting a
// quarantine walks every problem.
type trustDelta struct {
	donor   string
	outcome verifyOutcome
}

// verifyLease is one outstanding replica lease inside a verification set.
type verifyLease struct {
	deadline time.Time
	// trusted records whether the donor was post-probation when leased, so
	// replica accounting knows whether a trusted tie-breaker is already on
	// its way.
	trusted bool
}

// verifyResult is one held replica result awaiting quorum.
type verifyResult struct {
	donor   string
	payload []byte
	// trusted records the donor's standing when the result was accepted —
	// the quorum rule keys on it, and a donor promoted later must not
	// retroactively legitimize a result it submitted while unproven.
	trusted bool
}

// verifySet tracks one unit's k-way redundant dispatch: all replica
// leases, all held results, and every donor ever involved (excluded from
// further replicas — one donor never holds two copies of a unit, even
// after its first lease expired). Guarded by the owning problemState.mu.
type verifySet struct {
	// uid is the unit ID (the problemState.verify map key, duplicated for
	// recovered sets whose unit is still nil).
	uid int64
	// unit is nil for a set rebuilt from the journal until the DataManager
	// regenerates the unit under its original ID; no replica can dispatch
	// before then.
	unit *Unit
	// attempts carries the unit's compute-failure count across replica
	// failures, feeding the same maxUnitAttempts poisoned-unit cap as
	// unverified units.
	attempts int
	donors   map[string]struct{}
	leases   map[string]verifyLease
	results  []verifyResult
}

// dispatchView is the per-request donor snapshot the dispatch scan
// carries: scheduling stats plus the donor's verification standing (zero
// values when verification is disabled).
type dispatchView struct {
	stats     sched.DonorStats
	trust     float64
	probation bool
}

// verifyEnabled reports whether quorum spot-checking is configured.
func (s *Server) verifyEnabled() bool { return s.opts.VerifyFraction > 0 }

// donorDispatchView snapshots the donor's stats and verification standing
// for one dispatch scan, performing readmission of a quarantined donor
// whose ReadmitAfter has elapsed (back to re-entry probation).
func (s *Server) donorDispatchView(ds *donorState) (view dispatchView, quarantined bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	view.stats = ds.stats
	if !s.verifyEnabled() {
		return view, false
	}
	if ds.quarantined {
		if s.opts.ReadmitAfter > 0 && time.Since(ds.quarantinedAt) >= s.opts.ReadmitAfter {
			ds.quarantined = false
			ds.trust = sched.TrustNeutral
			ds.verifiedOK = 0
		} else {
			return view, true
		}
	}
	view.trust = ds.trust
	view.probation = ds.verifiedOK < s.opts.ProbationUnits
	return view, false
}

// scaleBudgetByTrust shrinks a below-neutral donor's unit budget
// proportionally, floored at one cost unit: less of the computation rides
// on a machine whose results are suspect.
func scaleBudgetByTrust(budget int64, trust float64) int64 {
	if trust <= 0 || trust >= sched.TrustNeutral {
		return budget
	}
	b := int64(float64(budget) * (trust / sched.TrustNeutral))
	if b < 1 {
		b = 1
	}
	return b
}

// verifyBacklogLocked counts the pending verification sets this donor is
// involved in — outstanding unverified work attributable to it. A
// probation donor at ProbationUnits of backlog receives no fresh units
// (it may still serve other sets' replicas): without the bound, a fast
// unproven donor streams primaries quicker than the fleet resolves them
// and every one must be replicated, so the cold-start (or an attacker)
// multiplies the whole problem by the quorum. The scan early-exits at
// the cap, so it stays O(cap) per dispatch. Callers hold mu.
//
//dist:locked mu
func (ps *problemState) verifyBacklogLocked(donor string, limit int) (atCap bool) {
	n := 0
	for _, vs := range ps.verify {
		if _, ok := vs.donors[donor]; ok {
			if n++; n >= limit {
				return true
			}
		}
	}
	return false
}

// inflightLocked counts every outstanding lease, including verification
// replicas. Callers hold mu.
//
//dist:locked mu
func (ps *problemState) inflightLocked() int {
	n := len(ps.inflight)
	for _, vs := range ps.verify {
		n += len(vs.leases)
	}
	return n
}

// sampleVerifyLocked advances the problem's deterministic sampling
// accumulator by VerifyFraction and reports whether this fresh dispatch
// should be spot-checked. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) sampleVerifyLocked(ps *problemState) bool {
	ps.verifyAcc += s.opts.VerifyFraction
	if ps.verifyAcc >= 1 {
		ps.verifyAcc--
		return true
	}
	return false
}

// startVerifyLocked opens a verification set for a freshly dispatched
// unit: the dispatching donor holds the first replica lease, and the
// remaining quorum-1 slots become claimable by other donors immediately
// (replicaLocked), so replicas compute concurrently with the primary.
// Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) startVerifyLocked(ps *problemState, u *Unit, donor string, attempts int, view dispatchView) *Task {
	if ps.verify == nil {
		ps.verify = make(map[int64]*verifySet)
	}
	vs := &verifySet{
		uid:      u.ID,
		unit:     u,
		attempts: attempts,
		donors:   map[string]struct{}{donor: {}},
		leases: map[string]verifyLease{donor: {
			deadline: time.Now().Add(s.opts.Lease),
			trusted:  !view.probation,
		}},
	}
	ps.verify[u.ID] = vs
	ps.inflightN.Add(1)
	ps.dispatched++
	s.publishUnitEventLocked(ps, EventUnitDispatched, u.ID, donor)
	// The set's remaining replica slots are dispatchable now; parked
	// donors must rescan to claim them (parkMu is a leaf under ps.mu).
	s.wakeParked()
	t := s.taskLocked(ps, u)
	t.Verify = true
	return t
}

// replicaLocked scans the problem's pending verification sets for a
// replica this donor may serve. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) replicaLocked(ps *problemState, donor string, view dispatchView) *Task {
	for _, vs := range ps.verify {
		if t := s.replicaForSetLocked(ps, vs, donor, view); t != nil {
			return t
		}
	}
	return nil
}

// replicaForSetLocked leases one replica of vs's unit to donor if the set
// wants one and the donor is eligible: never already involved in the set
// (distinct donors per replica, enforced here at lease time), and trusted
// when the set is waiting for a trusted tie-breaker. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) replicaForSetLocked(ps *problemState, vs *verifySet, donor string, view dispatchView) *Task {
	if vs.unit == nil {
		return nil // recovered set awaiting its regenerated unit
	}
	if _, involved := vs.donors[donor]; involved {
		return nil // one donor never holds two replicas of a unit
	}
	if len(vs.donors) >= maxVerifyDonors {
		return nil
	}
	trusted := !view.probation
	want, trustedOnly := s.replicaWantLocked(ps, vs)
	if !want || (trustedOnly && !trusted) {
		return nil
	}
	vs.donors[donor] = struct{}{}
	vs.leases[donor] = verifyLease{deadline: time.Now().Add(s.opts.Lease), trusted: trusted}
	ps.inflightN.Add(1)
	ps.dispatched++
	s.publishUnitEventLocked(ps, EventUnitReplicaDispatched, vs.uid, donor)
	t := s.taskLocked(ps, vs.unit)
	t.Verify = true
	return t
}

// groupResultsLocked partitions the set's held results into equivalence
// groups (byte equality, or the DataManager's ResultEquivaler), each group
// a slice of result indices in arrival order. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) groupResultsLocked(ps *problemState, vs *verifySet) [][]int {
	eq := bytes.Equal
	if re, ok := ps.p.DM.(ResultEquivaler); ok {
		uid := vs.uid
		eq = func(a, b []byte) bool { return re.EquivalentResults(uid, a, b) }
	}
	var groups [][]int
	for i := range vs.results {
		placed := false
		for gi, g := range groups {
			if eq(vs.results[g[0]].payload, vs.results[i].payload) {
				groups[gi] = append(g, i)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{i})
		}
	}
	return groups
}

// replicaWantLocked reports whether the set wants another replica lease,
// and whether that replica must come from a trusted donor. The set wants
// replicas while no group can reach quorum with what is held plus what is
// outstanding; once some group has quorum *count* but (necessarily — it
// would have resolved otherwise) no trusted member, exactly one trusted
// tie-breaker is wanted instead, so a colluding pair cannot burn the
// donor cap by piling on untrusted agreement. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) replicaWantLocked(ps *problemState, vs *verifySet) (want, trustedOnly bool) {
	need := s.opts.VerifyQuorum
	best := 0
	for _, g := range s.groupResultsLocked(ps, vs) {
		if len(g) > best {
			best = len(g)
		}
	}
	if missing := need - best; missing > 0 {
		return missing > len(vs.leases), false
	}
	for _, l := range vs.leases {
		if l.trusted {
			return false, true // a trusted tie-breaker is already on its way
		}
	}
	return true, true
}

// verifySubmitLocked accepts one replica result into its verification set
// and attempts quorum resolution. It reports the trust updates to apply
// once ps.mu drops, whether parked donors should be woken, whether the
// result was accepted (held or folded — duplicates and impostors are
// dropped), and the unit cost for scheduler feedback. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) verifySubmitLocked(ps *problemState, vs *verifySet, res *Result, trusted bool) (deltas []trustDelta, wake, held bool, cost int64) {
	if _, involved := vs.donors[res.Donor]; !involved {
		return nil, false, false, 0 // never leased a replica of this unit
	}
	for _, r := range vs.results {
		if r.donor == res.Donor {
			return nil, false, false, 0 // duplicate submission
		}
	}
	if _, ok := vs.leases[res.Donor]; ok {
		delete(vs.leases, res.Donor)
		ps.inflightN.Add(-1)
	}
	// A straggler replica whose lease already expired is still evidence:
	// the donor computed the unit, and its answer joins the comparison.
	vs.results = append(vs.results, verifyResult{donor: res.Donor, payload: res.Payload, trusted: trusted})
	if ps.durable {
		// Held replicas are journaled so a verification set survives a
		// coordinator crash: replay rebuilds the set and the quorum
		// completes across the restart instead of recomputing every copy.
		// Buffered like folds — losing a sync interval's replicas merely
		// recomputes them.
		_ = s.journal.Append(&journal.Replica{ProblemID: ps.id, Epoch: ps.epoch, UnitID: vs.uid, Donor: res.Donor, Payload: res.Payload})
	}
	if vs.unit != nil {
		cost = vs.unit.Cost
	}
	deltas, wake = s.resolveVerifyLocked(ps, vs)
	return deltas, wake, true, cost
}

// verifyFailureLocked handles a validated compute/transport failure report
// for an outstanding replica lease: the slot reopens for another donor and
// the problem-level failure caps advance exactly as for unverified units.
// Callers hold ps.mu; the caller has already checked the lease exists.
//
//dist:locked mu
func (s *Server) verifyFailureLocked(ps *problemState, vs *verifySet, donor, reason string, kind failureKind) []trustDelta {
	delete(vs.leases, donor)
	ps.inflightN.Add(-1)
	ps.reissued++
	switch kind {
	case failCompute:
		ps.consecFails++
		vs.attempts++
		if vs.attempts >= maxUnitAttempts {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: unit %d failed %d times, last: %s",
				ps.id, vs.uid, vs.attempts, reason))
			return nil
		}
		if ps.consecFails >= maxConsecutiveFailures {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: %d consecutive failures without a completed unit, last: %s",
				ps.id, ps.consecFails, reason))
			return nil
		}
	case failTransport:
		ps.consecTransport++
		if ps.consecTransport >= maxConsecutiveTransport {
			s.failLocked(ps, fmt.Errorf("dist: problem %q: %d consecutive transport failures without a completed unit (bulk channel unreachable from every donor?), last: %s",
				ps.id, ps.consecTransport, reason))
			return nil
		}
	}
	deltas, _ := s.resolveVerifyLocked(ps, vs)
	return deltas
}

// resolveVerifyLocked attempts to resolve one verification set: fold the
// winning group if some group reaches quorum (with a trusted member, once
// any trusted donor exists), fail the problem if the set exhausted every
// allowed donor without agreement, or leave it pending. It returns the
// trust updates to apply after ps.mu drops and whether parked donors
// should be woken (a fold released a stage barrier, or a replica slot
// wants claiming). Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) resolveVerifyLocked(ps *problemState, vs *verifySet) (deltas []trustDelta, wake bool) {
	if ps.done {
		return nil, false
	}
	need := s.opts.VerifyQuorum
	trustedExists := s.trusted.Load() > 0
	groups := s.groupResultsLocked(ps, vs)
	winner := -1
	for gi, g := range groups {
		if len(g) < need {
			continue
		}
		if !trustedExists || groupHasTrusted(vs, g) {
			winner = gi
			break
		}
	}
	if winner >= 0 {
		deltas = s.foldQuorumLocked(ps, vs, groups, winner)
		wake = ps.starved && !ps.done
		ps.starved = false
		return deltas, wake
	}
	want, _ := s.replicaWantLocked(ps, vs)
	if !want {
		return nil, false // waiting on outstanding replica leases
	}
	if len(vs.donors) >= maxVerifyDonors && len(vs.leases) == 0 {
		s.failLocked(ps, fmt.Errorf("dist: problem %q: unit %d: verification exhausted %d donors without quorum agreement (nondeterministic results need a ResultEquivaler; otherwise the fleet is majority-malicious)",
			ps.id, vs.uid, len(vs.donors)))
		return nil, false
	}
	return nil, true // a replica slot is claimable: wake parked donors
}

// groupHasTrusted reports whether any result of the group was submitted
// by a then-trusted donor.
func groupHasTrusted(vs *verifySet, group []int) bool {
	for _, i := range group {
		if vs.results[i].trusted {
			return true
		}
	}
	return false
}

// foldQuorumLocked folds the winning group's result — exactly once: the
// set leaves the verify table here, so late replicas and duplicate quorums
// are impossible — cancels the set's outstanding replica leases, and
// charges every held result its quorum outcome (agree for the winning
// group, disagree for the rest). Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) foldQuorumLocked(ps *problemState, vs *verifySet, groups [][]int, winner int) (deltas []trustDelta) {
	uid := vs.uid
	// Outstanding replicas are doomed work: cancel their donors' compute.
	if len(vs.leases) > 0 {
		s.cancelMu.Lock()
		for donor := range vs.leases {
			s.queueOneCancelLocked(ps, donor, uid)
		}
		s.cancelMu.Unlock()
	}
	ps.inflightN.Add(-int64(len(vs.leases)))
	vs.leases = nil
	delete(ps.verify, uid)

	win := groups[winner]
	// Fold a trusted member's payload when one exists (all winners are
	// equivalent, but byte-exact provenance should favor the proven donor).
	pick := win[0]
	for _, i := range win {
		if vs.results[i].trusted {
			pick = i
			break
		}
	}
	for gi, g := range groups {
		outcome := outcomeDisagree
		if gi == winner {
			outcome = outcomeAgree
		}
		for _, i := range g {
			deltas = append(deltas, trustDelta{donor: vs.results[i].donor, outcome: outcome})
		}
	}
	if len(vs.results) > len(win) {
		ps.conflicts++
		loser := ""
		for gi, g := range groups {
			if gi != winner {
				loser = vs.results[g[0]].donor
				break
			}
		}
		s.publishUnitEventLocked(ps, EventQuorumConflict, uid, loser)
	}
	winRes := vs.results[pick]
	if cerr := ps.p.DM.Consume(uid, winRes.payload); cerr != nil {
		s.failLocked(ps, fmt.Errorf("dist: problem %q: Consume unit %d: %w", ps.id, uid, cerr))
		return deltas
	}
	if ps.durable {
		_ = s.journal.Append(&journal.Fold{ProblemID: ps.id, Epoch: ps.epoch, UnitID: uid, Payload: winRes.payload})
	}
	ps.completed++
	ps.verified++
	ps.consecFails = 0
	ps.consecTransport = 0
	s.publishUnitEventLocked(ps, EventQuorumAgreed, uid, winRes.donor)
	s.publishUnitEventLocked(ps, EventUnitDone, uid, winRes.donor)
	s.publishProgressLocked(ps)
	if ps.p.DM.Done() {
		s.finalizeLocked(ps)
	}
	return deltas
}

// nextTrust is the pure reputation step: one quorum outcome folded into a
// trust EWMA. Agreement pulls toward 1, disagreement and timeout decay
// toward 0 — so trust under repeated disagreement is strictly decreasing
// and never recovers without agreements.
func nextTrust(cur float64, o verifyOutcome) float64 {
	if cur < 0 {
		cur = 0
	}
	switch o {
	case outcomeAgree:
		return cur + (1-cur)*trustAgreeAlpha
	case outcomeDisagree:
		return cur * (1 - trustDisagreeAlpha)
	default: // outcomeTimeout
		return cur * (1 - trustTimeoutAlpha)
	}
}

// applyTrustDeltas feeds quorum outcomes into donor trust EWMAs, promotes
// donors out of probation, and enacts quarantine for donors crossing the
// floor. Must be called with no problem lock held: donor locks are leaves,
// and a quarantine walks every problem's lease table.
func (s *Server) applyTrustDeltas(deltas []trustDelta) {
	if len(deltas) == 0 || !s.verifyEnabled() {
		return
	}
	var newlyQuarantined []string
	for _, d := range deltas {
		ds := s.peekDonor(d.donor)
		if ds == nil {
			continue // pruned while the outcome was pending
		}
		ds.mu.Lock()
		if ds.quarantined {
			ds.mu.Unlock()
			continue
		}
		wasTrusted := ds.verifiedOK >= s.opts.ProbationUnits
		ds.trust = nextTrust(ds.trust, d.outcome)
		if d.outcome == outcomeAgree {
			ds.verifiedOK++
		}
		if floor := s.opts.QuarantineBelow; floor > 0 && ds.trust < floor {
			ds.quarantined = true
			ds.quarantinedAt = time.Now()
			if wasTrusted {
				s.trusted.Add(-1)
			}
			newlyQuarantined = append(newlyQuarantined, d.donor)
			ds.mu.Unlock()
			continue
		}
		if !wasTrusted && s.opts.ProbationUnits > 0 && ds.verifiedOK >= s.opts.ProbationUnits {
			s.trusted.Add(1)
		}
		ds.mu.Unlock()
	}
	for _, name := range newlyQuarantined {
		s.quarantineDonor(name)
	}
}

// quarantineDonor enacts one donor's quarantine across the server: every
// problem requeues the donor's in-flight leases (exactly once, failure
// kind verify), drops its outstanding replica leases and held replica
// results — a proven-bad donor's answers must not keep counting toward
// quorums — and publishes EventDonorQuarantined. Called with no locks
// held; evicting results can itself resolve quorums, whose outcomes may
// cascade into further quarantines (bounded: each donor transitions once).
func (s *Server) quarantineDonor(name string) {
	s.regMu.RLock()
	states := make([]*problemState, 0, len(s.problems))
	for _, ps := range s.problems {
		states = append(states, ps)
	}
	s.regMu.RUnlock()
	for _, ps := range states {
		var deltas []trustDelta
		wake := false
		ps.mu.Lock()
		if ps.done {
			ps.mu.Unlock()
			continue
		}
		for _, li := range ps.inflight {
			if ps.done {
				break
			}
			if li.donor == name {
				s.requeueLocked(ps, li, "donor quarantined", failVerify)
				wake = true
			}
		}
		for _, vs := range ps.verify {
			if ps.done {
				break
			}
			changed := false
			if _, ok := vs.leases[name]; ok {
				delete(vs.leases, name)
				ps.inflightN.Add(-1)
				changed = true
			}
			for i, r := range vs.results {
				if r.donor == name {
					vs.results = append(vs.results[:i], vs.results[i+1:]...)
					changed = true
					break
				}
			}
			if changed {
				d2, w2 := s.resolveVerifyLocked(ps, vs)
				deltas = append(deltas, d2...)
				wake = wake || w2
			}
		}
		if !ps.done {
			s.publishUnitEventLocked(ps, EventDonorQuarantined, 0, name)
		}
		ps.mu.Unlock()
		if wake {
			s.wakeParked()
		}
		s.applyTrustDeltas(deltas)
	}
}

// DonorTrustInfo is a point-in-time view of one donor's verification
// standing (see Server.DonorTrust).
type DonorTrustInfo struct {
	// Trust is the donor's reputation EWMA in [0, 1].
	Trust float64
	// Agreements counts the donor's quorum agreements; probation ends at
	// ServerOptions.ProbationUnits of them.
	Agreements  int
	Probation   bool
	Quarantined bool
}

// DonorTrust reports one donor's verification standing; ok is false for a
// donor the server has never seen. Zero values with verification disabled.
func (s *Server) DonorTrust(name string) (DonorTrustInfo, bool) {
	ds := s.peekDonor(name)
	if ds == nil {
		return DonorTrustInfo{}, false
	}
	if !s.verifyEnabled() {
		return DonorTrustInfo{}, true
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return DonorTrustInfo{
		Trust:       ds.trust,
		Agreements:  ds.verifiedOK,
		Probation:   !ds.quarantined && ds.verifiedOK < s.opts.ProbationUnits,
		Quarantined: ds.quarantined,
	}, true
}

// QuarantinedDonors lists the currently quarantined donors, sorted.
func (s *Server) QuarantinedDonors() []string {
	s.donorMu.RLock()
	var names []string
	for name, ds := range s.donors {
		ds.mu.Lock()
		if ds.quarantined {
			names = append(names, name)
		}
		ds.mu.Unlock()
	}
	s.donorMu.RUnlock()
	sort.Strings(names)
	return names
}

// VerifyStats summarises the fleet's verification standing.
type VerifyStats struct {
	// Trusted counts donors past probation and not quarantined; Probation
	// counts donors still accruing agreements; Quarantined counts donors
	// below the trust floor awaiting readmission (or forever, without
	// ReadmitAfter).
	Trusted, Probation, Quarantined int
}

// FleetTrust reports the fleet-wide verification tallies. All zero with
// verification disabled.
func (s *Server) FleetTrust() VerifyStats {
	var vs VerifyStats
	if !s.verifyEnabled() {
		return vs
	}
	s.donorMu.RLock()
	defer s.donorMu.RUnlock()
	for _, ds := range s.donors {
		ds.mu.Lock()
		switch {
		case ds.quarantined:
			vs.Quarantined++
		case ds.verifiedOK >= s.opts.ProbationUnits:
			vs.Trusted++
		default:
			vs.Probation++
		}
		ds.mu.Unlock()
	}
	return vs
}
