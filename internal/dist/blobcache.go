package dist

import (
	"context"
	"sync"
	"sync/atomic"
)

// BlobCache is the donor side of the content-addressed bulk channel: a
// byte-budgeted LRU of shared blobs keyed by content digest (or, against
// servers predating content addressing, by a per-incarnation pseudo-key).
// Concurrent Get calls for one key are singleflighted — the first caller
// fetches over the wire while the rest park on the entry — so a pool of
// donors starting on the same problem performs exactly one fetch.
//
// One cache may be shared by several donors in a process (RunLocal wires
// its whole worker pool to one, and WithBlobCache does the same for
// hand-built pools); a Donor given no cache creates a private one sized by
// DonorOptions.BlobCacheBytes. Content-digest entries are immutable by
// construction — the key is the hash of the bytes — so sharing them across
// donors, problems and even server reconnects is always safe.
type BlobCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64                 //dist:guardedby mu
	entries map[string]*blobEntry //dist:guardedby mu
	// order is LRU order, oldest first. Entries still being fetched are in
	// entries (that is what singleflights followers) but not yet in order,
	// so eviction can never pick an in-flight fetch.
	//dist:guardedby mu
	order []string

	fetches atomic.Int64
}

// blobEntry is one cached (or in-flight) blob. data and err are written
// exactly once, before ready is closed; waiters read them only after the
// close, which orders the accesses.
type blobEntry struct {
	ready chan struct{}
	data  []byte
	err   error
}

// NewBlobCache creates a cache holding at most budget bytes of blob data.
// budget <= 0 keeps only the most recently used blob (the eviction floor:
// even a zero budget never evicts the entry the donor is actively using,
// so a tiny budget degrades to per-problem refetches, not a livelock).
func NewBlobCache(budget int64) *BlobCache {
	if budget < 0 {
		budget = 0
	}
	return &BlobCache{
		budget:  budget,
		entries: make(map[string]*blobEntry),
	}
}

// Fetches reports how many fetches completed successfully over the cache's
// lifetime — the number Get calls that went to the wire rather than the
// cache or another caller's in-flight fetch.
func (c *BlobCache) Fetches() int64 { return c.fetches.Load() }

// Get returns the blob cached under key, running fetch (at most once
// across concurrent callers) on a miss. A failed fetch is not cached: its
// error is delivered to every caller of that flight and the next Get
// retries. A ctx cancellation abandons only this caller's wait; the flight
// itself runs detached from the initiating caller's cancellation — several
// donors may be parked on it, and one caller's aborted unit must not
// poison the blob for the rest. (The fetch stays bounded by the transport
// layer's own timeouts, as it was before the cache existed.)
func (c *BlobCache) Get(ctx context.Context, key string, fetch func(context.Context) ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touchLocked(key)
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return e.data, e.err
	}
	e := &blobEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	data, err := fetch(context.WithoutCancel(ctx))
	c.mu.Lock()
	if err != nil {
		// The entry removed is necessarily this flight's own: eviction
		// skips in-flight entries and a new flight for the key can only
		// start after this delete.
		delete(c.entries, key)
	} else {
		c.fetches.Add(1)
		e.data = data
		c.used += int64(len(data))
		c.order = append(c.order, key)
		c.evictLocked()
	}
	c.mu.Unlock()
	e.err = err
	close(e.ready)
	return data, err
}

// touchLocked moves key to the most-recently-used end. No-op for keys not
// yet in order (in-flight fetches). Callers hold mu.
//
//dist:locked mu
func (c *BlobCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// evictLocked drops least-recently-used entries until the cache fits its
// budget, always keeping the most recent one: the blob a donor just
// fetched must survive long enough to be used, however small the budget.
// Callers hold mu.
//
//dist:locked mu
func (c *BlobCache) evictLocked() {
	for c.used > c.budget && len(c.order) > 1 {
		c.dropLocked(c.order[0])
	}
}

// dropLocked removes one completed entry. Callers hold mu.
//
//dist:locked mu
func (c *BlobCache) dropLocked(key string) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	select {
	case <-e.ready:
	default:
		return // in-flight: not in order, never dropped
	}
	delete(c.entries, key)
	c.used -= int64(len(e.data))
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// drop removes one completed entry by key (in-flight fetches are left
// alone). Donors use it to retire a legacy per-incarnation entry whose
// epoch was superseded.
func (c *BlobCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked(key)
}

// dropNonContent evicts every entry not keyed by a content digest. Donors
// call it on reconnect: a restarted server reuses epochs from 1, so a
// legacy (problem, epoch) pseudo-key could collide with different bytes,
// while digest-keyed entries are immutable and stay valid forever.
func (c *BlobCache) dropNonContent() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range append([]string(nil), c.order...) {
		if !isContentDigest(key) {
			c.dropLocked(key)
		}
	}
}

// isContentDigest reports whether a cache key is a content digest (as
// opposed to a legacy per-incarnation pseudo-key).
func isContentDigest(key string) bool {
	const prefix = "sha256:"
	return len(key) > len(prefix) && key[:len(prefix)] == prefix
}
