package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/wire"
)

// Durability: with ServerOptions.DataDir set, the coordinator journals the
// three mutations that matter — a problem submitted, a unit result folded,
// a problem forgotten — to a write-ahead log (package journal) and
// checkpoints problem states in the background. Everything else the server
// tracks (leases, donor statistics, park queues) is soft state the fleet
// regenerates within a poll interval, so a restarted coordinator replays
// snapshot+tail, re-queues the un-folded work via the restored
// DataManagers, and fences pre-crash stragglers with fresh incarnation
// epochs.

// DurableDM is the optional extension point durability hangs on: a
// DataManager (typed or byte-level) that can flatten its state for the
// journal. Restoring MarshalState's bytes through the registered restorer
// must yield a DataManager that regenerates every not-yet-folded unit —
// under its original unit ID where possible, so folds journaled after the
// snapshot replay cleanly — and whose Consume rejects unknown unit IDs
// with an error rather than corrupting state (replay relies on that to be
// idempotent).
type DurableDM interface {
	// DurableKind names the restorer registered with RegisterDurableDM;
	// empty opts the DataManager out of durability.
	DurableKind() string
	// MarshalState flattens the DataManager's current state.
	MarshalState() ([]byte, error)
}

var (
	durableMu sync.RWMutex
	// durables maps DurableKind to its restorer — the server-side analogue
	// of the donor's algorithm registry: every kind a coordinator can
	// recover is compiled into its binary and selected by name.
	//dist:guardedby durableMu
	durables = map[string]func(state []byte) (DataManager, error){}
)

// RegisterDurableDM adds a named durable-DataManager restorer to the
// recovery registry. Registering the same kind twice panics, like
// RegisterAlgorithm.
func RegisterDurableDM(kind string, restore func(state []byte) (DataManager, error)) {
	if kind == "" {
		panic("dist: RegisterDurableDM with empty kind")
	}
	if restore == nil {
		panic("dist: RegisterDurableDM with nil restorer")
	}
	durableMu.Lock()
	defer durableMu.Unlock()
	if _, dup := durables[kind]; dup {
		panic(fmt.Sprintf("dist: durable DataManager kind %q registered twice", kind))
	}
	durables[kind] = restore
}

// RegisteredDurableDMs lists the registered durable kinds, sorted.
func RegisteredDurableDMs() []string {
	durableMu.RLock()
	defer durableMu.RUnlock()
	kinds := make([]string, 0, len(durables))
	for k := range durables {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// restoreDurableDM rebuilds a DataManager from its journaled state.
func restoreDurableDM(kind string, state []byte) (DataManager, error) {
	durableMu.RLock()
	restore, ok := durables[kind]
	durableMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dist: durable DataManager kind %q is not registered in this binary", kind)
	}
	dm, err := restore(state)
	if err != nil {
		return nil, fmt.Errorf("dist: restoring durable DataManager %q: %w", kind, err)
	}
	if dm == nil {
		return nil, fmt.Errorf("dist: restorer for %q returned a nil DataManager", kind)
	}
	return dm, nil
}

// durableKind reports the DataManager's durable kind (empty for
// DataManagers that opted out or never implemented DurableDM).
func durableKind(dm DataManager) string {
	if d, ok := dm.(DurableDM); ok {
		return d.DurableKind()
	}
	return ""
}

// RecoveredProblem summarises one problem a restarted coordinator rebuilt
// from its journal.
type RecoveredProblem struct {
	ProblemID string
	// Epoch is the fresh post-recovery incarnation — above every epoch the
	// journal ever issued, so results computed before the crash are fenced.
	Epoch int64
	// Completed counts units whose folds survived (snapshot plus replayed
	// tail).
	Completed int
	// Requeued estimates the units back in play: dispatch events the
	// journal saw no fold for. The restored DataManager regenerates them.
	Requeued int
}

// Recovery summarises what OpenServer rebuilt from the journal; Server.
// Recovery returns nil when the data directory held no prior state.
type Recovery struct {
	// Problems are the restored problems, in journal order.
	Problems []RecoveredProblem
	// FoldsReplayed counts tail folds applied on top of the snapshot;
	// FoldsSkipped counts folds the restored DataManagers rejected
	// (already covered by the snapshot, or for units regenerated under new
	// IDs — that work is simply recomputed).
	FoldsReplayed int
	FoldsSkipped  int
	// Truncated reports the WAL ended in a torn or corrupt frame and
	// replay stopped at the last good record.
	Truncated bool
	// Skipped lists problems that could not be restored (their kind is not
	// registered in this binary, or the state failed to decode).
	Skipped []string
}

// Recovery reports what this server rebuilt from its journal at startup,
// or nil if it started fresh (no DataDir, or an empty one).
func (s *Server) Recovery() *Recovery { return s.recovery }

// OpenServer creates a coordinator, recovering prior state from
// ServerOptions.DataDir when one is configured (WithDataDir). It is
// NewServer with the journal's I/O errors surfaced; without a DataDir it
// never fails.
func OpenServer(opts ...ServerOption) (*Server, error) {
	var o ServerOptions
	for _, opt := range opts {
		opt(&o)
	}
	o.applyDefaults()
	s := newServer(o)
	if o.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	s.start()
	return s, nil
}

// openDurable opens the journal and replays whatever it holds. Runs before
// start(): no donor, watcher or background loop exists yet.
func (s *Server) openDurable() error {
	st, rec, err := journal.Open(s.opts.DataDir, journal.Options{
		FsyncEveryRecord: s.opts.JournalFsyncEveryRecord,
	})
	if err != nil {
		return err
	}
	s.journal = st
	if err := s.recover(rec); err != nil {
		_ = st.Close()
		return err
	}
	return nil
}

// recover replays the journal into registered problems: snapshot states
// first, then the WAL tail in order. Replay is idempotent by construction —
// a fold the captured state already includes is rejected by the
// DataManager's unknown-unit check and skipped; a Submit below the live
// epoch is a duplicate; a Forget deletes only its own incarnation.
func (s *Server) recover(rec *journal.Recovered) error {
	type recEntry struct {
		snap journal.Snapshot
		dm   DataManager
		// replicas holds the journaled-but-not-folded replica results of
		// quorum-verified units, keyed unit → donor → payload. A Fold for
		// the unit under the same epoch supersedes them (WAL order
		// guarantees the fold was appended after every replica it resolved).
		replicas map[int64]map[string][]byte
	}
	info := &Recovery{Truncated: rec.Truncated}
	entries := make(map[string]*recEntry)
	var order []string
	restore := func(sn journal.Snapshot) {
		dm, err := restoreDurableDM(sn.Kind, sn.State)
		if err != nil {
			info.Skipped = append(info.Skipped, fmt.Sprintf("%s: %v", sn.ProblemID, err))
			return
		}
		if _, ok := entries[sn.ProblemID]; !ok {
			order = append(order, sn.ProblemID)
		}
		entries[sn.ProblemID] = &recEntry{snap: sn, dm: dm}
	}
	for _, sn := range rec.Problems {
		restore(sn)
	}
	for _, r := range rec.Tail {
		switch r := r.(type) {
		case *journal.Submit:
			if e, ok := entries[r.ProblemID]; ok && e.snap.Epoch >= r.Epoch {
				continue // the snapshot already covers this incarnation
			}
			restore(journal.Snapshot{ProblemID: r.ProblemID, Epoch: r.Epoch, Kind: r.Kind, State: r.State, Shared: r.Shared})
		case *journal.Fold:
			e, ok := entries[r.ProblemID]
			if !ok || e.snap.Epoch != r.Epoch {
				continue
			}
			// Folded — whether replayed or already covered — means any held
			// replicas of the unit are resolved; drop them either way.
			delete(e.replicas, r.UnitID)
			if err := e.dm.Consume(r.UnitID, r.Payload); err != nil {
				info.FoldsSkipped++
				continue
			}
			e.snap.Completed++
			info.FoldsReplayed++
		case *journal.Replica:
			e, ok := entries[r.ProblemID]
			if !ok || e.snap.Epoch != r.Epoch {
				continue
			}
			if e.replicas == nil {
				e.replicas = make(map[int64]map[string][]byte)
			}
			if e.replicas[r.UnitID] == nil {
				e.replicas[r.UnitID] = make(map[string][]byte)
			}
			e.replicas[r.UnitID][r.Donor] = r.Payload
		case *journal.Forget:
			if e, ok := entries[r.ProblemID]; ok && e.snap.Epoch == r.Epoch {
				delete(entries, r.ProblemID)
			}
		}
	}

	// Epoch fencing across the restart: seed the incarnation allocator
	// above everything the journal ever issued, then give every recovered
	// problem a fresh epoch. A pre-crash straggler redialing in carries the
	// old epoch and is dropped by the existing mismatch checks.
	if cur := s.epochSeq.Load(); cur < rec.MaxEpoch {
		s.epochSeq.Store(rec.MaxEpoch)
	}
	for _, id := range order {
		e, ok := entries[id]
		if !ok {
			continue // forgotten in the tail
		}
		sn := e.snap
		requeued := int(sn.Dispatched - sn.Completed)
		if requeued < 0 {
			requeued = 0
		}
		completed := int(sn.Completed)
		dispatched := int(sn.Dispatched)
		if dispatched < completed {
			// Tail folds can outnumber snapshotted dispatch events; keep
			// the counters' dispatched ≥ completed invariant.
			dispatched = completed
		}
		var digest string
		if !s.opts.NoContentBulk {
			digest = wire.Digest(sn.Shared)
		}
		ps := &problemState{
			id:           id,
			epoch:        s.epochSeq.Add(1),
			sharedDigest: digest,
			p:            &Problem{ID: id, DM: e.dm, SharedData: sn.Shared},
			shared:       sn.Shared,
			inflight:     make(map[int64]*leaseInfo),
			doneCh:       make(chan struct{}),
			durable:      true,
			kind:         sn.Kind,
			recovered:    true,
			dispatched:   dispatched,
			completed:    completed,
			reissued:     int(sn.Reissued),
		}
		s.regMu.Lock()
		s.problems[id] = ps
		s.order = append(s.order, id)
		s.untombstoneLocked(id)
		s.regMu.Unlock()
		ps.mu.Lock()
		if e.dm.Done() {
			// Every fold was journaled before the crash: the problem
			// completes during replay and waiters get the result without
			// any recomputation.
			s.finalizeLocked(ps)
		} else if s.verifyEnabled() && len(e.replicas) > 0 {
			// Rebuild the pending verification sets from their journaled
			// replicas, so quorums started before the crash complete across
			// it instead of recomputing every copy. The sets have no unit
			// yet (the restored DataManager re-emits it under its original
			// ID at the next dispatch) and no leases; donor trust is soft
			// state, so every recovered result counts as untrusted. A set
			// whose quorum was already satisfied — the fold record was lost
			// with the crash — resolves right here: no donor is trusted
			// this early, so plain count quorum applies.
			ps.verify = make(map[int64]*verifySet, len(e.replicas))
			for uid, byDonor := range e.replicas {
				vs := &verifySet{
					uid:    uid,
					donors: make(map[string]struct{}, len(byDonor)),
					leases: make(map[string]verifyLease),
				}
				for donor, payload := range byDonor {
					vs.donors[donor] = struct{}{}
					vs.results = append(vs.results, verifyResult{donor: donor, payload: payload})
				}
				ps.verify[uid] = vs
				s.resolveVerifyLocked(ps, vs)
			}
		}
		ps.mu.Unlock()
		info.Problems = append(info.Problems, RecoveredProblem{
			ProblemID: id, Epoch: ps.epoch, Completed: completed, Requeued: requeued,
		})
	}
	if len(rec.Problems) == 0 && len(rec.Tail) == 0 && !rec.Truncated {
		// Fresh directory: nothing to fence, nothing to compact — skip the
		// checkpoint rather than write an empty snapshot.
		return nil
	}
	s.recovery = info
	// Recovery checkpoint: persist the fresh epochs immediately, so a
	// second crash replays folds journaled under them instead of mismatched
	// pre-crash incarnations — and the old segments are compacted away.
	return s.snapshotNow()
}

// snapshotLoop compacts the journal in the background whenever the live
// WAL segment exceeds the byte or record budget.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SnapshotScan)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			bytes, records := s.journal.LogSize()
			if (s.opts.SnapshotBytes > 0 && bytes >= s.opts.SnapshotBytes) ||
				(s.opts.SnapshotRecords > 0 && records >= s.opts.SnapshotRecords) {
				// A failed snapshot keeps the old segments (nothing is
				// pruned), so the error is not fatal here; sticky journal
				// I/O errors surface at Close.
				_ = s.snapshotNow()
			}
		}
	}
}

// snapshotNow rotates the WAL, captures every live durable problem and
// writes the checkpoint. Rotation happens first so the snapshot covers
// everything in the retired segments; folds racing into the new segment
// during capture replay idempotently on top of it.
func (s *Server) snapshotNow() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.journal.Rotate(); err != nil {
		return err
	}
	snaps, err := s.captureDurable()
	if err != nil {
		// Without a complete capture, writing this snapshot would prune
		// segments still needed to recover the problem that failed to
		// marshal. Abort; recovery replays across the extra segments.
		return err
	}
	return s.journal.WriteSnapshot(journal.Meta{EpochSeq: s.epochSeq.Load()}, snaps)
}

// captureDurable marshals every live durable problem's state under its own
// lock. Finished problems are skipped: durability covers in-flight work,
// and a done problem's folds in the WAL replay it back to done anyway
// until compaction retires them.
//
// Pending verification replicas are re-appended to the (just rotated) WAL
// here, under the same ps.mu a racing fold would take: compaction prunes
// the segments holding their original records, and without the re-append a
// crash after pruning would lose every held replica. Appending under the
// lock keeps the WAL's replica-before-fold order for any unit that folds
// during the capture.
func (s *Server) captureDurable() ([]journal.Snapshot, error) {
	s.regMu.RLock()
	states := make([]*problemState, 0, len(s.order))
	for _, id := range s.order {
		if ps := s.problems[id]; ps != nil {
			states = append(states, ps)
		}
	}
	s.regMu.RUnlock()
	var snaps []journal.Snapshot
	for _, ps := range states {
		ps.mu.Lock()
		if ps.done || !ps.durable {
			ps.mu.Unlock()
			continue
		}
		d, ok := ps.p.DM.(DurableDM)
		if !ok {
			ps.mu.Unlock()
			continue
		}
		state, err := d.MarshalState()
		if err != nil {
			ps.mu.Unlock()
			return nil, fmt.Errorf("dist: problem %q: marshal durable state: %w", ps.id, err)
		}
		snaps = append(snaps, journal.Snapshot{
			ProblemID:  ps.id,
			Epoch:      ps.epoch,
			Kind:       ps.kind,
			State:      state,
			Shared:     ps.shared,
			Dispatched: int64(ps.dispatched),
			Completed:  int64(ps.completed),
			Reissued:   int64(ps.reissued),
		})
		for _, vs := range ps.verify {
			for _, r := range vs.results {
				_ = s.journal.Append(&journal.Replica{ProblemID: ps.id, Epoch: ps.epoch, UnitID: vs.uid, Donor: r.donor, Payload: r.payload})
			}
		}
		ps.mu.Unlock()
	}
	return snaps, nil
}
