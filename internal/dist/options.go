package dist

import (
	"net"
	"time"

	"repro/internal/sched"
)

// Functional options: NewServer, ListenAndServe and NewDonor take variadic
// option lists so future knobs never break existing call sites. The
// ServerOptions/DonorOptions structs remain the documented bags the options
// mutate; WithServerOptions/WithDonorOptions adopt a whole bag at once.

// ServerOption tunes one ServerOptions knob.
type ServerOption func(*ServerOptions)

// WithServerOptions replaces the whole option bag — handy when an options
// struct is built programmatically (config files, tests).
func WithServerOptions(o ServerOptions) ServerOption {
	return func(dst *ServerOptions) { *dst = o }
}

// WithPolicy sets the scheduling policy sizing work units per donor.
func WithPolicy(p sched.Policy) ServerOption {
	return func(o *ServerOptions) { o.Policy = p }
}

// WithLeaseTTL sets how long a dispatched unit may stay out before it is
// presumed lost and reissued to another donor.
func WithLeaseTTL(d time.Duration) ServerOption {
	return func(o *ServerOptions) { o.Lease = d }
}

// WithExpiryScan sets the interval between lease sweeps.
func WithExpiryScan(d time.Duration) ServerOption {
	return func(o *ServerOptions) { o.ExpiryScan = d }
}

// WithWaitHint sets how long donors are told to wait before polling again
// when no unit is available.
func WithWaitHint(d time.Duration) ServerOption {
	return func(o *ServerOptions) { o.WaitHint = d }
}

// WithBulkThreshold sets the payload size above which a network server
// ships unit payloads over the bulk channel (negative disables offloading).
func WithBulkThreshold(n int) ServerOption {
	return func(o *ServerOptions) { o.BulkThreshold = n }
}

// WithAutoForget retires each problem automatically once a Wait call has
// delivered its final result.
func WithAutoForget(on bool) ServerOption {
	return func(o *ServerOptions) { o.AutoForget = on }
}

// WithWatchBuffer sets the per-subscriber event buffer of Server.Watch; a
// subscriber that falls more than this many events behind loses the oldest
// ones (terminal events are always delivered).
func WithWatchBuffer(n int) ServerOption {
	return func(o *ServerOptions) { o.WatchBuffer = n }
}

// WithLongPoll caps how long one WaitTask call may stay parked server-side
// before replying "no task" (the donor immediately re-parks). Negative
// disables long-poll dispatch: the capability is not advertised at
// Handshake and donors fall back to the jittered poll loop.
func WithLongPoll(d time.Duration) ServerOption {
	return func(o *ServerOptions) { o.LongPoll = d }
}

// WithContentBulk toggles content-addressed shared blobs (on by default):
// off restores per-problem bulk keys only — no task digests, no
// wire.CapContentBulk at Handshake — for ablation benchmarks and
// mixed-fleet debugging.
func WithContentBulk(on bool) ServerOption {
	return func(o *ServerOptions) { o.NoContentBulk = !on }
}

// WithDispatchBatch caps how many units one batched WaitTask reply may
// carry (zero keeps the default of 8; negative or 1 disables batching —
// the pre-batch single-unit replies, kept for ablation).
func WithDispatchBatch(n int) ServerOption {
	return func(o *ServerOptions) { o.DispatchBatch = n }
}

// WithFlatCodec toggles the flat control-channel codec (on by default):
// off stops advertising wire.CapFlatCodec and sniffing for the flat
// preamble, so every connection speaks gob — the pre-flat behaviour, kept
// for ablation benchmarks and mixed-fleet debugging.
func WithFlatCodec(on bool) ServerOption {
	return func(o *ServerOptions) { o.NoFlatCodec = !on }
}

// WithDataDir makes the coordinator durable: mutations are journaled to a
// write-ahead log under dir, compacted into periodic snapshots, and
// replayed on the next start so registered durable problems survive a
// crash. Empty keeps today's in-memory coordinator.
func WithDataDir(dir string) ServerOption {
	return func(o *ServerOptions) { o.DataDir = dir }
}

// WithJournalFsync makes every journal append fsync before returning
// instead of riding the batched group commit — the durability ablation
// knob (see BenchmarkJournalOverhead). Meaningless without WithDataDir.
func WithJournalFsync(everyRecord bool) ServerOption {
	return func(o *ServerOptions) { o.JournalFsyncEveryRecord = everyRecord }
}

// WithSnapshotBudget sets when the background snapshotter compacts the
// write-ahead log: whenever the live segment exceeds bytes or records
// (zero keeps a default; negative disables that trigger). Meaningless
// without WithDataDir.
func WithSnapshotBudget(bytes int64, records int) ServerOption {
	return func(o *ServerOptions) { o.SnapshotBytes, o.SnapshotRecords = bytes, records }
}

// WithSpeculation enables speculative re-dispatch of straggler units once
// a problem is at least frac complete (see ServerOptions.SpeculateAfter).
// Zero — the default — disables speculation.
func WithSpeculation(frac float64) ServerOption {
	return func(o *ServerOptions) { o.SpeculateAfter = frac }
}

// WithVerify enables quorum spot-checking of results from untrusted
// donors: fraction of freshly dispatched units (plus every unit handed to
// a donor still in probation) is replicated to quorum distinct donors, and
// the unit folds only once quorum results agree (see
// ServerOptions.VerifyFraction/VerifyQuorum). Fraction zero — the
// default — disables verification entirely.
func WithVerify(fraction float64, quorum int) ServerOption {
	return func(o *ServerOptions) { o.VerifyFraction, o.VerifyQuorum = fraction, quorum }
}

// WithQuarantineBelow sets the trust floor under which a donor is
// quarantined: it stops receiving work and its pending results are
// rejected (see ServerOptions.QuarantineBelow). Zero keeps the default;
// negative disables quarantine while keeping trust tracking. Meaningless
// without WithVerify.
func WithQuarantineBelow(trust float64) ServerOption {
	return func(o *ServerOptions) { o.QuarantineBelow = trust }
}

// WithProbation sets how many quorum agreements a new donor must accrue
// before its unverified results are folded directly; until then every unit
// it receives is spot-checked (see ServerOptions.ProbationUnits). Zero
// keeps the default; negative disables probation. Meaningless without
// WithVerify.
func WithProbation(units int) ServerOption {
	return func(o *ServerOptions) { o.ProbationUnits = units }
}

// WithReadmitAfter lets a quarantined donor back in after d on re-entry
// probation: trust and probation progress reset as if it had just joined.
// Zero — the default — quarantines forever. Meaningless without
// WithVerify.
func WithReadmitAfter(d time.Duration) ServerOption {
	return func(o *ServerOptions) { o.ReadmitAfter = d }
}

// DonorOption tunes one DonorOptions knob.
type DonorOption func(*DonorOptions)

// WithDonorOptions replaces the whole option bag.
func WithDonorOptions(o DonorOptions) DonorOption {
	return func(dst *DonorOptions) { *dst = o }
}

// WithName sets the donor's name in server statistics and logs.
func WithName(name string) DonorOption {
	return func(o *DonorOptions) { o.Name = name }
}

// WithThrottle sets the pause between units (a polite background service).
func WithThrottle(d time.Duration) DonorOption {
	return func(o *DonorOptions) { o.Throttle = d }
}

// WithLogf routes the donor's progress and failure messages.
func WithLogf(f func(format string, args ...any)) DonorOption {
	return func(o *DonorOptions) { o.Logf = f }
}

// WithRedial makes the donor a resilient background service that
// re-establishes its coordinator connection when the server vanishes.
func WithRedial(f func() (Coordinator, error)) DonorOption {
	return func(o *DonorOptions) { o.Redial = f }
}

// WithRedialBackoff bounds the exponential backoff between redial attempts.
func WithRedialBackoff(min, max time.Duration) DonorOption {
	return func(o *DonorOptions) { o.RedialMin, o.RedialMax = min, max }
}

// WithCancelPoll sets how often a busy donor polls the coordinator for
// cancel notices while a unit is computing (negative disables the poll, so
// cancellation is only observed at unit boundaries).
func WithCancelPoll(d time.Duration) DonorOption {
	return func(o *DonorOptions) { o.CancelPoll = d }
}

// WithLongPollWait sets the park duration the donor requests per WaitTask
// long-poll (negative disables long-polling; the donor then uses the
// jittered RequestTask poll loop even against a capable server).
func WithLongPollWait(d time.Duration) DonorOption {
	return func(o *DonorOptions) { o.LongPollWait = d }
}

// WithBlobCacheBytes budgets the donor's shared-blob cache (zero keeps the
// 256 MiB default, negative caches only the most recent blob). The budget
// also derives how many problems' algorithm state stays resident.
func WithBlobCacheBytes(n int64) DonorOption {
	return func(o *DonorOptions) { o.BlobCacheBytes = n }
}

// WithBlobCache attaches a specific (typically shared) blob cache to the
// donor; several in-process donors given the same cache fetch a shared
// blob once per process instead of once per donor.
func WithBlobCache(c *BlobCache) DonorOption {
	return func(o *DonorOptions) { o.BlobCache = c }
}

// WithTaskBatch sets how many units the donor asks for per WaitTask
// long-poll against a batch-capable coordinator (zero keeps the default of
// 8; negative or 1 keeps single-unit dispatch).
func WithTaskBatch(n int) DonorOption {
	return func(o *DonorOptions) { o.DispatchBatch = n }
}

// WithAlgorithmWrapper interposes on every algorithm instance the donor
// creates: wrap receives the registered algorithm name and the fresh
// instance and returns the Algorithm the donor actually runs. The swarm
// harness uses it to throttle per-donor throughput (simulated slow
// machines); it also suits metering and fault injection in tests.
func WithAlgorithmWrapper(wrap func(name string, a Algorithm) Algorithm) DonorOption {
	return func(o *DonorOptions) { o.WrapAlgorithm = wrap }
}

// DialOption tunes one Dial.
type DialOption func(*dialOptions)

// dialOptions is the bag DialOption mutates.
type dialOptions struct {
	// noFlat keeps the control connection on gob even against a server
	// advertising wire.CapFlatCodec — the donor half of a codec ablation.
	noFlat bool
	// wrapConn, when non-nil, wraps the control connection the dial opens
	// before any protocol bytes flow — the seam the swarm harness shapes
	// latency and bandwidth through.
	wrapConn func(net.Conn) net.Conn
}

// WithConnWrapper wraps the control connection a Dial opens (both the
// handshake connection and the flat-codec upgrade) before any protocol
// bytes flow, so tests and the swarm harness can inject latency, bandwidth
// shaping or abrupt drops at the socket seam. Bulk-channel fetches open
// their own short-lived sockets and are not wrapped. The wrapper must
// return a usable net.Conn; returning its argument unchanged is allowed.
func WithConnWrapper(wrap func(net.Conn) net.Conn) DialOption {
	return func(o *dialOptions) { o.wrapConn = wrap }
}

// WithDialFlatCodec toggles upgrading the control connection to the flat
// codec when the server advertises wire.CapFlatCodec (on by default): off
// keeps gob, simulating a pre-flat donor for ablations and mixed-fleet
// tests.
func WithDialFlatCodec(on bool) DialOption {
	return func(o *dialOptions) { o.noFlat = !on }
}
