package dist

import (
	"context"
	"errors"
	"time"
)

// EventKind classifies one lifecycle event of a submitted problem.
type EventKind uint8

const (
	// EventSubmitted opens every watch: a snapshot of the problem at
	// subscription time (and the event published when Submit registers it).
	EventSubmitted EventKind = iota + 1
	// EventUnitDispatched marks a unit leased to a donor.
	EventUnitDispatched
	// EventUnitDone marks a unit's result accepted and folded.
	EventUnitDone
	// EventProgress carries updated counters after each folded unit.
	EventProgress
	// EventFailed is terminal: the problem ended with an error.
	EventFailed
	// EventFinished is terminal: the final result is ready.
	EventFinished
	// EventForgotten is terminal: the problem was evicted with Forget (or
	// auto-forgotten) before this watch saw it finish.
	EventForgotten
	// EventRecovered opens a watch on a problem that was restored from the
	// journal after a coordinator restart: same snapshot payload as
	// EventSubmitted, but the kind tells the subscriber the problem
	// predates this server process.
	EventRecovered
	// EventUnitSpeculated marks a straggler unit's lease re-dispatched to a
	// second donor (ServerOptions.SpeculateAfter); Donor names the
	// speculating donor the lease moved to.
	EventUnitSpeculated
	// EventUnitReplicaDispatched marks an extra replica of a spot-checked
	// unit leased to a distinct donor for quorum verification
	// (ServerOptions.VerifyFraction); Donor names the replica's donor. The
	// first copy of a verified unit is announced as a plain
	// EventUnitDispatched.
	EventUnitReplicaDispatched
	// EventQuorumAgreed marks a verified unit's replica results reaching
	// quorum agreement and folding exactly one winner; Donor names the donor
	// whose result was folded.
	EventQuorumAgreed
	// EventQuorumConflict marks a quorum resolution that had to discard at
	// least one disagreeing replica result; Donor names one of the
	// disagreeing donors. It accompanies (precedes) the EventQuorumAgreed of
	// the same unit.
	EventQuorumConflict
	// EventDonorQuarantined marks a donor's trust EWMA falling below
	// ServerOptions.QuarantineBelow: the named Donor stops receiving work
	// and its in-flight leases on this problem were requeued. UnitID is
	// zero; the event is published on each problem the quarantine touched.
	EventDonorQuarantined
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventSubmitted:
		return "submitted"
	case EventUnitDispatched:
		return "unit-dispatched"
	case EventUnitDone:
		return "unit-done"
	case EventProgress:
		return "progress"
	case EventFailed:
		return "failed"
	case EventFinished:
		return "finished"
	case EventForgotten:
		return "forgotten"
	case EventRecovered:
		return "recovered"
	case EventUnitSpeculated:
		return "unit-speculated"
	case EventUnitReplicaDispatched:
		return "unit-replica-dispatched"
	case EventQuorumAgreed:
		return "quorum-agreed"
	case EventQuorumConflict:
		return "quorum-conflict"
	case EventDonorQuarantined:
		return "donor-quarantined"
	default:
		return "unknown"
	}
}

// Terminal reports whether the kind ends an event stream.
func (k EventKind) Terminal() bool {
	return k == EventFailed || k == EventFinished || k == EventForgotten
}

// Event is one entry of a Server.Watch stream.
type Event struct {
	Kind      EventKind
	ProblemID string
	// Epoch is the problem incarnation the event belongs to.
	Epoch int64
	Time  time.Time

	// UnitID and Donor are set on unit events.
	UnitID int64
	Donor  string

	// Counters, carried by the snapshot, progress and terminal events.
	Completed int // units folded so far
	Inflight  int // units currently leased
	// AppDone/AppTotal are application-level progress (from Progresser);
	// both zero when the DataManager does not report progress.
	AppDone, AppTotal int

	// Err is set on EventFailed (and EventForgotten: ErrForgotten).
	Err error

	// Dropped counts events this subscriber lost to back-pressure since the
	// previous delivered event — the bounded fan-out never blocks the
	// coordinator on a slow consumer.
	Dropped int
}

// watcher is one Watch subscription's server-side state, guarded by the
// owning problem's mutex while registered.
type watcher struct {
	ch chan Event
	// done is closed when the subscriber's context is cancelled; it
	// releases a blocked terminal delivery.
	done chan struct{}
	// delivered is closed once the terminal event has been handed over (or
	// abandoned), ending the subscription's context goroutine.
	delivered chan struct{}
	// dropped counts events lost to a full buffer since the last delivery;
	// it rides on the next event that does get through. Guarded by ps.mu.
	dropped int
}

// Watch streams the problem's lifecycle events. The first event is an
// EventSubmitted snapshot of the current state; the stream ends — and the
// channel closes — after a terminal event (finished, failed, forgotten).
// Intermediate events are dropped, oldest first, when the subscriber falls
// more than ServerOptions.WatchBuffer events behind (Event.Dropped counts
// the losses); terminal events are always delivered. Cancelling ctx
// unsubscribes and closes the channel.
//
// Watching an already-completed problem yields its terminal event
// immediately; a forgotten or unknown ID returns ErrForgotten or
// ErrUnknownProblem.
func (s *Server) Watch(ctx context.Context, id string) (<-chan Event, error) {
	if ctx == nil {
		ctx = context.Background() //dist:allow-background nil-ctx normalisation in a public entry point
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ps, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	if ps.done {
		// Late subscription: hand over the terminal event and close.
		ev := s.terminalEventLocked(ps)
		ps.mu.Unlock()
		ch := make(chan Event, 1)
		ch <- ev
		close(ch)
		return ch, nil
	}
	w := &watcher{
		ch:        make(chan Event, s.opts.WatchBuffer),
		done:      make(chan struct{}),
		delivered: make(chan struct{}),
	}
	ps.watchers = append(ps.watchers, w)
	// The opening snapshot goes straight into the fresh buffer.
	s.sendLocked(ps, w, s.snapshotEventLocked(ps))
	ps.mu.Unlock()

	go func() {
		select {
		case <-ctx.Done():
			if s.detachWatcher(ps, w) {
				// Still subscribed: no terminal delivery exists or ever
				// will, so this goroutine owns the channel close.
				close(w.done)
				close(w.ch)
				return
			}
			// A terminal delivery is in flight; release it if it is
			// blocked on the abandoned buffer — it closes the channel.
			close(w.done)
		case <-w.delivered:
		}
	}()
	return w.ch, nil
}

// detachWatcher removes w from ps's subscriber list, reporting whether it
// was still registered (false once a terminal event took ownership).
func (s *Server) detachWatcher(ps *problemState, w *watcher) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for i, cur := range ps.watchers {
		if cur == w {
			ps.watchers = append(ps.watchers[:i], ps.watchers[i+1:]...)
			return true
		}
	}
	return false
}

// snapshotEventLocked builds the EventSubmitted opening snapshot. Callers
// hold ps.mu.
//
//dist:locked mu
func (s *Server) snapshotEventLocked(ps *problemState) Event {
	ev := Event{
		Kind:      EventSubmitted,
		ProblemID: ps.id,
		Epoch:     ps.epoch,
		Time:      time.Now(),
		Completed: ps.completed,
		Inflight:  ps.inflightLocked(),
	}
	if ps.recovered {
		ev.Kind = EventRecovered
	}
	if pr, ok := ps.p.DM.(Progresser); ok {
		ev.AppDone, ev.AppTotal = pr.Progress()
	}
	return ev
}

// terminalEventLocked builds the event describing how ps ended. Callers
// hold ps.mu; ps.done must be true.
//
//dist:locked mu
func (s *Server) terminalEventLocked(ps *problemState) Event {
	ev := Event{
		Kind:      EventFinished,
		ProblemID: ps.id,
		Epoch:     ps.epoch,
		Time:      time.Now(),
		Completed: ps.completed,
		Err:       ps.err,
	}
	switch {
	case errors.Is(ps.err, ErrForgotten):
		ev.Kind = EventForgotten
	case ps.err != nil:
		ev.Kind = EventFailed
	}
	return ev
}

// publishLocked fans one event out to the problem's subscribers without
// ever blocking: a full buffer drops the event and charges the
// subscriber's drop counter. Terminal events instead hand each subscriber
// to a delivery goroutine that blocks until the event is read (or the
// watch abandoned) and then closes the channel. Callers hold ps.mu.
//
//dist:locked mu
func (s *Server) publishLocked(ps *problemState, ev Event) {
	if len(ps.watchers) == 0 {
		return
	}
	if !ev.Kind.Terminal() {
		for _, w := range ps.watchers {
			s.sendLocked(ps, w, ev)
		}
		return
	}
	for _, w := range ps.watchers {
		w := w
		ev := ev
		ev.Dropped = w.dropped
		w.dropped = 0
		go func() {
			select {
			case w.ch <- ev:
			case <-w.done:
			}
			close(w.delivered)
			close(w.ch)
		}()
	}
	ps.watchers = nil
}

// sendLocked delivers one non-terminal event to one subscriber,
// non-blocking. Callers hold ps.mu.
func (s *Server) sendLocked(ps *problemState, w *watcher, ev Event) {
	ev.Dropped = w.dropped
	select {
	case w.ch <- ev:
		w.dropped = 0
	default:
		w.dropped++
	}
}
