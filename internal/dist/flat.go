package dist

// Flat-codec seam for the control-channel envelopes. Each hot message type
// implements wire.FlatMarshaler/FlatUnmarshaler by hand; together with the
// gob construction confined to typed.go this is the whole codec boundary —
// RPCClient and the server serve the same envelopes through flat-or-gob
// chosen per connection at handshake, and gob stays the versioned fallback
// and the only reflection path.
//
// Field order is the encoding: MarshalFlat and UnmarshalFlat must touch
// the same fields in the same order, and that order is frozen in
// docs/ARCHITECTURE.md. The flat encoding has no field tags, so it cannot
// evolve in place the way gob does — any incompatible change must ship
// under a new capability token (see wire.CapFlatCodec).
//
// Marshal methods take value receivers: net/rpc hands the codec args
// structs by value and replies by pointer, and a value receiver satisfies
// the interface for both. Unmarshal methods need pointer receivers.

import "repro/internal/wire"

var (
	_ wire.FlatMarshaler   = TaskArgs{}
	_ wire.FlatUnmarshaler = (*TaskArgs)(nil)
	_ wire.FlatMarshaler   = WaitTaskArgs{}
	_ wire.FlatUnmarshaler = (*WaitTaskArgs)(nil)
	_ wire.FlatMarshaler   = TaskReply{}
	_ wire.FlatUnmarshaler = (*TaskReply)(nil)
	_ wire.FlatMarshaler   = ResultArgs{}
	_ wire.FlatUnmarshaler = (*ResultArgs)(nil)
	_ wire.FlatMarshaler   = FailureArgs{}
	_ wire.FlatUnmarshaler = (*FailureArgs)(nil)
	_ wire.FlatMarshaler   = CancelArgs{}
	_ wire.FlatUnmarshaler = (*CancelArgs)(nil)
	_ wire.FlatMarshaler   = CancelReply{}
	_ wire.FlatUnmarshaler = (*CancelReply)(nil)
	_ wire.FlatMarshaler   = HandshakeReply{}
	_ wire.FlatUnmarshaler = (*HandshakeReply)(nil)
	_ wire.FlatMarshaler   = Empty{}
	_ wire.FlatUnmarshaler = (*Empty)(nil)
)

// MarshalFlat implements wire.FlatMarshaler.
func (a TaskArgs) MarshalFlat(e *wire.Encoder) { e.String(a.Donor) }

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (a *TaskArgs) UnmarshalFlat(d *wire.Decoder) { a.Donor = d.String() }

// MarshalFlat implements wire.FlatMarshaler.
func (a WaitTaskArgs) MarshalFlat(e *wire.Encoder) {
	e.String(a.Donor)
	e.Varint(a.MaxWaitNs)
	e.Varint(int64(a.MaxBatch))
}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (a *WaitTaskArgs) UnmarshalFlat(d *wire.Decoder) {
	a.Donor = d.String()
	a.MaxWaitNs = d.Varint()
	a.MaxBatch = int(d.Varint())
}

// marshalUnitFlat / unmarshalUnitFlat encode the embedded Unit wherever an
// envelope carries one; Unit is not an envelope itself, so the helpers
// stay off its method set.
func marshalUnitFlat(e *wire.Encoder, u *Unit) {
	e.Varint(u.ID)
	e.String(u.Algorithm)
	e.Bytes(u.Payload)
	e.Varint(u.Cost)
}

func unmarshalUnitFlat(d *wire.Decoder, u *Unit) {
	u.ID = d.Varint()
	u.Algorithm = d.String()
	u.Payload = d.Bytes()
	u.Cost = d.Varint()
}

// MarshalFlat implements wire.FlatMarshaler.
func (r TaskReply) MarshalFlat(e *wire.Encoder) {
	e.Bool(r.HasTask)
	e.String(r.ProblemID)
	marshalUnitFlat(e, &r.Unit)
	e.String(r.BulkKey)
	e.Varint(r.WaitHintNs)
	e.Varint(r.Epoch)
	e.String(r.SharedDigest)
	e.Varint(r.Priority)
	e.Bool(r.Verify)
	e.Uvarint(uint64(len(r.Batch)))
	for i := range r.Batch {
		r.Batch[i].marshalFlat(e)
	}
}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (r *TaskReply) UnmarshalFlat(d *wire.Decoder) {
	r.HasTask = d.Bool()
	r.ProblemID = d.String()
	unmarshalUnitFlat(d, &r.Unit)
	r.BulkKey = d.String()
	r.WaitHintNs = d.Varint()
	r.Epoch = d.Varint()
	r.SharedDigest = d.String()
	r.Priority = d.Varint()
	r.Verify = d.Bool()
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return
	}
	r.Batch = make([]BatchTask, 0, min(int(n), 1024))
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var bt BatchTask
		bt.unmarshalFlat(d)
		r.Batch = append(r.Batch, bt)
	}
}

func (t *BatchTask) marshalFlat(e *wire.Encoder) {
	e.String(t.ProblemID)
	marshalUnitFlat(e, &t.Unit)
	e.String(t.BulkKey)
	e.Varint(t.Epoch)
	e.String(t.SharedDigest)
	e.Varint(t.Priority)
	e.Bool(t.Verify)
}

func (t *BatchTask) unmarshalFlat(d *wire.Decoder) {
	t.ProblemID = d.String()
	unmarshalUnitFlat(d, &t.Unit)
	t.BulkKey = d.String()
	t.Epoch = d.Varint()
	t.SharedDigest = d.String()
	t.Priority = d.Varint()
	t.Verify = d.Bool()
}

// MarshalFlat implements wire.FlatMarshaler.
func (a ResultArgs) MarshalFlat(e *wire.Encoder) {
	e.String(a.Donor)
	e.String(a.ProblemID)
	e.Varint(a.UnitID)
	e.Bytes(a.Payload)
	e.Varint(a.ElapsedNs)
	e.Varint(a.Epoch)
}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (a *ResultArgs) UnmarshalFlat(d *wire.Decoder) {
	a.Donor = d.String()
	a.ProblemID = d.String()
	a.UnitID = d.Varint()
	a.Payload = d.Bytes()
	a.ElapsedNs = d.Varint()
	a.Epoch = d.Varint()
}

// MarshalFlat implements wire.FlatMarshaler.
func (a FailureArgs) MarshalFlat(e *wire.Encoder) {
	e.String(a.Donor)
	e.String(a.ProblemID)
	e.Varint(a.UnitID)
	e.String(a.Reason)
	e.Bool(a.Transport)
	e.Varint(a.Epoch)
}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (a *FailureArgs) UnmarshalFlat(d *wire.Decoder) {
	a.Donor = d.String()
	a.ProblemID = d.String()
	a.UnitID = d.Varint()
	a.Reason = d.String()
	a.Transport = d.Bool()
	a.Epoch = d.Varint()
}

// MarshalFlat implements wire.FlatMarshaler.
func (a CancelArgs) MarshalFlat(e *wire.Encoder) { e.String(a.Donor) }

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (a *CancelArgs) UnmarshalFlat(d *wire.Decoder) { a.Donor = d.String() }

// MarshalFlat implements wire.FlatMarshaler.
func (r CancelReply) MarshalFlat(e *wire.Encoder) {
	e.Uvarint(uint64(len(r.Notices)))
	for i := range r.Notices {
		n := &r.Notices[i]
		e.String(n.ProblemID)
		e.Varint(n.Epoch)
		e.Varint(n.UnitID)
	}
}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (r *CancelReply) UnmarshalFlat(d *wire.Decoder) {
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return
	}
	r.Notices = make([]CancelNotice, 0, min(int(n), 1024))
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		r.Notices = append(r.Notices, CancelNotice{
			ProblemID: d.String(),
			Epoch:     d.Varint(),
			UnitID:    d.Varint(),
		})
	}
}

// MarshalFlat implements wire.FlatMarshaler. Handshake itself always runs
// over gob (it is what negotiates the codec), but a fully flat client may
// re-handshake on the upgraded connection, so the envelope round-trips
// under both codecs.
func (r HandshakeReply) MarshalFlat(e *wire.Encoder) {
	e.String(r.BulkAddr)
	e.Uvarint(uint64(len(r.Caps)))
	for _, c := range r.Caps {
		e.String(c)
	}
}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (r *HandshakeReply) UnmarshalFlat(d *wire.Decoder) {
	r.BulkAddr = d.String()
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return
	}
	r.Caps = make([]string, 0, min(int(n), 64))
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		r.Caps = append(r.Caps, d.String())
	}
}

// MarshalFlat implements wire.FlatMarshaler.
func (Empty) MarshalFlat(*wire.Encoder) {}

// UnmarshalFlat implements wire.FlatUnmarshaler.
func (*Empty) UnmarshalFlat(*wire.Decoder) {}
