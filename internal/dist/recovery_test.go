package dist

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// The durable test problem: the sum-of-squares DataManager extended with
// the DurableDM contract. MarshalState flattens everything including the
// outstanding (dispatched, unfolded) units, and the restored DataManager
// re-emits those under their original IDs before cutting new ranges — the
// same recovery shape the real applications implement.

const durSumKind = "dist-test/dursum/v1"

type durSumDM struct {
	sumDM
	// resume holds recovered pending unit IDs to re-emit, oldest first.
	resume []int64
}

type durSumState struct {
	N, Next, Seq, Total, Completed int64
	Pending                        map[int64]sumUnit
}

func newDurSumDM(n int64) *durSumDM {
	return &durSumDM{sumDM: *newSumDM(n)}
}

func (d *durSumDM) DurableKind() string { return durSumKind }

func (d *durSumDM) MarshalState() ([]byte, error) {
	return Marshal(durSumState{
		N: d.n, Next: d.next, Seq: d.seq,
		Total: d.total, Completed: d.completed,
		Pending: d.inflight,
	})
}

func (d *durSumDM) NextUnit(budget int64) (*Unit, bool, error) {
	for len(d.resume) > 0 {
		id := d.resume[0]
		d.resume = d.resume[1:]
		u, ok := d.inflight[id]
		if !ok {
			continue // consumed by a replayed journal fold
		}
		payload, err := Marshal(u)
		if err != nil {
			return nil, false, err
		}
		return &Unit{ID: id, Algorithm: "dist-test/sum", Payload: payload, Cost: u.To - u.From}, true, nil
	}
	return d.sumDM.NextUnit(budget)
}

func restoreDurSum(state []byte) (DataManager, error) {
	var st durSumState
	if err := Unmarshal(state, &st); err != nil {
		return nil, err
	}
	d := &durSumDM{sumDM: sumDM{
		n: st.N, next: st.Next, seq: st.Seq,
		total: st.Total, completed: st.Completed,
		inflight: st.Pending,
	}}
	if d.inflight == nil {
		d.inflight = make(map[int64]sumUnit)
	}
	for id := range d.inflight {
		d.resume = append(d.resume, id)
	}
	sort.Slice(d.resume, func(i, j int) bool { return d.resume[i] < d.resume[j] })
	return d, nil
}

var registerDurSumOnce sync.Once

func registerDurSum(t *testing.T) {
	t.Helper()
	registerSum(t)
	registerDurSumOnce.Do(func() {
		RegisterDurableDM(durSumKind, restoreDurSum)
	})
}

// durableServerOptions is the bag the recovery tests share: a fixed unit
// size for deterministic partitioning and a snapshot loop parked out of
// the way so tests control compaction explicitly.
func durableServerOptions(dir string) ServerOptions {
	return ServerOptions{
		Policy:          sched.Fixed{Size: 10},
		DataDir:         dir,
		SnapshotScan:    time.Hour,
		SnapshotBytes:   -1,
		SnapshotRecords: -1,
	}
}

func openDurableServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := OpenServer(WithServerOptions(durableServerOptions(dir)))
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	return s
}

// crashServer simulates a coordinator crash: the journal closes without a
// final checkpoint — exactly the on-disk state a killed process leaves
// (WAL tail, older snapshot) — then the server's goroutines are torn down.
func crashServer(s *Server) {
	_ = s.journal.Close()
	_ = s.Close() // snapshotNow fails against the closed journal: no checkpoint
}

// dispatch pulls one unit for the named donor, failing the test if none is
// available.
func dispatch(t *testing.T, s *Server, donor string) *Task {
	t.Helper()
	task, _, err := s.RequestTask(bg, donor)
	if err != nil {
		t.Fatalf("RequestTask: %v", err)
	}
	if task == nil {
		t.Fatal("no task available")
	}
	return task
}

// foldTask computes the sum unit's answer and submits it under the task's
// own epoch, reporting whether the server accepted it.
func foldTask(t *testing.T, s *Server, task *Task, donor string) bool {
	t.Helper()
	var u sumUnit
	if err := Unmarshal(task.Unit.Payload, &u); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := u.From; i < u.To; i++ {
		sum += i * i
	}
	accepted, err := s.submitResult(bg, &Result{
		ProblemID: task.ProblemID, UnitID: task.Unit.ID, Payload: MustMarshal(sum),
		Elapsed: time.Millisecond, Donor: donor, Epoch: task.Epoch,
	})
	if err != nil {
		t.Fatalf("submitResult: %v", err)
	}
	return accepted
}

// drain runs an in-process donor against the server until the problem
// completes, returning the final result.
func drain(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	d := newTestDonor(s, DonorOptions{Name: "drain", Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	defer func() { d.Stop(); wg.Wait() }()
	out, err := s.Wait(bg, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return out
}

// TestCrashRecoveryResumesProblem is the core durability scenario: a
// coordinator crashes with a mid-run snapshot plus a WAL tail — folds both
// before and after the checkpoint — and the restarted coordinator resumes
// the problem, replays the tail folds, requeues the outstanding span,
// fences the pre-crash straggler by epoch, and completes without
// recomputing anything that was journaled.
func TestCrashRecoveryResumesProblem(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	const n = 100 // 10 units of 10 under Fixed{10}

	s1 := openDurableServer(t, dir)
	p := &Problem{ID: "crashy", DM: newDurSumDM(n), SharedData: []byte("shared")}
	if err := s1.Submit(bg, p); err != nil {
		t.Fatal(err)
	}
	// Dispatch units 1..4, fold 1 and 2, checkpoint with 3 and 4 pending.
	tasks := make([]*Task, 0, 5)
	for i := 0; i < 4; i++ {
		tasks = append(tasks, dispatch(t, s1, "a"))
	}
	for _, task := range tasks[:2] {
		if !foldTask(t, s1, task, "a") {
			t.Fatal("live fold rejected")
		}
	}
	if err := s1.snapshotNow(); err != nil {
		t.Fatalf("snapshotNow: %v", err)
	}
	// Post-checkpoint: one more dispatch (soft state, never journaled) and
	// one fold that lands in the WAL tail for a snapshotted pending unit.
	straggler := dispatch(t, s1, "a")
	if !foldTask(t, s1, tasks[2], "a") {
		t.Fatal("live fold rejected")
	}
	oldEpoch := tasks[0].Epoch
	crashServer(s1)

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil {
		t.Fatal("no recovery report after a crash with live state")
	}
	if len(rec.Problems) != 1 || rec.Problems[0].ProblemID != "crashy" {
		t.Fatalf("recovered %+v, want problem crashy", rec.Problems)
	}
	if rec.FoldsReplayed != 1 {
		t.Errorf("FoldsReplayed = %d, want 1 (the post-checkpoint fold of unit 3)", rec.FoldsReplayed)
	}
	rp := rec.Problems[0]
	if rp.Completed != 3 {
		t.Errorf("Completed = %d, want 3 (two snapshotted + one replayed)", rp.Completed)
	}
	if rp.Requeued != 1 {
		t.Errorf("Requeued = %d, want 1 (unit 4, dispatched but never folded)", rp.Requeued)
	}
	if rp.Epoch <= oldEpoch {
		t.Errorf("recovered epoch %d not above pre-crash epoch %d", rp.Epoch, oldEpoch)
	}

	// Epoch fencing: the pre-crash straggler's result carries the old
	// incarnation tag and must be dropped, not folded.
	var u sumUnit
	if err := Unmarshal(straggler.Unit.Payload, &u); err != nil {
		t.Fatal(err)
	}
	accepted, err := s2.submitResult(bg, &Result{
		ProblemID: "crashy", UnitID: straggler.Unit.ID, Payload: MustMarshal(int64(1)),
		Elapsed: time.Millisecond, Donor: "a", Epoch: straggler.Epoch,
	})
	if err != nil {
		t.Fatalf("straggler submit errored instead of being dropped: %v", err)
	}
	if accepted {
		t.Fatal("pre-crash straggler result accepted — epoch fencing failed")
	}

	// The recovered problem finishes without resubmission, and the total is
	// exact: nothing journaled was recomputed, nothing outstanding was lost.
	if got := decodeSum(t, drain(t, s2, "crashy")); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	st, err := s2.Stats(bg, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovered {
		t.Error("Stats.Recovered = false for a journal-restored problem")
	}
}

// TestRecoveredMarkers verifies the observability satellite: Status,
// Stats and the Watch opening event all mark a restored problem.
func TestRecoveredMarkers(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "marked", DM: newDurSumDM(50)}); err != nil {
		t.Fatal(err)
	}
	// Checkpoint with the unit pending so the tail fold replays and the
	// recovered counters show it.
	task := dispatch(t, s1, "a")
	if err := s1.snapshotNow(); err != nil {
		t.Fatal(err)
	}
	if !foldTask(t, s1, task, "a") {
		t.Fatal("fold rejected")
	}
	crashServer(s1)

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	status, err := s2.Status(bg, "marked")
	if err != nil {
		t.Fatal(err)
	}
	if !status.Recovered {
		t.Error("Status.Recovered = false")
	}
	st, err := s2.Stats(bg, "marked")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovered || st.Completed != 1 {
		t.Errorf("Stats = %+v, want Recovered with 1 completed", st)
	}
	events, err := s2.Watch(bg, "marked")
	if err != nil {
		t.Fatal(err)
	}
	ev := <-events
	if ev.Kind != EventRecovered {
		t.Errorf("opening watch event = %v, want %v", ev.Kind, EventRecovered)
	}
	if ev.Kind.Terminal() {
		t.Error("EventRecovered must not be terminal")
	}
	if ev.Kind.String() != "recovered" {
		t.Errorf("String() = %q", ev.Kind.String())
	}

	// A freshly submitted problem on the same server carries no marker.
	if err := s2.Submit(bg, &Problem{ID: "fresh", DM: newDurSumDM(10)}); err != nil {
		t.Fatal(err)
	}
	if fs, _ := s2.Stats(bg, "fresh"); fs.Recovered {
		t.Error("fresh problem reports Recovered")
	}
}

// TestGracefulCloseResumes: a deliberate Close writes a final checkpoint,
// so the next open restores entirely from the snapshot — no tail replay —
// and the problem picks up where it stopped.
func TestGracefulCloseResumes(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	const n = 60
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "graceful", DM: newDurSumDM(n)}); err != nil {
		t.Fatal(err)
	}
	t1 := dispatch(t, s1, "a")
	t2 := dispatch(t, s1, "a")
	if !foldTask(t, s1, t1, "a") || !foldTask(t, s1, t2, "a") {
		t.Fatal("fold rejected")
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil || len(rec.Problems) != 1 {
		t.Fatalf("recovery = %+v, want one problem", rec)
	}
	if rec.FoldsReplayed != 0 {
		t.Errorf("FoldsReplayed = %d after a clean shutdown, want 0 (checkpoint covers everything)", rec.FoldsReplayed)
	}
	if rec.Problems[0].Completed != 2 {
		t.Errorf("Completed = %d, want 2", rec.Problems[0].Completed)
	}
	if got := decodeSum(t, drain(t, s2, "graceful")); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
}

// TestForgetSurvivesRestart: a forgotten problem must stay forgotten — the
// Forget record is fsynced before the call returns, so even an immediate
// crash cannot resurrect the problem.
func TestForgetSurvivesRestart(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "dead", DM: newDurSumDM(30)}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Forget("dead"); err != nil {
		t.Fatal(err)
	}
	crashServer(s1)

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	if rec := s2.Recovery(); rec != nil && len(rec.Problems) > 0 {
		t.Fatalf("forgotten problem resurrected: %+v", rec.Problems)
	}
	if _, err := s2.Stats(bg, "dead"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("Stats after restart = %v, want ErrUnknownProblem", err)
	}
}

// TestNonDurableProblemsSkipped: a DataManager without the DurableDM
// contract rides an otherwise-durable server untouched — nothing is
// journaled for it, and a restart simply does not know it.
func TestNonDurableProblemsSkipped(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "soft", DM: newSumDM(30)}); err != nil {
		t.Fatal(err)
	}
	if !foldTask(t, s1, dispatch(t, s1, "a"), "a") {
		t.Fatal("fold rejected")
	}
	crashServer(s1)

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	if rec := s2.Recovery(); rec != nil {
		t.Fatalf("recovery = %+v for a journal that only ever saw non-durable work", rec)
	}
}

// TestTornTailStillRecovers: a crash can tear the last WAL record
// mid-write. Recovery reports the truncation and restores everything up to
// the last intact record instead of failing or half-applying.
func TestTornTailStillRecovers(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	const n = 40
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "torn", DM: newDurSumDM(n)}); err != nil {
		t.Fatal(err)
	}
	if !foldTask(t, s1, dispatch(t, s1, "a"), "a") {
		t.Fatal("fold rejected")
	}
	crashServer(s1)

	// Tear the newest WAL segment: chop a few bytes off its last record.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	sort.Strings(wals)
	newest := wals[len(wals)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 12 {
		t.Fatalf("newest segment unexpectedly small: %d bytes", len(data))
	}
	if err := os.WriteFile(newest, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil {
		t.Fatal("no recovery report")
	}
	if !rec.Truncated {
		t.Error("Truncated = false for a torn tail")
	}
	if len(rec.Problems) != 1 {
		t.Fatalf("recovered %+v, want the problem restored from the intact prefix", rec.Problems)
	}
	// The torn record was the fold; its unit is back in play and the sum
	// still comes out exact.
	if got := decodeSum(t, drain(t, s2, "torn")); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
}

// TestCompletedProblemRecovers: when every fold was journaled before the
// crash, replay completes the problem during recovery and Wait returns the
// result without any donor attached.
func TestCompletedProblemRecovers(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	const n = 20 // two units
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "done", DM: newDurSumDM(n)}); err != nil {
		t.Fatal(err)
	}
	t1 := dispatch(t, s1, "a")
	t2 := dispatch(t, s1, "a")
	if err := s1.snapshotNow(); err != nil {
		t.Fatal(err)
	}
	if !foldTask(t, s1, t1, "a") || !foldTask(t, s1, t2, "a") {
		t.Fatal("fold rejected")
	}
	crashServer(s1)

	s2 := openDurableServer(t, dir)
	defer s2.Close()
	out, err := s2.Wait(bg, "done")
	if err != nil {
		t.Fatalf("Wait on a fully journaled problem: %v", err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
}

// TestDoubleCrashKeepsFencing: the recovery checkpoint must persist the
// fresh epochs immediately, so folds accepted after a first restart still
// replay after a second crash that follows within the same sync window.
func TestDoubleCrashKeepsFencing(t *testing.T) {
	registerDurSum(t)
	dir := t.TempDir()
	const n = 40
	s1 := openDurableServer(t, dir)
	if err := s1.Submit(bg, &Problem{ID: "twice", DM: newDurSumDM(n)}); err != nil {
		t.Fatal(err)
	}
	if !foldTask(t, s1, dispatch(t, s1, "a"), "a") {
		t.Fatal("fold rejected")
	}
	crashServer(s1)

	s2 := openDurableServer(t, dir)
	epoch2 := mustRecoveredEpoch(t, s2, "twice")
	// Fold one unit under the post-recovery epoch — checkpointed pending so
	// the second recovery replays it — then crash again.
	task := dispatch(t, s2, "b")
	if err := s2.snapshotNow(); err != nil {
		t.Fatal(err)
	}
	if !foldTask(t, s2, task, "b") {
		t.Fatal("post-recovery fold rejected")
	}
	crashServer(s2)

	s3 := openDurableServer(t, dir)
	defer s3.Close()
	epoch3 := mustRecoveredEpoch(t, s3, "twice")
	if epoch3 <= epoch2 {
		t.Errorf("third-incarnation epoch %d not above second %d", epoch3, epoch2)
	}
	rec := s3.Recovery()
	if rec.FoldsReplayed != 1 {
		t.Errorf("FoldsReplayed = %d, want 1 (the fold journaled between the crashes)", rec.FoldsReplayed)
	}
	if got := decodeSum(t, drain(t, s3, "twice")); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
}

func mustRecoveredEpoch(t *testing.T, s *Server, id string) int64 {
	t.Helper()
	rec := s.Recovery()
	if rec == nil {
		t.Fatal("no recovery report")
	}
	for _, rp := range rec.Problems {
		if rp.ProblemID == id {
			return rp.Epoch
		}
	}
	t.Fatalf("problem %q not in recovery report %+v", id, rec.Problems)
	return 0
}
