package dist

// Tests for the v2 API surface: context-first lifecycle with cancel
// propagation, typed codecs, Watch event streams, and functional options.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// blockDM issues a single unit and then waits forever — the problem only
// ends by being forgotten (or the server closing).
type blockDM struct{ issued bool }

func (d *blockDM) NextUnit(int64) (*Unit, bool, error) {
	if d.issued {
		return nil, false, nil
	}
	d.issued = true
	return &Unit{ID: 1, Algorithm: "dist-test/block", Payload: MustEncode("x"), Cost: 1}, true, nil
}
func (d *blockDM) Consume(int64, []byte) error  { return nil }
func (d *blockDM) Done() bool                   { return false }
func (d *blockDM) FinalResult() ([]byte, error) { return nil, nil }

// blockAlg parks in ProcessCtx until its context is cancelled, reporting
// lifecycle moments through package-level channels (one test at a time).
type blockAlg struct{}

var (
	blockStarted   chan struct{}
	blockCtxErr    chan error
	registerBlock_ sync.Once
)

func registerBlock() {
	registerBlock_.Do(func() {
		RegisterAlgorithm("dist-test/block", func() Algorithm { return blockAlg{} })
	})
}

func (blockAlg) Init([]byte) error { return nil }

func (blockAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	blockStarted <- struct{}{}
	select {
	case <-ctx.Done():
		blockCtxErr <- ctx.Err()
		return nil, ctx.Err()
	case <-time.After(30 * time.Second):
		blockCtxErr <- nil
		return MustEncode("straggler"), nil
	}
}

// TestForgetCancelsInFlightUnitOverLoopback is the acceptance test for
// cancel propagation: a Forget during a live loopback run must stop the
// donor's compute — its ProcessCtx observes cancellation promptly (via the
// epoch-tagged cancel notice on the control channel) and no result is
// submitted for the forgotten epoch.
func TestForgetCancelsInFlightUnitOverLoopback(t *testing.T) {
	registerBlock()
	blockStarted = make(chan struct{}, 1)
	blockCtxErr = make(chan error, 1)

	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		WithPolicy(sched.Fixed{Size: 1}),
		WithLeaseTTL(time.Hour),
		WithExpiryScan(time.Hour),
		WithWaitHint(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "doomed", DM: &blockDM{}}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d := NewDonor(cl,
		WithName("cancellee"),
		WithLogf(t.Logf),
		WithCancelPoll(10*time.Millisecond),
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	defer func() { d.Stop(); wg.Wait() }()

	select {
	case <-blockStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("donor never started the unit")
	}
	forgetAt := time.Now()
	if err := srv.Forget("doomed"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blockCtxErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ProcessCtx observed %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ProcessCtx never observed the cancellation")
	}
	// "Measurably stops donor compute": with a 10ms cancel poll the abort
	// must land well inside a second, not at the 30s compute horizon.
	if elapsed := time.Since(forgetAt); elapsed > 2*time.Second {
		t.Errorf("cancellation took %s, want well under 2s", elapsed)
	}
	// No result was submitted for the forgotten epoch, and the donor
	// counted the unit as aborted, not completed.
	waitFor(t, 5*time.Second, func() bool { return d.Aborted() == 1 })
	if d.Units() != 0 {
		t.Errorf("donor submitted %d results for a forgotten problem", d.Units())
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelNoticesDrainOnce: a Forget with a leased unit queues exactly
// one epoch-tagged notice for the holding donor, and draining is
// destructive.
func TestCancelNoticesDrainOnce(t *testing.T) {
	registerSum(t)
	srv := newTestServer(ServerOptions{
		Policy: sched.Fixed{Size: 10}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "cn", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "holder")
	if err != nil || task == nil {
		t.Fatalf("no task: %v", err)
	}
	if err := srv.Forget("cn"); err != nil {
		t.Fatal(err)
	}
	notices, err := srv.CancelNotices(bg, "holder")
	if err != nil {
		t.Fatal(err)
	}
	if len(notices) != 1 || notices[0].ProblemID != "cn" || notices[0].Epoch != task.Epoch || notices[0].UnitID != task.Unit.ID {
		t.Fatalf("notices = %+v, want one for cn/%d/%d", notices, task.Epoch, task.Unit.ID)
	}
	if again, _ := srv.CancelNotices(bg, "holder"); len(again) != 0 {
		t.Errorf("second drain returned %d notices, want 0", len(again))
	}
	if other, _ := srv.CancelNotices(bg, "bystander"); len(other) != 0 {
		t.Errorf("uninvolved donor got %d notices", len(other))
	}
}

// TestWatchEventOrdering drives a problem to completion under a watch and
// checks the stream's shape: the opening snapshot first, unit and progress
// events in causal order, the terminal finished event last (closing the
// channel).
func TestWatchEventOrdering(t *testing.T) {
	registerSum(t)
	srv := newTestServer(ServerOptions{
		Policy: sched.Fixed{Size: 25}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "watched", DM: newSumDM(200)}); err != nil {
		t.Fatal(err)
	}
	events, err := srv.Watch(bg, "watched")
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDonor(srv, DonorOptions{Name: "w"})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	if _, err := srv.Wait(bg, "watched"); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	wg.Wait()

	var got []Event
	for ev := range events {
		got = append(got, ev)
	}
	if len(got) < 4 {
		t.Fatalf("only %d events for an 8-unit run", len(got))
	}
	if got[0].Kind != EventSubmitted {
		t.Errorf("first event = %v, want submitted snapshot", got[0].Kind)
	}
	last := got[len(got)-1]
	if last.Kind != EventFinished || last.Err != nil {
		t.Errorf("last event = %v (err %v), want clean finished", last.Kind, last.Err)
	}
	dispatched := make(map[int64]bool)
	var dispatchCount, doneCount int
	prevCompleted := 0
	for i, ev := range got {
		if ev.Kind.Terminal() && i != len(got)-1 {
			t.Errorf("terminal event at position %d of %d", i, len(got))
		}
		switch ev.Kind {
		case EventUnitDispatched:
			dispatchCount++
			dispatched[ev.UnitID] = true
			if ev.Donor != "w" {
				t.Errorf("dispatch event donor = %q", ev.Donor)
			}
		case EventUnitDone:
			doneCount++
			if !dispatched[ev.UnitID] {
				t.Errorf("unit %d done before its dispatch event", ev.UnitID)
			}
		case EventProgress:
			if ev.Completed < prevCompleted {
				t.Errorf("progress went backwards: %d after %d", ev.Completed, prevCompleted)
			}
			prevCompleted = ev.Completed
		}
	}
	if dispatchCount == 0 || doneCount == 0 {
		t.Errorf("dispatched=%d done=%d events, want both > 0", dispatchCount, doneCount)
	}
}

// TestWatchSlowConsumerDrops: a subscriber that never reads loses
// intermediate events (bounded buffer, never blocking the coordinator) but
// still receives the terminal event, with the drop count reported.
func TestWatchSlowConsumerDrops(t *testing.T) {
	registerSum(t)
	srv := NewServer(
		WithPolicy(sched.Fixed{Size: 1}), // one unit per square: ~100 units, >> buffer
		WithLeaseTTL(time.Hour),
		WithExpiryScan(time.Hour),
		WithWaitHint(time.Millisecond),
		WithWatchBuffer(4),
	)
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "firehose", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	events, err := srv.Watch(bg, "firehose")
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDonor(srv, DonorOptions{Name: "w"})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	if _, err := srv.Wait(bg, "firehose"); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	wg.Wait()

	// Only now start reading: everything beyond the buffer was dropped.
	var got []Event
	dropped := 0
	for ev := range events {
		got = append(got, ev)
		dropped += ev.Dropped
	}
	if len(got) > 4+1 { // buffer + the terminal event
		t.Errorf("slow consumer received %d events, buffer is 4", len(got))
	}
	if got[len(got)-1].Kind != EventFinished {
		t.Errorf("terminal event missing; last = %v", got[len(got)-1].Kind)
	}
	if dropped == 0 {
		t.Error("a ~300-event run through a 4-slot buffer reported zero drops")
	}
}

// TestWatchLateAndInvalidSubscribers: watching a completed problem yields
// its terminal event immediately; forgotten and unknown IDs error; a
// cancelled watch context closes the stream.
func TestWatchLateAndInvalidSubscribers(t *testing.T) {
	srv := NewServer(WithWaitHint(time.Millisecond))
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "done", DM: newSumDM(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(bg, "done"); err != nil {
		t.Fatal(err)
	}
	events, err := srv.Watch(bg, "done")
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := <-events
	if !ok || ev.Kind != EventFinished {
		t.Errorf("late watch first event = %v (ok=%v), want finished", ev.Kind, ok)
	}
	if _, ok := <-events; ok {
		t.Error("late watch channel not closed after terminal event")
	}

	if _, err := srv.Watch(bg, "never"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("Watch(unknown) = %v, want ErrUnknownProblem", err)
	}
	if err := srv.Forget("done"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Watch(bg, "done"); !errors.Is(err, ErrForgotten) {
		t.Errorf("Watch(forgotten) = %v, want ErrForgotten", err)
	}

	// A cancelled context unsubscribes and closes the channel.
	if err := srv.Submit(bg, &Problem{ID: "abandoned", DM: newSumDM(1000)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	ch, err := srv.Watch(ctx, "abandoned")
	if err != nil {
		t.Fatal(err)
	}
	<-ch // the snapshot
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed, as required
			}
		case <-deadline:
			t.Fatal("watch channel not closed after ctx cancel")
		}
	}
}

// typedCountDM is a minimal TypedDM for adapter tests: units carry an int
// to square, results carry the square.
type typedCountDM struct {
	n, next   int
	completed int
	sum       int
}

func (d *typedCountDM) NextUnit(int64) (*UnitOf[int], bool, error) {
	if d.next >= d.n {
		return nil, false, nil
	}
	d.next++
	return &UnitOf[int]{ID: int64(d.next), Algorithm: "dist-test/square", Payload: d.next, Cost: 1}, true, nil
}

func (d *typedCountDM) Consume(_ int64, sq int) error {
	d.completed++
	d.sum += sq
	return nil
}

func (d *typedCountDM) Done() bool                { return d.completed >= d.n }
func (d *typedCountDM) FinalResult() (any, error) { return d.sum, nil }

type squareAlg struct{ inited atomic.Bool }

func (a *squareAlg) Init(NoShared) error { a.inited.Store(true); return nil }

func (a *squareAlg) ProcessCtx(_ context.Context, v int) (int, error) {
	if !a.inited.Load() {
		return 0, errors.New("Init not called before ProcessCtx")
	}
	return v * v, nil
}

var registerSquareOnce sync.Once

// TestTypedAdaptersEndToEnd: a fully typed problem (NoShared shared data,
// int payloads/results, int final result) round-trips through the whole
// runtime with the adapters owning every codec.
func TestTypedAdaptersEndToEnd(t *testing.T) {
	registerSquareOnce.Do(func() {
		RegisterTypedAlgorithm("dist-test/square", func() TypedAlgorithm[NoShared, int, int] {
			return &squareAlg{}
		})
	})
	p, err := NewTypedProblem[int, int]("squares", &typedCountDM{n: 30}, NoShared{})
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedData != nil {
		t.Errorf("NoShared problem carries %d bytes of shared data", len(p.SharedData))
	}
	out, err := RunLocal(bg, p, 3, sched.Fixed{Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode[int](out)
	if err != nil {
		t.Fatal(err)
	}
	if want := 30 * 31 * 61 / 6; got != want {
		t.Errorf("sum of squares = %d, want %d", got, want)
	}
}

// TestTypedCodecRoundTrip covers Encode/Decode symmetry, including error
// propagation for mismatched payloads.
func TestTypedCodecRoundTrip(t *testing.T) {
	type payload struct {
		Name string
		Vals []float64
	}
	in := payload{Name: "x", Vals: []float64{1.5, -2, 3e9}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode[payload](data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[2] != 3e9 {
		t.Errorf("round trip mangled payload: %+v", out)
	}
	if _, err := Decode[payload]([]byte("not gob")); err == nil {
		t.Error("garbage decoded without error")
	}
	// Encode and the legacy Marshal are wire-compatible both ways.
	legacy, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if via, err := Decode[payload](legacy); err != nil || via.Name != "x" {
		t.Errorf("Decode(Marshal(v)) = %+v, %v", via, err)
	}
}

// TestAdapterExtensionGating: the DM adapter forwards CostReporter and
// Progresser, but exposes Requeuer only when the typed implementation has
// it — implementing Requeuer changes server requeue behaviour.
func TestAdapterExtensionGating(t *testing.T) {
	plain := AdaptDM[int, int](&typedCountDM{n: 1})
	if _, ok := plain.(Requeuer); ok {
		t.Error("adapter advertises Requeue the implementation does not have")
	}
	if cr, ok := plain.(CostReporter); !ok || cr.RemainingCost() != 0 {
		t.Error("adapter should answer RemainingCost()=0 for a non-CostReporter impl")
	}
	impl := &requeueCountDM{}
	rq := AdaptDM[int, int](impl)
	if _, ok := rq.(Requeuer); !ok {
		t.Error("adapter hides the implementation's Requeue")
	}
	rq.(Requeuer).Requeue(7)
	if len(impl.requeued) != 1 || impl.requeued[0] != 7 {
		t.Errorf("Requeue not forwarded: %v", impl.requeued)
	}
}

// requeueCountDM is typedCountDM plus a Requeue recorder.
type requeueCountDM struct {
	typedCountDM
	requeued []int64
}

func (d *requeueCountDM) Requeue(id int64) { d.requeued = append(d.requeued, id) }

// TestFunctionalOptions: the option constructors set their fields and the
// zero-option constructors still apply the documented defaults.
func TestFunctionalOptions(t *testing.T) {
	srv := NewServer()
	defer srv.Close()
	o := srv.opts
	if o.Policy == nil || o.Lease != 2*time.Minute || o.WaitHint != 50*time.Millisecond ||
		o.BulkThreshold != 64<<10 || o.WatchBuffer != 64 || o.AutoForget {
		t.Errorf("zero-option defaults = %+v", o)
	}
	srv2 := NewServer(
		WithPolicy(sched.Fixed{Size: 9}),
		WithLeaseTTL(5*time.Second),
		WithExpiryScan(time.Second),
		WithWaitHint(7*time.Millisecond),
		WithBulkThreshold(-1),
		WithAutoForget(true),
		WithWatchBuffer(3),
	)
	defer srv2.Close()
	o = srv2.opts
	if o.Lease != 5*time.Second || o.ExpiryScan != time.Second || o.WaitHint != 7*time.Millisecond ||
		o.BulkThreshold != -1 || !o.AutoForget || o.WatchBuffer != 3 {
		t.Errorf("explicit options = %+v", o)
	}
	if f, ok := o.Policy.(sched.Fixed); !ok || f.Size != 9 {
		t.Errorf("policy option lost: %+v", o.Policy)
	}

	d := NewDonor(sharedStub{})
	if d.opts.Name != "donor" || d.opts.CancelPoll != 500*time.Millisecond ||
		d.opts.RedialMin != 250*time.Millisecond || d.opts.RedialMax != 30*time.Second {
		t.Errorf("donor defaults = %+v", d.opts)
	}
	d2 := NewDonor(sharedStub{},
		WithName("n"),
		WithThrottle(time.Second),
		WithCancelPoll(-1),
		WithRedialBackoff(time.Millisecond, time.Minute),
	)
	if d2.opts.Name != "n" || d2.opts.Throttle != time.Second || d2.opts.CancelPoll != -1 ||
		d2.opts.RedialMin != time.Millisecond || d2.opts.RedialMax != time.Minute {
		t.Errorf("donor options = %+v", d2.opts)
	}
}

// TestPollJitterBounds: jittered waits stay within ±20% of the hint.
func TestPollJitterBounds(t *testing.T) {
	const base = time.Second
	lo, hi := base, base
	for i := 0; i < 2000; i++ {
		j := jitter(base)
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	if lo < time.Duration(float64(base)*0.79) || hi > time.Duration(float64(base)*1.21) {
		t.Errorf("jitter range [%s, %s] outside ±20%% of %s", lo, hi, base)
	}
	if hi-lo < base/10 {
		t.Errorf("jitter barely varies: [%s, %s]", lo, hi)
	}
	if jitter(0) != 0 {
		t.Error("jitter of 0 must stay 0")
	}
}
