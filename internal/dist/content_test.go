package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// The content-bulk test algorithm echoes the problem's shared blob back as
// every unit's result, so a test can tell exactly which bytes a donor's
// Init saw — stale shared data becomes a visible wrong answer instead of a
// silent one.

type echoAlg struct{ shared []byte }

func (a *echoAlg) Init(shared []byte) error {
	a.shared = append([]byte(nil), shared...)
	return nil
}

func (a *echoAlg) ProcessCtx(_ context.Context, _ []byte) ([]byte, error) {
	return a.shared, nil
}

var registerEchoOnce sync.Once

func registerEcho(t *testing.T) {
	t.Helper()
	registerEchoOnce.Do(func() {
		RegisterAlgorithm("content-test/echo", func() Algorithm { return &echoAlg{} })
	})
}

// echoDM hands out `units` trivial units and keeps every consumed payload.
type echoDM struct {
	units   int
	seq     int64
	results map[int64][]byte
}

func newEchoDM(units int) *echoDM {
	return &echoDM{units: units, results: make(map[int64][]byte)}
}

func (d *echoDM) NextUnit(int64) (*Unit, bool, error) {
	if d.seq >= int64(d.units) {
		return nil, false, nil
	}
	d.seq++
	return &Unit{ID: d.seq, Algorithm: "content-test/echo", Cost: 1}, true, nil
}

func (d *echoDM) Consume(id int64, payload []byte) error {
	d.results[id] = payload
	return nil
}

func (d *echoDM) Done() bool                   { return len(d.results) >= d.units }
func (d *echoDM) FinalResult() ([]byte, error) { return d.results[1], nil }

// TestContentBulkDedupAcrossProblems is the tentpole's core property over
// a real loopback deployment: two problems sharing one alignment store one
// server-side copy (refcounted), cost the donor one wire fetch, and the
// copy is released when the last referencing problem is forgotten.
func TestContentBulkDedupAcrossProblems(t *testing.T) {
	registerEcho(t)
	shared := bytes.Repeat([]byte("alignment"), 8192)
	digest := wire.Digest(shared)

	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, id := range []string{"ca-1", "ca-2"} {
		if err := srv.Submit(bg, &Problem{ID: id, DM: newEchoDM(2), SharedData: shared}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.BulkStats()
	if st.ContentBlobs != 1 || st.ContentRefs != 2 {
		t.Errorf("content store = %d blobs / %d refs, want 1 / 2", st.ContentBlobs, st.ContentRefs)
	}
	if st.StoredBytes != int64(len(shared)) {
		t.Errorf("StoredBytes = %d, want one copy (%d)", st.StoredBytes, len(shared))
	}

	cl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.Supports(wire.CapContentBulk) {
		t.Fatal("server did not advertise CapContentBulk")
	}
	d := newTestDonor(cl, DonorOptions{Name: "ca-donor", Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()

	for _, id := range []string{"ca-1", "ca-2"} {
		out, err := srv.Wait(bg, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if !bytes.Equal(out, shared) {
			t.Errorf("%s: result is not the shared blob (%d bytes)", id, len(out))
		}
	}
	d.Stop()
	wg.Wait()

	if got := d.opts.BlobCache.Fetches(); got != 1 {
		t.Errorf("donor performed %d shared-blob wire fetches for 2 problems, want 1", got)
	}
	if st := srv.BulkStats(); st.Fetches != 1 {
		t.Errorf("bulk channel answered %d fetches, want 1 (digest-cached donor)", st.Fetches)
	}

	// The last Forget releases the refcounted copy and the legacy aliases.
	for _, id := range []string{"ca-1", "ca-2"} {
		if err := srv.Forget(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wire.FetchBlob(srv.BulkAddr(), wire.ContentKey(digest), time.Second); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Errorf("content blob after last Forget: err = %v, want not found", err)
	}
	if _, err := wire.FetchBlob(srv.BulkAddr(), sharedKey("ca-1"), time.Second); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Errorf("legacy alias after Forget: err = %v, want not found", err)
	}
}

// TestEpochResubmitDoesNotServeStaleBytes covers both cache keyings: a
// forgotten ID resubmitted with different shared data must be computed
// from the new bytes — under content addressing the digest changes (stale
// bytes are unreachable by key), and on the legacy path the per-incarnation
// pseudo-key misses.
func TestEpochResubmitDoesNotServeStaleBytes(t *testing.T) {
	registerEcho(t)
	for _, mode := range []struct {
		name    string
		content bool
	}{{"content", true}, {"per-problem", false}} {
		t.Run(mode.name, func(t *testing.T) {
			opts := netOpts()
			opts.NoContentBulk = !mode.content
			srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			cl, err := Dial(srv.RPCAddr(), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			d := newTestDonor(cl, DonorOptions{Name: "resub-donor", Logf: t.Logf})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { defer wg.Done(); _ = d.Run(bg) }()
			defer func() { d.Stop(); wg.Wait() }()

			first := []byte("incarnation one bytes")
			second := []byte("incarnation TWO bytes — different")
			if err := srv.Submit(bg, &Problem{ID: "resub", DM: newEchoDM(1), SharedData: first}); err != nil {
				t.Fatal(err)
			}
			out, err := srv.Wait(bg, "resub")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, first) {
				t.Fatalf("first incarnation echoed %q", out)
			}
			if err := srv.Forget("resub"); err != nil {
				t.Fatal(err)
			}
			if err := srv.Submit(bg, &Problem{ID: "resub", DM: newEchoDM(1), SharedData: second}); err != nil {
				t.Fatal(err)
			}
			out, err = srv.Wait(bg, "resub")
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(out, first) {
				t.Fatal("resubmitted incarnation served the predecessor's stale shared bytes")
			}
			if !bytes.Equal(out, second) {
				t.Fatalf("second incarnation echoed %q", out)
			}
		})
	}
}

// TestDigestMismatchIsTransportFailure tampers with the content blob on
// the wire: the donor must reject the bytes (wire.ErrDigestMismatch), the
// report must requeue as a transport failure — well past the compute
// poisoned-unit cap of maxUnitAttempts without failing the problem — and
// the problem must complete once the store serves honest bytes again.
func TestDigestMismatchIsTransportFailure(t *testing.T) {
	registerEcho(t)
	shared := []byte("the honest alignment bytes")
	digest := wire.Digest(shared)

	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "tamper", DM: newEchoDM(1), SharedData: shared}); err != nil {
		t.Fatal(err)
	}
	// Shadow the content store: plain blobs resolve first, so every fetch
	// of the digest key now returns bytes that do not hash to it.
	srv.bulk.Put(wire.ContentKey(digest), []byte("evil bytes"))

	var sawMismatch atomic.Bool
	cl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d := newTestDonor(cl, DonorOptions{Name: "tamper-donor", Logf: func(format string, args ...any) {
		if strings.Contains(fmt.Sprintf(format, args...), "does not match its content digest") {
			sawMismatch.Store(true)
		}
		t.Logf(format, args...)
	}})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	defer func() { d.Stop(); wg.Wait() }()

	// Let the unit bounce well past the compute-failure cap: if mismatches
	// were charged as compute failures the problem would be dead by now.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := srv.Stats(bg, "tamper")
		if err != nil {
			t.Fatalf("problem died while tampered (mismatch fed the compute caps?): %v", err)
		}
		if st.Reissued > maxUnitAttempts+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d reissues before deadline", st.Reissued)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawMismatch.Load() {
		t.Error("donor never logged a digest mismatch")
	}
	if d.Units() != 0 {
		t.Errorf("donor completed %d units from tampered bytes", d.Units())
	}

	// Heal the store; the next reissue verifies and completes.
	srv.bulk.Delete(wire.ContentKey(digest))
	out, err := srv.Wait(bg, "tamper")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, shared) {
		t.Errorf("healed run echoed %q", out)
	}
}

// legacyCoord simulates a donor binary predating content addressing: it
// speaks only the baseline Coordinator verbs and never sees a digest.
type legacyCoord struct{ c *RPCClient }

func (l legacyCoord) RequestTask(ctx context.Context, donor string) (*Task, time.Duration, error) {
	task, wait, err := l.c.RequestTask(ctx, donor)
	if task != nil {
		task.SharedDigest = "" // an old binary has no such field
	}
	return task, wait, err
}

func (l legacyCoord) SharedData(ctx context.Context, problemID string) ([]byte, error) {
	return l.c.SharedData(ctx, problemID)
}

func (l legacyCoord) SubmitResult(ctx context.Context, res *Result) error {
	return l.c.SubmitResult(ctx, res)
}

func (l legacyCoord) ReportFailure(ctx context.Context, donor, problemID string, unitID int64, reason string) error {
	return l.c.ReportFailure(ctx, donor, problemID, unitID, reason)
}

// TestMixedFleetDrains covers both directions of the CapContentBulk
// negotiation on one loopback deployment: a content-addressed server
// drains a fleet mixing digest-native donors, donors that never negotiated
// the capability (fetching per-problem keys through the alias), and
// simulated pre-digest binaries — and a content-disabled server drains a
// new donor through the same fallback.
func TestMixedFleetDrains(t *testing.T) {
	registerEcho(t)
	shared := bytes.Repeat([]byte("mixed"), 4096)

	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const problems, units = 6, 4
	for i := 0; i < problems; i++ {
		if err := srv.Submit(bg, &Problem{ID: fmt.Sprintf("mix-%d", i), DM: newEchoDM(units), SharedData: shared}); err != nil {
			t.Fatal(err)
		}
	}

	mkClient := func() *RPCClient {
		t.Helper()
		cl, err := Dial(srv.RPCAddr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}

	// New donor, full capabilities. Throttled so the fallback donors are
	// guaranteed a share of the 24 units.
	newDonor := newTestDonor(mkClient(), DonorOptions{Name: "new", Throttle: 10 * time.Millisecond})
	// Donor whose dial never saw the capability (an old server in its
	// past): FetchContent degrades to the per-problem key.
	noCapClient := mkClient()
	noCapClient.caps = map[string]bool{}
	noCap := newTestDonor(noCapClient, DonorOptions{Name: "nocap"})
	// Simulated pre-digest binary: baseline verbs only.
	legacy := newTestDonor(legacyCoord{mkClient()}, DonorOptions{Name: "legacy"})

	donors := []*Donor{newDonor, noCap, legacy}
	var wg sync.WaitGroup
	for _, d := range donors {
		wg.Add(1)
		go func(d *Donor) { defer wg.Done(); _ = d.Run(bg) }(d)
	}
	for i := 0; i < problems; i++ {
		out, err := srv.Wait(bg, fmt.Sprintf("mix-%d", i))
		if err != nil {
			t.Fatalf("mix-%d: %v", i, err)
		}
		if !bytes.Equal(out, shared) {
			t.Errorf("mix-%d echoed wrong bytes", i)
		}
	}
	// Exact accounting lives server-side: every unit dispatched once and
	// folded once, no reissues. (Donor-side Units() can read one short — a
	// Stop racing the final in-flight SubmitResult abandons the call
	// client-side after the server already folded it.)
	for i := 0; i < problems; i++ {
		st, err := srv.Stats(bg, fmt.Sprintf("mix-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Dispatched != units || st.Completed != units || st.Reissued != 0 {
			t.Errorf("mix-%d: dispatched/completed/reissued = %d/%d/%d, want %d/%d/0",
				i, st.Dispatched, st.Completed, st.Reissued, units, units)
		}
	}
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	if noCap.Units() == 0 {
		t.Error("cap-less donor drained nothing through the per-problem fallback")
	}
	if legacy.Units() == 0 {
		t.Error("simulated pre-digest donor drained nothing through the alias path")
	}

	// The other direction: a server with content addressing disabled and a
	// fully modern donor — tasks carry no digest, the donor falls back to
	// per-problem fetches.
	opts := netOpts()
	opts.NoContentBulk = true
	old, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := old.Submit(bg, &Problem{ID: "old-srv", DM: newEchoDM(3), SharedData: shared}); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(old.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Supports(wire.CapContentBulk) {
		t.Error("content-disabled server advertised CapContentBulk")
	}
	d := newTestDonor(cl, DonorOptions{Name: "new-vs-old"})
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	out, err := old.Wait(bg, "old-srv")
	d.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, shared) {
		t.Error("new donor against old server echoed wrong bytes")
	}
}

// TestBlobCacheSingleflight: N concurrent Gets of one key cost one fetch,
// and every caller sees the fetched bytes.
func TestBlobCacheSingleflight(t *testing.T) {
	c := NewBlobCache(1 << 20)
	blob := bytes.Repeat([]byte{0xAB}, 4096)
	var fetchCalls atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := c.Get(bg, "sha256:deadbeef", func(context.Context) ([]byte, error) {
				fetchCalls.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open so followers pile up
				return blob, nil
			})
			if err == nil && !bytes.Equal(got, blob) {
				err = errors.New("wrong bytes")
			}
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := fetchCalls.Load(); n != 1 {
		t.Errorf("%d concurrent gets performed %d fetches, want 1", goroutines, n)
	}
	if n := c.Fetches(); n != 1 {
		t.Errorf("Fetches() = %d, want 1", n)
	}
}

// TestBlobCacheEviction: LRU under byte pressure, with the floor that the
// most recently used blob always survives — even one bigger than the
// whole budget.
func TestBlobCacheEviction(t *testing.T) {
	fetches := make(map[string]int)
	mk := func(key string, size int) func(context.Context) ([]byte, error) {
		return func(context.Context) ([]byte, error) {
			fetches[key]++
			return make([]byte, size), nil
		}
	}
	c := NewBlobCache(100)
	for _, key := range []string{"sha256:a", "sha256:b", "sha256:c"} {
		if _, err := c.Get(bg, key, mk(key, 40)); err != nil {
			t.Fatal(err)
		}
	}
	// 120 bytes > 100: the oldest (a) was evicted, b and c remain.
	if _, err := c.Get(bg, "sha256:b", mk("sha256:b", 40)); err != nil {
		t.Fatal(err)
	}
	if fetches["sha256:b"] != 1 {
		t.Errorf("b refetched (%d fetches): evicted despite fitting", fetches["sha256:b"])
	}
	if _, err := c.Get(bg, "sha256:a", mk("sha256:a", 40)); err != nil {
		t.Fatal(err)
	}
	if fetches["sha256:a"] != 2 {
		t.Errorf("a fetched %d times, want 2 (evicted as oldest)", fetches["sha256:a"])
	}

	// A blob bigger than the budget is kept while it is the newest entry...
	huge := NewBlobCache(10)
	if _, err := huge.Get(bg, "sha256:big", mk("sha256:big", 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := huge.Get(bg, "sha256:big", mk("sha256:big", 50)); err != nil {
		t.Fatal(err)
	}
	if fetches["sha256:big"] != 1 {
		t.Errorf("oversized blob fetched %d times, want 1 (floor keeps the active blob)", fetches["sha256:big"])
	}
	// ...and makes way once something newer arrives.
	if _, err := huge.Get(bg, "sha256:next", mk("sha256:next", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := huge.Get(bg, "sha256:big", mk("sha256:big", 50)); err != nil {
		t.Fatal(err)
	}
	if fetches["sha256:big"] != 2 {
		t.Errorf("oversized blob fetched %d times after displacement, want 2", fetches["sha256:big"])
	}
}

// TestBlobCacheFlightSurvivesInitiatorCancel: the fetch runs detached from
// the initiating caller's context, so one donor's aborted unit (a Forget
// cancelling its ctx mid-fetch) cannot poison the blob for the other
// donors parked on the same flight.
func TestBlobCacheFlightSurvivesInitiatorCancel(t *testing.T) {
	c := NewBlobCache(1 << 20)
	blob := []byte("survives the initiator")
	initiatorCtx, cancelInitiator := context.WithCancel(bg)
	fetchStarted := make(chan struct{})
	initiatorCancelled := make(chan struct{})

	flightDone := make(chan error, 1)
	go func() {
		_, err := c.Get(initiatorCtx, "sha256:flight", func(ctx context.Context) ([]byte, error) {
			close(fetchStarted)
			<-initiatorCancelled // the initiator's unit dies mid-fetch
			if ctx.Err() != nil {
				return nil, ctx.Err() // would poison every waiter
			}
			return blob, nil
		})
		flightDone <- err
	}()

	<-fetchStarted
	waiterDone := make(chan error, 1)
	go func() {
		got, err := c.Get(bg, "sha256:flight", func(context.Context) ([]byte, error) {
			return nil, errors.New("waiter must join the flight, not refetch")
		})
		if err == nil && !bytes.Equal(got, blob) {
			err = errors.New("waiter got wrong bytes")
		}
		waiterDone <- err
	}()

	cancelInitiator()
	close(initiatorCancelled)
	if err := <-flightDone; err != nil {
		t.Errorf("initiator's Get = %v (fetch ran under a cancellable ctx?)", err)
	}
	if err := <-waiterDone; err != nil {
		t.Errorf("waiter poisoned by initiator's cancellation: %v", err)
	}
}

// TestBlobCacheFailedFetchNotCached: an error is delivered to the flight's
// callers but never cached; the next Get retries.
func TestBlobCacheFailedFetchNotCached(t *testing.T) {
	c := NewBlobCache(1 << 10)
	boom := errors.New("boom")
	if _, err := c.Get(bg, "k", func(context.Context) ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := c.Get(bg, "k", func(context.Context) ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(got) != "ok" {
		t.Fatalf("retry = %q, %v", got, err)
	}
	if c.Fetches() != 1 {
		t.Errorf("Fetches() = %d, want 1 (failures not counted)", c.Fetches())
	}
}

// TestBlobCacheStress churns a small cache from many goroutines so the
// race detector can chew on Get/evict/drop interleavings.
func TestBlobCacheStress(t *testing.T) {
	c := NewBlobCache(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("sha256:%d", (g+i)%13)
				blob, err := c.Get(bg, key, func(context.Context) ([]byte, error) {
					return bytes.Repeat([]byte(key), 40), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(blob, bytes.Repeat([]byte(key), 40)) {
					t.Errorf("key %s returned foreign bytes", key)
					return
				}
				if i%17 == 0 {
					c.drop(key)
				}
				if i%29 == 0 {
					c.dropNonContent()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSharedCacheSingleflightAcrossDonors is the deployment-shaped
// singleflight check: a pool of donors sharing one BlobCache (the RunLocal
// wiring) starts on one problem over a real loopback server, and the
// shared blob crosses the wire exactly once.
func TestSharedCacheSingleflightAcrossDonors(t *testing.T) {
	registerEcho(t)
	shared := bytes.Repeat([]byte("pool"), 8192)
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "pool", DM: newEchoDM(16), SharedData: shared}); err != nil {
		t.Fatal(err)
	}
	cache := NewBlobCache(1 << 20)
	var wg sync.WaitGroup
	var donors []*Donor
	for i := 0; i < 4; i++ {
		cl, err := Dial(srv.RPCAddr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		d := NewDonor(cl, WithName(fmt.Sprintf("pool-%d", i)), WithBlobCache(cache))
		donors = append(donors, d)
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.Run(bg) }()
	}
	if _, err := srv.Wait(bg, "pool"); err != nil {
		t.Fatal(err)
	}
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	if n := cache.Fetches(); n != 1 {
		t.Errorf("4-donor pool performed %d shared-blob fetches, want 1", n)
	}
	if st := srv.BulkStats(); st.Fetches != 1 {
		t.Errorf("bulk channel saw %d fetches, want 1", st.Fetches)
	}
}
