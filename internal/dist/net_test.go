package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

func netOpts() ServerOptions {
	return ServerOptions{
		Policy:     sched.Fixed{Size: 17},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
	}
}

// TestNetworkMatchesRunLocal runs the same problem through RunLocal and
// through a real loopback server↔donor deployment (control over net/rpc,
// payloads forced onto the bulk socket channel) and demands identical
// results.
func TestNetworkMatchesRunLocal(t *testing.T) {
	registerSum(t)
	const n = 400
	ref, err := RunLocal(bg, &Problem{ID: "sum-ref", DM: newSumDM(n)}, 3, sched.Fixed{Size: 17})
	if err != nil {
		t.Fatal(err)
	}

	opts := netOpts()
	opts.BulkThreshold = 1 // every payload takes the bulk channel
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shared := []byte("shared blob travels the bulk channel too")
	if err := srv.Submit(bg, &Problem{ID: "sum-net", DM: newSumDM(n), SharedData: shared}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var donors []*Donor
	for i := 0; i < 2; i++ {
		cl, err := Dial(srv.RPCAddr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if got, err := cl.SharedData(bg, "sum-net"); err != nil || string(got) != string(shared) {
			t.Fatalf("shared data over bulk channel = %q, %v", got, err)
		}
		d := newTestDonor(cl, DonorOptions{Name: fmt.Sprintf("net-%d", i), Logf: t.Logf})
		donors = append(donors, d)
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.Run(bg) }()
	}

	out, err := srv.Wait(bg, "sum-net")
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := decodeSum(t, out), decodeSum(t, ref); got != want {
		t.Errorf("network result %d != RunLocal result %d", got, want)
	}
	if srv.DonorCount() != 2 {
		t.Errorf("DonorCount = %d, want 2", srv.DonorCount())
	}
	total := 0
	for _, d := range donors {
		total += d.Units()
	}
	if total == 0 {
		t.Error("donors completed no units")
	}
}

// evilBulkListener accepts bulk connections and answers every request with
// a frame header claiming a size far beyond wire.MaxFrameSize — the
// corrupt-peer case the frame layer must reject.
func evilBulkListener(t *testing.T, mode string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := wire.ReadFrame(c); err != nil {
					return
				}
				// Frame header: 4-byte length + 4-byte CRC (left zero —
				// these frames never deliver a full body anyway).
				var hdr [8]byte
				switch mode {
				case "oversized":
					binary.BigEndian.PutUint32(hdr[:4], uint32(wire.MaxFrameSize+1))
					_, _ = c.Write(hdr[:])
				case "short":
					binary.BigEndian.PutUint32(hdr[:4], 100)
					_, _ = c.Write(hdr[:])
					_, _ = c.Write([]byte("only ten b")) // then hang up mid-frame
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestFetchBlobRejectsCorruptFrames is the regression test for the frame
// hardening: oversized and truncated frames must surface as errors, never
// as silently empty payloads.
func TestFetchBlobRejectsCorruptFrames(t *testing.T) {
	if _, err := wire.FetchBlob(evilBulkListener(t, "oversized"), "k", 2*time.Second); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame error = %v", err)
	}
	if _, err := wire.FetchBlob(evilBulkListener(t, "short"), "k", 2*time.Second); err == nil {
		t.Error("truncated frame returned no error")
	}
}

// TestBulkFetchFailureRequeuesUnit wires one donor to a corrupt bulk
// channel: its payload fetches fail, each failure is reported to the server
// (not silently dropped), and the units complete on the healthy donor.
func TestBulkFetchFailureRequeuesUnit(t *testing.T) {
	registerSum(t)
	const n = 200
	opts := netOpts()
	opts.Policy = sched.Fixed{Size: 5} // 40 units
	opts.BulkThreshold = 1
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "sum-evil", DM: newSumDM(n)}); err != nil {
		t.Fatal(err)
	}

	healthyCl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer healthyCl.Close()
	// Throttle the healthy donor so the evil one is guaranteed to claim (and
	// fail) at least one unit before the work runs out.
	healthy := newTestDonor(healthyCl, DonorOptions{Name: "healthy", Throttle: 5 * time.Millisecond})

	evilCl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer evilCl.Close()
	evilCl.bulkAddr = evilBulkListener(t, "oversized") // sabotage the data channel
	evil := newTestDonor(evilCl, DonorOptions{Name: "evil", Logf: t.Logf})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = healthy.Run(bg) }()
	// Let the healthy donor register first so requeued units prefer it.
	time.Sleep(20 * time.Millisecond)
	go func() { defer wg.Done(); _ = evil.Run(bg) }()

	out, err := srv.Wait(bg, "sum-evil")
	healthy.Stop()
	evil.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	if evil.Units() != 0 {
		t.Errorf("donor with corrupt bulk channel completed %d units", evil.Units())
	}
	if healthy.Units() == 0 {
		t.Error("healthy donor completed nothing")
	}
	st, _ := srv.Stats(bg, "sum-evil")
	if st.Reissued < 1 {
		t.Errorf("reissued = %d, want >= 1 (failed fetches must requeue)", st.Reissued)
	}
}

// crashNetworkServer tears the network down with no clean-shutdown reply —
// the donor-visible signature of a server process crash (SIGKILL) — then
// disposes the coordinator. Unlike Close, the ErrClosed sentinel is never
// delivered, so donors see only EOF/reset.
func crashNetworkServer(t *testing.T, ns *NetworkServer) {
	t.Helper()
	ns.closeOnce.Do(func() {}) // a later Close must not re-run the teardown
	_ = ns.rpcLn.Close()
	ns.acceptWG.Wait()
	ns.connsMu.Lock()
	for c := range ns.conns {
		_ = c.Close()
	}
	ns.connsMu.Unlock()
	// Stop the coordinator BEFORE waiting out the connections: net/rpc's
	// ServeConn only returns once its in-flight calls do, and a parked
	// WaitTask handler unparks on Server.Close — waiting first would stall
	// this helper for the park duration. (A real crash never waits: the
	// process is simply gone. The donor-visible signature — a severed
	// conn, no ErrClosed reply — is identical either way.)
	_ = ns.Server.Close()
	ns.connWG.Wait()
	_ = ns.bulk.Close()
}

// freeLoopbackAddr reserves a loopback port and returns host:port, so a
// server can be restarted on the same address later in the test.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDonorReconnectsAcrossServerBounce is the regression test for the
// EOF-as-completion bug: a donor used to treat the EOF/reset of a vanished
// server as a clean finish and exit. With Redial configured it must instead
// keep redialing with backoff, survive the server being torn down and
// restarted on the same address mid-run, and complete fresh work on the new
// server.
func TestDonorReconnectsAcrossServerBounce(t *testing.T) {
	registerSum(t)
	rpcAddr := freeLoopbackAddr(t)
	bulkAddr := freeLoopbackAddr(t)

	opts := netOpts()
	opts.Policy = sched.Fixed{Size: 5}
	srv1, err := ListenAndServe(rpcAddr, bulkAddr, WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	// Far more work than the donor can finish before the bounce.
	if err := srv1.Submit(bg, &Problem{ID: "bounce-1", DM: newSumDM(1_000_000)}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(rpcAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDonor(cl, DonorOptions{
		Name:      "bouncer",
		Throttle:  2 * time.Millisecond,
		Logf:      t.Logf,
		Redial:    func() (Coordinator, error) { return Dial(rpcAddr, 2*time.Second) },
		RedialMin: 5 * time.Millisecond,
		RedialMax: 50 * time.Millisecond,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(bg) }()

	deadline := time.Now().Add(10 * time.Second)
	for d.Units() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("donor stuck at %d units before bounce", d.Units())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Crash the server mid-run (network severed, no close reply). The
	// donor must not exit — the old bug mapped this EOF/reset onto a
	// clean completion.
	crashNetworkServer(t, srv1)
	select {
	case err := <-runErr:
		t.Fatalf("donor exited on server loss (err=%v); want reconnect loop", err)
	case <-time.After(50 * time.Millisecond):
	}
	unitsBeforeRestart := d.Units()

	// Restart on the same address with fresh work; the donor must find it
	// and finish the job.
	srv2, err := ListenAndServe(rpcAddr, bulkAddr, WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	const n = 400
	if err := srv2.Submit(bg, &Problem{ID: "bounce-2", DM: newSumDM(n), SharedData: []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	out, err := srv2.Wait(bg, "bounce-2")
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("post-bounce sum = %d, want %d", got, sumSquares(n))
	}
	if d.Units() <= unitsBeforeRestart {
		t.Errorf("donor completed no units after the bounce (%d before, %d after)",
			unitsBeforeRestart, d.Units())
	}
	// An explicit Close, by contrast, must end the donor loop cleanly:
	// the drain window delivers the ErrClosed sentinel to the polling
	// donor, which exits instead of redialing.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("donor Run after explicit Close = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("donor still retrying after an explicit server Close")
	}
}

// TestForgetReleasesBulkBlobs covers Forget-while-leased at the network
// layer: the shared blob and the leased unit's offloaded payload are both
// dropped from the bulk channel, the unit is not requeued, and Wait fails
// fast with ErrForgotten.
func TestForgetReleasesBulkBlobs(t *testing.T) {
	registerSum(t)
	opts := netOpts()
	opts.Policy = sched.Fixed{Size: 50}
	opts.BulkThreshold = 1 // force every payload onto the bulk channel
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "fgt", DM: newSumDM(500), SharedData: []byte("shared payload")}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(srv.RPCAddr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	task, _, err := cl.RequestTask(bg, "w0") // leases a unit, offloading its payload
	if err != nil || task == nil {
		t.Fatalf("no task: %v", err)
	}

	if _, err := wire.FetchBlob(srv.BulkAddr(), sharedKey("fgt"), time.Second); err != nil {
		t.Fatalf("shared blob missing before Forget: %v", err)
	}
	if _, err := wire.FetchBlob(srv.BulkAddr(), unitKey("fgt", task.Epoch, task.Unit.ID), time.Second); err != nil {
		t.Fatalf("unit blob missing before Forget: %v", err)
	}

	if err := srv.Forget("fgt"); err != nil {
		t.Fatal(err)
	}

	if _, err := wire.FetchBlob(srv.BulkAddr(), sharedKey("fgt"), time.Second); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("shared blob after Forget: err = %v, want not found", err)
	}
	if _, err := wire.FetchBlob(srv.BulkAddr(), unitKey("fgt", task.Epoch, task.Unit.ID), time.Second); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("unit blob after Forget: err = %v, want not found", err)
	}
	if task2, _, err := srv.RequestTask(bg, "w1"); err != nil || task2 != nil {
		t.Errorf("unit re-dispatched after Forget: task=%+v err=%v", task2, err)
	}
	if _, err := srv.Wait(bg, "fgt"); !errors.Is(err, ErrForgotten) {
		t.Errorf("Wait after Forget = %v, want ErrForgotten", err)
	}
}

// TestStaleOffloadDoesNotClobberSuccessor: a task leased from a problem
// that is then forgotten and resubmitted under the same ID can have its
// payload published to the bulk channel late (the RPC goroutine runs
// offloadPayload after the server lock is released). The stale offload
// must neither be advertised nor disturb the successor incarnation's blob
// for a colliding unit ID.
func TestStaleOffloadDoesNotClobberSuccessor(t *testing.T) {
	registerSum(t)
	opts := netOpts()
	opts.Policy = sched.Fixed{Size: 50}
	opts.BulkThreshold = 1
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "so", DM: newSumDM(500)}); err != nil {
		t.Fatal(err)
	}
	// Lease a unit of incarnation 1 without offloading — the state of an
	// rpcService goroutine stalled between RequestTask and offloadPayload.
	stale, _, err := srv.Server.RequestTask(bg, "a")
	if err != nil || stale == nil {
		t.Fatalf("no stale task: %v", err)
	}
	if err := srv.Forget("so"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "so", DM: newSumDM(500)}); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.RPCAddr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	live, _, err := cl.RequestTask(bg, "b") // offloads the successor's payload
	if err != nil || live == nil {
		t.Fatalf("no live task: %v", err)
	}
	if live.Unit.ID != stale.Unit.ID {
		t.Fatalf("test setup: unit IDs %d vs %d do not collide", live.Unit.ID, stale.Unit.ID)
	}
	// The stalled goroutine finally publishes the stale payload.
	if key := srv.offloadPayload(stale); key != "" {
		t.Errorf("stale offload advertised key %q", key)
	}
	got, err := wire.FetchBlob(srv.BulkAddr(), unitKey("so", live.Epoch, live.Unit.ID), time.Second)
	if err != nil {
		t.Fatalf("successor blob gone after stale offload: %v", err)
	}
	if string(got) != string(live.Unit.Payload) {
		t.Error("successor blob corrupted by stale offload")
	}
	// The stale incarnation's blob is not left behind either.
	if _, err := wire.FetchBlob(srv.BulkAddr(), unitKey("so", stale.Epoch, stale.Unit.ID), time.Second); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("stale blob leaked: err = %v, want not found", err)
	}
}

func TestResolveBulkAddr(t *testing.T) {
	cases := []struct{ rpc, bulk, want string }{
		{"10.0.0.5:7070", ":7071", "10.0.0.5:7071"},
		{"10.0.0.5:7070", "0.0.0.0:7071", "10.0.0.5:7071"},
		{"10.0.0.5:7070", "[::]:7071", "10.0.0.5:7071"},
		{"10.0.0.5:7070", "192.168.1.9:7071", "192.168.1.9:7071"},
		{"10.0.0.5:7070", "garbage", "garbage"},
	}
	for _, c := range cases {
		if got := resolveBulkAddr(c.rpc, c.bulk); got != c.want {
			t.Errorf("resolveBulkAddr(%q, %q) = %q, want %q", c.rpc, c.bulk, got, c.want)
		}
	}
}
