package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

func netOpts() ServerOptions {
	return ServerOptions{
		Policy:     sched.Fixed{Size: 17},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
	}
}

// TestNetworkMatchesRunLocal runs the same problem through RunLocal and
// through a real loopback server↔donor deployment (control over net/rpc,
// payloads forced onto the bulk socket channel) and demands identical
// results.
func TestNetworkMatchesRunLocal(t *testing.T) {
	registerSum(t)
	const n = 400
	ref, err := RunLocal(&Problem{ID: "sum-ref", DM: newSumDM(n)}, 3, sched.Fixed{Size: 17})
	if err != nil {
		t.Fatal(err)
	}

	opts := netOpts()
	opts.BulkThreshold = 1 // every payload takes the bulk channel
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	shared := []byte("shared blob travels the bulk channel too")
	if err := srv.Submit(&Problem{ID: "sum-net", DM: newSumDM(n), SharedData: shared}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var donors []*Donor
	for i := 0; i < 2; i++ {
		cl, err := Dial(srv.RPCAddr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if got, err := cl.SharedData("sum-net"); err != nil || string(got) != string(shared) {
			t.Fatalf("shared data over bulk channel = %q, %v", got, err)
		}
		d := NewDonor(cl, DonorOptions{Name: fmt.Sprintf("net-%d", i), Logf: t.Logf})
		donors = append(donors, d)
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.Run() }()
	}

	out, err := srv.Wait("sum-net")
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := decodeSum(t, out), decodeSum(t, ref); got != want {
		t.Errorf("network result %d != RunLocal result %d", got, want)
	}
	if srv.DonorCount() != 2 {
		t.Errorf("DonorCount = %d, want 2", srv.DonorCount())
	}
	total := 0
	for _, d := range donors {
		total += d.Units()
	}
	if total == 0 {
		t.Error("donors completed no units")
	}
}

// evilBulkListener accepts bulk connections and answers every request with
// a frame header claiming a size far beyond wire.MaxFrameSize — the
// corrupt-peer case the frame layer must reject.
func evilBulkListener(t *testing.T, mode string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := wire.ReadFrame(c); err != nil {
					return
				}
				var hdr [4]byte
				switch mode {
				case "oversized":
					binary.BigEndian.PutUint32(hdr[:], uint32(wire.MaxFrameSize+1))
					_, _ = c.Write(hdr[:])
				case "short":
					binary.BigEndian.PutUint32(hdr[:], 100)
					_, _ = c.Write(hdr[:])
					_, _ = c.Write([]byte("only ten b")) // then hang up mid-frame
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestFetchBlobRejectsCorruptFrames is the regression test for the frame
// hardening: oversized and truncated frames must surface as errors, never
// as silently empty payloads.
func TestFetchBlobRejectsCorruptFrames(t *testing.T) {
	if _, err := wire.FetchBlob(evilBulkListener(t, "oversized"), "k", 2*time.Second); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame error = %v", err)
	}
	if _, err := wire.FetchBlob(evilBulkListener(t, "short"), "k", 2*time.Second); err == nil {
		t.Error("truncated frame returned no error")
	}
}

// TestBulkFetchFailureRequeuesUnit wires one donor to a corrupt bulk
// channel: its payload fetches fail, each failure is reported to the server
// (not silently dropped), and the units complete on the healthy donor.
func TestBulkFetchFailureRequeuesUnit(t *testing.T) {
	registerSum(t)
	const n = 200
	opts := netOpts()
	opts.Policy = sched.Fixed{Size: 5} // 40 units
	opts.BulkThreshold = 1
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(&Problem{ID: "sum-evil", DM: newSumDM(n)}); err != nil {
		t.Fatal(err)
	}

	healthyCl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer healthyCl.Close()
	// Throttle the healthy donor so the evil one is guaranteed to claim (and
	// fail) at least one unit before the work runs out.
	healthy := NewDonor(healthyCl, DonorOptions{Name: "healthy", Throttle: 5 * time.Millisecond})

	evilCl, err := Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer evilCl.Close()
	evilCl.bulkAddr = evilBulkListener(t, "oversized") // sabotage the data channel
	evil := NewDonor(evilCl, DonorOptions{Name: "evil", Logf: t.Logf})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = healthy.Run() }()
	// Let the healthy donor register first so requeued units prefer it.
	time.Sleep(20 * time.Millisecond)
	go func() { defer wg.Done(); _ = evil.Run() }()

	out, err := srv.Wait("sum-evil")
	healthy.Stop()
	evil.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	if evil.Units() != 0 {
		t.Errorf("donor with corrupt bulk channel completed %d units", evil.Units())
	}
	if healthy.Units() == 0 {
		t.Error("healthy donor completed nothing")
	}
	_, _, reissued, _ := srv.Stats("sum-evil")
	if reissued < 1 {
		t.Errorf("reissued = %d, want >= 1 (failed fetches must requeue)", reissued)
	}
}

func TestResolveBulkAddr(t *testing.T) {
	cases := []struct{ rpc, bulk, want string }{
		{"10.0.0.5:7070", ":7071", "10.0.0.5:7071"},
		{"10.0.0.5:7070", "0.0.0.0:7071", "10.0.0.5:7071"},
		{"10.0.0.5:7070", "[::]:7071", "10.0.0.5:7071"},
		{"10.0.0.5:7070", "192.168.1.9:7071", "192.168.1.9:7071"},
		{"10.0.0.5:7070", "garbage", "garbage"},
	}
	for _, c := range cases {
		if got := resolveBulkAddr(c.rpc, c.bulk); got != c.want {
			t.Errorf("resolveBulkAddr(%q, %q) = %q, want %q", c.rpc, c.bulk, got, c.want)
		}
	}
}
