package dist

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// The test problem: sum the squares of 1..N, partitioned into ranges.

type sumUnit struct {
	From, To int64 // [From, To)
	Poison   bool  // a poisoned unit always fails on the donor
}

type sumDM struct {
	n         int64
	next      int64
	seq       int64
	inflight  map[int64]sumUnit
	total     int64
	completed int64
	poison    bool // stamp Poison on every unit
}

func newSumDM(n int64) *sumDM {
	return &sumDM{n: n, next: 1, inflight: make(map[int64]sumUnit)}
}

func (d *sumDM) NextUnit(budget int64) (*Unit, bool, error) {
	if d.next > d.n {
		return nil, false, nil
	}
	if budget < 1 {
		budget = 1
	}
	to := d.next + budget
	if to > d.n+1 {
		to = d.n + 1
	}
	u := sumUnit{From: d.next, To: to, Poison: d.poison}
	payload, err := Marshal(u)
	if err != nil {
		return nil, false, err
	}
	d.seq++
	d.inflight[d.seq] = u
	d.next = to
	return &Unit{ID: d.seq, Algorithm: "dist-test/sum", Payload: payload, Cost: to - u.From}, true, nil
}

func (d *sumDM) Consume(unitID int64, payload []byte) error {
	u, ok := d.inflight[unitID]
	if !ok {
		return fmt.Errorf("unknown unit %d", unitID)
	}
	delete(d.inflight, unitID)
	var part int64
	if err := Unmarshal(payload, &part); err != nil {
		return err
	}
	d.total += part
	d.completed += u.To - u.From
	return nil
}

func (d *sumDM) Done() bool                   { return d.completed >= d.n }
func (d *sumDM) FinalResult() ([]byte, error) { return Marshal(d.total) }
func (d *sumDM) Progress() (done, total int)  { return int(d.completed), int(d.n) }

// failNext makes the sum algorithm fail its next K Process calls, whichever
// donor runs them — exercising the report-failure → requeue path.
var failNext atomic.Int64

type sumAlg struct{}

func (sumAlg) Init([]byte) error { return nil }

func (sumAlg) Process(payload []byte) ([]byte, error) {
	var u sumUnit
	if err := Unmarshal(payload, &u); err != nil {
		return nil, err
	}
	if u.Poison {
		return nil, errors.New("poisoned unit")
	}
	if failNext.Load() > 0 && failNext.Add(-1) >= 0 {
		return nil, errors.New("injected failure")
	}
	var sum int64
	for i := u.From; i < u.To; i++ {
		sum += i * i
	}
	return Marshal(sum)
}

var registerSumOnce sync.Once

func registerSum(t *testing.T) {
	t.Helper()
	registerSumOnce.Do(func() {
		RegisterAlgorithm("dist-test/sum", func() Algorithm { return sumAlg{} })
	})
}

func sumSquares(n int64) int64 {
	return n * (n + 1) * (2*n + 1) / 6
}

func decodeSum(t *testing.T, out []byte) int64 {
	t.Helper()
	var got int64
	if err := Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMarshalRoundTrip(t *testing.T) {
	type payload struct {
		Name  string
		Vals  []float64
		Bytes []byte
	}
	in := payload{Name: "x", Vals: []float64{1.5, -2, 3e9}, Bytes: []byte{0, 1, 2}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[2] != 3e9 || string(out.Bytes) != string(in.Bytes) {
		t.Errorf("round trip mangled payload: %+v", out)
	}
	if err := Unmarshal([]byte("not gob"), &out); err == nil {
		t.Error("garbage unmarshalled without error")
	}
	if !strings.HasPrefix(recoverPanic(func() { MustMarshal(make(chan int)) }), "dist: marshal") {
		t.Error("MustMarshal did not panic on an unencodable value")
	}
}

// recoverPanic runs f and returns the panic message ("" if none).
func recoverPanic(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	f()
	return ""
}

var registerDupOnce sync.Once

func TestRegistryDuplicatePanics(t *testing.T) {
	// Guarded so the test survives -count=N re-runs in one process.
	registerDupOnce.Do(func() {
		RegisterAlgorithm("dist-test/dup", func() Algorithm { return sumAlg{} })
	})
	if msg := recoverPanic(func() {
		RegisterAlgorithm("dist-test/dup", func() Algorithm { return sumAlg{} })
	}); !strings.Contains(msg, "registered twice") {
		t.Errorf("duplicate registration panic = %q", msg)
	}
	if msg := recoverPanic(func() { RegisterAlgorithm("", func() Algorithm { return sumAlg{} }) }); msg == "" {
		t.Error("empty name accepted")
	}
	if msg := recoverPanic(func() { RegisterAlgorithm("dist-test/nilf", nil) }); msg == "" {
		t.Error("nil factory accepted")
	}
	found := false
	for _, n := range RegisteredAlgorithms() {
		if n == "dist-test/dup" {
			found = true
		}
	}
	if !found {
		t.Error("registered algorithm missing from listing")
	}
}

func TestRunLocalEndToEnd(t *testing.T) {
	registerSum(t)
	const n = 1000
	for _, pol := range []sched.Policy{
		sched.Fixed{Size: 7},
		sched.Fixed{Size: 1 << 40},
		sched.Adaptive{Target: time.Millisecond, Bootstrap: 100, Min: 1},
		sched.GSS{K: 1, Min: 1},
	} {
		p := &Problem{ID: "sum-" + pol.Name(), DM: newSumDM(n)}
		out, err := RunLocal(p, 4, pol)
		if err != nil {
			t.Fatalf("policy %s: %v", pol.Name(), err)
		}
		if got := decodeSum(t, out); got != sumSquares(n) {
			t.Errorf("policy %s: sum = %d, want %d", pol.Name(), got, sumSquares(n))
		}
	}
}

func TestRunLocalRequeuesFailedUnits(t *testing.T) {
	registerSum(t)
	const n, failures = 500, 3
	failNext.Store(failures)
	defer failNext.Store(0)

	srv := NewServer(ServerOptions{
		Policy:     sched.Fixed{Size: 25},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	p := &Problem{ID: "sum-fail", DM: newSumDM(n)}
	if err := srv.Submit(p); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	donors := make([]*Donor, 2)
	for i := range donors {
		donors[i] = NewDonor(srv, DonorOptions{Name: fmt.Sprintf("w%d", i), Logf: t.Logf})
		wg.Add(1)
		go func(d *Donor) { defer wg.Done(); _ = d.Run() }(donors[i])
	}
	out, err := srv.Wait(p.ID)
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	_, completed, reissued, err := srv.Stats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if reissued != failures {
		t.Errorf("reissued = %d, want %d", reissued, failures)
	}
	if completed == 0 {
		t.Error("no units completed")
	}
}

func TestPoisonedUnitFailsProblemEventually(t *testing.T) {
	registerSum(t)
	dm := newSumDM(10)
	dm.poison = true
	p := &Problem{ID: "sum-poison", DM: dm}
	_, err := RunLocal(p, 2, sched.Fixed{Size: 1 << 40})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("poisoned problem error = %v, want repeated-failure error", err)
	}
}

func TestLeaseExpiryReissuesToOtherDonor(t *testing.T) {
	registerSum(t)
	srv := NewServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1 << 40}, // whole problem in one unit
		Lease:      30 * time.Millisecond,
		ExpiryScan: 5 * time.Millisecond,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	const n = 100
	p := &Problem{ID: "sum-expire", DM: newSumDM(n)}
	if err := srv.Submit(p); err != nil {
		t.Fatal(err)
	}
	// A ghost donor claims the only unit and vanishes (a powered-off lab
	// machine); the lease must expire and the unit go to a live donor.
	if task, _, err := srv.RequestTask("ghost"); err != nil || task == nil {
		t.Fatalf("ghost got no task: %v", err)
	}
	d := NewDonor(srv, DonorOptions{Name: "live"})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run() }()
	out, err := srv.Wait(p.ID)
	d.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	_, _, reissued, _ := srv.Stats(p.ID)
	if reissued < 1 {
		t.Errorf("reissued = %d, want >= 1", reissued)
	}
	if d.Units() == 0 {
		t.Error("live donor completed nothing")
	}
}

func TestRequeueFallsBackWhenOtherDonorDead(t *testing.T) {
	registerSum(t)
	srv := NewServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1 << 40}, // whole problem in one unit
		Lease:      50 * time.Millisecond,
		ExpiryScan: time.Hour, // expiry scan out of the picture
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(&Problem{ID: "fallback", DM: newSumDM(50)}); err != nil {
		t.Fatal(err)
	}
	// Donor a claims the only unit; donor b registers, then goes silent.
	task, _, err := srv.RequestTask("a")
	if err != nil || task == nil {
		t.Fatalf("a got no task: %v", err)
	}
	if _, _, err := srv.RequestTask("b"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReportFailure("a", "fallback", task.Unit.ID, "transient"); err != nil {
		t.Fatal(err)
	}
	// While b looks alive, the requeued unit is reserved for it.
	if task, _, _ := srv.RequestTask("a"); task != nil {
		t.Fatal("a immediately retook its own failed unit despite a live peer")
	}
	// Once b has not polled for a full lease, a must get the unit back
	// rather than starving the problem forever.
	deadline := time.Now().Add(5 * time.Second)
	for {
		task, _, err := srv.RequestTask("a")
		if err != nil {
			t.Fatal(err)
		}
		if task != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requeued unit starved: never re-dispatched after peer went silent")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sharedStub serves shared data for any problem ID without a server.
type sharedStub struct{}

func (sharedStub) RequestTask(string) (*Task, time.Duration, error) { return nil, 0, nil }
func (sharedStub) SharedData(problemID string) ([]byte, error)      { return []byte(problemID), nil }
func (sharedStub) SubmitResult(*Result) error                       { return nil }
func (sharedStub) ReportFailure(string, string, int64, string) error {
	return nil
}

func TestDonorCacheBounded(t *testing.T) {
	registerSum(t)
	d := NewDonor(sharedStub{}, DonorOptions{Name: "cache"})
	for i := 0; i < 3*maxCachedProblems; i++ {
		if _, err := d.algorithm(fmt.Sprintf("p%02d", i), "dist-test/sum"); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.shared) > maxCachedProblems || len(d.problemOrder) > maxCachedProblems {
		t.Errorf("cache grew unbounded: %d blobs, %d tracked", len(d.shared), len(d.problemOrder))
	}
	if len(d.algs) > maxCachedProblems {
		t.Errorf("algorithm cache grew unbounded: %d", len(d.algs))
	}
	// The most recent problem must still be cached.
	last := fmt.Sprintf("p%02d", 3*maxCachedProblems-1)
	if _, ok := d.shared[last]; !ok {
		t.Errorf("most recent problem %s evicted", last)
	}
}

func TestServerValidation(t *testing.T) {
	srv := NewServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	if err := srv.Submit(nil); err == nil {
		t.Error("nil problem accepted")
	}
	if err := srv.Submit(&Problem{ID: "", DM: newSumDM(1)}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := srv.Submit(&Problem{ID: "p", DM: newSumDM(1)}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(&Problem{ID: "p", DM: newSumDM(1)}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := srv.Wait("nope"); err == nil {
		t.Error("Wait on unknown problem succeeded")
	}
	if _, err := srv.Status("nope"); err == nil {
		t.Error("Status on unknown problem succeeded")
	}
	if _, _, _, err := srv.Stats("nope"); err == nil {
		t.Error("Stats on unknown problem succeeded")
	}
}

func TestStatusReportsProgress(t *testing.T) {
	registerSum(t)
	srv := NewServer(ServerOptions{Policy: sched.Fixed{Size: 10}, WaitHint: time.Millisecond})
	defer srv.Close()
	dm := newSumDM(100)
	if err := srv.Submit(&Problem{ID: "prog", DM: dm}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask("w0")
	if err != nil || task == nil {
		t.Fatalf("no task: %v", err)
	}
	st, err := srv.Status("prog")
	if err != nil {
		t.Fatal(err)
	}
	if st.Inflight != 1 || st.Done || st.AppTotal != 100 {
		t.Errorf("status = %+v", st)
	}
	if srv.DonorCount() != 1 {
		t.Errorf("DonorCount = %d", srv.DonorCount())
	}
}

// stallDM has work it never hands out — the server must fail it loudly
// instead of letting Wait hang forever.
type stallDM struct{}

func (stallDM) NextUnit(int64) (*Unit, bool, error) { return nil, false, nil }
func (stallDM) Consume(int64, []byte) error         { return nil }
func (stallDM) Done() bool                          { return false }
func (stallDM) FinalResult() ([]byte, error)        { return nil, nil }

func TestStalledProblemFailsLoudly(t *testing.T) {
	srv := NewServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	if err := srv.Submit(&Problem{ID: "stall", DM: stallDM{}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.RequestTask("w0"); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Wait("stall")
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Errorf("stalled problem error = %v", err)
	}
}

func TestDoneAtSubmitFinalizesImmediately(t *testing.T) {
	srv := NewServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	dm := newSumDM(0) // completed >= n holds immediately
	if err := srv.Submit(&Problem{ID: "empty", DM: dm}); err != nil {
		t.Fatal(err)
	}
	out, err := srv.Wait("empty")
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != 0 {
		t.Errorf("empty problem sum = %d", got)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	srv := NewServer(ServerOptions{WaitHint: time.Millisecond})
	if err := srv.Submit(&Problem{ID: "never", DM: newSumDM(1000)}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Wait("never")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Wait after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait still blocked after Close")
	}
	if _, _, err := srv.RequestTask("w"); !errors.Is(err, ErrClosed) {
		t.Errorf("RequestTask after Close = %v", err)
	}
}
