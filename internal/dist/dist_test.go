package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// bg is the background context for test calls with no cancellation story.
var bg = context.Background()

// newTestServer / newTestDonor adopt a whole options bag, keeping the
// table-style struct literals in these tests readable; the functional
// options themselves are covered by TestFunctionalOptions.
func newTestServer(o ServerOptions) *Server { return NewServer(WithServerOptions(o)) }

func newTestDonor(c Coordinator, o DonorOptions) *Donor {
	return NewDonor(c, WithDonorOptions(o))
}

// The test problem: sum the squares of 1..N, partitioned into ranges.
// sumAlg deliberately stays a v1 LegacyAlgorithm (blocking Process, no
// context) and is registered through the legacy shim, so the whole suite
// doubles as shim coverage.

type sumUnit struct {
	From, To int64 // [From, To)
	Poison   bool  // a poisoned unit always fails on the donor
}

type sumDM struct {
	n         int64
	next      int64
	seq       int64
	inflight  map[int64]sumUnit
	total     int64
	completed int64
	poison    bool // stamp Poison on every unit
}

func newSumDM(n int64) *sumDM {
	return &sumDM{n: n, next: 1, inflight: make(map[int64]sumUnit)}
}

func (d *sumDM) NextUnit(budget int64) (*Unit, bool, error) {
	if d.next > d.n {
		return nil, false, nil
	}
	if budget < 1 {
		budget = 1
	}
	to := d.next + budget
	if to > d.n+1 {
		to = d.n + 1
	}
	u := sumUnit{From: d.next, To: to, Poison: d.poison}
	payload, err := Marshal(u)
	if err != nil {
		return nil, false, err
	}
	d.seq++
	d.inflight[d.seq] = u
	d.next = to
	return &Unit{ID: d.seq, Algorithm: "dist-test/sum", Payload: payload, Cost: to - u.From}, true, nil
}

func (d *sumDM) Consume(unitID int64, payload []byte) error {
	u, ok := d.inflight[unitID]
	if !ok {
		return fmt.Errorf("unknown unit %d", unitID)
	}
	delete(d.inflight, unitID)
	var part int64
	if err := Unmarshal(payload, &part); err != nil {
		return err
	}
	d.total += part
	d.completed += u.To - u.From
	return nil
}

func (d *sumDM) Done() bool                   { return d.completed >= d.n }
func (d *sumDM) FinalResult() ([]byte, error) { return Marshal(d.total) }
func (d *sumDM) Progress() (done, total int)  { return int(d.completed), int(d.n) }

// failNext makes the sum algorithm fail its next K Process calls, whichever
// donor runs them — exercising the report-failure → requeue path.
var failNext atomic.Int64

type sumAlg struct{}

func (sumAlg) Init([]byte) error { return nil }

func (sumAlg) Process(payload []byte) ([]byte, error) {
	var u sumUnit
	if err := Unmarshal(payload, &u); err != nil {
		return nil, err
	}
	if u.Poison {
		return nil, errors.New("poisoned unit")
	}
	if failNext.Load() > 0 && failNext.Add(-1) >= 0 {
		return nil, errors.New("injected failure")
	}
	var sum int64
	for i := u.From; i < u.To; i++ {
		sum += i * i
	}
	return Marshal(sum)
}

var registerSumOnce sync.Once

func registerSum(t *testing.T) {
	t.Helper()
	registerSumOnce.Do(func() {
		RegisterLegacyAlgorithm("dist-test/sum", func() LegacyAlgorithm { return sumAlg{} })
	})
}

func sumSquares(n int64) int64 {
	return n * (n + 1) * (2*n + 1) / 6
}

func decodeSum(t *testing.T, out []byte) int64 {
	t.Helper()
	var got int64
	if err := Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMarshalRoundTrip(t *testing.T) {
	type payload struct {
		Name  string
		Vals  []float64
		Bytes []byte
	}
	in := payload{Name: "x", Vals: []float64{1.5, -2, 3e9}, Bytes: []byte{0, 1, 2}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[2] != 3e9 || string(out.Bytes) != string(in.Bytes) {
		t.Errorf("round trip mangled payload: %+v", out)
	}
	if err := Unmarshal([]byte("not gob"), &out); err == nil {
		t.Error("garbage unmarshalled without error")
	}
	if !strings.HasPrefix(recoverPanic(func() { MustMarshal(make(chan int)) }), "dist: marshal") {
		t.Error("MustMarshal did not panic on an unencodable value")
	}
}

// recoverPanic runs f and returns the panic message ("" if none).
func recoverPanic(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	f()
	return ""
}

var registerDupOnce sync.Once

func TestRegistryDuplicatePanics(t *testing.T) {
	// Guarded so the test survives -count=N re-runs in one process.
	registerDupOnce.Do(func() {
		RegisterAlgorithm("dist-test/dup", func() Algorithm { return LegacyShim(sumAlg{}) })
	})
	if msg := recoverPanic(func() {
		RegisterAlgorithm("dist-test/dup", func() Algorithm { return LegacyShim(sumAlg{}) })
	}); !strings.Contains(msg, "registered twice") {
		t.Errorf("duplicate registration panic = %q", msg)
	}
	if msg := recoverPanic(func() { RegisterAlgorithm("", func() Algorithm { return LegacyShim(sumAlg{}) }) }); msg == "" {
		t.Error("empty name accepted")
	}
	if msg := recoverPanic(func() { RegisterAlgorithm("dist-test/nilf", nil) }); msg == "" {
		t.Error("nil factory accepted")
	}
	found := false
	for _, n := range RegisteredAlgorithms() {
		if n == "dist-test/dup" {
			found = true
		}
	}
	if !found {
		t.Error("registered algorithm missing from listing")
	}
}

func TestRunLocalEndToEnd(t *testing.T) {
	registerSum(t)
	const n = 1000
	for _, pol := range []sched.Policy{
		sched.Fixed{Size: 7},
		sched.Fixed{Size: 1 << 40},
		sched.Adaptive{Target: time.Millisecond, Bootstrap: 100, Min: 1},
		sched.GSS{K: 1, Min: 1},
	} {
		p := &Problem{ID: "sum-" + pol.Name(), DM: newSumDM(n)}
		out, err := RunLocal(bg, p, 4, pol)
		if err != nil {
			t.Fatalf("policy %s: %v", pol.Name(), err)
		}
		if got := decodeSum(t, out); got != sumSquares(n) {
			t.Errorf("policy %s: sum = %d, want %d", pol.Name(), got, sumSquares(n))
		}
	}
}

func TestRunLocalRequeuesFailedUnits(t *testing.T) {
	registerSum(t)
	const n, failures = 500, 3
	failNext.Store(failures)
	defer failNext.Store(0)

	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 25},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	p := &Problem{ID: "sum-fail", DM: newSumDM(n)}
	if err := srv.Submit(bg, p); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	donors := make([]*Donor, 2)
	for i := range donors {
		donors[i] = newTestDonor(srv, DonorOptions{Name: fmt.Sprintf("w%d", i), Logf: t.Logf})
		wg.Add(1)
		go func(d *Donor) { defer wg.Done(); _ = d.Run(bg) }(donors[i])
	}
	out, err := srv.Wait(bg, p.ID)
	for _, d := range donors {
		d.Stop()
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	st, err := srv.Stats(bg, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reissued != failures {
		t.Errorf("reissued = %d, want %d", st.Reissued, failures)
	}
	if st.Completed == 0 {
		t.Error("no units completed")
	}
}

func TestPoisonedUnitFailsProblemEventually(t *testing.T) {
	registerSum(t)
	dm := newSumDM(10)
	dm.poison = true
	p := &Problem{ID: "sum-poison", DM: dm}
	_, err := RunLocal(bg, p, 2, sched.Fixed{Size: 1 << 40})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("poisoned problem error = %v, want repeated-failure error", err)
	}
}

func TestLeaseExpiryReissuesToOtherDonor(t *testing.T) {
	registerSum(t)
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1 << 40}, // whole problem in one unit
		Lease:      30 * time.Millisecond,
		ExpiryScan: 5 * time.Millisecond,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	const n = 100
	p := &Problem{ID: "sum-expire", DM: newSumDM(n)}
	if err := srv.Submit(bg, p); err != nil {
		t.Fatal(err)
	}
	// A ghost donor claims the only unit and vanishes (a powered-off lab
	// machine); the lease must expire and the unit go to a live donor.
	if task, _, err := srv.RequestTask(bg, "ghost"); err != nil || task == nil {
		t.Fatalf("ghost got no task: %v", err)
	}
	d := newTestDonor(srv, DonorOptions{Name: "live"})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(bg) }()
	out, err := srv.Wait(bg, p.ID)
	d.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("sum = %d, want %d", got, sumSquares(n))
	}
	st, _ := srv.Stats(bg, p.ID)
	if st.Reissued < 1 {
		t.Errorf("reissued = %d, want >= 1", st.Reissued)
	}
	if d.Units() == 0 {
		t.Error("live donor completed nothing")
	}
}

func TestRequeueFallsBackWhenOtherDonorDead(t *testing.T) {
	registerSum(t)
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1 << 40}, // whole problem in one unit
		Lease:      50 * time.Millisecond,
		ExpiryScan: time.Hour, // expiry scan out of the picture
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "fallback", DM: newSumDM(50)}); err != nil {
		t.Fatal(err)
	}
	// Donor a claims the only unit; donor b registers, then goes silent.
	task, _, err := srv.RequestTask(bg, "a")
	if err != nil || task == nil {
		t.Fatalf("a got no task: %v", err)
	}
	if _, _, err := srv.RequestTask(bg, "b"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReportFailure(bg, "a", "fallback", task.Unit.ID, "transient"); err != nil {
		t.Fatal(err)
	}
	// While b looks alive, the requeued unit is reserved for it.
	if task, _, _ := srv.RequestTask(bg, "a"); task != nil {
		t.Fatal("a immediately retook its own failed unit despite a live peer")
	}
	// Once b has not polled for a full lease, a must get the unit back
	// rather than starving the problem forever.
	deadline := time.Now().Add(5 * time.Second)
	for {
		task, _, err := srv.RequestTask(bg, "a")
		if err != nil {
			t.Fatal(err)
		}
		if task != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requeued unit starved: never re-dispatched after peer went silent")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sharedStub serves shared data for any problem ID without a server.
type sharedStub struct{}

func (sharedStub) RequestTask(context.Context, string) (*Task, time.Duration, error) {
	return nil, 0, nil
}

func (sharedStub) SharedData(_ context.Context, problemID string) ([]byte, error) {
	return []byte(problemID), nil
}
func (sharedStub) SubmitResult(context.Context, *Result) error { return nil }
func (sharedStub) ReportFailure(context.Context, string, string, int64, string) error {
	return nil
}

// algFor drives Donor.algorithm with a synthetic task — the pre-digest
// call shape the donor cache tests were written against.
func algFor(d *Donor, problemID, name string, epoch int64) (Algorithm, error) {
	return d.algorithm(bg, &Task{ProblemID: problemID, Unit: Unit{Algorithm: name}, Epoch: epoch})
}

func TestDonorCacheBounded(t *testing.T) {
	registerSum(t)
	d := newTestDonor(sharedStub{}, DonorOptions{Name: "cache"})
	// The resident-problem bound is derived from the blob budget; at the
	// default budget it must reproduce the old hardcoded 8.
	cap := d.opts.problemCacheCap()
	if cap != 8 {
		t.Fatalf("default problemCacheCap = %d, want 8", cap)
	}
	for i := 0; i < 3*cap; i++ {
		if _, err := algFor(d, fmt.Sprintf("p%02d", i), "dist-test/sum", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.epochs) > cap || len(d.problemOrder) > cap {
		t.Errorf("cache grew unbounded: %d epochs, %d tracked", len(d.epochs), len(d.problemOrder))
	}
	if len(d.algs) > cap {
		t.Errorf("algorithm cache grew unbounded: %d", len(d.algs))
	}
	d.opts.BlobCache.mu.Lock()
	blobEntries := len(d.opts.BlobCache.entries)
	d.opts.BlobCache.mu.Unlock()
	if blobEntries > cap {
		t.Errorf("legacy blob entries grew unbounded: %d", blobEntries)
	}
	// The most recent problem must still be cached.
	last := fmt.Sprintf("p%02d", 3*cap-1)
	if _, ok := d.epochs[last]; !ok {
		t.Errorf("most recent problem %s evicted", last)
	}
}

// TestDonorProblemCapDerivedFromBudget pins the budget→bound derivation:
// proportional above the floor, floored below it so a tiny budget still
// caches the problem being computed.
func TestDonorProblemCapDerivedFromBudget(t *testing.T) {
	cases := []struct {
		budget int64
		want   int
	}{
		{0, 8},                        // default 256 MiB
		{256 << 20, 8},                // explicit default
		{1 << 30, 32},                 // bigger budget, more resident problems
		{32 << 20, minCachedProblems}, // one quantum still floors
		{-1, minCachedProblems},       // "no cache" keeps the floor
		{4 << 10, minCachedProblems},  // tiny budget keeps the floor
	}
	for _, c := range cases {
		o := DonorOptions{BlobCacheBytes: c.budget}
		o.applyDefaults()
		if got := o.problemCacheCap(); got != c.want {
			t.Errorf("problemCacheCap(budget=%d) = %d, want %d", c.budget, got, c.want)
		}
	}
}

// fetchCountingStub counts shared-data fetches so cache behaviour is
// observable.
type fetchCountingStub struct {
	sharedStub
	fetches int
}

func (s *fetchCountingStub) SharedData(_ context.Context, problemID string) ([]byte, error) {
	s.fetches++
	return []byte(problemID), nil
}

func TestDonorEvictsCacheOnEpochChange(t *testing.T) {
	registerSum(t)
	stub := &fetchCountingStub{}
	d := newTestDonor(stub, DonorOptions{Name: "epoch"})
	if _, err := algFor(d, "p", "dist-test/sum", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := algFor(d, "p", "dist-test/sum", 1); err != nil {
		t.Fatal(err)
	}
	if stub.fetches != 1 {
		t.Fatalf("same-epoch tasks fetched shared data %d times, want 1", stub.fetches)
	}
	// A new epoch means the ID was forgotten and resubmitted — possibly
	// with different shared data — so the cache must be refetched.
	if _, err := algFor(d, "p", "dist-test/sum", 2); err != nil {
		t.Fatal(err)
	}
	if stub.fetches != 2 {
		t.Fatalf("epoch change fetched shared data %d times total, want 2", stub.fetches)
	}
}

func TestServerValidation(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	if err := srv.Submit(bg, nil); err == nil {
		t.Error("nil problem accepted")
	}
	if err := srv.Submit(bg, &Problem{ID: "", DM: newSumDM(1)}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := srv.Submit(bg, &Problem{ID: "p", DM: newSumDM(1)}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "p", DM: newSumDM(1)}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := srv.Wait(bg, "nope"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("Wait on unknown problem = %v, want ErrUnknownProblem", err)
	}
	if _, err := srv.Status(bg, "nope"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("Status on unknown problem = %v, want ErrUnknownProblem", err)
	}
	if _, err := srv.Stats(bg, "nope"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("Stats on unknown problem = %v, want ErrUnknownProblem", err)
	}
}

func TestForgetLifecycle(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "gone", DM: newSumDM(0), SharedData: []byte("blob")}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(bg, "gone"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Forget("gone"); err != nil {
		t.Fatalf("Forget = %v", err)
	}
	if err := srv.Forget("gone"); err != nil {
		t.Errorf("double Forget = %v, want nil (idempotent)", err)
	}
	// Completed-and-evicted is distinguishable from never-existed.
	if _, err := srv.Status(bg, "gone"); !errors.Is(err, ErrForgotten) {
		t.Errorf("Status after Forget = %v, want ErrForgotten", err)
	}
	if _, err := srv.Stats(bg, "gone"); !errors.Is(err, ErrForgotten) {
		t.Errorf("Stats after Forget = %v, want ErrForgotten", err)
	}
	if _, err := srv.SharedData(bg, "gone"); !errors.Is(err, ErrForgotten) {
		t.Errorf("SharedData after Forget = %v, want ErrForgotten", err)
	}
	if err := srv.Forget("never"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("Forget(never submitted) = %v, want ErrUnknownProblem", err)
	}
	// Wait after Forget fails fast instead of blocking forever.
	waited := make(chan error, 1)
	go func() {
		_, err := srv.Wait(bg, "gone")
		waited <- err
	}()
	select {
	case err := <-waited:
		if !errors.Is(err, ErrForgotten) {
			t.Errorf("Wait after Forget = %v, want ErrForgotten", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait after Forget blocked")
	}
	// A forgotten ID may be reused by a later Submit.
	if err := srv.Submit(bg, &Problem{ID: "gone", DM: newSumDM(0)}); err != nil {
		t.Fatalf("resubmit after Forget: %v", err)
	}
	if _, err := srv.Wait(bg, "gone"); err != nil {
		t.Errorf("Wait on resubmitted ID = %v", err)
	}
}

func TestForgetWhileLeased(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 10},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "leased", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "w0")
	if err != nil || task == nil {
		t.Fatalf("no task: %v", err)
	}
	waited := make(chan error, 1)
	go func() {
		_, err := srv.Wait(bg, "leased")
		waited <- err
	}()
	if err := srv.Forget("leased"); err != nil {
		t.Fatal(err)
	}
	// Forgetting a running problem unblocks its waiters with ErrForgotten.
	select {
	case err := <-waited:
		if !errors.Is(err, ErrForgotten) {
			t.Errorf("Wait on problem forgotten mid-run = %v, want ErrForgotten", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait still blocked after Forget")
	}
	// The leased unit is discarded, not requeued: straggler results and
	// failure reports are ignored without error, and no donor is handed
	// the unit again.
	if err := srv.SubmitResult(bg, &Result{ProblemID: "leased", UnitID: task.Unit.ID, Donor: "w0"}); err != nil {
		t.Errorf("straggler SubmitResult after Forget = %v", err)
	}
	if err := srv.ReportFailure(bg, "w0", "leased", task.Unit.ID, "late"); err != nil {
		t.Errorf("straggler ReportFailure after Forget = %v", err)
	}
	if task2, _, err := srv.RequestTask(bg, "w1"); err != nil || task2 != nil {
		t.Errorf("unit re-dispatched after Forget: task=%+v err=%v", task2, err)
	}
}

// TestStaleResultAfterResubmitRejected: unit numbering restarts when a
// forgotten ID is resubmitted, so a straggler result computed for the old
// incarnation can collide with a new unit's ID. The epoch tag must keep it
// out of the new problem's DataManager.
func TestStaleResultAfterResubmitRejected(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 10},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "re", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	oldTask, _, err := srv.RequestTask(bg, "a")
	if err != nil || oldTask == nil {
		t.Fatalf("no task from first incarnation: %v", err)
	}
	if err := srv.Forget("re"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(bg, &Problem{ID: "re", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	newTask, _, err := srv.RequestTask(bg, "b")
	if err != nil || newTask == nil {
		t.Fatalf("no task from second incarnation: %v", err)
	}
	if oldTask.Unit.ID != newTask.Unit.ID {
		t.Fatalf("test setup: unit IDs %d vs %d do not collide", oldTask.Unit.ID, newTask.Unit.ID)
	}
	if oldTask.Epoch == newTask.Epoch {
		t.Fatalf("incarnations share epoch %d", oldTask.Epoch)
	}
	// The stale straggler must be dropped, not folded into the new unit.
	if err := srv.SubmitResult(bg, &Result{
		ProblemID: "re", UnitID: oldTask.Unit.ID, Payload: MustMarshal(int64(1 << 40)),
		Elapsed: time.Millisecond, Donor: "a", Epoch: oldTask.Epoch,
	}); err != nil {
		t.Fatal(err)
	}
	if st, err := srv.Stats(bg, "re"); err != nil || st.Completed != 0 {
		t.Fatalf("stale result accepted: completed=%d err=%v", st.Completed, err)
	}
	// The current incarnation's own result still lands.
	var u sumUnit
	if err := Unmarshal(newTask.Unit.Payload, &u); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := u.From; i < u.To; i++ {
		sum += i * i
	}
	if err := srv.SubmitResult(bg, &Result{
		ProblemID: "re", UnitID: newTask.Unit.ID, Payload: MustMarshal(sum),
		Elapsed: time.Millisecond, Donor: "b", Epoch: newTask.Epoch,
	}); err != nil {
		t.Fatal(err)
	}
	if st, err := srv.Stats(bg, "re"); err != nil || st.Completed != 1 {
		t.Fatalf("live result rejected: completed=%d err=%v", st.Completed, err)
	}
}

func TestForgottenTombstonesBounded(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	for i := 0; i < maxForgottenTombstones+50; i++ {
		id := fmt.Sprintf("tomb-%05d", i)
		if err := srv.Submit(bg, &Problem{ID: id, DM: newSumDM(0)}); err != nil {
			t.Fatal(err)
		}
		if err := srv.Forget(id); err != nil {
			t.Fatal(err)
		}
	}
	srv.regMu.RLock()
	n, ordered := len(srv.forgotten), len(srv.forgottenOrder)
	srv.regMu.RUnlock()
	if n > maxForgottenTombstones || ordered > maxForgottenTombstones {
		t.Errorf("tombstones unbounded: set=%d order=%d cap=%d", n, ordered, maxForgottenTombstones)
	}
	// Recent tombstones still answer ErrForgotten; the oldest aged out to
	// the unknown-problem error.
	if _, err := srv.Status(bg, fmt.Sprintf("tomb-%05d", maxForgottenTombstones+49)); !errors.Is(err, ErrForgotten) {
		t.Errorf("fresh tombstone = %v, want ErrForgotten", err)
	}
	if _, err := srv.Status(bg, "tomb-00000"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("aged-out tombstone = %v, want ErrUnknownProblem", err)
	}
}

func TestDonorOptionsRedialDefaults(t *testing.T) {
	// An explicit cap below the default floor must win — "-retry 100ms"
	// means backoff ≤ 100ms, not a silent raise to 250ms.
	o := DonorOptions{RedialMax: 100 * time.Millisecond}
	o.applyDefaults()
	if o.RedialMin != 100*time.Millisecond || o.RedialMax != 100*time.Millisecond {
		t.Errorf("sub-default cap not honored: min=%s max=%s", o.RedialMin, o.RedialMax)
	}
	o = DonorOptions{}
	o.applyDefaults()
	if o.RedialMin != 250*time.Millisecond || o.RedialMax != 30*time.Second {
		t.Errorf("defaults: min=%s max=%s", o.RedialMin, o.RedialMax)
	}
}

func TestAutoForgetAfterWait(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond, AutoForget: true})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "auto", DM: newSumDM(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(bg, "auto"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Status(bg, "auto"); !errors.Is(err, ErrForgotten) {
		t.Errorf("Status after auto-forgetting Wait = %v, want ErrForgotten", err)
	}
}

// TestConcurrentSubmitWaitReportFailure is the -race regression for the
// sharded coordinator: problems are submitted while worker loops hammer
// RequestTask/SubmitResult/ReportFailure across all of them and a waiter
// blocks on each problem. Injected failures exercise requeueLocked and
// popRequeueLocked concurrently with Wait on the same problem.
func TestConcurrentSubmitWaitReportFailure(t *testing.T) {
	registerSum(t)
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 7},
		Lease:      time.Hour,
		ExpiryScan: time.Hour,
		WaitHint:   100 * time.Microsecond,
	})
	defer srv.Close()

	const (
		problems = 4
		n        = 2000
		workers  = 4
	)
	stopWorkers := make(chan struct{})
	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(name string) {
			defer workerWG.Done()
			for {
				select {
				case <-stopWorkers:
					return
				default:
				}
				task, wait, err := srv.RequestTask(bg, name)
				if err != nil {
					return // server closed under us (test tearing down)
				}
				if task == nil {
					time.Sleep(wait)
					continue
				}
				// One worker fails some units; requeue must migrate them
				// to the others without racing the waiters.
				if name == "cw0" && task.Unit.ID%5 == 0 {
					_ = srv.ReportFailure(bg, name, task.ProblemID, task.Unit.ID, "injected")
					continue
				}
				var u sumUnit
				if err := Unmarshal(task.Unit.Payload, &u); err != nil {
					t.Error(err)
					return
				}
				var sum int64
				for i := u.From; i < u.To; i++ {
					sum += i * i
				}
				payload, err := Marshal(sum)
				if err != nil {
					t.Error(err)
					return
				}
				_ = srv.SubmitResult(bg, &Result{
					ProblemID: task.ProblemID,
					UnitID:    task.Unit.ID,
					Payload:   payload,
					Elapsed:   time.Millisecond,
					Donor:     name,
					Epoch:     task.Epoch,
				})
			}
		}(fmt.Sprintf("cw%d", w))
	}

	var wg sync.WaitGroup
	errs := make([]error, problems)
	sums := make([]int64, problems)
	for p := 0; p < problems; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Stagger the submissions so dispatch is already running when
			// later problems register.
			time.Sleep(time.Duration(p) * 2 * time.Millisecond)
			id := fmt.Sprintf("conc-%d", p)
			if err := srv.Submit(bg, &Problem{ID: id, DM: newSumDM(n)}); err != nil {
				errs[p] = err
				return
			}
			out, err := srv.Wait(bg, id)
			if err != nil {
				errs[p] = err
				return
			}
			var got int64
			if err := Unmarshal(out, &got); err != nil {
				errs[p] = err
				return
			}
			sums[p] = got
		}(p)
	}
	wg.Wait()
	close(stopWorkers)
	workerWG.Wait()
	for p := 0; p < problems; p++ {
		if errs[p] != nil {
			t.Errorf("problem %d: %v", p, errs[p])
		} else if sums[p] != sumSquares(n) {
			t.Errorf("problem %d: sum = %d, want %d", p, sums[p], sumSquares(n))
		}
	}
}

func TestStatusReportsProgress(t *testing.T) {
	registerSum(t)
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 10}, WaitHint: time.Millisecond})
	defer srv.Close()
	dm := newSumDM(100)
	if err := srv.Submit(bg, &Problem{ID: "prog", DM: dm}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "w0")
	if err != nil || task == nil {
		t.Fatalf("no task: %v", err)
	}
	st, err := srv.Status(bg, "prog")
	if err != nil {
		t.Fatal(err)
	}
	if st.Inflight != 1 || st.Done || st.AppTotal != 100 {
		t.Errorf("status = %+v", st)
	}
	if srv.DonorCount() != 1 {
		t.Errorf("DonorCount = %d", srv.DonorCount())
	}
}

// stallDM has work it never hands out — the server must fail it loudly
// instead of letting Wait hang forever.
type stallDM struct{}

func (stallDM) NextUnit(int64) (*Unit, bool, error) { return nil, false, nil }
func (stallDM) Consume(int64, []byte) error         { return nil }
func (stallDM) Done() bool                          { return false }
func (stallDM) FinalResult() ([]byte, error)        { return nil, nil }

func TestStalledProblemFailsLoudly(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "stall", DM: stallDM{}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.RequestTask(bg, "w0"); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Wait(bg, "stall")
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Errorf("stalled problem error = %v", err)
	}
}

func TestDoneAtSubmitFinalizesImmediately(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond})
	defer srv.Close()
	dm := newSumDM(0) // completed >= n holds immediately
	if err := srv.Submit(bg, &Problem{ID: "empty", DM: dm}); err != nil {
		t.Fatal(err)
	}
	out, err := srv.Wait(bg, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != 0 {
		t.Errorf("empty problem sum = %d", got)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	srv := newTestServer(ServerOptions{WaitHint: time.Millisecond})
	if err := srv.Submit(bg, &Problem{ID: "never", DM: newSumDM(1000)}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Wait(bg, "never")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Wait after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait still blocked after Close")
	}
	if _, _, err := srv.RequestTask(bg, "w"); !errors.Is(err, ErrClosed) {
		t.Errorf("RequestTask after Close = %v", err)
	}
}
