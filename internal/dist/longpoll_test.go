package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

// waitTaskResult carries one WaitTask outcome out of a parked goroutine.
type waitTaskResult struct {
	task *Task
	wait time.Duration
	err  error
}

// parkWaitTask parks a WaitTask call in a goroutine and returns the
// channel its outcome arrives on.
func parkWaitTask(srv *Server, donor string, maxWait time.Duration) <-chan waitTaskResult {
	got := make(chan waitTaskResult, 1)
	go func() {
		task, wait, err := srv.WaitTask(bg, donor, maxWait)
		got <- waitTaskResult{task, wait, err}
	}()
	return got
}

// expectWake asserts that a parked WaitTask resolves within the deadline
// and returns its outcome.
func expectWake(t *testing.T, got <-chan waitTaskResult, within time.Duration) waitTaskResult {
	t.Helper()
	select {
	case r := <-got:
		return r
	case <-time.After(within):
		t.Fatalf("parked WaitTask still parked after %s", within)
		return waitTaskResult{}
	}
}

// TestWaitTaskWakesOnSubmit: a donor parked in WaitTask with no work
// anywhere is woken by a Submit and handed the fresh problem's unit —
// the push-dispatch path that replaces waiting out a poll interval.
func TestWaitTaskWakesOnSubmit(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond})
	defer srv.Close()

	got := parkWaitTask(srv, "parked", 10*time.Second)
	time.Sleep(30 * time.Millisecond) // let the call actually park
	if err := srv.Submit(bg, &Problem{ID: "wake-submit", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	r := expectWake(t, got, 2*time.Second)
	if r.err != nil || r.task == nil {
		t.Fatalf("WaitTask after Submit = task %v, err %v; want the submitted problem's unit", r.task, r.err)
	}
	if r.task.ProblemID != "wake-submit" {
		t.Errorf("woke with problem %q, want wake-submit", r.task.ProblemID)
	}
}

// TestWaitTaskWakesOnFailureRequeue: the only unit is leased to donor A;
// parked donor B is woken the moment A's failure report requeues it.
func TestWaitTaskWakesOnFailureRequeue(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "wake-requeue", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "a")
	if err != nil || task == nil {
		t.Fatalf("no task for donor a: %v", err)
	}

	got := parkWaitTask(srv, "b", 10*time.Second)
	time.Sleep(30 * time.Millisecond)
	if err := srv.ReportFailure(bg, "a", task.ProblemID, task.Unit.ID, "injected"); err != nil {
		t.Fatal(err)
	}
	r := expectWake(t, got, 2*time.Second)
	if r.err != nil || r.task == nil {
		t.Fatalf("WaitTask after requeue = task %v, err %v", r.task, r.err)
	}
	if r.task.Unit.ID != task.Unit.ID {
		t.Errorf("woke with unit %d, want requeued unit %d", r.task.Unit.ID, task.Unit.ID)
	}
}

// TestWaitTaskWakesOnLeaseExpiry: donor A leases the only unit and goes
// silent; the expiry sweep requeues it and must wake parked donor B.
func TestWaitTaskWakesOnLeaseExpiry(t *testing.T) {
	srv := newTestServer(ServerOptions{
		Policy:     sched.Fixed{Size: 1000},
		Lease:      50 * time.Millisecond,
		ExpiryScan: 20 * time.Millisecond,
		WaitHint:   time.Millisecond,
	})
	defer srv.Close()
	if err := srv.Submit(bg, &Problem{ID: "wake-expiry", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "a")
	if err != nil || task == nil {
		t.Fatalf("no task for donor a: %v", err)
	}

	got := parkWaitTask(srv, "b", 10*time.Second)
	r := expectWake(t, got, 5*time.Second)
	if r.err != nil || r.task == nil {
		t.Fatalf("WaitTask after lease expiry = task %v, err %v", r.task, r.err)
	}
	if r.task.Unit.ID != task.Unit.ID {
		t.Errorf("woke with unit %d, want expired unit %d", r.task.Unit.ID, task.Unit.ID)
	}
}

// TestWaitTaskWakesOnStageBarrierRelease: a stage-barrier DataManager has
// nothing dispatchable until the in-flight unit's result is folded. The
// parked donor must wake on that SubmitResult, not on a timer.
func TestWaitTaskWakesOnStageBarrierRelease(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond})
	defer srv.Close()
	// barrierDM releases one unit per stage and refuses the next until the
	// previous result was consumed.
	dm := &barrierDM{stages: 2}
	if err := srv.Submit(bg, &Problem{ID: "barrier", DM: dm}); err != nil {
		t.Fatal(err)
	}
	task, _, err := srv.RequestTask(bg, "a")
	if err != nil || task == nil {
		t.Fatalf("no stage-1 task: %v", err)
	}

	got := parkWaitTask(srv, "b", 10*time.Second)
	time.Sleep(30 * time.Millisecond)
	if err := srv.SubmitResult(bg, &Result{ProblemID: "barrier", UnitID: task.Unit.ID, Donor: "a", Elapsed: time.Millisecond, Epoch: task.Epoch}); err != nil {
		t.Fatal(err)
	}
	r := expectWake(t, got, 2*time.Second)
	if r.err != nil || r.task == nil {
		t.Fatalf("WaitTask after barrier release = task %v, err %v", r.task, r.err)
	}
}

// barrierDM hands out `stages` units, one at a time, each gated on the
// previous unit's result having been consumed.
type barrierDM struct {
	stages   int
	issued   int
	consumed int
}

func (d *barrierDM) NextUnit(int64) (*Unit, bool, error) {
	if d.issued >= d.stages || d.issued > d.consumed {
		return nil, false, nil // barrier: previous stage still in flight
	}
	d.issued++
	return &Unit{ID: int64(d.issued), Algorithm: "dist-test/sum", Cost: 1}, true, nil
}

func (d *barrierDM) Consume(int64, []byte) error { d.consumed++; return nil }
func (d *barrierDM) Done() bool                  { return d.consumed >= d.stages }
func (d *barrierDM) FinalResult() ([]byte, error) {
	return Marshal(int64(d.consumed))
}

// TestWaitTaskDeadlineReparks: an idle park must end at the deadline with
// (nil, 0, nil) — the "re-park immediately" shape — and a fresh park after
// it must still be wakeable.
func TestWaitTaskDeadlineReparks(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: 50 * time.Millisecond})
	defer srv.Close()

	t0 := time.Now()
	task, wait, err := srv.WaitTask(bg, "w", 40*time.Millisecond)
	elapsed := time.Since(t0)
	if err != nil || task != nil || wait != 0 {
		t.Fatalf("idle WaitTask = task %v, wait %v, err %v; want nil, 0, nil", task, wait, err)
	}
	if elapsed < 35*time.Millisecond {
		t.Errorf("park returned after %s, want ≈40ms (the deadline, not an early bail)", elapsed)
	}

	// The re-park is a fresh, fully functional park.
	got := parkWaitTask(srv, "w", 10*time.Second)
	time.Sleep(20 * time.Millisecond)
	if err := srv.Submit(bg, &Problem{ID: "repark", DM: newSumDM(50)}); err != nil {
		t.Fatal(err)
	}
	if r := expectWake(t, got, 2*time.Second); r.err != nil || r.task == nil {
		t.Fatalf("re-park wake = task %v, err %v", r.task, r.err)
	}
}

// TestWaitTaskCtxCancelAndClose: a cancelled context unparks with the
// context's error; Close unparks every parked donor with ErrClosed.
func TestWaitTaskCtxCancelAndClose(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond})

	ctx, cancel := context.WithCancel(bg)
	got := make(chan waitTaskResult, 1)
	go func() {
		task, wait, err := srv.WaitTask(ctx, "w", 10*time.Second)
		got <- waitTaskResult{task, wait, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if r := expectWake(t, got, 2*time.Second); !errors.Is(r.err, context.Canceled) {
		t.Errorf("cancelled park err = %v, want context.Canceled", r.err)
	}

	closed := parkWaitTask(srv, "w2", 10*time.Second)
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if r := expectWake(t, closed, 2*time.Second); !errors.Is(r.err, ErrClosed) {
		t.Errorf("park across Close err = %v, want ErrClosed", r.err)
	}
}

// TestWaitTaskDisabled: with ServerOptions.LongPoll negative the server
// neither parks nor advertises the capability, so WaitTask degrades to a
// RequestTask and a dialing client reports the capability absent.
func TestWaitTaskDisabled(t *testing.T) {
	opts := netOpts()
	opts.LongPoll = -1
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	t0 := time.Now()
	task, wait, werr := srv.WaitTask(bg, "w", time.Second)
	if werr != nil || task != nil {
		t.Fatalf("disabled WaitTask = task %v, err %v", task, werr)
	}
	if wait <= 0 {
		t.Errorf("disabled WaitTask hint = %v, want the positive poll hint", wait)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Errorf("disabled WaitTask parked for %s; want an immediate reply", elapsed)
	}

	cl, err := Dial(srv.RPCAddr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Supports(wire.CapWaitTask) {
		t.Error("client reports CapWaitTask against a long-poll-disabled server")
	}
}

// TestWaitTaskFallbackAgainstLegacyServer dials a stub speaking only the
// pre-WaitTask verbs (its Handshake advertises no capabilities): the
// client must not call the verb, and WaitTask must degrade to the polling
// shape — nil task with the server's positive wait hint.
func TestWaitTaskFallbackAgainstLegacyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rsrv := rpc.NewServer()
	if err := rsrv.RegisterName(rpcServiceName, &legacyStubService{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go rsrv.ServeConn(conn)
		}
	}()

	cl, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Supports(wire.CapWaitTask) {
		t.Fatal("client reports CapWaitTask against a legacy server")
	}
	task, wait, err := cl.WaitTask(bg, "w", 45*time.Second)
	if err != nil || task != nil {
		t.Fatalf("fallback WaitTask = task %v, err %v", task, err)
	}
	if wait != 40*time.Millisecond {
		t.Errorf("fallback hint = %v, want the stub's 40ms poll hint", wait)
	}
}

// legacyStubService is the control surface of a server predating WaitTask:
// Handshake without capabilities, and plain polling dispatch.
type legacyStubService struct{}

func (s *legacyStubService) Handshake(_ Empty, reply *HandshakeReply) error {
	reply.BulkAddr = "127.0.0.1:1" // never fetched in this test
	return nil
}

func (s *legacyStubService) RequestTask(_ TaskArgs, reply *TaskReply) error {
	reply.WaitHintNs = int64(40 * time.Millisecond)
	return nil
}

// TestLongPollDonorSurvivesServerBounce crashes the server while the donor
// is parked mid-WaitTask: the severed park must surface as ErrServerGone
// (not a clean exit, not a hang), the redial loop must recover, and the
// donor must then drain fresh work from the restarted server.
func TestLongPollDonorSurvivesServerBounce(t *testing.T) {
	registerSum(t)
	rpcAddr := freeLoopbackAddr(t)
	bulkAddr := freeLoopbackAddr(t)

	srv1, err := ListenAndServe(rpcAddr, bulkAddr, WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	// No work submitted: the donor goes straight into a WaitTask park.
	cl, err := Dial(rpcAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Supports(wire.CapWaitTask) {
		t.Fatal("server did not advertise CapWaitTask")
	}
	d := newTestDonor(cl, DonorOptions{
		Name:      "parked-bouncer",
		Logf:      t.Logf,
		Redial:    func() (Coordinator, error) { return Dial(rpcAddr, 2*time.Second) },
		RedialMin: 5 * time.Millisecond,
		RedialMax: 50 * time.Millisecond,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(bg) }()
	time.Sleep(100 * time.Millisecond) // donor is now parked in WaitTask

	crashNetworkServer(t, srv1)
	select {
	case err := <-runErr:
		t.Fatalf("donor exited on server loss mid-park (err=%v); want reconnect loop", err)
	case <-time.After(50 * time.Millisecond):
	}

	srv2, err := ListenAndServe(rpcAddr, bulkAddr, WithServerOptions(netOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	const n = 400
	if err := srv2.Submit(bg, &Problem{ID: "post-bounce", DM: newSumDM(n)}); err != nil {
		t.Fatal(err)
	}
	out, err := srv2.Wait(bg, "post-bounce")
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("post-bounce sum = %d, want %d", got, sumSquares(n))
	}
	if d.Units() == 0 {
		t.Error("donor completed no units after the bounce")
	}
	// An explicit Close must still end the loop cleanly — the parked
	// WaitTask is answered with the ErrClosed sentinel, no drain luck
	// required.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("donor Run after explicit Close = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("donor still running after an explicit server Close")
	}
}

// TestMixedFleetDrainsProblem runs one long-poll donor and one legacy
// poller (long-poll disabled donor-side) against the same server over
// loopback: both must contribute units and the problem must finish with
// the right answer — the rolling-upgrade interop the capability
// negotiation exists for.
func TestMixedFleetDrainsProblem(t *testing.T) {
	registerSum(t)
	opts := netOpts()
	opts.Policy = sched.Fixed{Size: 5} // 80 units: plenty for both donors
	srv, err := ListenAndServe("127.0.0.1:0", "127.0.0.1:0", WithServerOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const n = 400
	if err := srv.Submit(bg, &Problem{ID: "mixed", DM: newSumDM(n)}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	mk := func(name string, longPoll time.Duration) *Donor {
		cl, err := Dial(srv.RPCAddr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		d := newTestDonor(cl, DonorOptions{
			Name:         name,
			Throttle:     2 * time.Millisecond,
			LongPollWait: longPoll,
			Logf:         t.Logf,
		})
		wg.Add(1)
		go func() { defer wg.Done(); _ = d.Run(bg) }()
		return d
	}
	push := mk("push-donor", 0)  // 0 → default: long-poll enabled
	poll := mk("poll-donor", -1) // negative: legacy jittered polling

	out, err := srv.Wait(bg, "mixed")
	push.Stop()
	poll.Stop()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeSum(t, out); got != sumSquares(n) {
		t.Errorf("mixed-fleet sum = %d, want %d", got, sumSquares(n))
	}
	if push.Units() == 0 {
		t.Error("long-poll donor completed no units")
	}
	if poll.Units() == 0 {
		t.Error("legacy poll donor completed no units")
	}
	t.Logf("mixed fleet: push=%d units, poll=%d units", push.Units(), poll.Units())
}

// TestFunctionalOptionsLongPoll covers the new knobs' defaults and
// overrides alongside the existing option plumbing.
func TestFunctionalOptionsLongPoll(t *testing.T) {
	var so ServerOptions
	WithLongPoll(3 * time.Second)(&so)
	if so.LongPoll != 3*time.Second {
		t.Errorf("WithLongPoll = %v", so.LongPoll)
	}
	so.applyDefaults()
	if so.LongPoll != 3*time.Second {
		t.Errorf("applyDefaults clobbered LongPoll: %v", so.LongPoll)
	}
	var def ServerOptions
	def.applyDefaults()
	if def.LongPoll != 45*time.Second {
		t.Errorf("default LongPoll = %v, want 45s", def.LongPoll)
	}

	var do DonorOptions
	WithLongPollWait(-1)(&do)
	do.applyDefaults()
	if do.LongPollWait != -1 {
		t.Errorf("negative LongPollWait not preserved: %v", do.LongPollWait)
	}
	var ddef DonorOptions
	ddef.applyDefaults()
	if ddef.LongPollWait != 45*time.Second {
		t.Errorf("default LongPollWait = %v, want 45s", ddef.LongPollWait)
	}
}

// spinStub is a buggy (or hostile) coordinator: WaitTask claims the
// long-poll shape but answers instantly with an empty reply and a zero
// hint, forever. The donor loop must floor these instead of hammering
// the control channel in a hot loop.
type spinStub struct{ calls atomic.Int64 }

func (s *spinStub) RequestTask(context.Context, string) (*Task, time.Duration, error) {
	s.calls.Add(1)
	return nil, 0, nil
}

func (s *spinStub) WaitTask(ctx context.Context, donor string, _ time.Duration) (*Task, time.Duration, error) {
	return s.RequestTask(ctx, donor)
}

func (s *spinStub) SharedData(context.Context, string) ([]byte, error)                 { return nil, nil }
func (s *spinStub) SubmitResult(context.Context, *Result) error                        { return nil }
func (s *spinStub) ReportFailure(context.Context, string, string, int64, string) error { return nil }

func TestDonorFloorsInstantEmptyParks(t *testing.T) {
	stub := &spinStub{}
	d := newTestDonor(stub, DonorOptions{Name: "spin"})
	done := make(chan error, 1)
	go func() { done <- d.Run(bg) }()
	time.Sleep(100 * time.Millisecond)
	d.Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// With the 1ms floor, ~100 calls fit into the window; without it the
	// loop would make hundreds of thousands.
	if n := stub.calls.Load(); n > 400 {
		t.Errorf("instant empty 'parks' produced %d control calls in 100ms; the sleep floor should bound this near 100", n)
	}
}

// TestWaitTaskManyParkedDonorsOneUnit: 16 donors park; a single-unit
// problem is submitted; exactly one donor gets the unit and the rest
// re-park without error — the broadcast wake must not duplicate dispatch.
func TestWaitTaskManyParkedDonorsOneUnit(t *testing.T) {
	srv := newTestServer(ServerOptions{Policy: sched.Fixed{Size: 1000}, Lease: time.Hour, ExpiryScan: time.Hour, WaitHint: time.Millisecond})
	defer srv.Close()

	const parked = 16
	got := make(chan waitTaskResult, parked)
	for i := 0; i < parked; i++ {
		name := fmt.Sprintf("herd-%d", i)
		go func() {
			task, wait, err := srv.WaitTask(bg, name, 400*time.Millisecond)
			got <- waitTaskResult{task, wait, err}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Submit(bg, &Problem{ID: "herd", DM: newSumDM(100)}); err != nil {
		t.Fatal(err)
	}

	tasks := 0
	for i := 0; i < parked; i++ {
		r := <-got
		if r.err != nil {
			t.Fatalf("herd WaitTask err = %v", r.err)
		}
		if r.task != nil {
			tasks++
		}
	}
	if tasks != 1 {
		t.Errorf("single unit dispatched to %d donors, want exactly 1", tasks)
	}
}
