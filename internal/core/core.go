package core // package documentation lives in doc.go

import (
	"context"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
)

// Core programming-model types (see package dist for full documentation).
type (
	// Problem bundles a DataManager, optional shared data and an ID.
	Problem = dist.Problem
	// DataManager is the byte-level server-side extension point; prefer
	// TypedDM.
	DataManager = dist.DataManager
	// TypedDM is the typed server-side extension point.
	TypedDM[U, R any] = dist.TypedDM[U, R]
	// UnitOf is a typed work unit as handed out by a TypedDM.
	UnitOf[U any] = dist.UnitOf[U]
	// Algorithm is the byte-level donor-side extension point (context-
	// aware); prefer TypedAlgorithm.
	Algorithm = dist.Algorithm
	// TypedAlgorithm is the typed donor-side extension point.
	TypedAlgorithm[S, U, R any] = dist.TypedAlgorithm[S, U, R]
	// LegacyAlgorithm is the v1 donor-side shape (blocking Process, no
	// context), still runnable through RegisterLegacyAlgorithm.
	LegacyAlgorithm = dist.LegacyAlgorithm
	// NoShared marks a problem without shared data (see NewTypedProblem).
	NoShared = dist.NoShared
	// Unit is one dispatched piece of work.
	Unit = dist.Unit
	// Result is a completed unit's output.
	Result = dist.Result
	// Policy sizes work units per donor.
	Policy = sched.Policy
	// DonorStats is the server's measured view of one donor.
	DonorStats = sched.DonorStats
	// ServerOptions tunes scheduling and fault tolerance.
	ServerOptions = dist.ServerOptions
	// ServerOption is a functional server option (WithPolicy, ...).
	ServerOption = dist.ServerOption
	// DonorOptions tunes a donor worker.
	DonorOptions = dist.DonorOptions
	// DonorOption is a functional donor option (WithName, ...).
	DonorOption = dist.DonorOption
	// Server is the coordinating node.
	Server = dist.Server
	// NetworkServer is a Server with RPC + bulk listeners attached.
	NetworkServer = dist.NetworkServer
	// Donor is one worker's compute loop.
	Donor = dist.Donor
	// Coordinator is the donor's view of a server.
	Coordinator = dist.Coordinator
	// TaskWaiter is a Coordinator with long-poll dispatch (WaitTask).
	TaskWaiter = dist.TaskWaiter
	// ContentFetcher is a Coordinator that fetches shared blobs by content
	// digest (content-addressed bulk channel).
	ContentFetcher = dist.ContentFetcher
	// BlobCache is the donor-side digest-keyed shared-blob cache; share one
	// across in-process donors with WithBlobCache.
	BlobCache = dist.BlobCache
	// Event is one entry of a Server.Watch stream.
	Event = dist.Event
	// EventKind classifies a Watch event.
	EventKind = dist.EventKind
	// CancelNotice is the server's epoch-tagged "abort that unit" message.
	CancelNotice = dist.CancelNotice
	// ProblemStats are a problem's lifetime unit counters plus recovery
	// provenance (see Server.Stats).
	ProblemStats = dist.ProblemStats
	// DurableDM marks a DataManager whose state survives coordinator
	// restarts (see dist.DurableDM and WithDataDir).
	DurableDM = dist.DurableDM
	// Recovery summarises what a durable server restored at startup.
	Recovery = dist.Recovery
	// RecoveredProblem describes one problem restored from the journal.
	RecoveredProblem = dist.RecoveredProblem
)

// Watch event kinds (see dist.EventKind).
const (
	EventSubmitted      = dist.EventSubmitted
	EventUnitDispatched = dist.EventUnitDispatched
	EventUnitDone       = dist.EventUnitDone
	EventProgress       = dist.EventProgress
	EventFailed         = dist.EventFailed
	EventFinished       = dist.EventFinished
	EventForgotten      = dist.EventForgotten
	EventRecovered      = dist.EventRecovered
	EventUnitSpeculated = dist.EventUnitSpeculated

	EventUnitReplicaDispatched = dist.EventUnitReplicaDispatched
	EventQuorumAgreed          = dist.EventQuorumAgreed
	EventQuorumConflict        = dist.EventQuorumConflict
	EventDonorQuarantined      = dist.EventDonorQuarantined
)

// Lifecycle and transport sentinels (see package dist). Status, Stats and
// Wait return ErrForgotten for a problem retired with Forget — distinct
// from ErrUnknownProblem for an ID never submitted. RPC-backed donors see
// ErrServerGone when the server's connection drops without an explicit
// Close, and reconnect when the WithRedial option is set.
var (
	ErrClosed         = dist.ErrClosed
	ErrUnknownProblem = dist.ErrUnknownProblem
	ErrForgotten      = dist.ErrForgotten
	ErrServerGone     = dist.ErrServerGone
)

// Functional options for servers and donors, re-exported so callers need
// only this package.
var (
	WithPolicy          = dist.WithPolicy
	WithLeaseTTL        = dist.WithLeaseTTL
	WithExpiryScan      = dist.WithExpiryScan
	WithWaitHint        = dist.WithWaitHint
	WithBulkThreshold   = dist.WithBulkThreshold
	WithAutoForget      = dist.WithAutoForget
	WithWatchBuffer     = dist.WithWatchBuffer
	WithLongPoll        = dist.WithLongPoll
	WithContentBulk     = dist.WithContentBulk
	WithDataDir         = dist.WithDataDir
	WithJournalFsync    = dist.WithJournalFsync
	WithSpeculation     = dist.WithSpeculation
	WithVerify          = dist.WithVerify
	WithProbation       = dist.WithProbation
	WithQuarantineBelow = dist.WithQuarantineBelow
	WithReadmitAfter    = dist.WithReadmitAfter
	WithServerOptions   = dist.WithServerOptions

	WithName             = dist.WithName
	WithThrottle         = dist.WithThrottle
	WithLogf             = dist.WithLogf
	WithRedial           = dist.WithRedial
	WithRedialBackoff    = dist.WithRedialBackoff
	WithCancelPoll       = dist.WithCancelPoll
	WithLongPollWait     = dist.WithLongPollWait
	WithBlobCacheBytes   = dist.WithBlobCacheBytes
	WithBlobCache        = dist.WithBlobCache
	WithAlgorithmWrapper = dist.WithAlgorithmWrapper
	WithDonorOptions     = dist.WithDonorOptions
)

// NewBlobCache creates a byte-budgeted shared-blob cache to share across
// in-process donors (see dist.NewBlobCache).
func NewBlobCache(budget int64) *BlobCache { return dist.NewBlobCache(budget) }

// RegisterAlgorithm adds a named context-aware Algorithm factory to the
// donor-side registry (the Go substitute for Java's runtime class
// shipping). Prefer RegisterTypedAlgorithm.
func RegisterAlgorithm(name string, f func() Algorithm) {
	dist.RegisterAlgorithm(name, func() dist.Algorithm { return f() })
}

// RegisterTypedAlgorithm registers a typed algorithm factory; the adapter
// owns the gob codec for shared data, unit payloads and results.
func RegisterTypedAlgorithm[S, U, R any](name string, f func() TypedAlgorithm[S, U, R]) {
	dist.RegisterTypedAlgorithm(name, f)
}

// RegisterLegacyAlgorithm registers a v1 (blocking, context-free)
// Algorithm through the compatibility shim: cancellation is then observed
// at unit boundaries only.
func RegisterLegacyAlgorithm(name string, f func() LegacyAlgorithm) {
	dist.RegisterLegacyAlgorithm(name, f)
}

// NewTypedProblem assembles a Problem from a typed DataManager and typed
// shared data (pass NoShared{} for none):
//
//	p, err := core.NewTypedProblem[unit, result](id, dm, shared{...})
func NewTypedProblem[U, R, S any](id string, dm TypedDM[U, R], shared S) (*Problem, error) {
	return dist.NewTypedProblem[U, R](id, dm, shared)
}

// AdaptDM wraps a typed DataManager as a byte-level one.
func AdaptDM[U, R any](dm TypedDM[U, R]) DataManager { return dist.AdaptDM(dm) }

// Encode gob-encodes a typed value (final results, custom blobs).
func Encode[T any](v T) ([]byte, error) { return dist.Encode(v) }

// Decode gob-decodes data produced by Encode into a T — typically a
// problem's final result.
func Decode[T any](data []byte) (T, error) { return dist.Decode[T](data) }

// Marshal gob-encodes a value for the byte-level v1 interfaces. Prefer the
// typed adapters and Encode.
//
//nolint:distlint/gobcheck public facade re-exports the boundary's own codec; no new gob surface
func Marshal(v any) ([]byte, error) { return dist.Marshal(v) }

// Unmarshal gob-decodes data produced by Marshal. Prefer Decode.
//
//nolint:distlint/gobcheck public facade re-exports the boundary's own codec; no new gob surface
func Unmarshal(data []byte, v any) error { return dist.Unmarshal(data, v) }

// RunLocal executes one problem to completion with n in-process workers.
// Cancelling ctx abandons the run and aborts the workers' in-flight units.
func RunLocal(ctx context.Context, p *Problem, n int, policy Policy) ([]byte, error) {
	return dist.RunLocal(ctx, p, n, policy)
}

// ListenAndServe starts a network-facing server (rpcAddr for control,
// bulkAddr for data; ":0" picks free ports).
func ListenAndServe(rpcAddr, bulkAddr string, opts ...ServerOption) (*NetworkServer, error) {
	return dist.ListenAndServe(rpcAddr, bulkAddr, opts...)
}

// NewServer creates an in-process coordinator.
func NewServer(opts ...ServerOption) *Server { return dist.NewServer(opts...) }

// OpenServer creates an in-process coordinator, surfacing journal-recovery
// errors instead of panicking — required when WithDataDir is set.
func OpenServer(opts ...ServerOption) (*Server, error) { return dist.OpenServer(opts...) }

// RegisterDurableDM adds a named DataManager restore factory to the
// server-side registry so journaled problems can be rebuilt after a crash
// (see dist.RegisterDurableDM).
func RegisterDurableDM(kind string, f func(state []byte) (DataManager, error)) {
	dist.RegisterDurableDM(kind, f)
}

// Dial connects a donor-side coordinator to a server's control channel.
func Dial(rpcAddr string, timeout time.Duration) (*dist.RPCClient, error) {
	return dist.Dial(rpcAddr, timeout)
}

// NewDonor creates a donor bound to a coordinator (a *Server for in-process
// use or an *RPCClient from Dial).
func NewDonor(coord Coordinator, opts ...DonorOption) *Donor {
	return dist.NewDonor(coord, opts...)
}

// Adaptive returns the paper's scheduling policy: unit sized so the donor
// reports back roughly every target duration.
func Adaptive(target time.Duration) Policy {
	return sched.Adaptive{Target: target, Bootstrap: 1000, Min: 1}
}

// Fixed returns the non-adaptive baseline policy with constant unit size.
func Fixed(size int64) Policy { return sched.Fixed{Size: size} }

// PolicyByName resolves a policy from a config string such as
// "adaptive:5s", "fixed:1000", "gss:2" or "factoring".
func PolicyByName(spec string) (Policy, error) { return sched.ByName(spec) }
