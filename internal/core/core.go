// Package core is the library's front door: it re-exports the handful of
// types and functions a user needs to run a computation on the paper's
// distributed system, without having to know how the subsystem packages
// (dist, sched, wire) divide the work.
//
// The programming model is the paper's: a Problem is a DataManager (server
// side — partitions work, folds results) plus an Algorithm (donor side —
// computes one unit), plus optional shared data. Three deployment shapes
// are offered:
//
//   - RunLocal: in-process workers; zero configuration (tests, small jobs).
//   - ListenAndServe + Dial/NewDonor: the paper's real shape — one server,
//     many donor processes on other machines, control over net/rpc ("RMI")
//     and bulk data over raw TCP sockets.
//   - package simnet: a discrete-event simulation of hundreds of donors,
//     used to regenerate the paper's figures.
package core

import (
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
)

// Core programming-model types (see package dist for full documentation).
type (
	// Problem bundles a DataManager, optional shared data and an ID.
	Problem = dist.Problem
	// DataManager is the server-side extension point.
	DataManager = dist.DataManager
	// Algorithm is the donor-side extension point.
	Algorithm = dist.Algorithm
	// Unit is one dispatched piece of work.
	Unit = dist.Unit
	// Result is a completed unit's output.
	Result = dist.Result
	// Policy sizes work units per donor.
	Policy = sched.Policy
	// DonorStats is the server's measured view of one donor.
	DonorStats = sched.DonorStats
	// ServerOptions tunes scheduling and fault tolerance.
	ServerOptions = dist.ServerOptions
	// DonorOptions tunes a donor worker.
	DonorOptions = dist.DonorOptions
	// Server is the coordinating node.
	Server = dist.Server
	// NetworkServer is a Server with RPC + bulk listeners attached.
	NetworkServer = dist.NetworkServer
	// Donor is one worker's compute loop.
	Donor = dist.Donor
)

// Lifecycle and transport sentinels (see package dist). Status, Stats and
// Wait return ErrForgotten for a problem retired with Forget — distinct
// from ErrUnknownProblem for an ID never submitted. RPC-backed donors see
// ErrServerGone when the server's connection drops without an explicit
// Close, and reconnect when DonorOptions.Redial is set.
var (
	ErrClosed         = dist.ErrClosed
	ErrUnknownProblem = dist.ErrUnknownProblem
	ErrForgotten      = dist.ErrForgotten
	ErrServerGone     = dist.ErrServerGone
)

// RegisterAlgorithm adds a named Algorithm factory to the donor-side
// registry (the Go substitute for Java's runtime class shipping).
func RegisterAlgorithm(name string, f func() Algorithm) {
	dist.RegisterAlgorithm(name, func() dist.Algorithm { return f() })
}

// Marshal gob-encodes a unit payload, shared blob or result.
func Marshal(v any) ([]byte, error) { return dist.Marshal(v) }

// Unmarshal gob-decodes data produced by Marshal.
func Unmarshal(data []byte, v any) error { return dist.Unmarshal(data, v) }

// RunLocal executes one problem to completion with n in-process workers.
func RunLocal(p *Problem, n int, policy Policy) ([]byte, error) {
	return dist.RunLocal(p, n, policy)
}

// ListenAndServe starts a network-facing server (rpcAddr for control,
// bulkAddr for data; ":0" picks free ports).
func ListenAndServe(rpcAddr, bulkAddr string, opts ServerOptions) (*NetworkServer, error) {
	return dist.ListenAndServe(rpcAddr, bulkAddr, opts)
}

// Dial connects a donor-side coordinator to a server's control channel.
func Dial(rpcAddr string, timeout time.Duration) (*dist.RPCClient, error) {
	return dist.Dial(rpcAddr, timeout)
}

// NewDonor creates a donor bound to a coordinator (a *Server for in-process
// use or an *RPCClient from Dial).
func NewDonor(coord dist.Coordinator, opts DonorOptions) *Donor {
	return dist.NewDonor(coord, opts)
}

// Adaptive returns the paper's scheduling policy: unit sized so the donor
// reports back roughly every target duration.
func Adaptive(target time.Duration) Policy {
	return sched.Adaptive{Target: target, Bootstrap: 1000, Min: 1}
}

// Fixed returns the non-adaptive baseline policy with constant unit size.
func Fixed(size int64) Policy { return sched.Fixed{Size: size} }

// PolicyByName resolves a policy from a config string such as
// "adaptive:5s", "fixed:1000", "gss:2" or "factoring".
func PolicyByName(spec string) (Policy, error) { return sched.ByName(spec) }
