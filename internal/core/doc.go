// Package core is the library's front door: it re-exports the handful of
// types and functions a user needs to run a computation on the paper's
// distributed system, without having to know how the subsystem packages
// (dist, sched, wire) divide the work. docs/ARCHITECTURE.md at the
// repository root maps the layers.
//
// # Programming model
//
// The model is the paper's, in its v2 typed/context form: a Problem is a
// TypedDM (server side — partitions typed work units, folds typed results)
// plus a TypedAlgorithm (donor side — computes one typed unit under a
// cancellable context), plus optional typed shared data. The adapters own
// the gob codec at the boundary, so application code never marshals
// payloads by hand:
//
//	type dm struct{ ... }            // implements core.TypedDM[unit, result]
//	type alg struct{ ... }           // implements core.TypedAlgorithm[shared, unit, result]
//
//	core.RegisterTypedAlgorithm("app/v1", func() core.TypedAlgorithm[shared, unit, result] {
//		return &alg{}
//	})
//	p, _ := core.NewTypedProblem[unit, result]("job", &dm{...}, shared{...})
//	out, _ := core.RunLocal(ctx, p, 8, core.Adaptive(time.Second))
//	res, _ := core.Decode[finalResult](out)
//
// Lifecycle calls are context-first: Submit, Wait, Status and donor Run
// take a context, a server-side Forget (or a cancelled RunLocal context)
// propagates epoch-tagged cancel notices that abort in-flight ProcessCtx
// calls on donors, and Server.Watch(ctx, id) streams lifecycle events
// instead of Status polling. v1 Algorithms (blocking Process, no context)
// keep working through RegisterLegacyAlgorithm.
//
// # Deployment shapes
//
// Three are offered:
//
//   - RunLocal: in-process workers; zero configuration (tests, small jobs).
//   - ListenAndServe + Dial/NewDonor: the paper's real shape — one server,
//     many donor processes on other machines, control over net/rpc ("RMI")
//     and bulk data over raw TCP sockets. Donors prefer the WaitTask
//     long-poll dispatch channel (negotiated at Dial; see dist.TaskWaiter)
//     and fall back to jittered RequestTask polling against old servers.
//   - package simnet: a discrete-event simulation of hundreds of donors,
//     used to regenerate the paper's figures.
//
// # Options and sentinels
//
// Servers and donors take functional options (WithPolicy, WithLeaseTTL,
// WithAutoForget, WithLongPoll, ... for servers; WithName, WithThrottle,
// WithRedial, WithCancelPoll, WithLongPollWait, ... for donors), all
// re-exported here. The error sentinels callers branch on are re-exported
// too: ErrClosed (explicit server shutdown — donors finish cleanly),
// ErrServerGone (connection lost without a goodbye — donors with
// WithRedial reconnect), ErrForgotten (problem retired with Forget) and
// ErrUnknownProblem (ID never submitted). See package dist's documentation
// for the full semantics.
package core
