package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// The test problem doubles as facade documentation: count the vowels in a
// shared text, partitioned into index ranges.

type vowelDM struct {
	textLen   int
	chunk     int
	next      int
	seq       int64
	inflight  map[int64]int
	completed int
	total     int64
}

func (d *vowelDM) NextUnit(budget int64) (*core.Unit, bool, error) {
	if d.next >= d.textLen {
		return nil, false, nil
	}
	n := d.chunk
	if d.next+n > d.textLen {
		n = d.textLen - d.next
	}
	d.seq++
	payload, err := core.Marshal([2]int{d.next, d.next + n})
	if err != nil {
		return nil, false, err
	}
	d.next += n
	d.inflight[d.seq] = n
	return &core.Unit{ID: d.seq, Algorithm: "core-test/vowels", Payload: payload, Cost: int64(n)}, true, nil
}

func (d *vowelDM) Consume(id int64, payload []byte) error {
	n, ok := d.inflight[id]
	if !ok {
		return fmt.Errorf("unknown unit %d", id)
	}
	delete(d.inflight, id)
	var part int64
	if err := core.Unmarshal(payload, &part); err != nil {
		return err
	}
	d.total += part
	d.completed += n
	return nil
}

func (d *vowelDM) Done() bool                   { return d.completed >= d.textLen }
func (d *vowelDM) FinalResult() ([]byte, error) { return core.Marshal(d.total) }

type vowelAlg struct{ text []byte }

func (a *vowelAlg) Init(shared []byte) error {
	a.text = shared
	return nil
}

func (a *vowelAlg) Process(payload []byte) ([]byte, error) {
	var span [2]int
	if err := core.Unmarshal(payload, &span); err != nil {
		return nil, err
	}
	var count int64
	for _, b := range a.text[span[0]:span[1]] {
		switch b {
		case 'a', 'e', 'i', 'o', 'u':
			count++
		}
	}
	return core.Marshal(count)
}

var registerOnce sync.Once

func register() {
	registerOnce.Do(func() {
		core.RegisterAlgorithm("core-test/vowels", func() core.Algorithm { return &vowelAlg{} })
	})
}

const testText = "the quick brown fox jumps over the lazy dog again and again"

func countVowels(s string) int64 {
	var n int64
	for _, b := range []byte(s) {
		switch b {
		case 'a', 'e', 'i', 'o', 'u':
			n++
		}
	}
	return n
}

func newVowelProblem(id string, chunk int) *core.Problem {
	return &core.Problem{
		ID:         id,
		DM:         &vowelDM{textLen: len(testText), chunk: chunk, inflight: make(map[int64]int)},
		SharedData: []byte(testText),
	}
}

func TestRunLocalThroughFacade(t *testing.T) {
	register()
	out, err := core.RunLocal(newVowelProblem("vowels-local", 7), 3, core.Fixed(7))
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	if err := core.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if want := countVowels(testText); got != want {
		t.Fatalf("vowels = %d, want %d", got, want)
	}
}

func TestNetworkDeploymentThroughFacade(t *testing.T) {
	register()
	srv, err := core.ListenAndServe("127.0.0.1:0", "127.0.0.1:0", core.ServerOptions{
		Lease:    time.Hour,
		WaitHint: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(newVowelProblem("vowels-net", 5)); err != nil {
		t.Fatal(err)
	}
	cl, err := core.Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d := core.NewDonor(cl, core.DonorOptions{Name: "facade-donor"})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run() }()
	out, err := srv.Wait("vowels-net")
	if err != nil {
		t.Fatal(err)
	}
	d.Stop()
	wg.Wait()
	var got int64
	_ = core.Unmarshal(out, &got)
	if want := countVowels(testText); got != want {
		t.Fatalf("vowels = %d, want %d", got, want)
	}
	if d.Units() == 0 {
		t.Error("donor reports zero completed units")
	}
}

func TestPolicyConstructors(t *testing.T) {
	if core.Fixed(100).Budget(core.DonorStats{}, 0, 1) != 100 {
		t.Error("Fixed budget wrong")
	}
	a := core.Adaptive(2 * time.Second)
	if b := a.Budget(core.DonorStats{}, 0, 1); b <= 0 {
		t.Errorf("Adaptive bootstrap budget %d", b)
	}
	for _, spec := range []string{"fixed:10", "adaptive:1s", "gss", "factoring", "tss"} {
		if _, err := core.PolicyByName(spec); err != nil {
			t.Errorf("PolicyByName(%q): %v", spec, err)
		}
	}
	if _, err := core.PolicyByName("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}
