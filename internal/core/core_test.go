package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// The test problem doubles as facade documentation: count the vowels in a
// shared text, partitioned into index ranges. The server side is a
// core.TypedDM, the donor side a core.TypedAlgorithm — no []byte codecs in
// sight.

// vowelShared is the typed shared blob.
type vowelShared struct {
	Text string
}

// vowelSpan is one unit's typed payload: a [From, To) index range.
type vowelSpan struct {
	From, To int
}

// vowelCount is one unit's typed result.
type vowelCount struct {
	N int64
}

type vowelDM struct {
	textLen   int
	chunk     int
	next      int
	seq       int64
	inflight  map[int64]int
	completed int
	total     int64
}

func (d *vowelDM) NextUnit(budget int64) (*core.UnitOf[vowelSpan], bool, error) {
	if d.next >= d.textLen {
		return nil, false, nil
	}
	n := d.chunk
	if d.next+n > d.textLen {
		n = d.textLen - d.next
	}
	d.seq++
	u := &core.UnitOf[vowelSpan]{
		ID:        d.seq,
		Algorithm: "core-test/vowels",
		Payload:   vowelSpan{From: d.next, To: d.next + n},
		Cost:      int64(n),
	}
	d.next += n
	d.inflight[d.seq] = n
	return u, true, nil
}

func (d *vowelDM) Consume(id int64, res vowelCount) error {
	n, ok := d.inflight[id]
	if !ok {
		return fmt.Errorf("unknown unit %d", id)
	}
	delete(d.inflight, id)
	d.total += res.N
	d.completed += n
	return nil
}

func (d *vowelDM) Done() bool                { return d.completed >= d.textLen }
func (d *vowelDM) FinalResult() (any, error) { return d.total, nil }

type vowelAlg struct{ text []byte }

func (a *vowelAlg) Init(shared vowelShared) error {
	a.text = []byte(shared.Text)
	return nil
}

func (a *vowelAlg) ProcessCtx(ctx context.Context, span vowelSpan) (vowelCount, error) {
	if err := ctx.Err(); err != nil {
		return vowelCount{}, err
	}
	var count int64
	for _, b := range a.text[span.From:span.To] {
		switch b {
		case 'a', 'e', 'i', 'o', 'u':
			count++
		}
	}
	return vowelCount{N: count}, nil
}

var registerOnce sync.Once

func register() {
	registerOnce.Do(func() {
		core.RegisterTypedAlgorithm("core-test/vowels", func() core.TypedAlgorithm[vowelShared, vowelSpan, vowelCount] {
			return &vowelAlg{}
		})
		core.RegisterLegacyAlgorithm("core-test/vowels-legacy", func() core.LegacyAlgorithm {
			return &legacyVowelAlg{}
		})
	})
}

const testText = "the quick brown fox jumps over the lazy dog again and again"

func countVowels(s string) int64 {
	var n int64
	for _, b := range []byte(s) {
		switch b {
		case 'a', 'e', 'i', 'o', 'u':
			n++
		}
	}
	return n
}

func newVowelProblem(t *testing.T, id string, chunk int) *core.Problem {
	t.Helper()
	p, err := core.NewTypedProblem[vowelSpan, vowelCount](id,
		&vowelDM{textLen: len(testText), chunk: chunk, inflight: make(map[int64]int)},
		vowelShared{Text: testText})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunLocalThroughFacade(t *testing.T) {
	register()
	out, err := core.RunLocal(context.Background(), newVowelProblem(t, "vowels-local", 7), 3, core.Fixed(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decode[int64](out)
	if err != nil {
		t.Fatal(err)
	}
	if want := countVowels(testText); got != want {
		t.Fatalf("vowels = %d, want %d", got, want)
	}
}

func TestNetworkDeploymentThroughFacade(t *testing.T) {
	register()
	ctx := context.Background()
	srv, err := core.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		core.WithLeaseTTL(time.Hour),
		core.WithWaitHint(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(ctx, newVowelProblem(t, "vowels-net", 5)); err != nil {
		t.Fatal(err)
	}
	events, err := srv.Watch(ctx, "vowels-net")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.Dial(srv.RPCAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	d := core.NewDonor(cl, core.WithName("facade-donor"))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = d.Run(ctx) }()
	out, err := srv.Wait(ctx, "vowels-net")
	if err != nil {
		t.Fatal(err)
	}
	d.Stop()
	wg.Wait()
	got, err := core.Decode[int64](out)
	if err != nil {
		t.Fatal(err)
	}
	if want := countVowels(testText); got != want {
		t.Fatalf("vowels = %d, want %d", got, want)
	}
	if d.Units() == 0 {
		t.Error("donor reports zero completed units")
	}
	// The Watch stream re-exported through the facade ends with a
	// finished event.
	var last core.Event
	for ev := range events {
		last = ev
	}
	if last.Kind != core.EventFinished {
		t.Errorf("last event = %v, want finished", last.Kind)
	}
}

// legacyVowelAlg is the v1 shape, run through the compatibility shim.
type legacyVowelAlg struct{ text []byte }

func (a *legacyVowelAlg) Init(shared []byte) error {
	sd, err := core.Decode[vowelShared](shared)
	if err != nil {
		return err
	}
	a.text = []byte(sd.Text)
	return nil
}

func (a *legacyVowelAlg) Process(payload []byte) ([]byte, error) {
	span, err := core.Decode[vowelSpan](payload)
	if err != nil {
		return nil, err
	}
	var count int64
	for _, b := range a.text[span.From:span.To] {
		switch b {
		case 'a', 'e', 'i', 'o', 'u':
			count++
		}
	}
	return core.Encode(vowelCount{N: count})
}

// TestLegacyAlgorithmShimThroughFacade runs the same problem with a v1
// (blocking, context-free) algorithm registered through the shim; it must
// interoperate with the typed server side unchanged.
func TestLegacyAlgorithmShimThroughFacade(t *testing.T) {
	register()
	dm := &vowelDM{textLen: len(testText), chunk: 9, inflight: make(map[int64]int)}
	p, err := core.NewTypedProblem[vowelSpan, vowelCount]("vowels-legacy", dm, vowelShared{Text: testText})
	if err != nil {
		t.Fatal(err)
	}
	// Point the units at the legacy algorithm name.
	relabel := relabelDM{inner: p.DM, algorithm: "core-test/vowels-legacy"}
	p.DM = &relabel
	out, err := core.RunLocal(context.Background(), p, 2, core.Fixed(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decode[int64](out)
	if err != nil {
		t.Fatal(err)
	}
	if want := countVowels(testText); got != want {
		t.Fatalf("legacy shim vowels = %d, want %d", got, want)
	}
}

// relabelDM rewrites the algorithm name on units of an inner DataManager.
type relabelDM struct {
	inner     core.DataManager
	algorithm string
}

func (r *relabelDM) NextUnit(budget int64) (*core.Unit, bool, error) {
	u, ok, err := r.inner.NextUnit(budget)
	if u != nil {
		u.Algorithm = r.algorithm
	}
	return u, ok, err
}

func (r *relabelDM) Consume(id int64, payload []byte) error { return r.inner.Consume(id, payload) }
func (r *relabelDM) Done() bool                             { return r.inner.Done() }
func (r *relabelDM) FinalResult() ([]byte, error)           { return r.inner.FinalResult() }

// TestRunLocalContextCancel: cancelling the RunLocal context must abort
// the run promptly with the context's error instead of computing to
// completion.
func TestRunLocalContextCancel(t *testing.T) {
	register()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run even starts
	_, err := core.RunLocal(ctx, newVowelProblem(t, "vowels-cancel", 3), 2, core.Fixed(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunLocal on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestPolicyConstructors(t *testing.T) {
	if core.Fixed(100).Budget(core.DonorStats{}, 0, 1) != 100 {
		t.Error("Fixed budget wrong")
	}
	a := core.Adaptive(2 * time.Second)
	if b := a.Budget(core.DonorStats{}, 0, 1); b <= 0 {
		t.Errorf("Adaptive bootstrap budget %d", b)
	}
	for _, spec := range []string{"fixed:10", "adaptive:1s", "gss", "factoring", "tss"} {
		if _, err := core.PolicyByName(spec); err != nil {
			t.Errorf("PolicyByName(%q): %v", spec, err)
		}
	}
	if _, err := core.PolicyByName("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}
