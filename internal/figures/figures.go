// Package figures regenerates the paper's evaluation artifacts: Figure 1
// (DSEARCH speedup on 83 homogeneous semi-idle processors) and Figure 2
// (DPRml speedup on a 50-taxon dataset with 6 problem instances running
// simultaneously). Both use the discrete-event cluster simulator (simnet)
// driving the real scheduling policies; see DESIGN.md for the substitution
// rationale and EXPERIMENTS.md for recorded paper-vs-measured series.
package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/sched"
	"repro/internal/simnet"
)

// Figure1Counts are the processor counts sampled for the DSEARCH curve
// (the paper's x-axis runs to 83, the size of the homogeneous laboratory).
var Figure1Counts = []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 83}

// Figure2Counts are the processor counts for the DPRml curve (the paper's
// x-axis runs to 40).
var Figure2Counts = []int{1, 5, 10, 15, 20, 25, 30, 35, 40}

// Figure1Config describes the Fig. 1 experiment: a laboratory of
// homogeneous Pentium III 1 GHz machines, "semi-idle" (light owner load),
// on a 100 Mbit/s network with a single modest server.
type Figure1Config struct {
	// TotalCost is the search's total cost in residue units.
	TotalCost int64
	// OwnerLoad is the mean background load on the semi-idle donors.
	OwnerLoad float64
	// Target is the adaptive scheduler's unit-duration target.
	Target time.Duration
	Seed   int64
}

// DefaultFigure1 mirrors the paper's setup at a simulation-friendly scale.
func DefaultFigure1() Figure1Config {
	return Figure1Config{
		// ~22 donor-hours of search at speed 1: long enough that the curve
		// is near-linear at small counts, short enough that dispatch
		// granularity and the straggler tail pull it visibly below linear
		// by 83 donors — the shape Figure 1 plots.
		TotalCost: 80_000,
		OwnerLoad: 0.15, // "semi-idle machines"
		Target:    30 * time.Second,
		Seed:      1,
	}
}

// Figure1 runs the DSEARCH speedup experiment and returns one point per
// processor count.
func Figure1(cfg Figure1Config, counts []int) ([]simnet.SpeedupPoint, error) {
	if len(counts) == 0 {
		counts = Figure1Counts
	}
	mkDonors := func(n int) []simnet.DonorSpec {
		return simnet.Uniform(n, 1.0, cfg.OwnerLoad, 2*time.Millisecond, 100e6/8)
	}
	mkWorkload := func() simnet.Workload {
		// ~40 bytes of database chunk per residue of cost; small result.
		return simnet.NewDivisibleWorkload(cfg.TotalCost, 40, 4096)
	}
	sim := simnet.Config{
		Policy:         sched.Adaptive{Target: cfg.Target, Bootstrap: 1000, Min: 100},
		ServerOverhead: 3 * time.Millisecond, // P-III 500 dispatch cost
		Lease:          5 * time.Minute,
		WaitHint:       500 * time.Millisecond,
		Seed:           cfg.Seed,
	}
	return simnet.SpeedupCurve(counts, mkDonors, mkWorkload, sim)
}

// Figure2Config describes the Fig. 2 experiment: stepwise-insertion ML over
// a 50-taxon alignment, with several independent problem instances sharing
// the donor pool.
type Figure2Config struct {
	Taxa      int
	Instances int
	// CostScale converts one candidate topology evaluation at stage k into
	// k*CostScale cost units (~seconds at donor speed 1).
	CostScale int64
	Seed      int64
}

// DefaultFigure2 mirrors the paper: 50 taxa, 6 simultaneous instances.
func DefaultFigure2() Figure2Config {
	return Figure2Config{Taxa: 50, Instances: 6, CostScale: 1, Seed: 2}
}

// Figure2 runs the DPRml speedup experiment. Instances <= 1 produces the
// single-instance ablation the paper describes in prose ("running a single
// instance ... will result in clients becoming idle").
func Figure2(cfg Figure2Config, counts []int) ([]simnet.SpeedupPoint, error) {
	if len(counts) == 0 {
		counts = Figure2Counts
	}
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	mkDonors := func(n int) []simnet.DonorSpec {
		return simnet.Uniform(n, 1.0, 0, 2*time.Millisecond, 100e6/8)
	}
	mkWorkload := func() simnet.Workload {
		if cfg.Instances == 1 {
			return simnet.DPRmlWorkload(cfg.Taxa, cfg.CostScale, 64<<10, 2048)
		}
		var ws []simnet.Workload
		for i := 0; i < cfg.Instances; i++ {
			ws = append(ws, simnet.DPRmlWorkload(cfg.Taxa, cfg.CostScale, 64<<10, 2048))
		}
		return simnet.NewMultiWorkload(ws...)
	}
	sim := simnet.Config{
		// One candidate per unit: the natural DPRml granularity.
		Policy:         sched.Fixed{Size: 1},
		ServerOverhead: 3 * time.Millisecond,
		Lease:          5 * time.Minute,
		WaitHint:       500 * time.Millisecond,
		Seed:           cfg.Seed,
	}
	return simnet.SpeedupCurve(counts, mkDonors, mkWorkload, sim)
}

// AdaptiveVsFixed runs the §3.1 ablation: on a heterogeneous donor pool,
// the paper's adaptive granularity against fixed-size units. Returns
// makespans keyed by policy name.
func AdaptiveVsFixed(donors int, totalCost int64, seed int64) (map[string]time.Duration, error) {
	out := make(map[string]time.Duration)
	policies := []sched.Policy{
		sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
		sched.Fixed{Size: 20000},
		sched.GSS{K: 1, Min: 100},
		sched.Factoring{Min: 100},
		sched.TSS{Min: 100},
	}
	for _, p := range policies {
		cfg := simnet.Config{
			Donors:         simnet.HeterogeneousLab(donors, seed),
			Policy:         p,
			ServerOverhead: 3 * time.Millisecond,
			Lease:          5 * time.Minute,
			WaitHint:       500 * time.Millisecond,
			Seed:           seed,
		}
		m, err := simnet.Run(cfg, simnet.NewDivisibleWorkload(totalCost, 40, 4096))
		if err != nil {
			return nil, fmt.Errorf("figures: policy %s: %w", p.Name(), err)
		}
		out[p.Name()] = m.Makespan
	}
	return out, nil
}

// WriteTable renders speedup points as the text analogue of the paper's
// figures.
func WriteTable(w io.Writer, title string, pts []simnet.SpeedupPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10s %12s %10s %10s\n", "Donors", "Makespan", "Speedup", "Effcy")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d %12s %10.2f %10.3f\n",
			p.Donors, p.Makespan.Round(time.Second), p.Speedup, p.Efficiency)
	}
}

// WriteCSV emits speedup points as CSV rows tagged with a series name, for
// replotting the figures with external tools. The header is written when
// header is true (first series of a file).
func WriteCSV(w io.Writer, series string, pts []simnet.SpeedupPoint, header bool) error {
	cw := csv.NewWriter(w)
	if header {
		if err := cw.Write([]string{"series", "donors", "makespan_s", "speedup", "efficiency"}); err != nil {
			return err
		}
	}
	for _, p := range pts {
		rec := []string{
			series,
			strconv.Itoa(p.Donors),
			strconv.FormatFloat(p.Makespan.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(p.Speedup, 'f', 4, 64),
			strconv.FormatFloat(p.Efficiency, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
