package figures

import (
	"strings"
	"testing"
	"time"
)

// smallFig1 shrinks the Figure 1 workload so shape tests run in
// milliseconds while exercising the same code path.
func smallFig1() Figure1Config {
	cfg := DefaultFigure1()
	cfg.TotalCost = 40_000
	return cfg
}

func TestFigure1Shape(t *testing.T) {
	counts := []int{1, 2, 4, 8, 16}
	pts, err := Figure1(smallFig1(), counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(counts) {
		t.Fatalf("%d points, want %d", len(pts), len(counts))
	}
	for i, p := range pts {
		if p.Donors != counts[i] {
			t.Errorf("point %d: donors %d, want %d", i, p.Donors, counts[i])
		}
		if i > 0 && p.Speedup <= pts[i-1].Speedup {
			t.Errorf("speedup not monotonic at %d donors: %.2f after %.2f",
				p.Donors, p.Speedup, pts[i-1].Speedup)
		}
		if p.Speedup > float64(p.Donors)*1.05 {
			t.Errorf("superlinear speedup %.2f at %d donors", p.Speedup, p.Donors)
		}
		if p.Efficiency < 0.80 {
			t.Errorf("efficiency %.3f at %d donors below Figure 1's near-linear regime", p.Efficiency, p.Donors)
		}
	}
}

func TestFigure1SingleDonorBaseline(t *testing.T) {
	pts, err := Figure1(smallFig1(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if s := pts[0].Speedup; s < 0.999 || s > 1.001 {
		t.Errorf("1-donor speedup = %.4f, want 1.0", s)
	}
}

func TestFigure2MultiInstanceBeatsSingle(t *testing.T) {
	counts := []int{1, 10, 20}
	cfg := DefaultFigure2()
	cfg.Taxa = 30 // smaller dataset for test speed; same staged structure

	multi, err := Figure2(cfg, counts)
	if err != nil {
		t.Fatal(err)
	}
	single := cfg
	single.Instances = 1
	solo, err := Figure2(single, counts)
	if err != nil {
		t.Fatal(err)
	}

	mEff, sEff := multi[len(multi)-1].Efficiency, solo[len(solo)-1].Efficiency
	if mEff <= sEff {
		t.Errorf("6-instance efficiency %.3f not above single-instance %.3f at 20 donors — Figure 2's whole point", mEff, sEff)
	}
	if mEff < 0.9 {
		t.Errorf("6-instance efficiency %.3f at 20 donors; paper shows near-linear", mEff)
	}
	// The single instance must saturate: efficiency visibly below 1 by 20
	// donors (stage width 2k-5 caps parallelism early in the build).
	if sEff > 0.95 {
		t.Errorf("single-instance efficiency %.3f at 20 donors; expected visible saturation", sEff)
	}
}

func TestFigure2SingleInstanceSaturates(t *testing.T) {
	cfg := DefaultFigure2()
	cfg.Taxa = 30
	cfg.Instances = 1
	pts, err := Figure2(cfg, []int{1, 5, 10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Efficiency > pts[i-1].Efficiency+1e-9 {
			t.Errorf("single-instance efficiency rose from %.3f to %.3f at %d donors",
				pts[i-1].Efficiency, pts[i].Efficiency, pts[i].Donors)
		}
	}
}

func TestFigure2InstanceFloor(t *testing.T) {
	cfg := DefaultFigure2()
	cfg.Taxa = 20
	cfg.Instances = 0 // must clamp to 1, not crash
	if _, err := Figure2(cfg, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveWinsAblation(t *testing.T) {
	res, err := AdaptiveVsFixed(30, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d policies, want 5", len(res))
	}
	var adaptive time.Duration
	for name, ms := range res {
		if strings.HasPrefix(name, "adaptive") {
			adaptive = ms
		}
		if ms <= 0 {
			t.Errorf("policy %s: non-positive makespan %s", name, ms)
		}
	}
	if adaptive == 0 {
		t.Fatal("no adaptive policy in results")
	}
	for name, ms := range res {
		if !strings.HasPrefix(name, "adaptive") && ms < adaptive {
			t.Errorf("policy %s (%s) beat adaptive (%s) on the heterogeneous pool", name, ms, adaptive)
		}
	}
}

func TestWriteTable(t *testing.T) {
	pts, err := Figure1(smallFig1(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteTable(&sb, "test title", pts)
	out := sb.String()
	if !strings.Contains(out, "test title") || !strings.Contains(out, "Speedup") {
		t.Errorf("table missing header:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 2+len(pts) {
		t.Errorf("table has %d lines, want %d", got, 2+len(pts))
	}
}

func TestDefaultsAreSane(t *testing.T) {
	f1 := DefaultFigure1()
	if f1.TotalCost <= 0 || f1.Target <= 0 {
		t.Errorf("bad Figure1 defaults: %+v", f1)
	}
	f2 := DefaultFigure2()
	if f2.Taxa != 50 || f2.Instances != 6 {
		t.Errorf("Figure2 defaults deviate from the paper: %+v", f2)
	}
	if last := Figure1Counts[len(Figure1Counts)-1]; last != 83 {
		t.Errorf("Figure1 x-axis ends at %d, paper uses 83", last)
	}
	if last := Figure2Counts[len(Figure2Counts)-1]; last != 40 {
		t.Errorf("Figure2 x-axis ends at %d, paper uses 40", last)
	}
}
