package swarm

// Adversarial swarm suite: a real coordinator with quorum verification on,
// a fleet of real donors where a tenth are Byzantine (wrong-result, lazy,
// colluding, flaky), and the acceptance bar of the defense — the problem
// completes with every fold byte-correct, every malicious donor ends up
// quarantined, and no honest donor does.
//
// The run is two-phase to make the cold-start window deterministic: an
// honest-only fleet first boots trust on a throwaway problem (before any
// donor is trusted, unproven donors must be allowed to validate each
// other — that window is where colluders could win). Only after the boot
// problem completes, with dozens of donors past probation, does the
// malicious fleet join and the checked planted problem get submitted: from
// then on no group of unproven donors can fold anything without a trusted
// donor recomputing it.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// plantedAlg is the checked computation: a deterministic function of the
// payload, so the test can recompute every expected result.
type plantedAlg struct{ d time.Duration }

func (plantedAlg) Init([]byte) error { return nil }

func plantedAnswer(payload []byte) []byte {
	out := make([]byte, len(payload))
	for i, b := range payload {
		out[i] = b ^ 0x5A
	}
	return out
}

func (a plantedAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	t := time.NewTimer(a.d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return plantedAnswer(payload), nil
}

var registerPlantedOnce sync.Once

func registerPlanted() {
	registerPlantedOnce.Do(func() {
		dist.RegisterAlgorithm("swarm/planted", func() dist.Algorithm {
			return plantedAlg{d: 2 * time.Millisecond}
		})
	})
}

// plantedDM hands out units with distinct payloads and records every
// folded payload, so the test can assert each unit folded exactly once
// with the honest answer — the zero-wrong-folds bar.
type plantedDM struct {
	mu       sync.Mutex
	units    int64
	seq      int64
	payloads map[int64][]byte
	folds    map[int64][][]byte
}

func newPlantedDM(units int64) *plantedDM {
	return &plantedDM{units: units, payloads: make(map[int64][]byte), folds: make(map[int64][][]byte)}
}

func (d *plantedDM) NextUnit(int64) (*dist.Unit, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seq >= d.units {
		return nil, false, nil
	}
	d.seq++
	payload := []byte{byte(d.seq), byte(d.seq >> 8), byte(d.seq >> 16), 0x77}
	d.payloads[d.seq] = payload
	return &dist.Unit{ID: d.seq, Algorithm: "swarm/planted", Cost: 1, Payload: payload}, true, nil
}

func (d *plantedDM) Consume(unitID int64, payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.folds[unitID] = append(d.folds[unitID], append([]byte(nil), payload...))
	return nil
}

func (d *plantedDM) Done() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.folds)) >= d.units
}

func (d *plantedDM) FinalResult() ([]byte, error) { return nil, nil }

// audit returns the unit IDs that folded more than once and those whose
// folded payload is not the honest answer.
func (d *plantedDM) audit() (double, wrong []int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, folds := range d.folds {
		if len(folds) > 1 {
			double = append(double, id)
		}
		want := plantedAnswer(d.payloads[id])
		for _, got := range folds {
			if string(got) != string(want) {
				wrong = append(wrong, id)
				break
			}
		}
	}
	return double, wrong
}

// byzantineFleet builds the malicious cohort: every Malice mode the
// harness knows, at ≥10% of the full fleet.
func byzantineFleet() (specs []simnet.DonorSpec, names map[string]string) {
	names = make(map[string]string)
	add := func(mode string, n int) {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("evil-%s-%02d", mode, i)
			specs = append(specs, simnet.DonorSpec{
				Name: name, Speed: 1.0, Latency: 200 * time.Microsecond, Malice: mode,
			})
			names[name] = mode
		}
	}
	add(MaliceWrongResult, 10)
	add(MaliceLazy, 6)
	add(MaliceCollude, 4)
	add(MaliceFlaky, 6)
	return specs, names
}

// TestSwarmByzantine is the adversarial acceptance run: 256 donors, 26 of
// them malicious across all four modes, quorum verification at fraction
// 0.1 / quorum 2. Rides `make check` (with -race) like TestSwarmSmoke.
func TestSwarmByzantine(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial swarm needs wall-clock seconds; skipped under -short")
	}
	registerPlanted()
	const honest = 230
	srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		dist.WithPolicy(sched.Fixed{Size: 1}),
		dist.WithLeaseTTL(2*time.Second),
		dist.WithExpiryScan(100*time.Millisecond),
		dist.WithWaitHint(20*time.Millisecond),
		dist.WithVerify(0.1, 2),
		dist.WithProbation(2),
		dist.WithQuarantineBelow(0.3),
	)
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Phase 1: honest-only fleet boots trust on a throwaway problem.
	boot := newPlantedDM(800)
	if err := srv.Submit(ctx, &dist.Problem{ID: "boot", DM: boot}); err != nil {
		t.Fatalf("Submit boot: %v", err)
	}
	honestSwarm, err := New(Config{
		RPCAddr: srv.RPCAddr(),
		Specs:   simnet.Uniform(honest, 1.0, 0, 200*time.Microsecond, 0),
		Seed:    7,
	})
	if err != nil {
		t.Fatalf("New honest swarm: %v", err)
	}
	if err := honestSwarm.Start(ctx); err != nil {
		t.Fatalf("Start honest swarm: %v", err)
	}
	defer honestSwarm.Stop()
	if _, err := srv.Wait(ctx, "boot"); err != nil {
		t.Fatalf("Wait boot: %v (swarm stats %+v)", err, honestSwarm.Stats())
	}
	ft := srv.FleetTrust()
	if ft.Trusted < 50 {
		t.Fatalf("boot phase left only %d trusted donors (want >= 50): %+v", ft.Trusted, ft)
	}
	if ft.Quarantined != 0 {
		t.Fatalf("boot phase quarantined %d honest donors: %v", ft.Quarantined, srv.QuarantinedDonors())
	}

	// Phase 2: the malicious cohort joins, and the checked problem runs.
	evilSpecs, evil := byzantineFleet()
	evilSwarm, err := New(Config{
		RPCAddr: srv.RPCAddr(),
		Specs:   evilSpecs,
		Seed:    13,
	})
	if err != nil {
		t.Fatalf("New byzantine swarm: %v", err)
	}
	if err := evilSwarm.Start(ctx); err != nil {
		t.Fatalf("Start byzantine swarm: %v", err)
	}
	defer evilSwarm.Stop()

	dm := newPlantedDM(2500)
	start := time.Now()
	if err := srv.Submit(ctx, &dist.Problem{ID: "planted", DM: dm}); err != nil {
		t.Fatalf("Submit planted: %v", err)
	}
	if _, err := srv.Wait(ctx, "planted"); err != nil {
		t.Fatalf("Wait planted: %v (quarantined %v)", err, srv.QuarantinedDonors())
	}
	elapsed := time.Since(start)
	evilSwarm.Stop()
	honestSwarm.Stop()

	// Zero wrong folds, each unit folded exactly once.
	if double, wrong := dm.audit(); len(double) > 0 || len(wrong) > 0 {
		t.Errorf("planted problem corrupted: %d double folds %v, %d wrong folds %v",
			len(double), double, len(wrong), wrong)
	}

	// Every malicious donor that got work was caught; no honest donor was.
	quarantined := make(map[string]bool)
	for _, name := range srv.QuarantinedDonors() {
		quarantined[name] = true
		if _, isEvil := evil[name]; !isEvil {
			t.Errorf("honest donor %s quarantined", name)
		}
	}
	for name, mode := range evil {
		if quarantined[name] {
			continue
		}
		// A malicious donor the dispatch never reached cannot be caught;
		// only one that computed a unit must be.
		if info, ok := srv.DonorTrust(name); ok && info.Trust != sched.TrustNeutral {
			t.Errorf("malicious donor %s (%s) touched quorums but escaped quarantine: %+v", name, mode, info)
		}
	}
	if len(quarantined) < 20 {
		t.Errorf("only %d of %d malicious donors quarantined — the fleet barely met them", len(quarantined), len(evil))
	}

	stats, err := srv.Stats(ctx, "planted")
	if err != nil {
		t.Fatalf("Stats planted: %v", err)
	}
	if stats.Verified == 0 {
		t.Error("planted problem folded no verified units")
	}
	if stats.Conflicts == 0 {
		t.Error("no quorum conflicts recorded despite 26 malicious donors")
	}
	// Honest throughput within tolerance: 2500 × 2ms units across ~230
	// honest donors is seconds of work even with every malicious unit
	// replicated; a defense that stalls the fleet fails here.
	if elapsed > 60*time.Second {
		t.Errorf("planted problem took %v — verification overhead out of tolerance", elapsed)
	}
	t.Logf("byzantine run: %v elapsed, verified %d, conflicts %d, quarantined %d/%d, fleet %+v",
		elapsed, stats.Verified, stats.Conflicts, len(quarantined), len(evil), srv.FleetTrust())
}
