// Package swarm is an in-process donor-swarm harness: it spins up
// hundreds to thousands of real dist donors against a live
// NetworkServer, shaping each donor from a simnet.DonorSpec profile.
// Where package simnet *predicts* fleet behaviour in virtual time, swarm
// *exercises* the real runtime on the wall clock — the RPC stack, the
// flat codec, long-poll dispatch, lease recovery, speculation and
// priority scheduling — under the same heterogeneity the simulator
// models:
//
//   - Speed and Load throttle the donor's effective throughput by
//     stretching each unit's compute time (an algorithm wrapper, so the
//     registered algorithm itself stays untouched).
//   - Latency and Bandwidth shape the control connection at the socket
//     seam (dist.WithConnWrapper).
//   - JoinAt, LeaveAt and Offline windows script churn: a departure is
//     an abrupt socket close mid-whatever — the powered-off lab machine —
//     and the server's lease expiry is what recovers the units it held.
//
// All donors share one BlobCache, so a swarm of a thousand in-process
// donors fetches each shared blob once, not a thousand times — the same
// economics as a thousand-process fleet with per-host caches, scaled to
// fit one test binary.
package swarm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/simnet"
)

// Config parameterises a swarm.
type Config struct {
	// RPCAddr is the control-channel address of the server under test.
	RPCAddr string
	// Specs describes the fleet, one entry per donor (see the simnet
	// profile factories: Uniform, HeterogeneousLab, StragglerLab,
	// DiurnalLab — compressed with simnet.Compress for wall-clock runs).
	Specs []simnet.DonorSpec
	// DialTimeout bounds each control-channel dial (default 5s).
	DialTimeout time.Duration
	// LongPollWait overrides the donors' WaitTask park duration
	// (zero keeps the dist default).
	LongPollWait time.Duration
	// Seed drives the per-donor load jitter; runs with the same seed
	// draw the same load sequences.
	Seed int64
	// Logf, when set, receives donor log lines. The default swallows
	// them: a thousand donors re-dialling through churn is noise.
	Logf func(format string, args ...any)
	// BlobCache is the shared donor-side blob cache (nil allocates a
	// 256 MiB one shared by every member).
	BlobCache *dist.BlobCache
	// DonorOptions are appended to every member's option list, after the
	// harness's own (name, cancel-poll, blob cache, throttle), so tests
	// can override any of them.
	DonorOptions []dist.DonorOption
	// DialOptions are appended to every dial, after the harness's
	// connection wrapper.
	DialOptions []dist.DialOption
}

// Stats is a point-in-time summary of swarm activity. Units is exact
// once Stop has returned; while sessions are being torn down a donor's
// tally moves from the live count to the retired count non-atomically.
type Stats struct {
	// Donors is the configured fleet size; Online counts members with a
	// live session right now.
	Donors, Online int
	// Dials counts successful control-channel connections (including
	// churn re-joins); Drops counts abrupt departures the harness
	// injected; DialErrors counts failed dial attempts.
	Dials, Drops, DialErrors int64
	// Units is the fleet-wide completed-unit total.
	Units int64
}

// segment is one online interval of a member's schedule, as offsets from
// swarm start. to < 0 means "until the swarm stops".
type segment struct {
	from, to time.Duration
}

// member is one donor slot: a spec, its schedule, and whatever session
// is currently live.
type member struct {
	spec     simnet.DonorSpec
	segments []segment
	rng      *lockedRand

	mu sync.Mutex
	// conn is the live session's shaped control connection, recorded by
	// the dial wrapper so a churn event can sever it abruptly.
	conn *shapedConn //dist:guardedby mu
	// donor is the live session's donor, nil between sessions.
	donor *dist.Donor //dist:guardedby mu
	// online marks whether a session is currently running.
	online bool //dist:guardedby mu
}

func (m *member) wrapConn(c *shapedConn) {
	m.mu.Lock()
	m.conn = c
	m.mu.Unlock()
}

// sever closes the live control connection out from under the donor —
// the abrupt-departure half of churn. Safe when no session is live.
func (m *member) sever() {
	m.mu.Lock()
	c := m.conn
	m.conn = nil
	m.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

func (m *member) setLive(d *dist.Donor) {
	m.mu.Lock()
	m.donor = d
	m.online = d != nil
	m.mu.Unlock()
}

// Swarm drives a configured fleet. Create with New, run with Start,
// tear down with Stop.
type Swarm struct {
	cfg     Config
	cache   *dist.BlobCache
	members []*member

	mu     sync.Mutex
	cancel context.CancelFunc //dist:guardedby mu
	start  time.Time          //dist:guardedby mu
	wg     sync.WaitGroup

	dials        atomic.Int64
	drops        atomic.Int64
	dialErrors   atomic.Int64
	unitsRetired atomic.Int64
}

// New validates the config and builds the fleet without connecting
// anything.
func New(cfg Config) (*Swarm, error) {
	if cfg.RPCAddr == "" {
		return nil, errors.New("swarm: Config.RPCAddr required")
	}
	if len(cfg.Specs) == 0 {
		return nil, errors.New("swarm: Config.Specs empty")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	cache := cfg.BlobCache
	if cache == nil {
		cache = dist.NewBlobCache(256 << 20)
	}
	s := &Swarm{cfg: cfg, cache: cache}
	for i, spec := range cfg.Specs {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("swarm%04d", i)
		}
		s.members = append(s.members, &member{
			spec:     spec,
			segments: onlineSegments(spec),
			rng:      &lockedRand{rng: rand.New(rand.NewSource(cfg.Seed ^ int64(i*2654435761)))},
		})
	}
	return s, nil
}

// Cache returns the blob cache shared by every member donor.
func (s *Swarm) Cache() *dist.BlobCache { return s.cache }

// Start launches every member's schedule. The swarm stops when ctx is
// cancelled or Stop is called, whichever comes first.
func (s *Swarm) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.cancel != nil {
		s.mu.Unlock()
		return errors.New("swarm: already started")
	}
	ctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	s.start = time.Now()
	start := s.start
	s.mu.Unlock()
	for _, m := range s.members {
		s.wg.Add(1)
		go s.runMember(ctx, m, start)
	}
	return nil
}

// Stop gracefully winds the fleet down — live donors finish their
// in-flight unit, report it, and disconnect — and waits for every
// member goroutine to exit. Safe to call more than once.
func (s *Swarm) Stop() {
	s.mu.Lock()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	s.wg.Wait()
}

// Stats reports current fleet counters.
func (s *Swarm) Stats() Stats {
	st := Stats{
		Donors:     len(s.members),
		Dials:      s.dials.Load(),
		Drops:      s.drops.Load(),
		DialErrors: s.dialErrors.Load(),
		Units:      s.unitsRetired.Load(),
	}
	for _, m := range s.members {
		m.mu.Lock()
		if m.online {
			st.Online++
			if m.donor != nil {
				st.Units += int64(m.donor.Units())
			}
		}
		m.mu.Unlock()
	}
	return st
}

// runMember walks one member's schedule: sleep to each segment's start,
// hold a session for its duration, sever it at the end.
func (s *Swarm) runMember(ctx context.Context, m *member, start time.Time) {
	defer s.wg.Done()
	for _, seg := range m.segments {
		if !sleepUntil(ctx, start.Add(seg.from)) {
			return
		}
		var deadline time.Time
		if seg.to >= 0 {
			deadline = start.Add(seg.to)
		}
		s.runSession(ctx, m, deadline)
		if ctx.Err() != nil {
			return
		}
	}
}

// runSession keeps one member connected until the deadline (zero =
// until the swarm stops). A donor that dies early — the server
// restarted, a transport hiccup — is re-dialled, so a segment is a
// promise of availability, not of a single connection.
func (s *Swarm) runSession(ctx context.Context, m *member, deadline time.Time) {
	for ctx.Err() == nil && (deadline.IsZero() || time.Now().Before(deadline)) {
		cl := s.dialRetry(ctx, m, deadline)
		if cl == nil {
			return
		}
		s.dials.Add(1)
		d := dist.NewDonor(cl, s.donorOptions(m)...)
		m.setLive(d)

		runCtx, cancelRun := context.WithCancel(ctx)
		done := make(chan struct{})
		go func() {
			_ = d.Run(runCtx)
			close(done)
		}()

		var endC <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			endC = t.C
			defer t.Stop()
		}
		abrupt := false
		select {
		case <-done:
			// Donor exited on its own; loop re-dials if time remains.
		case <-endC:
			// Scheduled departure: the machine powers off mid-whatever.
			// Sever the socket, then cancel so Run observes the loss and
			// returns; the server recovers held leases by expiry.
			abrupt = true
			m.sever()
			s.drops.Add(1)
			cancelRun()
			<-done
		case <-ctx.Done():
			// Swarm shutdown: finish the in-flight unit and report it.
			d.Stop()
			<-done
		}
		cancelRun()
		m.setLive(nil)
		s.unitsRetired.Add(int64(d.Units()))
		_ = cl.Close()
		if abrupt {
			return
		}
		// Brief pause before re-dialling a session that died early.
		if !sleepCtx(ctx, 20*time.Millisecond) {
			return
		}
	}
}

// dialRetry dials the server with backoff until it succeeds, the
// deadline passes, or the swarm stops.
func (s *Swarm) dialRetry(ctx context.Context, m *member, deadline time.Time) *dist.RPCClient {
	backoff := 50 * time.Millisecond
	for {
		if ctx.Err() != nil || (!deadline.IsZero() && !time.Now().Before(deadline)) {
			return nil
		}
		opts := make([]dist.DialOption, 0, 1+len(s.cfg.DialOptions))
		opts = append(opts, dist.WithConnWrapper(func(c net.Conn) net.Conn {
			sc := &shapedConn{Conn: c, latency: m.spec.Latency, bandwidth: m.spec.Bandwidth}
			m.wrapConn(sc)
			return sc
		}))
		opts = append(opts, s.cfg.DialOptions...)
		cl, err := dist.Dial(s.cfg.RPCAddr, s.cfg.DialTimeout, opts...)
		if err == nil {
			return cl
		}
		s.dialErrors.Add(1)
		if !sleepCtx(ctx, backoff) {
			return nil
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (s *Swarm) donorOptions(m *member) []dist.DonorOption {
	logf := s.cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	opts := []dist.DonorOption{
		dist.WithName(m.spec.Name),
		// A thousand cancel-poll tickers would dominate the scheduler;
		// churn and shutdown already bound unit lifetimes.
		dist.WithCancelPoll(-1),
		dist.WithBlobCache(s.cache),
		dist.WithLogf(logf),
	}
	if s.cfg.LongPollWait != 0 {
		opts = append(opts, dist.WithLongPollWait(s.cfg.LongPollWait))
	}
	// Throttle and malice share the one algorithm-wrapper slot: malice
	// wraps outermost so a Byzantine donor still honours its spec's speed.
	throttle := throttleWrapper(m.spec, m.rng)
	malice := maliceWrapper(m.spec.Malice)
	switch {
	case throttle != nil && malice != nil:
		opts = append(opts, dist.WithAlgorithmWrapper(func(name string, a dist.Algorithm) dist.Algorithm {
			return malice(name, throttle(name, a))
		}))
	case throttle != nil:
		opts = append(opts, dist.WithAlgorithmWrapper(throttle))
	case malice != nil:
		opts = append(opts, dist.WithAlgorithmWrapper(malice))
	}
	return append(opts, s.cfg.DonorOptions...)
}

// onlineSegments converts a spec's schedule — JoinAt, Offline windows,
// LeaveAt — into the member's online intervals.
func onlineSegments(spec simnet.DonorSpec) []segment {
	wins := append([]simnet.Window(nil), spec.Offline...)
	sort.Slice(wins, func(i, j int) bool { return wins[i].From < wins[j].From })
	var segs []segment
	cur := spec.JoinAt
	if cur < 0 {
		cur = 0
	}
	for _, w := range wins {
		if w.To <= w.From || w.To <= cur {
			continue
		}
		if w.From > cur {
			segs = append(segs, segment{from: cur, to: w.From})
		}
		cur = w.To
	}
	segs = append(segs, segment{from: cur, to: -1})
	if spec.LeaveAt > 0 {
		clipped := segs[:0]
		for _, g := range segs {
			if g.from >= spec.LeaveAt {
				break
			}
			if g.to < 0 || g.to > spec.LeaveAt {
				g.to = spec.LeaveAt
			}
			clipped = append(clipped, g)
		}
		segs = clipped
	}
	return segs
}

// sleepCtx sleeps for d, returning false if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// sleepUntil sleeps until at, returning false if ctx ends first.
func sleepUntil(ctx context.Context, at time.Time) bool {
	return sleepCtx(ctx, time.Until(at))
}

// lockedRand is a mutex-guarded rand.Rand: the throttle wrapper draws
// load samples from donor goroutines while the harness owns the seed.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand //dist:guardedby mu
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}
