package swarm

// Swarm integration tests: a real NetworkServer, a fleet of real donors
// shaped from simnet profiles, and the invariants the runtime must hold
// under scale and churn — every unit folds exactly once, completed never
// exceeds dispatched, and the lease tables drain to empty by the end.
//
// The 256-donor smoke rides the normal test run; the 1024-donor soak is
// the `make swarm` target, gated behind SWARM_SOAK=1 because it holds a
// four-digit goroutine fleet for tens of seconds.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// sleepyAlg models a unit with real (small) compute so the throttle
// wrapper has something to stretch.
type sleepyAlg struct{ d time.Duration }

func (sleepyAlg) Init([]byte) error { return nil }

func (a sleepyAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	t := time.NewTimer(a.d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return []byte{1}, nil
}

var registerSleepyOnce sync.Once

func registerSleepy() {
	registerSleepyOnce.Do(func() {
		dist.RegisterAlgorithm("swarm/sleepy", func() dist.Algorithm {
			return sleepyAlg{d: time.Millisecond}
		})
	})
}

// countingDM hands out a fixed number of unit-cost units and counts how
// often each folds — the double-fold detector. The server calls the DM
// under the problem lock; the mutex is for the test's own post-run reads.
type countingDM struct {
	mu    sync.Mutex
	units int64
	seq   int64
	folds map[int64]int
}

func newCountingDM(units int64) *countingDM {
	return &countingDM{units: units, folds: make(map[int64]int)}
}

func (d *countingDM) NextUnit(int64) (*dist.Unit, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seq >= d.units {
		return nil, false, nil
	}
	d.seq++
	return &dist.Unit{ID: d.seq, Algorithm: "swarm/sleepy", Cost: 1, Payload: []byte{byte(d.seq)}}, true, nil
}

func (d *countingDM) Consume(unitID int64, _ []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.folds[unitID]++
	return nil
}

func (d *countingDM) Done() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.folds)) >= d.units
}

func (d *countingDM) FinalResult() ([]byte, error) { return nil, nil }

// doubleFolds returns unit IDs folded more than once (must be none).
func (d *countingDM) doubleFolds() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var bad []int64
	for id, n := range d.folds {
		if n > 1 {
			bad = append(bad, id)
		}
	}
	return bad
}

// soakFleet builds a donor fleet: mostly full-speed machines, every
// 50th a severe straggler, and roughly churnFrac of them dropping
// abruptly mid-run and rejoining half a second later.
func soakFleet(donors int, churnFrac float64) []simnet.DonorSpec {
	specs := simnet.Uniform(donors, 1.0, 0.0, 200*time.Microsecond, 0)
	churnEvery := 0
	if churnFrac > 0 {
		churnEvery = int(1 / churnFrac)
	}
	for i := range specs {
		if i > 0 && i%50 == 0 {
			specs[i].Speed = 0.05
		}
		if churnEvery > 0 && i%churnEvery == 1 {
			at := 100*time.Millisecond + time.Duration(i%7)*50*time.Millisecond
			specs[i].Offline = []simnet.Window{{From: at, To: at + 400*time.Millisecond}}
		}
	}
	return specs
}

// runSoak is the shared body of the smoke and soak tests.
func runSoak(t *testing.T, donors, problems int, unitsPer int64, churnFrac float64, timeout time.Duration) {
	t.Helper()
	registerSleepy()
	srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		dist.WithPolicy(sched.Fixed{Size: 1}),
		dist.WithLeaseTTL(2*time.Second),
		dist.WithExpiryScan(100*time.Millisecond),
		dist.WithWaitHint(20*time.Millisecond),
		dist.WithSpeculation(0.95),
	)
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	dms := make([]*countingDM, problems)
	ids := make([]string, problems)
	for i := range dms {
		dms[i] = newCountingDM(unitsPer)
		ids[i] = fmt.Sprintf("soak-%d", i)
		p := &dist.Problem{ID: ids[i], DM: dms[i], Priority: i % 3}
		if i%2 == 0 {
			p.Deadline = time.Now().Add(time.Duration(i+1) * time.Minute)
		}
		if err := srv.Submit(ctx, p); err != nil {
			t.Fatalf("Submit %s: %v", ids[i], err)
		}
	}

	sw, err := New(Config{
		RPCAddr: srv.RPCAddr(),
		Specs:   soakFleet(donors, churnFrac),
		Seed:    42,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sw.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer sw.Stop()

	for _, id := range ids {
		if _, err := srv.Wait(ctx, id); err != nil {
			t.Fatalf("Wait %s: %v (swarm stats %+v)", id, err, sw.Stats())
		}
	}
	sw.Stop()

	var speculated int
	for i, id := range ids {
		if bad := dms[i].doubleFolds(); len(bad) > 0 {
			t.Errorf("%s: units folded more than once: %v", id, bad)
		}
		stats, err := srv.Stats(ctx, id)
		if err != nil {
			t.Fatalf("Stats %s: %v", id, err)
		}
		if stats.Completed > stats.Dispatched {
			t.Errorf("%s: completed %d > dispatched %d", id, stats.Completed, stats.Dispatched)
		}
		if int64(stats.Completed) != unitsPer {
			t.Errorf("%s: completed %d units, want %d", id, stats.Completed, unitsPer)
		}
		speculated += stats.Speculated
		status, err := srv.Status(ctx, id)
		if err != nil {
			t.Fatalf("Status %s: %v", id, err)
		}
		if status.Inflight != 0 {
			t.Errorf("%s: lease table not empty at exit: %d inflight", id, status.Inflight)
		}
		if !status.Done {
			t.Errorf("%s: not done after Wait", id)
		}
	}
	st := sw.Stats()
	if st.Units == 0 {
		t.Error("swarm reported zero completed units")
	}
	if churnFrac > 0 && st.Drops == 0 {
		t.Errorf("churn configured but no drops recorded: %+v", st)
	}
	t.Logf("swarm: %+v; problems speculated %d units total", st, speculated)
}

// TestSwarmSmoke is the CI-sized swarm: 256 donors, 4 problems, 10%%
// churn — rides `make check` and must stay well under a minute.
func TestSwarmSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm smoke needs wall-clock seconds; skipped under -short")
	}
	runSoak(t, 256, 4, 400, 0.10, 60*time.Second)
}

// TestSwarmSoak1024 is the full-scale soak from the PR 9 acceptance bar:
// 1024 donors, 8 problems, 10%% churn, run under -race by `make swarm`
// (SWARM_SOAK=1 gates it out of the default run).
func TestSwarmSoak1024(t *testing.T) {
	if os.Getenv("SWARM_SOAK") == "" {
		t.Skip("set SWARM_SOAK=1 (or run `make swarm`) for the 1024-donor soak")
	}
	runSoak(t, 1024, 8, 200, 0.10, 5*time.Minute)
}

// TestOnlineSegments pins the schedule → online-interval conversion:
// join delay, offline windows carving holes, LeaveAt clipping the tail.
func TestOnlineSegments(t *testing.T) {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	cases := []struct {
		name string
		spec simnet.DonorSpec
		want []segment
	}{
		{"always-on", simnet.DonorSpec{}, []segment{{0, -1}}},
		{"join-delay", simnet.DonorSpec{JoinAt: sec(5)}, []segment{{sec(5), -1}}},
		{"one-window", simnet.DonorSpec{Offline: []simnet.Window{{From: sec(2), To: sec(4)}}},
			[]segment{{0, sec(2)}, {sec(4), -1}}},
		{"window-before-join", simnet.DonorSpec{JoinAt: sec(5), Offline: []simnet.Window{{From: sec(1), To: sec(3)}}},
			[]segment{{sec(5), -1}}},
		{"leave", simnet.DonorSpec{LeaveAt: sec(7), Offline: []simnet.Window{{From: sec(2), To: sec(4)}}},
			[]segment{{0, sec(2)}, {sec(4), sec(7)}}},
		{"leave-inside-window", simnet.DonorSpec{LeaveAt: sec(3), Offline: []simnet.Window{{From: sec(2), To: sec(4)}}},
			[]segment{{0, sec(2)}}},
	}
	for _, tc := range cases {
		got := onlineSegments(tc.spec)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: segment %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

// TestCompressScalesSchedules pins simnet.Compress: calendar fields
// shrink, machine character does not.
func TestCompressScalesSchedules(t *testing.T) {
	in := []simnet.DonorSpec{{
		Name:    "d0",
		Speed:   0.5,
		JoinAt:  10 * time.Hour,
		LeaveAt: 20 * time.Hour,
		Offline: []simnet.Window{{From: 12 * time.Hour, To: 14 * time.Hour}},
		Latency: 3 * time.Millisecond,
	}}
	out := simnet.Compress(in, 1.0/3600) // hours -> seconds
	if got, want := out[0].JoinAt, 10*time.Second; got != want {
		t.Errorf("JoinAt = %v, want %v", got, want)
	}
	if got, want := out[0].LeaveAt, 20*time.Second; got != want {
		t.Errorf("LeaveAt = %v, want %v", got, want)
	}
	if got, want := out[0].Offline[0], (simnet.Window{From: 12 * time.Second, To: 14 * time.Second}); got != want {
		t.Errorf("Offline[0] = %v, want %v", got, want)
	}
	if out[0].Speed != 0.5 || out[0].Latency != 3*time.Millisecond {
		t.Errorf("non-schedule fields changed: %+v", out[0])
	}
	if in[0].JoinAt != 10*time.Hour {
		t.Error("Compress mutated its input")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// TestThrottledStretch pins the compute-shaping model: a unit that takes
// t at full speed takes ~t/speed through the wrapper.
func TestThrottledStretch(t *testing.T) {
	rng := &lockedRand{rng: newTestRand()}
	wrap := throttleWrapper(simnet.DonorSpec{Speed: 0.25}, rng)
	if wrap == nil {
		t.Fatal("throttleWrapper returned nil for a slow spec")
	}
	a := wrap("x", sleepyAlg{d: 10 * time.Millisecond})
	start := time.Now()
	if _, err := a.ProcessCtx(context.Background(), nil); err != nil {
		t.Fatalf("ProcessCtx: %v", err)
	}
	if got := time.Since(start); got < 35*time.Millisecond {
		t.Errorf("speed 0.25 stretched a 10ms unit to only %v (want >= ~40ms)", got)
	}
	if w := throttleWrapper(simnet.DonorSpec{Speed: 1.0}, rng); w != nil {
		t.Error("full-speed unloaded spec should not be wrapped")
	}
}

// TestSwarmSharedBlobCache proves the fleet shares one blob cache: many
// donors, one shared blob, and the bulk channel serves it roughly once —
// not once per donor.
func TestSwarmSharedBlobCache(t *testing.T) {
	registerSleepy()
	shared := make([]byte, 1<<20)
	for i := range shared {
		shared[i] = byte(i)
	}
	srv, err := dist.ListenAndServe("127.0.0.1:0", "127.0.0.1:0",
		dist.WithPolicy(sched.Fixed{Size: 1}),
		dist.WithLeaseTTL(time.Hour),
		dist.WithExpiryScan(time.Hour),
		dist.WithWaitHint(10*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const donors = 16
	dm := newCountingDM(donors * 4)
	if err := srv.Submit(ctx, &dist.Problem{ID: "blob", DM: dm, SharedData: shared}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sw, err := New(Config{
		RPCAddr: srv.RPCAddr(),
		Specs:   simnet.Uniform(donors, 1.0, 0, 0, 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sw.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer sw.Stop()
	if _, err := srv.Wait(ctx, "blob"); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	sw.Stop()

	bs := srv.BulkStats()
	// One fetch fills the shared cache; every other donor hits it. Allow
	// a few races where two donors miss concurrently.
	if bs.BytesServed > 4*int64(len(shared)) {
		t.Errorf("bulk served %d bytes for a %d-byte shared blob across %d donors — cache not shared (stats %+v)",
			bs.BytesServed, len(shared), donors, bs)
	}
	if bs.BytesServed < int64(len(shared)) {
		t.Errorf("bulk served %d bytes; expected at least one full %d-byte fetch", bs.BytesServed, len(shared))
	}
}
