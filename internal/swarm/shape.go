package swarm

// Heterogeneity shaping: the two seams through which a simnet.DonorSpec
// becomes observable behaviour on the real runtime. Network shape rides
// the control connection (shapedConn, installed via dist.WithConnWrapper);
// compute shape rides the algorithm (throttled, installed via
// dist.WithAlgorithmWrapper). Neither touches dist itself — both are
// pure wrappers over the seams PR 9 opened.

import (
	"context"
	"net"
	"time"

	"repro/internal/dist"
	"repro/internal/simnet"
)

// shapedConn injects one-way latency and bandwidth cost into every
// write of the control connection. Shaping the write side only models a
// symmetric link at half fidelity — each RPC round trip pays the
// latency once, on the request leg — which is enough to spread a
// thousand donors' dispatch requests the way a real LAN would.
type shapedConn struct {
	net.Conn
	latency   time.Duration
	bandwidth float64 // bytes per second; 0 = infinite
}

func (c *shapedConn) Write(p []byte) (int, error) {
	d := c.latency
	if c.bandwidth > 0 && len(p) > 0 {
		d += time.Duration(float64(len(p)) / c.bandwidth * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// throttleWrapper returns an algorithm wrapper realising the spec's
// Speed and Load, or nil when the spec is a full-speed unloaded machine.
// Speeds above 1 cannot make the real algorithm faster and are treated
// as 1.
func throttleWrapper(spec simnet.DonorSpec, rng *lockedRand) func(string, dist.Algorithm) dist.Algorithm {
	if spec.Speed >= 1 && spec.Load <= 0 {
		return nil
	}
	return func(_ string, a dist.Algorithm) dist.Algorithm {
		return &throttled{inner: a, speed: spec.Speed, load: spec.Load, rng: rng}
	}
}

// throttled stretches each unit's compute time so the donor's effective
// throughput matches its spec: a unit the real algorithm finishes in t
// takes t/eff wall-clock, with eff = Speed * (1 - l) and l drawn per
// unit from [0, 2*Load] clamped to 0.95 — the same model simnet's
// virtual donors use, so harness runs and simulations are comparable.
type throttled struct {
	inner dist.Algorithm
	speed float64
	load  float64
	rng   *lockedRand
}

func (t *throttled) Init(shared []byte) error { return t.inner.Init(shared) }

func (t *throttled) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	start := time.Now()
	out, err := t.inner.ProcessCtx(ctx, payload)
	if err != nil {
		return out, err
	}
	if eff := t.eff(); eff < 1 {
		extra := time.Duration(float64(time.Since(start)) * (1/eff - 1))
		if !sleepCtx(ctx, extra) {
			return nil, ctx.Err()
		}
	}
	return out, nil
}

func (t *throttled) eff() float64 {
	load := t.load * 2 * t.rng.Float64()
	if load > 0.95 {
		load = 0.95
	}
	speed := t.speed
	if speed > 1 {
		speed = 1
	}
	eff := speed * (1 - load)
	// Floor the stretch at 1000x so a mis-specified donor cannot wedge a
	// wall-clock test.
	if eff < 0.001 {
		eff = 0.001
	}
	return eff
}
