package swarm

// Byzantine donors for the adversarial harness: algorithm wrappers that
// compute units like any donor but lie about the results, exercising the
// coordinator's quorum verification (dist.ServerOptions.VerifyFraction).
// Each mode models one attacker from the threat model:
//
//   - wrong-result: a hostile machine corrupting every answer it returns.
//   - lazy: a credit-seeking donor that skips the work entirely and
//     returns a constant, the classic volunteer-computing cheat.
//   - collude: a coordinated clique. Each member derives its wrong answer
//     from the payload alone, so all colluders submit byte-identical lies
//     and can validate each other if the server lets unproven donors form
//     a quorum among themselves.
//   - flaky: a machine that corrupts its first few results and then
//     behaves — the probation window must catch it before it earns trust.
//
// The wrappers compose over the throttle wrapper, so a malicious donor
// still honours its spec's speed and load.

import (
	"context"
	"sync/atomic"

	"repro/internal/dist"
)

// DonorSpec.Malice modes (see simnet.DonorSpec).
const (
	MaliceWrongResult = "wrong-result"
	MaliceLazy        = "lazy"
	MaliceCollude     = "collude"
	MaliceFlaky       = "flaky"
)

// flakyCorruptUnits is how many results a "flaky" donor corrupts before
// turning honest.
const flakyCorruptUnits = 3

// maliceWrapper returns the algorithm wrapper realising the spec's Malice
// mode, or nil for an honest donor. Unknown modes are treated as
// wrong-result: a misspelled attacker must not silently run honest and
// pass the suite.
func maliceWrapper(malice string) func(string, dist.Algorithm) dist.Algorithm {
	switch malice {
	case "":
		return nil
	case MaliceLazy:
		return func(_ string, a dist.Algorithm) dist.Algorithm {
			return &lazyAlg{inner: a}
		}
	case MaliceCollude:
		return func(_ string, a dist.Algorithm) dist.Algorithm {
			return &colludeAlg{inner: a}
		}
	case MaliceFlaky:
		return func(_ string, a dist.Algorithm) dist.Algorithm {
			return &flakyAlg{inner: a}
		}
	default: // MaliceWrongResult and anything unrecognised
		return func(_ string, a dist.Algorithm) dist.Algorithm {
			return &wrongResultAlg{inner: a}
		}
	}
}

// corrupt flips every byte of a result — deterministic, never equal to
// the honest answer, and (xor with a constant) different from collusion's
// payload-derived lies.
func corrupt(out []byte) []byte {
	bad := make([]byte, len(out))
	for i, b := range out {
		bad[i] = b ^ 0xA5
	}
	if len(bad) == 0 {
		bad = []byte{0xA5}
	}
	return bad
}

// wrongResultAlg computes the unit honestly (so timing looks right) and
// corrupts the result.
type wrongResultAlg struct{ inner dist.Algorithm }

func (w *wrongResultAlg) Init(shared []byte) error { return w.inner.Init(shared) }

func (w *wrongResultAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	out, err := w.inner.ProcessCtx(ctx, payload)
	if err != nil {
		return out, err
	}
	return corrupt(out), nil
}

// lazyAlg skips the computation entirely.
type lazyAlg struct{ inner dist.Algorithm }

func (l *lazyAlg) Init(shared []byte) error { return l.inner.Init(shared) }

func (l *lazyAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return []byte{0}, nil
}

// colludeAlg returns a wrong answer any colluder reproduces from the
// payload alone (FNV-1a over the input), so two colluding donors assigned
// replicas of the same unit agree with each other while disagreeing with
// every honest donor.
type colludeAlg struct{ inner dist.Algorithm }

func (c *colludeAlg) Init(shared []byte) error { return c.inner.Init(shared) }

func (c *colludeAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var h uint64 = 0xcbf29ce484222325
	for _, b := range payload {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	lie := make([]byte, 8)
	for i := range lie {
		lie[i] = byte(h >> (8 * i))
	}
	return lie, nil
}

// flakyAlg corrupts its first flakyCorruptUnits results, then computes
// honestly — the donor that must never earn trust from its early lies.
type flakyAlg struct {
	inner dist.Algorithm
	bad   atomic.Int64
}

func (f *flakyAlg) Init(shared []byte) error { return f.inner.Init(shared) }

func (f *flakyAlg) ProcessCtx(ctx context.Context, payload []byte) ([]byte, error) {
	out, err := f.inner.ProcessCtx(ctx, payload)
	if err != nil {
		return out, err
	}
	if f.bad.Add(1) <= flakyCorruptUnits {
		return corrupt(out), nil
	}
	return out, nil
}
