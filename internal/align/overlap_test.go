package align

import (
	"bytes"
	"testing"

	"repro/internal/seq"
)

func overlapParams(t *testing.T) Params {
	t.Helper()
	m, err := seq.MatrixByName("BLOSUM62")
	if err != nil {
		t.Fatal(err)
	}
	return Params{Matrix: m, Gap: Gap{Open: 10, Extend: 1}}
}

func TestOverlapContainedQuery(t *testing.T) {
	// Query planted inside a subject with random flanks: the overlap score
	// must equal the global score of query vs the core, and the traceback
	// must locate the core.
	g := seq.NewGenerator(seq.Protein, 5)
	query := g.Random("q", 80).Residues
	left := g.Random("l", 50).Residues
	right := g.Random("r", 40).Residues
	subject := append(append(append([]byte{}, left...), query...), right...)

	p := overlapParams(t)
	ov, err := New(AlgOverlap, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(AlgNeedlemanWunsch, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := ov.Score(query, subject)
	want := nw.Score(query, query) // perfect self-alignment of the core
	if got != want {
		t.Errorf("overlap score %d, want self-alignment score %d", got, want)
	}
	res := ov.Align(query, subject)
	if res.Score != got {
		t.Errorf("Align score %d != Score %d", res.Score, got)
	}
	if res.StartB != len(left) || res.EndB != len(left)+len(query) {
		t.Errorf("located core at [%d,%d), want [%d,%d)", res.StartB, res.EndB, len(left), len(left)+len(query))
	}
	if !bytes.Equal(res.AlignedA, query) || !bytes.Equal(res.AlignedB, query) {
		t.Error("aligned strings are not the gapless core")
	}
}

func TestOverlapAtLeastGlobal(t *testing.T) {
	// Free flanks can only help: overlap >= global for any pair.
	g := seq.NewGenerator(seq.Protein, 9)
	p := overlapParams(t)
	ov, _ := New(AlgOverlap, p, 0)
	nw, _ := New(AlgNeedlemanWunsch, p, 0)
	for i := 0; i < 20; i++ {
		a := g.Random("a", 30+i).Residues
		b := g.Random("b", 60+2*i).Residues
		if o, n := ov.Score(a, b), nw.Score(a, b); o < n {
			t.Fatalf("case %d: overlap %d < global %d", i, o, n)
		}
	}
}

func TestOverlapAtMostLocal(t *testing.T) {
	// The query-global constraint can only hurt relative to fully local SW.
	g := seq.NewGenerator(seq.Protein, 13)
	p := overlapParams(t)
	ov, _ := New(AlgOverlap, p, 0)
	sw, _ := New(AlgSmithWaterman, p, 0)
	for i := 0; i < 20; i++ {
		a := g.Random("a", 40).Residues
		b := g.Random("b", 80).Residues
		if o, s := ov.Score(a, b), sw.Score(a, b); o > s {
			t.Fatalf("case %d: overlap %d > local %d", i, o, s)
		}
	}
}

func TestOverlapIdentical(t *testing.T) {
	p := overlapParams(t)
	ov, _ := New(AlgOverlap, p, 0)
	nw, _ := New(AlgNeedlemanWunsch, p, 0)
	s := []byte("ACDEFGHIKLMNPQRSTVWY")
	if ov.Score(s, s) != nw.Score(s, s) {
		t.Errorf("self overlap %d != self global %d", ov.Score(s, s), nw.Score(s, s))
	}
}

func TestOverlapAlignConsistent(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 21)
	p := overlapParams(t)
	ov, _ := New(AlgOverlap, p, 0)
	for i := 0; i < 10; i++ {
		a := g.Random("a", 35).Residues
		mut := g.Mutate(&seq.Sequence{ID: "m", Residues: a}, "m", 0.1, 0.02)
		flank := g.Random("f", 25).Residues
		b := append(append([]byte{}, flank...), mut.Residues...)
		res := ov.Align(a, b)
		if res.Score != ov.Score(a, b) {
			t.Fatalf("case %d: Align score %d != Score %d", i, res.Score, ov.Score(a, b))
		}
		// The full query appears (gaps stripped) in AlignedA.
		gapless := bytes.ReplaceAll(res.AlignedA, []byte("-"), nil)
		if !bytes.Equal(gapless, a) {
			t.Fatalf("case %d: query not fully aligned", i)
		}
		// AlignedB gapless equals b[StartB:EndB].
		bg := bytes.ReplaceAll(res.AlignedB, []byte("-"), nil)
		if !bytes.Equal(bg, b[res.StartB:res.EndB]) {
			t.Fatalf("case %d: subject span mismatch", i)
		}
	}
}

func TestOverlapInDSearchConfigName(t *testing.T) {
	p := overlapParams(t)
	for _, name := range []string{"overlap", "semi-global", "glocal"} {
		if _, err := New(name, p, 0); err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
}
