package align

// Semi-global ("overlap", query-global/subject-local) alignment: the whole
// query must be aligned, but gaps that skip a prefix or suffix of the
// subject are free. This is the natural mode for database search when the
// query is expected to be contained in longer subject sequences — DSEARCH's
// third built-in algorithm class alongside global NW and local SW.
//
// Conventions follow nw.go: a is the query (fully consumed), b is the
// subject (free flanks); affine gaps via Gotoh's three matrices.

type overlapAligner struct{ p Params }

func (o *overlapAligner) Name() string { return AlgOverlap }

// Score computes the best semi-global score in O(lb) memory.
func (o *overlapAligner) Score(a, b []byte) int {
	gapO, gapE := o.p.Gap.Open, o.p.Gap.Extend
	m := o.p.Matrix
	la, lb := len(a), len(b)
	M := make([]int, lb+1)
	X := make([]int, lb+1)
	Y := make([]int, lb+1)
	prevM := make([]int, lb+1)
	prevX := make([]int, lb+1)
	prevY := make([]int, lb+1)

	// Row 0: skipping any subject prefix is free.
	M[0] = 0
	X[0], Y[0] = negInf, negInf
	for j := 1; j <= lb; j++ {
		M[j], X[j] = negInf, negInf
		Y[j] = 0
	}
	for i := 1; i <= la; i++ {
		copy(prevM, M)
		copy(prevX, X)
		copy(prevY, Y)
		M[0], Y[0] = negInf, negInf
		X[0] = -gapO - i*gapE // skipping query residues is NOT free
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := m.Score(ai, b[j-1])
			M[j] = safeAdd(max3(prevM[j-1], prevX[j-1], prevY[j-1]), sub)
			X[j] = max3(
				safeSub(prevM[j], gapO+gapE),
				safeSub(prevX[j], gapE),
				safeSub(prevY[j], gapO+gapE),
			)
			Y[j] = max3(
				safeSub(M[j-1], gapO+gapE),
				safeSub(Y[j-1], gapE),
				safeSub(X[j-1], gapO+gapE),
			)
		}
	}
	// Skipping any subject suffix is free: best over the last row.
	best := negInf
	for j := 0; j <= lb; j++ {
		best = max3(best, M[j], X[j])
	}
	return best
}

// Align computes the semi-global alignment with traceback. The Result's
// StartB/EndB mark the subject region the query aligned to; AlignedA/B
// cover only that region (flanks are implicit).
func (o *overlapAligner) Align(a, b []byte) *Result {
	gapO, gapE := o.p.Gap.Open, o.p.Gap.Extend
	mat := o.p.Matrix
	la, lb := len(a), len(b)
	w := lb + 1
	M := make([]int, (la+1)*w)
	X := make([]int, (la+1)*w)
	Y := make([]int, (la+1)*w)
	for k := range M {
		M[k], X[k], Y[k] = negInf, negInf, negInf
	}
	M[0] = 0
	for j := 1; j <= lb; j++ {
		Y[j] = 0 // free subject prefix, tracked in Y so the walk knows
	}
	for i := 1; i <= la; i++ {
		X[i*w] = -gapO - i*gapE
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := mat.Score(ai, b[j-1])
			p := (i-1)*w + (j - 1)
			M[i*w+j] = safeAdd(max3(M[p], X[p], Y[p]), sub)
			up := (i-1)*w + j
			X[i*w+j] = max3(
				safeSub(M[up], gapO+gapE),
				safeSub(X[up], gapE),
				safeSub(Y[up], gapO+gapE),
			)
			left := i*w + (j - 1)
			Y[i*w+j] = max3(
				safeSub(M[left], gapO+gapE),
				safeSub(Y[left], gapE),
				safeSub(X[left], gapO+gapE),
			)
		}
	}
	// End cell: best of the last row over M and X.
	endJ, best, state := 0, negInf, byte('M')
	for j := 0; j <= lb; j++ {
		if v := M[la*w+j]; v > best {
			best, endJ, state = v, j, 'M'
		}
		if v := X[la*w+j]; v > best {
			best, endJ, state = v, j, 'X'
		}
	}

	// Walk back from (la, endJ) until the query is fully consumed (i == 0);
	// the free prefix means we stop as soon as i hits 0 in state M/Y-start.
	i, j := la, endJ
	var ops []byte
	for i > 0 {
		switch state {
		case 'M':
			ops = append(ops, opSub)
			sub := mat.Score(a[i-1], b[j-1])
			p := (i-1)*w + (j - 1)
			cur := M[i*w+j]
			switch {
			case cur == safeAdd(M[p], sub):
				state = 'M'
			case cur == safeAdd(X[p], sub):
				state = 'X'
			default:
				state = 'Y'
			}
			i, j = i-1, j-1
		case 'X':
			ops = append(ops, opGapB)
			up := (i-1)*w + j
			cur := X[i*w+j]
			switch {
			case cur == safeSub(X[up], gapE):
				state = 'X'
			case cur == safeSub(M[up], gapO+gapE):
				state = 'M'
			default:
				state = 'Y'
			}
			i--
		case 'Y':
			// Free-prefix Y cells in row 0 are only reachable at i == 0, so
			// a Y here is a real (charged) gap in the query's alignment.
			ops = append(ops, opGapA)
			left := i*w + (j - 1)
			cur := Y[i*w+j]
			switch {
			case cur == safeSub(Y[left], gapE):
				state = 'Y'
			case cur == safeSub(M[left], gapO+gapE):
				state = 'M'
			default:
				state = 'X'
			}
			j--
		}
	}
	startB := j
	alignedA, alignedB := emit(a, b, 0, startB, reverseOps(ops))
	return &Result{
		Score:    best,
		AlignedA: alignedA, AlignedB: alignedB,
		StartA: 0, EndA: la,
		StartB: startB, EndB: endJ,
	}
}
