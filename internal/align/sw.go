package align

// Smith–Waterman local alignment with affine gap penalties. Identical
// recurrences to the global aligner except M is floored at zero and the
// result is the global maximum over all M cells.

type swAligner struct{ p Params }

func (s *swAligner) Name() string { return AlgSmithWaterman }

// Score computes the optimal local alignment score in O(lb) memory.
func (s *swAligner) Score(a, b []byte) int {
	gapO, gapE := s.p.Gap.Open, s.p.Gap.Extend
	mat := s.p.Matrix
	la, lb := len(a), len(b)
	M := make([]int, lb+1)
	X := make([]int, lb+1)
	Y := make([]int, lb+1)
	prevM := make([]int, lb+1)
	prevX := make([]int, lb+1)
	prevY := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		X[j], Y[j] = negInf, negInf
	}
	best := 0
	for i := 1; i <= la; i++ {
		copy(prevM, M)
		copy(prevX, X)
		copy(prevY, Y)
		M[0], X[0], Y[0] = 0, negInf, negInf
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := mat.Score(ai, b[j-1])
			newM := max2(0, safeAdd(max3(prevM[j-1], prevX[j-1], prevY[j-1]), sub))
			newX := max3(
				safeSub(prevM[j], gapO+gapE),
				safeSub(prevX[j], gapE),
				safeSub(prevY[j], gapO+gapE),
			)
			newY := max3(
				safeSub(M[j-1], gapO+gapE),
				safeSub(Y[j-1], gapE),
				safeSub(X[j-1], gapO+gapE),
			)
			M[j], X[j], Y[j] = newM, newX, newY
			if newM > best {
				best = newM
			}
		}
	}
	return best
}

// Align computes the optimal local alignment with traceback.
func (s *swAligner) Align(a, b []byte) *Result {
	gapO, gapE := s.p.Gap.Open, s.p.Gap.Extend
	mat := s.p.Matrix
	la, lb := len(a), len(b)
	w := lb + 1
	M := make([]int, (la+1)*w)
	X := make([]int, (la+1)*w)
	Y := make([]int, (la+1)*w)
	for k := range X {
		X[k], Y[k] = negInf, negInf
	}
	bestI, bestJ, best := 0, 0, 0
	for i := 1; i <= la; i++ {
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := mat.Score(ai, b[j-1])
			p := (i-1)*w + (j - 1)
			newM := max2(0, safeAdd(max3(M[p], X[p], Y[p]), sub))
			up := (i-1)*w + j
			newX := max3(
				safeSub(M[up], gapO+gapE),
				safeSub(X[up], gapE),
				safeSub(Y[up], gapO+gapE),
			)
			left := i*w + (j - 1)
			newY := max3(
				safeSub(M[left], gapO+gapE),
				safeSub(Y[left], gapE),
				safeSub(X[left], gapO+gapE),
			)
			M[i*w+j], X[i*w+j], Y[i*w+j] = newM, newX, newY
			if newM > best {
				best, bestI, bestJ = newM, i, j
			}
		}
	}
	if best == 0 {
		return &Result{Score: 0}
	}
	// Traceback from (bestI, bestJ) in state M until a zero M cell (local
	// alignments start and end in substitution columns).
	i, j := bestI, bestJ
	state := byte('M')
	var ops []byte
	for i > 0 && j > 0 {
		switch state {
		case 'M':
			if M[i*w+j] == 0 {
				goto done
			}
			{
				ops = append(ops, opSub)
				sub := mat.Score(a[i-1], b[j-1])
				p := (i-1)*w + (j - 1)
				cur := M[i*w+j]
				switch {
				case cur == safeAdd(M[p], sub) || (cur == sub && M[p] == 0):
					state = 'M'
				case cur == safeAdd(X[p], sub):
					state = 'X'
				default:
					state = 'Y'
				}
				i, j = i-1, j-1
			}
		case 'X':
			ops = append(ops, opGapB)
			up := (i-1)*w + j
			cur := X[i*w+j]
			switch {
			case cur == safeSub(X[up], gapE):
				state = 'X'
			case cur == safeSub(M[up], gapO+gapE):
				state = 'M'
			default:
				state = 'Y'
			}
			i--
		case 'Y':
			ops = append(ops, opGapA)
			left := i*w + (j - 1)
			cur := Y[i*w+j]
			switch {
			case cur == safeSub(Y[left], gapE):
				state = 'Y'
			case cur == safeSub(M[left], gapO+gapE):
				state = 'M'
			default:
				state = 'X'
			}
			j--
		}
	}
done:
	startA, startB := i, j
	alignedA, alignedB := emit(a, b, startA, startB, reverseOps(ops))
	return &Result{
		Score:    best,
		AlignedA: alignedA, AlignedB: alignedB,
		StartA: startA, EndA: bestI,
		StartB: startB, EndB: bestJ,
	}
}
