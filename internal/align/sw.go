package align

// Smith–Waterman local alignment with affine gap penalties. Identical
// recurrences to the global aligner except M is floored at zero and the
// result is the global maximum over all M cells.

type swAligner struct{ p Params }

func (s *swAligner) Name() string { return AlgSmithWaterman }

// Score computes the optimal local alignment score in O(lb) memory.
//
// This is dsearch's per-(query, chunk) hot loop, so unlike the traceback
// path it avoids the safeAdd/safeSub branches and the previous-row copies:
//
//   - One rolling row per DP matrix. The diagonal and left neighbours ride
//     in scalars (diag* carries M/X/Y of (i-1, j-1), left* of (i, j-1)), so
//     each cell touches three slice loads, three stores, and one score
//     lookup.
//   - Plain +/- instead of the -infinity-absorbing helpers. M is floored at
//     zero, so the gap recurrences always see one candidate >= -(gapO+gapE)
//     (newX >= M[j]-gapO-gapE, newY >= leftM-gapO-gapE) and a negInf value
//     survives at most one subtraction before losing every max. The worst
//     transient is negInf minus one gap penalty, nowhere near int overflow
//     (negInf is -2^40).
//   - The substitution row for a[i-1] is hoisted out of the inner loop
//     (Matrix.Row), making the per-cell score a byte-indexed load from a
//     256-entry slice.
func (s *swAligner) Score(a, b []byte) int {
	gapE := s.p.Gap.Extend
	gapOE := s.p.Gap.Open + gapE
	mat := s.p.Matrix
	la, lb := len(a), len(b)
	buf := make([]int, 3*(lb+1))
	M, X, Y := buf[:lb+1], buf[lb+1:2*(lb+1)], buf[2*(lb+1):]
	for j := 0; j <= lb; j++ {
		X[j], Y[j] = negInf, negInf
	}
	best := 0
	for i := 1; i <= la; i++ {
		row := mat.Row(a[i-1])
		// Column 0 of rows i-1 and i: M=0, X=Y=-inf.
		diagM, diagX, diagY := 0, negInf, negInf
		leftM, leftX, leftY := 0, negInf, negInf
		for j := 1; j <= lb; j++ {
			upM, upX, upY := M[j], X[j], Y[j]
			newM := max3(diagM, diagX, diagY) + int(row[b[j-1]])
			if newM < 0 {
				newM = 0
			}
			newX := max3(upM-gapOE, upX-gapE, upY-gapOE)
			newY := max3(leftM-gapOE, leftY-gapE, leftX-gapOE)
			M[j], X[j], Y[j] = newM, newX, newY
			diagM, diagX, diagY = upM, upX, upY
			leftM, leftX, leftY = newM, newX, newY
			if newM > best {
				best = newM
			}
		}
	}
	return best
}

// Align computes the optimal local alignment with traceback.
func (s *swAligner) Align(a, b []byte) *Result {
	gapO, gapE := s.p.Gap.Open, s.p.Gap.Extend
	mat := s.p.Matrix
	la, lb := len(a), len(b)
	w := lb + 1
	M := make([]int, (la+1)*w)
	X := make([]int, (la+1)*w)
	Y := make([]int, (la+1)*w)
	for k := range X {
		X[k], Y[k] = negInf, negInf
	}
	bestI, bestJ, best := 0, 0, 0
	for i := 1; i <= la; i++ {
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := mat.Score(ai, b[j-1])
			p := (i-1)*w + (j - 1)
			newM := max2(0, safeAdd(max3(M[p], X[p], Y[p]), sub))
			up := (i-1)*w + j
			newX := max3(
				safeSub(M[up], gapO+gapE),
				safeSub(X[up], gapE),
				safeSub(Y[up], gapO+gapE),
			)
			left := i*w + (j - 1)
			newY := max3(
				safeSub(M[left], gapO+gapE),
				safeSub(Y[left], gapE),
				safeSub(X[left], gapO+gapE),
			)
			M[i*w+j], X[i*w+j], Y[i*w+j] = newM, newX, newY
			if newM > best {
				best, bestI, bestJ = newM, i, j
			}
		}
	}
	if best == 0 {
		return &Result{Score: 0}
	}
	// Traceback from (bestI, bestJ) in state M until a zero M cell (local
	// alignments start and end in substitution columns).
	i, j := bestI, bestJ
	state := byte('M')
	var ops []byte
	for i > 0 && j > 0 {
		switch state {
		case 'M':
			if M[i*w+j] == 0 {
				goto done
			}
			{
				ops = append(ops, opSub)
				sub := mat.Score(a[i-1], b[j-1])
				p := (i-1)*w + (j - 1)
				cur := M[i*w+j]
				switch {
				case cur == safeAdd(M[p], sub) || (cur == sub && M[p] == 0):
					state = 'M'
				case cur == safeAdd(X[p], sub):
					state = 'X'
				default:
					state = 'Y'
				}
				i, j = i-1, j-1
			}
		case 'X':
			ops = append(ops, opGapB)
			up := (i-1)*w + j
			cur := X[i*w+j]
			switch {
			case cur == safeSub(X[up], gapE):
				state = 'X'
			case cur == safeSub(M[up], gapO+gapE):
				state = 'M'
			default:
				state = 'Y'
			}
			i--
		case 'Y':
			ops = append(ops, opGapA)
			left := i*w + (j - 1)
			cur := Y[i*w+j]
			switch {
			case cur == safeSub(Y[left], gapE):
				state = 'Y'
			case cur == safeSub(M[left], gapO+gapE):
				state = 'M'
			default:
				state = 'X'
			}
			j--
		}
	}
done:
	startA, startB := i, j
	alignedA, alignedB := emit(a, b, startA, startB, reverseOps(ops))
	return &Result{
		Score:    best,
		AlignedA: alignedA, AlignedB: alignedB,
		StartA: startA, EndA: bestI,
		StartB: startB, EndB: bestJ,
	}
}
