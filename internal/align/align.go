// Package align implements the rigorous pairwise sequence alignment
// algorithms DSEARCH offers as built-ins: Needleman–Wunsch global alignment
// (Needleman & Wunsch 1970), Smith–Waterman local alignment (Smith &
// Waterman 1981), both with affine gap penalties (Gotoh 1982), plus a banded
// global aligner and a linear-space Hirschberg aligner standing in for the
// paper's third built-in (the Crochemore et al. 2003 subquadratic method;
// see DESIGN.md for the substitution rationale).
//
// Score-only variants use O(min(m,n)) memory and are the hot path for
// database search; traceback variants additionally reconstruct the aligned
// strings.
package align

import (
	"fmt"

	"repro/internal/seq"
)

// Gap holds affine gap penalties. A gap of length L costs Open + L*Extend;
// both values must be >= 0 (they are subtracted). Set Open = 0 for linear
// gap costs.
type Gap struct {
	Open   int
	Extend int
}

// DefaultProteinGap is the conventional BLOSUM62 pairing (11/1).
var DefaultProteinGap = Gap{Open: 10, Extend: 1}

// DefaultDNAGap pairs with the +5/-4 nucleotide scheme.
var DefaultDNAGap = Gap{Open: 8, Extend: 2}

// Params bundles a scoring matrix with gap penalties.
type Params struct {
	Matrix *seq.Matrix
	Gap    Gap
}

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.Matrix == nil {
		return fmt.Errorf("align: nil scoring matrix")
	}
	if p.Gap.Open < 0 || p.Gap.Extend < 0 {
		return fmt.Errorf("align: gap penalties must be non-negative, got open=%d extend=%d", p.Gap.Open, p.Gap.Extend)
	}
	return nil
}

// Result is a scored pairwise alignment. For global alignments the Start/End
// ranges cover the whole sequences; for local alignments they delimit the
// optimal local segment (half-open, 0-based).
type Result struct {
	Score int
	// AlignedA and AlignedB are the gapped aligned strings ('-' for gaps);
	// empty for score-only calls.
	AlignedA, AlignedB []byte
	StartA, EndA       int
	StartB, EndB       int
}

// Identity returns the fraction of aligned columns that are exact matches.
// It returns 0 for score-only results.
func (r *Result) Identity() float64 {
	if len(r.AlignedA) == 0 {
		return 0
	}
	match := 0
	for i := range r.AlignedA {
		if r.AlignedA[i] == r.AlignedB[i] && r.AlignedA[i] != '-' {
			match++
		}
	}
	return float64(match) / float64(len(r.AlignedA))
}

// Columns returns the alignment length (number of columns), 0 for
// score-only results.
func (r *Result) Columns() int { return len(r.AlignedA) }

const negInf = int(-1) << 40 // effectively -infinity without overflow risk

// Algorithm names accepted by New.
const (
	AlgNeedlemanWunsch = "needleman-wunsch"
	AlgSmithWaterman   = "smith-waterman"
	AlgBanded          = "banded"
	AlgHirschberg      = "hirschberg"
	AlgOverlap         = "overlap"
)

// Aligner is a pairwise alignment algorithm: Score is the cheap score-only
// form used in database search; Align also reconstructs the alignment.
type Aligner interface {
	// Name returns the algorithm's registry name.
	Name() string
	// Score computes only the optimal alignment score.
	Score(a, b []byte) int
	// Align computes the optimal alignment with traceback.
	Align(a, b []byte) *Result
}

// New resolves an algorithm by name. The banded algorithm takes its
// bandwidth from extra (0 means auto: max(32, |len diff| + 16)).
func New(name string, p Params, bandwidth int) (Aligner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case AlgNeedlemanWunsch, "nw", "global":
		return &nwAligner{p: p}, nil
	case AlgSmithWaterman, "sw", "local":
		return &swAligner{p: p}, nil
	case AlgBanded:
		return &bandedAligner{p: p, band: bandwidth}, nil
	case AlgHirschberg:
		return &hirschbergAligner{p: p}, nil
	case AlgOverlap, "semi-global", "glocal":
		return &overlapAligner{p: p}, nil
	default:
		return nil, fmt.Errorf("align: unknown algorithm %q (have %s, %s, %s, %s, %s)",
			name, AlgNeedlemanWunsch, AlgSmithWaterman, AlgBanded, AlgHirschberg, AlgOverlap)
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int) int { return max2(max2(a, b), c) }
