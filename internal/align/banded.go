package align

// Banded global alignment: the affine-gap Needleman–Wunsch recurrence
// restricted to the diagonal band |i - j| <= band. This is the practical
// fast built-in standing in for the subquadratic method of Crochemore et
// al. (2003) cited by the paper; it is exact whenever the optimal path stays
// inside the band (always true for band >= max(la, lb)).

type bandedAligner struct {
	p    Params
	band int
}

func (ba *bandedAligner) Name() string { return AlgBanded }

func (ba *bandedAligner) bandwidth(la, lb int) int {
	b := ba.band
	if b <= 0 {
		d := la - lb
		if d < 0 {
			d = -d
		}
		b = d + 16
		if b < 32 {
			b = 32
		}
	}
	// The band must at least cover the length difference or no global path
	// exists inside it.
	d := la - lb
	if d < 0 {
		d = -d
	}
	if b < d+1 {
		b = d + 1
	}
	return b
}

// Score computes the banded global alignment score with rolling rows.
// Cells outside the band are -infinity.
func (ba *bandedAligner) Score(a, b []byte) int {
	gapO, gapE := ba.p.Gap.Open, ba.p.Gap.Extend
	mat := ba.p.Matrix
	la, lb := len(a), len(b)
	band := ba.bandwidth(la, lb)

	M := make([]int, lb+1)
	X := make([]int, lb+1)
	Y := make([]int, lb+1)
	prevM := make([]int, lb+1)
	prevX := make([]int, lb+1)
	prevY := make([]int, lb+1)

	for j := 0; j <= lb; j++ {
		M[j], X[j], Y[j] = negInf, negInf, negInf
	}
	M[0] = 0
	for j := 1; j <= lb && j <= band; j++ {
		Y[j] = -gapO - j*gapE
	}
	for i := 1; i <= la; i++ {
		copy(prevM, M)
		copy(prevX, X)
		copy(prevY, Y)
		lo := i - band
		if lo < 0 {
			lo = 0
		}
		hi := i + band
		if hi > lb {
			hi = lb
		}
		// Reset the band slice of this row. Cells outside [lo,hi] are never
		// read at this row because all reads below are band-guarded.
		for j := lo; j <= hi; j++ {
			M[j], X[j], Y[j] = negInf, negInf, negInf
		}
		if lo == 0 {
			X[0] = -gapO - i*gapE
		}
		ai := a[i-1]
		prevLo, prevHi := i-1-band, i-1+band
		for j := max2(lo, 1); j <= hi; j++ {
			sub := mat.Score(ai, b[j-1])
			if j-1 >= prevLo && j-1 <= prevHi {
				M[j] = safeAdd(max3(prevM[j-1], prevX[j-1], prevY[j-1]), sub)
			}
			if j >= prevLo && j <= prevHi {
				X[j] = max3(
					safeSub(prevM[j], gapO+gapE),
					safeSub(prevX[j], gapE),
					safeSub(prevY[j], gapO+gapE),
				)
			}
			if j-1 >= lo {
				Y[j] = max3(
					safeSub(M[j-1], gapO+gapE),
					safeSub(Y[j-1], gapE),
					safeSub(X[j-1], gapO+gapE),
				)
			}
		}
	}
	return max3(M[lb], X[lb], Y[lb])
}

// Align runs the banded recurrence with full traceback matrices (O(la*lb)
// storage for simplicity; the band saves compute, not memory) and shares the
// global traceback with the NW aligner — out-of-band cells stay -infinity.
func (ba *bandedAligner) Align(a, b []byte) *Result {
	la, lb := len(a), len(b)
	band := ba.bandwidth(la, lb)
	gapO, gapE := ba.p.Gap.Open, ba.p.Gap.Extend
	mat := ba.p.Matrix
	w := lb + 1
	M := make([]int, (la+1)*w)
	X := make([]int, (la+1)*w)
	Y := make([]int, (la+1)*w)
	for k := range M {
		M[k], X[k], Y[k] = negInf, negInf, negInf
	}
	M[0] = 0
	for j := 1; j <= lb && j <= band; j++ {
		Y[j] = -gapO - j*gapE
	}
	for i := 1; i <= la; i++ {
		if i <= band {
			X[i*w] = -gapO - i*gapE
		}
		ai := a[i-1]
		lo := max2(1, i-band)
		hi := lb
		if i+band < hi {
			hi = i + band
		}
		for j := lo; j <= hi; j++ {
			sub := mat.Score(ai, b[j-1])
			p := (i-1)*w + (j - 1)
			M[i*w+j] = safeAdd(max3(M[p], X[p], Y[p]), sub)
			up := (i-1)*w + j
			X[i*w+j] = max3(
				safeSub(M[up], gapO+gapE),
				safeSub(X[up], gapE),
				safeSub(Y[up], gapO+gapE),
			)
			left := i*w + (j - 1)
			Y[i*w+j] = max3(
				safeSub(M[left], gapO+gapE),
				safeSub(Y[left], gapE),
				safeSub(X[left], gapO+gapE),
			)
		}
	}
	ops, score := tracebackGlobal(a, b, M, X, Y, w, gapO, gapE, mat)
	alignedA, alignedB := emit(a, b, 0, 0, ops)
	return &Result{Score: score, AlignedA: alignedA, AlignedB: alignedB,
		StartA: 0, EndA: la, StartB: 0, EndB: lb}
}

// safeSub subtracts but keeps -infinity absorbing.
func safeSub(v, d int) int {
	if v <= negInf/2 {
		return negInf
	}
	return v - d
}
