package align

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

var dnaParams = Params{Matrix: seq.DNAUnit, Gap: Gap{Open: 0, Extend: 1}}
var dnaAffine = Params{Matrix: seq.DNASimple, Gap: Gap{Open: 8, Extend: 2}}
var protParams = Params{Matrix: seq.BLOSUM62, Gap: Gap{Open: 10, Extend: 1}}

func mustNew(t *testing.T, name string, p Params, band int) Aligner {
	t.Helper()
	a, err := New(name, p, band)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New("nw", Params{}, 0); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := New("nw", Params{Matrix: seq.DNAUnit, Gap: Gap{Open: -1}}, 0); err == nil {
		t.Error("negative gap accepted")
	}
	if _, err := New("bogus", dnaParams, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, n := range []string{"nw", "global", "needleman-wunsch", "sw", "local", "smith-waterman", "banded", "hirschberg"} {
		if _, err := New(n, dnaParams, 0); err != nil {
			t.Errorf("New(%q): %v", n, err)
		}
	}
}

func TestNWKnownValues(t *testing.T) {
	// Identity: score = len * match.
	nw := mustNew(t, "nw", dnaParams, 0)
	if got := nw.Score([]byte("ACGT"), []byte("ACGT")); got != 4 {
		t.Errorf("identical score = %d, want 4", got)
	}
	// One mismatch.
	if got := nw.Score([]byte("ACGT"), []byte("ACTT")); got != 2 {
		t.Errorf("one-mismatch score = %d, want 2", got)
	}
	// One gap (linear cost 1): 3 matches - 1 gap = 2.
	if got := nw.Score([]byte("ACGT"), []byte("ACT")); got != 2 {
		t.Errorf("one-gap score = %d, want 2", got)
	}
	// Empty vs non-empty: pure gap cost.
	if got := nw.Score([]byte(""), []byte("ACGT")); got != -4 {
		t.Errorf("empty-vs-ACGT = %d, want -4", got)
	}
	if got := nw.Score([]byte(""), []byte("")); got != 0 {
		t.Errorf("empty-vs-empty = %d, want 0", got)
	}
}

func TestNWAffineGapPreference(t *testing.T) {
	// With affine gaps one long gap must beat two short ones of equal total
	// length: compare AAATTTCCC vs AAACCC — deleting TTT contiguously costs
	// open+3*extend; any split costs 2*open + 3*extend.
	nw := mustNew(t, "nw", dnaAffine, 0)
	res := nw.Align([]byte("AAATTTCCC"), []byte("AAACCC"))
	want := 6*5 - (8 + 3*2) // 6 matches, one gap of 3
	if res.Score != want {
		t.Errorf("affine score = %d, want %d", res.Score, want)
	}
	// The gap must be contiguous in the traceback.
	gapRuns := 0
	in := false
	for i := range res.AlignedB {
		if res.AlignedB[i] == '-' {
			if !in {
				gapRuns++
				in = true
			}
		} else {
			in = false
		}
	}
	if gapRuns != 1 {
		t.Errorf("expected 1 contiguous gap run, got %d (%s / %s)", gapRuns, res.AlignedA, res.AlignedB)
	}
}

func TestNWAlignScoreMatchesScoreOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := seq.NewGenerator(seq.DNA, 11)
	nw := mustNew(t, "nw", dnaAffine, 0)
	for k := 0; k < 30; k++ {
		a := g.Random("a", 1+rng.Intn(80)).Residues
		b := g.Random("b", 1+rng.Intn(80)).Residues
		s1 := nw.Score(a, b)
		res := nw.Align(a, b)
		if s1 != res.Score {
			t.Fatalf("case %d: Score=%d Align.Score=%d (a=%s b=%s)", k, s1, res.Score, a, b)
		}
		if err := checkAlignmentConsistent(res, a, b, true); err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		if got := recomputeScore(res, dnaAffine); got != res.Score {
			t.Fatalf("case %d: traceback rescoring gives %d, reported %d\n%s\n%s",
				k, got, res.Score, res.AlignedA, res.AlignedB)
		}
	}
}

// checkAlignmentConsistent verifies the gapped strings reproduce the inputs.
func checkAlignmentConsistent(r *Result, a, b []byte, global bool) error {
	degapA := bytes.ReplaceAll(r.AlignedA, []byte("-"), nil)
	degapB := bytes.ReplaceAll(r.AlignedB, []byte("-"), nil)
	wantA := a
	wantB := b
	if !global {
		wantA = a[r.StartA:r.EndA]
		wantB = b[r.StartB:r.EndB]
	}
	if !bytes.Equal(degapA, wantA) {
		return fmt.Errorf("degapped A %q != input segment %q", degapA, wantA)
	}
	if !bytes.Equal(degapB, wantB) {
		return fmt.Errorf("degapped B %q != input segment %q", degapB, wantB)
	}
	if len(r.AlignedA) != len(r.AlignedB) {
		return fmt.Errorf("aligned lengths differ: %d vs %d", len(r.AlignedA), len(r.AlignedB))
	}
	for i := range r.AlignedA {
		if r.AlignedA[i] == '-' && r.AlignedB[i] == '-' {
			return fmt.Errorf("double gap at column %d", i)
		}
	}
	return nil
}

// recomputeScore rescans the aligned strings under the affine model.
func recomputeScore(r *Result, p Params) int {
	score := 0
	inGapA, inGapB := false, false
	for i := range r.AlignedA {
		ca, cb := r.AlignedA[i], r.AlignedB[i]
		switch {
		case ca == '-':
			if !inGapA {
				score -= p.Gap.Open
			}
			score -= p.Gap.Extend
			inGapA, inGapB = true, false
		case cb == '-':
			if !inGapB {
				score -= p.Gap.Open
			}
			score -= p.Gap.Extend
			inGapB, inGapA = true, false
		default:
			score += p.Matrix.Score(ca, cb)
			inGapA, inGapB = false, false
		}
	}
	return score
}

func TestSWKnownValues(t *testing.T) {
	sw := mustNew(t, "sw", dnaParams, 0)
	// Local alignment of a planted exact substring.
	if got := sw.Score([]byte("TTTTACGTTTTT"), []byte("CCACGTCC")); got != 4 {
		t.Errorf("planted ACGT score = %d, want 4", got)
	}
	// No positive-scoring pair at all -> 0.
	swProt := mustNew(t, "sw", Params{Matrix: seq.MatchMismatch("m", seq.DNA, -1, -2), Gap: Gap{Open: 1, Extend: 1}}, 0)
	if got := swProt.Score([]byte("ACGT"), []byte("ACGT")); got != 0 {
		t.Errorf("all-negative matrix score = %d, want 0", got)
	}
}

func TestSWNeverNegativeAndGEGlobal(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 21)
	rng := rand.New(rand.NewSource(21))
	sw := mustNew(t, "sw", protParams, 0)
	nw := mustNew(t, "nw", protParams, 0)
	for k := 0; k < 25; k++ {
		a := g.Random("a", 1+rng.Intn(60)).Residues
		b := g.Random("b", 1+rng.Intn(60)).Residues
		s := sw.Score(a, b)
		if s < 0 {
			t.Fatalf("SW score %d < 0", s)
		}
		if gl := nw.Score(a, b); s < gl {
			t.Fatalf("SW score %d < NW score %d — local must dominate global", s, gl)
		}
	}
}

func TestSWAlignConsistent(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 31)
	rng := rand.New(rand.NewSource(31))
	sw := mustNew(t, "sw", protParams, 0)
	for k := 0; k < 25; k++ {
		a := g.Random("a", 5+rng.Intn(60)).Residues
		b := g.Random("b", 5+rng.Intn(60)).Residues
		res := sw.Align(a, b)
		if res.Score != sw.Score(a, b) {
			t.Fatalf("case %d: Align score %d != Score %d", k, res.Score, sw.Score(a, b))
		}
		if res.Score == 0 {
			continue
		}
		if err := checkAlignmentConsistent(res, a, b, false); err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		if got := recomputeScore(res, protParams); got != res.Score {
			t.Fatalf("case %d: rescoring gives %d, reported %d\n%s\n%s", k, got, res.Score, res.AlignedA, res.AlignedB)
		}
	}
}

// swScoreReference is the pre-optimization Smith–Waterman score loop
// (previous-row copies, -infinity-absorbing arithmetic). The production
// Score carries neighbours in scalars and uses plain +/- on the grounds
// that a negInf value loses every max before it can drift; this reference
// pins that equivalence across matrices, gap regimes, and sequence shapes.
func swScoreReference(p Params, a, b []byte) int {
	gapO, gapE := p.Gap.Open, p.Gap.Extend
	mat := p.Matrix
	la, lb := len(a), len(b)
	M := make([]int, lb+1)
	X := make([]int, lb+1)
	Y := make([]int, lb+1)
	prevM := make([]int, lb+1)
	prevX := make([]int, lb+1)
	prevY := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		X[j], Y[j] = negInf, negInf
	}
	best := 0
	for i := 1; i <= la; i++ {
		copy(prevM, M)
		copy(prevX, X)
		copy(prevY, Y)
		M[0], X[0], Y[0] = 0, negInf, negInf
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := mat.Score(ai, b[j-1])
			newM := max2(0, safeAdd(max3(prevM[j-1], prevX[j-1], prevY[j-1]), sub))
			newX := max3(
				safeSub(prevM[j], gapO+gapE),
				safeSub(prevX[j], gapE),
				safeSub(prevY[j], gapO+gapE),
			)
			newY := max3(
				safeSub(M[j-1], gapO+gapE),
				safeSub(Y[j-1], gapE),
				safeSub(X[j-1], gapO+gapE),
			)
			M[j], X[j], Y[j] = newM, newX, newY
			if newM > best {
				best = newM
			}
		}
	}
	return best
}

func TestSWScoreMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		params Params
		alpha  *seq.Alphabet
	}{
		{"protein-affine", protParams, seq.Protein},
		{"dna-linear", dnaParams, seq.DNA},
		{"dna-affine", dnaAffine, seq.DNA},
		{"zero-extend", Params{Matrix: seq.BLOSUM62, Gap: Gap{Open: 12, Extend: 0}}, seq.Protein},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sw := mustNew(t, "sw", c.params, 0)
			g := seq.NewGenerator(c.alpha, 77)
			rng := rand.New(rand.NewSource(77))
			for k := 0; k < 40; k++ {
				a := g.Random("a", rng.Intn(80)).Residues // 0 length included
				b := g.Random("b", rng.Intn(80)).Residues
				want := swScoreReference(c.params, a, b)
				if got := sw.Score(a, b); got != want {
					t.Fatalf("case %d (la=%d lb=%d): Score %d != reference %d", k, len(a), len(b), got, want)
				}
			}
		})
	}
}

func TestSWFindsPlantedHomology(t *testing.T) {
	g := seq.NewGenerator(seq.Protein, 41)
	core := g.Random("core", 50)
	// Embed the core in two different random contexts with light mutation.
	mut := g.Mutate(core, "mut", 0.05, 0)
	hostA := append(append(g.Random("l", 40).Residues, core.Residues...), g.Random("r", 40).Residues...)
	hostB := append(append(g.Random("l2", 30).Residues, mut.Residues...), g.Random("r2", 30).Residues...)
	sw := mustNew(t, "sw", protParams, 0)
	res := sw.Align(hostA, hostB)
	// The local hit should roughly cover the planted 50-residue core.
	if res.EndA-res.StartA < 35 {
		t.Errorf("local hit too short: [%d,%d)", res.StartA, res.EndA)
	}
	if res.Identity() < 0.7 {
		t.Errorf("planted homology identity %.2f < 0.7", res.Identity())
	}
}

func TestBandedEqualsNWWhenBandCovers(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 51)
	rng := rand.New(rand.NewSource(51))
	nw := mustNew(t, "nw", dnaAffine, 0)
	for k := 0; k < 25; k++ {
		la := 1 + rng.Intn(70)
		lb := 1 + rng.Intn(70)
		a := g.Random("a", la).Residues
		b := g.Random("b", lb).Residues
		banded := mustNew(t, "banded", dnaAffine, la+lb+2)
		if bs, ns := banded.Score(a, b), nw.Score(a, b); bs != ns {
			t.Fatalf("case %d: banded(full band)=%d nw=%d (a=%s b=%s)", k, bs, ns, a, b)
		}
		br := banded.Align(a, b)
		if br.Score != nw.Score(a, b) {
			t.Fatalf("case %d: banded Align score %d != nw %d", k, br.Score, nw.Score(a, b))
		}
		if err := checkAlignmentConsistent(br, a, b, true); err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
	}
}

func TestBandedScoreMatchesAlign(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 61)
	rng := rand.New(rand.NewSource(61))
	for k := 0; k < 20; k++ {
		a := g.Random("a", 10+rng.Intn(60)).Residues
		b := g.Random("b", 10+rng.Intn(60)).Residues
		banded := mustNew(t, "banded", dnaAffine, 8)
		s := banded.Score(a, b)
		r := banded.Align(a, b)
		if s != r.Score {
			t.Fatalf("case %d: banded Score=%d Align=%d", k, s, r.Score)
		}
	}
}

func TestBandedNarrowIsLowerBound(t *testing.T) {
	// A narrow band can only miss the optimum, never exceed it.
	g := seq.NewGenerator(seq.DNA, 71)
	rng := rand.New(rand.NewSource(71))
	nw := mustNew(t, "nw", dnaAffine, 0)
	for k := 0; k < 20; k++ {
		a := g.Random("a", 30+rng.Intn(40)).Residues
		b := g.Random("b", 30+rng.Intn(40)).Residues
		banded := mustNew(t, "banded", dnaAffine, 3)
		if bs, ns := banded.Score(a, b), nw.Score(a, b); bs > ns {
			t.Fatalf("case %d: banded score %d exceeds optimal %d", k, bs, ns)
		}
	}
}

func TestHirschbergMatchesLinearNW(t *testing.T) {
	// With Open=0 the Hirschberg aligner must reproduce NW exactly.
	p := Params{Matrix: seq.DNAUnit, Gap: Gap{Open: 0, Extend: 1}}
	nw := mustNew(t, "nw", p, 0)
	hb := mustNew(t, "hirschberg", p, 0)
	g := seq.NewGenerator(seq.DNA, 81)
	rng := rand.New(rand.NewSource(81))
	for k := 0; k < 30; k++ {
		a := g.Random("a", rng.Intn(90)).Residues
		b := g.Random("b", rng.Intn(90)).Residues
		hs, ns := hb.Score(a, b), nw.Score(a, b)
		if hs != ns {
			t.Fatalf("case %d: hirschberg=%d nw=%d (|a|=%d |b|=%d)", k, hs, ns, len(a), len(b))
		}
		r := hb.Align(a, b)
		if r.Score != ns {
			t.Fatalf("case %d: hirschberg Align=%d nw=%d", k, r.Score, ns)
		}
		if err := checkAlignmentConsistent(r, a, b, true); err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
	}
}

func TestScoreSymmetry(t *testing.T) {
	// Symmetric matrix + symmetric gap model => score(a,b) == score(b,a).
	f := func(sa, sb uint8, seed int64) bool {
		g := seq.NewGenerator(seq.DNA, seed)
		a := g.Random("a", int(sa%64)).Residues
		b := g.Random("b", int(sb%64)).Residues
		nw, _ := New("nw", dnaAffine, 0)
		sw, _ := New("sw", dnaAffine, 0)
		return nw.Score(a, b) == nw.Score(b, a) && sw.Score(a, b) == sw.Score(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIdentityScoreIsMaximal(t *testing.T) {
	// Aligning a sequence against itself must yield the self-score, and no
	// other sequence of the same length may beat it (for NW with a matrix
	// whose diagonal dominates).
	f := func(n uint8, seed int64) bool {
		if n == 0 {
			return true
		}
		g := seq.NewGenerator(seq.Protein, seed)
		a := g.Random("a", int(n%100)+1).Residues
		nw, _ := New("nw", protParams, 0)
		self := nw.Score(a, a)
		want := 0
		for _, c := range a {
			want += seq.BLOSUM62.Score(c, c)
		}
		return self == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResultIdentityAndColumns(t *testing.T) {
	r := &Result{AlignedA: []byte("AC-T"), AlignedB: []byte("ACGT")}
	if r.Columns() != 4 {
		t.Errorf("Columns = %d", r.Columns())
	}
	if got := r.Identity(); got != 0.75 {
		t.Errorf("Identity = %v, want 0.75", got)
	}
	empty := &Result{}
	if empty.Identity() != 0 || empty.Columns() != 0 {
		t.Error("empty result should have zero identity and columns")
	}
}
