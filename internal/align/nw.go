package align

// Needleman–Wunsch global alignment with affine gap penalties (Gotoh's
// three-matrix formulation, full transition set). M[i][j] is the best score
// of an alignment of a[:i] and b[:j] ending in a substitution column; X ends
// in a gap in b (consuming a[i-1]); Y ends in a gap in a (consuming b[j-1]).
// All transitions between states are allowed; entering X or Y from any other
// state pays the gap-open penalty.

type nwAligner struct{ p Params }

func (n *nwAligner) Name() string { return AlgNeedlemanWunsch }

// Score computes the global alignment score in O(lb) memory (rolling rows).
func (n *nwAligner) Score(a, b []byte) int {
	gapO, gapE := n.p.Gap.Open, n.p.Gap.Extend
	m := n.p.Matrix
	la, lb := len(a), len(b)
	M := make([]int, lb+1)
	X := make([]int, lb+1) // gap in b (vertical move)
	Y := make([]int, lb+1) // gap in a (horizontal move)
	prevM := make([]int, lb+1)
	prevX := make([]int, lb+1)
	prevY := make([]int, lb+1)

	M[0] = 0
	X[0], Y[0] = negInf, negInf
	for j := 1; j <= lb; j++ {
		Y[j] = -gapO - j*gapE
		M[j], X[j] = negInf, negInf
	}
	for i := 1; i <= la; i++ {
		copy(prevM, M)
		copy(prevX, X)
		copy(prevY, Y)
		M[0], Y[0] = negInf, negInf
		X[0] = -gapO - i*gapE
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := m.Score(ai, b[j-1])
			M[j] = safeAdd(max3(prevM[j-1], prevX[j-1], prevY[j-1]), sub)
			X[j] = max3(
				safeSub(prevM[j], gapO+gapE),
				safeSub(prevX[j], gapE),
				safeSub(prevY[j], gapO+gapE),
			)
			Y[j] = max3(
				safeSub(M[j-1], gapO+gapE),
				safeSub(Y[j-1], gapE),
				safeSub(X[j-1], gapO+gapE),
			)
		}
	}
	return max3(M[lb], X[lb], Y[lb])
}

// safeAdd adds but keeps -infinity absorbing.
func safeAdd(v, d int) int {
	if v <= negInf/2 {
		return negInf
	}
	return v + d
}

// traceback op codes
const (
	opSub  byte = 'S' // consume one residue of each
	opGapB byte = 'D' // consume a[i-1], gap in b
	opGapA byte = 'I' // consume b[j-1], gap in a
)

// Align computes the full alignment with O(la*lb) traceback matrices.
func (n *nwAligner) Align(a, b []byte) *Result {
	gapO, gapE := n.p.Gap.Open, n.p.Gap.Extend
	mat := n.p.Matrix
	la, lb := len(a), len(b)
	w := lb + 1
	M := make([]int, (la+1)*w)
	X := make([]int, (la+1)*w)
	Y := make([]int, (la+1)*w)
	for k := range M {
		M[k], X[k], Y[k] = negInf, negInf, negInf
	}
	M[0] = 0
	for j := 1; j <= lb; j++ {
		Y[j] = -gapO - j*gapE
	}
	for i := 1; i <= la; i++ {
		X[i*w] = -gapO - i*gapE
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			sub := mat.Score(ai, b[j-1])
			p := (i-1)*w + (j - 1)
			M[i*w+j] = safeAdd(max3(M[p], X[p], Y[p]), sub)
			up := (i-1)*w + j
			X[i*w+j] = max3(
				safeSub(M[up], gapO+gapE),
				safeSub(X[up], gapE),
				safeSub(Y[up], gapO+gapE),
			)
			left := i*w + (j - 1)
			Y[i*w+j] = max3(
				safeSub(M[left], gapO+gapE),
				safeSub(Y[left], gapE),
				safeSub(X[left], gapO+gapE),
			)
		}
	}
	ops, score := tracebackGlobal(a, b, M, X, Y, w, gapO, gapE, n.p.Matrix)
	alignedA, alignedB := emit(a, b, 0, 0, ops)
	return &Result{
		Score:    score,
		AlignedA: alignedA, AlignedB: alignedB,
		StartA: 0, EndA: la, StartB: 0, EndB: lb,
	}
}

// tracebackGlobal walks the three matrices back from (la, lb) and returns
// the op list (in forward order) and the optimal score. Shared by the NW and
// banded aligners — for banded matrices, out-of-band cells are -infinity so
// the walk naturally stays inside the band.
func tracebackGlobal(a, b []byte, M, X, Y []int, w, gapO, gapE int, mat interface{ Score(x, y byte) int }) ([]byte, int) {
	la, lb := len(a), len(b)
	i, j := la, lb
	state := stateOfMax(M[i*w+j], X[i*w+j], Y[i*w+j])
	score := maxOfState(state, M[i*w+j], X[i*w+j], Y[i*w+j])
	var ops []byte
	for i > 0 || j > 0 {
		switch state {
		case 'M':
			if i == 0 {
				state = 'Y'
				continue
			}
			if j == 0 {
				state = 'X'
				continue
			}
			ops = append(ops, opSub)
			sub := mat.Score(a[i-1], b[j-1])
			p := (i-1)*w + (j - 1)
			cur := M[i*w+j]
			switch {
			case cur == safeAdd(M[p], sub):
				state = 'M'
			case cur == safeAdd(X[p], sub):
				state = 'X'
			default:
				state = 'Y'
			}
			i, j = i-1, j-1
		case 'X':
			if i == 0 {
				state = 'Y'
				continue
			}
			ops = append(ops, opGapB)
			up := (i-1)*w + j
			cur := X[i*w+j]
			switch {
			case cur == safeSub(X[up], gapE):
				state = 'X'
			case cur == safeSub(M[up], gapO+gapE):
				state = 'M'
			default:
				state = 'Y'
			}
			i--
		case 'Y':
			if j == 0 {
				state = 'X'
				continue
			}
			ops = append(ops, opGapA)
			left := i*w + (j - 1)
			cur := Y[i*w+j]
			switch {
			case cur == safeSub(Y[left], gapE):
				state = 'Y'
			case cur == safeSub(M[left], gapO+gapE):
				state = 'M'
			default:
				state = 'X'
			}
			j--
		}
	}
	return reverseOps(ops), score
}

func stateOfMax(m, x, y int) byte {
	if m >= x && m >= y {
		return 'M'
	}
	if x >= y {
		return 'X'
	}
	return 'Y'
}

func maxOfState(s byte, m, x, y int) int {
	switch s {
	case 'M':
		return m
	case 'X':
		return x
	default:
		return y
	}
}

func reverseOps(ops []byte) []byte {
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	return ops
}

// emit materialises aligned strings from an op list, starting at offsets
// (ia, ib) into a and b.
func emit(a, b []byte, ia, ib int, ops []byte) (alignedA, alignedB []byte) {
	alignedA = make([]byte, 0, len(ops))
	alignedB = make([]byte, 0, len(ops))
	for _, op := range ops {
		switch op {
		case opSub:
			alignedA = append(alignedA, a[ia])
			alignedB = append(alignedB, b[ib])
			ia++
			ib++
		case opGapB:
			alignedA = append(alignedA, a[ia])
			alignedB = append(alignedB, '-')
			ia++
		case opGapA:
			alignedA = append(alignedA, '-')
			alignedB = append(alignedB, b[ib])
			ib++
		}
	}
	return alignedA, alignedB
}
