package align

// Hirschberg's divide-and-conquer global alignment: full traceback in
// O(min(la,lb)) working memory and O(la*lb) time. This implementation uses a
// linear gap model — each gap column costs Gap.Open + Gap.Extend, so a
// single-residue gap costs the same as in the affine model, and for
// Gap.Open == 0 it is exactly equivalent to Needleman–Wunsch. It serves as
// the memory-frugal built-in for very long sequences, standing in for the
// paper's third algorithm (see DESIGN.md).

type hirschbergAligner struct{ p Params }

func (h *hirschbergAligner) Name() string { return AlgHirschberg }

func (h *hirschbergAligner) gapCost() int { return h.p.Gap.Open + h.p.Gap.Extend }

// Score computes the linear-gap global score in O(lb) memory.
func (h *hirschbergAligner) Score(a, b []byte) int {
	row := h.lastRow(a, b)
	return row[len(b)]
}

// lastRow returns the final DP row of the linear-gap NW matrix for a vs b.
func (h *hirschbergAligner) lastRow(a, b []byte) []int {
	g := h.gapCost()
	mat := h.p.Matrix
	lb := len(b)
	cur := make([]int, lb+1)
	prev := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		cur[j] = -j * g
	}
	for i := 1; i <= len(a); i++ {
		prev, cur = cur, prev
		cur[0] = -i * g
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			cur[j] = max3(
				prev[j-1]+mat.Score(ai, b[j-1]),
				prev[j]-g,
				cur[j-1]-g,
			)
		}
	}
	return cur
}

// lastRowRev is lastRow on the reversed sequences (suffix scores).
func (h *hirschbergAligner) lastRowRev(a, b []byte) []int {
	ra := make([]byte, len(a))
	rb := make([]byte, len(b))
	for i := range a {
		ra[len(a)-1-i] = a[i]
	}
	for i := range b {
		rb[len(b)-1-i] = b[i]
	}
	return h.lastRow(ra, rb)
}

// Align reconstructs the full alignment recursively.
func (h *hirschbergAligner) Align(a, b []byte) *Result {
	ops := h.solve(a, b)
	alignedA, alignedB := emit(a, b, 0, 0, ops)
	return &Result{
		Score:    h.scoreOps(a, b, ops),
		AlignedA: alignedA, AlignedB: alignedB,
		StartA: 0, EndA: len(a), StartB: 0, EndB: len(b),
	}
}

func (h *hirschbergAligner) scoreOps(a, b []byte, ops []byte) int {
	g := h.gapCost()
	mat := h.p.Matrix
	score, ia, ib := 0, 0, 0
	for _, op := range ops {
		switch op {
		case opSub:
			score += mat.Score(a[ia], b[ib])
			ia++
			ib++
		case opGapB:
			score -= g
			ia++
		case opGapA:
			score -= g
			ib++
		}
	}
	return score
}

func (h *hirschbergAligner) solve(a, b []byte) []byte {
	la, lb := len(a), len(b)
	switch {
	case la == 0:
		ops := make([]byte, lb)
		for i := range ops {
			ops[i] = opGapA
		}
		return ops
	case lb == 0:
		ops := make([]byte, la)
		for i := range ops {
			ops[i] = opGapB
		}
		return ops
	case la == 1 || lb == 1:
		// Base case: run the quadratic aligner on the tiny problem.
		return h.smallAlign(a, b)
	}
	mid := la / 2
	left := h.lastRow(a[:mid], b)
	right := h.lastRowRev(a[mid:], b)
	// Pick the split point of b maximising prefix + suffix score.
	bestJ, bestV := 0, negInf
	for j := 0; j <= lb; j++ {
		v := left[j] + right[lb-j]
		if v > bestV {
			bestV, bestJ = v, j
		}
	}
	opsL := h.solve(a[:mid], b[:bestJ])
	opsR := h.solve(a[mid:], b[bestJ:])
	return append(opsL, opsR...)
}

// smallAlign runs full quadratic linear-gap DP with traceback; only used on
// problems where one dimension is 1.
func (h *hirschbergAligner) smallAlign(a, b []byte) []byte {
	g := h.gapCost()
	mat := h.p.Matrix
	la, lb := len(a), len(b)
	w := lb + 1
	D := make([]int, (la+1)*w)
	for j := 0; j <= lb; j++ {
		D[j] = -j * g
	}
	for i := 1; i <= la; i++ {
		D[i*w] = -i * g
		for j := 1; j <= lb; j++ {
			D[i*w+j] = max3(
				D[(i-1)*w+j-1]+mat.Score(a[i-1], b[j-1]),
				D[(i-1)*w+j]-g,
				D[i*w+j-1]-g,
			)
		}
	}
	var ops []byte
	i, j := la, lb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && D[i*w+j] == D[(i-1)*w+j-1]+mat.Score(a[i-1], b[j-1]):
			ops = append(ops, opSub)
			i, j = i-1, j-1
		case i > 0 && D[i*w+j] == D[(i-1)*w+j]-g:
			ops = append(ops, opGapB)
			i--
		default:
			ops = append(ops, opGapA)
			j--
		}
	}
	return reverseOps(ops)
}
