package align

import (
	"testing"

	"repro/internal/seq"
)

func benchPair(b *testing.B, n int) ([]byte, []byte) {
	b.Helper()
	g := seq.NewGenerator(seq.Protein, 7)
	a := g.Random("a", n)
	mut := g.Mutate(a, "b", 0.15, 0.02)
	return a.Residues, mut.Residues
}

func benchParams(b *testing.B) Params {
	b.Helper()
	m, err := seq.MatrixByName("BLOSUM62")
	if err != nil {
		b.Fatal(err)
	}
	return Params{Matrix: m, Gap: Gap{Open: 10, Extend: 1}}
}

func benchScore(b *testing.B, name string, band int) {
	x, y := benchPair(b, 300)
	al, err := New(name, benchParams(b), band)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(x)) * int64(len(y)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Score(x, y)
	}
}

func BenchmarkNWScore300(b *testing.B)         { benchScore(b, AlgNeedlemanWunsch, 0) }
func BenchmarkSWScore300(b *testing.B)         { benchScore(b, AlgSmithWaterman, 0) }
func BenchmarkBandedScore300(b *testing.B)     { benchScore(b, AlgBanded, 48) }
func BenchmarkHirschbergScore300(b *testing.B) { benchScore(b, AlgHirschberg, 0) }

func BenchmarkSWAlign300(b *testing.B) {
	x, y := benchPair(b, 300)
	al, err := New(AlgSmithWaterman, benchParams(b), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Align(x, y)
	}
}
