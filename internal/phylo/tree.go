// Package phylo provides the phylogenetic-tree substrate for DPRml: tree
// data structures, Newick I/O, the tree-surgery operations stepwise
// insertion needs (edge enumeration, leaf insertion/removal), distance-based
// baseline methods (neighbor joining), and Robinson–Foulds tree comparison.
//
// Trees are rooted data structures; an unrooted binary tree is represented
// in the fastDNAml convention as a rooted tree whose root has three
// children (a trifurcation). Branch lengths live on child nodes (length of
// the edge to the parent).
package phylo

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a tree vertex. Leaves have a Name and no children. Length is the
// branch length of the edge connecting the node to its parent (ignored on
// the root).
type Node struct {
	Name     string
	Length   float64
	Children []*Node
	Parent   *Node
	// ID is a stable small-integer identifier assigned by Tree.Index; -1
	// until indexed. Likelihood code uses it to address per-node buffers.
	ID int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AddChild links c under n.
func (n *Node) AddChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// removeChild unlinks c from n (c keeps its Parent pointer for the caller
// to fix).
func (n *Node) removeChild(c *Node) bool {
	for i, x := range n.Children {
		if x == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// Tree is a rooted tree. All mutation goes through methods that keep parent
// pointers consistent.
type Tree struct {
	Root *Node
}

// NewLeaf returns a leaf node.
func NewLeaf(name string, length float64) *Node {
	return &Node{Name: name, Length: length, ID: -1}
}

// NewInternal returns an internal node over the given children.
func NewInternal(length float64, children ...*Node) *Node {
	n := &Node{Length: length, ID: -1}
	for _, c := range children {
		n.AddChild(c)
	}
	return n
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// WalkPost visits every node in post-order (children before parents) — the
// order the pruning algorithm needs.
func (t *Tree) WalkPost(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		visit(n)
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// Leaves returns all leaf nodes in pre-order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
		}
	})
	return out
}

// LeafNames returns the sorted names of all leaves.
func (t *Tree) LeafNames() []string {
	var out []string
	for _, l := range t.Leaves() {
		out = append(out, l.Name)
	}
	sort.Strings(out)
	return out
}

// NLeaves returns the number of leaves.
func (t *Tree) NLeaves() int { return len(t.Leaves()) }

// NNodes returns the total number of nodes.
func (t *Tree) NNodes() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// Index assigns consecutive IDs: leaves first (in pre-order), then internal
// nodes. Returns the node count. Likelihood buffers are addressed by these
// IDs.
func (t *Tree) Index() int {
	id := 0
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			n.ID = id
			id++
		}
	})
	t.Walk(func(n *Node) {
		if !n.IsLeaf() {
			n.ID = id
			id++
		}
	})
	return id
}

// Clone deep-copies the tree.
func (t *Tree) Clone() *Tree {
	var rec func(*Node) *Node
	rec = func(n *Node) *Node {
		c := &Node{Name: n.Name, Length: n.Length, ID: n.ID}
		for _, ch := range n.Children {
			cc := rec(ch)
			cc.Parent = c
			c.Children = append(c.Children, cc)
		}
		return c
	}
	if t.Root == nil {
		return &Tree{}
	}
	return &Tree{Root: rec(t.Root)}
}

// Edge identifies the edge between a node and its parent by the child node.
type Edge struct{ Child *Node }

// Edges returns every edge of the tree (one per non-root node), in
// pre-order. For stepwise insertion these are the candidate attachment
// points.
func (t *Tree) Edges() []Edge {
	var out []Edge
	t.Walk(func(n *Node) {
		if n.Parent != nil {
			out = append(out, Edge{Child: n})
		}
	})
	return out
}

// InsertLeafOnEdge splits the edge above pos.Child with a new internal node
// and hangs a new leaf from it:
//
//	parent ──> child        becomes   parent ──> mid ──> child
//	                                              └────> leaf
//
// The old branch length is split in half; the new leaf gets newLeafLen.
// The tree is modified in place; callers that need the original intact
// should Clone first. Returns the new leaf node.
func (t *Tree) InsertLeafOnEdge(pos Edge, name string, newLeafLen float64) (*Node, error) {
	child := pos.Child
	parent := child.Parent
	if parent == nil {
		return nil, fmt.Errorf("phylo: cannot insert on the root's (nonexistent) parent edge")
	}
	if !parent.removeChild(child) {
		return nil, fmt.Errorf("phylo: corrupt tree: %q not a child of its parent", child.Name)
	}
	half := child.Length / 2
	mid := &Node{Length: half, ID: -1}
	child.Length = half
	mid.AddChild(child)
	leaf := NewLeaf(name, newLeafLen)
	mid.AddChild(leaf)
	parent.AddChild(mid)
	return leaf, nil
}

// RemoveLeaf removes the named leaf and splices out its (now degree-2)
// parent, restoring a clean topology. It errors if the leaf does not exist
// or the tree would degenerate (fewer than 2 remaining leaves).
func (t *Tree) RemoveLeaf(name string) error {
	var leaf *Node
	t.Walk(func(n *Node) {
		if n.IsLeaf() && n.Name == name {
			leaf = n
		}
	})
	if leaf == nil {
		return fmt.Errorf("phylo: leaf %q not found", name)
	}
	parent := leaf.Parent
	if parent == nil {
		return fmt.Errorf("phylo: cannot remove the root")
	}
	parent.removeChild(leaf)
	// Splice out parent if it became degree-2 (one child + its own parent).
	if len(parent.Children) == 1 && parent.Parent != nil {
		only := parent.Children[0]
		only.Length += parent.Length
		gp := parent.Parent
		gp.removeChild(parent)
		gp.AddChild(only)
	} else if len(parent.Children) == 1 && parent.Parent == nil {
		// Root with a single child: promote the child to root.
		only := parent.Children[0]
		only.Parent = nil
		t.Root = only
	}
	return nil
}

// FindLeaf returns the leaf with the given name, or nil.
func (t *Tree) FindLeaf(name string) *Node {
	var found *Node
	t.Walk(func(n *Node) {
		if n.IsLeaf() && n.Name == name {
			found = n
		}
	})
	return found
}

// TotalLength returns the sum of all branch lengths.
func (t *Tree) TotalLength() float64 {
	var sum float64
	t.Walk(func(n *Node) {
		if n.Parent != nil {
			sum += n.Length
		}
	})
	return sum
}

// Validate checks structural invariants: parent pointers consistent,
// no duplicate leaf names, non-negative branch lengths.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("phylo: nil root")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("phylo: root has a parent")
	}
	seen := make(map[string]bool)
	var err error
	t.Walk(func(n *Node) {
		if err != nil {
			return
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("phylo: broken parent pointer at %q", c.Name)
				return
			}
		}
		if n.IsLeaf() {
			if n.Name == "" {
				err = fmt.Errorf("phylo: unnamed leaf")
				return
			}
			if seen[n.Name] {
				err = fmt.Errorf("phylo: duplicate leaf name %q", n.Name)
				return
			}
			seen[n.Name] = true
		}
		if n.Length < 0 {
			err = fmt.Errorf("phylo: negative branch length %g at %q", n.Length, n.Name)
		}
	})
	return err
}

// String renders the tree in Newick format.
func (t *Tree) String() string {
	var b strings.Builder
	writeNewick(&b, t.Root, true)
	b.WriteByte(';')
	return b.String()
}

// Triplet builds the unique unrooted 3-leaf starting tree for stepwise
// insertion: a trifurcating root with three leaf children.
func Triplet(a, b, c string, length float64) *Tree {
	return &Tree{Root: NewInternal(0,
		NewLeaf(a, length), NewLeaf(b, length), NewLeaf(c, length))}
}
