package phylo

import (
	"math"
	"testing"
)

func TestRerootPreservesTopologyAndLength(t *testing.T) {
	orig := mustParseCons(t, "((A:1,B:2):0.5,(C:1.5,D:0.5):1,E:2);")
	totalLen := orig.TotalLength()
	for _, e := range orig.Edges() {
		rooted, err := orig.RerootAtEdge(e)
		if err != nil {
			t.Fatalf("reroot at %v: %v", e.Child.Name, err)
		}
		if err := rooted.Validate(); err != nil {
			t.Fatal(err)
		}
		if rooted.NLeaves() != orig.NLeaves() {
			t.Fatalf("leaf count changed: %d", rooted.NLeaves())
		}
		if got := rooted.TotalLength(); math.Abs(got-totalLen) > 1e-9 {
			t.Errorf("total length changed: %g vs %g", got, totalLen)
		}
		if !SameTopology(rooted, orig) {
			t.Errorf("unrooted topology changed after rerooting at %s:\n %s\n %s",
				e.Child.Name, rooted, orig)
		}
		if len(rooted.Root.Children) != 2 {
			t.Errorf("new root has %d children, want 2", len(rooted.Root.Children))
		}
	}
	// Original must be untouched (reroot works on a clone).
	if math.Abs(orig.TotalLength()-totalLen) > 1e-12 {
		t.Error("rerooting mutated the source tree")
	}
}

func TestMidpointRootBalanced(t *testing.T) {
	// Caterpillar with a long edge: ((A:1,B:1):4,C:1,D:1); the longest
	// path is A-B? No: A..C = 1+4+1 = 6, A..B = 2. Longest leaf pair is
	// A-C or A-D (6) or B-C/B-D (6); midpoint (3 from A) falls on the
	// internal edge of length 4.
	tr := mustParseCons(t, "((A:1,B:1):4,C:1,D:1);")
	rooted, err := tr.MidpointRoot()
	if err != nil {
		t.Fatal(err)
	}
	if err := rooted.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two root-to-deepest-leaf distances must be equal (that is the
	// midpoint property).
	depths := leafDepths(rooted)
	var max1, max2 float64
	for _, c := range rooted.Root.Children {
		sub := deepestUnder(c, depths)
		if sub > max1 {
			max1, max2 = sub, max1
		} else if sub > max2 {
			max2 = sub
		}
	}
	if math.Abs(max1-max2) > 1e-9 {
		t.Errorf("midpoint root unbalanced: %g vs %g\n%s", max1, max2, rooted)
	}
	if !SameTopology(rooted, tr) {
		t.Error("midpoint rooting changed the unrooted topology")
	}
}

// deepestUnder returns the greatest root-depth among leaves under n.
func deepestUnder(n *Node, depths map[*Node]float64) float64 {
	best := math.Inf(-1)
	var rec func(*Node)
	rec = func(m *Node) {
		if m.IsLeaf() {
			if d := depths[m]; d > best {
				best = d
			}
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return best
}

func TestMidpointRootOnBSide(t *testing.T) {
	// Longest path midpoint on the other side of the LCA.
	tr := mustParseCons(t, "((A:0.5,B:6):1,C:0.5,D:0.5);")
	rooted, err := tr.MidpointRoot()
	if err != nil {
		t.Fatal(err)
	}
	depths := leafDepths(rooted)
	var maxes []float64
	for _, c := range rooted.Root.Children {
		maxes = append(maxes, deepestUnder(c, depths))
	}
	if len(maxes) != 2 || math.Abs(maxes[0]-maxes[1]) > 1e-9 {
		t.Errorf("unbalanced midpoint root: %v\n%s", maxes, rooted)
	}
}

func TestMidpointRootErrors(t *testing.T) {
	one := &Tree{Root: NewLeaf("A", 0)}
	if _, err := one.MidpointRoot(); err == nil {
		t.Error("single-leaf tree accepted")
	}
}

func TestRerootAtRootRejected(t *testing.T) {
	tr := mustParseCons(t, "(A:1,B:1,C:1);")
	if _, err := tr.RerootAtEdge(Edge{Child: tr.Root}); err == nil {
		t.Error("rerooting at the root accepted")
	}
}
