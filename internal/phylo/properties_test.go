package phylo

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBinaryTree grows a random binary tree over n leaves by repeated
// insertion (the same operation stepwise insertion uses).
func randomBinaryTree(n int, seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	t := Triplet("L0", "L1", "L2", 0.1+rng.Float64())
	for i := 3; i < n; i++ {
		edges := t.Edges()
		leaf, err := t.InsertLeafOnEdge(edges[rng.Intn(len(edges))], fmt.Sprintf("L%d", i), 0.05+rng.Float64())
		if err != nil {
			panic(err)
		}
		_ = leaf
	}
	return t
}

// TestNewickRoundTripProperty: String -> Parse preserves topology, leaf
// set and total length for random trees of random size.
func TestNewickRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 3
		tr := randomBinaryTree(n, seed)
		back, err := ParseNewick(tr.String())
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if back.NLeaves() != tr.NLeaves() {
			return false
		}
		if !SameTopology(back, tr) {
			return false
		}
		d := back.TotalLength() - tr.TotalLength()
		return d < 1e-9 && d > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestInsertRemoveInverseProperty: inserting a leaf then removing it
// restores the original topology for random trees and edges.
func TestInsertRemoveInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		n := int(nRaw%20) + 4
		tr := randomBinaryTree(n, seed)
		orig := tr.Clone()
		edges := tr.Edges()
		if _, err := tr.InsertLeafOnEdge(edges[int(eRaw)%len(edges)], "EXTRA", 0.2); err != nil {
			return false
		}
		if tr.NLeaves() != n+1 {
			return false
		}
		if err := tr.RemoveLeaf("EXTRA"); err != nil {
			return false
		}
		return SameTopology(tr, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConsensusIdempotentProperty: the majority consensus of identical
// copies of a random tree is that tree.
func TestConsensusIdempotentProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%25) + 4
		k := int(kRaw%5) + 1
		tr := randomBinaryTree(n, seed)
		trees := make([]*Tree, k)
		for i := range trees {
			trees[i] = tr.Clone()
		}
		cons, err := MajorityRuleConsensus(trees)
		if err != nil {
			t.Logf("consensus: %v", err)
			return false
		}
		return SameTopology(cons, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRerootInvariantProperty: rerooting at any edge preserves the
// unrooted topology and the bipartition set for random trees.
func TestRerootInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		n := int(nRaw%20) + 4
		tr := randomBinaryTree(n, seed)
		edges := tr.Edges()
		rooted, err := tr.RerootAtEdge(edges[int(eRaw)%len(edges)])
		if err != nil {
			t.Logf("reroot: %v", err)
			return false
		}
		return SameTopology(rooted, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRFTriangleInequalityProperty: RF is a metric; check symmetry,
// identity and the triangle inequality on random tree triples.
func TestRFMetricProperty(t *testing.T) {
	f := func(s1, s2, s3 int64, nRaw uint8) bool {
		n := int(nRaw%15) + 4
		a := randomBinaryTree(n, s1)
		b := randomBinaryTree(n, s2)
		c := randomBinaryTree(n, s3)
		ab, err1 := RobinsonFoulds(a, b)
		ba, err2 := RobinsonFoulds(b, a)
		if err1 != nil || err2 != nil || ab != ba {
			return false
		}
		aa, _ := RobinsonFoulds(a, a)
		if aa != 0 {
			return false
		}
		bc, _ := RobinsonFoulds(b, c)
		ac, _ := RobinsonFoulds(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
