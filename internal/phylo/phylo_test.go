package phylo

import (
	"math"
	"strings"
	"testing"

	"repro/internal/seq"
)

func mustParse(t *testing.T, s string) *Tree {
	t.Helper()
	tr, err := ParseNewick(s)
	if err != nil {
		t.Fatalf("ParseNewick(%q): %v", s, err)
	}
	return tr
}

func TestNewickRoundTrip(t *testing.T) {
	cases := []string{
		"((A:0.1,B:0.2):0.05,C:0.3);",
		"(A:1,B:2,C:3);",
		"(((A:0.5,B:0.5):0.5,C:1):0.1,(D:0.4,E:0.6):0.2,F:1.1);",
	}
	for _, c := range cases {
		tr := mustParse(t, c)
		rt := mustParse(t, tr.String())
		if !SameTopology(tr, rt) {
			t.Errorf("round trip changed topology: %s -> %s", c, tr.String())
		}
	}
}

func TestNewickErrors(t *testing.T) {
	bad := []string{
		"", "(A,B)", "((A,B);", "(A,B));", "(A:x,B:1);", "(,);", "(A,B); junk",
	}
	for _, s := range bad {
		if _, err := ParseNewick(s); err == nil {
			t.Errorf("ParseNewick(%q) accepted invalid input", s)
		}
	}
}

func TestNewickQuotedLabels(t *testing.T) {
	tr := mustParse(t, "('taxon one':0.1,'t(w)o':0.2,three:0.3);")
	names := tr.LeafNames()
	want := []string{"t(w)o", "taxon one", "three"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	// Round trip must preserve the awkward labels.
	rt := mustParse(t, tr.String())
	if !SameTopology(tr, rt) {
		t.Error("quoted-label round trip failed")
	}
}

func TestTreeBasics(t *testing.T) {
	tr := mustParse(t, "((A:0.1,B:0.2):0.05,C:0.3,D:0.4);")
	if tr.NLeaves() != 4 {
		t.Errorf("NLeaves = %d", tr.NLeaves())
	}
	if tr.NNodes() != 6 {
		t.Errorf("NNodes = %d", tr.NNodes())
	}
	if got := tr.TotalLength(); math.Abs(got-1.05) > 1e-12 {
		t.Errorf("TotalLength = %g", got)
	}
	if len(tr.Edges()) != 5 {
		t.Errorf("Edges = %d, want 5", len(tr.Edges()))
	}
	n := tr.Index()
	if n != 6 {
		t.Errorf("Index returned %d", n)
	}
	seen := make(map[int]bool)
	tr.Walk(func(nd *Node) {
		if nd.ID < 0 || nd.ID >= n || seen[nd.ID] {
			t.Errorf("bad or duplicate ID %d", nd.ID)
		}
		seen[nd.ID] = true
	})
	// Leaves must get the low IDs.
	for _, l := range tr.Leaves() {
		if l.ID >= tr.NLeaves() {
			t.Errorf("leaf %s has internal-range ID %d", l.Name, l.ID)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := mustParse(t, "((A:0.1,B:0.2):0.05,C:0.3);")
	cl := tr.Clone()
	cl.FindLeaf("A").Length = 99
	if tr.FindLeaf("A").Length == 99 {
		t.Error("Clone shares nodes with original")
	}
	if !SameTopology(tr, cl) {
		t.Error("Clone changed topology")
	}
	if err := cl.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestInsertRemoveLeafRoundTrip(t *testing.T) {
	tr := mustParse(t, "(A:0.1,B:0.2,C:0.3);")
	before := tr.String()
	edges := tr.Edges()
	if len(edges) != 3 {
		t.Fatalf("%d edges", len(edges))
	}
	leaf, err := tr.InsertLeafOnEdge(edges[1], "D", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Name != "D" || tr.NLeaves() != 4 {
		t.Fatalf("insert failed: %s", tr.String())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	// The split branch halves must sum to the original.
	mid := leaf.Parent
	child := mid.Children[0]
	if math.Abs(mid.Length+child.Length-0.1) > 1e-12 && math.Abs(mid.Length+child.Length-0.2) > 1e-12 && math.Abs(mid.Length+child.Length-0.3) > 1e-12 {
		t.Errorf("split lengths don't sum to an original branch: mid=%g child=%g", mid.Length, child.Length)
	}
	if err := tr.RemoveLeaf("D"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after remove: %v", err)
	}
	after := mustParse(t, tr.String())
	if !SameTopology(mustParse(t, before), after) {
		t.Errorf("insert+remove changed topology: %s -> %s", before, tr.String())
	}
}

func TestInsertOnEveryEdgeGivesDistinctTopologies(t *testing.T) {
	// For stepwise insertion correctness: inserting the new taxon on each
	// of the 2k-5... edges of an unrooted k-leaf tree must produce distinct
	// topologies (this is the core enumeration DPRml parallelises).
	tr := mustParse(t, "((A:0.1,B:0.1):0.1,C:0.1,(D:0.1,E:0.1):0.1);")
	edges := tr.Edges()
	if len(edges) != 7 { // 2*5-3 = 7 edges of an unrooted 5-taxon tree
		t.Fatalf("%d edges, want 7", len(edges))
	}
	seen := make(map[string]bool)
	for i := range edges {
		work := tr.Clone()
		if _, err := work.InsertLeafOnEdge(work.Edges()[i], "F", 0.1); err != nil {
			t.Fatal(err)
		}
		if work.NLeaves() != 6 {
			t.Fatalf("edge %d: %d leaves", i, work.NLeaves())
		}
		key := canonicalTopologyKey(work)
		if seen[key] {
			t.Errorf("edge %d produced a duplicate topology", i)
		}
		seen[key] = true
	}
}

func canonicalTopologyKey(tr *Tree) string {
	var parts []string
	for b := range tr.Bipartitions() {
		parts = append(parts, string(b))
	}
	// Sort for determinism.
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return strings.Join(parts, ";")
}

func TestRemoveLeafErrors(t *testing.T) {
	tr := mustParse(t, "(A:1,B:1,C:1);")
	if err := tr.RemoveLeaf("nope"); err == nil {
		t.Error("removing a missing leaf succeeded")
	}
}

func TestRobinsonFoulds(t *testing.T) {
	a := mustParse(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);")
	b := mustParse(t, "((A:1,C:1):1,(B:1,D:1):1,E:1);")
	same := mustParse(t, "((B:2,A:2):2,(D:2,C:2):2,E:2);")
	if d, _ := RobinsonFoulds(a, a); d != 0 {
		t.Errorf("RF(a,a) = %d", d)
	}
	if d, _ := RobinsonFoulds(a, same); d != 0 {
		t.Errorf("RF(a, relabeled-same) = %d", d)
	}
	if d, _ := RobinsonFoulds(a, b); d != 4 {
		t.Errorf("RF(a,b) = %d, want 4", d)
	}
	c := mustParse(t, "((A:1,B:1):1,C:1,Z:1);")
	if _, err := RobinsonFoulds(a, c); err == nil {
		t.Error("differing leaf sets accepted")
	}
}

func TestTriplet(t *testing.T) {
	tr := Triplet("A", "B", "C", 0.1)
	if tr.NLeaves() != 3 || len(tr.Root.Children) != 3 {
		t.Fatalf("bad triplet: %s", tr.String())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPDistanceAndJC(t *testing.T) {
	if d := PDistance([]byte("ACGT"), []byte("ACGT")); d != 0 {
		t.Errorf("identical p-distance = %g", d)
	}
	if d := PDistance([]byte("ACGT"), []byte("ACGA")); d != 0.25 {
		t.Errorf("1/4 p-distance = %g", d)
	}
	if d := PDistance([]byte("AC-T"), []byte("ACGT")); d != 0 {
		t.Errorf("gap column should be skipped: %g", d)
	}
	if JCDistance(0) != 0 {
		t.Error("JC(0) != 0")
	}
	// JC correction always >= p.
	for _, p := range []float64{0.05, 0.1, 0.3, 0.5, 0.7} {
		if JCDistance(p) < p {
			t.Errorf("JC(%g) = %g < p", p, JCDistance(p))
		}
	}
	if JCDistance(0.9) != 5.0 {
		t.Error("saturated distance not clamped")
	}
}

// perfectAdditiveMatrix builds the distance matrix induced by a known tree
// with strictly positive branch lengths; NJ must reconstruct its topology.
func perfectAdditiveMatrix(t *testing.T, newick string) (*DistanceMatrix, *Tree) {
	t.Helper()
	tr := mustParse(t, newick)
	leaves := tr.Leaves()
	names := make([]string, len(leaves))
	for i, l := range leaves {
		names[i] = l.Name
	}
	dm := NewDistanceMatrix(names)
	// Path lengths via pairwise LCA walk.
	pathToRoot := func(n *Node) ([]*Node, []float64) {
		var nodes []*Node
		var cum []float64
		d := 0.0
		for cur := n; cur != nil; cur = cur.Parent {
			nodes = append(nodes, cur)
			cum = append(cum, d)
			d += cur.Length
		}
		return nodes, cum
	}
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			ni, di := pathToRoot(leaves[i])
			nj, dj := pathToRoot(leaves[j])
			// Find deepest common ancestor.
			pos := make(map[*Node]int)
			for k, n := range ni {
				pos[n] = k
			}
			best := math.Inf(1)
			for k, n := range nj {
				if pi, ok := pos[n]; ok {
					d := di[pi] + dj[k]
					if d < best {
						best = d
					}
					break
				}
			}
			dm.D[i][j], dm.D[j][i] = best, best
		}
	}
	return dm, tr
}

func TestNeighborJoiningRecoversAdditiveTree(t *testing.T) {
	newick := "((A:0.2,B:0.3):0.15,(C:0.25,D:0.1):0.2,E:0.4);"
	dm, want := perfectAdditiveMatrix(t, newick)
	got, err := NeighborJoining(dm)
	if err != nil {
		t.Fatal(err)
	}
	if !SameTopology(got, want) {
		t.Errorf("NJ topology %s != true %s", got.String(), want.String())
	}
	// Branch lengths should be recovered too (additive matrix).
	if math.Abs(got.TotalLength()-want.TotalLength()) > 1e-9 {
		t.Errorf("NJ total length %g != %g", got.TotalLength(), want.TotalLength())
	}
}

func TestNeighborJoiningLarger(t *testing.T) {
	newick := "(((A:0.1,B:0.12):0.08,(C:0.15,D:0.05):0.1):0.07,((E:0.2,F:0.18):0.09,G:0.3):0.05,H:0.25);"
	dm, want := perfectAdditiveMatrix(t, newick)
	got, err := NeighborJoining(dm)
	if err != nil {
		t.Fatal(err)
	}
	if !SameTopology(got, want) {
		t.Errorf("NJ failed on 8 taxa:\n got %s\nwant %s", got.String(), want.String())
	}
}

func TestNeighborJoiningErrors(t *testing.T) {
	if _, err := NeighborJoining(NewDistanceMatrix([]string{"A", "B"})); err == nil {
		t.Error("NJ with 2 taxa accepted")
	}
}

func TestUPGMAUltrametric(t *testing.T) {
	// Ultrametric input: UPGMA recovers it exactly.
	taxa := []string{"A", "B", "C", "D"}
	dm := NewDistanceMatrix(taxa)
	set := func(i, j int, v float64) { dm.D[i][j], dm.D[j][i] = v, v }
	set(0, 1, 0.2) // A,B close
	set(2, 3, 0.3) // C,D close
	set(0, 2, 0.8)
	set(0, 3, 0.8)
	set(1, 2, 0.8)
	set(1, 3, 0.8)
	tr, err := UPGMA(dm)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NLeaves() != 4 {
		t.Fatalf("%d leaves", tr.NLeaves())
	}
	// Root-to-leaf distance must be 0.4 for every leaf (ultrametric).
	for _, l := range tr.Leaves() {
		d := 0.0
		for cur := l; cur.Parent != nil; cur = cur.Parent {
			d += cur.Length
		}
		if math.Abs(d-0.4) > 1e-9 {
			t.Errorf("leaf %s at depth %g, want 0.4", l.Name, d)
		}
	}
}

func TestAlignmentDistances(t *testing.T) {
	rows := []*seq.Sequence{
		seq.NewSequence("A", "ACGTACGTACGTACGTACGT"),
		seq.NewSequence("B", "ACGTACGTACGTACGTACGA"),
		seq.NewSequence("C", "TCGAACGAACGGACTTACGA"),
	}
	a, err := seq.NewAlignment(rows)
	if err != nil {
		t.Fatal(err)
	}
	dm := AlignmentDistances(a)
	if dm.D[0][1] <= 0 || dm.D[0][1] >= dm.D[0][2] {
		t.Errorf("distance ordering wrong: d(A,B)=%g d(A,C)=%g", dm.D[0][1], dm.D[0][2])
	}
	if dm.D[0][0] != 0 {
		t.Error("self distance nonzero")
	}
	if dm.D[1][0] != dm.D[0][1] {
		t.Error("matrix not symmetric")
	}
}
