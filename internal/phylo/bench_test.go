package phylo

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchTree builds a random binary tree over n leaves.
func benchTree(b *testing.B, n int, seed int64) *Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	t := Triplet("L0", "L1", "L2", 0.1)
	for i := 3; i < n; i++ {
		edges := t.Edges()
		if _, err := t.InsertLeafOnEdge(edges[rng.Intn(len(edges))], fmt.Sprintf("L%d", i), 0.1); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkParseNewick50(b *testing.B) {
	s := benchTree(b, 50, 1).String()
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNewick(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewickRoundTrip50(b *testing.B) {
	t := benchTree(b, 50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNewick(t.String()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBipartitions50(b *testing.B) {
	t := benchTree(b, 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Bipartitions()
	}
}

func BenchmarkRobinsonFoulds50(b *testing.B) {
	x := benchTree(b, 50, 3)
	y := benchTree(b, 50, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RobinsonFoulds(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighborJoining30(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	taxa := make([]string, 30)
	for i := range taxa {
		taxa[i] = fmt.Sprintf("L%d", i)
	}
	dm := NewDistanceMatrix(taxa)
	for i := 0; i < len(taxa); i++ {
		for j := i + 1; j < len(taxa); j++ {
			d := 0.05 + rng.Float64()
			dm.D[i][j], dm.D[j][i] = d, d
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NeighborJoining(dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloneAndInsert50(b *testing.B) {
	t := benchTree(b, 50, 6)
	edges := t.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := t.Clone()
		we := w.Edges()
		if _, err := w.InsertLeafOnEdge(we[i%len(edges)], "new", 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityConsensus(b *testing.B) {
	base := benchTree(b, 30, 7)
	trees := make([]*Tree, 10)
	for i := range trees {
		trees[i] = base.Clone()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MajorityRuleConsensus(trees); err != nil {
			b.Fatal(err)
		}
	}
}
