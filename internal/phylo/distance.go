package phylo

import (
	"fmt"
	"math"

	"repro/internal/seq"
)

// DistanceMatrix is a symmetric matrix of pairwise evolutionary distances
// between taxa, with the taxon order recorded.
type DistanceMatrix struct {
	Taxa []string
	D    [][]float64
}

// NewDistanceMatrix allocates an n x n zero matrix.
func NewDistanceMatrix(taxa []string) *DistanceMatrix {
	n := len(taxa)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	return &DistanceMatrix{Taxa: append([]string(nil), taxa...), D: d}
}

// PDistance computes the proportion of differing sites between two aligned
// rows, ignoring columns where either has a gap or ambiguity.
func PDistance(a, b []byte) float64 {
	diff, n := 0, 0
	for i := range a {
		x, y := upper(a[i]), upper(b[i])
		if !isACGT(x) || !isACGT(y) {
			continue
		}
		n++
		if x != y {
			diff++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(diff) / float64(n)
}

func upper(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

func isACGT(b byte) bool { return b == 'A' || b == 'C' || b == 'G' || b == 'T' || b == 'U' }

// JCDistance converts a p-distance to a Jukes–Cantor corrected distance.
// Saturated distances (p >= 0.75) are clamped to a large finite value.
func JCDistance(p float64) float64 {
	if p >= 0.749 {
		return 5.0 // effectively saturated
	}
	return -0.75 * math.Log(1-4.0/3.0*p)
}

// AlignmentDistances builds a JC-corrected distance matrix from a DNA
// alignment.
func AlignmentDistances(a *seq.Alignment) *DistanceMatrix {
	m := NewDistanceMatrix(a.Taxa())
	for i := 0; i < a.NTaxa(); i++ {
		for j := i + 1; j < a.NTaxa(); j++ {
			d := JCDistance(PDistance(a.Rows[i].Residues, a.Rows[j].Residues))
			m.D[i][j], m.D[j][i] = d, d
		}
	}
	return m
}

// NeighborJoining builds an unrooted tree (trifurcating root) from a
// distance matrix using the Saitou–Nei algorithm. It is the distance-based
// baseline the ML programs in the paper's related work compare against.
func NeighborJoining(dm *DistanceMatrix) (*Tree, error) {
	n := len(dm.Taxa)
	if n < 3 {
		return nil, fmt.Errorf("phylo: NJ needs >= 3 taxa, got %d", n)
	}
	// Working copies.
	nodes := make([]*Node, n)
	for i, t := range dm.Taxa {
		nodes[i] = NewLeaf(t, 0)
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dm.D[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	for len(active) > 3 {
		m := len(active)
		// Row sums over active set.
		r := make([]float64, m)
		for ai, i := range active {
			for _, j := range active {
				r[ai] += d[i][j]
			}
		}
		// Find pair minimising Q.
		bestA, bestB := -1, -1
		bestQ := math.Inf(1)
		for ai := 0; ai < m; ai++ {
			for bi := ai + 1; bi < m; bi++ {
				i, j := active[ai], active[bi]
				q := float64(m-2)*d[i][j] - r[ai] - r[bi]
				if q < bestQ {
					bestQ, bestA, bestB = q, ai, bi
				}
			}
		}
		i, j := active[bestA], active[bestB]
		// Branch lengths to the new node.
		li := 0.5*d[i][j] + (r[bestA]-r[bestB])/(2*float64(m-2))
		lj := d[i][j] - li
		if li < 0 {
			li = 0
			lj = d[i][j]
		}
		if lj < 0 {
			lj = 0
		}
		nodes[i].Length = li
		nodes[j].Length = lj
		parent := NewInternal(0, nodes[i], nodes[j])
		// New distances: d(u,k) = (d(i,k)+d(j,k)-d(i,j))/2, stored in slot i.
		for _, k := range active {
			if k == i || k == j {
				continue
			}
			nk := 0.5 * (d[i][k] + d[j][k] - d[i][j])
			if nk < 0 {
				nk = 0
			}
			d[i][k], d[k][i] = nk, nk
		}
		nodes[i] = parent
		// Remove j from the active set.
		na := active[:0]
		for _, k := range active {
			if k != j {
				na = append(na, k)
			}
		}
		active = na
	}

	// Join the final three nodes at a trifurcating root with standard
	// three-point branch length estimates.
	i, j, k := active[0], active[1], active[2]
	nodes[i].Length = math.Max(0, 0.5*(d[i][j]+d[i][k]-d[j][k]))
	nodes[j].Length = math.Max(0, 0.5*(d[i][j]+d[j][k]-d[i][k]))
	nodes[k].Length = math.Max(0, 0.5*(d[i][k]+d[j][k]-d[i][j]))
	root := NewInternal(0, nodes[i], nodes[j], nodes[k])
	t := &Tree{Root: root}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// UPGMA builds a rooted ultrametric tree by average-linkage clustering —
// a second, simpler baseline used in tests.
func UPGMA(dm *DistanceMatrix) (*Tree, error) {
	n := len(dm.Taxa)
	if n < 2 {
		return nil, fmt.Errorf("phylo: UPGMA needs >= 2 taxa, got %d", n)
	}
	type cluster struct {
		node   *Node
		size   int
		height float64
	}
	clusters := make([]*cluster, n)
	for i, t := range dm.Taxa {
		clusters[i] = &cluster{node: NewLeaf(t, 0), size: 1}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dm.D[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > 1 {
		// Find the closest pair.
		bestA, bestB := -1, -1
		best := math.Inf(1)
		for ai := 0; ai < len(active); ai++ {
			for bi := ai + 1; bi < len(active); bi++ {
				i, j := active[ai], active[bi]
				if d[i][j] < best {
					best, bestA, bestB = d[i][j], ai, bi
				}
			}
		}
		i, j := active[bestA], active[bestB]
		ci, cj := clusters[i], clusters[j]
		h := best / 2
		ci.node.Length = h - ci.height
		cj.node.Length = h - cj.height
		merged := &cluster{
			node:   NewInternal(0, ci.node, cj.node),
			size:   ci.size + cj.size,
			height: h,
		}
		for _, k := range active {
			if k == i || k == j {
				continue
			}
			nk := (d[i][k]*float64(ci.size) + d[j][k]*float64(cj.size)) / float64(ci.size+cj.size)
			d[i][k], d[k][i] = nk, nk
		}
		clusters[i] = merged
		na := active[:0]
		for _, k := range active {
			if k != j {
				na = append(na, k)
			}
		}
		active = na
	}
	return &Tree{Root: clusters[active[0]].node}, nil
}
