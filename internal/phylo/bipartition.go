package phylo

import (
	"fmt"
	"sort"
	"strings"
)

// Bipartition is a canonical string encoding of a leaf-set split induced by
// an internal edge: the lexicographically smaller side's sorted names joined
// by commas, with a "|" separating the two sides' canonical form. Two
// unrooted trees share a bipartition iff the encodings are equal.
type Bipartition string

// Bipartitions returns the set of non-trivial bipartitions (splits with at
// least two leaves on each side) of the tree viewed as unrooted.
func (t *Tree) Bipartitions() map[Bipartition]bool {
	all := t.LeafNames()
	total := len(all)
	out := make(map[Bipartition]bool)
	var rec func(n *Node) []string
	rec = func(n *Node) []string {
		if n.IsLeaf() {
			return []string{n.Name}
		}
		var names []string
		for _, c := range n.Children {
			names = append(names, rec(c)...)
		}
		// The edge above n induces the split names | rest — skip the root
		// (no edge) and trivial splits.
		if n.Parent != nil && len(names) >= 2 && total-len(names) >= 2 {
			out[canonicalSplit(names, all)] = true
		}
		return names
	}
	if t.Root != nil {
		rec(t.Root)
	}
	return out
}

func canonicalSplit(side []string, all []string) Bipartition {
	in := make(map[string]bool, len(side))
	for _, s := range side {
		in[s] = true
	}
	var a, b []string
	for _, s := range all {
		if in[s] {
			a = append(a, s)
		} else {
			b = append(b, s)
		}
	}
	sort.Strings(a)
	sort.Strings(b)
	sa, sb := strings.Join(a, ","), strings.Join(b, ",")
	if sa > sb {
		sa, sb = sb, sa
	}
	return Bipartition(sa + "|" + sb)
}

// RobinsonFoulds returns the Robinson–Foulds distance between two trees on
// the same leaf set: the number of bipartitions present in exactly one of
// the trees. It errors if the leaf sets differ.
func RobinsonFoulds(a, b *Tree) (int, error) {
	an, bn := a.LeafNames(), b.LeafNames()
	if len(an) != len(bn) {
		return 0, fmt.Errorf("phylo: RF: leaf sets differ in size: %d vs %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return 0, fmt.Errorf("phylo: RF: leaf sets differ (%q vs %q)", an[i], bn[i])
		}
	}
	ba := a.Bipartitions()
	bb := b.Bipartitions()
	d := 0
	for s := range ba {
		if !bb[s] {
			d++
		}
	}
	for s := range bb {
		if !ba[s] {
			d++
		}
	}
	return d, nil
}

// SameTopology reports whether two trees induce the same unrooted topology.
func SameTopology(a, b *Tree) bool {
	d, err := RobinsonFoulds(a, b)
	return err == nil && d == 0
}
