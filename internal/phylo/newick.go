package phylo

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseNewick parses a Newick tree string, e.g. "((A:0.1,B:0.2):0.05,C:0.3);".
// Internal node labels are accepted and stored in Name. Branch lengths are
// optional and default to 0.
func ParseNewick(s string) (*Tree, error) {
	p := &newickParser{src: s}
	p.skipSpace()
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ';' {
		return nil, fmt.Errorf("phylo: newick: expected ';' at offset %d", p.pos)
	}
	p.pos++
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("phylo: newick: trailing data at offset %d", p.pos)
	}
	t := &Tree{Root: root}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type newickParser struct {
	src string
	pos int
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *newickParser) parseNode() (*Node, error) {
	p.skipSpace()
	n := &Node{ID: -1}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.AddChild(child)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("phylo: newick: unterminated group")
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("phylo: newick: unexpected %q at offset %d", p.src[p.pos], p.pos)
		}
	}
	// Optional label.
	n.Name = p.parseLabel()
	// Optional branch length.
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++
		l, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		n.Length = l
	}
	if len(n.Children) == 0 && n.Name == "" {
		return nil, fmt.Errorf("phylo: newick: leaf without a name at offset %d", p.pos)
	}
	return n, nil
}

func (p *newickParser) parseLabel() string {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		// Quoted label.
		end := strings.IndexByte(p.src[p.pos+1:], '\'')
		if end < 0 {
			return ""
		}
		label := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return label
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ':' || c == ',' || c == ')' || c == '(' || c == ';' || c == ' ' || c == '\n' || c == '\t' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *newickParser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("phylo: newick: expected number at offset %d", p.pos)
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("phylo: newick: bad branch length %q: %w", p.src[start:p.pos], err)
	}
	return v, nil
}

func writeNewick(b *strings.Builder, n *Node, isRoot bool) {
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			writeNewick(b, c, false)
		}
		b.WriteByte(')')
	}
	if n.Name != "" {
		b.WriteString(escapeLabel(n.Name))
	}
	if !isRoot {
		b.WriteByte(':')
		// Shortest representation that round-trips exactly: serialised
		// trees (DPRml ships topologies between server and donors as
		// Newick) must not lose branch-length precision.
		b.WriteString(strconv.FormatFloat(n.Length, 'g', -1, 64))
	}
}

func escapeLabel(s string) string {
	if strings.ContainsAny(s, "():;, '") {
		return "'" + s + "'"
	}
	return s
}
