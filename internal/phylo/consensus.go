package phylo

import (
	"fmt"
	"sort"
	"strings"
)

// SplitSupport counts, for every non-trivial bipartition appearing in any
// input tree, the fraction of trees containing it. All trees must share one
// leaf set. This is the raw material for consensus methods.
func SplitSupport(trees []*Tree) (map[Bipartition]float64, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("phylo: consensus of zero trees")
	}
	ref := trees[0].LeafNames()
	counts := make(map[Bipartition]int)
	for i, t := range trees {
		names := t.LeafNames()
		if len(names) != len(ref) {
			return nil, fmt.Errorf("phylo: tree %d has %d leaves, tree 0 has %d", i, len(names), len(ref))
		}
		for j := range names {
			if names[j] != ref[j] {
				return nil, fmt.Errorf("phylo: tree %d leaf set differs from tree 0 (%q vs %q)", i, names[j], ref[j])
			}
		}
		for s := range t.Bipartitions() {
			counts[s]++
		}
	}
	out := make(map[Bipartition]float64, len(counts))
	for s, c := range counts {
		out[s] = float64(c) / float64(len(trees))
	}
	return out, nil
}

// MajorityRuleConsensus builds the majority-rule consensus of the input
// trees: the tree containing exactly the bipartitions present in more than
// half of them (such splits are always mutually compatible, so the tree is
// well defined). Biologists apply this to the trees from repeated
// stochastic DPRml runs — the multi-instance usage pattern behind
// Figure 2. Branch lengths on consensus edges are the support fractions;
// leaf edges get length 0.
func MajorityRuleConsensus(trees []*Tree) (*Tree, error) {
	support, err := SplitSupport(trees)
	if err != nil {
		return nil, err
	}
	var majority []Bipartition
	for s, frac := range support {
		if frac > 0.5 {
			majority = append(majority, s)
		}
	}
	return buildFromSplits(trees[0].LeafNames(), majority, support)
}

// ConsensusThreshold generalises majority rule: keep splits with support
// strictly above threshold (0.5 = majority rule; anything lower risks
// incompatible splits and returns an error if one arises; 1.0-epsilon =
// strict consensus).
func ConsensusThreshold(trees []*Tree, threshold float64) (*Tree, error) {
	if threshold < 0 || threshold >= 1 {
		return nil, fmt.Errorf("phylo: consensus threshold %g outside [0, 1)", threshold)
	}
	support, err := SplitSupport(trees)
	if err != nil {
		return nil, err
	}
	var keep []Bipartition
	for s, frac := range support {
		if frac > threshold {
			keep = append(keep, s)
		}
	}
	return buildFromSplits(trees[0].LeafNames(), keep, support)
}

// splitSide returns the side of the split NOT containing the
// lexicographically first leaf (so every kept side is a proper "clade"
// under the rooting at that leaf).
func splitSide(s Bipartition, first string) ([]string, error) {
	parts := strings.SplitN(string(s), "|", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("phylo: malformed bipartition %q", s)
	}
	a := strings.Split(parts[0], ",")
	b := strings.Split(parts[1], ",")
	for _, x := range a {
		if x == first {
			return b, nil
		}
	}
	return a, nil
}

// buildFromSplits assembles a tree over the given leaves containing exactly
// the given (mutually compatible) splits. Algorithm: root at the first
// leaf; each split becomes the leaf set of one internal node; nest split
// sets by containment (compatible splits form a laminar family under the
// rooting), then hang each leaf from the smallest containing set.
func buildFromSplits(leaves []string, splits []Bipartition, support map[Bipartition]float64) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("phylo: no leaves")
	}
	first := leaves[0]

	type clade struct {
		names  []string
		set    map[string]bool
		node   *Node
		sup    float64
		parent int // index into clades of the smallest strict superset
	}
	var clades []clade
	for _, s := range splits {
		side, err := splitSide(s, first)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(side))
		for _, x := range side {
			set[x] = true
		}
		clades = append(clades, clade{names: side, set: set, sup: support[s], parent: -1})
	}
	// Sort by size ascending so each clade's parent (smallest superset)
	// appears later; check laminarity (compatibility) as we go.
	sort.Slice(clades, func(i, j int) bool {
		if len(clades[i].names) != len(clades[j].names) {
			return len(clades[i].names) < len(clades[j].names)
		}
		return strings.Join(clades[i].names, ",") < strings.Join(clades[j].names, ",")
	})
	contains := func(outer, inner map[string]bool) bool {
		for x := range inner {
			if !outer[x] {
				return false
			}
		}
		return true
	}
	overlaps := func(a, b map[string]bool) bool {
		for x := range a {
			if b[x] {
				return true
			}
		}
		return false
	}
	for i := range clades {
		for j := i + 1; j < len(clades); j++ {
			if contains(clades[j].set, clades[i].set) {
				clades[i].parent = j
				break
			}
			if overlaps(clades[i].set, clades[j].set) {
				return nil, fmt.Errorf("phylo: incompatible splits %v and %v", clades[i].names, clades[j].names)
			}
		}
	}

	root := NewInternal(0)
	tree := &Tree{Root: root}
	for i := range clades {
		clades[i].node = &Node{Length: clades[i].sup, ID: -1}
	}
	for i := range clades {
		if p := clades[i].parent; p >= 0 {
			clades[p].node.AddChild(clades[i].node)
		} else {
			root.AddChild(clades[i].node)
		}
	}
	// Hang each leaf from the smallest clade containing it (clades are
	// size-ascending, so the first match is smallest); unclaimed leaves and
	// the rooting leaf hang from the root.
	for _, name := range leaves {
		owner := root
		if name != first {
			for i := range clades {
				if clades[i].set[name] {
					owner = clades[i].node
					break
				}
			}
		}
		owner.AddChild(NewLeaf(name, 0))
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("phylo: consensus built an invalid tree: %w", err)
	}
	return tree, nil
}
