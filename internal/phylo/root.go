package phylo

import (
	"fmt"
	"math"
)

// Rooting utilities. The likelihood of a reversible model is invariant to
// root placement (the "pulley principle"), so DPRml's trees are reported
// unrooted; for display and for comparing clades, biologists root them —
// usually at the midpoint of the longest leaf-to-leaf path when no
// outgroup is available.

// RerootAtEdge returns a copy of the tree rooted on the edge above the
// given leaf-set-identified child: the edge is split in two halves and a
// new degree-2 root placed between them.
func (t *Tree) RerootAtEdge(e Edge) (*Tree, error) {
	if e.Child == nil || e.Child.Parent == nil {
		return nil, fmt.Errorf("phylo: cannot reroot at the root")
	}
	// Work on a clone; locate the corresponding node by position path.
	path := pathFromRoot(e.Child)
	c := t.Clone()
	node := c.Root
	for _, idx := range path {
		if idx >= len(node.Children) {
			return nil, fmt.Errorf("phylo: reroot path desynchronised")
		}
		node = node.Children[idx]
	}
	return rerootAbove(c, node, node.Length/2)
}

// pathFromRoot returns child indices leading from the root to n.
func pathFromRoot(n *Node) []int {
	var rev []int
	for n.Parent != nil {
		p := n.Parent
		for i, c := range p.Children {
			if c == n {
				rev = append(rev, i)
				break
			}
		}
		n = p
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// rerootAbove restructures the (cloned) tree in place so the new root sits
// on the edge above node, at distance lenBelow from node.
func rerootAbove(t *Tree, node *Node, lenBelow float64) (*Tree, error) {
	parent := node.Parent
	if parent == nil {
		return nil, fmt.Errorf("phylo: cannot reroot above the root")
	}
	lenAbove := node.Length - lenBelow
	if lenAbove < 0 {
		return nil, fmt.Errorf("phylo: split point %g exceeds branch length %g", lenBelow, node.Length)
	}
	// Detach node from parent.
	parent.removeChild(node)
	node.Parent = nil
	node.Length = lenBelow

	// Reverse all parent pointers from parent up to the old root: each
	// ancestor becomes a child of its former child.
	prev := parent
	prevLen := lenAbove
	newRoot := &Node{ID: -1}
	newRoot.AddChild(node)
	cur := prev
	curUp := cur.Parent
	cur.Parent = nil
	cur.Length, prevLen = prevLen, cur.Length
	newRoot.Children = append(newRoot.Children, cur)
	cur.Parent = newRoot
	for curUp != nil {
		next := curUp.Parent
		curUp.removeChild(cur)
		l := prevLen
		prevLen = curUp.Length
		curUp.Length = l
		cur.AddChild(curUp)
		cur = curUp
		curUp = next
	}
	// If the old root was left with a single child, splice it out.
	if len(cur.Children) == 1 && cur.Parent != nil {
		only := cur.Children[0]
		only.Length += cur.Length
		gp := cur.Parent
		gp.removeChild(cur)
		gp.AddChild(only)
	}
	out := &Tree{Root: newRoot}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("phylo: reroot produced invalid tree: %w", err)
	}
	return out, nil
}

// leafDepths returns, for each leaf, its path length from the root.
func leafDepths(t *Tree) map[*Node]float64 {
	out := make(map[*Node]float64)
	var rec func(n *Node, d float64)
	rec = func(n *Node, d float64) {
		if n.IsLeaf() {
			out[n] = d
		}
		for _, c := range n.Children {
			rec(c, d+c.Length)
		}
	}
	if t.Root != nil {
		rec(t.Root, 0)
	}
	return out
}

// MidpointRoot returns a copy of the tree rooted at the midpoint of the
// longest leaf-to-leaf path.
func (t *Tree) MidpointRoot() (*Tree, error) {
	leaves := t.Leaves()
	if len(leaves) < 2 {
		return nil, fmt.Errorf("phylo: midpoint rooting needs >= 2 leaves")
	}
	// Longest path: for every pair, distance via LCA. n is small in this
	// system (tens of taxa), so the O(n^2) scan is fine.
	dist := func(a, b *Node) float64 {
		da := map[*Node]float64{}
		for n, d := a, 0.0; n != nil; n = n.Parent {
			da[n] = d
			d += n.Length
		}
		d := 0.0
		for n := b; n != nil; n = n.Parent {
			if up, ok := da[n]; ok {
				return d + up
			}
			d += n.Length
		}
		return math.Inf(1)
	}
	var bestA, bestB *Node
	bestD := -1.0
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			if d := dist(leaves[i], leaves[j]); d > bestD {
				bestD, bestA, bestB = d, leaves[i], leaves[j]
			}
		}
	}
	// Walk from bestA toward bestB until cumulative distance passes
	// bestD/2; the midpoint lies on that edge. Path A->LCA->B.
	half := bestD / 2
	// Ancestor chain of A with distances.
	aUp := map[*Node]float64{}
	for n, d := bestA, 0.0; n != nil; n = n.Parent {
		aUp[n] = d
		d += n.Length
	}
	// Find LCA and B-side distance.
	var lca *Node
	bDist := 0.0
	for n := bestB; n != nil; n = n.Parent {
		if _, ok := aUp[n]; ok {
			lca = n
			break
		}
		bDist += n.Length
	}
	_ = bDist
	// Climb from A: edges (A..lca]. Each step crosses edge above cur.
	acc := 0.0
	for cur := bestA; cur != lca; cur = cur.Parent {
		if acc+cur.Length >= half {
			return t.rerootCloneAbove(cur, half-acc)
		}
		acc += cur.Length
	}
	// Midpoint lies on the B side: climb from B toward the LCA; distance
	// from A to a point on B's chain = bestD - (distance from B).
	accB := 0.0
	for cur := bestB; cur != lca; cur = cur.Parent {
		fromA := bestD - (accB + cur.Length)
		if fromA <= half {
			// Midpoint inside this edge, at (half - fromA) above... measure
			// from the child end: child is cur, distance from B end:
			below := half - fromA // portion of the edge below the midpoint (toward lca is "above")
			return t.rerootCloneAbove(cur, cur.Length-below)
		}
		accB += cur.Length
	}
	// Degenerate (zero-length paths): root above bestA.
	return t.rerootCloneAbove(bestA, bestA.Length/2)
}

// rerootCloneAbove clones the tree and roots it on the edge above the
// given node (from the original tree), lenBelow above the node.
func (t *Tree) rerootCloneAbove(node *Node, lenBelow float64) (*Tree, error) {
	path := pathFromRoot(node)
	c := t.Clone()
	n := c.Root
	for _, idx := range path {
		n = n.Children[idx]
	}
	return rerootAbove(c, n, lenBelow)
}
