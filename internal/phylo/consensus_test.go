package phylo

import (
	"math/rand"
	"testing"
)

func mustParseCons(t *testing.T, s string) *Tree {
	t.Helper()
	tr, err := ParseNewick(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return tr
}

func TestSplitSupportIdenticalTrees(t *testing.T) {
	a := mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);")
	b := a.Clone()
	sup, err := SplitSupport([]*Tree{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 2 {
		t.Fatalf("%d splits, want 2 (AB|CDE and CD|ABE)", len(sup))
	}
	for s, f := range sup {
		if f != 1.0 {
			t.Errorf("split %s support %g, want 1", s, f)
		}
	}
}

func TestSplitSupportErrors(t *testing.T) {
	if _, err := SplitSupport(nil); err == nil {
		t.Error("empty input accepted")
	}
	a := mustParseCons(t, "((A:1,B:1):1,C:1,D:1);")
	b := mustParseCons(t, "((A:1,B:1):1,C:1,E:1);") // different leaf set
	if _, err := SplitSupport([]*Tree{a, b}); err == nil {
		t.Error("mismatched leaf sets accepted")
	}
	c := mustParseCons(t, "((A:1,B:1):1,C:1);") // different size
	if _, err := SplitSupport([]*Tree{a, c}); err == nil {
		t.Error("mismatched leaf count accepted")
	}
}

func TestMajorityRuleConsensusUnanimous(t *testing.T) {
	// Three identical topologies: consensus == that topology.
	trees := []*Tree{
		mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);"),
		mustParseCons(t, "((B:2,A:2):2,(D:2,C:2):2,E:2);"),
		mustParseCons(t, "(E:1,(C:1,D:1):1,(A:1,B:1):1);"),
	}
	cons, err := MajorityRuleConsensus(trees)
	if err != nil {
		t.Fatal(err)
	}
	if !SameTopology(cons, trees[0]) {
		t.Errorf("consensus %s differs from unanimous input %s", cons, trees[0])
	}
}

func TestMajorityRuleConsensusMajority(t *testing.T) {
	// Two trees group (A,B); one groups (A,C). Majority keeps AB|CDE only.
	trees := []*Tree{
		mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);"),
		mustParseCons(t, "((A:1,B:1):1,C:1,D:1,E:1);"),
		mustParseCons(t, "((A:1,C:1):1,B:1,D:1,E:1);"),
	}
	cons, err := MajorityRuleConsensus(trees)
	if err != nil {
		t.Fatal(err)
	}
	splits := cons.Bipartitions()
	if len(splits) != 1 {
		t.Fatalf("consensus has %d splits, want 1: %v", len(splits), splits)
	}
	want := canonicalSplit([]string{"A", "B"}, []string{"A", "B", "C", "D", "E"})
	if !splits[want] {
		t.Errorf("consensus lacks AB split: %v", splits)
	}
	if got := cons.NLeaves(); got != 5 {
		t.Errorf("consensus has %d leaves, want 5", got)
	}
}

func TestMajorityRuleConflictCollapses(t *testing.T) {
	// 50/50 conflict: neither split exceeds half; consensus is a star.
	trees := []*Tree{
		mustParseCons(t, "((A:1,B:1):1,C:1,D:1);"),
		mustParseCons(t, "((A:1,C:1):1,B:1,D:1);"),
	}
	cons, err := MajorityRuleConsensus(trees)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cons.Bipartitions()); n != 0 {
		t.Errorf("50/50 conflict produced %d splits, want star (0)", n)
	}
	if cons.NLeaves() != 4 {
		t.Errorf("%d leaves", cons.NLeaves())
	}
}

func TestConsensusSupportAsBranchLength(t *testing.T) {
	trees := []*Tree{
		mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);"),
		mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);"),
		mustParseCons(t, "((A:1,B:1):1,C:1,D:1,E:1);"),
	}
	cons, err := MajorityRuleConsensus(trees)
	if err != nil {
		t.Fatal(err)
	}
	// AB has support 1.0; CD has 2/3. Find internal nodes and check lengths.
	var sups []float64
	cons.Walk(func(n *Node) {
		if !n.IsLeaf() && n.Parent != nil {
			sups = append(sups, n.Length)
		}
	})
	if len(sups) != 2 {
		t.Fatalf("%d internal edges, want 2", len(sups))
	}
	hi, lo := sups[0], sups[1]
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi != 1.0 || lo < 0.66 || lo > 0.67 {
		t.Errorf("support lengths = %v, want {1.0, 0.667}", sups)
	}
}

func TestConsensusThreshold(t *testing.T) {
	trees := []*Tree{
		mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);"),
		mustParseCons(t, "((A:1,B:1):1,(C:1,D:1):1,E:1);"),
		mustParseCons(t, "((A:1,B:1):1,C:1,D:1,E:1);"),
	}
	// Strict consensus (threshold just under 1): only AB survives.
	cons, err := ConsensusThreshold(trees, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cons.Bipartitions()); n != 1 {
		t.Errorf("strict consensus has %d splits, want 1", n)
	}
	if _, err := ConsensusThreshold(trees, 1.0); err == nil {
		t.Error("threshold 1.0 accepted")
	}
	if _, err := ConsensusThreshold(trees, -0.1); err == nil {
		t.Error("negative threshold accepted")
	}
}

// TestConsensusOfNoisyTrees is the integration-shaped property: majority
// consensus of many noisy copies of one tree recovers that tree.
func TestConsensusOfNoisyTrees(t *testing.T) {
	base := mustParseCons(t, "(((A:1,B:1):1,(C:1,D:1):1):1,((E:1,F:1):1,G:1):1,H:1);")
	rng := rand.New(rand.NewSource(5))
	var trees []*Tree
	for i := 0; i < 9; i++ {
		tr := base.Clone()
		if i < 3 {
			// A third of the trees get a random leaf yanked out and
			// reattached on a random edge (NNI-ish noise).
			leaves := tr.Leaves()
			name := leaves[rng.Intn(len(leaves))].Name
			if err := tr.RemoveLeaf(name); err != nil {
				t.Fatal(err)
			}
			edges := tr.Edges()
			if _, err := tr.InsertLeafOnEdge(edges[rng.Intn(len(edges))], name, 1); err != nil {
				t.Fatal(err)
			}
		}
		trees = append(trees, tr)
	}
	cons, err := MajorityRuleConsensus(trees)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RobinsonFoulds(cons, base)
	if err != nil {
		t.Fatal(err)
	}
	// The consensus may lose a couple of splits to noise but must not
	// invent wrong ones; allow a small RF budget.
	if d > 2 {
		t.Errorf("consensus RF distance to base = %d:\n cons %s\n base %s", d, cons, base)
	}
}
