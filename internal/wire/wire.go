package wire // package documentation lives in doc.go

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameSize bounds a single framed message (64 MiB) to keep a corrupt
// or malicious length prefix from exhausting memory.
const MaxFrameSize = 64 << 20

// ErrCorruptFrame is returned by ReadFrame when a frame's checksum does not
// match its body — bit rot or a corrupting middlebox on the bulk channel.
// Callers treat it like any other transport failure: the fetch is retried
// or the unit requeued, never consumed as silently wrong data.
var ErrCorruptFrame = errors.New("wire: corrupt frame (checksum mismatch)")

// ErrDigestMismatch is returned (wrapped) when a content-addressed blob's
// bytes do not hash to the digest they were requested under — a server
// bug, a tampered store, or corruption the per-frame CRC happened to miss.
// Like ErrCorruptFrame it is a transport-level failure: the fetch is
// retried or the unit requeued, never consumed as silently wrong data.
var ErrDigestMismatch = errors.New("wire: blob does not match its content digest")

// crcTable is the Castagnoli polynomial table; CRC-32C is hardware
// accelerated on amd64/arm64, so checksumming adds little to a bulk copy.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Digest returns a blob's content address: "sha256:" followed by the
// lowercase hex SHA-256 of its bytes. Identical bytes always produce the
// same digest, which is what lets N problems sharing one alignment store
// and ship it once.
func Digest(blob []byte) string {
	sum := sha256.Sum256(blob)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// ContentKey maps a content digest to its bulk-channel blob key. The
// "content/" namespace keeps digests apart from the dist layer's
// per-problem ("shared/...") and per-unit ("unit/...") keys.
func ContentKey(digest string) string { return "content/" + digest }

// frameHeaderSize is the fixed per-frame overhead: 4 bytes big-endian body
// length followed by 4 bytes CRC-32C of the body. Adding the checksum word
// changed the frame format incompatibly: server and donors must run the
// same build (there is no version negotiation on the bulk channel — a
// pre-checksum peer would consume the CRC word as body bytes). The control
// channel's compatibility affordances (epoch 0 accepted, cancel notices
// optional) are unaffected.
const frameHeaderSize = 8

// WriteFrame writes a length-prefixed, checksummed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrameSize)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r and verifies its
// checksum, returning ErrCorruptFrame on a mismatch. The returned buffer
// is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto is ReadFrame decoding into buf when its capacity suffices,
// allocating only for larger frames. Callers that recycle buf must not let
// the returned slice escape past the recycle point.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	want := binary.BigEndian.Uint32(hdr[4:])
	if uint32(cap(buf)) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	if got := crc32.Checksum(buf, crcTable); got != want {
		return nil, fmt.Errorf("%w: crc %08x, frame claims %08x", ErrCorruptFrame, got, want)
	}
	return buf, nil
}

// keyBufPool recycles the small per-fetch buffers serveConn reads blob
// keys into; keys are copied out (string conversion) before the buffer is
// returned, so pooling them is safe. maxPooledKeyBuf keeps an oversized
// key frame from pinning a large buffer in the pool.
const maxPooledKeyBuf = 64 << 10

var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// refBlob is one content-addressed blob and the number of problems still
// referencing it.
type refBlob struct {
	data []byte
	refs int
}

// BulkServer serves named blobs over raw TCP: a client connects, sends one
// frame containing the blob key, and receives one frame with the blob (or
// an empty frame if unknown, distinguished by a one-byte status prefix).
// This is the "data files over ordinary sockets" channel.
//
// Blobs live in two stores. Put/Delete manage plainly named blobs (unit
// payload offloads, legacy shared keys). PutContent/Release manage
// content-addressed blobs: stored under ContentKey(digest), refcounted so
// N problems sharing identical bytes keep one copy, and freed when the
// last referencing problem releases. Alias lets a legacy per-problem key
// resolve to a content blob without storing the bytes twice, which is how
// old donors keep working against a content-addressed server.
type BulkServer struct {
	mu    sync.RWMutex
	blobs map[string][]byte //dist:guardedby mu
	// content maps ContentKey(digest) -> blob + refcount.
	//dist:guardedby mu
	content map[string]*refBlob
	// aliases maps legacy key -> ContentKey(digest).
	//dist:guardedby mu
	aliases map[string]string
	ln      net.Listener
	done    chan struct{}
	wg      sync.WaitGroup

	// bytesServed / fetchesServed account traffic for BulkStats.
	bytesServed   atomic.Int64
	fetchesServed atomic.Int64
}

// NewBulkServer starts a bulk server on addr ("host:0" picks a free port).
func NewBulkServer(addr string) (*BulkServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: bulk listen: %w", err)
	}
	s := &BulkServer{
		blobs:   make(map[string][]byte),
		content: make(map[string]*refBlob),
		aliases: make(map[string]string),
		ln:      ln,
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *BulkServer) Addr() string { return s.ln.Addr().String() }

// Put registers (or replaces) a blob under key.
func (s *BulkServer) Put(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = blob
}

// Delete removes a blob.
func (s *BulkServer) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, key)
}

// PutContent stores (or takes another reference on) a content-addressed
// blob. digest must be Digest(blob) — the caller has usually computed it
// already for task metadata, so it is passed rather than re-hashed here.
// The blob becomes fetchable under ContentKey(digest); each PutContent
// must be balanced by one Release.
func (s *BulkServer) PutContent(digest string, blob []byte) {
	key := ContentKey(digest)
	s.mu.Lock()
	defer s.mu.Unlock()
	if rb, ok := s.content[key]; ok {
		rb.refs++
		return
	}
	s.content[key] = &refBlob{data: blob, refs: 1}
}

// Release drops one reference on a content-addressed blob, deleting it
// when the last reference is gone. Releasing an unknown digest is a no-op
// (the blob may already be fully released by a concurrent cleanup).
func (s *BulkServer) Release(digest string) {
	key := ContentKey(digest)
	s.mu.Lock()
	defer s.mu.Unlock()
	rb, ok := s.content[key]
	if !ok {
		return
	}
	if rb.refs--; rb.refs <= 0 {
		delete(s.content, key)
	}
}

// Alias makes a plainly named key resolve to a content-addressed blob, so
// a peer fetching the legacy key receives the shared bytes without the
// server storing them twice. The alias does not hold a reference: it dies
// with (or before, via DropAlias) the content blob it points at.
func (s *BulkServer) Alias(key, digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aliases[key] = ContentKey(digest)
}

// DropAlias removes a legacy-key alias.
func (s *BulkServer) DropAlias(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.aliases, key)
}

// BulkStats is a snapshot of a bulk server's storage and traffic. Stored
// figures count each resident blob once — aliases and extra content
// references add nothing — which is exactly the dedup the content store
// buys; served figures accumulate over the server's lifetime.
type BulkStats struct {
	// Blobs and StoredBytes cover both stores (plain + content).
	Blobs       int
	StoredBytes int64
	// ContentBlobs/ContentRefs expose the content store's sharing factor.
	ContentBlobs int
	ContentRefs  int
	// Fetches counts answered fetch requests (found or not);
	// BytesServed sums the blob bytes shipped to clients.
	Fetches     int64
	BytesServed int64
}

// Stats reports the server's current storage and cumulative traffic.
func (s *BulkServer) Stats() BulkStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := BulkStats{
		Blobs:        len(s.blobs) + len(s.content),
		ContentBlobs: len(s.content),
		Fetches:      s.fetchesServed.Load(),
		BytesServed:  s.bytesServed.Load(),
	}
	for _, b := range s.blobs {
		st.StoredBytes += int64(len(b))
	}
	for _, rb := range s.content {
		st.StoredBytes += int64(len(rb.data))
		st.ContentRefs += rb.refs
	}
	return st
}

// Close stops the server and waits for in-flight transfers.
func (s *BulkServer) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *BulkServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error; keep serving.
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

const (
	statusOK       = 0x01
	statusNotFound = 0x02
)

// lookup resolves a fetch key against the plain store, then the alias
// table, then the content store.
func (s *BulkServer) lookup(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if blob, ok := s.blobs[key]; ok {
		return blob, true
	}
	if target, ok := s.aliases[key]; ok {
		key = target
	}
	if rb, ok := s.content[key]; ok {
		return rb.data, true
	}
	return nil, false
}

func (s *BulkServer) serveConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	bp := keyBufPool.Get().(*[]byte)
	key, err := readFrameInto(conn, (*bp)[:0])
	if err != nil {
		keyBufPool.Put(bp)
		return
	}
	lookupKey := string(key)
	if cap(key) > cap(*bp) {
		*bp = key[:0]
	}
	if cap(*bp) <= maxPooledKeyBuf {
		keyBufPool.Put(bp)
	}
	s.fetchesServed.Add(1)
	blob, ok := s.lookup(lookupKey)
	if !ok {
		_ = WriteFrame(conn, []byte{statusNotFound})
		return
	}
	s.bytesServed.Add(int64(len(blob)))
	// Stream header + status + blob without copying the (possibly large)
	// blob into a combined buffer. The CRC covers the whole frame body
	// (status byte + blob), exactly what WriteFrame would checksum.
	if 1+len(blob) > MaxFrameSize {
		_ = WriteFrame(conn, []byte{statusNotFound})
		return
	}
	crc := crc32.Update(crc32.Checksum([]byte{statusOK}, crcTable), crcTable, blob)
	var hdr [frameHeaderSize + 1]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(blob)))
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = statusOK
	if _, err := conn.Write(hdr[:]); err != nil {
		return
	}
	_, _ = conn.Write(blob)
}

// FetchBlob retrieves a named blob from a bulk server.
func FetchBlob(addr, key string, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: bulk dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, []byte(key)); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("wire: empty bulk response for %q", key)
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusNotFound:
		return nil, fmt.Errorf("wire: blob %q not found", key)
	default:
		return nil, fmt.Errorf("wire: bad bulk status byte %#x", resp[0])
	}
}
