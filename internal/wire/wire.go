package wire // package documentation lives in doc.go

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single framed message (64 MiB) to keep a corrupt
// or malicious length prefix from exhausting memory.
const MaxFrameSize = 64 << 20

// ErrCorruptFrame is returned by ReadFrame when a frame's checksum does not
// match its body — bit rot or a corrupting middlebox on the bulk channel.
// Callers treat it like any other transport failure: the fetch is retried
// or the unit requeued, never consumed as silently wrong data.
var ErrCorruptFrame = errors.New("wire: corrupt frame (checksum mismatch)")

// crcTable is the Castagnoli polynomial table; CRC-32C is hardware
// accelerated on amd64/arm64, so checksumming adds little to a bulk copy.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the fixed per-frame overhead: 4 bytes big-endian body
// length followed by 4 bytes CRC-32C of the body. Adding the checksum word
// changed the frame format incompatibly: server and donors must run the
// same build (there is no version negotiation on the bulk channel — a
// pre-checksum peer would consume the CRC word as body bytes). The control
// channel's compatibility affordances (epoch 0 accepted, cancel notices
// optional) are unaffected.
const frameHeaderSize = 8

// WriteFrame writes a length-prefixed, checksummed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrameSize)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r and verifies its
// checksum, returning ErrCorruptFrame on a mismatch.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	want := binary.BigEndian.Uint32(hdr[4:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	if got := crc32.Checksum(buf, crcTable); got != want {
		return nil, fmt.Errorf("%w: crc %08x, frame claims %08x", ErrCorruptFrame, got, want)
	}
	return buf, nil
}

// BulkServer serves named blobs over raw TCP: a client connects, sends one
// frame containing the blob key, and receives one frame with the blob (or
// an empty frame if unknown, distinguished by a one-byte status prefix).
// This is the "data files over ordinary sockets" channel.
type BulkServer struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	ln    net.Listener
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewBulkServer starts a bulk server on addr ("host:0" picks a free port).
func NewBulkServer(addr string) (*BulkServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: bulk listen: %w", err)
	}
	s := &BulkServer{
		blobs: make(map[string][]byte),
		ln:    ln,
		done:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *BulkServer) Addr() string { return s.ln.Addr().String() }

// Put registers (or replaces) a blob under key.
func (s *BulkServer) Put(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = blob
}

// Delete removes a blob.
func (s *BulkServer) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, key)
}

// Close stops the server and waits for in-flight transfers.
func (s *BulkServer) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *BulkServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error; keep serving.
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

const (
	statusOK       = 0x01
	statusNotFound = 0x02
)

func (s *BulkServer) serveConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	key, err := ReadFrame(conn)
	if err != nil {
		return
	}
	s.mu.RLock()
	blob, ok := s.blobs[string(key)]
	s.mu.RUnlock()
	if !ok {
		_ = WriteFrame(conn, []byte{statusNotFound})
		return
	}
	// Stream header + status + blob without copying the (possibly large)
	// blob into a combined buffer. The CRC covers the whole frame body
	// (status byte + blob), exactly what WriteFrame would checksum.
	if 1+len(blob) > MaxFrameSize {
		_ = WriteFrame(conn, []byte{statusNotFound})
		return
	}
	crc := crc32.Update(crc32.Checksum([]byte{statusOK}, crcTable), crcTable, blob)
	var hdr [frameHeaderSize + 1]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(blob)))
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = statusOK
	if _, err := conn.Write(hdr[:]); err != nil {
		return
	}
	_, _ = conn.Write(blob)
}

// FetchBlob retrieves a named blob from a bulk server.
func FetchBlob(addr, key string, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: bulk dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, []byte(key)); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("wire: empty bulk response for %q", key)
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusNotFound:
		return nil, fmt.Errorf("wire: blob %q not found", key)
	default:
		return nil, fmt.Errorf("wire: bad bulk status byte %#x", resp[0])
	}
}
