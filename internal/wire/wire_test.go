package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 100000),
	}
	for _, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame round trip changed %d-byte payload", len(p))
		}
	}
}

func TestFrameMultiple(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Errorf("frame %d = %v", i, got)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized write accepted")
	}
	// Forge an oversized header (length + checksum words).
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized read err = %v", err)
	}
}

// TestFrameRejectsCorruptBody is the checksum regression: any flipped bit
// in a frame body must surface as ErrCorruptFrame, never as silently wrong
// data handed to a gob decoder.
func TestFrameRejectsCorruptBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("the paper's data files travel ordinary sockets")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, at := range []int{frameHeaderSize, len(raw) - 1} { // first and last body byte
		corrupted := append([]byte(nil), raw...)
		corrupted[at] ^= 0x40
		if _, err := ReadFrame(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("flip at %d: err = %v, want ErrCorruptFrame", at, err)
		}
	}
	// A corrupted stored checksum is equally detected.
	corrupted := append([]byte(nil), raw...)
	corrupted[5] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("crc flip: err = %v, want ErrCorruptFrame", err)
	}
	// And the untouched frame still reads.
	if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Errorf("pristine frame rejected: %v", err)
	}
}

// TestBulkServerStreamedBlobChecksum covers the streamed (header + status +
// blob) fast path in serveConn, which assembles its checksum without going
// through WriteFrame.
func TestBulkServerStreamedBlobChecksum(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 50000)
	s.Put("k", blob)
	got, err := FetchBlob(s.Addr(), "k", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("streamed blob mangled")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello world"))
	trunc := buf.Bytes()[:8]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestBulkServerRoundTrip(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte("genome"), 10000)
	s.Put("db1", blob)
	got, err := FetchBlob(s.Addr(), "db1", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Errorf("blob changed in transit: %d vs %d bytes", len(got), len(blob))
	}
}

func TestBulkServerNotFound(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = FetchBlob(s.Addr(), "missing", 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("expected not-found error, got %v", err)
	}
}

func TestBulkServerDelete(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("k", []byte("v"))
	s.Delete("k")
	if _, err := FetchBlob(s.Addr(), "k", 2*time.Second); err == nil {
		t.Error("deleted blob still served")
	}
}

func TestBulkServerConcurrentFetches(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte{7}, 50000)
	s.Put("x", blob)
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			got, err := FetchBlob(s.Addr(), "x", 5*time.Second)
			if err == nil && !bytes.Equal(got, blob) {
				err = bytes.ErrTooLarge // any sentinel
			}
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDigestFormat(t *testing.T) {
	d := Digest([]byte("alignment"))
	if !strings.HasPrefix(d, "sha256:") || len(d) != len("sha256:")+64 {
		t.Errorf("Digest = %q, want sha256:<64 hex>", d)
	}
	if Digest([]byte("alignment")) != d {
		t.Error("Digest not deterministic")
	}
	if Digest([]byte("other")) == d {
		t.Error("distinct blobs share a digest")
	}
}

// TestContentStoreRefcountAndAlias covers the content store's lifecycle:
// N references to identical bytes keep one stored copy, the legacy alias
// serves the same bytes, and the blob survives exactly until its last
// Release.
func TestContentStoreRefcountAndAlias(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte("shared alignment"), 4096)
	digest := Digest(blob)
	for i := 0; i < 3; i++ {
		s.PutContent(digest, blob)
	}
	s.Alias("shared/p1", digest)
	s.Alias("shared/p2", digest)

	st := s.Stats()
	if st.ContentBlobs != 1 || st.ContentRefs != 3 {
		t.Errorf("content store = %d blobs / %d refs, want 1 / 3", st.ContentBlobs, st.ContentRefs)
	}
	if st.StoredBytes != int64(len(blob)) {
		t.Errorf("StoredBytes = %d, want one copy (%d)", st.StoredBytes, len(blob))
	}

	for _, key := range []string{ContentKey(digest), "shared/p1", "shared/p2"} {
		got, err := FetchBlob(s.Addr(), key, 5*time.Second)
		if err != nil {
			t.Fatalf("fetch %q: %v", key, err)
		}
		if !bytes.Equal(got, blob) {
			t.Errorf("fetch %q returned different bytes", key)
		}
	}

	// Two releases leave the blob alive; the third frees it.
	s.Release(digest)
	s.Release(digest)
	if _, err := FetchBlob(s.Addr(), ContentKey(digest), 2*time.Second); err != nil {
		t.Errorf("blob gone with a live reference: %v", err)
	}
	s.DropAlias("shared/p1")
	s.Release(digest)
	if _, err := FetchBlob(s.Addr(), ContentKey(digest), 2*time.Second); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Errorf("fully released blob: err = %v, want not found", err)
	}
	// The surviving alias now dangles and answers not-found, not stale bytes.
	if _, err := FetchBlob(s.Addr(), "shared/p2", 2*time.Second); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Errorf("dangling alias: err = %v, want not found", err)
	}
	s.Release(digest) // releasing an unknown digest is a no-op
}

// TestBulkStatsTraffic checks the fetch/byte accounting the dedup
// benchmark reads.
func TestBulkStatsTraffic(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte{9}, 1000)
	s.Put("k", blob)
	for i := 0; i < 3; i++ {
		if _, err := FetchBlob(s.Addr(), "k", 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	_, _ = FetchBlob(s.Addr(), "missing", 2*time.Second)
	st := s.Stats()
	if st.Fetches != 4 {
		t.Errorf("Fetches = %d, want 4", st.Fetches)
	}
	if st.BytesServed != 3*int64(len(blob)) {
		t.Errorf("BytesServed = %d, want %d", st.BytesServed, 3*len(blob))
	}
	if st.Blobs != 1 || st.StoredBytes != int64(len(blob)) {
		t.Errorf("storage = %d blobs / %d bytes, want 1 / %d", st.Blobs, st.StoredBytes, len(blob))
	}
}

func TestFetchBlobConnectionRefused(t *testing.T) {
	// Grab a port then close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := FetchBlob(addr, "k", 500*time.Millisecond); err == nil {
		t.Error("fetch from dead server succeeded")
	}
}
