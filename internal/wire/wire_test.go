package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 100000),
	}
	for _, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame round trip changed %d-byte payload", len(p))
		}
	}
}

func TestFrameMultiple(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Errorf("frame %d = %v", i, got)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized write accepted")
	}
	// Forge an oversized header (length + checksum words).
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized read err = %v", err)
	}
}

// TestFrameRejectsCorruptBody is the checksum regression: any flipped bit
// in a frame body must surface as ErrCorruptFrame, never as silently wrong
// data handed to a gob decoder.
func TestFrameRejectsCorruptBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("the paper's data files travel ordinary sockets")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, at := range []int{frameHeaderSize, len(raw) - 1} { // first and last body byte
		corrupted := append([]byte(nil), raw...)
		corrupted[at] ^= 0x40
		if _, err := ReadFrame(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("flip at %d: err = %v, want ErrCorruptFrame", at, err)
		}
	}
	// A corrupted stored checksum is equally detected.
	corrupted := append([]byte(nil), raw...)
	corrupted[5] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("crc flip: err = %v, want ErrCorruptFrame", err)
	}
	// And the untouched frame still reads.
	if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Errorf("pristine frame rejected: %v", err)
	}
}

// TestBulkServerStreamedBlobChecksum covers the streamed (header + status +
// blob) fast path in serveConn, which assembles its checksum without going
// through WriteFrame.
func TestBulkServerStreamedBlobChecksum(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 50000)
	s.Put("k", blob)
	got, err := FetchBlob(s.Addr(), "k", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("streamed blob mangled")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello world"))
	trunc := buf.Bytes()[:8]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestBulkServerRoundTrip(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte("genome"), 10000)
	s.Put("db1", blob)
	got, err := FetchBlob(s.Addr(), "db1", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Errorf("blob changed in transit: %d vs %d bytes", len(got), len(blob))
	}
}

func TestBulkServerNotFound(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = FetchBlob(s.Addr(), "missing", 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("expected not-found error, got %v", err)
	}
}

func TestBulkServerDelete(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("k", []byte("v"))
	s.Delete("k")
	if _, err := FetchBlob(s.Addr(), "k", 2*time.Second); err == nil {
		t.Error("deleted blob still served")
	}
}

func TestBulkServerConcurrentFetches(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte{7}, 50000)
	s.Put("x", blob)
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			got, err := FetchBlob(s.Addr(), "x", 5*time.Second)
			if err == nil && !bytes.Equal(got, blob) {
				err = bytes.ErrTooLarge // any sentinel
			}
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFetchBlobConnectionRefused(t *testing.T) {
	// Grab a port then close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := FetchBlob(addr, "k", 500*time.Millisecond); err == nil {
		t.Error("fetch from dead server succeeded")
	}
}
