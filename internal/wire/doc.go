// Package wire implements the two communication channels of the paper's
// system: typed control traffic (carried by net/rpc, Go's analogue of Java
// RMI) and bulk data transfer over plain TCP sockets with length-prefixed
// framing (the paper sends large data files over ordinary sockets because
// that is more efficient than RMI). docs/ARCHITECTURE.md at the repository
// root holds the full protocol specification; this comment is the summary.
//
// # Frame format
//
// Every bulk-channel message is one frame:
//
//	+--------------+---------------+-----------------+
//	| length (4B)  | CRC-32C (4B)  | body (length B) |
//	+--------------+---------------+-----------------+
//
// The length is big-endian and capped at MaxFrameSize (64 MiB) so a
// corrupt or malicious prefix cannot exhaust memory; the checksum is
// CRC-32C (Castagnoli — hardware-accelerated on amd64/arm64) over the
// body, verified on receive. A mismatch surfaces as ErrCorruptFrame and is
// treated like any other transport failure: retried or requeued, never
// consumed as silently wrong data. The frame format itself is not
// versioned — server and donors must run compatible builds for the bulk
// channel, since a peer predating the checksum word would consume it as
// body bytes.
//
// # Bulk blob protocol
//
// BulkServer serves named blobs: a client connects, sends one frame
// containing the blob key, and receives one frame whose body is a status
// byte (statusOK / statusNotFound) followed by the blob. FetchBlob is the
// client side.
//
// Shared blobs are content-addressed: PutContent stores bytes once under
// ContentKey(Digest(blob)) — "content/sha256:<hex>" — however many
// problems share them, refcounted so the copy lives exactly until the
// last referencing problem releases it. Alias lets a legacy per-problem
// key resolve to the same bytes without a second copy, which is how
// donors predating the scheme keep working. The dist layer aliases a
// problem's shared data at "shared/<problemID>" and stores offloaded unit
// payloads under "unit/<problemID>/<epoch>.<unitID>". Fetchers of a
// content key verify the bytes hash back to the digest; a mismatch is
// ErrDigestMismatch, handled like any transport failure.
//
// # Control-channel capabilities
//
// The control channel (net/rpc over gob) is versioned by capability
// advertisement: optional behaviours are listed as tokens (CapWaitTask,
// CapContentBulk, ...) in the server's Handshake reply, and a donor only
// calls a verb — or trusts a key scheme — whose token it saw at Dial. gob
// ignores unknown struct fields, so old and new binaries interoperate in
// both directions; see protocol.go.
package wire
