package wire

// Control-channel capability tokens.
//
// The control channel (net/rpc over gob) is versioned by capability
// advertisement rather than by a protocol number: the server lists the
// optional verbs it speaks in its Handshake reply, and a donor uses a verb
// only after seeing its token. gob ignores struct fields the peer does not
// know, so a new donor against an old server simply sees an empty list and
// falls back to the baseline verbs (RequestTask polling), while an old
// donor against a new server never asks for the list at all — the wire
// change is negotiated, not flag-day. The bulk channel has no such
// affordance (see the frame-format note in wire.go): its framing must
// match on both sides.
const (
	// CapWaitTask marks a server that implements the Dist.WaitTask
	// long-poll dispatch verb: the call parks server-side until a unit is
	// dispatchable for the donor (or the park deadline passes) instead of
	// answering "nothing yet, poll again in WaitHint".
	CapWaitTask = "wait-task"

	// CapContentBulk marks a server whose shared blobs are
	// content-addressed: task metadata carries the blob's SHA-256 digest
	// and the blob is fetchable under ContentKey(digest), so donors cache
	// by digest (one fetch for N problems sharing an alignment) and verify
	// every fetched blob against the digest before use. The server still
	// aliases each problem's legacy "shared/<problemID>" key to the same
	// bytes, so a donor that never saw this token — or a new donor against
	// an old server that never advertised it — falls back to per-problem
	// fetches and the fleet keeps draining.
	CapContentBulk = "content-bulk"
)

// NegotiateCaps folds a Handshake reply's advertised capability tokens
// into the lookup set a client keys verb selection from. Unknown tokens
// are kept — a newer server's extra capabilities must not confuse an
// older client, which simply never looks them up — and duplicates
// collapse; nil input (an old server that advertises nothing) yields an
// empty, usable set, never nil panics.
func NegotiateCaps(advertised []string) map[string]bool {
	caps := make(map[string]bool, len(advertised))
	for _, token := range advertised {
		caps[token] = true
	}
	return caps
}
