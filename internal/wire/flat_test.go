package wire

import (
	"bytes"
	"errors"
	"net"
	"net/rpc"
	"testing"
)

// TestFlatPrimitivesRoundTrip encodes one of each field kind and decodes
// them back, including the zero-copy aliasing contract of Bytes.
func TestFlatPrimitivesRoundTrip(t *testing.T) {
	e := newEncoder()
	defer e.release()
	e.Uvarint(0)
	e.Uvarint(1<<63 + 17)
	e.Varint(-1234567)
	e.Varint(0)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte("payload"))
	e.Bytes(nil)
	e.String("algorithm/name")
	e.String("")

	frame := append([]byte(nil), e.buf...)
	d := NewDecoder(frame)
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("Uvarint: got %d, want 0", got)
	}
	if got := d.Uvarint(); got != 1<<63+17 {
		t.Fatalf("Uvarint: got %d, want %d", got, uint64(1<<63+17))
	}
	if got := d.Varint(); got != -1234567 {
		t.Fatalf("Varint: got %d, want -1234567", got)
	}
	if got := d.Varint(); got != 0 {
		t.Fatalf("Varint: got %d, want 0", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip mismatch")
	}
	b := d.Bytes()
	if string(b) != "payload" {
		t.Fatalf("Bytes: got %q", b)
	}
	// Zero-copy: the decoded slice must alias the frame buffer, so a
	// mutation through the frame is visible through the slice.
	idx := bytes.Index(frame, []byte("payload"))
	frame[idx] ^= 0xFF
	if b[0] == 'p' {
		t.Fatal("Bytes did not alias the frame buffer (expected zero-copy)")
	}
	frame[idx] ^= 0xFF
	if got := d.Bytes(); got != nil {
		t.Fatalf("empty Bytes: got %q, want nil", got)
	}
	if got := d.String(); got != "algorithm/name" {
		t.Fatalf("String: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty String: got %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error: %v", err)
	}
}

// TestFlatDecoderTruncation checks that every truncation point fails
// cleanly, wrapping ErrCorruptFrame, and never panics or over-allocates.
func TestFlatDecoderTruncation(t *testing.T) {
	e := newEncoder()
	defer e.release()
	e.String("donor-7")
	e.Varint(42)
	full := append([]byte(nil), e.buf...)
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.String()
		_ = d.Varint()
		err := d.Err()
		if err == nil {
			t.Fatalf("cut=%d decoded without error", cut)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("cut=%d: error %v does not wrap ErrCorruptFrame", cut, err)
		}
	}
	// A length prefix claiming more bytes than the frame holds must fail,
	// not over-allocate.
	bad := NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	_ = bad.Bytes()
	if !errors.Is(bad.Err(), ErrCorruptFrame) {
		t.Fatalf("oversized length claim: got %v, want ErrCorruptFrame", bad.Err())
	}
}

// FlatPing is a minimal envelope for exercising the rpc codecs end to end.
type FlatPing struct {
	Seq     int64
	Payload []byte
	Note    string
}

func (p FlatPing) MarshalFlat(e *Encoder) {
	e.Varint(p.Seq)
	e.Bytes(p.Payload)
	e.String(p.Note)
}

func (p *FlatPing) UnmarshalFlat(d *Decoder) {
	p.Seq = d.Varint()
	p.Payload = d.Bytes()
	p.Note = d.String()
}

// FlatPingService echoes pings and fails on demand, covering both the
// body-carrying and the error (body-less) response paths.
type FlatPingService struct{}

func (FlatPingService) Echo(args FlatPing, reply *FlatPing) error {
	reply.Seq = args.Seq + 1
	reply.Payload = append([]byte(nil), args.Payload...)
	reply.Note = args.Note
	return nil
}

func (FlatPingService) Fail(args FlatPing, _ *FlatPing) error {
	return errors.New("deliberate failure for " + args.Note)
}

// TestFlatCodecRPCRoundTrip runs a real net/rpc client/server pair over
// the flat codec on a loopback connection: concurrent echo calls, an
// errored call (the response carries no body), and a call after the
// error to prove the connection survives it.
func TestFlatCodecRPCRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Ping", FlatPingService{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv.ServeCodec(NewFlatServerCodec(conn))
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := rpc.NewClientWithCodec(NewFlatClientCodec(conn))
	defer client.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			args := FlatPing{Seq: int64(i), Payload: bytes.Repeat([]byte{byte(i)}, i*100), Note: "call"}
			var reply FlatPing
			if err := client.Call("Ping.Echo", args, &reply); err != nil {
				done <- err
				return
			}
			if reply.Seq != int64(i)+1 || !bytes.Equal(reply.Payload, args.Payload) || reply.Note != "call" {
				done <- errors.New("echo mismatch")
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	var reply FlatPing
	err = client.Call("Ping.Fail", FlatPing{Note: "unit-9"}, &reply)
	if err == nil || err.Error() != "deliberate failure for unit-9" {
		t.Fatalf("errored call: got %v", err)
	}
	if err := client.Call("Ping.Echo", FlatPing{Seq: 7}, &reply); err != nil {
		t.Fatalf("call after error: %v", err)
	}
	if reply.Seq != 8 {
		t.Fatalf("call after error: seq %d, want 8", reply.Seq)
	}
}

// TestFlatCodecRejectsNonFlatBody pins the misuse contract: a body that
// does not implement FlatMarshaler fails the call with a diagnostic
// instead of putting garbage on the wire.
func TestFlatCodecRejectsNonFlatBody(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	client := rpc.NewClientWithCodec(NewFlatClientCodec(c1))
	defer client.Close()
	var reply FlatPing
	err := client.Call("Ping.Echo", struct{ X int }{1}, &reply)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("FlatMarshaler")) {
		t.Fatalf("non-flat body: got %v, want FlatMarshaler error", err)
	}
}

// TestFlatPreambleDistinct pins the sniffing invariant: the preamble
// starts with a zero byte, which can never open a gob-rpc stream (gob
// frames every message with a non-zero byte count first).
func TestFlatPreambleDistinct(t *testing.T) {
	if FlatPreamble[0] != 0 {
		t.Fatalf("FlatPreamble must start with a zero byte, got %#x", FlatPreamble[0])
	}
	if len(FlatPreamble) < 4 {
		t.Fatalf("FlatPreamble too short to sniff reliably: %d bytes", len(FlatPreamble))
	}
}

// FuzzFlatCodec mirrors FuzzFrameDecode for the flat layer: a fuzzed
// message round-trips through Encoder/Decoder exactly; its framed bytes
// survive WriteFrame/ReadFrame; flipping a frame-body bit surfaces
// ErrCorruptFrame; and feeding the raw fuzz input straight to a Decoder
// fails cleanly (wrapping ErrCorruptFrame) or parses — never panics.
func FuzzFlatCodec(f *testing.F) {
	f.Add(uint64(1), "Dist.WaitTask", []byte("payload"), int64(-5), true, 3)
	f.Add(uint64(0), "", []byte{}, int64(0), false, 0)
	f.Add(uint64(1<<40), "Dist.SubmitResult", bytes.Repeat([]byte{0xA5}, 512), int64(1<<50), true, 100)

	f.Fuzz(func(t *testing.T, seq uint64, method string, payload []byte, num int64, flag bool, flipAt int) {
		e := newEncoder()
		e.Uvarint(seq)
		e.String(method)
		e.Bytes(payload)
		e.Varint(num)
		e.Bool(flag)
		msg := append([]byte(nil), e.buf...)
		e.release()

		// Field-level round-trip.
		d := NewDecoder(msg)
		if got := d.Uvarint(); got != seq {
			t.Fatalf("seq: got %d, want %d", got, seq)
		}
		if got := d.String(); got != method {
			t.Fatalf("method: got %q, want %q", got, method)
		}
		if got := d.Bytes(); !bytes.Equal(got, payload) {
			t.Fatalf("payload: got %x, want %x", got, payload)
		}
		if got := d.Varint(); got != num {
			t.Fatalf("num: got %d, want %d", got, num)
		}
		if got := d.Bool(); got != flag {
			t.Fatalf("flag: got %v, want %v", got, flag)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("decoder error on valid message: %v", err)
		}

		// Framed round-trip, then flip a body bit: the CRC must catch it.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			t.Fatalf("framing: %v", err)
		}
		back, err := ReadFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reading framed message: %v", err)
		}
		if !bytes.Equal(back, msg) {
			t.Fatal("framed round-trip mismatch")
		}
		bad := append([]byte(nil), buf.Bytes()...)
		idx := frameHeaderSize
		if flipAt > 0 {
			idx += flipAt % len(msg)
		}
		bad[idx] ^= 0x01
		if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("corrupted frame: got %v, want ErrCorruptFrame", err)
		}

		// Arbitrary bytes through a Decoder: must fail cleanly or parse.
		wild := NewDecoder(payload)
		_ = wild.Uvarint()
		_ = wild.String()
		_ = wild.Bytes()
		_ = wild.Varint()
		_ = wild.Bool()
		if err := wild.Err(); err != nil && !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("wild decode error %v does not wrap ErrCorruptFrame", err)
		}
	})
}

// TestReadFrameIntoReuse pins the pooled-read contract serveConn relies
// on: a buffer with enough capacity is reused in place, a larger frame
// gets a fresh allocation.
func TestReadFrameIntoReuse(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("key-1")); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 64)
	got, err := readFrameInto(bytes.NewReader(buf.Bytes()), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "key-1" {
		t.Fatalf("got %q", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("readFrameInto did not reuse the provided buffer")
	}
	buf.Reset()
	big := bytes.Repeat([]byte{0x5A}, 256)
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	got, err = readFrameInto(bytes.NewReader(buf.Bytes()), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large frame mismatch")
	}
	if cap(got) == cap(scratch) {
		t.Fatal("expected a fresh allocation for the larger frame")
	}
}
