package wire

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

// TestFrameRoundTripProperty: any payload (within the size limit) survives
// a write/read cycle byte-for-byte, including empty and binary payloads.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFrameSequenceProperty: multiple frames written back-to-back read out
// in order with correct boundaries.
func TestFrameSequenceProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		for _, p := range payloads {
			if err := WriteFrame(&buf, p); err != nil {
				return false
			}
		}
		for _, p := range payloads {
			got, err := ReadFrame(&buf)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBulkBlobRoundTripProperty: arbitrary binary blobs survive the bulk
// socket channel.
func TestBulkBlobRoundTripProperty(t *testing.T) {
	s, err := NewBulkServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f := func(key string, blob []byte) bool {
		if key == "" {
			key = "k"
		}
		s.Put(key, blob)
		got, err := FetchBlob(s.Addr(), key, 5*time.Second)
		if err != nil {
			t.Logf("fetch %q: %v", key, err)
			return false
		}
		return bytes.Equal(got, blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
