package wire

// Flat control-channel codec: a hand-rolled binary encoding for the hot
// RPC envelopes (task dispatch, results, failure reports, cancel notices)
// that retires gob — and its per-message reflection walk — from the unit
// round-trip. Every message is one checksummed frame (WriteFrame/ReadFrame,
// so corruption detection is inherited from the bulk channel): varint
// scalars, length-prefixed strings and byte fields, nothing self-describing.
// The field order is fixed per envelope and specified in
// docs/ARCHITECTURE.md; there is no tag skipping and no schema evolution
// inside the codec — the encoding is versioned as a whole by the
// CapFlatCodec capability token, and any incompatible change must ship
// under a new token while gob remains the negotiated fallback.
//
// Decoding is zero-copy: Decoder.Bytes returns subslices of the frame
// buffer, so one allocation per received message covers every byte field
// in it. Receive-side frame buffers are therefore never pooled or reused —
// the decoded payloads alias them and escape into caller-owned structures.
// Encode-side buffers carry no such aliases and are recycled through a
// sync.Pool.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/rpc"
	"sync"
)

// CapFlatCodec marks a server that accepts the flat control-channel codec
// on connections opened with the FlatPreamble. Negotiated at Dial exactly
// like CapWaitTask/CapContentBulk: a donor that never sees the token — or
// a server that never advertises it — stays on gob for that connection,
// so mixed fleets keep draining. The token names the encoding version; an
// incompatible flat-format change must introduce a new token. Version 2
// added the Priority field to the dispatch envelopes; version 3 added the
// Verify replica flag. A peer of an older version never matches the
// current token (or preamble), so mixed-version fleets negotiate down to
// gob — which tolerates the new fields — rather than misframing.
const CapFlatCodec = "flat-codec/3"

// FlatPreamble is written by a client as the very first bytes of a
// connection that will speak the flat codec; the server sniffs it before
// handing the connection to either RPC codec. The leading zero byte can
// never begin a gob-rpc stream (gob frames a message with its non-zero
// byte count first), so a legacy gob connection is never misread as flat.
// The version digit tracks CapFlatCodec (a client only writes the
// preamble after seeing the matching token), and every version keeps the
// same byte length so the server's sniff window never changes.
const FlatPreamble = "\x00dflt3\r\n"

// Encoder appends flat-encoded fields to a frame buffer. Encoders come
// from a sync.Pool (the codecs recycle them per message) and never fail:
// frame-size enforcement happens when the finished buffer passes through
// WriteFrame.
type Encoder struct{ buf []byte }

// maxPooledBuf bounds the encode buffers kept in the pool, so one huge
// payload does not pin megabytes behind every future small message.
const maxPooledBuf = 1 << 20

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// newEncoder returns a reset pooled encoder.
func newEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// release returns the encoder to the pool (oversized buffers are dropped).
func (e *Encoder) release() {
	if cap(e.buf) <= maxPooledBuf {
		encoderPool.Put(e)
	}
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zig-zag signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Bool appends one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Bytes appends a length-prefixed byte field.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string field.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads flat-encoded fields from one received frame. The first
// malformed field sticks as Err (wrapping ErrCorruptFrame) and every
// subsequent read returns a zero value, so callers decode a whole envelope
// and check once. Byte fields are zero-copy subslices of the frame buffer:
// the frame is decoded with a single allocation, and the buffer must not
// be reused while any decoded payload is live (the codecs never reuse it).
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps one frame for field-wise decoding.
func NewDecoder(frame []byte) *Decoder { return &Decoder{buf: frame} }

// Err reports the first decode failure, nil if every field was well-formed.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: flat decode: truncated or malformed %s at offset %d", ErrCorruptFrame, what, d.off)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Bool reads one byte; any non-zero value is true.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	v := d.buf[d.off] != 0
	d.off++
	return v
}

// Bytes reads a length-prefixed byte field as a zero-copy subslice of the
// frame (capacity-clipped so an append cannot clobber the next field). A
// zero-length field decodes to nil.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	end := d.off + int(n)
	b := d.buf[d.off:end:end]
	d.off = end
	return b
}

// String reads a length-prefixed string field.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// FlatMarshaler is implemented by envelope types that can append
// themselves to a flat frame. Encoding cannot fail; oversized messages are
// rejected by the frame writer.
type FlatMarshaler interface{ MarshalFlat(e *Encoder) }

// FlatUnmarshaler is the decode half; implementations read their fields in
// the exact order MarshalFlat wrote them and leave error handling to
// Decoder.Err.
type FlatUnmarshaler interface{ UnmarshalFlat(d *Decoder) }

// MarshalFlatMessage encodes one message with a pooled encoder and returns
// a copy of the encoded bytes. It exists for round-trip tests and tools;
// the rpc codecs encode straight into their write path without the copy.
func MarshalFlatMessage(m FlatMarshaler) []byte {
	e := newEncoder()
	defer e.release()
	m.MarshalFlat(e)
	return append([]byte(nil), e.buf...)
}

// Flat RPC frame layout (inside the standard checksummed frame):
//
//	request:  uvarint seq, string serviceMethod, body fields
//	response: uvarint seq, string serviceMethod, string error,
//	          body fields (omitted when error is non-empty)

// readMessageFrame reads one codec frame, normalising a clean EOF (the
// peer closed between messages) to bare io.EOF so net/rpc shuts the
// connection down quietly instead of logging a decode failure.
func readMessageFrame(r io.Reader) ([]byte, error) {
	frame, err := ReadFrame(r)
	if err != nil && errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, io.EOF
	}
	return frame, err
}

// flatClientCodec implements rpc.ClientCodec over flat frames. net/rpc
// serialises WriteRequest calls and runs all reads on one goroutine, so
// the codec needs no locking of its own.
type flatClientCodec struct {
	conn io.Closer
	w    *bufio.Writer
	r    *bufio.Reader
	// dec carries the response frame between the header and body reads.
	dec Decoder
}

// NewFlatClientCodec speaks the flat codec over conn (client side). The
// caller has already negotiated CapFlatCodec and written FlatPreamble.
func NewFlatClientCodec(conn io.ReadWriteCloser) rpc.ClientCodec {
	return &flatClientCodec{conn: conn, w: bufio.NewWriter(conn), r: bufio.NewReader(conn)}
}

func (c *flatClientCodec) WriteRequest(req *rpc.Request, body any) error {
	m, ok := body.(FlatMarshaler)
	if !ok {
		return fmt.Errorf("wire: flat codec: request body %T does not implement FlatMarshaler", body)
	}
	e := newEncoder()
	defer e.release()
	e.Uvarint(req.Seq)
	e.String(req.ServiceMethod)
	m.MarshalFlat(e)
	if err := WriteFrame(c.w, e.buf); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *flatClientCodec) ReadResponseHeader(resp *rpc.Response) error {
	frame, err := readMessageFrame(c.r)
	if err != nil {
		return err
	}
	c.dec = Decoder{buf: frame}
	resp.Seq = c.dec.Uvarint()
	resp.ServiceMethod = c.dec.String()
	resp.Error = c.dec.String()
	return c.dec.Err()
}

func (c *flatClientCodec) ReadResponseBody(body any) error {
	if body == nil {
		return nil // errored or discarded response: no body on the wire
	}
	u, ok := body.(FlatUnmarshaler)
	if !ok {
		return fmt.Errorf("wire: flat codec: response body %T does not implement FlatUnmarshaler", body)
	}
	u.UnmarshalFlat(&c.dec)
	return c.dec.Err()
}

func (c *flatClientCodec) Close() error { return c.conn.Close() }

// flatServerCodec is the server half. net/rpc reads on one goroutine and
// holds its sending lock across WriteResponse, so no codec locking either.
type flatServerCodec struct {
	conn io.Closer
	w    *bufio.Writer
	r    *bufio.Reader
	dec  Decoder
}

// NewFlatServerCodec speaks the flat codec over conn (server side), after
// the listener has consumed the FlatPreamble.
func NewFlatServerCodec(conn io.ReadWriteCloser) rpc.ServerCodec {
	return &flatServerCodec{conn: conn, w: bufio.NewWriter(conn), r: bufio.NewReader(conn)}
}

func (c *flatServerCodec) ReadRequestHeader(req *rpc.Request) error {
	frame, err := readMessageFrame(c.r)
	if err != nil {
		return err
	}
	c.dec = Decoder{buf: frame}
	req.Seq = c.dec.Uvarint()
	req.ServiceMethod = c.dec.String()
	return c.dec.Err()
}

func (c *flatServerCodec) ReadRequestBody(body any) error {
	if body == nil {
		return nil // net/rpc discarding the body of an unroutable request
	}
	u, ok := body.(FlatUnmarshaler)
	if !ok {
		return fmt.Errorf("wire: flat codec: request body %T does not implement FlatUnmarshaler", body)
	}
	u.UnmarshalFlat(&c.dec)
	return c.dec.Err()
}

func (c *flatServerCodec) WriteResponse(resp *rpc.Response, body any) error {
	e := newEncoder()
	defer e.release()
	e.Uvarint(resp.Seq)
	e.String(resp.ServiceMethod)
	e.String(resp.Error)
	if resp.Error == "" {
		m, ok := body.(FlatMarshaler)
		if !ok {
			return fmt.Errorf("wire: flat codec: response body %T does not implement FlatMarshaler", body)
		}
		m.MarshalFlat(e)
	}
	if err := WriteFrame(c.w, e.buf); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *flatServerCodec) Close() error { return c.conn.Close() }
