package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzFrameDecode drives ReadFrame with arbitrary bytes (it must fail
// cleanly, never panic or over-allocate) and, when the input happens to be
// a frame WriteFrame produced, checks the round-trip and the
// corruption-detection contract: flipping any body bit must surface
// ErrCorruptFrame.
func FuzzFrameDecode(f *testing.F) {
	seed := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed(nil))
	f.Add(seed([]byte("hello")))
	f.Add(seed(bytes.Repeat([]byte{0xAB}, 1024)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // oversized length claim

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected cleanly — that is the contract
		}
		// Valid frame: it must re-encode to exactly the bytes consumed.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-encoding decoded payload: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("round-trip mismatch:\n got %x\nwant %x", buf.Bytes(), data[:buf.Len()])
		}
		// Corrupting any single body byte must trip the checksum.
		if len(payload) > 0 {
			bad := append([]byte(nil), buf.Bytes()...)
			bad[frameHeaderSize+len(payload)/2] ^= 0x01
			if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("corrupted frame: got %v, want ErrCorruptFrame", err)
			}
		}
	})
}

// FuzzHandshake drives NegotiateCaps with arbitrary advertised token lists
// (split from a fuzzed string, mimicking a peer sending anything at all):
// the set must contain exactly the advertised tokens, tolerate duplicates
// and unknown tokens, and never report a capability nobody advertised.
func FuzzHandshake(f *testing.F) {
	f.Add("")
	f.Add(CapWaitTask)
	f.Add(CapWaitTask + "\n" + CapContentBulk)
	f.Add(CapContentBulk + "\n" + CapContentBulk + "\nfuture-verb")

	f.Fuzz(func(t *testing.T, raw string) {
		var advertised []string
		if raw != "" {
			advertised = strings.Split(raw, "\n")
		}
		caps := NegotiateCaps(advertised)
		if caps == nil {
			t.Fatal("NegotiateCaps returned nil")
		}
		for _, token := range advertised {
			if !caps[token] {
				t.Fatalf("advertised token %q missing from negotiated set", token)
			}
		}
		if len(advertised) == 0 && len(caps) != 0 {
			t.Fatalf("empty advertisement negotiated %d capabilities", len(caps))
		}
		for token := range caps {
			found := false
			for _, adv := range advertised {
				if adv == token {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("token %q appeared without being advertised", token)
			}
		}
	})
}
