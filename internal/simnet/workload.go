// Package simnet is a deterministic discrete-event simulator of the
// paper's deployment: a single coordinating server (a Pentium III 500 in
// the paper) dispatching work units to a pool of heterogeneous,
// possibly-churning donor machines over a 100 Mbit/s network. It reuses the
// real scheduling policies from package sched, so the speedup curves of
// Figures 1 and 2 are produced by the same granularity logic the live
// system runs, with compute modelled analytically (cost units / donor
// speed) instead of burning real CPU per donor.
package simnet

// Workload is the simulator's abstract view of a problem: a supply of work
// units with costs, possibly staged (units of a later stage only become
// available once all results of the current stage are in — the DPRml
// pattern).
type Workload interface {
	// Next produces a unit with approximately the given cost budget.
	// ok=false means nothing is available right now (stage barrier or
	// fully dispatched); the caller retries after results arrive.
	Next(budget int64) (u Unit, ok bool)
	// Complete reports a unit's result back.
	Complete(id int64)
	// Requeue returns a lost (expired) unit to the dispatch pool.
	Requeue(u Unit)
	// Done reports whether every unit completed.
	Done() bool
	// Remaining returns outstanding cost (for remaining-aware policies).
	Remaining() int64
}

// Unit is one dispatched piece of simulated work.
type Unit struct {
	ID   int64
	Cost int64
	// DataBytes and ResultBytes size the network transfers.
	DataBytes   int64
	ResultBytes int64
}

// DivisibleWorkload models DSEARCH: a total cost (database residues times
// queries) divisible at any granularity. BytesPerCost sizes the unit's data
// transfer (the database chunk shipped to the donor).
type DivisibleWorkload struct {
	Total        int64
	BytesPerCost float64
	ResultBytes  int64

	dispatched int64
	completed  int64
	seq        int64
	requeued   []Unit
	inflight   map[int64]int64 // id -> cost
}

// NewDivisibleWorkload creates a DSEARCH-like workload of total cost units.
func NewDivisibleWorkload(total int64, bytesPerCost float64, resultBytes int64) *DivisibleWorkload {
	return &DivisibleWorkload{
		Total:        total,
		BytesPerCost: bytesPerCost,
		ResultBytes:  resultBytes,
		inflight:     make(map[int64]int64),
	}
}

// Next implements Workload.
func (w *DivisibleWorkload) Next(budget int64) (Unit, bool) {
	if len(w.requeued) > 0 {
		u := w.requeued[0]
		w.requeued = w.requeued[1:]
		w.inflight[u.ID] = u.Cost
		return u, true
	}
	left := w.Total - w.dispatched
	if left <= 0 {
		return Unit{}, false
	}
	if budget < 1 {
		budget = 1
	}
	if budget > left {
		budget = left
	}
	w.dispatched += budget
	w.seq++
	u := Unit{
		ID:          w.seq,
		Cost:        budget,
		DataBytes:   int64(float64(budget) * w.BytesPerCost),
		ResultBytes: w.ResultBytes,
	}
	w.inflight[u.ID] = u.Cost
	return u, true
}

// Complete implements Workload.
func (w *DivisibleWorkload) Complete(id int64) {
	if cost, ok := w.inflight[id]; ok {
		delete(w.inflight, id)
		w.completed += cost
	}
}

// Requeue implements Workload.
func (w *DivisibleWorkload) Requeue(u Unit) {
	if _, ok := w.inflight[u.ID]; ok {
		delete(w.inflight, u.ID)
		w.requeued = append(w.requeued, u)
	}
}

// Done implements Workload.
func (w *DivisibleWorkload) Done() bool {
	return w.completed >= w.Total
}

// Remaining implements Workload.
func (w *DivisibleWorkload) Remaining() int64 { return w.Total - w.completed }

// StagedWorkload models DPRml's stepwise insertion: stage s consists of
// Tasks[s] independent tasks of cost TaskCost[s]; all tasks of a stage must
// complete before any task of the next stage is available. Tasks may be
// batched into one unit up to the budget.
type StagedWorkload struct {
	Tasks       []int
	TaskCost    []int64
	DataBytes   int64
	ResultBytes int64

	stage          int
	issuedInStage  int
	doneInStage    int
	seq            int64
	requeued       []Unit
	inflight       map[int64]int // id -> task count
	totalRemaining int64
}

// NewStagedWorkload builds a staged workload; tasks[s] tasks of cost
// taskCost[s] per stage.
func NewStagedWorkload(tasks []int, taskCost []int64, dataBytes, resultBytes int64) *StagedWorkload {
	w := &StagedWorkload{
		Tasks:       append([]int(nil), tasks...),
		TaskCost:    append([]int64(nil), taskCost...),
		DataBytes:   dataBytes,
		ResultBytes: resultBytes,
		inflight:    make(map[int64]int),
	}
	for s := range tasks {
		w.totalRemaining += int64(tasks[s]) * taskCost[s]
	}
	return w
}

// DPRmlWorkload builds the stage structure of stepwise-insertion ML tree
// building over nTaxa taxa: inserting taxon k (k = 4..n) into the current
// (k-1)-leaf unrooted tree evaluates 2k-5 candidate topologies, each
// costing ~costScale*(k) cost units (likelihood evaluation grows with tree
// size).
func DPRmlWorkload(nTaxa int, costScale int64, dataBytes, resultBytes int64) *StagedWorkload {
	var tasks []int
	var costs []int64
	for k := 4; k <= nTaxa; k++ {
		tasks = append(tasks, 2*k-5)
		costs = append(costs, costScale*int64(k))
	}
	return NewStagedWorkload(tasks, costs, dataBytes, resultBytes)
}

// Next implements Workload.
func (w *StagedWorkload) Next(budget int64) (Unit, bool) {
	if len(w.requeued) > 0 {
		u := w.requeued[0]
		w.requeued = w.requeued[1:]
		w.inflight[u.ID] = int(u.Cost / w.TaskCost[w.stage]) // cost encodes batch
		return u, true
	}
	if w.stage >= len(w.Tasks) {
		return Unit{}, false
	}
	avail := w.Tasks[w.stage] - w.issuedInStage
	if avail <= 0 {
		return Unit{}, false // barrier: wait for stage results
	}
	tc := w.TaskCost[w.stage]
	n := int(budget / tc)
	if n < 1 {
		n = 1
	}
	if n > avail {
		n = avail
	}
	w.issuedInStage += n
	w.seq++
	u := Unit{
		ID:          w.seq,
		Cost:        int64(n) * tc,
		DataBytes:   w.DataBytes,
		ResultBytes: w.ResultBytes,
	}
	w.inflight[u.ID] = n
	return u, true
}

// Complete implements Workload.
func (w *StagedWorkload) Complete(id int64) {
	n, ok := w.inflight[id]
	if !ok {
		return
	}
	delete(w.inflight, id)
	w.doneInStage += n
	w.totalRemaining -= int64(n) * w.TaskCost[w.stage]
	if w.doneInStage >= w.Tasks[w.stage] {
		w.stage++
		w.issuedInStage, w.doneInStage = 0, 0
	}
}

// Requeue implements Workload.
func (w *StagedWorkload) Requeue(u Unit) {
	if _, ok := w.inflight[u.ID]; ok {
		delete(w.inflight, u.ID)
		w.requeued = append(w.requeued, u)
	}
}

// Done implements Workload.
func (w *StagedWorkload) Done() bool { return w.stage >= len(w.Tasks) }

// Remaining implements Workload.
func (w *StagedWorkload) Remaining() int64 { return w.totalRemaining }

// MultiWorkload interleaves several independent workloads — the paper's
// Figure 2 scenario of six DPRml problem instances sharing the donor pool.
// Unit IDs are namespaced per instance.
type MultiWorkload struct {
	Instances []Workload
	rr        int
}

// NewMultiWorkload wraps the given instances.
func NewMultiWorkload(instances ...Workload) *MultiWorkload {
	return &MultiWorkload{Instances: instances}
}

const multiShift = 32

// Next implements Workload with round-robin fairness across instances.
func (m *MultiWorkload) Next(budget int64) (Unit, bool) {
	n := len(m.Instances)
	for k := 0; k < n; k++ {
		idx := (m.rr + k) % n
		u, ok := m.Instances[idx].Next(budget)
		if ok {
			m.rr = (idx + 1) % n
			u.ID = int64(idx)<<multiShift | (u.ID & (1<<multiShift - 1))
			return u, true
		}
	}
	return Unit{}, false
}

// Complete implements Workload.
func (m *MultiWorkload) Complete(id int64) {
	idx := int(id >> multiShift)
	if idx < len(m.Instances) {
		m.Instances[idx].Complete(id & (1<<multiShift - 1))
	}
}

// Requeue implements Workload.
func (m *MultiWorkload) Requeue(u Unit) {
	idx := int(u.ID >> multiShift)
	if idx < len(m.Instances) {
		inner := u
		inner.ID = u.ID & (1<<multiShift - 1)
		m.Instances[idx].Requeue(inner)
	}
}

// Done implements Workload.
func (m *MultiWorkload) Done() bool {
	for _, w := range m.Instances {
		if !w.Done() {
			return false
		}
	}
	return true
}

// Remaining implements Workload.
func (m *MultiWorkload) Remaining() int64 {
	var sum int64
	for _, w := range m.Instances {
		sum += w.Remaining()
	}
	return sum
}
