package simnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Availability traces: the paper's deployment ran on machines whose
// availability nobody controlled (lab PCs, cluster nodes). For experiments
// that should replay a recorded (or hand-written) availability pattern
// rather than a synthetic one, donor specs can be loaded from a CSV trace.
//
// Format (header optional, columns fixed):
//
//	name,speed,offline_from_min,offline_to_min
//
// One row per offline window; rows with empty window columns declare an
// always-on machine. Rows for the same name accumulate windows. Example:
//
//	pc01,1.0,540,1020     # owner 9:00-17:00
//	pc01,1.0,1980,2460    # and again next day
//	node1,0.8,,           # dedicated, always on

// LoadAvailabilityTrace parses a CSV availability trace into donor specs.
// Windows are sorted and validated per machine.
func LoadAvailabilityTrace(r io.Reader) ([]DonorSpec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.TrimLeadingSpace = true
	cr.Comment = '#'

	specs := make(map[string]*DonorSpec)
	var order []string
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("simnet: trace line %d: %w", line+1, err)
		}
		line++
		if line == 1 && rec[0] == "name" {
			continue // header
		}
		name := rec[0]
		if name == "" {
			return nil, fmt.Errorf("simnet: trace line %d: empty machine name", line)
		}
		speed, err := strconv.ParseFloat(rec[1], 64)
		if err != nil || speed <= 0 {
			return nil, fmt.Errorf("simnet: trace line %d: bad speed %q", line, rec[1])
		}
		d, ok := specs[name]
		if !ok {
			d = &DonorSpec{
				Name:      name,
				Speed:     speed,
				Latency:   2 * time.Millisecond,
				Bandwidth: 100e6 / 8,
			}
			specs[name] = d
			order = append(order, name)
		} else if d.Speed != speed {
			return nil, fmt.Errorf("simnet: trace line %d: machine %s re-declared with speed %g (was %g)",
				line, name, speed, d.Speed)
		}
		if rec[2] == "" && rec[3] == "" {
			continue // always-on declaration
		}
		from, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("simnet: trace line %d: bad offline_from %q", line, rec[2])
		}
		to, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("simnet: trace line %d: bad offline_to %q", line, rec[3])
		}
		w := Window{
			From: time.Duration(from * float64(time.Minute)),
			To:   time.Duration(to * float64(time.Minute)),
		}
		if w.To <= w.From || w.From < 0 {
			return nil, fmt.Errorf("simnet: trace line %d: inverted window [%s, %s)", line, w.From, w.To)
		}
		d.Offline = append(d.Offline, w)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("simnet: empty availability trace")
	}
	out := make([]DonorSpec, 0, len(order))
	for _, name := range order {
		d := specs[name]
		sort.Slice(d.Offline, func(i, j int) bool { return d.Offline[i].From < d.Offline[j].From })
		for i := 1; i < len(d.Offline); i++ {
			if d.Offline[i].From < d.Offline[i-1].To {
				return nil, fmt.Errorf("simnet: machine %s has overlapping offline windows", name)
			}
		}
		out = append(out, *d)
	}
	return out, nil
}

// WriteAvailabilityTrace renders donor specs back to the CSV trace format
// (round-trip counterpart of LoadAvailabilityTrace, used to snapshot
// generated pools such as DiurnalLab for reuse).
func WriteAvailabilityTrace(w io.Writer, specs []DonorSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "speed", "offline_from_min", "offline_to_min"}); err != nil {
		return err
	}
	for _, d := range specs {
		speed := strconv.FormatFloat(d.Speed, 'g', -1, 64)
		if len(d.Offline) == 0 {
			if err := cw.Write([]string{d.Name, speed, "", ""}); err != nil {
				return err
			}
			continue
		}
		for _, win := range d.Offline {
			if err := cw.Write([]string{
				d.Name, speed,
				strconv.FormatFloat(win.From.Minutes(), 'g', -1, 64),
				strconv.FormatFloat(win.To.Minutes(), 'g', -1, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
