package simnet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

const sampleTrace = `name,speed,offline_from_min,offline_to_min
pc01,1.0,540,1020
pc01,1.0,1980,2460
node1,0.8,,
pc02,0.5,0,60
`

func TestLoadAvailabilityTrace(t *testing.T) {
	specs, err := LoadAvailabilityTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("%d machines, want 3", len(specs))
	}
	byName := map[string]DonorSpec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	pc01 := byName["pc01"]
	if len(pc01.Offline) != 2 || pc01.Offline[0].From != 9*time.Hour || pc01.Offline[1].To != 41*time.Hour {
		t.Errorf("pc01 windows: %+v", pc01.Offline)
	}
	if n := byName["node1"]; n.Speed != 0.8 || len(n.Offline) != 0 {
		t.Errorf("node1: %+v", n)
	}
	if len(byName["pc02"].Offline) != 1 {
		t.Errorf("pc02: %+v", byName["pc02"])
	}
}

func TestLoadAvailabilityTraceErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"pc,0,10,20\n",             // zero speed
		"pc,1,20,10\n",             // inverted
		"pc,1,abc,10\n",            // bad number
		"pc,1,10,20\npc,2,30,40\n", // speed re-declared
		"pc,1,10,30\npc,1,20,40\n", // overlapping windows
		",1,10,20\n",               // empty name
	}
	for _, c := range cases {
		if _, err := LoadAvailabilityTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q accepted", c)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := DiurnalLab(8, 2, 1.0, 5)
	var buf bytes.Buffer
	if err := WriteAvailabilityTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAvailabilityTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("%d machines after round trip, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Name != orig[i].Name || back[i].Speed != orig[i].Speed {
			t.Fatalf("machine %d identity changed", i)
		}
		if len(back[i].Offline) != len(orig[i].Offline) {
			t.Fatalf("machine %d window count changed", i)
		}
		for j := range orig[i].Offline {
			if back[i].Offline[j] != orig[i].Offline[j] {
				t.Errorf("machine %d window %d: %v vs %v", i, j, back[i].Offline[j], orig[i].Offline[j])
			}
		}
	}
}

func TestTraceDrivenSimulation(t *testing.T) {
	specs, err := LoadAvailabilityTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Donors:         specs,
		Policy:         sched.Adaptive{Target: 30 * time.Second, Bootstrap: 500, Min: 100},
		ServerOverhead: time.Millisecond,
		Lease:          2 * time.Minute,
		Seed:           1,
	}
	m, err := Run(cfg, NewDivisibleWorkload(50_000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.UnitsCompleted == 0 {
		t.Fatal("trace-driven run completed nothing")
	}
}
