package simnet

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func TestDivisibleWorkloadInvariants(t *testing.T) {
	w := NewDivisibleWorkload(100, 1, 10)
	var units []Unit
	total := int64(0)
	for {
		u, ok := w.Next(30)
		if !ok {
			break
		}
		units = append(units, u)
		total += u.Cost
	}
	if total != 100 {
		t.Fatalf("dispatched cost %d, want 100", total)
	}
	if w.Done() {
		t.Fatal("done before any completion")
	}
	for _, u := range units {
		w.Complete(u.ID)
	}
	if !w.Done() {
		t.Fatal("not done after all completions")
	}
	if w.Remaining() != 0 {
		t.Fatalf("remaining = %d", w.Remaining())
	}
}

func TestDivisibleRequeue(t *testing.T) {
	w := NewDivisibleWorkload(50, 0, 0)
	u1, ok := w.Next(50)
	if !ok {
		t.Fatal("no unit")
	}
	if _, ok := w.Next(10); ok {
		t.Fatal("dispatched more than total")
	}
	w.Requeue(u1)
	u2, ok := w.Next(10)
	if !ok || u2.ID != u1.ID || u2.Cost != 50 {
		t.Fatalf("requeued unit mangled: %+v", u2)
	}
	w.Complete(u2.ID)
	if !w.Done() {
		t.Fatal("not done")
	}
	// Double complete is harmless.
	w.Complete(u2.ID)
}

func TestStagedWorkloadBarrier(t *testing.T) {
	w := NewStagedWorkload([]int{3, 2}, []int64{10, 20}, 0, 0)
	// Budget 100 covers all 3 stage-1 tasks in one unit.
	u, ok := w.Next(100)
	if !ok || u.Cost != 30 {
		t.Fatalf("stage-1 batch: %+v ok=%v", u, ok)
	}
	// Barrier: nothing until the batch completes.
	if _, ok := w.Next(100); ok {
		t.Fatal("barrier violated")
	}
	w.Complete(u.ID)
	u2, ok := w.Next(20)
	if !ok || u2.Cost != 20 {
		t.Fatalf("stage-2 unit: %+v", u2)
	}
	u3, ok := w.Next(20)
	if !ok {
		t.Fatal("second stage-2 unit missing")
	}
	w.Complete(u2.ID)
	w.Complete(u3.ID)
	if !w.Done() {
		t.Fatal("not done after both stages")
	}
}

func TestStagedBatchRespectesBudget(t *testing.T) {
	w := NewStagedWorkload([]int{10}, []int64{5}, 0, 0)
	u, ok := w.Next(12) // 12/5 = 2 tasks
	if !ok || u.Cost != 10 {
		t.Fatalf("batch cost %d, want 10", u.Cost)
	}
	// Tiny budget still gets one task.
	u2, ok := w.Next(1)
	if !ok || u2.Cost != 5 {
		t.Fatalf("min batch cost %d, want 5", u2.Cost)
	}
}

func TestDPRmlWorkloadShape(t *testing.T) {
	w := DPRmlWorkload(10, 100, 0, 0)
	// Stages: k=4..10 -> 7 stages, tasks 3,5,7,9,11,13,15.
	if len(w.Tasks) != 7 {
		t.Fatalf("%d stages, want 7", len(w.Tasks))
	}
	wantTasks := []int{3, 5, 7, 9, 11, 13, 15}
	for i, n := range wantTasks {
		if w.Tasks[i] != n {
			t.Errorf("stage %d: %d tasks, want %d", i, w.Tasks[i], n)
		}
	}
	if w.TaskCost[0] != 400 || w.TaskCost[6] != 1000 {
		t.Errorf("task costs %v", w.TaskCost)
	}
}

func TestMultiWorkloadRoundRobin(t *testing.T) {
	a := NewDivisibleWorkload(10, 0, 0)
	b := NewDivisibleWorkload(10, 0, 0)
	m := NewMultiWorkload(a, b)
	u1, _ := m.Next(5)
	u2, _ := m.Next(5)
	// Units must come from different instances (namespaced IDs).
	if u1.ID>>multiShift == u2.ID>>multiShift {
		t.Errorf("round robin broken: %d %d", u1.ID, u2.ID)
	}
	m.Complete(u1.ID)
	m.Complete(u2.ID)
	for {
		u, ok := m.Next(100)
		if !ok {
			break
		}
		m.Complete(u.ID)
	}
	if !m.Done() {
		t.Fatal("multi not done")
	}
	if m.Remaining() != 0 {
		t.Fatalf("remaining %d", m.Remaining())
	}
}

func baseConfig() Config {
	return Config{
		Policy:         sched.Adaptive{Target: 5 * time.Second, Bootstrap: 500, Min: 1},
		ServerOverhead: time.Millisecond,
		Lease:          time.Minute,
		WaitHint:       100 * time.Millisecond,
		Seed:           1,
	}
}

func TestRunSingleDonor(t *testing.T) {
	cfg := baseConfig()
	cfg.Donors = Uniform(1, 1.0, 0, time.Millisecond, 0)
	m, err := Run(cfg, NewDivisibleWorkload(1000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 1000 cost units at speed 1 => >= 1000 s of compute.
	if m.Makespan < 1000*time.Second {
		t.Errorf("makespan %s < compute lower bound", m.Makespan)
	}
	if m.UnitsCompleted != m.UnitsDispatched {
		t.Errorf("dispatched %d != completed %d", m.UnitsDispatched, m.UnitsCompleted)
	}
	if m.Efficiency < 0.9 {
		t.Errorf("single-donor efficiency %.3f < 0.9", m.Efficiency)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Donors = Uniform(8, 1.0, 0.2, time.Millisecond, 100e6/8)
	m1, err := Run(cfg, NewDivisibleWorkload(20000, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(cfg, NewDivisibleWorkload(20000, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Makespan != m2.Makespan || m1.UnitsDispatched != m2.UnitsDispatched {
		t.Errorf("same seed diverged: %s/%d vs %s/%d",
			m1.Makespan, m1.UnitsDispatched, m2.Makespan, m2.UnitsDispatched)
	}
	cfg.Seed = 2
	m3, err := Run(cfg, NewDivisibleWorkload(20000, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if m3.Makespan == m1.Makespan {
		t.Log("different seeds produced identical makespans (possible but unlikely)")
	}
}

func TestRunNearLinearSpeedupDivisible(t *testing.T) {
	// Idle homogeneous donors, negligible overhead: speedup ~ N.
	mk := func(n int) []DonorSpec { return Uniform(n, 1.0, 0, time.Millisecond, 0) }
	cfg := baseConfig()
	pts, err := SpeedupCurve([]int{1, 4, 16}, mk, func() Workload {
		return NewDivisibleWorkload(200000, 0, 0)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Efficiency < 0.85 {
			t.Errorf("%d donors: efficiency %.3f < 0.85 (speedup %.2f)", p.Donors, p.Efficiency, p.Speedup)
		}
		if p.Speedup > float64(p.Donors)*1.02 {
			t.Errorf("%d donors: superlinear speedup %.2f", p.Donors, p.Speedup)
		}
	}
}

func TestStagedSingleInstanceSaturates(t *testing.T) {
	// A single DPRml instance has limited stage-level parallelism; with
	// many donors speedup must fall well short of linear (the paper's
	// motivation for running 6 instances).
	mk := func(n int) []DonorSpec { return Uniform(n, 1.0, 0, time.Millisecond, 0) }
	cfg := baseConfig()
	cfg.Policy = sched.Fixed{Size: 1} // one task per unit
	single := func() Workload { return DPRmlWorkload(20, 10, 0, 0) }
	pts, err := SpeedupCurve([]int{1, 40}, mk, single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p40 := pts[len(pts)-1]
	if p40.Speedup > 30 {
		t.Errorf("single staged instance speedup %.1f at 40 donors — barrier not modelled?", p40.Speedup)
	}

	// Six concurrent instances keep donors busy: speedup must rise
	// substantially above the single-instance case.
	multi := func() Workload {
		var ws []Workload
		for i := 0; i < 6; i++ {
			ws = append(ws, DPRmlWorkload(20, 10, 0, 0))
		}
		return NewMultiWorkload(ws...)
	}
	mpts, err := SpeedupCurve([]int{1, 40}, mk, multi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m40 := mpts[len(mpts)-1]
	if m40.Speedup < p40.Speedup*1.2 {
		t.Errorf("6 instances (%.1f) not clearly better than 1 (%.1f) at 40 donors", m40.Speedup, p40.Speedup)
	}
}

func TestChurnRecovery(t *testing.T) {
	// Half the donors vanish mid-run; lease expiry must reissue their units
	// and the workload still completes.
	cfg := baseConfig()
	cfg.Lease = 30 * time.Second
	donors := Uniform(8, 1.0, 0, time.Millisecond, 0)
	for i := 0; i < 4; i++ {
		donors[i].LeaveAt = 60 * time.Second
	}
	cfg.Donors = donors
	m, err := Run(cfg, NewDivisibleWorkload(5000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.UnitsLost == 0 {
		t.Error("expected lost units from churn")
	}
	if m.UnitsCompleted == 0 {
		t.Error("nothing completed")
	}
}

func TestAllDonorsGoneFails(t *testing.T) {
	cfg := baseConfig()
	donors := Uniform(2, 1.0, 0, time.Millisecond, 0)
	donors[0].LeaveAt = time.Second
	donors[1].LeaveAt = time.Second
	cfg.Donors = donors
	// Huge workload cannot finish in 1 s.
	if _, err := Run(cfg, NewDivisibleWorkload(1e9, 0, 0)); err == nil {
		t.Error("completed with all donors gone")
	}
}

func TestNoDonors(t *testing.T) {
	cfg := baseConfig()
	if _, err := Run(cfg, NewDivisibleWorkload(10, 0, 0)); err == nil {
		t.Error("no-donor run succeeded")
	}
}

func TestHeterogeneousFasterDonorsDoMoreWork(t *testing.T) {
	cfg := baseConfig()
	cfg.Donors = []DonorSpec{
		{Name: "slow", Speed: 0.2, Latency: time.Millisecond},
		{Name: "fast", Speed: 2.0, Latency: time.Millisecond},
	}
	m, err := Run(cfg, NewDivisibleWorkload(100000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.PerDonorUnits["fast"] <= m.PerDonorUnits["slow"] {
		t.Errorf("fast donor completed %d units vs slow %d — adaptive sizing broken?",
			m.PerDonorUnits["fast"], m.PerDonorUnits["slow"])
	}
}

func TestServerOverheadLimitsScaling(t *testing.T) {
	// With a large per-request overhead and tiny fixed units, the server
	// becomes the bottleneck and efficiency collapses at high donor counts
	// — the effect that bends Figure 1 away from linear.
	mk := func(n int) []DonorSpec { return Uniform(n, 1.0, 0, time.Millisecond, 0) }
	cfg := baseConfig()
	cfg.ServerOverhead = 50 * time.Millisecond
	cfg.Policy = sched.Fixed{Size: 20} // 20 s of compute per unit
	pts, err := SpeedupCurve([]int{1, 64}, mk, func() Workload {
		return NewDivisibleWorkload(50000, 0, 0)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[len(pts)-1]
	// 64 donors each needing a dispatch every ~20 s, server can serve 20/s
	// => at most ~400 donors; 64 is feasible but with visible degradation.
	if p.Efficiency > 0.99 {
		t.Errorf("efficiency %.3f suspiciously perfect under heavy server load", p.Efficiency)
	}
}

func TestHeterogeneousLabGenerator(t *testing.T) {
	specs := HeterogeneousLab(50, 7)
	if len(specs) != 50 {
		t.Fatalf("%d specs", len(specs))
	}
	for _, s := range specs {
		if s.Speed <= 0 || s.Speed > 1.3 {
			t.Errorf("%s: speed %g out of range", s.Name, s.Speed)
		}
	}
	// Determinism.
	specs2 := HeterogeneousLab(50, 7)
	for i := range specs {
		if specs[i].Name != specs2[i].Name || specs[i].Speed != specs2[i].Speed ||
			specs[i].Load != specs2[i].Load || specs[i].Latency != specs2[i].Latency {
			t.Fatal("HeterogeneousLab not deterministic")
		}
	}
}
