package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/sched"
)

// DonorSpec describes one simulated donor machine.
type DonorSpec struct {
	// Name labels the donor in metrics.
	Name string
	// Speed is the donor's compute rate in cost units per (virtual)
	// second at zero background load. The paper's homogeneous lab is
	// Speed=1 scaled donors; the heterogeneous pool mixes Pentium IIs
	// (slow) through cluster nodes (fast).
	Speed float64
	// Load is the mean fraction of the machine consumed by its
	// owner's foreground work ("semi-idle" donors in Fig. 1). Each unit's
	// effective speed is Speed * (1 - l) with l drawn uniformly from
	// [0, 2*Load], clamped to [0, 0.95].
	Load float64
	// JoinAt is when the donor first contacts the server.
	JoinAt time.Duration
	// LeaveAt, if positive, is when the donor silently vanishes
	// (powered-off lab machine). Units it holds are lost until lease
	// expiry.
	LeaveAt time.Duration
	// Offline lists windows during which the donor is unavailable and any
	// unit it held is lost (owner using the machine, reboots, nightly
	// power-down). The donor re-contacts the server at each window's end.
	Offline []Window
	// Latency is the one-way network latency to the server.
	Latency time.Duration
	// Bandwidth is the link bandwidth in bytes/second (0 = infinite).
	Bandwidth float64
	// Malice makes the donor Byzantine in the swarm harness (the virtual
	// simulation ignores it — simnet models capacity, not correctness).
	// Recognised modes, all computing promptly but lying about results:
	//
	//	""             honest (the default)
	//	"wrong-result" deterministic corruption of every result
	//	"lazy"         skip the computation, return a constant
	//	"collude"      wrong answers derived from the payload alone, so
	//	               every colluding donor submits the same wrong bytes
	//	"flaky"        corrupt the first few results, honest afterwards
	Malice string
}

// Window is a half-open interval of virtual time [From, To).
type Window struct {
	From, To time.Duration
}

// DiurnalLab returns n donor specs modelling a university laboratory over
// several days: machines are unavailable to the system during working
// hours (owners at the keyboard, 9:00-17:00 each day) and donate fully
// outside them — the deployment rhythm behind the paper's "low priority
// background service" on ~200 lab PCs.
func DiurnalLab(n, days int, speed float64, seed int64) []DonorSpec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]DonorSpec, n)
	for i := range out {
		var off []Window
		for d := 0; d < days; d++ {
			day := time.Duration(d) * 24 * time.Hour
			// Owners arrive and leave with +/- 1h jitter per machine/day.
			start := day + 9*time.Hour + time.Duration(rng.Intn(120)-60)*time.Minute
			end := day + 17*time.Hour + time.Duration(rng.Intn(120)-60)*time.Minute
			off = append(off, Window{From: start, To: end})
		}
		out[i] = DonorSpec{
			Name:      fmt.Sprintf("lab%03d", i),
			Speed:     speed,
			Load:      0.05, // background daemons even at night
			Latency:   2 * time.Millisecond,
			Bandwidth: 100e6 / 8,
			Offline:   off,
		}
	}
	return out
}

// Uniform returns n identical donor specs — the homogeneous laboratory of
// Figure 1.
func Uniform(n int, speed, load float64, latency time.Duration, bandwidth float64) []DonorSpec {
	out := make([]DonorSpec, n)
	for i := range out {
		out[i] = DonorSpec{
			Name:      fmt.Sprintf("pc%03d", i),
			Speed:     speed,
			Load:      load,
			Latency:   latency,
			Bandwidth: bandwidth,
		}
	}
	return out
}

// HeterogeneousLab returns a mixed pool patterned on the paper's
// deployment: Pentium II desktops (slow), Pentium III and IV desktops, and
// dual-PIII cluster nodes, in roughly the given proportions.
func HeterogeneousLab(n int, seed int64) []DonorSpec {
	rng := rand.New(rand.NewSource(seed))
	classes := []struct {
		name  string
		speed float64
		load  float64
		frac  float64
	}{
		{"p2", 0.35, 0.25, 0.25}, // Pentium II, busy lab machine
		{"p3", 0.6, 0.2, 0.30},   // Pentium III desktop
		{"p4", 1.0, 0.2, 0.25},   // Pentium IV desktop
		{"node", 0.8, 0.0, 0.20}, // dedicated cluster node (no owner load)
	}
	out := make([]DonorSpec, n)
	for i := range out {
		x := rng.Float64()
		acc := 0.0
		c := classes[len(classes)-1]
		for _, cl := range classes {
			acc += cl.frac
			if x < acc {
				c = cl
				break
			}
		}
		out[i] = DonorSpec{
			Name:      fmt.Sprintf("%s-%03d", c.name, i),
			Speed:     c.speed * (0.9 + 0.2*rng.Float64()),
			Load:      c.load,
			Latency:   time.Duration(1+rng.Intn(5)) * time.Millisecond,
			Bandwidth: 100e6 / 8, // 100 Mbit/s shared LAN
		}
	}
	return out
}

// StragglerLab returns n donor specs in which roughly the given fraction
// are severe stragglers running at slowSpeed while the rest run at full
// speed. The profile isolates the tail-latency pathology speculation is
// built for: a handful of near-dead machines each holding one last unit
// hostage while the healthy majority idles. At least one straggler is
// produced whenever fraction > 0 and n > 1.
func StragglerLab(n int, fraction, slowSpeed float64, seed int64) []DonorSpec {
	rng := rand.New(rand.NewSource(seed))
	slow := int(float64(n) * fraction)
	if slow < 1 && fraction > 0 && n > 1 {
		slow = 1
	}
	out := make([]DonorSpec, n)
	perm := rng.Perm(n)
	for i := range out {
		out[i] = DonorSpec{
			Name:      fmt.Sprintf("fast%03d", i),
			Speed:     1.0,
			Latency:   time.Millisecond,
			Bandwidth: 100e6 / 8,
		}
	}
	for _, idx := range perm[:slow] {
		out[idx].Name = fmt.Sprintf("slow%03d", idx)
		out[idx].Speed = slowSpeed
	}
	return out
}

// Compress scales every schedule field of the specs — JoinAt, LeaveAt and
// Offline windows — by the given factor, so a profile authored in virtual
// hours (DiurnalLab days, say) can drive a wall-clock harness run lasting
// seconds. Speeds, loads, latency and bandwidth are left untouched; only
// the calendar shrinks. The input slice is not modified.
func Compress(specs []DonorSpec, factor float64) []DonorSpec {
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * factor)
	}
	out := make([]DonorSpec, len(specs))
	for i, s := range specs {
		c := s
		c.JoinAt = scale(s.JoinAt)
		c.LeaveAt = scale(s.LeaveAt)
		if len(s.Offline) > 0 {
			c.Offline = make([]Window, len(s.Offline))
			for j, w := range s.Offline {
				c.Offline[j] = Window{From: scale(w.From), To: scale(w.To)}
			}
		}
		out[i] = c
	}
	return out
}

// Config parameterises one simulation run.
type Config struct {
	Donors []DonorSpec
	// Policy is the unit-sizing policy (the real scheduler code).
	Policy sched.Policy
	// ServerOverhead is the server's service time per request (dispatch or
	// result ingest) — the single P-III 500 server is a shared resource.
	ServerOverhead time.Duration
	// Lease is the reissue timeout for lost units.
	Lease time.Duration
	// WaitHint is how long an idle donor waits when no unit is available.
	WaitHint time.Duration
	// Seed drives the load jitter.
	Seed int64
	// MaxVirtual aborts runaway simulations (default 100 days).
	MaxVirtual time.Duration
}

func (c *Config) applyDefaults() {
	if c.Policy == nil {
		c.Policy = sched.Adaptive{Target: 5 * time.Second, Bootstrap: 1000, Min: 1}
	}
	if c.ServerOverhead <= 0 {
		c.ServerOverhead = 2 * time.Millisecond
	}
	if c.Lease <= 0 {
		c.Lease = 5 * time.Minute
	}
	if c.WaitHint <= 0 {
		c.WaitHint = 250 * time.Millisecond
	}
	if c.MaxVirtual <= 0 {
		c.MaxVirtual = 100 * 24 * time.Hour
	}
}

// Metrics summarises a simulation run.
type Metrics struct {
	// Makespan is the virtual time at which the workload completed.
	Makespan time.Duration
	// UnitsDispatched and UnitsCompleted count dispatches (including
	// reissues) and successful completions.
	UnitsDispatched int64
	UnitsCompleted  int64
	UnitsLost       int64
	// BusyTime is summed donor compute time; Efficiency is
	// BusyTime / (donors * Makespan) for always-on donors.
	BusyTime   time.Duration
	Efficiency float64
	// ServerBusy is total server service time (dispatch + ingest).
	ServerBusy time.Duration
	// PerDonorUnits maps donor name to completed units.
	PerDonorUnits map[string]int64
}

// event kinds
const (
	evDonorRequest = iota // donor asks the server for work
	evUnitDone            // donor finished computing; result arrives at server
	evLeaseCheck          // server checks whether a unit is overdue
	evDonorLeave          // donor vanishes
	evDonorRejoin         // donor returns after an Offline window
)

type event struct {
	at    time.Duration
	seq   int64
	kind  int
	donor int
	unit  Unit
	// sentAt stamps dispatch time for lease checks.
	sentAt time.Duration
	// epoch is the donor's availability epoch at scheduling time; requests
	// and completions from before a leave are stale in later epochs.
	epoch int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type simDonor struct {
	spec  DonorSpec
	stats sched.DonorStats
	gone  bool
	epoch int
	busy  time.Duration
	units int64
}

// Run simulates the workload to completion and returns metrics. The
// simulation is deterministic for a given (Config, Workload) pair.
func Run(cfg Config, w Workload) (*Metrics, error) {
	cfg.applyDefaults()
	if len(cfg.Donors) == 0 {
		return nil, fmt.Errorf("simnet: no donors configured")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	donors := make([]*simDonor, len(cfg.Donors))
	for i, spec := range cfg.Donors {
		donors[i] = &simDonor{spec: spec}
	}

	var q eventQueue
	seq := int64(0)
	push := func(at time.Duration, kind, donor int, u Unit, sentAt time.Duration) {
		seq++
		heap.Push(&q, &event{
			at: at, seq: seq, kind: kind, donor: donor, unit: u, sentAt: sentAt,
			epoch: donors[donor].epoch,
		})
	}
	for i, d := range donors {
		push(d.spec.JoinAt, evDonorRequest, i, Unit{}, 0)
		if d.spec.LeaveAt > 0 {
			push(d.spec.LeaveAt, evDonorLeave, i, Unit{}, 0)
		}
		for _, w := range d.spec.Offline {
			if w.To <= w.From {
				return nil, fmt.Errorf("simnet: donor %s has inverted offline window %v", d.spec.Name, w)
			}
			push(w.From, evDonorLeave, i, Unit{}, 0)
			push(w.To, evDonorRejoin, i, Unit{}, 0)
		}
	}

	m := &Metrics{PerDonorUnits: make(map[string]int64)}
	// meanSpeed lets the server estimate how long a unit *should* take when
	// a donor has no throughput history yet; the reissue deadline scales
	// with that estimate so leases never fire mid-computation on healthy
	// donors (the live system's lease is likewise set well above the
	// scheduler's target unit duration).
	meanSpeed := 0.0
	for _, d := range donors {
		meanSpeed += d.spec.Speed
	}
	meanSpeed /= float64(len(donors))
	if meanSpeed <= 0 {
		return nil, fmt.Errorf("simnet: donors have zero mean speed")
	}
	leaseFor := func(d *simDonor, cost int64) time.Duration {
		tp := d.stats.Throughput
		if tp <= 0 {
			tp = meanSpeed
		}
		expected := time.Duration(float64(cost) / tp * float64(time.Second))
		if 4*expected > cfg.Lease {
			return 4 * expected
		}
		return cfg.Lease
	}
	var serverFreeAt time.Duration
	// pending maps unit ID -> donor index for lease accounting. completed
	// tracks IDs so late/lost duplicates are ignored.
	pending := make(map[int64]int)
	completed := make(map[int64]bool)

	serverService := func(arrive time.Duration) time.Duration {
		start := arrive
		if serverFreeAt > start {
			start = serverFreeAt
		}
		serverFreeAt = start + cfg.ServerOverhead
		m.ServerBusy += cfg.ServerOverhead
		return serverFreeAt
	}

	xfer := func(spec DonorSpec, bytes int64) time.Duration {
		d := spec.Latency
		if spec.Bandwidth > 0 && bytes > 0 {
			d += time.Duration(float64(bytes) / spec.Bandwidth * float64(time.Second))
		}
		return d
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(*event)
		if e.at > cfg.MaxVirtual {
			return nil, fmt.Errorf("simnet: exceeded virtual time limit %s (workload stuck?)", cfg.MaxVirtual)
		}
		switch e.kind {
		case evDonorLeave:
			// Invalidate the donor's outstanding request/completion events:
			// whatever it was computing is lost with it.
			donors[e.donor].gone = true
			donors[e.donor].epoch++

		case evDonorRejoin:
			d := donors[e.donor]
			if !d.gone {
				continue
			}
			d.gone = false
			d.epoch++
			push(e.at, evDonorRequest, e.donor, Unit{}, 0)

		case evDonorRequest:
			d := donors[e.donor]
			if d.gone || e.epoch != d.epoch || w.Done() {
				continue
			}
			decideAt := serverService(e.at)
			budget := cfg.Policy.Budget(d.stats, w.Remaining(), len(donors))
			u, ok := w.Next(budget)
			if !ok {
				push(decideAt+cfg.WaitHint, evDonorRequest, e.donor, Unit{}, 0)
				continue
			}
			m.UnitsDispatched++
			pending[u.ID] = e.donor
			// Unit data travels to the donor; compute; result travels back.
			arrive := decideAt + xfer(d.spec, u.DataBytes)
			load := d.spec.Load * 2 * rng.Float64()
			if load > 0.95 {
				load = 0.95
			}
			eff := d.spec.Speed * (1 - load)
			compute := time.Duration(float64(u.Cost) / eff * float64(time.Second))
			d.busy += compute
			doneAt := arrive + compute + xfer(d.spec, u.ResultBytes)
			push(doneAt, evUnitDone, e.donor, u, decideAt)
			push(decideAt+leaseFor(d, u.Cost), evLeaseCheck, e.donor, u, decideAt)

		case evUnitDone:
			d := donors[e.donor]
			if d.gone || e.epoch != d.epoch {
				continue // result lost with the donor (or with its old epoch)
			}
			if _, still := pending[e.unit.ID]; !still || completed[e.unit.ID] {
				// Late result for a unit already reissued (and possibly
				// completed elsewhere): drop it, but the donor is alive and
				// idle, so it immediately asks for more work.
				ingestAt := serverService(e.at)
				push(ingestAt, evDonorRequest, e.donor, Unit{}, 0)
				continue
			}
			ingestAt := serverService(e.at)
			delete(pending, e.unit.ID)
			completed[e.unit.ID] = true
			w.Complete(e.unit.ID)
			m.UnitsCompleted++
			d.units++
			// Throughput sample: cost / wall time since dispatch.
			wall := (e.at - e.sentAt).Seconds()
			if wall > 0 {
				d.stats.Throughput = sched.EWMA(d.stats.Throughput, float64(e.unit.Cost)/wall, 0.3)
			}
			d.stats.Completed++
			if w.Done() {
				m.Makespan = ingestAt
				finish(m, donors)
				return m, nil
			}
			// Donor immediately asks for more work.
			push(ingestAt, evDonorRequest, e.donor, Unit{}, 0)

		case evLeaseCheck:
			if completed[e.unit.ID] {
				continue
			}
			if _, still := pending[e.unit.ID]; !still {
				continue
			}
			// Overdue: requeue for another donor.
			delete(pending, e.unit.ID)
			w.Requeue(e.unit)
			m.UnitsLost++
			if d := donors[e.donor]; d != nil {
				d.stats.Failures++
			}
		}
	}
	if !w.Done() {
		return nil, fmt.Errorf("simnet: event queue drained before completion (all donors gone?)")
	}
	finish(m, donors)
	return m, nil
}

func finish(m *Metrics, donors []*simDonor) {
	for _, d := range donors {
		m.BusyTime += d.busy
		m.PerDonorUnits[d.spec.Name] = d.units
	}
	if m.Makespan > 0 && len(donors) > 0 {
		m.Efficiency = m.BusyTime.Seconds() / (m.Makespan.Seconds() * float64(len(donors)))
	}
}

// SpeedupPoint is one (processors, speedup) sample of a scaling curve.
type SpeedupPoint struct {
	Donors     int
	Makespan   time.Duration
	Speedup    float64
	Efficiency float64
}

// SpeedupCurve runs the workload factory at each donor count and reports
// speedup relative to the single-donor makespan — the exact construction of
// the paper's Figures 1 and 2.
func SpeedupCurve(counts []int, mkDonors func(n int) []DonorSpec, mkWorkload func() Workload, cfg Config) ([]SpeedupPoint, error) {
	sort.Ints(counts)
	if len(counts) == 0 || counts[0] < 1 {
		return nil, fmt.Errorf("simnet: speedup curve needs donor counts >= 1")
	}
	base := cfg
	base.Donors = mkDonors(1)
	m1, err := Run(base, mkWorkload())
	if err != nil {
		return nil, fmt.Errorf("simnet: baseline run: %w", err)
	}
	t1 := m1.Makespan
	var out []SpeedupPoint
	for _, n := range counts {
		c := cfg
		c.Donors = mkDonors(n)
		m, err := Run(c, mkWorkload())
		if err != nil {
			return nil, fmt.Errorf("simnet: run with %d donors: %w", n, err)
		}
		out = append(out, SpeedupPoint{
			Donors:     n,
			Makespan:   m.Makespan,
			Speedup:    t1.Seconds() / m.Makespan.Seconds(),
			Efficiency: t1.Seconds() / m.Makespan.Seconds() / float64(n),
		})
	}
	return out, nil
}
