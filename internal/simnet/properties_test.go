package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sched"
)

// TestWorkConservationProperty: for random divisible workloads and donor
// pools, every simulated run completes exactly the total cost — no work is
// lost or double-counted, whatever the policy or pool shape.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seedRaw int64, nRaw uint8, totRaw uint16, polPick uint8) bool {
		n := int(nRaw%20) + 1
		total := int64(totRaw%5000) + 100
		var pol sched.Policy
		switch polPick % 4 {
		case 0:
			pol = sched.Adaptive{Target: 10 * time.Second, Bootstrap: 50, Min: 10}
		case 1:
			pol = sched.Fixed{Size: int64(totRaw%300) + 1}
		case 2:
			pol = sched.GSS{K: 1, Min: 10}
		default:
			pol = sched.TSS{Min: 10}
		}
		cfg := Config{
			Donors:         HeterogeneousLab(n, seedRaw),
			Policy:         pol,
			ServerOverhead: time.Millisecond,
			Lease:          5 * time.Minute,
			Seed:           seedRaw,
		}
		w := NewDivisibleWorkload(total, 1, 100)
		m, err := Run(cfg, w)
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		if !w.Done() || w.Remaining() != 0 {
			t.Logf("workload not drained: remaining %d", w.Remaining())
			return false
		}
		if m.UnitsCompleted > m.UnitsDispatched {
			t.Logf("completed %d > dispatched %d", m.UnitsCompleted, m.UnitsDispatched)
			return false
		}
		if m.Efficiency < 0 || m.Efficiency > 1.0001 {
			t.Logf("efficiency %g out of range", m.Efficiency)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStagedConservationProperty: staged workloads complete every stage in
// order for random shapes.
func TestStagedConservationProperty(t *testing.T) {
	f := func(seedRaw int64, stagesRaw, widthRaw uint8) bool {
		stages := int(stagesRaw%6) + 1
		width := int(widthRaw%9) + 1
		tasks := make([]int, stages)
		costs := make([]int64, stages)
		for i := range tasks {
			tasks[i] = width
			costs[i] = int64(i%3) + 1
		}
		cfg := Config{
			Donors:         Uniform(4, 1, 0, time.Millisecond, 0),
			Policy:         sched.Fixed{Size: 2},
			ServerOverhead: time.Millisecond,
			Lease:          5 * time.Minute,
			Seed:           seedRaw,
		}
		w := NewStagedWorkload(tasks, costs, 100, 100)
		if _, err := Run(cfg, w); err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		return w.Done() && w.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMoreDonorsNeverSlower: adding donors to a homogeneous pool must not
// increase makespan (work-conserving scheduler, no contention modelled
// beyond the server, which is far from saturation here).
func TestMoreDonorsNeverSlower(t *testing.T) {
	mk := func(n int) time.Duration {
		cfg := Config{
			Donors:         Uniform(n, 1, 0, time.Millisecond, 0),
			Policy:         sched.Adaptive{Target: 30 * time.Second, Bootstrap: 500, Min: 100},
			ServerOverhead: time.Millisecond,
			Lease:          5 * time.Minute,
			Seed:           1,
		}
		m, err := Run(cfg, NewDivisibleWorkload(60_000, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		return m.Makespan
	}
	prev := mk(1)
	for _, n := range []int{2, 4, 8, 16} {
		cur := mk(n)
		if cur > prev {
			t.Errorf("makespan rose from %s to %s going to %d donors", prev, cur, n)
		}
		prev = cur
	}
}
