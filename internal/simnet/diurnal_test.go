package simnet

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func diurnalConfig(donors []DonorSpec, seed int64) Config {
	return Config{
		Donors:         donors,
		Policy:         sched.Adaptive{Target: 30 * time.Second, Bootstrap: 1000, Min: 100},
		ServerOverhead: 3 * time.Millisecond,
		Lease:          2 * time.Minute,
		Seed:           seed,
	}
}

func TestOfflineWindowLosesAndRecoversUnits(t *testing.T) {
	// One donor that goes offline mid-run: its in-flight unit must be lost,
	// reissued after the lease, and the workload still completes after the
	// donor rejoins.
	specs := []DonorSpec{{
		Name:    "flaky",
		Speed:   1,
		Offline: []Window{{From: 30 * time.Second, To: 10 * time.Minute}},
	}}
	cfg := diurnalConfig(specs, 1)
	// Work sized so several units dispatch before the window opens.
	m, err := Run(cfg, NewDivisibleWorkload(5000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.UnitsCompleted == 0 {
		t.Fatal("nothing completed")
	}
	if m.UnitsLost == 0 {
		t.Error("offline window lost no units — epoch invalidation not working")
	}
	if m.Makespan < 10*time.Minute {
		t.Errorf("makespan %s precedes the donor's return at 10m", m.Makespan)
	}
}

func TestRejoinWhileOthersWork(t *testing.T) {
	// Donor A is always on; donor B is offline for a stretch. The run must
	// complete, and A must have done strictly more units.
	specs := []DonorSpec{
		{Name: "steady", Speed: 1},
		{Name: "parttime", Speed: 1, Offline: []Window{{From: 1 * time.Minute, To: 2 * time.Hour}}},
	}
	m, err := Run(diurnalConfig(specs, 2), NewDivisibleWorkload(20000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.PerDonorUnits["steady"] <= m.PerDonorUnits["parttime"] {
		t.Errorf("steady=%d parttime=%d: part-time donor did not fall behind",
			m.PerDonorUnits["steady"], m.PerDonorUnits["parttime"])
	}
}

func TestInvertedWindowRejected(t *testing.T) {
	specs := []DonorSpec{{
		Name: "bad", Speed: 1,
		Offline: []Window{{From: time.Hour, To: time.Minute}},
	}}
	if _, err := Run(diurnalConfig(specs, 3), NewDivisibleWorkload(100, 0, 0)); err == nil {
		t.Error("inverted offline window accepted")
	}
}

func TestDiurnalLabGenerator(t *testing.T) {
	specs := DiurnalLab(20, 3, 1.0, 7)
	if len(specs) != 20 {
		t.Fatalf("%d specs", len(specs))
	}
	for _, s := range specs {
		if len(s.Offline) != 3 {
			t.Errorf("%s: %d offline windows, want 3 (one per day)", s.Name, len(s.Offline))
		}
		for d, w := range s.Offline {
			day := time.Duration(d) * 24 * time.Hour
			if w.From < day+8*time.Hour || w.From > day+10*time.Hour {
				t.Errorf("%s day %d: owner arrives at %s", s.Name, d, w.From)
			}
			if w.To < day+16*time.Hour || w.To > day+18*time.Hour {
				t.Errorf("%s day %d: owner leaves at %s", s.Name, d, w.To)
			}
			if w.To <= w.From {
				t.Errorf("%s day %d: inverted window", s.Name, d)
			}
		}
	}
	// Determinism.
	again := DiurnalLab(20, 3, 1.0, 7)
	for i := range specs {
		if specs[i].Offline[0] != again[i].Offline[0] {
			t.Fatal("DiurnalLab not deterministic")
		}
	}
}

func TestDiurnalThroughputRhythm(t *testing.T) {
	// A long workload over a diurnal lab: the run must complete, donors do
	// most of their work outside office hours, and the makespan spans
	// multiple days.
	specs := DiurnalLab(10, 5, 1.0, 9)
	cfg := diurnalConfig(specs, 9)
	cfg.Lease = 5 * time.Minute
	// ~46 donor-hours of work: with ~16h/day availability per donor this
	// takes a few hours of pool time but must survive day boundaries.
	m, err := Run(cfg, NewDivisibleWorkload(500_000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.UnitsLost == 0 {
		t.Error("no units lost across owner arrivals — windows had no effect")
	}
	if m.Makespan <= 9*time.Hour {
		t.Errorf("makespan %s suspiciously short for a diurnal pool", m.Makespan)
	}
}
