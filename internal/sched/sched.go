// Package sched implements the adaptive scheduling strategies of the
// paper's distributed system (Page, Keane, Naughton — ISPDC 2004): the
// server tunes the parallel granularity (cost budget per work unit) to the
// measured processing ability of each donor machine, so slow Pentium IIs
// receive small units while fast cluster nodes receive large ones, keeping
// completion times balanced and the dispatch overhead amortised.
package sched

import (
	"fmt"
	"sort"
	"time"
)

// DonorStats summarises the server's view of one donor machine's measured
// performance. Throughput is in cost units per second (for DSEARCH a cost
// unit is one database residue; for DPRml one candidate topology).
type DonorStats struct {
	// Throughput is an exponentially weighted moving average of observed
	// cost/elapsed; zero means no completed unit yet.
	Throughput float64
	// Completed is the number of units this donor has finished.
	Completed int
	// Failures counts errored or expired units attributed to the donor.
	Failures int
}

// Policy chooses the cost budget for the next work unit handed to a donor.
type Policy interface {
	// Budget returns the cost budget for the next unit. remaining is the
	// problem's estimate of outstanding cost (may be 0 if unknown);
	// donors is the current pool size.
	Budget(d DonorStats, remaining int64, donors int) int64
	// Name identifies the policy in logs and benchmarks.
	Name() string
}

// Fixed hands every donor the same unit size — the non-adaptive baseline
// the paper's adaptive strategy is compared against.
type Fixed struct{ Size int64 }

// Budget implements Policy.
func (f Fixed) Budget(DonorStats, int64, int) int64 {
	if f.Size <= 0 {
		return 1
	}
	return f.Size
}

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%d)", f.Size) }

// Adaptive is the paper's strategy: size each unit so the donor takes
// approximately Target wall-clock time, based on its measured throughput.
// Donors with no history receive Bootstrap. Budgets are clamped to
// [Min, Max].
type Adaptive struct {
	// Target is the desired unit duration (the paper tunes granularity so
	// donors report back at a steady cadence).
	Target time.Duration
	// Bootstrap is the budget for a donor with no measured throughput.
	Bootstrap int64
	// Min and Max clamp the computed budget. Max <= 0 means no upper clamp.
	Min, Max int64
}

// Budget implements Policy.
func (a Adaptive) Budget(d DonorStats, remaining int64, donors int) int64 {
	var b int64
	if d.Throughput <= 0 {
		b = a.Bootstrap
		if b <= 0 {
			b = 1
		}
	} else {
		b = int64(d.Throughput * a.Target.Seconds())
	}
	if b < a.Min {
		b = a.Min
	}
	if a.Max > 0 && b > a.Max {
		b = a.Max
	}
	if b <= 0 {
		b = 1
	}
	return b
}

// Name implements Policy.
func (a Adaptive) Name() string { return fmt.Sprintf("adaptive(%s)", a.Target) }

// GSS implements guided self-scheduling: each request receives
// remaining/(k*donors) of the outstanding work, shrinking as the
// computation tails off. Classic loop-scheduling baseline.
type GSS struct {
	// K is the divisor multiplier (1 = classic GSS). Larger K gives
	// smaller units.
	K int
	// Min clamps the smallest unit.
	Min int64
}

// Budget implements Policy.
func (g GSS) Budget(d DonorStats, remaining int64, donors int) int64 {
	k := g.K
	if k <= 0 {
		k = 1
	}
	if donors <= 0 {
		donors = 1
	}
	b := remaining / int64(k*donors)
	if b < g.Min {
		b = g.Min
	}
	if b <= 0 {
		b = 1
	}
	return b
}

// Name implements Policy.
func (g GSS) Name() string { return fmt.Sprintf("gss(k=%d)", g.K) }

// Factoring implements factoring scheduling: work is dispensed in batches;
// within a batch all units have equal size remaining/(2*donors), halving
// batch by batch. A well-known refinement of GSS for high-variance donors.
type Factoring struct {
	Min int64
}

// Budget implements Policy.
func (f Factoring) Budget(d DonorStats, remaining int64, donors int) int64 {
	if donors <= 0 {
		donors = 1
	}
	b := remaining / int64(2*donors)
	if b < f.Min {
		b = f.Min
	}
	if b <= 0 {
		b = 1
	}
	return b
}

// Name implements Policy.
func (f Factoring) Name() string { return "factoring" }

// TSS implements trapezoid self-scheduling: unit sizes decrease linearly
// from First to Last over the estimated run, giving a gentler taper than
// GSS's geometric decay. First/Last <= 0 derive classic defaults from the
// remaining work: First = remaining/(2*donors), Last = Min.
type TSS struct {
	First, Last int64
	// Min clamps the smallest unit.
	Min int64
}

// Budget implements Policy.
func (t TSS) Budget(d DonorStats, remaining int64, donors int) int64 {
	if donors <= 0 {
		donors = 1
	}
	first, last := t.First, t.Last
	if first <= 0 {
		first = remaining / int64(2*donors)
	}
	if last <= 0 {
		last = t.Min
	}
	if last < 1 {
		last = 1
	}
	if first < last {
		first = last
	}
	// Classic TSS issues N = 2*remaining/(first+last) units stepping down by
	// (first-last)/(N-1) each time. We have no per-unit counter (donors
	// request independently), so interpolate on remaining work instead: a
	// full queue gets First, a drained queue gets Last.
	total := first + last
	var b int64
	if total <= 0 || remaining <= 0 {
		b = last
	} else {
		// Fraction of the initial trapezoid still outstanding, approximated
		// by remaining work relative to a First-sized queue per donor.
		den := first * int64(2*donors)
		if den <= 0 {
			den = 1
		}
		frac := float64(remaining) / float64(den)
		if frac > 1 {
			frac = 1
		}
		b = last + int64(frac*float64(first-last))
	}
	if b < t.Min {
		b = t.Min
	}
	if b <= 0 {
		b = 1
	}
	return b
}

// Name implements Policy.
func (t TSS) Name() string { return "tss" }

// TrustNeutral is the reputation a donor starts with: the midpoint of the
// [0, 1] trust scale, above which the dispatch scan treats the donor as
// ordinary and below which it steers the donor toward less critical work.
// The coordinator seeds every new donor's trust EWMA here.
const TrustNeutral = 0.5

// DispatchKey summarises one problem's urgency for the dispatch scan:
// which problem a free donor should be offered first. The server builds
// one key per registered problem from fields it can read without taking
// the problem's lock (priority and deadline are immutable after Submit;
// inflight is an atomic counter), so ordering the scan costs no lock
// acquisitions on problems that will not be visited.
type DispatchKey struct {
	// Priority orders problems explicitly; higher is served first.
	Priority int
	// Deadline is the problem's completion target; the zero time means
	// none. Among equal priorities, a problem with a deadline outranks one
	// without, and earlier deadlines outrank later ones.
	Deadline time.Time
	// Inflight counts the problem's currently leased units. Among problems
	// tied on priority and deadline, fewer leases ranks first — that is the
	// work-stealing rule: a starved problem (few or no donors working it)
	// borrows the next free donor from a hot one.
	Inflight int64
	// Trust is the requesting donor's reputation score in (0, 1], stamped
	// identically on every key of one scan. A donor below TrustNeutral has
	// its priority and deadline preferences inverted — it is steered toward
	// the least critical problems first, so a low-reputation machine's
	// (possibly wrong, possibly verified-at-extra-cost) results land where
	// they hurt least. Zero or negative means trust is not tracked
	// (verification disabled) and ordering is unchanged.
	Trust float64
}

// Less reports whether the problem keyed a is more urgent than b:
// priority descending, then deadline (set before unset, earlier before
// later), then inflight ascending. Ties leave the scan's rotation order
// intact, which is what keeps equal problems fairly rotated. When both
// keys carry a below-neutral Trust (one scan's keys always share the
// requesting donor's trust), the priority and deadline preferences invert:
// the low-trust donor is offered the least urgent problem first.
func Less(a, b DispatchKey) bool {
	lowTrust := a.Trust > 0 && a.Trust < TrustNeutral && b.Trust > 0 && b.Trust < TrustNeutral
	if a.Priority != b.Priority {
		if lowTrust {
			return a.Priority < b.Priority
		}
		return a.Priority > b.Priority
	}
	aHas, bHas := !a.Deadline.IsZero(), !b.Deadline.IsZero()
	if aHas != bHas {
		if lowTrust {
			return bHas
		}
		return aHas
	}
	if aHas && !a.Deadline.Equal(b.Deadline) {
		if lowTrust {
			return a.Deadline.After(b.Deadline)
		}
		return a.Deadline.Before(b.Deadline)
	}
	return a.Inflight < b.Inflight
}

// ScanOrder returns the order in which a dispatch scan should visit the
// problems described by keys: indices 0..len(keys)-1 rotated to begin at
// start (the fairness tiebreak a round-robin scan would use on its own),
// then stably sorted by Less. Problems with equal keys are therefore
// visited in rotation order, while an urgent problem is pulled to the
// front of every donor's scan regardless of where the rotation points.
func ScanOrder(keys []DispatchKey, start int) []int {
	n := len(keys)
	if n == 0 {
		return nil
	}
	if start < 0 || start >= n {
		start = 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = (start + i) % n
	}
	sort.SliceStable(order, func(i, j int) bool {
		return Less(keys[order[i]], keys[order[j]])
	})
	return order
}

// EWMA updates a throughput moving average with a new observation, using
// weight alpha for the new sample (alpha in (0, 1]).
func EWMA(old, sample, alpha float64) float64 {
	if old <= 0 {
		return sample
	}
	return old*(1-alpha) + sample*alpha
}

// ByName resolves a policy from a config-file string: "fixed:1000",
// "adaptive:5s", "gss", "gss:2", "factoring".
func ByName(spec string) (Policy, error) {
	var name, arg string
	name = spec
	for i := 0; i < len(spec); i++ {
		if spec[i] == ':' {
			name, arg = spec[:i], spec[i+1:]
			break
		}
	}
	switch name {
	case "fixed":
		var size int64 = 1000
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &size); err != nil {
				return nil, fmt.Errorf("sched: bad fixed size %q: %w", arg, err)
			}
		}
		return Fixed{Size: size}, nil
	case "adaptive":
		target := 5 * time.Second
		if arg != "" {
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("sched: bad adaptive target %q: %w", arg, err)
			}
			target = d
		}
		return Adaptive{Target: target, Bootstrap: 1000, Min: 1}, nil
	case "gss":
		k := 1
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &k); err != nil {
				return nil, fmt.Errorf("sched: bad gss k %q: %w", arg, err)
			}
		}
		return GSS{K: k, Min: 1}, nil
	case "factoring":
		return Factoring{Min: 1}, nil
	case "tss":
		return TSS{Min: 1}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (have fixed, adaptive, gss, factoring, tss)", name)
	}
}
