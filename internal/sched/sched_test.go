package sched

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestFixed(t *testing.T) {
	p := Fixed{Size: 500}
	if got := p.Budget(DonorStats{}, 1e9, 10); got != 500 {
		t.Errorf("Budget = %d", got)
	}
	if got := (Fixed{}).Budget(DonorStats{}, 0, 0); got != 1 {
		t.Errorf("zero-size fixed budget = %d, want 1", got)
	}
}

func TestAdaptive(t *testing.T) {
	p := Adaptive{Target: 2 * time.Second, Bootstrap: 100, Min: 10, Max: 100000}
	// No history: bootstrap.
	if got := p.Budget(DonorStats{}, 0, 5); got != 100 {
		t.Errorf("bootstrap budget = %d", got)
	}
	// 1000 cost/s donor, 2 s target -> 2000.
	if got := p.Budget(DonorStats{Throughput: 1000}, 0, 5); got != 2000 {
		t.Errorf("adaptive budget = %d, want 2000", got)
	}
	// Clamps.
	if got := p.Budget(DonorStats{Throughput: 1}, 0, 5); got != 10 {
		t.Errorf("min clamp = %d", got)
	}
	if got := p.Budget(DonorStats{Throughput: 1e9}, 0, 5); got != 100000 {
		t.Errorf("max clamp = %d", got)
	}
	// Faster donors get proportionally bigger units (the paper's core
	// heterogeneity mechanism).
	slow := p.Budget(DonorStats{Throughput: 500}, 0, 5)
	fast := p.Budget(DonorStats{Throughput: 5000}, 0, 5)
	if fast != 10*slow {
		t.Errorf("budgets not proportional: slow=%d fast=%d", slow, fast)
	}
}

func TestGSS(t *testing.T) {
	p := GSS{K: 1, Min: 1}
	if got := p.Budget(DonorStats{}, 1000, 10); got != 100 {
		t.Errorf("GSS budget = %d, want 100", got)
	}
	// Shrinks as work drains.
	if a, b := p.Budget(DonorStats{}, 1000, 10), p.Budget(DonorStats{}, 100, 10); b >= a {
		t.Errorf("GSS did not shrink: %d -> %d", a, b)
	}
	// Min floor.
	if got := p.Budget(DonorStats{}, 5, 10); got != 1 {
		t.Errorf("GSS floor = %d", got)
	}
	// Degenerate inputs.
	if got := (GSS{}).Budget(DonorStats{}, 0, 0); got != 1 {
		t.Errorf("degenerate GSS = %d", got)
	}
}

func TestFactoring(t *testing.T) {
	p := Factoring{Min: 1}
	if got := p.Budget(DonorStats{}, 1000, 10); got != 50 {
		t.Errorf("factoring budget = %d, want 50", got)
	}
}

func TestTSS(t *testing.T) {
	p := TSS{Min: 10}
	// Full queue: roughly remaining/(2*donors).
	full := p.Budget(DonorStats{}, 10000, 10)
	if full < 400 || full > 500 {
		t.Errorf("full-queue TSS budget = %d, want ~500", full)
	}
	// Taper: budgets shrink monotonically as the queue drains.
	prev := full
	for _, rem := range []int64{5000, 2000, 500, 100, 10} {
		b := p.Budget(DonorStats{}, rem, 10)
		if b > prev {
			t.Errorf("TSS grew as work drained: %d -> %d at remaining=%d", prev, b, rem)
		}
		prev = b
	}
	// Floor.
	if got := p.Budget(DonorStats{}, 1, 10); got != 10 {
		t.Errorf("TSS floor = %d, want 10", got)
	}
	// Degenerate inputs survive.
	if got := (TSS{}).Budget(DonorStats{}, 0, 0); got < 1 {
		t.Errorf("degenerate TSS = %d", got)
	}
	// Explicit First/Last are respected at the endpoints.
	e := TSS{First: 1000, Last: 100, Min: 1}
	if got := e.Budget(DonorStats{}, 1<<40, 4); got != 1000 {
		t.Errorf("explicit full-queue TSS = %d, want 1000", got)
	}
	if got := e.Budget(DonorStats{}, 0, 4); got != 100 {
		t.Errorf("explicit drained TSS = %d, want 100", got)
	}
}

func TestPolicyBudgetsAlwaysPositive(t *testing.T) {
	policies := []Policy{
		Fixed{}, Fixed{Size: -5},
		Adaptive{}, Adaptive{Target: time.Second},
		GSS{}, GSS{K: -1},
		Factoring{}, TSS{}, TSS{First: -10, Last: -10},
	}
	stats := []DonorStats{{}, {Throughput: 1e-12}, {Throughput: 1e12}, {Failures: 100}}
	for _, p := range policies {
		for _, d := range stats {
			for _, rem := range []int64{-1, 0, 1, 1 << 40} {
				for _, n := range []int{-1, 0, 1, 1000} {
					if got := p.Budget(d, rem, n); got < 1 {
						t.Errorf("%s.Budget(%+v, %d, %d) = %d", p.Name(), d, rem, n, got)
					}
				}
			}
		}
	}
}

// propPolicies is the exhaustive policy grid the property suites sweep:
// every implemented policy, with both default-ish and adversarial
// parameters.
func propPolicies() []Policy {
	return []Policy{
		Fixed{Size: 1}, Fixed{Size: 1000}, Fixed{Size: -7}, Fixed{},
		Adaptive{Target: time.Second, Bootstrap: 100, Min: 1},
		Adaptive{Target: 5 * time.Second, Bootstrap: 1000, Min: 10, Max: 1 << 20},
		Adaptive{},
		GSS{K: 1, Min: 1}, GSS{K: 4, Min: 1}, GSS{},
		Factoring{Min: 1}, Factoring{},
		TSS{Min: 1}, TSS{First: 1000, Last: 10, Min: 1}, TSS{},
	}
}

func randStats(rng *rand.Rand) DonorStats {
	return DonorStats{
		Throughput: rng.Float64() * float64(int64(1)<<rng.Intn(40)),
		Completed:  rng.Intn(1 << 20),
		Failures:   rng.Intn(100),
	}
}

// TestPolicyBudgetAtLeastOneProperty: under any donor history and any
// remaining/donor-count inputs — including nonsense negatives — every
// policy returns a budget of at least 1, the invariant the server's
// dispatch loop relies on to make progress.
func TestPolicyBudgetAtLeastOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, p := range propPolicies() {
		for trial := 0; trial < 500; trial++ {
			d := randStats(rng)
			rem := rng.Int63n(1<<41) - 10
			n := rng.Intn(2050) - 2
			if got := p.Budget(d, rem, n); got < 1 {
				t.Fatalf("%s.Budget(%+v, %d, %d) = %d, want >= 1", p.Name(), d, rem, n, got)
			}
		}
	}
}

// TestDecreasingPoliciesMonotone: the self-scheduling family (GSS,
// Factoring, TSS) hands out non-increasing budgets as the remaining work
// drains, for any fixed donor population — the taper that bounds the
// finish-line imbalance.
func TestDecreasingPoliciesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	decreasing := []Policy{
		GSS{K: 1, Min: 1}, GSS{K: 4, Min: 1},
		Factoring{Min: 1},
		TSS{Min: 1}, TSS{First: 1000, Last: 10, Min: 1},
	}
	for _, p := range decreasing {
		for trial := 0; trial < 100; trial++ {
			donors := 1 + rng.Intn(64)
			d := randStats(rng)
			rem := int64(1 << (10 + rng.Intn(20)))
			prev := p.Budget(d, rem, donors)
			for rem > 0 {
				rem -= rem/3 + 1
				b := p.Budget(d, rem, donors)
				if b > prev {
					t.Fatalf("%s grew as work drained: %d -> %d at remaining=%d donors=%d",
						p.Name(), prev, b, rem, donors)
				}
				prev = b
			}
		}
	}
}

// TestPolicyTermination: repeatedly drawing a budget and subtracting it
// from the remaining work reaches zero in at most `remaining` draws for
// every policy — i.e. budgets both cover the workload and never stall.
// This is the policy-level half of the server's liveness argument.
func TestPolicyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range propPolicies() {
		for trial := 0; trial < 20; trial++ {
			donors := 1 + rng.Intn(32)
			d := randStats(rng)
			rem := int64(1 + rng.Intn(1<<16))
			steps := int64(0)
			for rem > 0 {
				b := p.Budget(d, rem, donors)
				if b < 1 {
					t.Fatalf("%s stalled: budget %d at remaining=%d", p.Name(), b, rem)
				}
				rem -= b
				if steps++; steps > 1<<17 {
					t.Fatalf("%s did not terminate: %d steps, remaining=%d", p.Name(), steps, rem)
				}
			}
		}
	}
}

// nameToSpec maps a policy's Name() rendering back to the ByName spec
// grammar: "fixed(2000)" -> "fixed:2000", "gss(k=4)" -> "gss:4".
func nameToSpec(name string) string {
	open := strings.IndexByte(name, '(')
	if open < 0 {
		return name
	}
	arg := strings.TrimSuffix(name[open+1:], ")")
	if eq := strings.IndexByte(arg, '='); eq >= 0 {
		arg = arg[eq+1:]
	}
	return name[:open] + ":" + arg
}

// TestByNameRoundTrip: parsing a spec, rendering its Name, mapping that
// back to a spec and reparsing yields the same policy — Name() is a
// faithful, re-ingestible description of every ByName-reachable policy.
func TestByNameRoundTrip(t *testing.T) {
	specs := []string{
		"fixed", "fixed:1", "fixed:2000", "fixed:1000000",
		"adaptive", "adaptive:1s", "adaptive:250ms", "adaptive:2m",
		"gss", "gss:1", "gss:4", "gss:16",
		"factoring", "tss",
	}
	for _, spec := range specs {
		p1, err := ByName(spec)
		if err != nil {
			t.Fatalf("ByName(%q): %v", spec, err)
		}
		back := nameToSpec(p1.Name())
		p2, err := ByName(back)
		if err != nil {
			t.Fatalf("ByName(%q) (round-tripped from %q via %q): %v", back, spec, p1.Name(), err)
		}
		if p1.Name() != p2.Name() {
			t.Errorf("round trip drifted: %q -> %q -> %q -> %q", spec, p1.Name(), back, p2.Name())
		}
	}
}

// randKeys draws a random dispatch-key slice: a few priority tiers, a
// mix of set/unset deadlines, small inflight counts — the shapes the
// server's scan actually sees.
func randKeys(rng *rand.Rand, n int) []DispatchKey {
	base := time.Unix(1700000000, 0)
	keys := make([]DispatchKey, n)
	for i := range keys {
		k := DispatchKey{Priority: rng.Intn(5) - 2, Inflight: int64(rng.Intn(8))}
		if rng.Intn(2) == 0 {
			k.Deadline = base.Add(time.Duration(rng.Intn(1000)) * time.Second)
		}
		keys[i] = k
	}
	return keys
}

// TestLessProperties: Less is irreflexive and asymmetric over random key
// pairs, and orders by the documented hierarchy — priority descending,
// then set-before-unset / earlier-first deadlines, then fewest inflight.
func TestLessProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		a, b := randKeys(rng, 2)[0], randKeys(rng, 2)[1]
		if Less(a, a) {
			t.Fatalf("Less(%+v, same) = true; must be irreflexive", a)
		}
		if Less(a, b) && Less(b, a) {
			t.Fatalf("Less not asymmetric for %+v / %+v", a, b)
		}
		if a.Priority > b.Priority && !Less(a, b) {
			t.Fatalf("higher priority not fronted: %+v vs %+v", a, b)
		}
	}
	base := time.Unix(1700000000, 0)
	withDL := DispatchKey{Deadline: base}
	noDL := DispatchKey{}
	if !Less(withDL, noDL) || Less(noDL, withDL) {
		t.Error("deadline-bearing key must sort before deadline-free peer")
	}
	early := DispatchKey{Deadline: base}
	late := DispatchKey{Deadline: base.Add(time.Hour)}
	if !Less(early, late) {
		t.Error("earlier deadline must sort first")
	}
	idle := DispatchKey{Inflight: 0}
	busy := DispatchKey{Inflight: 9}
	if !Less(idle, busy) {
		t.Error("fewer inflight must sort first among equals (work stealing)")
	}
}

// TestScanOrderProperties: ScanOrder returns a permutation, never
// inverts the Less order, and — when every key is equal — degenerates to
// the pure round-robin rotation, preserving the pre-PR 9 fairness.
func TestScanOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		keys := randKeys(rng, n)
		start := rng.Intn(n)
		order := ScanOrder(keys, start)
		if len(order) != n {
			t.Fatalf("ScanOrder returned %d indices for %d keys", len(order), n)
		}
		seen := make(map[int]bool, n)
		for _, idx := range order {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("not a permutation: %v", order)
			}
			seen[idx] = true
		}
		for j := 0; j+1 < n; j++ {
			if Less(keys[order[j+1]], keys[order[j]]) {
				t.Fatalf("scan order inverts Less at %d: %v (keys %+v)", j, order, keys)
			}
		}
	}
	// All-equal keys: rotation is preserved exactly (stable sort).
	for _, n := range []int{1, 2, 5, 8} {
		keys := make([]DispatchKey, n)
		for start := 0; start < n; start++ {
			order := ScanOrder(keys, start)
			for i, idx := range order {
				if idx != (start+i)%n {
					t.Fatalf("equal keys broke rotation: n=%d start=%d order=%v", n, start, order)
				}
			}
		}
	}
	if ScanOrder(nil, 0) != nil {
		t.Error("empty key set should scan nothing")
	}
	// Out-of-range start clamps rather than panicking.
	if got := ScanOrder(make([]DispatchKey, 3), 99); len(got) != 3 {
		t.Errorf("out-of-range start: %v", got)
	}
}

func TestEWMA(t *testing.T) {
	if got := EWMA(0, 100, 0.3); got != 100 {
		t.Errorf("first sample EWMA = %g", got)
	}
	got := EWMA(100, 200, 0.5)
	if got != 150 {
		t.Errorf("EWMA = %g, want 150", got)
	}
}

func TestByName(t *testing.T) {
	cases := map[string]string{
		"fixed:2000":  "fixed(2000)",
		"fixed":       "fixed(1000)",
		"adaptive:3s": "adaptive(3s)",
		"adaptive":    "adaptive(5s)",
		"gss":         "gss(k=1)",
		"gss:4":       "gss(k=4)",
		"factoring":   "factoring",
		"tss":         "tss",
	}
	for spec, want := range cases {
		p, err := ByName(spec)
		if err != nil {
			t.Errorf("ByName(%q): %v", spec, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "nope", "fixed:x", "adaptive:zzz", "gss:x"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}
