package sched

import (
	"testing"
	"time"
)

func TestFixed(t *testing.T) {
	p := Fixed{Size: 500}
	if got := p.Budget(DonorStats{}, 1e9, 10); got != 500 {
		t.Errorf("Budget = %d", got)
	}
	if got := (Fixed{}).Budget(DonorStats{}, 0, 0); got != 1 {
		t.Errorf("zero-size fixed budget = %d, want 1", got)
	}
}

func TestAdaptive(t *testing.T) {
	p := Adaptive{Target: 2 * time.Second, Bootstrap: 100, Min: 10, Max: 100000}
	// No history: bootstrap.
	if got := p.Budget(DonorStats{}, 0, 5); got != 100 {
		t.Errorf("bootstrap budget = %d", got)
	}
	// 1000 cost/s donor, 2 s target -> 2000.
	if got := p.Budget(DonorStats{Throughput: 1000}, 0, 5); got != 2000 {
		t.Errorf("adaptive budget = %d, want 2000", got)
	}
	// Clamps.
	if got := p.Budget(DonorStats{Throughput: 1}, 0, 5); got != 10 {
		t.Errorf("min clamp = %d", got)
	}
	if got := p.Budget(DonorStats{Throughput: 1e9}, 0, 5); got != 100000 {
		t.Errorf("max clamp = %d", got)
	}
	// Faster donors get proportionally bigger units (the paper's core
	// heterogeneity mechanism).
	slow := p.Budget(DonorStats{Throughput: 500}, 0, 5)
	fast := p.Budget(DonorStats{Throughput: 5000}, 0, 5)
	if fast != 10*slow {
		t.Errorf("budgets not proportional: slow=%d fast=%d", slow, fast)
	}
}

func TestGSS(t *testing.T) {
	p := GSS{K: 1, Min: 1}
	if got := p.Budget(DonorStats{}, 1000, 10); got != 100 {
		t.Errorf("GSS budget = %d, want 100", got)
	}
	// Shrinks as work drains.
	if a, b := p.Budget(DonorStats{}, 1000, 10), p.Budget(DonorStats{}, 100, 10); b >= a {
		t.Errorf("GSS did not shrink: %d -> %d", a, b)
	}
	// Min floor.
	if got := p.Budget(DonorStats{}, 5, 10); got != 1 {
		t.Errorf("GSS floor = %d", got)
	}
	// Degenerate inputs.
	if got := (GSS{}).Budget(DonorStats{}, 0, 0); got != 1 {
		t.Errorf("degenerate GSS = %d", got)
	}
}

func TestFactoring(t *testing.T) {
	p := Factoring{Min: 1}
	if got := p.Budget(DonorStats{}, 1000, 10); got != 50 {
		t.Errorf("factoring budget = %d, want 50", got)
	}
}

func TestTSS(t *testing.T) {
	p := TSS{Min: 10}
	// Full queue: roughly remaining/(2*donors).
	full := p.Budget(DonorStats{}, 10000, 10)
	if full < 400 || full > 500 {
		t.Errorf("full-queue TSS budget = %d, want ~500", full)
	}
	// Taper: budgets shrink monotonically as the queue drains.
	prev := full
	for _, rem := range []int64{5000, 2000, 500, 100, 10} {
		b := p.Budget(DonorStats{}, rem, 10)
		if b > prev {
			t.Errorf("TSS grew as work drained: %d -> %d at remaining=%d", prev, b, rem)
		}
		prev = b
	}
	// Floor.
	if got := p.Budget(DonorStats{}, 1, 10); got != 10 {
		t.Errorf("TSS floor = %d, want 10", got)
	}
	// Degenerate inputs survive.
	if got := (TSS{}).Budget(DonorStats{}, 0, 0); got < 1 {
		t.Errorf("degenerate TSS = %d", got)
	}
	// Explicit First/Last are respected at the endpoints.
	e := TSS{First: 1000, Last: 100, Min: 1}
	if got := e.Budget(DonorStats{}, 1<<40, 4); got != 1000 {
		t.Errorf("explicit full-queue TSS = %d, want 1000", got)
	}
	if got := e.Budget(DonorStats{}, 0, 4); got != 100 {
		t.Errorf("explicit drained TSS = %d, want 100", got)
	}
}

func TestPolicyBudgetsAlwaysPositive(t *testing.T) {
	policies := []Policy{
		Fixed{}, Fixed{Size: -5},
		Adaptive{}, Adaptive{Target: time.Second},
		GSS{}, GSS{K: -1},
		Factoring{}, TSS{}, TSS{First: -10, Last: -10},
	}
	stats := []DonorStats{{}, {Throughput: 1e-12}, {Throughput: 1e12}, {Failures: 100}}
	for _, p := range policies {
		for _, d := range stats {
			for _, rem := range []int64{-1, 0, 1, 1 << 40} {
				for _, n := range []int{-1, 0, 1, 1000} {
					if got := p.Budget(d, rem, n); got < 1 {
						t.Errorf("%s.Budget(%+v, %d, %d) = %d", p.Name(), d, rem, n, got)
					}
				}
			}
		}
	}
}

func TestEWMA(t *testing.T) {
	if got := EWMA(0, 100, 0.3); got != 100 {
		t.Errorf("first sample EWMA = %g", got)
	}
	got := EWMA(100, 200, 0.5)
	if got != 150 {
		t.Errorf("EWMA = %g, want 150", got)
	}
}

func TestByName(t *testing.T) {
	cases := map[string]string{
		"fixed:2000":  "fixed(2000)",
		"fixed":       "fixed(1000)",
		"adaptive:3s": "adaptive(3s)",
		"adaptive":    "adaptive(5s)",
		"gss":         "gss(k=1)",
		"gss:4":       "gss(k=4)",
		"factoring":   "factoring",
		"tss":         "tss",
	}
	for spec, want := range cases {
		p, err := ByName(spec)
		if err != nil {
			t.Errorf("ByName(%q): %v", spec, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "nope", "fixed:x", "adaptive:zzz", "gss:x"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}
