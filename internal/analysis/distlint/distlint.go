// Package distlint assembles the runtime's invariant analyzers into one
// suite, shared by the cmd/distlint driver and the regression tests so
// both always run exactly the same checks.
package distlint

import (
	"repro/internal/analysis/ctxcheck"
	"repro/internal/analysis/epochcheck"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/gobcheck"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/sentinelcheck"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		ctxcheck.Analyzer,
		epochcheck.Analyzer,
		gobcheck.Analyzer,
		lockcheck.Analyzer,
		sentinelcheck.Analyzer,
	}
}

// Check loads the packages matched by patterns under dir and runs the
// suite, returning the surviving (non-suppressed) diagnostics.
func Check(dir string, patterns ...string) ([]framework.Diagnostic, error) {
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return framework.Run(Analyzers(), pkgs)
}
