package sentinelcheck_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/sentinelcheck"
)

func TestFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/sentinelcheck",
		framework.FixtureImportPath("repro", "sentinelcheck"), sentinelcheck.Analyzer)
}
