// Package sentinelcheck forbids identity comparison of sentinel errors.
//
// The runtime's sentinels (dist.ErrClosed, dist.ErrServerGone,
// dist.ErrForgotten, wire.ErrCorruptFrame, wire.ErrDigestMismatch, and
// net/rpc's ErrShutdown) routinely cross wrap boundaries — %w wrapping,
// net/rpc's error flattening, the donor's transient-error envelopes — so
// `err == ErrClosed` silently stops matching the moment anyone adds
// context to the chain. Comparisons (== / != and switch cases) against a
// sentinel must go through errors.Is instead.
//
// A sentinel is any package-level exported `Err*` variable of type error
// declared in this module, plus net/rpc's ErrShutdown (the one stdlib
// sentinel the runtime handles). Stdlib sentinels like io.EOF are left
// alone: parts of the io contract are specified as identity comparisons.
package sentinelcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the sentinelcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "sentinelcheck",
	Doc:  "sentinel errors must be matched with errors.Is, never == or switch",
	Run:  run,
}

func run(pass *framework.Pass) error {
	modulePrefix := modulePrefixOf(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if v, ok := sentinel(pass, operand, modulePrefix); ok {
						pass.Reportf(n.Pos(),
							"sentinel %s compared with %s; use errors.Is(err, %s)",
							v.Name(), n.Op, v.Name())
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n.Tag]; !ok || !isErrorType(tv.Type) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if v, ok := sentinel(pass, expr, modulePrefix); ok {
							pass.Reportf(expr.Pos(),
								"sentinel %s matched by switch case (identity comparison); use errors.Is(err, %s)",
								v.Name(), v.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinel reports whether expr references a sentinel error variable.
func sentinel(pass *framework.Pass, expr ast.Expr, modulePrefix string) (*types.Var, bool) {
	var ident *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return nil, false
	}
	v, ok := pass.TypesInfo.Uses[ident].(*types.Var)
	if !ok || v.Pkg() == nil || !isErrorType(v.Type()) {
		return nil, false
	}
	// Package-level variables only: a local `err` never names a sentinel.
	if v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	path := v.Pkg().Path()
	if path == "net/rpc" && v.Name() == "ErrShutdown" {
		return v, true
	}
	if !strings.HasPrefix(v.Name(), "Err") || !v.Exported() {
		return nil, false
	}
	if path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/") {
		return v, true
	}
	return nil, false
}

// modulePrefixOf derives the module root from an import path: the
// analyzed tree's own packages all live under it, so a sentinel imported
// from a sibling package is recognised without configuration.
func modulePrefixOf(pkgPath string) string {
	if i := strings.Index(pkgPath, "/"); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
