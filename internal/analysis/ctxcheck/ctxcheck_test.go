package ctxcheck_test

import (
	"testing"

	"repro/internal/analysis/ctxcheck"
	"repro/internal/analysis/framework"
)

func TestFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/ctxcheck",
		framework.FixtureImportPath("repro", "ctxcheck"), ctxcheck.Analyzer)
}

// TestMainPackageExempt verifies rule 2's main-package carve-out: a
// program's entry point legitimately owns the root context.
func TestMainPackageExempt(t *testing.T) {
	pkg, err := framework.LoadDir("../testdata/ctxmain", "repro/fixtures/ctxmain")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Analyzer{ctxcheck.Analyzer}, []*framework.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("main package flagged: %v", diags)
	}
}
