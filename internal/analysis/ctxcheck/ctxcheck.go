// Package ctxcheck enforces the v2 API's context discipline:
//
//  1. A function taking a context.Context takes it as its first
//     parameter — the convention every exported dist/core entry point
//     follows, checked everywhere so internal helpers cannot drift.
//  2. Library code (any non-main package) must not mint its own root
//     context with context.Background() or context.TODO(): the caller's
//     context carries cancellation, and swallowing it severs the
//     cancellation chain PR 3 threaded through the runtime. Sites that
//     legitimately have no caller context — the net/rpc handler methods,
//     nil-ctx normalisation in public entry points — are annotated
//     //dist:allow-background (on the enclosing function's doc comment or
//     on the call's own line).
package ctxcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "ctxcheck",
	Doc:  "context.Context goes first; no context.Background/TODO in library code without //dist:allow-background",
	Run:  run,
}

func run(pass *framework.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxFirst(pass, fd)
			if fd.Body == nil || isMain {
				continue
			}
			checkNoBackground(pass, file, fd)
		}
	}
	return nil
}

// checkCtxFirst reports context.Context parameters in any position but
// the first.
func checkCtxFirst(pass *framework.Pass, fd *ast.FuncDecl) {
	params := fd.Type.Params
	if params == nil {
		return
	}
	index := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && index > 0 {
			pass.Reportf(field.Pos(),
				"%s takes context.Context as parameter %d; context.Context must be the first parameter",
				fd.Name.Name, index+1)
		}
		index += n
	}
}

// checkNoBackground reports context.Background/TODO calls in library code
// that lack an //dist:allow-background annotation.
func checkNoBackground(pass *framework.Pass, file *ast.File, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if framework.AllowBackground(pass, file, fd, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() in library code severs the caller's cancellation chain; thread a ctx parameter or annotate the site //dist:allow-background",
			sel.Sel.Name)
		return true
	})
}

// isContextType reports whether the parameter type is context.Context.
func isContextType(pass *framework.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
