// Fixture for the framework's //nolint escape hatch. The test analyzer
// reports one diagnostic per function declaration; the directives below
// exercise same-line suppression, next-line suppression, the wildcard,
// the mandatory justification, and analyzer-name scoping.
package nolint

func alpha() {} //nolint:distlint/fake fixture: suppressed with a justification

//nolint:distlint/fake fixture: next-line suppression
func bravo() {}

func charlie() {} //nolint:distlint/* fixture: wildcard suppresses every analyzer

func delta() {} //nolint:distlint/fake

func echo() {} //nolint:distlint/other justified, but scoped to a different analyzer

func foxtrot() {}
