// Fixture for epochcheck rule 1: envelope structs referencing a unit must
// carry an int64 Epoch. (Rule 2, the protocol-doc cross-check, is scoped
// to internal/wire import paths and exercised by a separate fixture.)
package epochcheck

// Unit stands in for the dispatch unit type.
type Unit struct {
	ID      int64
	Payload []byte
}

type ResultArgs struct { // want "wire envelope ResultArgs references a unit but has no int64 Epoch field"
	ProblemID string
	UnitID    int64
	Result    []byte
}

type GoodArgs struct {
	ProblemID string
	UnitID    int64
	Epoch     int64
}

type TaskReply struct { // want "wire envelope TaskReply references a unit but has no int64 Epoch field"
	Unit Unit
}

type GoodReply struct {
	Unit  Unit
	Epoch int64
}

// WrongEpochArgs types its Epoch as int, which cannot round-trip the
// server's int64 incarnation counter.
type WrongEpochArgs struct { // want "wire envelope WrongEpochArgs references a unit but has no int64 Epoch field"
	UnitID int64
	Epoch  int
}

// CancelReply carries no unit reference, so no epoch is demanded.
type CancelReply struct {
	Notices []string
}

// plain is not an envelope: the name has no Args/Reply suffix.
type plain struct {
	UnitID int64
}
