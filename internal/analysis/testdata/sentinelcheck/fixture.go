// Fixture for sentinelcheck: module sentinels (and net/rpc.ErrShutdown)
// must be matched with errors.Is, never identity comparison.
package sentinelcheck

import (
	"errors"
	"io"
	"net/rpc"
)

// ErrGone is a module sentinel: package-level, exported, Err-prefixed.
var ErrGone = errors.New("gone")

// errLocal is unexported and therefore not a sentinel.
var errLocal = errors.New("local")

func compare(err error) bool {
	if err == ErrGone { // want "sentinel ErrGone compared with =="
		return true
	}
	if err != ErrGone { // want "sentinel ErrGone compared with !="
		return false
	}
	if err == rpc.ErrShutdown { // want "sentinel ErrShutdown compared with =="
		return true
	}
	if errors.Is(err, ErrGone) { // the sanctioned form
		return true
	}
	if err == errLocal { // unexported: not a sentinel
		return true
	}
	if err == io.EOF { // stdlib identity contracts are left alone
		return true
	}
	return err == nil
}

func classify(err error) int {
	switch err {
	case nil:
		return 0
	case ErrGone: // want "sentinel ErrGone matched by switch case"
		return 1
	case io.EOF:
		return 2
	}
	return 3
}
