// Fixture for gobcheck: raw gob codec construction (and the dist byte
// codec helpers) stays inside internal/dist/typed.go and internal/wire.
package gobcheck

import (
	"bytes"
	"encoding/gob"
	"io"
)

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil { // want "gob.NewEncoder outside the codec boundary"
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(r io.Reader, v any) error {
	return gob.NewDecoder(r).Decode(v) // want "gob.NewDecoder outside the codec boundary"
}

// Register is part of gob's type registry, not a codec: allowed anywhere.
func register(v any) {
	gob.Register(v)
}
