package gobcheck

import "repro/internal/dist"

func viaDist(v any) ([]byte, error) {
	return dist.Marshal(v) // want "dist.Marshal outside the codec boundary"
}

func viaDistMust(v any) []byte {
	return dist.MustMarshal(v) // want "dist.MustMarshal outside the codec boundary"
}

// Encode is the typed adapter — the sanctioned entry point.
func viaTyped(v int) ([]byte, error) {
	return dist.Encode(v)
}

func escaped(v any) error {
	return dist.Unmarshal(nil, v) //nolint:distlint/gobcheck exercising the justified escape hatch
}
