// Fixture for gobcheck's flat-codec rule: the flat rpc codec constructors
// stay inside internal/dist/net.go (the negotiation site) and
// internal/wire.
package gobcheck

import (
	"io"
	"net/rpc"

	"repro/internal/wire"
)

func flatClient(conn io.ReadWriteCloser) rpc.ClientCodec {
	return wire.NewFlatClientCodec(conn) // want "wire.NewFlatClientCodec outside the flat-codec boundary"
}

func flatServer(conn io.ReadWriteCloser) rpc.ServerCodec {
	return wire.NewFlatServerCodec(conn) // want "wire.NewFlatServerCodec outside the flat-codec boundary"
}

// The frame primitives are not fenced — the bulk channel uses them from
// anywhere.
func frames(w io.Writer, payload []byte) error {
	return wire.WriteFrame(w, payload)
}
