// Fixture for epochcheck rule 2's journal arm: exported structs in an
// internal/journal package are durable record formats and must be
// mentioned in the module's docs/ARCHITECTURE.md (the one in
// testdata/journaldoc, found via the fixture module's own go.mod).
package journal

// DocumentedSubmit appears in the fixture durability doc.
type DocumentedSubmit struct {
	ProblemID string
	Epoch     int64
}

// DocumentedMeta appears in the fixture durability doc.
type DocumentedMeta struct {
	EpochSeq int64
}

type StrayRecord struct { // want "exported journal record struct StrayRecord is not mentioned in docs/ARCHITECTURE.md"
	Payload []byte
}

// cursor is unexported: not part of the durable format surface.
type cursor struct {
	off int64
}
