// Fixture for ctxcheck's main-package exemption: a program entry point
// owns the root context and may call context.Background freely.
package main

import "context"

func main() {
	run(context.Background())
}

func run(ctx context.Context) { _ = ctx }
