// Fixture for epochcheck rule 2: exported structs in an internal/wire
// package must be mentioned in the module's docs/ARCHITECTURE.md (the one
// in testdata/wiredoc, found via the fixture module's own go.mod).
package wire

// DocumentedArgs appears in the fixture protocol doc.
type DocumentedArgs struct {
	UnitID int64
	Epoch  int64
}

// DocumentedReply appears in the fixture protocol doc.
type DocumentedReply struct {
	Payload []byte
}

type StrayStatus struct { // want "exported wire struct StrayStatus is not mentioned in docs/ARCHITECTURE.md"
	Connections int
}

// internalDetail is unexported: not part of the protocol surface.
type internalDetail struct {
	refs int
}
