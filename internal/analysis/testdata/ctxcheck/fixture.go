// Fixture for ctxcheck: ctx goes first, and library code never mints a
// root context without an //dist:allow-background annotation.
package ctxcheck

import "context"

func ctxFirst(ctx context.Context, n int) {}

func ctxSecond(n int, ctx context.Context) {} // want "ctxSecond takes context.Context as parameter 2"

func noCtx(a, b string) {}

func background() {
	ctx := context.Background() // want "context.Background.. in library code"
	_ = ctx
}

func todo() {
	ctx := context.TODO() // want "context.TODO.. in library code"
	_ = ctx
}

// exemptByDoc has no caller context by design.
//
//dist:allow-background
func exemptByDoc() {
	_ = context.Background()
}

func exemptByLine(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() //dist:allow-background nil-ctx normalisation
	}
	_ = ctx
}
