// Fixture for lockcheck: accesses of //dist:guardedby fields must carry
// lock evidence or a //dist:locked annotation.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //dist:guardedby mu
	// free has no guard annotation and is never flagged.
	free bool
}

// other has its own guard; locking counter.mu proves nothing about it.
type other struct {
	mu sync.Mutex
	v  int //dist:guardedby mu
}

func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bumpLocked documents its precondition instead of locking.
//
//dist:locked mu
func (c *counter) bumpLocked() {
	c.n++
}

func (c *counter) peek() int {
	return c.n // want "counter.n is guarded by .mu. but peek neither locks it"
}

func (c *counter) toggle() {
	c.free = true
}

func newCounter() *counter {
	return &counter{n: 1} // composite literals initialise before publication
}

func (c *counter) viaClosure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() { c.n++ } // inherits the enclosing declaration's evidence
	f()
}

func crossType(c *counter, o *other) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o.v++ // want "other.v is guarded by .mu. but crossType neither locks it"
}

func tryLock(c *counter) int {
	if c.mu.TryLock() {
		defer c.mu.Unlock()
		return c.n
	}
	return 0
}
