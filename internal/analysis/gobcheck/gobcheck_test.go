package gobcheck_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/gobcheck"
)

func TestFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/gobcheck",
		framework.FixtureImportPath("repro", "gobcheck"), gobcheck.Analyzer)
}

// TestBoundaryExempt verifies the analyzer's whitelist on the real tree:
// internal/wire and internal/dist's typed.go construct gob codecs by
// design and must stay silent.
func TestBoundaryExempt(t *testing.T) {
	pkgs, err := framework.Load("../../..", "./internal/wire", "./internal/dist")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Analyzer{gobcheck.Analyzer}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("boundary packages flagged: %v", diags)
	}
}
