// Package gobcheck fences the codec boundary PR 3 established: all gob
// encoding — raw encoding/gob encoder/decoder construction and the
// byte-level dist.Marshal/Unmarshal/MustMarshal helpers — lives in
// internal/dist/typed.go (the typed-adapter boundary) and internal/wire.
// Application and runtime code everywhere else works with typed values
// and lets the adapters own the bytes; a stray gob call outside the
// boundary is how payload formats drift apart between server and donor.
package gobcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the gobcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "gobcheck",
	Doc:  "no gob.NewEncoder/NewDecoder or dist.Marshal outside internal/dist/typed.go and internal/wire",
	Run:  run,
}

// distCodecFuncs are the byte-level codec helpers confined to the
// boundary along with raw gob.
var distCodecFuncs = map[string]bool{
	"Marshal": true, "Unmarshal": true, "MustMarshal": true,
}

func run(pass *framework.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/wire") {
		return nil // inside the boundary
	}
	inDist := strings.HasSuffix(pass.Pkg.Path(), "internal/dist")
	for _, file := range pass.Files {
		if inDist && filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "typed.go" {
			continue // the typed-adapter boundary file itself
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			report(pass, sel.Sel.Pos(), fn)
			return true
		})
		if inDist {
			// Within the dist package the codec helpers are called
			// unqualified; catch those references too.
			ast.Inspect(file, func(n ast.Node) bool {
				ident, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[ident].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
					return true
				}
				report(pass, ident.Pos(), fn)
				return true
			})
		}
	}
	return nil
}

// report flags one reference to a fenced codec function.
func report(pass *framework.Pass, pos token.Pos, fn *types.Func) {
	path := fn.Pkg().Path()
	switch {
	case path == "encoding/gob" && (fn.Name() == "NewEncoder" || fn.Name() == "NewDecoder"):
		pass.Reportf(pos,
			"gob.%s outside the codec boundary (internal/dist/typed.go, internal/wire); use the typed adapters or Encode/Decode",
			fn.Name())
	case strings.HasSuffix(path, "internal/dist") && distCodecFuncs[fn.Name()]:
		pass.Reportf(pos,
			"dist.%s outside the codec boundary (internal/dist/typed.go, internal/wire); use the typed adapters or Encode/Decode",
			fn.Name())
	}
}
