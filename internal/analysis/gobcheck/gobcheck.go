// Package gobcheck fences the codec boundary PR 3 established and PR 7
// extended: all gob encoding — raw encoding/gob encoder/decoder
// construction and the byte-level dist.Marshal/Unmarshal/MustMarshal
// helpers — lives in internal/dist/typed.go (the typed-adapter boundary)
// and internal/wire; and the flat control-channel codec's rpc codec
// constructors (wire.NewFlatClientCodec/NewFlatServerCodec) live in
// internal/dist/net.go and internal/wire, where the codec is negotiated
// per connection. Application and runtime code everywhere else works with
// typed values and lets the adapters own the bytes; a stray codec call
// outside the boundary is how payload formats drift apart between server
// and donor — doubly so for the flat codec, whose encoding is versioned
// only by its capability token.
package gobcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the gobcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "gobcheck",
	Doc:  "no gob.NewEncoder/NewDecoder or dist.Marshal outside internal/dist/typed.go and internal/wire; no wire.NewFlat*Codec outside internal/dist/net.go and internal/wire",
	Run:  run,
}

// distCodecFuncs are the byte-level codec helpers confined to the
// boundary along with raw gob.
var distCodecFuncs = map[string]bool{
	"Marshal": true, "Unmarshal": true, "MustMarshal": true,
}

// flatCodecFuncs are wire's flat-codec constructors — the only way to put
// the flat encoding on a connection — confined to the negotiation site.
var flatCodecFuncs = map[string]bool{
	"NewFlatClientCodec": true, "NewFlatServerCodec": true,
}

func run(pass *framework.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/wire") {
		return nil // inside the boundary
	}
	inDist := strings.HasSuffix(pass.Pkg.Path(), "internal/dist")
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		// typed.go is the gob boundary file; net.go is where the flat
		// codec is negotiated onto connections.
		gobExempt := inDist && base == "typed.go"
		flatExempt := inDist && base == "net.go"
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			report(pass, sel.Sel.Pos(), fn, gobExempt, flatExempt)
			return true
		})
		if inDist && !gobExempt {
			// Within the dist package the codec helpers are called
			// unqualified; catch those references too.
			ast.Inspect(file, func(n ast.Node) bool {
				ident, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[ident].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
					return true
				}
				report(pass, ident.Pos(), fn, gobExempt, flatExempt)
				return true
			})
		}
	}
	return nil
}

// report flags one reference to a fenced codec function.
func report(pass *framework.Pass, pos token.Pos, fn *types.Func, gobExempt, flatExempt bool) {
	path := fn.Pkg().Path()
	switch {
	case gobExempt:
	case path == "encoding/gob" && (fn.Name() == "NewEncoder" || fn.Name() == "NewDecoder"):
		pass.Reportf(pos,
			"gob.%s outside the codec boundary (internal/dist/typed.go, internal/wire); use the typed adapters or Encode/Decode",
			fn.Name())
		return
	case strings.HasSuffix(path, "internal/dist") && distCodecFuncs[fn.Name()]:
		pass.Reportf(pos,
			"dist.%s outside the codec boundary (internal/dist/typed.go, internal/wire); use the typed adapters or Encode/Decode",
			fn.Name())
		return
	}
	if !flatExempt && strings.HasSuffix(path, "internal/wire") && flatCodecFuncs[fn.Name()] {
		pass.Reportf(pos,
			"wire.%s outside the flat-codec boundary (internal/dist/net.go, internal/wire); the flat codec is negotiated per connection there",
			fn.Name())
	}
}
