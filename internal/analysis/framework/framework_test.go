package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// fake reports one diagnostic per function declaration, giving the nolint
// fixture something uniform to suppress.
var fake = &framework.Analyzer{
	Name: "fake",
	Doc:  "reports every function declaration",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestNolintSemantics(t *testing.T) {
	pkg, err := framework.LoadDir("../testdata/nolint", "repro/fixtures/nolint")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Analyzer{fake}, []*framework.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		// delta's directive has no justification: it suppresses nothing and
		// is itself reported (sorted after the finding: same line, analyzer
		// name "fake" < "nolint").
		"fake: func delta",
		"nolint: nolint:distlint directive requires a justification (//nolint:distlint/fake <why this site is exempt>)",
		// echo's directive names a different analyzer.
		"fake: func echo",
		// foxtrot has no directive at all.
		"fake: func foxtrot",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("surviving diagnostics:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestDiagnosticString pins the output format the Makefile and CI grep for.
func TestDiagnosticString(t *testing.T) {
	pkg, err := framework.LoadDir("../testdata/nolint", "repro/fixtures/nolint")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Analyzer{fake}, []*framework.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[len(diags)-1].String()
	if !strings.Contains(s, "fixture.go:") || !strings.HasSuffix(s, "(distlint/fake)") {
		t.Errorf("diagnostic format %q lost its position or analyzer tag", s)
	}
}
