package framework

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantRe parses one expectation comment: `// want "re" "re" ...`. Each
// quoted regexp must match a diagnostic reported on the comment's line.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture loads the fixture package at dir under importPath, runs the
// analyzer over it, and compares the diagnostics against the fixture's
// `// want "regexp"` comments: every want must be matched by a diagnostic
// on its line, and every diagnostic must be claimed by a want. The nolint
// filter runs too, so fixtures can assert the escape hatch itself.
func RunFixture(t *testing.T, dir, importPath string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		claimed := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
			}
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, "  "+d.String())
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}

// FixtureImportPath builds a stable module-shaped import path for a
// fixture, so path-scoped analyzer rules (module sentinels, internal/wire
// suffixes) apply to fixtures the same way they apply to the real tree.
func FixtureImportPath(module, rel string) string {
	return fmt.Sprintf("%s/fixtures/%s", module, rel)
}
