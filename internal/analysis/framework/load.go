package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir for the given patterns
// and decodes the package stream. -export makes the go tool produce (or
// reuse from the build cache) compiler export data for every listed
// package, which is what lets the type-checker resolve imports without
// network access or a populated module cache.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves import paths
// through the export-data files `go list -export` reported.
func exportImporter(fset *token.FileSet, pkgs []listedPkg) types.Importer {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// newInfo allocates the types.Info maps analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// checkPackage parses and type-checks one package's sources.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	if len(goFiles) == 0 {
		return nil, nil
	}
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load type-checks the packages matching patterns (resolved by the go
// tool relative to dir) from source, with every import — stdlib and
// module-local alike — satisfied from build-cache export data. Only the
// pattern-matched packages themselves are returned; dependencies are
// loaded as export data, not syntax. Test files are not analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, listed)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir type-checks the single package rooted at dir — a directory that
// need not be visible to `go list` (analyzer fixtures live under
// testdata/, which the go tool ignores) — under the given import path.
// The import path matters to analyzers with path-based rules (module
// sentinels, the internal/wire scope), so fixtures choose theirs freely.
// Imports are resolved via `go list -export` against the enclosing
// module, so fixtures may import both the standard library and module
// packages.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(goFiles)

	// Parse once without types to discover the fixture's imports, then list
	// export data for them (and their dependencies).
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	var listed []listedPkg
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		if listed, err = goList(dir, imports); err != nil {
			return nil, err
		}
	}
	fset = token.NewFileSet()
	return checkPackage(fset, exportImporter(fset, listed), importPath, dir, goFiles)
}
