// Package framework is a self-contained, stdlib-only harness for writing
// and driving static analyzers over this repository. It mirrors the shape
// of golang.org/x/tools/go/analysis — an Analyzer runs over a type-checked
// Pass and reports position-anchored Diagnostics — so the distlint
// analyzers could migrate to the real framework verbatim if the dependency
// ever becomes available; until then the loader in load.go type-checks
// packages from source against compiler export data obtained from
// `go list -export`, which works offline.
//
// The framework also owns the two cross-analyzer conventions:
//
//   - the //dist: annotation grammar (//dist:guardedby <field>,
//     //dist:locked <field>, //dist:allow-background) that turns invariants
//     previously living in comments into machine-checked facts, and
//   - the //nolint:distlint/<name> escape hatch, which suppresses a
//     diagnostic only when followed by a non-empty justification.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named analysis pass. Run inspects a single package via
// its Pass and reports findings with Pass.Report/Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier: the suffix of its nolint token
	// (//nolint:distlint/<Name>) and the tag on printed diagnostics.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run executes the analysis over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, comments included.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types view of the package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package directory on disk (used by analyzers that consult
	// repository files, e.g. epochcheck's protocol-doc cross-check).
	Dir string

	diags *[]Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (distlint/%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics, sorted by position: findings suppressed by a justified
// //nolint:distlint/<name> comment are dropped, and a nolint directive
// with no justification becomes a diagnostic itself (attributed to the
// pseudo-analyzer "nolint"), so the escape hatch cannot be used silently.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dir:       pkg.Dir,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("distlint/%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		diags = applyNolint(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// nolintRe matches one escape directive: the analyzer name (or "*" for
// all), then the mandatory justification text.
var nolintRe = regexp.MustCompile(`//nolint:distlint/(\*|[a-z]+)(?:[ \t]+(.*))?$`)

// nolintDirective is one parsed //nolint:distlint/<name> comment.
type nolintDirective struct {
	analyzer      string // "*" suppresses every analyzer
	line          int
	justification string
	pos           token.Position
}

// applyNolint filters pkg's diagnostics through its nolint directives. A
// directive covers findings on its own line and, when it is the only thing
// on its line, findings on the next line.
func applyNolint(diags []Diagnostic, pkg *Package) []Diagnostic {
	directives := collectNolint(pkg)
	if len(directives) == 0 {
		return diags
	}
	// file -> line -> analyzers suppressed there ("*" key suppresses all).
	suppressed := make(map[string]map[int]map[string]bool)
	mark := func(file string, line int, analyzer string) {
		if suppressed[file] == nil {
			suppressed[file] = make(map[int]map[string]bool)
		}
		if suppressed[file][line] == nil {
			suppressed[file][line] = make(map[string]bool)
		}
		suppressed[file][line][analyzer] = true
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range directives {
		if d.justification == "" {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "nolint",
				Message:  "nolint:distlint directive requires a justification (//nolint:distlint/" + d.analyzer + " <why this site is exempt>)",
			})
			continue // an unjustified directive suppresses nothing
		}
		mark(d.pos.Filename, d.line, d.analyzer)
		mark(d.pos.Filename, d.line+1, d.analyzer)
	}
	for _, d := range diags {
		byLine := suppressed[d.Pos.Filename]
		if byLine != nil {
			as := byLine[d.Pos.Line]
			if as != nil && (as[d.Analyzer] || as["*"]) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// collectNolint parses every nolint directive in the package.
func collectNolint(pkg *Package) []nolintDirective {
	var out []nolintDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, nolintDirective{
					analyzer:      m[1],
					line:          pos.Line,
					justification: strings.TrimSpace(strings.TrimLeft(m[2], "-— \t")),
					pos:           pos,
				})
			}
		}
	}
	return out
}

// Annotation grammar ---------------------------------------------------

// distDirective extracts the argument of a "//dist:<key>" directive from
// one comment, reporting ok even when the argument is empty (for marker
// directives like allow-background).
func distDirective(c *ast.Comment, key string) (arg string, ok bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	prefix := "dist:" + key
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. dist:lockedX
	}
	// Keep only the first word: prose may follow the argument.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// groupDirective scans a comment group for a //dist:<key> directive.
func groupDirective(cg *ast.CommentGroup, key string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if arg, ok := distDirective(c, key); ok {
			return arg, true
		}
	}
	return "", false
}

// FieldGuard returns the guard field named by a //dist:guardedby
// annotation in the struct field's doc or trailing line comment.
func FieldGuard(field *ast.Field) (guard string, ok bool) {
	if g, ok := groupDirective(field.Doc, "guardedby"); ok && g != "" {
		return g, true
	}
	if g, ok := groupDirective(field.Comment, "guardedby"); ok && g != "" {
		return g, true
	}
	return "", false
}

// FuncLocked returns the guard fields a function declares it is called
// with held, from //dist:locked annotations in its doc comment. A
// function may declare several guards (one directive each).
func FuncLocked(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var guards []string
	for _, c := range fd.Doc.List {
		if g, ok := distDirective(c, "locked"); ok && g != "" {
			guards = append(guards, g)
		}
	}
	return guards
}

// AllowBackground reports whether pos (a context.Background/TODO call
// site) is exempted by a //dist:allow-background annotation — either in
// the doc comment of the function declaration enclosing it, or in a
// comment on the same source line.
func AllowBackground(pass *Pass, file *ast.File, fd *ast.FuncDecl, pos token.Pos) bool {
	if fd != nil && fd.Doc != nil {
		if _, ok := groupDirective(fd.Doc, "allow-background"); ok {
			return true
		}
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if pass.Fset.Position(c.Pos()).Line != line {
				continue
			}
			if _, ok := distDirective(c, "allow-background"); ok {
				return true
			}
		}
	}
	return false
}

// EnclosingFunc returns the innermost FuncDecl containing pos in file
// (nil for package-level positions).
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// NamedStruct resolves a type to its named struct form, unwrapping
// pointers and aliases; ok is false for anything else.
func NamedStruct(t types.Type) (*types.Named, *types.Struct, bool) {
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			named, isNamed = ptr.Elem().(*types.Named)
		}
		if !isNamed {
			return nil, nil, false
		}
	}
	st, isStruct := named.Underlying().(*types.Struct)
	if !isStruct {
		return nil, nil, false
	}
	return named, st, true
}
