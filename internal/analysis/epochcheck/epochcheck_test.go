package epochcheck_test

import (
	"testing"

	"repro/internal/analysis/epochcheck"
	"repro/internal/analysis/framework"
)

func TestEnvelopeFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/epochcheck",
		framework.FixtureImportPath("repro", "epochcheck"), epochcheck.Analyzer)
}

// TestWireDocFixture exercises rule 2 against the hermetic module under
// testdata/wiredoc: the fixture's own go.mod scopes the protocol-doc
// lookup to testdata/wiredoc/docs/ARCHITECTURE.md.
func TestWireDocFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/wiredoc/internal/wire",
		"fixturemod/internal/wire", epochcheck.Analyzer)
}

// TestJournalDocFixture exercises rule 2's journal arm: exported structs
// in an internal/journal package are durable record formats and must
// appear in the same protocol doc.
func TestJournalDocFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/journaldoc/internal/journal",
		"fixturemod/internal/journal", epochcheck.Analyzer)
}
