// Package epochcheck guards the wire protocol's straggler defence and its
// documentation:
//
//  1. Every control-channel envelope struct (name ending in Args or
//     Reply) that references a work unit — a field named UnitID, or a
//     field of the dispatch Unit type — must carry an int64 Epoch field.
//     The epoch is what keeps a straggler result or failure report from a
//     forgotten-and-resubmitted problem ID out of its successor; a new
//     verb whose envelope forgets the tag silently reopens that hole.
//  2. Every exported struct declared in internal/wire must be mentioned
//     in docs/ARCHITECTURE.md, the protocol specification: the wire
//     format is versioned by prose + capability tokens, so an undocumented
//     wire struct is an undocumented protocol change. The same rule covers
//     internal/journal: its exported record structs ARE the durability
//     format a restarted coordinator must parse, so each one must appear
//     in the doc's Durability section.
package epochcheck

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the epochcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "epochcheck",
	Doc:  "unit-referencing Args/Reply structs carry an Epoch; internal/wire and internal/journal structs appear in the protocol doc",
	Run:  run,
}

// docRelPath is the protocol document checked by the internal/wire rule,
// relative to the module root (the directory holding go.mod).
const docRelPath = "docs/ARCHITECTURE.md"

func run(pass *framework.Pass) error {
	wireDoc := loadWireDoc(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkEnvelope(pass, ts, st)
				if wireDoc != nil && ts.Name.IsExported() {
					if !strings.Contains(wireDoc.text, ts.Name.Name) {
						pass.Reportf(ts.Name.Pos(),
							"exported %s struct %s is not mentioned in %s; document the %s change",
							wireDoc.noun, ts.Name.Name, docRelPath, wireDoc.change)
					}
				}
			}
		}
	}
	return nil
}

// checkEnvelope enforces rule 1 on one struct declaration.
func checkEnvelope(pass *framework.Pass, ts *ast.TypeSpec, st *ast.StructType) {
	name := ts.Name.Name
	if !strings.HasSuffix(name, "Args") && !strings.HasSuffix(name, "Reply") {
		return
	}
	referencesUnit := false
	hasEpoch := false
	for _, field := range st.Fields.List {
		for _, fname := range field.Names {
			switch fname.Name {
			case "UnitID":
				referencesUnit = true
			case "Epoch":
				if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
					if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Int64 {
						hasEpoch = true
					}
				}
			}
		}
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
			if named, _, ok := framework.NamedStruct(tv.Type); ok && named.Obj().Name() == "Unit" {
				referencesUnit = true
			}
		}
	}
	if referencesUnit && !hasEpoch {
		pass.Reportf(ts.Name.Pos(),
			"wire envelope %s references a unit but has no int64 Epoch field; stragglers from a forgotten problem incarnation would be accepted",
			name)
	}
}

// wireDocT is the protocol document's contents, loaded only when the pass
// is over a documented-format package (internal/wire or internal/journal)
// that sits in a module with the doc. noun and change parameterise the
// diagnostic: "wire … protocol change" vs "journal record … durability
// format change".
type wireDocT struct {
	text   string
	noun   string
	change string
}

// docRulePackages maps the package paths rule 2 covers to the diagnostic
// wording used when one of their exported structs is undocumented.
var docRulePackages = map[string]wireDocT{
	"internal/wire":    {noun: "wire", change: "protocol"},
	"internal/journal": {noun: "journal record", change: "durability format"},
}

// loadWireDoc finds docs/ARCHITECTURE.md by walking up from the package
// directory to the enclosing go.mod. A missing doc (a fixture tree, a
// vendored copy) disables rule 2 rather than failing the pass.
func loadWireDoc(pass *framework.Pass) *wireDocT {
	var doc wireDocT
	found := false
	for suffix, d := range docRulePackages {
		if pass.Pkg.Path() == suffix || strings.HasSuffix(pass.Pkg.Path(), "/"+suffix) {
			doc, found = d, true
			break
		}
	}
	if !found {
		return nil
	}
	dir := pass.Dir
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(docRelPath)))
			if err != nil {
				return nil
			}
			doc.text = string(data)
			return &doc
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil
		}
		dir = parent
	}
}
