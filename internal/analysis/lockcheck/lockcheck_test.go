package lockcheck_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/lockcheck"
)

func TestFixture(t *testing.T) {
	framework.RunFixture(t, "../testdata/lockcheck",
		framework.FixtureImportPath("repro", "lockcheck"), lockcheck.Analyzer)
}
