// Package lockcheck enforces the repository's lock-annotation grammar:
// a struct field annotated
//
//	//dist:guardedby mu
//
// may only be read or written inside a function that either acquires the
// named guard on a value of the same struct type (x.mu.Lock / RLock /
// TryLock / TryRLock somewhere in its body — the flow-insensitive
// approximation of "holds the lock"), or is itself annotated
//
//	//dist:locked mu
//
// declaring the invariant the runtime's "Callers hold ps.mu." comments
// used to state in prose: the caller acquired the guard (or owns the
// value exclusively, as constructors do before publishing it).
//
// Two deliberate approximations keep the check useful rather than noisy:
// composite literals initialise fields by key, not selector, so
// construction before publication never needs an annotation; and a
// function literal inherits its enclosing declaration's evidence, which
// accepts the runtime's deferred-unlock and under-lock-callback idioms at
// the cost of not modelling goroutines launched from a locked region.
package lockcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the lockcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated //dist:guardedby may only be accessed under their guard or in //dist:locked functions",
	Run:  run,
}

// guardKey identifies one guarded field by its types object.
type guardKey = *types.Var

func run(pass *framework.Pass) error {
	// Pass 1: collect //dist:guardedby annotations — field object -> guard
	// field name — and remember each annotated struct's named type.
	guards := make(map[guardKey]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard, ok := framework.FieldGuard(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}

	// Pass 2: walk every function; for each selector access of a guarded
	// field, require lock evidence in the enclosing declaration.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// checkFunc validates every guarded-field access in fd's body (function
// literals included — they inherit fd's evidence).
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, guards map[guardKey]string) {
	locked := make(map[string]bool)
	for _, g := range framework.FuncLocked(fd) {
		locked[g] = true
	}
	// acquired records (struct type, guard field name) pairs for which the
	// body contains a lock acquisition; computed lazily on first need.
	var acquired map[acqKey]bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := guards[field]
		if !guarded || locked[guard] {
			return true
		}
		owner, _, ok := framework.NamedStruct(selection.Recv())
		if !ok {
			return true
		}
		if acquired == nil {
			acquired = collectAcquisitions(pass, fd)
		}
		if acquired[acqKey{owner.Obj(), guard}] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %q but %s neither locks it nor is annotated //dist:locked %s",
			owner.Obj().Name(), field.Name(), guard, fd.Name.Name, guard)
		return true
	})
}

// acqKey is one (struct type, guard field) lock acquisition.
type acqKey struct {
	owner *types.TypeName
	guard string
}

// lockMethods are the sync.Mutex/RWMutex acquisition methods accepted as
// evidence. Unlock is deliberately absent: a deferred unlock always pairs
// with an acquisition, and unlocking alone proves nothing.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

// collectAcquisitions scans fd's body for guard.Lock()-shaped calls and
// records which (struct type, guard field) pairs they acquire.
func collectAcquisitions(pass *framework.Pass, fd *ast.FuncDecl) map[acqKey]bool {
	out := make(map[acqKey]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockMethods[method.Sel.Name] {
			return true
		}
		// The receiver must itself be a field selection: x.mu in x.mu.Lock().
		guardSel, ok := method.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[guardSel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		owner, _, ok := framework.NamedStruct(selection.Recv())
		if !ok {
			return true
		}
		out[acqKey{owner.Obj(), guardSel.Sel.Name}] = true
		return true
	})
	return out
}
