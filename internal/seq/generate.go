package seq

import (
	"fmt"
	"math/rand"
)

// Generator produces deterministic synthetic sequence data. It substitutes
// for the genomic databases (EMBL/GenBank extracts) used in the paper's
// evaluation: alignment cost depends only on sequence lengths and database
// size, so seeded synthetic data exercises the same code paths.
type Generator struct {
	rng      *rand.Rand
	alphabet *Alphabet
}

// NewGenerator creates a generator over the alphabet with a fixed seed.
func NewGenerator(a *Alphabet, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), alphabet: a}
}

// Random returns a uniformly random sequence of length n.
func (g *Generator) Random(id string, n int) *Sequence {
	res := make([]byte, n)
	k := g.alphabet.Size()
	for i := range res {
		res[i] = g.alphabet.Letter(g.rng.Intn(k))
	}
	return &Sequence{ID: id, Residues: res}
}

// RandomWithComposition returns a random sequence drawn from the given
// letter frequencies (indexed in alphabet order; they are normalised
// internally).
func (g *Generator) RandomWithComposition(id string, n int, freqs []float64) *Sequence {
	if len(freqs) != g.alphabet.Size() {
		panic(fmt.Sprintf("seq: composition has %d frequencies, alphabet %s has %d letters",
			len(freqs), g.alphabet.Name(), g.alphabet.Size()))
	}
	var total float64
	for _, f := range freqs {
		total += f
	}
	res := make([]byte, n)
	for i := range res {
		x := g.rng.Float64() * total
		acc := 0.0
		idx := len(freqs) - 1
		for j, f := range freqs {
			acc += f
			if x < acc {
				idx = j
				break
			}
		}
		res[i] = g.alphabet.Letter(idx)
	}
	return &Sequence{ID: id, Residues: res}
}

// Mutate returns a copy of s with point substitutions applied at the given
// per-site rate, plus optional short indels at indelRate per site (geometric
// length, mean 2). Used to build homolog families that a sensitive search
// should recover.
func (g *Generator) Mutate(s *Sequence, id string, subRate, indelRate float64) *Sequence {
	k := g.alphabet.Size()
	out := make([]byte, 0, s.Len()+8)
	for _, b := range s.Residues {
		r := g.rng.Float64()
		switch {
		case r < indelRate/2:
			// deletion: skip this residue (and maybe the next few)
			continue
		case r < indelRate:
			// insertion before this residue
			l := 1
			for g.rng.Float64() < 0.5 {
				l++
			}
			for j := 0; j < l; j++ {
				out = append(out, g.alphabet.Letter(g.rng.Intn(k)))
			}
			out = append(out, b)
		case r < indelRate+subRate:
			// substitution to a different letter
			idx := g.alphabet.Index(b)
			if idx < 0 {
				out = append(out, b)
				continue
			}
			n := g.rng.Intn(k - 1)
			if n >= idx {
				n++
			}
			out = append(out, g.alphabet.Letter(n))
		default:
			out = append(out, b)
		}
	}
	return &Sequence{ID: id, Desc: "mutant of " + s.ID, Residues: out}
}

// LengthModel describes the length distribution of generated database
// sequences: log-normal-ish via mean plus jitter, clamped to [Min, Max].
type LengthModel struct {
	Mean, StdDev float64
	Min, Max     int
}

// TypicalProtein mirrors the length distribution of a protein database
// (mean ~350 aa).
var TypicalProtein = LengthModel{Mean: 350, StdDev: 180, Min: 40, Max: 2000}

// TypicalDNA mirrors an EST-style nucleotide database (mean ~600 nt).
var TypicalDNA = LengthModel{Mean: 600, StdDev: 250, Min: 80, Max: 4000}

func (g *Generator) drawLength(m LengthModel) int {
	for {
		n := int(m.Mean + g.rng.NormFloat64()*m.StdDev)
		if n >= m.Min && n <= m.Max {
			return n
		}
	}
}

// RandomDatabase generates nSeqs random sequences with lengths drawn from
// the model. IDs are "<prefix>NNNN".
func (g *Generator) RandomDatabase(prefix string, nSeqs int, m LengthModel) *Database {
	db := &Database{Seqs: make([]*Sequence, 0, nSeqs)}
	for i := 0; i < nSeqs; i++ {
		db.Seqs = append(db.Seqs, g.Random(fmt.Sprintf("%s%04d", prefix, i), g.drawLength(m)))
	}
	return db
}

// HomologFamily generates a family of nMembers sequences derived from a
// common random ancestor of length n by independent mutation, suitable for
// planted-homology search tests: a sensitive search for any member should
// rank the other members highly.
func (g *Generator) HomologFamily(prefix string, nMembers, n int, subRate float64) *Database {
	ancestor := g.Random(prefix+"_anc", n)
	db := &Database{}
	for i := 0; i < nMembers; i++ {
		m := g.Mutate(ancestor, fmt.Sprintf("%s_m%02d", prefix, i), subRate, subRate/10)
		db.Seqs = append(db.Seqs, m)
	}
	return db
}

// SearchWorkload bundles a synthetic database with planted homolog families
// and the query set that should recover them.
type SearchWorkload struct {
	DB      *Database
	Queries *Database
	// Planted maps query ID -> IDs of database sequences derived from the
	// same ancestor (the "true positives" a sensitive search must find).
	Planted map[string][]string
}

// NewSearchWorkload builds a database of nBackground random sequences plus
// nFamilies planted homolog families of familySize members each; one mutant
// per family becomes a query. All randomness derives from the generator's
// seed, so workloads are reproducible.
func (g *Generator) NewSearchWorkload(nBackground, nFamilies, familySize int, m LengthModel) *SearchWorkload {
	w := &SearchWorkload{
		DB:      g.RandomDatabase("bg", nBackground, m),
		Queries: &Database{},
		Planted: make(map[string][]string),
	}
	for f := 0; f < nFamilies; f++ {
		n := g.drawLength(m)
		fam := g.HomologFamily(fmt.Sprintf("fam%02d", f), familySize+1, n, 0.10)
		// Last member becomes the query; the rest join the database.
		query := fam.Seqs[familySize]
		query.ID = fmt.Sprintf("query%02d", f)
		members := make([]string, 0, familySize)
		for _, s := range fam.Seqs[:familySize] {
			w.DB.Seqs = append(w.DB.Seqs, s)
			members = append(members, s.ID)
		}
		w.Queries.Seqs = append(w.Queries.Seqs, query)
		w.Planted[query.ID] = members
	}
	// Shuffle the database so planted members are not clustered, which
	// would make partition-boundary bugs invisible.
	g.rng.Shuffle(len(w.DB.Seqs), func(i, j int) {
		w.DB.Seqs[i], w.DB.Seqs[j] = w.DB.Seqs[j], w.DB.Seqs[i]
	})
	return w
}
