package seq

import "fmt"

// SiteStats summarises an alignment's columns — the standard dataset
// report printed before a phylogenetic analysis.
type SiteStats struct {
	// Sites is the column count; Constant counts columns where every
	// unambiguous residue agrees; Variable = Sites - Constant - AllGap.
	Sites    int
	Constant int
	Variable int
	// ParsimonyInformative counts columns with at least two residues each
	// occurring in at least two taxa — the columns that can discriminate
	// topologies under parsimony (and carry most of the ML signal).
	ParsimonyInformative int
	// GapFraction is the fraction of cells that are gaps or ambiguity
	// characters; AllGap counts columns that are entirely gap/ambiguous.
	GapFraction float64
	AllGap      int
}

// isResidueByte reports whether b is an unambiguous residue (not a gap,
// not an ambiguity code) for site-statistics purposes.
func isResidueByte(b byte) bool {
	switch b {
	case '-', '.', '?', 'N', 'n', 'X', 'x', '*':
		return false
	}
	return true
}

// ComputeSiteStats scans the alignment once and fills a SiteStats.
func ComputeSiteStats(a *Alignment) (*SiteStats, error) {
	if a == nil || a.NTaxa() == 0 || a.NSites() == 0 {
		return nil, fmt.Errorf("seq: empty alignment")
	}
	st := &SiteStats{Sites: a.NSites()}
	var gapCells int64
	for s := 0; s < a.NSites(); s++ {
		var counts [256]int
		residues := 0
		for _, row := range a.Rows {
			b := row.Residues[s]
			if b >= 'a' && b <= 'z' {
				b = b - 'a' + 'A'
			}
			if !isResidueByte(b) {
				gapCells++
				continue
			}
			counts[b]++
			residues++
		}
		if residues == 0 {
			st.AllGap++
			continue
		}
		distinct, pairs := 0, 0
		for _, c := range counts {
			if c > 0 {
				distinct++
			}
			if c >= 2 {
				pairs++
			}
		}
		if distinct <= 1 {
			st.Constant++
		} else {
			st.Variable++
			if pairs >= 2 {
				st.ParsimonyInformative++
			}
		}
	}
	st.GapFraction = float64(gapCells) / float64(int64(a.NTaxa())*int64(a.NSites()))
	return st, nil
}

// String renders the stats as a one-line dataset summary.
func (st *SiteStats) String() string {
	return fmt.Sprintf("%d sites: %d constant, %d variable (%d parsimony-informative), %.1f%% gaps/ambiguous",
		st.Sites, st.Constant, st.Variable, st.ParsimonyInformative, 100*st.GapFraction)
}
