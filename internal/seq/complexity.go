package seq

import (
	"fmt"
	"math"
)

// Low-complexity masking (SEG/DUST-style). Compositionally biased regions
// — homopolymer runs, short repeats — produce spuriously high alignment
// scores between unrelated sequences; database search tools mask them
// before scoring. The filter here is the windowed-entropy form: a window
// whose Shannon entropy falls below a threshold is masked (residues
// replaced by the alphabet's ambiguity character, which scoring matrices
// treat neutrally-to-negatively).

// MaskChar is the residue written into masked positions.
const MaskChar = 'X'

// WindowEntropy returns the Shannon entropy (bits) of the residue
// composition of w. Case-insensitive; an empty window has zero entropy.
func WindowEntropy(w []byte) float64 {
	if len(w) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range w {
		if b >= 'a' && b <= 'z' {
			b = b - 'a' + 'A'
		}
		counts[b]++
	}
	n := float64(len(w))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// LowComplexityRegions returns the merged [from, to) intervals covered by
// any length-window sliding window whose entropy is below threshold.
func LowComplexityRegions(residues []byte, window int, threshold float64) ([][2]int, error) {
	if window < 2 {
		return nil, fmt.Errorf("seq: complexity window must be >= 2, got %d", window)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("seq: complexity threshold must be positive, got %g", threshold)
	}
	if len(residues) < window {
		return nil, nil
	}
	var out [][2]int
	for i := 0; i+window <= len(residues); i++ {
		if WindowEntropy(residues[i:i+window]) >= threshold {
			continue
		}
		from, to := i, i+window
		if n := len(out); n > 0 && out[n-1][1] >= from {
			out[n-1][1] = to // merge overlapping/adjacent windows
		} else {
			out = append(out, [2]int{from, to})
		}
	}
	return out, nil
}

// MaskLowComplexity returns a copy of the sequence with low-complexity
// regions replaced by MaskChar. The input is not modified.
func MaskLowComplexity(s *Sequence, window int, threshold float64) (*Sequence, error) {
	regions, err := LowComplexityRegions(s.Residues, window, threshold)
	if err != nil {
		return nil, err
	}
	masked := append([]byte(nil), s.Residues...)
	for _, r := range regions {
		for i := r[0]; i < r[1]; i++ {
			masked[i] = MaskChar
		}
	}
	return &Sequence{ID: s.ID, Desc: s.Desc, Residues: masked}, nil
}

// MaskDatabase applies MaskLowComplexity to every sequence, returning a
// new database. MaskedFraction helps callers report how aggressive the
// filter was.
func MaskDatabase(db *Database, window int, threshold float64) (*Database, float64, error) {
	out := &Database{Seqs: make([]*Sequence, len(db.Seqs))}
	var masked, total int64
	for i, s := range db.Seqs {
		m, err := MaskLowComplexity(s, window, threshold)
		if err != nil {
			return nil, 0, fmt.Errorf("seq: masking %s: %w", s.ID, err)
		}
		out.Seqs[i] = m
		for j := range m.Residues {
			if m.Residues[j] == MaskChar && s.Residues[j] != MaskChar {
				masked++
			}
		}
		total += int64(s.Len())
	}
	frac := 0.0
	if total > 0 {
		frac = float64(masked) / float64(total)
	}
	return out, frac, nil
}
