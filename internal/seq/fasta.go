package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadFASTA parses all records from r. Header lines begin with '>' (the
// legacy ';' comment form is skipped). Sequence data may span any number of
// lines; interior whitespace is dropped.
func ReadFASTA(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	db := &Database{}
	var cur *Sequence
	var body bytes.Buffer
	flush := func() {
		if cur != nil {
			cur.Residues = append([]byte(nil), body.Bytes()...)
			db.Seqs = append(db.Seqs, cur)
			body.Reset()
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			continue
		case strings.HasPrefix(line, ">"):
			flush()
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("seq: empty FASTA header at line %d", lineNo)
			}
			id, desc, _ := strings.Cut(header, " ")
			cur = &Sequence{ID: id, Desc: strings.TrimSpace(desc)}
		default:
			if cur == nil {
				return nil, fmt.Errorf("seq: sequence data before any FASTA header at line %d", lineNo)
			}
			for i := 0; i < len(line); i++ {
				if line[i] != ' ' && line[i] != '\t' {
					body.WriteByte(line[i])
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	flush()
	if len(db.Seqs) == 0 {
		return nil, fmt.Errorf("seq: no FASTA records found")
	}
	return db, nil
}

// ReadFASTAFile opens and parses a FASTA file.
func ReadFASTAFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFASTA(f)
}

// ParseFASTA parses FASTA-formatted text held in memory.
func ParseFASTA(text string) (*Database, error) {
	return ReadFASTA(strings.NewReader(text))
}

// WriteFASTA writes the database in FASTA format, wrapping residue lines at
// width columns (width <= 0 means no wrapping).
func WriteFASTA(w io.Writer, db *Database, width int) error {
	bw := bufio.NewWriter(w)
	for _, s := range db.Seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Header()); err != nil {
			return err
		}
		res := s.Residues
		if width <= 0 {
			width = len(res)
		}
		for off := 0; off < len(res); off += width {
			end := off + width
			if end > len(res) {
				end = len(res)
			}
			if _, err := bw.Write(res[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		if len(res) == 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes the database to a file at the conventional 70-column
// wrap.
func WriteFASTAFile(path string, db *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, db, 70); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadAlignmentFASTA parses a FASTA file whose records form a multiple
// sequence alignment (all equal length).
func ReadAlignmentFASTA(r io.Reader) (*Alignment, error) {
	db, err := ReadFASTA(r)
	if err != nil {
		return nil, err
	}
	return NewAlignment(db.Seqs)
}

// ReadPhylip parses a relaxed sequential PHYLIP alignment: a header line
// "ntaxa nsites" followed by one "name residues" line per taxon (residues
// may continue on following lines until nsites residues are read).
func ReadPhylip(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("seq: empty PHYLIP input")
	}
	var ntaxa, nsites int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "%d %d", &ntaxa, &nsites); err != nil {
		return nil, fmt.Errorf("seq: bad PHYLIP header %q: %w", sc.Text(), err)
	}
	rows := make([]*Sequence, 0, ntaxa)
	var cur *Sequence
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if cur == nil || cur.Len() >= nsites {
			if cur != nil && cur.Len() != nsites {
				return nil, fmt.Errorf("seq: taxon %q has %d sites, want %d", cur.ID, cur.Len(), nsites)
			}
			fields := strings.Fields(line)
			if len(fields) < 1 {
				continue
			}
			cur = &Sequence{ID: fields[0]}
			for _, f := range fields[1:] {
				cur.Residues = append(cur.Residues, f...)
			}
			rows = append(rows, cur)
		} else {
			for _, f := range strings.Fields(line) {
				cur.Residues = append(cur.Residues, f...)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) != ntaxa {
		return nil, fmt.Errorf("seq: PHYLIP header promised %d taxa, found %d", ntaxa, len(rows))
	}
	for _, r := range rows {
		if r.Len() != nsites {
			return nil, fmt.Errorf("seq: taxon %q has %d sites, want %d", r.ID, r.Len(), nsites)
		}
	}
	return NewAlignment(rows)
}

// WritePhylip writes the alignment in sequential PHYLIP format.
func WritePhylip(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", a.NTaxa(), a.NSites()); err != nil {
		return err
	}
	for _, row := range a.Rows {
		if _, err := fmt.Fprintf(bw, "%-12s %s\n", row.ID, row.Residues); err != nil {
			return err
		}
	}
	return bw.Flush()
}
