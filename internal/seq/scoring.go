package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Matrix is a residue substitution scoring matrix over an alphabet. Lookups
// are case-insensitive; residues outside the canonical alphabet (ambiguity
// codes, gaps) score Unknown.
type Matrix struct {
	Name     string
	Alphabet *Alphabet
	// Unknown is the score used when either residue is not canonical.
	Unknown int
	scores  [][]int
	// lut is a flat 256x256 lookup for the hot path.
	lut []int16
}

// NewMatrix builds a scoring matrix from a square score table indexed by the
// alphabet's canonical letter order.
func NewMatrix(name string, a *Alphabet, scores [][]int, unknown int) *Matrix {
	n := a.Size()
	if len(scores) != n {
		panic(fmt.Sprintf("seq: matrix %s has %d rows, alphabet %s has %d letters", name, len(scores), a.Name(), n))
	}
	for i, row := range scores {
		if len(row) != n {
			panic(fmt.Sprintf("seq: matrix %s row %d has %d cols, want %d", name, i, len(row), n))
		}
	}
	m := &Matrix{Name: name, Alphabet: a, Unknown: unknown, scores: scores}
	m.buildLUT()
	return m
}

func (m *Matrix) buildLUT() {
	m.lut = make([]int16, 256*256)
	for i := range m.lut {
		m.lut[i] = int16(m.Unknown)
	}
	a := m.Alphabet
	for x := 0; x < 256; x++ {
		ix := a.Index(byte(x))
		if ix < 0 {
			continue
		}
		for y := 0; y < 256; y++ {
			iy := a.Index(byte(y))
			if iy < 0 {
				continue
			}
			m.lut[x<<8|y] = int16(m.scores[ix][iy])
		}
	}
}

// Score returns the substitution score for the residue pair (x, y).
func (m *Matrix) Score(x, y byte) int { return int(m.lut[int(x)<<8|int(y)]) }

// Row returns the 256-entry score row for residue x: Row(x)[y] equals
// Score(x, y) for every y. Aligner inner loops hoist the row lookup so the
// per-cell score is a single fixed-length-slice index whose bounds check
// the compiler can drop.
func (m *Matrix) Row(x byte) []int16 { return m.lut[int(x)<<8 : int(x)<<8+256 : int(x)<<8+256] }

// Max returns the largest score in the matrix (usually the best self-match),
// used for normalised-score statistics.
func (m *Matrix) Max() int {
	best := m.scores[0][0]
	for _, row := range m.scores {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// MatchMismatch builds a simple nucleotide scoring matrix with the given
// match and mismatch scores.
func MatchMismatch(name string, a *Alphabet, match, mismatch int) *Matrix {
	n := a.Size()
	scores := make([][]int, n)
	for i := range scores {
		scores[i] = make([]int, n)
		for j := range scores[i] {
			if i == j {
				scores[i][j] = match
			} else {
				scores[i][j] = mismatch
			}
		}
	}
	return NewMatrix(name, a, scores, mismatch)
}

// DNASimple is the default +5/−4 nucleotide scheme (BLAST's defaults).
var DNASimple = MatchMismatch("dna+5/-4", DNA, 5, -4)

// DNAUnit scores +1 match / −1 mismatch — the textbook scheme.
var DNAUnit = MatchMismatch("dna+1/-1", DNA, 1, -1)

// blosum62Text is the standard NCBI BLOSUM62 matrix, in the usual
// whitespace-separated layout (rows/cols in the order given on the first
// line). The B, Z, X and * columns are parsed and folded into Unknown
// handling by restricting to the Protein alphabet order at load time.
const blosum62Text = `
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -2
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -2  4
`

// pam250Text is the classic Dayhoff PAM250 matrix.
const pam250Text = `
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V
A  2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0
R -2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2
N  0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2
D  0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2
C -2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2
Q  0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2
E  0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2
G  1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1
H -1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2
I -1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4
L -2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2
K -1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2
M -1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2
F -3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1
P  1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1
S  1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1
T  1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0
W -6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6
Y -3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2
V  0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4
`

// ParseMatrix reads a whitespace-separated scoring matrix (NCBI layout: a
// header row of letters, then one labelled row per letter). Letters present
// in the file but absent from the alphabet are ignored, so the B/Z/X/*
// columns of distribution files are tolerated.
func ParseMatrix(name string, a *Alphabet, r io.Reader, unknown int) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	var header []string
	n := a.Size()
	scores := make([][]int, n)
	for i := range scores {
		scores[i] = make([]int, n)
	}
	seen := make(map[int]bool)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			header = fields
			continue
		}
		rowLetter := fields[0]
		if len(rowLetter) != 1 {
			return nil, fmt.Errorf("seq: bad matrix row label %q", rowLetter)
		}
		ri := a.Index(rowLetter[0])
		if ri < 0 {
			continue // row for a letter outside the alphabet (B, Z, X, *)
		}
		if len(fields)-1 != len(header) {
			return nil, fmt.Errorf("seq: matrix row %s has %d scores, header has %d letters", rowLetter, len(fields)-1, len(header))
		}
		for k, h := range header {
			if len(h) != 1 {
				return nil, fmt.Errorf("seq: bad matrix header token %q", h)
			}
			ci := a.Index(h[0])
			if ci < 0 {
				continue
			}
			var v int
			if _, err := fmt.Sscanf(fields[k+1], "%d", &v); err != nil {
				return nil, fmt.Errorf("seq: bad score %q in row %s: %w", fields[k+1], rowLetter, err)
			}
			scores[ri][ci] = v
		}
		seen[ri] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(seen) != n {
		return nil, fmt.Errorf("seq: matrix %s covers %d of %d alphabet letters", name, len(seen), n)
	}
	return NewMatrix(name, a, scores, unknown), nil
}

func mustParse(name string, a *Alphabet, text string, unknown int) *Matrix {
	m, err := ParseMatrix(name, a, strings.NewReader(text), unknown)
	if err != nil {
		panic("seq: built-in matrix " + name + ": " + err.Error())
	}
	return m
}

// BLOSUM62 is the standard protein scoring matrix.
var BLOSUM62 = mustParse("BLOSUM62", Protein, blosum62Text, -4)

// PAM250 is the classic Dayhoff protein scoring matrix.
var PAM250 = mustParse("PAM250", Protein, pam250Text, -8)

// MatrixByName resolves a built-in matrix by its conventional name.
func MatrixByName(name string) (*Matrix, error) {
	switch strings.ToUpper(name) {
	case "BLOSUM62":
		return BLOSUM62, nil
	case "PAM250":
		return PAM250, nil
	case "DNA", "DNA+5/-4":
		return DNASimple, nil
	case "DNA+1/-1", "UNIT":
		return DNAUnit, nil
	default:
		return nil, fmt.Errorf("seq: unknown scoring matrix %q (have BLOSUM62, PAM250, DNA, UNIT)", name)
	}
}
