package seq

import (
	"fmt"
	"strings"
)

// Sequence is a named biological sequence. Residues are stored as raw bytes
// in the case they were read in; alignment and scoring code upper-cases on
// the fly via scoring matrices, so no normalisation pass is required.
type Sequence struct {
	// ID is the first whitespace-delimited token of the FASTA header.
	ID string
	// Desc is the remainder of the FASTA header (may be empty).
	Desc string
	// Residues holds the sequence data.
	Residues []byte
}

// NewSequence builds a sequence from an id and residue string.
func NewSequence(id, residues string) *Sequence {
	return &Sequence{ID: id, Residues: []byte(residues)}
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// String renders the sequence as a single-line FASTA-like summary, suitable
// for debugging; use Writer for real FASTA output.
func (s *Sequence) String() string {
	r := string(s.Residues)
	if len(r) > 60 {
		r = r[:57] + "..."
	}
	return fmt.Sprintf(">%s %s [%d aa/nt] %s", s.ID, s.Desc, s.Len(), r)
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	r := make([]byte, len(s.Residues))
	copy(r, s.Residues)
	return &Sequence{ID: s.ID, Desc: s.Desc, Residues: r}
}

// Subsequence returns a deep copy of residues [from, to). It panics if the
// bounds are out of range, mirroring slice semantics.
func (s *Sequence) Subsequence(from, to int) *Sequence {
	r := make([]byte, to-from)
	copy(r, s.Residues[from:to])
	return &Sequence{
		ID:       fmt.Sprintf("%s/%d-%d", s.ID, from+1, to),
		Desc:     s.Desc,
		Residues: r,
	}
}

// Header reconstructs the FASTA header line content (without '>').
func (s *Sequence) Header() string {
	if s.Desc == "" {
		return s.ID
	}
	return s.ID + " " + s.Desc
}

// GC returns the GC fraction of a nucleotide sequence, ignoring gaps.
// It returns 0 for an empty sequence.
func (s *Sequence) GC() float64 {
	if len(s.Residues) == 0 {
		return 0
	}
	gc, n := 0, 0
	for _, b := range s.Residues {
		switch toUpper(b) {
		case 'G', 'C':
			gc++
			n++
		case 'A', 'T', 'U':
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(gc) / float64(n)
}

// Database is an ordered collection of sequences — the in-memory form of a
// FASTA database file.
type Database struct {
	Seqs []*Sequence
}

// NewDatabase wraps a slice of sequences.
func NewDatabase(seqs ...*Sequence) *Database { return &Database{Seqs: seqs} }

// Len returns the number of sequences.
func (d *Database) Len() int { return len(d.Seqs) }

// TotalResidues returns the summed length of all sequences, the natural
// cost unit for partitioning a search across donors.
func (d *Database) TotalResidues() int64 {
	var n int64
	for _, s := range d.Seqs {
		n += int64(s.Len())
	}
	return n
}

// Slice returns a view (no deep copy) of sequences [from, to).
func (d *Database) Slice(from, to int) *Database {
	return &Database{Seqs: d.Seqs[from:to]}
}

// ByID returns the first sequence with the given ID, or nil.
func (d *Database) ByID(id string) *Sequence {
	for _, s := range d.Seqs {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// PartitionByResidues splits the database into chunks whose residue counts
// are each at most maxResidues (a sequence longer than maxResidues forms a
// singleton chunk). Order is preserved. maxResidues must be positive.
func (d *Database) PartitionByResidues(maxResidues int64) []*Database {
	if maxResidues <= 0 {
		panic("seq: PartitionByResidues requires a positive budget")
	}
	var out []*Database
	start := 0
	var acc int64
	for i, s := range d.Seqs {
		l := int64(s.Len())
		if acc > 0 && acc+l > maxResidues {
			out = append(out, d.Slice(start, i))
			start, acc = i, 0
		}
		acc += l
	}
	if start < len(d.Seqs) {
		out = append(out, d.Slice(start, len(d.Seqs)))
	}
	return out
}

// Concat appends all sequences of other to d.
func (d *Database) Concat(other *Database) {
	d.Seqs = append(d.Seqs, other.Seqs...)
}

// Alignment is a set of equal-length rows over a common alphabet — the
// input form for phylogenetic inference. Column i of row j is
// Rows[j].Residues[i].
type Alignment struct {
	Rows []*Sequence
}

// NewAlignment validates that all rows have equal length and wraps them.
func NewAlignment(rows []*Sequence) (*Alignment, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("seq: alignment needs at least one row")
	}
	n := rows[0].Len()
	for _, r := range rows[1:] {
		if r.Len() != n {
			return nil, fmt.Errorf("seq: alignment rows differ in length: %q has %d sites, %q has %d",
				rows[0].ID, n, r.ID, r.Len())
		}
	}
	return &Alignment{Rows: rows}, nil
}

// NTaxa returns the number of rows.
func (a *Alignment) NTaxa() int { return len(a.Rows) }

// NSites returns the number of columns.
func (a *Alignment) NSites() int {
	if len(a.Rows) == 0 {
		return 0
	}
	return a.Rows[0].Len()
}

// Taxa returns the row IDs in order.
func (a *Alignment) Taxa() []string {
	out := make([]string, len(a.Rows))
	for i, r := range a.Rows {
		out[i] = r.ID
	}
	return out
}

// Row returns the row with the given taxon name, or nil.
func (a *Alignment) Row(taxon string) *Sequence {
	for _, r := range a.Rows {
		if r.ID == taxon {
			return r
		}
	}
	return nil
}

// Subset returns a new alignment containing only the named taxa, in the
// given order. It errors if a taxon is missing.
func (a *Alignment) Subset(taxa []string) (*Alignment, error) {
	rows := make([]*Sequence, 0, len(taxa))
	for _, t := range taxa {
		r := a.Row(t)
		if r == nil {
			return nil, fmt.Errorf("seq: taxon %q not in alignment", t)
		}
		rows = append(rows, r)
	}
	return NewAlignment(rows)
}

// Column returns column i as a string of residues, one per row.
func (a *Alignment) Column(i int) string {
	var b strings.Builder
	b.Grow(len(a.Rows))
	for _, r := range a.Rows {
		b.WriteByte(r.Residues[i])
	}
	return b.String()
}
