package seq

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetIndexRoundTrip(t *testing.T) {
	for _, a := range []*Alphabet{DNA, RNA, Protein} {
		for i := 0; i < a.Size(); i++ {
			b := a.Letter(i)
			if got := a.Index(b); got != i {
				t.Errorf("%s: Index(Letter(%d)) = %d", a.Name(), i, got)
			}
			lower := b + 'a' - 'A'
			if got := a.Index(lower); got != i {
				t.Errorf("%s: lowercase Index(%q) = %d, want %d", a.Name(), lower, got, i)
			}
		}
	}
}

func TestAlphabetValidate(t *testing.T) {
	if err := DNA.Validate([]byte("ACGTacgtNRY-")); err != nil {
		t.Errorf("valid DNA rejected: %v", err)
	}
	if err := DNA.Validate([]byte("ACGJ")); err == nil {
		t.Error("J accepted as DNA")
	}
	if err := Protein.Validate([]byte("ACDEFGHIKLMNPQRSTVWYXBZ*")); err != nil {
		t.Errorf("valid protein rejected: %v", err)
	}
	if !DNA.IsGap('-') || !DNA.IsGap('.') {
		t.Error("gap characters not recognised")
	}
	if DNA.IsGap('A') {
		t.Error("A treated as gap")
	}
	if !DNA.IsAmbiguity('N') || !DNA.IsAmbiguity('n') {
		t.Error("N not recognised as ambiguity code")
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ACGT", "ACGT"},
		{"AAAA", "TTTT"},
		{"GATTACA", "TGTAATC"},
		{"acgt", "acgt"},
		{"ACGTN", "NACGT"},
	}
	for _, c := range cases {
		if got := string(ReverseComplement([]byte(c.in))); got != c.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(n uint8) bool {
		g := NewGenerator(DNA, int64(n))
		s := g.Random("x", int(n)+1)
		rc := ReverseComplement(ReverseComplement(s.Residues))
		return bytes.Equal(rc, s.Residues)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequenceBasics(t *testing.T) {
	s := NewSequence("s1", "ACGTACGT")
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
	sub := s.Subsequence(2, 6)
	if string(sub.Residues) != "GTAC" {
		t.Errorf("Subsequence = %q", sub.Residues)
	}
	sub.Residues[0] = 'X'
	if string(s.Residues) != "ACGTACGT" {
		t.Error("Subsequence aliases parent storage")
	}
	c := s.Clone()
	c.Residues[0] = 'X'
	if s.Residues[0] != 'A' {
		t.Error("Clone aliases parent storage")
	}
	if gc := NewSequence("g", "GGCC").GC(); gc != 1.0 {
		t.Errorf("GC(GGCC) = %v", gc)
	}
	if gc := NewSequence("g", "AATT").GC(); gc != 0.0 {
		t.Errorf("GC(AATT) = %v", gc)
	}
	if gc := NewSequence("g", "").GC(); gc != 0.0 {
		t.Errorf("GC(empty) = %v", gc)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	in := ">s1 first sequence\nACGTACGTACGT\n>s2\nTTTT\nGGGG\n\n>s3 desc with  spaces\nA C G T\n"
	db, err := ParseFASTA(in)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("got %d records", db.Len())
	}
	if db.Seqs[0].ID != "s1" || db.Seqs[0].Desc != "first sequence" {
		t.Errorf("record 0 header parsed as %q / %q", db.Seqs[0].ID, db.Seqs[0].Desc)
	}
	if string(db.Seqs[1].Residues) != "TTTTGGGG" {
		t.Errorf("multi-line body = %q", db.Seqs[1].Residues)
	}
	if string(db.Seqs[2].Residues) != "ACGT" {
		t.Errorf("interior whitespace not stripped: %q", db.Seqs[2].Residues)
	}

	var buf bytes.Buffer
	if err := WriteFASTA(&buf, db, 5); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("round trip lost records: %d -> %d", db.Len(), db2.Len())
	}
	for i := range db.Seqs {
		if db.Seqs[i].ID != db2.Seqs[i].ID || !bytes.Equal(db.Seqs[i].Residues, db2.Seqs[i].Residues) {
			t.Errorf("record %d changed in round trip", i)
		}
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ParseFASTA("ACGT\n"); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ParseFASTA(">\nACGT\n"); err == nil {
		t.Error("empty header accepted")
	}
	if _, err := ParseFASTA(""); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFASTAComments(t *testing.T) {
	db, err := ParseFASTA("; legacy comment\n>s1\nACGT\n")
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 || string(db.Seqs[0].Residues) != "ACGT" {
		t.Errorf("comment handling broke parsing: %+v", db.Seqs)
	}
}

func TestPhylipRoundTrip(t *testing.T) {
	rows := []*Sequence{
		NewSequence("taxonA", "ACGTACGTAC"),
		NewSequence("taxonB", "ACGTACGTAG"),
		NewSequence("taxonC", "ACGAACGTAC"),
	}
	a, err := NewAlignment(rows)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePhylip(&buf, a); err != nil {
		t.Fatal(err)
	}
	a2, err := ReadPhylip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a2.NTaxa() != 3 || a2.NSites() != 10 {
		t.Fatalf("round trip gave %d taxa x %d sites", a2.NTaxa(), a2.NSites())
	}
	for i := range rows {
		if a2.Rows[i].ID != rows[i].ID || !bytes.Equal(a2.Rows[i].Residues, rows[i].Residues) {
			t.Errorf("row %d changed", i)
		}
	}
}

func TestPhylipErrors(t *testing.T) {
	if _, err := ReadPhylip(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadPhylip(strings.NewReader("2 4\nA ACGT\n")); err == nil {
		t.Error("missing taxon accepted")
	}
	if _, err := ReadPhylip(strings.NewReader("1 4\nA ACG\n")); err == nil {
		t.Error("short row accepted")
	}
}

func TestAlignmentValidation(t *testing.T) {
	_, err := NewAlignment([]*Sequence{NewSequence("a", "ACGT"), NewSequence("b", "ACG")})
	if err == nil {
		t.Error("ragged alignment accepted")
	}
	_, err = NewAlignment(nil)
	if err == nil {
		t.Error("empty alignment accepted")
	}
	a, err := NewAlignment([]*Sequence{NewSequence("a", "ACGT"), NewSequence("b", "TGCA")})
	if err != nil {
		t.Fatal(err)
	}
	if a.Column(0) != "AT" {
		t.Errorf("Column(0) = %q", a.Column(0))
	}
	sub, err := a.Subset([]string{"b"})
	if err != nil || sub.NTaxa() != 1 || sub.Rows[0].ID != "b" {
		t.Errorf("Subset failed: %v %+v", err, sub)
	}
	if _, err := a.Subset([]string{"zz"}); err == nil {
		t.Error("Subset with missing taxon accepted")
	}
}

func TestMatrixSymmetryAndValues(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62, PAM250} {
		letters := m.Alphabet.Letters()
		for i := 0; i < len(letters); i++ {
			for j := 0; j < len(letters); j++ {
				if m.Score(letters[i], letters[j]) != m.Score(letters[j], letters[i]) {
					t.Errorf("%s not symmetric at %c,%c", m.Name, letters[i], letters[j])
				}
			}
		}
	}
	// Spot values from the canonical BLOSUM62 table.
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'A', 'R', -1}, {'C', 'C', 9},
		{'E', 'D', 2}, {'I', 'V', 3}, {'w', 'w', 11}, {'a', 'R', -1},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(c.a, c.b); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := PAM250.Score('W', 'W'); got != 17 {
		t.Errorf("PAM250(W,W) = %d, want 17", got)
	}
	if got := BLOSUM62.Score('A', '-'); got != BLOSUM62.Unknown {
		t.Errorf("gap score = %d, want Unknown %d", got, BLOSUM62.Unknown)
	}
	if BLOSUM62.Max() != 11 {
		t.Errorf("BLOSUM62.Max() = %d, want 11", BLOSUM62.Max())
	}
}

func TestMatchMismatch(t *testing.T) {
	m := DNASimple
	if m.Score('A', 'A') != 5 || m.Score('A', 'C') != -4 {
		t.Errorf("DNASimple scores wrong: %d %d", m.Score('A', 'A'), m.Score('A', 'C'))
	}
	if m.Score('a', 't') != -4 || m.Score('g', 'g') != 5 {
		t.Error("case-insensitive lookup broken")
	}
}

func TestMatrixByName(t *testing.T) {
	for _, name := range []string{"BLOSUM62", "blosum62", "PAM250", "DNA", "UNIT"} {
		if _, err := MatrixByName(name); err != nil {
			t.Errorf("MatrixByName(%q): %v", name, err)
		}
	}
	if _, err := MatrixByName("nope"); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(Protein, 42).RandomDatabase("p", 10, TypicalProtein)
	b := NewGenerator(Protein, 42).RandomDatabase("p", 10, TypicalProtein)
	if a.Len() != b.Len() {
		t.Fatal("different sizes from same seed")
	}
	for i := range a.Seqs {
		if !bytes.Equal(a.Seqs[i].Residues, b.Seqs[i].Residues) {
			t.Fatalf("sequence %d differs between same-seed runs", i)
		}
	}
	c := NewGenerator(Protein, 43).RandomDatabase("p", 10, TypicalProtein)
	same := true
	for i := range a.Seqs {
		if !bytes.Equal(a.Seqs[i].Residues, c.Seqs[i].Residues) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestGeneratorLengths(t *testing.T) {
	g := NewGenerator(DNA, 7)
	db := g.RandomDatabase("d", 200, TypicalDNA)
	for _, s := range db.Seqs {
		if s.Len() < TypicalDNA.Min || s.Len() > TypicalDNA.Max {
			t.Errorf("sequence %s length %d outside [%d,%d]", s.ID, s.Len(), TypicalDNA.Min, TypicalDNA.Max)
		}
		if err := DNA.Validate(s.Residues); err != nil {
			t.Errorf("generated invalid residues: %v", err)
		}
	}
}

func TestMutateRates(t *testing.T) {
	g := NewGenerator(DNA, 99)
	orig := g.Random("o", 10000)
	mut := g.Mutate(orig, "m", 0.1, 0)
	if mut.Len() != orig.Len() {
		t.Fatalf("pure substitution changed length: %d -> %d", orig.Len(), mut.Len())
	}
	diff := 0
	for i := range orig.Residues {
		if orig.Residues[i] != mut.Residues[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(orig.Len())
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("substitution fraction %.3f far from requested 0.10", frac)
	}
}

func TestPartitionByResidues(t *testing.T) {
	g := NewGenerator(DNA, 1)
	db := g.RandomDatabase("d", 50, LengthModel{Mean: 100, StdDev: 20, Min: 50, Max: 200})
	parts := db.PartitionByResidues(500)
	total := 0
	for _, p := range parts {
		if p.Len() == 0 {
			t.Error("empty partition")
		}
		if p.TotalResidues() > 500 && p.Len() > 1 {
			t.Errorf("partition of %d sequences has %d residues > budget", p.Len(), p.TotalResidues())
		}
		total += p.Len()
	}
	if total != db.Len() {
		t.Errorf("partitions cover %d of %d sequences", total, db.Len())
	}
	// Order must be preserved.
	i := 0
	for _, p := range parts {
		for _, s := range p.Seqs {
			if s != db.Seqs[i] {
				t.Fatalf("partition order broken at %d", i)
			}
			i++
		}
	}
}

func TestPartitionSingleOversized(t *testing.T) {
	db := NewDatabase(NewSequence("big", strings.Repeat("A", 1000)))
	parts := db.PartitionByResidues(10)
	if len(parts) != 1 || parts[0].Len() != 1 {
		t.Errorf("oversized sequence should form a singleton chunk, got %d parts", len(parts))
	}
}

func TestSearchWorkloadPlanted(t *testing.T) {
	g := NewGenerator(Protein, 5)
	w := g.NewSearchWorkload(50, 3, 4, LengthModel{Mean: 120, StdDev: 30, Min: 60, Max: 300})
	if w.Queries.Len() != 3 {
		t.Fatalf("%d queries, want 3", w.Queries.Len())
	}
	if w.DB.Len() != 50+3*4 {
		t.Fatalf("db has %d sequences, want %d", w.DB.Len(), 50+12)
	}
	for q, members := range w.Planted {
		if w.Queries.ByID(q) == nil {
			t.Errorf("planted query %s missing from query set", q)
		}
		for _, m := range members {
			if w.DB.ByID(m) == nil {
				t.Errorf("planted member %s missing from database", m)
			}
		}
	}
}

func TestRandomWithComposition(t *testing.T) {
	g := NewGenerator(DNA, 3)
	// Heavily GC-biased composition.
	s := g.RandomWithComposition("gc", 20000, []float64{0.05, 0.45, 0.45, 0.05})
	gc := s.GC()
	if gc < 0.85 || gc > 0.95 {
		t.Errorf("GC fraction %.3f, want ~0.90", gc)
	}
}
