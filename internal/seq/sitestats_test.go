package seq

import (
	"strings"
	"testing"
)

func mustAln(t *testing.T, rows ...string) *Alignment {
	t.Helper()
	seqs := make([]*Sequence, len(rows))
	for i, r := range rows {
		seqs[i] = NewSequence(string(rune('a'+i)), r)
	}
	a, err := NewAlignment(seqs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSiteStatsHandComputed(t *testing.T) {
	// Columns (top to bottom = rows a..d):
	//   0: AAAA  constant
	//   1: AACC  variable, informative (A x2, C x2)
	//   2: ACAC  variable, informative (A x2, C x2)
	//   3: CCCC  constant
	//   4: ----  all-gap
	//   5: AA-A  constant (gap ignored)
	a := mustAln(t,
		"AAAC-A",
		"AACC-A",
		"ACAC--",
		"ACCC-A",
	)
	st, err := ComputeSiteStats(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sites != 6 {
		t.Fatalf("sites %d", st.Sites)
	}
	if st.Constant != 3 {
		t.Errorf("constant %d, want 3", st.Constant)
	}
	if st.Variable != 2 || st.ParsimonyInformative != 2 {
		t.Errorf("variable %d informative %d, want 2/2", st.Variable, st.ParsimonyInformative)
	}
	if st.AllGap != 1 {
		t.Errorf("all-gap %d, want 1", st.AllGap)
	}
	if st.Constant+st.Variable+st.AllGap != st.Sites {
		t.Errorf("partition broken: %d+%d+%d != %d", st.Constant, st.Variable, st.AllGap, st.Sites)
	}
	// 6 gap cells (4 in col4, 1 in col2-row-c... recount: row c has '-' at
	// cols 4 and 5; rows a,b,d have '-' at col 4) = 4 + 1 = 5... assert via
	// the formula instead: gaps counted / total cells.
	if st.GapFraction <= 0.15 || st.GapFraction >= 0.25 {
		t.Errorf("gap fraction %g", st.GapFraction)
	}
}

func TestSiteStatsPartitionExact(t *testing.T) {
	a := mustAln(t,
		"AAAA",
		"AACA",
		"AACC",
		"AACC",
	)
	// col0 AAAA constant; col1 AAAA constant; col2 ACCC variable
	// (A once, C three -> not informative); col3 AACC informative.
	st, err := ComputeSiteStats(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Constant != 2 || st.Variable != 2 || st.ParsimonyInformative != 1 || st.AllGap != 0 {
		t.Errorf("got %+v", st)
	}
	if st.GapFraction != 0 {
		t.Errorf("gap fraction %g", st.GapFraction)
	}
	if !strings.Contains(st.String(), "parsimony-informative") {
		t.Errorf("summary: %s", st.String())
	}
}

func TestSiteStatsCaseAndAmbiguity(t *testing.T) {
	a := mustAln(t,
		"aA",
		"Aa",
	)
	st, err := ComputeSiteStats(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Constant != 2 {
		t.Errorf("case-folding broken: %+v", st)
	}
	b := mustAln(t, "AN", "AN")
	st, err = ComputeSiteStats(b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Constant != 1 || st.AllGap != 1 || st.GapFraction != 0.5 {
		t.Errorf("ambiguity handling: %+v", st)
	}
	if _, err := ComputeSiteStats(nil); err == nil {
		t.Error("nil alignment accepted")
	}
}
