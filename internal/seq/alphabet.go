// Package seq provides the biological-sequence substrate used by the
// distributed applications in this repository: sequence types, FASTA I/O,
// alphabets, substitution/scoring matrices, and deterministic synthetic
// data generators that stand in for the genomic databases used in the
// paper's evaluation.
package seq

import (
	"fmt"
	"strings"
)

// Alphabet describes the residue set a sequence may draw from. Alphabets are
// immutable after construction; the package-level DNA, RNA and Protein
// values are shared and must not be mutated.
type Alphabet struct {
	name     string
	letters  string
	index    [256]int8 // -1 if not a member; otherwise index into letters
	ambigu   string    // ambiguity codes accepted by Validate but not indexed
	gapRunes string
}

// Predefined alphabets.
var (
	// DNA is the canonical nucleotide alphabet ACGT with IUPAC ambiguity
	// codes accepted during validation.
	DNA = NewAlphabet("dna", "ACGT", "RYSWKMBDHVN", "-.")
	// RNA is ACGU.
	RNA = NewAlphabet("rna", "ACGU", "RYSWKMBDHVN", "-.")
	// Protein is the 20 standard amino acids; B, Z and X ambiguity codes
	// are accepted during validation.
	Protein = NewAlphabet("protein", "ARNDCQEGHILKMFPSTWYV", "BZX*", "-.")
)

// NewAlphabet builds an alphabet from its canonical letters, the ambiguity
// codes it tolerates, and the characters treated as gaps. Letters are
// case-insensitive.
func NewAlphabet(name, letters, ambiguity, gaps string) *Alphabet {
	a := &Alphabet{name: name, letters: letters, ambigu: ambiguity, gapRunes: gaps}
	for i := range a.index {
		a.index[i] = -1
	}
	up := strings.ToUpper(letters)
	lo := strings.ToLower(letters)
	for i := 0; i < len(up); i++ {
		a.index[up[i]] = int8(i)
		a.index[lo[i]] = int8(i)
	}
	return a
}

// Name returns the alphabet's name ("dna", "rna", "protein", ...).
func (a *Alphabet) Name() string { return a.name }

// Size returns the number of canonical letters.
func (a *Alphabet) Size() int { return len(a.letters) }

// Letters returns the canonical letters in index order.
func (a *Alphabet) Letters() string { return a.letters }

// Index returns the canonical index of residue b, or -1 if b is not a
// canonical member (gaps and ambiguity codes return -1).
func (a *Alphabet) Index(b byte) int { return int(a.index[b]) }

// Letter returns the canonical letter at index i.
func (a *Alphabet) Letter(i int) byte { return a.letters[i] }

// IsGap reports whether b is one of the alphabet's gap characters.
func (a *Alphabet) IsGap(b byte) bool {
	return strings.IndexByte(a.gapRunes, b) >= 0
}

// IsAmbiguity reports whether b is an accepted ambiguity code.
func (a *Alphabet) IsAmbiguity(b byte) bool {
	u := toUpper(b)
	return strings.IndexByte(a.ambigu, u) >= 0
}

// Valid reports whether b is a canonical letter, ambiguity code, or gap.
func (a *Alphabet) Valid(b byte) bool {
	return a.Index(b) >= 0 || a.IsAmbiguity(b) || a.IsGap(b)
}

// Validate checks every residue of s and returns a descriptive error for
// the first invalid byte.
func (a *Alphabet) Validate(s []byte) error {
	for i, b := range s {
		if !a.Valid(b) {
			return fmt.Errorf("seq: invalid %s residue %q at position %d", a.name, b, i)
		}
	}
	return nil
}

func toUpper(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

// complementTable maps nucleotide codes (incl. IUPAC ambiguity) to their
// complements, preserving case.
var complementTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = byte(i)
	}
	pairs := "ATUACGCGRYYRSSWWKMMKBVVBDHHDNN"
	for i := 0; i+1 < len(pairs); i += 2 {
		x, y := pairs[i], pairs[i+1]
		t[x] = y
		t[x+'a'-'A'] = y + 'a' - 'A'
	}
	// A<->T (DNA): the pairs string above sets A->T, T->U? Fix explicitly.
	t['A'], t['a'] = 'T', 't'
	t['T'], t['t'] = 'A', 'a'
	t['U'], t['u'] = 'A', 'a'
	t['G'], t['g'] = 'C', 'c'
	t['C'], t['c'] = 'G', 'g'
	return t
}()

// Complement returns the complement of a single nucleotide, preserving case.
// Non-nucleotide bytes are returned unchanged.
func Complement(b byte) byte { return complementTable[b] }

// ReverseComplement returns a newly allocated reverse complement of s.
func ReverseComplement(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[len(s)-1-i] = complementTable[b]
	}
	return out
}
