package seq

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWindowEntropy(t *testing.T) {
	if h := WindowEntropy([]byte("AAAAAAAA")); h != 0 {
		t.Errorf("homopolymer entropy %g, want 0", h)
	}
	if h := WindowEntropy([]byte("ACGT")); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform 4-letter entropy %g, want 2", h)
	}
	if h := WindowEntropy([]byte("aAaA")); h != 0 {
		t.Errorf("case-insensitivity broken: %g", h)
	}
	if h := WindowEntropy(nil); h != 0 {
		t.Errorf("empty window entropy %g", h)
	}
	// Entropy grows with diversity.
	if WindowEntropy([]byte("AACC")) >= WindowEntropy([]byte("ACGT")) {
		t.Error("2-letter window not below 4-letter window")
	}
}

func TestLowComplexityRegionsFindsRuns(t *testing.T) {
	g := NewGenerator(Protein, 3)
	random := g.Random("r", 60).Residues
	s := append(append(append([]byte{}, random...), bytes.Repeat([]byte("Q"), 30)...), g.Random("r2", 60).Residues...)
	regions, err := LowComplexityRegions(s, 12, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) == 0 {
		t.Fatal("polyQ run not detected")
	}
	// The run [60, 90) must be inside some region; random flanks mostly not.
	covered := func(i int) bool {
		for _, r := range regions {
			if i >= r[0] && i < r[1] {
				return true
			}
		}
		return false
	}
	for i := 65; i < 85; i++ {
		if !covered(i) {
			t.Fatalf("position %d inside polyQ not covered", i)
		}
	}
	if covered(20) {
		t.Error("random prefix flagged as low complexity")
	}
}

func TestLowComplexityValidation(t *testing.T) {
	if _, err := LowComplexityRegions([]byte("AAAA"), 1, 2); err == nil {
		t.Error("window 1 accepted")
	}
	if _, err := LowComplexityRegions([]byte("AAAA"), 4, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	regions, err := LowComplexityRegions([]byte("AA"), 12, 2)
	if err != nil || regions != nil {
		t.Errorf("short sequence: %v %v", regions, err)
	}
}

func TestMaskLowComplexity(t *testing.T) {
	g := NewGenerator(Protein, 5)
	flank := g.Random("f", 50).Residues
	s := &Sequence{ID: "s", Residues: append(append([]byte{}, flank...), bytes.Repeat([]byte("S"), 25)...)}
	masked, err := MaskLowComplexity(s, 12, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	if masked.ID != "s" || len(masked.Residues) != len(s.Residues) {
		t.Fatal("mask changed identity or length")
	}
	if !bytes.Contains(masked.Residues, bytes.Repeat([]byte{MaskChar}, 20)) {
		t.Errorf("polyS not masked: %s", masked.Residues)
	}
	// Original untouched.
	if bytes.ContainsRune(s.Residues[:50], rune(MaskChar)) {
		t.Error("input sequence mutated")
	}
	if strings.Count(string(masked.Residues[:30]), string(MaskChar)) > 0 {
		t.Error("random flank masked")
	}
}

func TestMaskDatabaseFraction(t *testing.T) {
	g := NewGenerator(Protein, 7)
	db := &Database{Seqs: []*Sequence{
		g.Random("clean", 100),
		{ID: "dirty", Residues: bytes.Repeat([]byte("E"), 100)},
	}}
	masked, frac, err := MaskDatabase(db, 12, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("masked fraction %.3f, want ~0.5", frac)
	}
	if bytes.ContainsRune(masked.Seqs[0].Residues, rune(MaskChar)) {
		t.Error("clean sequence masked")
	}
	for _, b := range masked.Seqs[1].Residues {
		if b != MaskChar {
			t.Fatalf("homopolymer not fully masked: %c", b)
		}
	}
}

func TestMaskingSuppressesSpuriousSimilarity(t *testing.T) {
	// Two unrelated sequences that share only a long homopolymer: masking
	// must remove most of the shared signal (p-distance on the masked pair
	// goes up). This is the filter's purpose in DSEARCH.
	g := NewGenerator(Protein, 11)
	run := bytes.Repeat([]byte("K"), 40)
	a := &Sequence{ID: "a", Residues: append(append([]byte{}, g.Random("x", 40).Residues...), run...)}
	b := &Sequence{ID: "b", Residues: append(append([]byte{}, g.Random("y", 40).Residues...), run...)}
	ma, err := MaskLowComplexity(a, 12, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := MaskLowComplexity(b, 12, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	same := func(x, y []byte) int {
		n := 0
		for i := range x {
			if x[i] == y[i] && x[i] != MaskChar {
				n++
			}
		}
		return n
	}
	if before, after := same(a.Residues, b.Residues), same(ma.Residues, mb.Residues); after >= before-30 {
		t.Errorf("masking left %d of %d shared positions", after, before)
	}
}
