package seq

import (
	"fmt"
	"math/rand"
)

// BootstrapAlignment returns a nonparametric bootstrap replicate of the
// alignment: the same number of columns, drawn with replacement. This is
// the standard way biologists attach support values to a tree — build a
// tree per replicate, then take the consensus (Felsenstein 1985). The
// replicate is deterministic for a given seed.
func BootstrapAlignment(a *Alignment, seed int64) (*Alignment, error) {
	if a == nil || a.NTaxa() == 0 || a.NSites() == 0 {
		return nil, fmt.Errorf("seq: cannot bootstrap an empty alignment")
	}
	rng := rand.New(rand.NewSource(seed))
	ns := a.NSites()
	cols := make([]int, ns)
	for i := range cols {
		cols[i] = rng.Intn(ns)
	}
	rows := make([]*Sequence, a.NTaxa())
	for i, r := range a.Rows {
		res := make([]byte, ns)
		for j, c := range cols {
			res[j] = r.Residues[c]
		}
		rows[i] = &Sequence{ID: r.ID, Desc: r.Desc, Residues: res}
	}
	return NewAlignment(rows)
}
