package likelihood

import (
	"fmt"
	"math"
	"strings"
)

// NStates is the nucleotide state count. States are ordered A, C, G, T.
const NStates = 4

// baseIndex maps nucleotide letters to state indices (-1 for non-canonical).
var baseIndex = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i, b := range []byte("ACGT") {
		t[b] = int8(i)
		t[b+'a'-'A'] = int8(i)
	}
	t['U'], t['u'] = 3, 3
	return t
}()

// StateIndex returns the 0..3 index of a canonical base, or -1.
func StateIndex(b byte) int { return int(baseIndex[b]) }

// ambiguityMask maps IUPAC codes to bitmasks over (A=1, C=2, G=4, T=8).
var ambiguityMask = map[byte]uint8{
	'A': 1, 'C': 2, 'G': 4, 'T': 8, 'U': 8,
	'R': 1 | 4, 'Y': 2 | 8, 'S': 2 | 4, 'W': 1 | 8, 'K': 4 | 8, 'M': 1 | 2,
	'B': 2 | 4 | 8, 'D': 1 | 4 | 8, 'H': 1 | 2 | 8, 'V': 1 | 2 | 4,
	'N': 15, '-': 15, '.': 15, '?': 15, 'X': 15,
}

// StateMask returns the set of states compatible with an input byte
// (ambiguity codes and gaps map to "any state").
func StateMask(b byte) uint8 {
	if b >= 'a' && b <= 'z' {
		b = b - 'a' + 'A'
	}
	if m, ok := ambiguityMask[b]; ok {
		return m
	}
	return 15
}

// Model is a time-reversible DNA substitution model with an eigendecomposed
// rate matrix, normalised to one expected substitution per unit branch
// length.
type Model struct {
	Name string
	// Pi holds the equilibrium base frequencies (A, C, G, T).
	Pi [NStates]float64
	// Rates holds the six exchangeability parameters in the order
	// AC, AG, AT, CG, CT, GT (GTR parameterisation; simpler models are
	// special cases).
	Rates [6]float64

	// Eigen system of the normalised rate matrix Q = U diag(eval) U^-1.
	eval [NStates]float64
	u    [NStates][NStates]float64
	uinv [NStates][NStates]float64
}

// rateIndex maps an unordered state pair to its position in Rates.
func rateIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	switch {
	case i == 0 && j == 1:
		return 0 // AC
	case i == 0 && j == 2:
		return 1 // AG
	case i == 0 && j == 3:
		return 2 // AT
	case i == 1 && j == 2:
		return 3 // CG
	case i == 1 && j == 3:
		return 4 // CT
	default:
		return 5 // GT
	}
}

// NewGTR builds a general time-reversible model from six exchangeabilities
// (AC, AG, AT, CG, CT, GT) and base frequencies. Frequencies are normalised;
// all parameters must be positive.
func NewGTR(rates [6]float64, pi [4]float64) (*Model, error) {
	return newModel("GTR", rates, pi)
}

func newModel(name string, rates [6]float64, pi [4]float64) (*Model, error) {
	var sum float64
	for i, p := range pi {
		if p <= 0 {
			return nil, fmt.Errorf("likelihood: %s: base frequency %d must be positive, got %g", name, i, p)
		}
		sum += p
	}
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("likelihood: %s: rate %d must be positive, got %g", name, i, r)
		}
	}
	m := &Model{Name: name, Rates: rates}
	for i := range pi {
		m.Pi[i] = pi[i] / sum
	}
	if err := m.decompose(); err != nil {
		return nil, err
	}
	return m, nil
}

// decompose builds the normalised rate matrix and its eigen system. For a
// reversible Q, B = D^{1/2} Q D^{-1/2} (D = diag(Pi)) is symmetric, so the
// Jacobi method applies; then U = D^{-1/2} V and U^{-1} = V^T D^{1/2}.
func (m *Model) decompose() error {
	var q [NStates][NStates]float64
	for i := 0; i < NStates; i++ {
		for j := 0; j < NStates; j++ {
			if i == j {
				continue
			}
			q[i][j] = m.Rates[rateIndex(i, j)] * m.Pi[j]
		}
	}
	// Diagonal and normalisation: mean rate = -sum_i pi_i q_ii = 1.
	meanRate := 0.0
	for i := 0; i < NStates; i++ {
		row := 0.0
		for j := 0; j < NStates; j++ {
			if i != j {
				row += q[i][j]
			}
		}
		q[i][i] = -row
		meanRate += m.Pi[i] * row
	}
	if meanRate <= 0 {
		return fmt.Errorf("likelihood: %s: degenerate rate matrix", m.Name)
	}
	for i := 0; i < NStates; i++ {
		for j := 0; j < NStates; j++ {
			q[i][j] /= meanRate
		}
	}
	// Symmetrise.
	b := make([][]float64, NStates)
	for i := range b {
		b[i] = make([]float64, NStates)
		for j := 0; j < NStates; j++ {
			b[i][j] = math.Sqrt(m.Pi[i]) * q[i][j] / math.Sqrt(m.Pi[j])
		}
	}
	// Enforce exact symmetry against float noise.
	for i := 0; i < NStates; i++ {
		for j := i + 1; j < NStates; j++ {
			avg := (b[i][j] + b[j][i]) / 2
			b[i][j], b[j][i] = avg, avg
		}
	}
	vals, vecs, err := jacobiEigen(b)
	if err != nil {
		return err
	}
	for i := 0; i < NStates; i++ {
		m.eval[i] = vals[i]
		for j := 0; j < NStates; j++ {
			m.u[i][j] = vecs[i][j] / math.Sqrt(m.Pi[i])
			m.uinv[i][j] = vecs[j][i] * math.Sqrt(m.Pi[j])
		}
	}
	return nil
}

// TransitionMatrix fills p with P(t) = exp(Qt), the probability of state j
// at the child end of a branch of length t*rate given state i at the parent
// end. Small negative round-off values are clamped to zero.
func (m *Model) TransitionMatrix(t float64, p *[NStates][NStates]float64) {
	var ev [NStates]float64
	for k := 0; k < NStates; k++ {
		ev[k] = math.Exp(m.eval[k] * t)
	}
	for i := 0; i < NStates; i++ {
		for j := 0; j < NStates; j++ {
			sum := 0.0
			for k := 0; k < NStates; k++ {
				sum += m.u[i][k] * ev[k] * m.uinv[k][j]
			}
			if sum < 0 {
				sum = 0
			}
			p[i][j] = sum
		}
	}
}

// uniformPi is the equal-frequency vector.
var uniformPi = [4]float64{0.25, 0.25, 0.25, 0.25}

// NewJC69 builds the Jukes–Cantor 1969 model (all rates and frequencies
// equal).
func NewJC69() *Model {
	m, err := newModel("JC69", [6]float64{1, 1, 1, 1, 1, 1}, uniformPi)
	if err != nil {
		panic(err)
	}
	return m
}

// NewK80 builds the Kimura 1980 two-parameter model with
// transition/transversion ratio kappa (transitions AG and CT get rate
// kappa). Frequencies are uniform.
func NewK80(kappa float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("likelihood: K80: kappa must be positive, got %g", kappa)
	}
	return newModel("K80", [6]float64{1, kappa, 1, 1, kappa, 1}, uniformPi)
}

// NewF81 builds the Felsenstein 1981 model: equal exchangeabilities,
// arbitrary base frequencies.
func NewF81(pi [4]float64) (*Model, error) {
	return newModel("F81", [6]float64{1, 1, 1, 1, 1, 1}, pi)
}

// NewHKY85 builds the Hasegawa–Kishino–Yano 1985 model: transition bias
// kappa plus arbitrary base frequencies.
func NewHKY85(kappa float64, pi [4]float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("likelihood: HKY85: kappa must be positive, got %g", kappa)
	}
	return newModel("HKY85", [6]float64{1, kappa, 1, 1, kappa, 1}, pi)
}

// NewF84 builds Felsenstein's 1984 model as used by DNAML/PHYLIP. Its
// transition bias parameter is converted to the GTR parameterisation:
// rate(AG) = 1 + k/piR, rate(CT) = 1 + k/piY.
func NewF84(k float64, pi [4]float64) (*Model, error) {
	if k < 0 {
		return nil, fmt.Errorf("likelihood: F84: k must be non-negative, got %g", k)
	}
	piR := pi[0] + pi[2]
	piY := pi[1] + pi[3]
	if piR <= 0 || piY <= 0 {
		return nil, fmt.Errorf("likelihood: F84: degenerate purine/pyrimidine frequencies")
	}
	return newModel("F84", [6]float64{1, 1 + k/piR, 1, 1, 1 + k/piY, 1}, pi)
}

// NewTN93 builds the Tamura–Nei 1993 model with separate purine (kappaR:
// AG) and pyrimidine (kappaY: CT) transition biases.
func NewTN93(kappaR, kappaY float64, pi [4]float64) (*Model, error) {
	if kappaR <= 0 || kappaY <= 0 {
		return nil, fmt.Errorf("likelihood: TN93: kappas must be positive, got %g, %g", kappaR, kappaY)
	}
	return newModel("TN93", [6]float64{1, kappaR, 1, 1, kappaY, 1}, pi)
}

// ModelByName constructs a model from a config-file style specification,
// e.g. "JC69", "K80:kappa=2", "HKY85:kappa=2,piA=0.3,piC=0.2,piG=0.2,piT=0.3",
// "GTR:ac=1,ag=2,at=1,cg=1,ct=2,gt=1,piA=0.25,...". This is the menu of
// substitution models the paper highlights as one of DPRml's strengths.
func ModelByName(spec string) (*Model, error) {
	name, argstr, _ := strings.Cut(spec, ":")
	args := map[string]float64{}
	if argstr != "" {
		for _, kv := range strings.Split(argstr, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("likelihood: bad model argument %q in %q", kv, spec)
			}
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
				return nil, fmt.Errorf("likelihood: bad value %q for %q: %w", v, k, err)
			}
			args[strings.ToLower(strings.TrimSpace(k))] = f
		}
	}
	get := func(key string, def float64) float64 {
		if v, ok := args[key]; ok {
			return v
		}
		return def
	}
	pi := [4]float64{get("pia", 0.25), get("pic", 0.25), get("pig", 0.25), get("pit", 0.25)}
	switch strings.ToUpper(name) {
	case "JC69", "JC":
		return NewJC69(), nil
	case "K80", "K2P":
		return NewK80(get("kappa", 2))
	case "F81":
		return NewF81(pi)
	case "F84":
		return NewF84(get("k", 1), pi)
	case "HKY85", "HKY":
		return NewHKY85(get("kappa", 2), pi)
	case "TN93":
		return NewTN93(get("kappar", 2), get("kappay", 2), pi)
	case "GTR":
		return NewGTR([6]float64{
			get("ac", 1), get("ag", 2), get("at", 1),
			get("cg", 1), get("ct", 2), get("gt", 1),
		}, pi)
	default:
		return nil, fmt.Errorf("likelihood: unknown model %q (have JC69, K80, F81, F84, HKY85, TN93, GTR)", name)
	}
}
