package likelihood

import (
	"fmt"
	"math"
)

// SiteRates describes among-site rate variation as a set of discrete rate
// categories with equal probability (Yang 1994). The plain no-heterogeneity
// case is a single category of rate 1.
type SiteRates struct {
	Rates []float64
}

// UniformRates returns the single-category (no heterogeneity) model.
func UniformRates() *SiteRates { return &SiteRates{Rates: []float64{1}} }

// NCategories returns the category count.
func (s *SiteRates) NCategories() int { return len(s.Rates) }

// DiscreteGamma builds k equal-probability rate categories for a gamma
// distribution with shape alpha and mean 1, using the category-mean method
// of Yang (1994). Rates average exactly 1.
func DiscreteGamma(alpha float64, k int) (*SiteRates, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("likelihood: gamma shape must be positive, got %g", alpha)
	}
	if k < 1 {
		return nil, fmt.Errorf("likelihood: need at least one rate category, got %d", k)
	}
	if k == 1 {
		return UniformRates(), nil
	}
	// Quantile boundaries of Gamma(alpha, rate=alpha) at i/k.
	bounds := make([]float64, k+1)
	bounds[0] = 0
	bounds[k] = math.Inf(1)
	for i := 1; i < k; i++ {
		q, err := gammaQuantile(float64(i)/float64(k), alpha, alpha)
		if err != nil {
			return nil, err
		}
		bounds[i] = q
	}
	// Mean rate within [a,b) of Gamma(alpha, alpha) with overall mean 1:
	// k * (P(alpha+1, alpha*b) - P(alpha+1, alpha*a)).
	rates := make([]float64, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		hi := 1.0
		if !math.IsInf(bounds[i+1], 1) {
			hi = regIncGammaLower(alpha+1, alpha*bounds[i+1])
		}
		lo := 0.0
		if bounds[i] > 0 {
			lo = regIncGammaLower(alpha+1, alpha*bounds[i])
		}
		rates[i] = float64(k) * (hi - lo)
		sum += rates[i]
	}
	// Renormalise against accumulated numerical error.
	for i := range rates {
		rates[i] *= float64(k) / sum
	}
	return &SiteRates{Rates: rates}, nil
}

// regIncGammaLower computes the regularised lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) via the series expansion for x < a+1 and the
// continued fraction for larger x (Numerical Recipes style).
func regIncGammaLower(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// gammaQuantile inverts the Gamma(shape, rate) CDF at probability p by
// bisection (robust; called only during model setup).
func gammaQuantile(p, shape, rate float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("likelihood: gamma quantile needs 0 < p < 1, got %g", p)
	}
	cdf := func(x float64) float64 { return regIncGammaLower(shape, rate*x) }
	lo, hi := 0.0, 1.0
	for cdf(hi) < p {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("likelihood: gamma quantile bracket failed (p=%g shape=%g)", p, shape)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
