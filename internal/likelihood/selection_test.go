package likelihood

import (
	"strings"
	"testing"

	"repro/internal/phylo"
	"repro/internal/seq"
)

// selectionFixture simulates nSites of data under model m on a random
// 8-taxon tree.
func selectionFixture(t *testing.T, m *Model, nSites int, seed int64) (*phylo.Tree, *seq.Alignment) {
	t.Helper()
	taxa := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	tr, err := RandomTree(taxa, 0.05, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tr, m, UniformRates(), nSites, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return tr, aln
}

func TestSelectModelPrefersTrueFamilyHKY(t *testing.T) {
	// Strong transition bias + skewed frequencies: HKY85 should win over
	// JC69/K80/F81.
	m, err := NewHKY85(6, [4]float64{0.4, 0.1, 0.15, 0.35})
	if err != nil {
		t.Fatal(err)
	}
	tr, aln := selectionFixture(t, m, 3000, 31)
	fits, err := SelectModel(tr, aln, SelectModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 4 {
		t.Fatalf("%d candidates, want 4", len(fits))
	}
	if fits[0].Name != "HKY85" {
		t.Errorf("best model %s, want HKY85 (fits: %+v)", fits[0].Name, fits)
	}
	// Sorted by AIC ascending.
	for i := 1; i < len(fits); i++ {
		if fits[i].AIC < fits[i-1].AIC {
			t.Errorf("fits not sorted by AIC: %g before %g", fits[i-1].AIC, fits[i].AIC)
		}
	}
	// The winning spec must round-trip through ModelByName.
	if _, err := ModelByName(fits[0].Spec); err != nil {
		t.Errorf("winning spec %q does not parse: %v", fits[0].Spec, err)
	}
}

func TestSelectModelPrefersJCWhenTrue(t *testing.T) {
	// Data simulated under JC69: the parameter-free model should win on
	// AIC (richer models gain < 2 logL units per parameter on average).
	tr, aln := selectionFixture(t, NewJC69(), 2000, 41)
	fits, err := SelectModel(tr, aln, SelectModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fits[0].Name != "JC69" && fits[0].Name != "K80" {
		t.Errorf("best model %s under JC69 data, want JC69 (or K80 by chance)", fits[0].Name)
	}
	// Log-likelihoods must be nested: HKY85 >= K80 >= JC69 and HKY85 >= F81.
	ll := map[string]float64{}
	for _, f := range fits {
		ll[f.Name] = f.LogL
	}
	if ll["K80"] < ll["JC69"]-1e-6 || ll["HKY85"] < ll["K80"]-1e-6 || ll["HKY85"] < ll["F81"]-1e-6 {
		t.Errorf("nesting violated: %+v", ll)
	}
}

func TestSelectModelBIC(t *testing.T) {
	m, err := NewHKY85(6, [4]float64{0.4, 0.1, 0.15, 0.35})
	if err != nil {
		t.Fatal(err)
	}
	tr, aln := selectionFixture(t, m, 3000, 51)
	fits, err := SelectModel(tr, aln, SelectModelOptions{Criterion: "bic"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fits); i++ {
		if fits[i].BIC < fits[i-1].BIC {
			t.Errorf("fits not sorted by BIC")
		}
	}
	// BIC charges more per parameter than AIC at n=3000.
	for _, f := range fits {
		if f.K > 0 && f.BIC <= f.AIC {
			t.Errorf("%s: BIC %g <= AIC %g with K=%d", f.Name, f.BIC, f.AIC, f.K)
		}
	}
}

func TestSelectModelBadCriterion(t *testing.T) {
	tr, aln := selectionFixture(t, NewJC69(), 200, 61)
	if _, err := SelectModel(tr, aln, SelectModelOptions{Criterion: "dic"}); err == nil ||
		!strings.Contains(err.Error(), "criterion") {
		t.Errorf("bad criterion not rejected: %v", err)
	}
}
