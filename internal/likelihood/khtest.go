package likelihood

import (
	"fmt"
	"math"

	"repro/internal/phylo"
)

// Kishino–Hasegawa test: given two candidate topologies, is the
// log-likelihood difference larger than expected from site-to-site
// sampling noise? Biologists run it on the trees from repeated DPRml
// instances to decide whether the best tree is *significantly* better
// than the runner-up or the difference is within noise. The normal
// approximation over per-site differences is the classic form.

// KHResult reports a Kishino–Hasegawa comparison.
type KHResult struct {
	// Delta is logL(t1) - logL(t2) (positive favours t1).
	Delta float64
	// StdErr is the standard error of Delta under site resampling.
	StdErr float64
	// Z is Delta / StdErr; PValue is the two-sided normal tail.
	Z, PValue float64
}

// KHTest compares two topologies on the evaluator's alignment. Both trees
// must cover the alignment's taxa; branch lengths are used as given (fit
// them first for a fair comparison).
func (e *Evaluator) KHTest(t1, t2 *phylo.Tree) (*KHResult, error) {
	s1, err := e.SiteLogLikelihoods(t1)
	if err != nil {
		return nil, fmt.Errorf("likelihood: KH tree 1: %w", err)
	}
	s2, err := e.SiteLogLikelihoods(t2)
	if err != nil {
		return nil, fmt.Errorf("likelihood: KH tree 2: %w", err)
	}
	n := len(s1)
	if n != len(s2) || n < 2 {
		return nil, fmt.Errorf("likelihood: KH needs matching site vectors (%d vs %d)", n, len(s2))
	}
	var sum, ss float64
	for i := range s1 {
		d := s1[i] - s2[i]
		sum += d
		ss += d * d
	}
	mean := sum / float64(n)
	varPerSite := (ss - sum*mean) / float64(n-1)
	if varPerSite < 0 {
		varPerSite = 0
	}
	res := &KHResult{Delta: sum, StdErr: math.Sqrt(varPerSite * float64(n))}
	if res.StdErr == 0 {
		// Identical site vectors: no evidence either way.
		res.Z, res.PValue = 0, 1
		return res, nil
	}
	res.Z = res.Delta / res.StdErr
	res.PValue = 2 * normalTail(math.Abs(res.Z))
	return res, nil
}

// normalTail returns P(Z > z) for the standard normal via the
// complementary error function.
func normalTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
