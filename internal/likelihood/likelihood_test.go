package likelihood

import (
	"math"
	"testing"

	"repro/internal/phylo"
	"repro/internal/seq"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestJacobiReconstruction(t *testing.T) {
	a := [][]float64{
		{4, 1, 0.5, 0},
		{1, 3, 0.2, 0.1},
		{0.5, 0.2, 2, 0.3},
		{0, 0.1, 0.3, 1},
	}
	vals, vecs, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct V diag(vals) V^T.
	n := len(a)
	lam := identity(n)
	for i := 0; i < n; i++ {
		lam[i][i] = vals[i]
	}
	vt := identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vt[i][j] = vecs[j][i]
		}
	}
	r := matMul(matMul(vecs, lam), vt)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			approx(t, r[i][j], a[i][j], 1e-10, "reconstruction")
		}
	}
	// Orthogonality.
	vv := matMul(vt, vecs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			approx(t, vv[i][j], want, 1e-10, "orthogonality")
		}
	}
}

func allModels(t *testing.T) []*Model {
	t.Helper()
	pi := [4]float64{0.3, 0.2, 0.2, 0.3}
	k80, err := NewK80(2.5)
	if err != nil {
		t.Fatal(err)
	}
	f81, err := NewF81(pi)
	if err != nil {
		t.Fatal(err)
	}
	f84, err := NewF84(1.5, pi)
	if err != nil {
		t.Fatal(err)
	}
	hky, err := NewHKY85(2.0, pi)
	if err != nil {
		t.Fatal(err)
	}
	tn93, err := NewTN93(2.0, 3.0, pi)
	if err != nil {
		t.Fatal(err)
	}
	gtr, err := NewGTR([6]float64{1, 2, 0.5, 0.8, 3, 1.2}, pi)
	if err != nil {
		t.Fatal(err)
	}
	return []*Model{NewJC69(), k80, f81, f84, hky, tn93, gtr}
}

func TestTransitionMatrixProperties(t *testing.T) {
	var p, p1, p2, p12 [NStates][NStates]float64
	for _, m := range allModels(t) {
		// P(0) = I.
		m.TransitionMatrix(0, &p)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				approx(t, p[i][j], want, 1e-10, m.Name+" P(0)")
			}
		}
		// Rows sum to 1, entries non-negative, for several t.
		for _, tv := range []float64{0.01, 0.1, 0.5, 2, 10} {
			m.TransitionMatrix(tv, &p)
			for i := 0; i < 4; i++ {
				row := 0.0
				for j := 0; j < 4; j++ {
					if p[i][j] < 0 {
						t.Errorf("%s: P(%g)[%d][%d] = %g < 0", m.Name, tv, i, j, p[i][j])
					}
					row += p[i][j]
				}
				approx(t, row, 1, 1e-9, m.Name+" row sum")
			}
			// Detailed balance: pi_i P_ij = pi_j P_ji.
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					approx(t, m.Pi[i]*p[i][j], m.Pi[j]*p[j][i], 1e-10, m.Name+" detailed balance")
				}
			}
		}
		// Chapman–Kolmogorov: P(0.3)·P(0.5) = P(0.8).
		m.TransitionMatrix(0.3, &p1)
		m.TransitionMatrix(0.5, &p2)
		m.TransitionMatrix(0.8, &p12)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				sum := 0.0
				for k := 0; k < 4; k++ {
					sum += p1[i][k] * p2[k][j]
				}
				approx(t, sum, p12[i][j], 1e-9, m.Name+" Chapman-Kolmogorov")
			}
		}
		// P(large t) rows converge to Pi.
		m.TransitionMatrix(500, &p)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				approx(t, p[i][j], m.Pi[j], 1e-6, m.Name+" equilibrium")
			}
		}
	}
}

func TestJC69Analytic(t *testing.T) {
	m := NewJC69()
	var p [NStates][NStates]float64
	for _, tv := range []float64{0.05, 0.2, 1.0} {
		m.TransitionMatrix(tv, &p)
		e := math.Exp(-4.0 * tv / 3.0)
		same := 0.25 + 0.75*e
		diff := 0.25 - 0.25*e
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := diff
				if i == j {
					want = same
				}
				approx(t, p[i][j], want, 1e-10, "JC69 analytic")
			}
		}
	}
}

func TestK80Analytic(t *testing.T) {
	kappa := 2.0
	m, err := NewK80(kappa)
	if err != nil {
		t.Fatal(err)
	}
	// K80 with mean rate 1: in the standard alpha/beta parameterisation
	// alpha = kappa*beta and 2*beta + ... mean rate = (kappa + 2)/4 * 4beta?
	// Use the textbook closed form with d = t (expected substitutions):
	// P(transition) = 1/4 + 1/4 exp(-4d/(kappa+2)) - 1/2 exp(-2d(kappa+1)/(kappa+2))
	var p [NStates][NStates]float64
	for _, d := range []float64{0.1, 0.5, 1.5} {
		m.TransitionMatrix(d, &p)
		e1 := math.Exp(-4 * d / (kappa + 2))
		e2 := math.Exp(-2 * d * (kappa + 1) / (kappa + 2))
		pSame := 0.25 + 0.25*e1 + 0.5*e2
		pTransition := 0.25 + 0.25*e1 - 0.5*e2
		pTransversion := 0.25 - 0.25*e1
		approx(t, p[0][0], pSame, 1e-10, "K80 identity")
		approx(t, p[0][2], pTransition, 1e-10, "K80 transition A->G")
		approx(t, p[0][1], pTransversion, 1e-10, "K80 transversion A->C")
		approx(t, p[0][3], pTransversion, 1e-10, "K80 transversion A->T")
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewK80(-1); err == nil {
		t.Error("negative kappa accepted")
	}
	if _, err := NewF81([4]float64{0, 0.5, 0.25, 0.25}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := NewGTR([6]float64{1, 1, 1, 1, 1, 0}, uniformPi); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTN93(1, -2, uniformPi); err == nil {
		t.Error("negative kappaY accepted")
	}
}

func TestModelByName(t *testing.T) {
	cases := []string{
		"JC69", "K80:kappa=3", "F81:piA=0.4,piC=0.1,piG=0.1,piT=0.4",
		"HKY85:kappa=2,piA=0.3,piC=0.2,piG=0.2,piT=0.3",
		"F84:k=1.2", "TN93:kappaR=2,kappaY=4", "GTR:ac=1,ag=3,at=0.5,cg=0.7,ct=3.1,gt=1",
	}
	for _, c := range cases {
		m, err := ModelByName(c)
		if err != nil {
			t.Errorf("ModelByName(%q): %v", c, err)
			continue
		}
		var p [NStates][NStates]float64
		m.TransitionMatrix(0.5, &p)
		for i := 0; i < 4; i++ {
			row := 0.0
			for j := 0; j < 4; j++ {
				row += p[i][j]
			}
			approx(t, row, 1, 1e-9, c+" row sum")
		}
	}
	for _, bad := range []string{"WAG", "K80:kappa", "K80:kappa=x"} {
		if _, err := ModelByName(bad); err == nil {
			t.Errorf("ModelByName(%q) accepted", bad)
		}
	}
}

func TestIncompleteGamma(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		approx(t, regIncGammaLower(1, x), 1-math.Exp(-x), 1e-12, "P(1,x)")
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2} {
		approx(t, regIncGammaLower(0.5, x), math.Erf(math.Sqrt(x)), 1e-10, "P(0.5,x)")
	}
	if v := regIncGammaLower(2, 0); v != 0 {
		t.Errorf("P(a,0) = %g", v)
	}
}

func TestGammaQuantile(t *testing.T) {
	// Exponential(1) quantiles: -ln(1-p).
	for _, p := range []float64{0.1, 0.5, 0.9} {
		q, err := gammaQuantile(p, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, q, -math.Log(1-p), 1e-8, "exp quantile")
	}
	if _, err := gammaQuantile(0, 1, 1); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestDiscreteGammaKnownValues(t *testing.T) {
	// PAML's canonical example: alpha=0.5, 4 categories (mean method).
	sr, err := DiscreteGamma(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.033388, 0.251916, 0.820268, 2.894428}
	for i := range want {
		approx(t, sr.Rates[i], want[i], 1e-4, "PAML alpha=0.5 k=4")
	}
}

func TestDiscreteGammaProperties(t *testing.T) {
	for _, alpha := range []float64{0.2, 0.5, 1, 2, 10} {
		for _, k := range []int{1, 2, 4, 8} {
			sr, err := DiscreteGamma(alpha, k)
			if err != nil {
				t.Fatal(err)
			}
			if sr.NCategories() != k {
				t.Fatalf("NCategories = %d, want %d", sr.NCategories(), k)
			}
			mean := 0.0
			for i, r := range sr.Rates {
				if r < 0 {
					t.Errorf("alpha=%g k=%d: negative rate %g", alpha, k, r)
				}
				if i > 0 && r < sr.Rates[i-1] {
					t.Errorf("alpha=%g k=%d: rates not increasing", alpha, k)
				}
				mean += r
			}
			mean /= float64(k)
			approx(t, mean, 1, 1e-9, "rate mean")
		}
	}
	// Large alpha => nearly uniform rates.
	sr, _ := DiscreteGamma(1000, 4)
	for _, r := range sr.Rates {
		approx(t, r, 1, 0.05, "large-alpha rates")
	}
	if _, err := DiscreteGamma(-1, 4); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := DiscreteGamma(1, 0); err == nil {
		t.Error("zero categories accepted")
	}
}

func mustAlignment(t *testing.T, rows ...*seq.Sequence) *seq.Alignment {
	t.Helper()
	a, err := seq.NewAlignment(rows)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCompress(t *testing.T) {
	a := mustAlignment(t,
		seq.NewSequence("x", "AACGA"),
		seq.NewSequence("y", "AACTA"),
	)
	c := Compress(a)
	// Columns: AA, AA, CC, GT, AA -> patterns AA (w=3), CC, GT.
	if c.NPatterns() != 3 {
		t.Fatalf("NPatterns = %d, want 3", c.NPatterns())
	}
	total := 0
	for _, w := range c.Weights {
		total += w
	}
	if total != 5 {
		t.Errorf("weights sum to %d, want 5", total)
	}
	if c.TaxonIndex("y") != 1 || c.TaxonIndex("zz") != -1 {
		t.Error("TaxonIndex wrong")
	}
}

func TestStateMask(t *testing.T) {
	cases := map[byte]uint8{
		'A': 1, 'c': 2, 'G': 4, 't': 8, 'U': 8,
		'R': 5, 'N': 15, '-': 15, 'Z': 15,
	}
	for b, want := range cases {
		if got := StateMask(b); got != want {
			t.Errorf("StateMask(%q) = %d, want %d", b, got, want)
		}
	}
}

// twoTaxonAnalyticLL computes the exact two-taxon log likelihood:
// sum over sites of log( pi_a * P_{ab}(t1+t2) ) by reversibility.
func twoTaxonAnalyticLL(m *Model, a, b []byte, t1, t2 float64) float64 {
	var p [NStates][NStates]float64
	m.TransitionMatrix(t1+t2, &p)
	ll := 0.0
	for i := range a {
		x, y := StateIndex(a[i]), StateIndex(b[i])
		ll += math.Log(m.Pi[x] * p[x][y])
	}
	return ll
}

func TestPruningTwoTaxonAnalytic(t *testing.T) {
	// Tree (A:0.1,B:0.15); against closed form.
	aln := mustAlignment(t,
		seq.NewSequence("A", "ACGTACGTGGCA"),
		seq.NewSequence("B", "ACGAACGTGCCA"),
	)
	for _, m := range allModels(t) {
		e, err := NewEvaluator(m, UniformRates(), Compress(aln))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := phylo.ParseNewick("(A:0.1,B:0.15);")
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.LogLikelihood(tree)
		if err != nil {
			t.Fatal(err)
		}
		want := twoTaxonAnalyticLL(m, aln.Rows[0].Residues, aln.Rows[1].Residues, 0.1, 0.15)
		approx(t, got, want, 1e-9, m.Name+" two-taxon LL")
	}
}

func TestPruningRerootingInvariance(t *testing.T) {
	// The likelihood of a reversible model must not depend on root
	// placement. Same unrooted tree, three rootings.
	g := seq.NewGenerator(seq.DNA, 17)
	tree, err := RandomTree([]string{"A", "B", "C", "D", "E"}, 0.05, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := DiscreteGamma(0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, rates, 400, 99)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	e, err := NewEvaluator(m, rates, Compress(aln))
	if err != nil {
		t.Fatal(err)
	}

	rootings := []string{
		"((A:0.1,B:0.2):0.05,(C:0.15,D:0.1):0.1,E:0.3);",
		"(A:0.1,B:0.2,((C:0.15,D:0.1):0.1,E:0.3):0.05);",
		// Same unrooted shape rooted on the E branch with split lengths.
		"(((A:0.1,B:0.2):0.05,(C:0.15,D:0.1):0.1):0.12,E:0.18);",
	}
	var lls []float64
	for _, nw := range rootings {
		tr, err := phylo.ParseNewick(nw)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := e.LogLikelihood(tr)
		if err != nil {
			t.Fatal(err)
		}
		lls = append(lls, ll)
	}
	approx(t, lls[1], lls[0], 1e-8, "rerooting invariance (trifurcation move)")
	approx(t, lls[2], lls[0], 1e-8, "rerooting invariance (edge split)")
}

func TestPruningGammaVsUniform(t *testing.T) {
	// With a single category DiscreteGamma must equal UniformRates exactly.
	aln := mustAlignment(t,
		seq.NewSequence("A", "ACGTACGTGGCAATTC"),
		seq.NewSequence("B", "ACGAACGTGCCAATTC"),
		seq.NewSequence("C", "TCGAACGAGCCAATGC"),
	)
	m := NewJC69()
	tree, err := phylo.ParseNewick("(A:0.1,B:0.1,C:0.2);")
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := NewEvaluator(m, UniformRates(), Compress(aln))
	g1, err := DiscreteGamma(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEvaluator(m, g1, Compress(aln))
	ll1, err := e1.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	ll2, err := e2.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ll2, ll1, 1e-12, "1-category gamma == uniform")
}

func TestPruningMissingTaxon(t *testing.T) {
	aln := mustAlignment(t,
		seq.NewSequence("A", "ACGT"),
		seq.NewSequence("B", "ACGT"),
	)
	e, _ := NewEvaluator(NewJC69(), UniformRates(), Compress(aln))
	tree, _ := phylo.ParseNewick("(A:0.1,Z:0.1);")
	if _, err := e.LogLikelihood(tree); err == nil {
		t.Error("missing taxon accepted")
	}
}

func TestScalingLongTrees(t *testing.T) {
	// Deep caterpillar tree with many taxa: unscaled likelihoods would
	// underflow; scaled computation must stay finite.
	n := 40
	taxa := make([]string, n)
	for i := range taxa {
		taxa[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	tree, err := RandomTree(taxa, 0.4, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := NewJC69()
	aln, err := Simulate(tree, m, UniformRates(), 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEvaluator(m, UniformRates(), Compress(aln))
	ll, err := e.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Fatalf("LL not finite: %g", ll)
	}
	if ll >= 0 {
		t.Fatalf("LL = %g, want negative", ll)
	}
}

func TestBrentMax(t *testing.T) {
	// Simple concave function with known maximum.
	x, fx := brentMax(0, 10, func(x float64) float64 { return -(x - 3.7) * (x - 3.7) }, 1e-9, 200)
	approx(t, x, 3.7, 1e-6, "brent argmax")
	approx(t, fx, 0, 1e-10, "brent max")
	// Maximum at boundary.
	x, _ = brentMax(0, 1, func(x float64) float64 { return x }, 1e-9, 200)
	approx(t, x, 1, 1e-6, "boundary max")
}

func TestOptimizeBranchRecoverstruth(t *testing.T) {
	// Simulate a long two-taxon alignment with known divergence and check
	// the optimised branch length sums to roughly the truth.
	trueT := 0.2
	tree, err := phylo.ParseNewick("(A:0.1,B:0.1);")
	if err != nil {
		t.Fatal(err)
	}
	m := NewJC69()
	aln, err := Simulate(tree, m, UniformRates(), 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEvaluator(m, UniformRates(), Compress(aln))
	// Start from a wrong guess.
	work, _ := phylo.ParseNewick("(A:0.5,B:0.5);")
	ll0, err := e.LogLikelihood(work)
	if err != nil {
		t.Fatal(err)
	}
	ll1, err := e.OptimizeBranchLengths(work, 4, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if ll1 < ll0 {
		t.Fatalf("optimisation decreased LL: %g -> %g", ll0, ll1)
	}
	total := work.TotalLength()
	if math.Abs(total-trueT) > 0.03 {
		t.Errorf("recovered divergence %g, want ~%g", total, trueT)
	}
}

func TestMLPrefersTrueTopologyFourTaxa(t *testing.T) {
	// Generate data on ((A,B),(C,D)) with short internal branch and check
	// ML scores it above the two alternatives.
	truth, err := phylo.ParseNewick("((A:0.1,B:0.1):0.15,(C:0.1,D:0.1):0.0);")
	if err != nil {
		t.Fatal(err)
	}
	// Use a cleaner truth tree: trifurcating root.
	truth, err = phylo.ParseNewick("((A:0.1,B:0.1):0.15,C:0.1,D:0.1);")
	if err != nil {
		t.Fatal(err)
	}
	m := NewJC69()
	aln, err := Simulate(truth, m, UniformRates(), 2000, 12)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEvaluator(m, UniformRates(), Compress(aln))
	topologies := map[string]string{
		"AB|CD": "((A:0.1,B:0.1):0.1,C:0.1,D:0.1);",
		"AC|BD": "((A:0.1,C:0.1):0.1,B:0.1,D:0.1);",
		"AD|BC": "((A:0.1,D:0.1):0.1,B:0.1,C:0.1);",
	}
	lls := map[string]float64{}
	for name, nw := range topologies {
		tr, err := phylo.ParseNewick(nw)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := e.OptimizeBranchLengths(tr, 3, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		lls[name] = ll
	}
	if lls["AB|CD"] <= lls["AC|BD"] || lls["AB|CD"] <= lls["AD|BC"] {
		t.Errorf("true topology not preferred: %v", lls)
	}
}

func TestOptimizeLocal(t *testing.T) {
	tree, err := phylo.ParseNewick("((A:0.2,B:0.2):0.1,C:0.2,D:0.2);")
	if err != nil {
		t.Fatal(err)
	}
	m := NewJC69()
	aln, err := Simulate(tree, m, UniformRates(), 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEvaluator(m, UniformRates(), Compress(aln))
	work := tree.Clone()
	leafA := work.FindLeaf("A")
	ll0, err := e.LogLikelihood(work)
	if err != nil {
		t.Fatal(err)
	}
	ll1, err := e.OptimizeLocal(work, []*phylo.Node{leafA}, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ll1 < ll0-1e-9 {
		t.Errorf("local optimisation decreased LL: %g -> %g", ll0, ll1)
	}
}

func TestSimulateProperties(t *testing.T) {
	tree, err := RandomTree([]string{"A", "B", "C", "D", "E", "F"}, 0.05, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.4, 0.1, 0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Simulate(tree, m, UniformRates(), 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Simulate(tree, m, UniformRates(), 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a1.NTaxa() != 6 || a1.NSites() != 1000 {
		t.Fatalf("bad alignment shape %dx%d", a1.NTaxa(), a1.NSites())
	}
	for i := range a1.Rows {
		if string(a1.Rows[i].Residues) != string(a2.Rows[i].Residues) {
			t.Fatal("same seed produced different alignments")
		}
	}
	// Base composition near equilibrium (generous tolerance).
	counts := [4]int{}
	total := 0
	for _, r := range a1.Rows {
		for _, b := range r.Residues {
			counts[StateIndex(b)]++
			total++
		}
	}
	for i, c := range counts {
		got := float64(c) / float64(total)
		if math.Abs(got-m.Pi[i]) > 0.05 {
			t.Errorf("base %d frequency %g far from pi %g", i, got, m.Pi[i])
		}
	}
}

func TestRandomTreeProperties(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e", "f", "g"}
	tr, err := RandomTree(taxa, 0.1, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NLeaves() != 7 {
		t.Fatalf("%d leaves", tr.NLeaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomTree([]string{"a"}, 0.1, 0.2, 5); err == nil {
		t.Error("RandomTree with 1 taxon accepted")
	}
}
