package likelihood

import (
	"math"

	"fmt"

	"repro/internal/phylo"
	"repro/internal/seq"
)

// This file implements model-parameter estimation — the "good model fit"
// half of DPRml's advertised strength ("some of these earlier parallel
// programs only allowed ... a very limited number of DNA substitution
// models, which often leads to a poor model fit resulting in sub-optimal
// trees"). Parameters (transition/transversion ratio kappa, gamma shape
// alpha) are optimised by Brent's method on the profile likelihood of a
// fixed tree; base frequencies are estimated empirically from the data.

// EmpiricalFrequencies counts base frequencies over an alignment (ambiguous
// sites are skipped), with a small pseudocount so no frequency is zero.
func EmpiricalFrequencies(a *seq.Alignment) [4]float64 {
	var counts [4]float64
	for _, row := range a.Rows {
		for i := 0; i < len(row.Residues); i++ {
			if s := StateIndex(row.Residues[i]); s >= 0 {
				counts[s]++
			}
		}
	}
	var total float64
	for i := range counts {
		counts[i]++ // pseudocount
		total += counts[i]
	}
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

// EstimateKappaOptions tunes EstimateKappa.
type EstimateKappaOptions struct {
	// Lo and Hi bound the kappa search (defaults 0.2 and 40).
	Lo, Hi float64
	// Tol is Brent's x tolerance (default 1e-3).
	Tol float64
	// GammaAlpha > 0 with GammaCategories > 1 evaluates under gamma rates.
	GammaAlpha      float64
	GammaCategories int
}

func (o *EstimateKappaOptions) applyDefaults() {
	if o.Lo <= 0 {
		o.Lo = 0.2
	}
	if o.Hi <= o.Lo {
		o.Hi = 40
	}
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
}

// EstimateKappa finds the HKY85 transition/transversion ratio maximising
// the likelihood of the alignment on the given fixed tree (branch lengths
// held fixed; base frequencies empirical). Returns (kappa, logL).
func EstimateKappa(t *phylo.Tree, a *seq.Alignment, opts EstimateKappaOptions) (float64, float64, error) {
	opts.applyDefaults()
	pi := EmpiricalFrequencies(a)
	data := Compress(a)
	rates := UniformRates()
	if opts.GammaCategories > 1 {
		var err error
		rates, err = DiscreteGamma(opts.GammaAlpha, opts.GammaCategories)
		if err != nil {
			return 0, 0, err
		}
	}
	var evalErr error
	f := func(kappa float64) float64 {
		m, err := NewHKY85(kappa, pi)
		if err != nil {
			evalErr = err
			return negInf
		}
		e, err := NewEvaluator(m, rates, data)
		if err != nil {
			evalErr = err
			return negInf
		}
		ll, err := e.LogLikelihood(t)
		if err != nil {
			evalErr = err
			return negInf
		}
		return ll
	}
	kappa, ll := brentMax(opts.Lo, opts.Hi, f, opts.Tol, 100)
	if evalErr != nil {
		return 0, 0, fmt.Errorf("likelihood: kappa estimation: %w", evalErr)
	}
	return kappa, ll, nil
}

// EstimateAlpha finds the discrete-gamma shape parameter maximising the
// likelihood of the alignment on the given fixed tree under the given
// model. Returns (alpha, logL).
func EstimateAlpha(t *phylo.Tree, a *seq.Alignment, m *Model, categories int, tol float64) (float64, float64, error) {
	if categories < 2 {
		return 0, 0, fmt.Errorf("likelihood: alpha estimation needs >= 2 rate categories, got %d", categories)
	}
	if tol <= 0 {
		tol = 1e-3
	}
	data := Compress(a)
	var evalErr error
	f := func(alpha float64) float64 {
		rates, err := DiscreteGamma(alpha, categories)
		if err != nil {
			evalErr = err
			return negInf
		}
		e, err := NewEvaluator(m, rates, data)
		if err != nil {
			evalErr = err
			return negInf
		}
		ll, err := e.LogLikelihood(t)
		if err != nil {
			evalErr = err
			return negInf
		}
		return ll
	}
	// Alpha below ~0.05 is numerically hostile (quantiles explode) and
	// biologically implausible; 20 is effectively rate homogeneity.
	alpha, ll := brentMax(0.05, 20, f, tol, 100)
	if evalErr != nil {
		return 0, 0, fmt.Errorf("likelihood: alpha estimation: %w", evalErr)
	}
	return alpha, ll, nil
}

// negInf is the score brentMax sees when an evaluation fails.
var negInf = math.Inf(-1)
