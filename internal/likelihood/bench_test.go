package likelihood

import (
	"fmt"
	"testing"

	"repro/internal/phylo"
	"repro/internal/seq"
)

func benchFixture(b *testing.B, nTaxa, nSites int) (*phylo.Tree, *Model, *seq.Alignment) {
	b.Helper()
	taxa := make([]string, nTaxa)
	for i := range taxa {
		taxa[i] = fmt.Sprintf("t%02d", i)
	}
	tree, err := RandomTree(taxa, 0.05, 0.3, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	aln, err := Simulate(tree, m, UniformRates(), nSites, 4)
	if err != nil {
		b.Fatal(err)
	}
	return tree, m, aln
}

// BenchmarkLogLikelihood is the hot loop of every DPRml work unit.
func BenchmarkLogLikelihood(b *testing.B) {
	for _, size := range []struct{ taxa, sites int }{{10, 500}, {20, 1000}, {50, 1000}} {
		b.Run(fmt.Sprintf("taxa%d_sites%d", size.taxa, size.sites), func(b *testing.B) {
			tree, m, aln := benchFixture(b, size.taxa, size.sites)
			e, err := NewEvaluator(m, UniformRates(), Compress(aln))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.LogLikelihood(tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLogLikelihoodGamma4(b *testing.B) {
	tree, m, aln := benchFixture(b, 20, 1000)
	rates, err := DiscreteGamma(0.5, 4)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(m, rates, Compress(aln))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.LogLikelihood(tree); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitionMatrix(b *testing.B) {
	m, err := NewGTR([6]float64{1, 2, 1, 1, 3, 1}, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	var p [NStates][NStates]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TransitionMatrix(0.1+float64(i%10)*0.05, &p)
	}
}

func BenchmarkOptimizeBranchLengths(b *testing.B) {
	tree, m, aln := benchFixture(b, 10, 500)
	e, err := NewEvaluator(m, UniformRates(), Compress(aln))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := tree.Clone()
		if _, err := e.OptimizeBranchLengths(work, 1, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompress(b *testing.B) {
	_, _, aln := benchFixture(b, 20, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(aln)
	}
}
