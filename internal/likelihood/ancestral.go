package likelihood

import (
	"fmt"
	"math"

	"repro/internal/phylo"
)

// Marginal ancestral sequence reconstruction at the root — a standard PAL
// facility: given the tree and model, the posterior distribution over the
// root's state at each site is Pi_i * L_root,i / sum_j Pi_j * L_root,j
// (with gamma categories averaged). The root of the (arbitrarily rooted)
// tree is what DPRml reports, so "the root sequence" is the ancestral
// sequence of the whole taxon set under the pulley principle.

// AncestralResult holds the per-site root state posteriors.
type AncestralResult struct {
	// Sequence is the maximum-posterior base per site (A/C/G/T).
	Sequence []byte
	// Posterior[s] is the probability of Sequence[s] at site s.
	Posterior []float64
}

// AncestralRoot computes the marginal ancestral reconstruction at the
// tree's root. The evaluator's scratch state is reused, so it must not be
// shared across goroutines.
func (e *Evaluator) AncestralRoot(t *phylo.Tree) (*AncestralResult, error) {
	// Run the pruning pass to populate the root CLV.
	if _, err := e.LogLikelihood(t); err != nil {
		return nil, err
	}
	ncat := e.Rates.NCategories()
	npat := e.Data.NPatterns()
	stride := npat * NStates
	root := e.clv[t.Root.ID]

	bases := []byte("ACGT")
	patBase := make([]byte, npat)
	patPost := make([]float64, npat)
	for p := 0; p < npat; p++ {
		var post [NStates]float64
		var total float64
		for cat := 0; cat < ncat; cat++ {
			b := cat*stride + p*NStates
			for i := 0; i < NStates; i++ {
				v := e.Model.Pi[i] * root[b+i]
				post[i] += v
				total += v
			}
		}
		if total <= 0 {
			return nil, fmt.Errorf("likelihood: zero root likelihood at pattern %d", p)
		}
		bestI, bestV := 0, post[0]
		for i := 1; i < NStates; i++ {
			if post[i] > bestV {
				bestI, bestV = i, post[i]
			}
		}
		patBase[p] = bases[bestI]
		patPost[p] = bestV / total
	}

	// Expand patterns back to original site order.
	res := &AncestralResult{
		Sequence:  make([]byte, 0, e.Data.NSites),
		Posterior: make([]float64, 0, e.Data.NSites),
	}
	patOf, err := e.patternOfSite()
	if err != nil {
		return nil, err
	}
	for s := 0; s < e.Data.NSites; s++ {
		p := patOf[s]
		res.Sequence = append(res.Sequence, patBase[p])
		res.Posterior = append(res.Posterior, patPost[p])
	}
	return res, nil
}

// patternOfSite reconstructs the site -> pattern mapping. Compress folds
// identical columns in first-occurrence order, so replaying its logic over
// the stored patterns recovers the map without keeping the original
// alignment.
func (e *Evaluator) patternOfSite() ([]int, error) {
	if len(e.Data.siteToPattern) == e.Data.NSites && e.Data.NSites > 0 {
		return e.Data.siteToPattern, nil
	}
	return nil, fmt.Errorf("likelihood: alignment was not compressed with site mapping (use Compress)")
}

// SiteLogLikelihoods returns the per-site log-likelihood contributions, in
// original column order. Their sum equals LogLikelihood; per-site values
// feed topology tests (KH/SH) and model diagnostics.
func (e *Evaluator) SiteLogLikelihoods(t *phylo.Tree) ([]float64, error) {
	if _, err := e.LogLikelihood(t); err != nil {
		return nil, err
	}
	ncat := e.Rates.NCategories()
	npat := e.Data.NPatterns()
	stride := npat * NStates
	root := e.clv[t.Root.ID]
	catW := 1.0 / float64(ncat)
	patLL := make([]float64, npat)
	for p := 0; p < npat; p++ {
		site := 0.0
		for cat := 0; cat < ncat; cat++ {
			base := cat*stride + p*NStates
			for i := 0; i < NStates; i++ {
				site += e.Model.Pi[i] * root[base+i]
			}
		}
		site *= catW
		if site <= 0 {
			return nil, fmt.Errorf("likelihood: zero site likelihood at pattern %d", p)
		}
		patLL[p] = math.Log(site) + e.logScale[p]
	}
	patOf, err := e.patternOfSite()
	if err != nil {
		return nil, err
	}
	out := make([]float64, e.Data.NSites)
	for s := range out {
		out[s] = patLL[patOf[s]]
	}
	return out, nil
}
