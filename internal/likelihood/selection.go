package likelihood

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/phylo"
	"repro/internal/seq"
)

// Model selection by information criteria. DPRml's pitch is that the wide
// model menu avoids the "poor model fit resulting in sub-optimal trees" of
// earlier parallel programs; this file adds the standard way to *choose*
// from that menu: fit each candidate on a fixed (e.g. neighbor-joining)
// tree and rank by AIC/BIC.

// CandidateFit records one fitted model in a selection run.
type CandidateFit struct {
	// Spec is a ModelByName string rebuilding the fitted model.
	Spec string
	// Name is the model family (JC69, K80, ...).
	Name string
	// LogL is the maximised log-likelihood on the selection tree.
	LogL float64
	// K is the number of free model parameters charged by AIC/BIC
	// (substitution parameters + free base frequencies; branch lengths are
	// shared by all candidates on the fixed tree, so they cancel).
	K int
	// AIC = 2K - 2 logL; BIC = K ln(n) - 2 logL with n alignment sites.
	AIC, BIC float64
}

// SelectModelOptions tunes SelectModel.
type SelectModelOptions struct {
	// Criterion is "aic" (default) or "bic".
	Criterion string
	// Tol is the Brent tolerance for parameter fits.
	Tol float64
}

// SelectModel fits the nested DNA model ladder JC69 → K80 → F81 → HKY85 on
// the given fixed tree and returns the candidates sorted best-first by the
// chosen criterion. Kappa-bearing models get their kappa optimised;
// frequency-bearing models use empirical frequencies (the standard "+F"
// convention, charged 3 parameters).
func SelectModel(t *phylo.Tree, a *seq.Alignment, opts SelectModelOptions) ([]CandidateFit, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-3
	}
	switch opts.Criterion {
	case "", "aic", "bic":
	default:
		return nil, fmt.Errorf("likelihood: unknown criterion %q (have aic, bic)", opts.Criterion)
	}
	data := Compress(a)
	pi := EmpiricalFrequencies(a)
	n := float64(a.NSites())

	score := func(m *Model) (float64, error) {
		e, err := NewEvaluator(m, UniformRates(), data)
		if err != nil {
			return 0, err
		}
		return e.LogLikelihood(t)
	}

	var fits []CandidateFit

	// JC69: no free parameters.
	{
		ll, err := score(NewJC69())
		if err != nil {
			return nil, err
		}
		fits = append(fits, CandidateFit{Spec: "JC69", Name: "JC69", LogL: ll, K: 0})
	}

	// K80: kappa (1 parameter), uniform frequencies.
	{
		var evalErr error
		f := func(kappa float64) float64 {
			m, err := NewK80(kappa)
			if err != nil {
				evalErr = err
				return negInf
			}
			ll, err := score(m)
			if err != nil {
				evalErr = err
				return negInf
			}
			return ll
		}
		kappa, ll := brentMax(0.2, 40, f, opts.Tol, 100)
		if evalErr != nil {
			return nil, evalErr
		}
		fits = append(fits, CandidateFit{
			Spec: fmt.Sprintf("K80:kappa=%.4f", kappa), Name: "K80", LogL: ll, K: 1,
		})
	}

	// F81: empirical frequencies (3 free parameters), no kappa.
	{
		m, err := NewF81(pi)
		if err != nil {
			return nil, err
		}
		ll, err := score(m)
		if err != nil {
			return nil, err
		}
		fits = append(fits, CandidateFit{
			Spec: fmt.Sprintf("F81:piA=%.4f,piC=%.4f,piG=%.4f,piT=%.4f", pi[0], pi[1], pi[2], pi[3]),
			Name: "F81", LogL: ll, K: 3,
		})
	}

	// HKY85: kappa + empirical frequencies (4 parameters).
	{
		kappa, ll, err := EstimateKappa(t, a, EstimateKappaOptions{Tol: opts.Tol})
		if err != nil {
			return nil, err
		}
		fits = append(fits, CandidateFit{
			Spec: fmt.Sprintf("HKY85:kappa=%.4f,piA=%.4f,piC=%.4f,piG=%.4f,piT=%.4f",
				kappa, pi[0], pi[1], pi[2], pi[3]),
			Name: "HKY85", LogL: ll, K: 4,
		})
	}

	for i := range fits {
		fits[i].AIC = 2*float64(fits[i].K) - 2*fits[i].LogL
		fits[i].BIC = float64(fits[i].K)*math.Log(n) - 2*fits[i].LogL
	}
	sort.Slice(fits, func(i, j int) bool {
		if opts.Criterion == "bic" {
			return fits[i].BIC < fits[j].BIC
		}
		return fits[i].AIC < fits[j].AIC
	})
	return fits, nil
}
