package likelihood

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

// randModel builds a random valid GTR model from quick-generated values.
func randModel(rng *rand.Rand) *Model {
	var rates [6]float64
	for i := range rates {
		rates[i] = 0.2 + 5*rng.Float64()
	}
	var pi [4]float64
	for i := range pi {
		pi[i] = 0.1 + rng.Float64()
	}
	m, err := NewGTR(rates, pi)
	if err != nil {
		panic(err)
	}
	return m
}

// TestDetailedBalanceProperty checks time reversibility: pi_i P_ij(t) ==
// pi_j P_ji(t) for random GTR models and branch lengths — the property the
// whole pruning likelihood relies on.
func TestDetailedBalanceProperty(t *testing.T) {
	f := func(seed int64, tRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng)
		bl := math.Abs(tRaw)
		bl = math.Mod(bl, 5) + 1e-4
		var p [NStates][NStates]float64
		m.TransitionMatrix(bl, &p)
		for i := 0; i < NStates; i++ {
			for j := 0; j < NStates; j++ {
				lhs := m.Pi[i] * p[i][j]
				rhs := m.Pi[j] * p[j][i]
				if math.Abs(lhs-rhs) > 1e-9 {
					t.Logf("detailed balance broken at (%d,%d): %g vs %g (t=%g)", i, j, lhs, rhs, bl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestChapmanKolmogorovProperty: P(s+t) == P(s) P(t) for random models.
func TestChapmanKolmogorovProperty(t *testing.T) {
	f := func(seed int64, sRaw, tRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng)
		s := math.Mod(math.Abs(sRaw), 2) + 1e-4
		u := math.Mod(math.Abs(tRaw), 2) + 1e-4
		var ps, pt, pst [NStates][NStates]float64
		m.TransitionMatrix(s, &ps)
		m.TransitionMatrix(u, &pt)
		m.TransitionMatrix(s+u, &pst)
		for i := 0; i < NStates; i++ {
			for j := 0; j < NStates; j++ {
				var dot float64
				for k := 0; k < NStates; k++ {
					dot += ps[i][k] * pt[k][j]
				}
				if math.Abs(dot-pst[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStationarityProperty: pi is a left eigenvector of P(t): pi P(t) == pi.
func TestStationarityProperty(t *testing.T) {
	f := func(seed int64, tRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randModel(rng)
		bl := math.Mod(math.Abs(tRaw), 10) + 1e-4
		var p [NStates][NStates]float64
		m.TransitionMatrix(bl, &p)
		for j := 0; j < NStates; j++ {
			var dot float64
			for i := 0; i < NStates; i++ {
				dot += m.Pi[i] * p[i][j]
			}
			if math.Abs(dot-m.Pi[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLikelihoodInvariantToRowOrder: shuffling alignment rows must not
// change the tree likelihood (taxa are matched by name, not index).
func TestLikelihoodInvariantToRowOrder(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e"}
	tree, err := RandomTree(taxa, 0.05, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(3, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, UniformRates(), 400, 18)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewEvaluator(m, UniformRates(), Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	ll1, err := e1.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the alignment with the row order reversed.
	rev := make([]*seq.Sequence, len(aln.Rows))
	for i, r := range aln.Rows {
		rev[len(aln.Rows)-1-i] = r
	}
	aln2, err := seq.NewAlignment(rev)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEvaluator(m, UniformRates(), Compress(aln2))
	if err != nil {
		t.Fatal(err)
	}
	ll2, err := e2.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll1-ll2) > 1e-9 {
		t.Errorf("row order changed logL: %g vs %g", ll1, ll2)
	}
}
