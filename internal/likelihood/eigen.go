// Package likelihood implements the maximum-likelihood machinery DPRml
// delegates to PAL v1.4 in the paper: time-reversible DNA substitution
// models (JC69 through GTR), discrete-gamma rate heterogeneity, Felsenstein
// pruning with site-pattern compression and numerical scaling, Brent
// branch-length optimisation, and sequence simulation along a tree.
package likelihood

import (
	"fmt"
	"math"
)

// jacobiEigen diagonalises a real symmetric matrix using the cyclic Jacobi
// method: A = V · diag(values) · V^T. The input is not modified. It returns
// an error if the iteration fails to converge (practically impossible for
// the well-conditioned 4x4 matrices substitution models produce).
func jacobiEigen(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	// Working copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("likelihood: jacobi: matrix not square")
		}
	}
	v := identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-30 {
			values = make([]float64, n)
			for i := 0; i < n; i++ {
				values[i] = m[i][i]
			}
			return values, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				mpq := m[p][q]
				m[p][p] -= t * mpq
				m[q][q] += t * mpq
				m[p][q] = 0
				m[q][p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						mip, miq := m[i][p], m[i][q]
						m[i][p] = mip - s*(miq+tau*mip)
						m[p][i] = m[i][p]
						m[i][q] = miq + s*(mip-tau*miq)
						m[q][i] = m[i][q]
					}
					vip, viq := v[i][p], v[i][q]
					v[i][p] = vip - s*(viq+tau*vip)
					v[i][q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("likelihood: jacobi failed to converge in %d sweeps", 100)
}

func identity(n int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	return v
}

// matMul returns a·b for dense square matrices.
func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}
