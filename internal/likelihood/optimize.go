package likelihood

import (
	"fmt"
	"math"

	"repro/internal/phylo"
)

// Branch length bounds used during optimisation. Zero-length branches are
// numerically hostile (zero transition probabilities off-diagonal), so the
// lower bound is a small epsilon.
const (
	MinBranchLength = 1e-8
	MaxBranchLength = 10.0
)

// brentMax maximises f on [a, b] with Brent's method (golden section with
// parabolic acceleration). Returns the argmax and the maximum. tol is the
// absolute x tolerance.
func brentMax(a, b float64, f func(float64) float64, tol float64, maxIter int) (float64, float64) {
	const gold = 0.3819660112501051
	x := a + gold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		tol1 := tol + 1e-10*math.Abs(x)
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabolic fit through x, v, w (on -f for maximisation).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, m-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = gold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu >= fx {
			if u < x {
				b = x
			} else {
				a = x
			}
			v, w = w, x
			fv, fw = fw, fx
			x, fx = u, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu >= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu >= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// OptimizeBranch maximises the tree log-likelihood over the length of a
// single branch (identified by its child node), holding everything else
// fixed. Returns the new log-likelihood.
func (e *Evaluator) OptimizeBranch(t *phylo.Tree, n *phylo.Node, tol float64) (float64, error) {
	if n.Parent == nil {
		return 0, fmt.Errorf("likelihood: cannot optimise the root's parent edge")
	}
	var evalErr error
	f := func(x float64) float64 {
		n.Length = x
		ll, err := e.LogLikelihood(t)
		if err != nil {
			evalErr = err
			return math.Inf(-1)
		}
		return ll
	}
	best, bestLL := brentMax(MinBranchLength, MaxBranchLength, f, tol, 100)
	if evalErr != nil {
		return 0, evalErr
	}
	n.Length = best
	return bestLL, nil
}

// OptimizeBranchLengths runs `rounds` passes of per-branch Brent
// optimisation over every edge of the tree and returns the final
// log-likelihood. This is the full smoothing pass fastDNAml applies after
// each insertion stage.
func (e *Evaluator) OptimizeBranchLengths(t *phylo.Tree, rounds int, tol float64) (float64, error) {
	ll := math.Inf(-1)
	for r := 0; r < rounds; r++ {
		prev := ll
		for _, edge := range t.Edges() {
			var err error
			ll, err = e.OptimizeBranch(t, edge.Child, tol)
			if err != nil {
				return 0, err
			}
		}
		if !math.IsInf(prev, -1) && ll-prev < 1e-4 {
			break
		}
	}
	return ll, nil
}

// OptimizeLocal optimises only the given nodes' branch lengths (one pass
// each, repeated `rounds` times). DPRml uses this to score candidate
// insertion points cheaply: only the three branches created by the
// insertion are optimised.
func (e *Evaluator) OptimizeLocal(t *phylo.Tree, nodes []*phylo.Node, rounds int, tol float64) (float64, error) {
	var ll float64
	var err error
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			if n == nil || n.Parent == nil {
				continue
			}
			ll, err = e.OptimizeBranch(t, n, tol)
			if err != nil {
				return 0, err
			}
		}
	}
	if len(nodes) == 0 {
		return e.LogLikelihood(t)
	}
	return ll, nil
}
