package likelihood

import (
	"math"
	"testing"
)

func TestEmpiricalFrequencies(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e", "f"}
	tree, err := RandomTree(taxa, 0.05, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	pi := [4]float64{0.4, 0.1, 0.2, 0.3}
	m, err := NewHKY85(2, pi)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, UniformRates(), 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := EmpiricalFrequencies(aln)
	var sum float64
	for i, g := range got {
		sum += g
		if math.Abs(g-pi[i]) > 0.03 {
			t.Errorf("frequency %d: %.3f, want ~%.3f", i, g, pi[i])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("frequencies sum to %g", sum)
	}
}

func TestEstimateKappaRecoversTruth(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	tree, err := RandomTree(taxa, 0.05, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	const trueKappa = 4.0
	m, err := NewHKY85(trueKappa, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, UniformRates(), 4000, 12)
	if err != nil {
		t.Fatal(err)
	}
	kappa, ll, err := EstimateKappa(tree, aln, EstimateKappaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ll, 0) || ll >= 0 {
		t.Fatalf("bad logL %g", ll)
	}
	if kappa < trueKappa*0.8 || kappa > trueKappa*1.25 {
		t.Errorf("estimated kappa %.3f, truth %.1f", kappa, trueKappa)
	}
	// The fitted kappa's likelihood must beat a deliberately wrong kappa.
	pi := EmpiricalFrequencies(aln)
	wrong, err := NewHKY85(1, pi)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(wrong, UniformRates(), Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	llWrong, err := e.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	if ll <= llWrong {
		t.Errorf("fitted logL %.2f not above kappa=1 logL %.2f", ll, llWrong)
	}
}

func TestEstimateAlphaRecoversTruth(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	tree, err := RandomTree(taxa, 0.08, 0.4, 21)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	const trueAlpha = 0.4
	rates, err := DiscreteGamma(trueAlpha, 4)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, rates, 4000, 22)
	if err != nil {
		t.Fatal(err)
	}
	alpha, ll, err := EstimateAlpha(tree, aln, m, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if ll >= 0 {
		t.Fatalf("bad logL %g", ll)
	}
	// Alpha is weakly identified on modest data; accept a factor-2 band.
	if alpha < trueAlpha/2 || alpha > trueAlpha*2 {
		t.Errorf("estimated alpha %.3f, truth %.2f", alpha, trueAlpha)
	}
}

func TestEstimateAlphaValidation(t *testing.T) {
	taxa := []string{"a", "b", "c", "d"}
	tree, _ := RandomTree(taxa, 0.1, 0.2, 1)
	m := NewJC69()
	aln, err := Simulate(tree, m, UniformRates(), 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EstimateAlpha(tree, aln, m, 1, 1e-3); err == nil {
		t.Error("1 category accepted")
	}
}

func TestEstimateKappaDefaultsApplied(t *testing.T) {
	var o EstimateKappaOptions
	o.applyDefaults()
	if o.Lo <= 0 || o.Hi <= o.Lo || o.Tol <= 0 {
		t.Errorf("bad defaults: %+v", o)
	}
}
