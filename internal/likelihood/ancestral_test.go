package likelihood

import (
	"testing"

	"repro/internal/phylo"
	"repro/internal/seq"
)

func TestAncestralRootRecoversRootSequence(t *testing.T) {
	// Simulate with short branches from a known root: Simulate draws the
	// root sequence from Pi, evolves it down the tree. With very short
	// branches, the leaves are nearly identical to the root, so the
	// reconstruction should match the shared majority state at almost
	// every site with high posterior.
	taxa := []string{"a", "b", "c", "d", "e", "f"}
	tree, err := RandomTree(taxa, 0.01, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, UniformRates(), 500, 6)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(m, UniformRates(), Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AncestralRoot(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) != 500 || len(res.Posterior) != 500 {
		t.Fatalf("reconstruction length %d/%d, want 500", len(res.Sequence), len(res.Posterior))
	}
	// Site-wise majority over the leaves approximates the root on short
	// branches; the reconstruction should agree with it overwhelmingly.
	agree, highPost := 0, 0
	for s := 0; s < 500; s++ {
		counts := map[byte]int{}
		for _, row := range aln.Rows {
			counts[row.Residues[s]]++
		}
		var maj byte
		best := -1
		for b, n := range counts {
			if n > best {
				maj, best = b, n
			}
		}
		if res.Sequence[s] == maj {
			agree++
		}
		if res.Posterior[s] > 0.9 {
			highPost++
		}
		if res.Posterior[s] < 0.25-1e-9 || res.Posterior[s] > 1+1e-9 {
			t.Fatalf("site %d: posterior %g out of range", s, res.Posterior[s])
		}
	}
	if agree < 480 {
		t.Errorf("reconstruction agrees with leaf majority at %d/500 sites", agree)
	}
	if highPost < 450 {
		t.Errorf("only %d/500 sites with posterior > 0.9 on near-identical leaves", highPost)
	}
}

func TestAncestralRootUniformWhenUninformative(t *testing.T) {
	// Two taxa with maximally long branches: the root posterior should be
	// pulled toward the equilibrium frequencies (far below 0.9).
	aln, err := seq.NewAlignment([]*seq.Sequence{
		seq.NewSequence("a", "AAAA"),
		seq.NewSequence("b", "CCCC"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := phylo.ParseNewick("(a:8,b:8);")
	if err != nil {
		t.Fatal(err)
	}
	m := NewJC69()
	e, err := NewEvaluator(m, UniformRates(), Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AncestralRoot(tree)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range res.Posterior {
		if p > 0.5 {
			t.Errorf("site %d: posterior %g despite saturated branches", s, p)
		}
	}
}

func TestAncestralRootGamma(t *testing.T) {
	taxa := []string{"a", "b", "c", "d"}
	tree, err := RandomTree(taxa, 0.05, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := NewJC69()
	rates, err := DiscreteGamma(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, rates, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(m, rates, Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AncestralRoot(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) != 200 {
		t.Fatalf("length %d", len(res.Sequence))
	}
}

func TestSiteLogLikelihoodsSumToTotal(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e"}
	tree, err := RandomTree(taxa, 0.05, 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := DiscreteGamma(0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(tree, m, rates, 300, 14)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(m, rates, Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	total, err := e.LogLikelihood(tree)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := e.SiteLogLikelihoods(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 300 {
		t.Fatalf("%d site values", len(sites))
	}
	var sum float64
	for _, v := range sites {
		if v >= 0 {
			t.Fatalf("non-negative site logL %g", v)
		}
		sum += v
	}
	if d := sum - total; d > 1e-8 || d < -1e-8 {
		t.Errorf("site logLs sum to %g, total is %g", sum, total)
	}
}
