package likelihood

import (
	"testing"

	"repro/internal/phylo"
)

func khFixture(t *testing.T) (*Evaluator, *phylo.Tree) {
	t.Helper()
	taxa := []string{"a", "b", "c", "d", "e", "f"}
	truth, err := RandomTree(taxa, 0.08, 0.3, 33)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHKY85(2, [4]float64{0.3, 0.2, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := Simulate(truth, m, UniformRates(), 2000, 34)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(m, UniformRates(), Compress(aln))
	if err != nil {
		t.Fatal(err)
	}
	return e, truth
}

func TestKHIdenticalTrees(t *testing.T) {
	e, truth := khFixture(t)
	res, err := e.KHTest(truth, truth.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta != 0 || res.PValue != 1 {
		t.Errorf("identical trees: delta %g, p %g", res.Delta, res.PValue)
	}
}

func TestKHRejectsScrambledTree(t *testing.T) {
	e, truth := khFixture(t)
	// Scramble: swap leaf names until the unrooted topology changes (a
	// non-sibling swap always does on an asymmetric tree).
	var wrong *phylo.Tree
	names := truth.LeafNames()
	for i := 1; i < len(names) && wrong == nil; i++ {
		cand := truth.Clone()
		la, lb := cand.FindLeaf(names[0]), cand.FindLeaf(names[i])
		la.Name, lb.Name = lb.Name, la.Name
		if !phylo.SameTopology(cand, truth) {
			wrong = cand
		}
	}
	if wrong == nil {
		t.Fatal("could not build a different topology by leaf swaps")
	}
	// Optimise branch lengths of both for a fair comparison.
	tt := truth.Clone()
	if _, err := e.OptimizeBranchLengths(tt, 2, 1e-4); err != nil {
		t.Fatal(err)
	}
	if _, err := e.OptimizeBranchLengths(wrong, 2, 1e-4); err != nil {
		t.Fatal(err)
	}
	res, err := e.KHTest(tt, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta <= 0 {
		t.Fatalf("true tree not favoured: delta %g", res.Delta)
	}
	if res.PValue > 0.01 {
		t.Errorf("2000 sites failed to reject a scrambled topology: p = %g (delta %g, se %g)",
			res.PValue, res.Delta, res.StdErr)
	}
}

func TestKHNearTreesNotRejected(t *testing.T) {
	e, truth := khFixture(t)
	// Compare the true tree against itself with perturbed branch lengths:
	// delta should be small relative to its standard error after both are
	// re-optimised... instead simply shrink one branch slightly without
	// reoptimising — the difference must be non-significant.
	near := truth.Clone()
	for _, edge := range near.Edges() {
		edge.Child.Length *= 1.02
		break
	}
	res, err := e.KHTest(truth, near)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.05 {
		t.Errorf("trivial branch-length jitter declared significant: p = %g", res.PValue)
	}
}

func TestNormalTail(t *testing.T) {
	if p := normalTail(0); p < 0.49 || p > 0.51 {
		t.Errorf("normalTail(0) = %g", p)
	}
	if p := normalTail(1.96); p < 0.024 || p > 0.026 {
		t.Errorf("normalTail(1.96) = %g", p)
	}
	if p := normalTail(10); p > 1e-20 {
		t.Errorf("normalTail(10) = %g", p)
	}
}
