package likelihood

import (
	"fmt"
	"math"

	"repro/internal/phylo"
	"repro/internal/seq"
)

// CompressedAlignment is a site-pattern-compressed DNA alignment: identical
// columns are merged and weighted, which is the single most important
// optimisation in ML phylogenetics.
type CompressedAlignment struct {
	Taxa []string
	// Patterns[p] holds one state mask per taxon (same order as Taxa).
	Patterns [][]uint8
	// Weights[p] is the number of original columns with pattern p.
	Weights []int
	// NSites is the original column count.
	NSites int

	index map[string]int
	// siteToPattern maps each original column to its pattern index
	// (ancestral reconstruction expands patterns back to sites).
	siteToPattern []int
}

// Compress builds the pattern-compressed form of an alignment.
func Compress(a *seq.Alignment) *CompressedAlignment {
	nt, ns := a.NTaxa(), a.NSites()
	c := &CompressedAlignment{
		Taxa:   a.Taxa(),
		NSites: ns,
		index:  make(map[string]int, nt),
	}
	for i, t := range c.Taxa {
		c.index[t] = i
	}
	seen := make(map[string]int)
	col := make([]uint8, nt)
	c.siteToPattern = make([]int, ns)
	for s := 0; s < ns; s++ {
		for t := 0; t < nt; t++ {
			col[t] = StateMask(a.Rows[t].Residues[s])
		}
		key := string(col)
		if p, ok := seen[key]; ok {
			c.Weights[p]++
			c.siteToPattern[s] = p
			continue
		}
		p := len(c.Patterns)
		seen[key] = p
		c.siteToPattern[s] = p
		c.Patterns = append(c.Patterns, append([]uint8(nil), col...))
		c.Weights = append(c.Weights, 1)
	}
	return c
}

// NPatterns returns the number of distinct site patterns.
func (c *CompressedAlignment) NPatterns() int { return len(c.Patterns) }

// TaxonIndex returns the row index of a taxon, or -1.
func (c *CompressedAlignment) TaxonIndex(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	return -1
}

// Evaluator computes log-likelihoods of trees over a fixed alignment,
// substitution model and rate model using Felsenstein's pruning algorithm
// with per-pattern numerical scaling. An Evaluator is not safe for
// concurrent use; create one per goroutine (they share the immutable
// compressed alignment).
type Evaluator struct {
	Model *Model
	Rates *SiteRates
	Data  *CompressedAlignment

	// scratch buffers, resized per tree
	clv      [][]float64 // [nodeID][cat*npat*4]
	logScale []float64   // [npat] accumulated per-pattern scaling
	pmat     [NStates][NStates]float64
}

// NewEvaluator wires together the three inputs of an ML computation.
func NewEvaluator(m *Model, r *SiteRates, data *CompressedAlignment) (*Evaluator, error) {
	if m == nil || r == nil || data == nil {
		return nil, fmt.Errorf("likelihood: NewEvaluator requires model, rates and data")
	}
	if len(data.Patterns) == 0 {
		return nil, fmt.Errorf("likelihood: empty alignment")
	}
	return &Evaluator{Model: m, Rates: r, Data: data}, nil
}

const scaleThreshold = 1e-100

// LogLikelihood computes the log-likelihood of the tree. Every leaf must
// name a row of the alignment. The tree's node IDs are (re)assigned.
func (e *Evaluator) LogLikelihood(t *phylo.Tree) (float64, error) {
	nNodes := t.Index()
	ncat := e.Rates.NCategories()
	npat := e.Data.NPatterns()
	stride := npat * NStates

	if len(e.clv) < nNodes {
		e.clv = make([][]float64, nNodes)
	}
	for id := 0; id < nNodes; id++ {
		if len(e.clv[id]) < ncat*stride {
			e.clv[id] = make([]float64, ncat*stride)
		}
	}
	if len(e.logScale) < npat {
		e.logScale = make([]float64, npat)
	}
	for p := 0; p < npat; p++ {
		e.logScale[p] = 0
	}

	var walkErr error
	t.WalkPost(func(n *phylo.Node) {
		if walkErr != nil {
			return
		}
		if n.IsLeaf() {
			walkErr = e.fillLeaf(n, ncat, npat)
			return
		}
		e.fillInternal(n, ncat, npat)
	})
	if walkErr != nil {
		return 0, walkErr
	}

	root := e.clv[t.Root.ID]
	catW := 1.0 / float64(ncat)
	logL := 0.0
	for p := 0; p < npat; p++ {
		site := 0.0
		for cat := 0; cat < ncat; cat++ {
			base := cat*stride + p*NStates
			for i := 0; i < NStates; i++ {
				site += e.Model.Pi[i] * root[base+i]
			}
		}
		site *= catW
		if site <= 0 {
			return 0, fmt.Errorf("likelihood: zero site likelihood at pattern %d (branch lengths too extreme?)", p)
		}
		logL += float64(e.Data.Weights[p]) * (math.Log(site) + e.logScale[p])
	}
	return logL, nil
}

func (e *Evaluator) fillLeaf(n *phylo.Node, ncat, npat int) error {
	row := e.Data.TaxonIndex(n.Name)
	if row < 0 {
		return fmt.Errorf("likelihood: leaf %q has no alignment row", n.Name)
	}
	clv := e.clv[n.ID]
	stride := npat * NStates
	for p := 0; p < npat; p++ {
		mask := e.Data.Patterns[p][row]
		base := p * NStates
		for i := 0; i < NStates; i++ {
			v := 0.0
			if mask&(1<<uint(i)) != 0 {
				v = 1.0
			}
			clv[base+i] = v
		}
	}
	// Copy category 0 into the remaining categories (leaf CLVs are
	// category-independent).
	for cat := 1; cat < ncat; cat++ {
		copy(clv[cat*stride:(cat+1)*stride], clv[:stride])
	}
	return nil
}

func (e *Evaluator) fillInternal(n *phylo.Node, ncat, npat int) {
	clv := e.clv[n.ID]
	stride := npat * NStates
	for k := 0; k < ncat*stride; k++ {
		clv[k] = 1
	}
	for _, child := range n.Children {
		childCLV := e.clv[child.ID]
		for cat := 0; cat < ncat; cat++ {
			e.Model.TransitionMatrix(child.Length*e.Rates.Rates[cat], &e.pmat)
			cbase := cat * stride
			for p := 0; p < npat; p++ {
				b := cbase + p*NStates
				c0, c1, c2, c3 := childCLV[b], childCLV[b+1], childCLV[b+2], childCLV[b+3]
				clv[b] *= e.pmat[0][0]*c0 + e.pmat[0][1]*c1 + e.pmat[0][2]*c2 + e.pmat[0][3]*c3
				clv[b+1] *= e.pmat[1][0]*c0 + e.pmat[1][1]*c1 + e.pmat[1][2]*c2 + e.pmat[1][3]*c3
				clv[b+2] *= e.pmat[2][0]*c0 + e.pmat[2][1]*c1 + e.pmat[2][2]*c2 + e.pmat[2][3]*c3
				clv[b+3] *= e.pmat[3][0]*c0 + e.pmat[3][1]*c1 + e.pmat[3][2]*c2 + e.pmat[3][3]*c3
			}
		}
	}
	// Per-pattern scaling across categories.
	for p := 0; p < npat; p++ {
		maxV := 0.0
		for cat := 0; cat < ncat; cat++ {
			b := cat*stride + p*NStates
			for i := 0; i < NStates; i++ {
				if clv[b+i] > maxV {
					maxV = clv[b+i]
				}
			}
		}
		if maxV > 0 && maxV < scaleThreshold {
			inv := 1 / maxV
			for cat := 0; cat < ncat; cat++ {
				b := cat*stride + p*NStates
				for i := 0; i < NStates; i++ {
					clv[b+i] *= inv
				}
			}
			e.logScale[p] += math.Log(maxV)
		}
	}
}
