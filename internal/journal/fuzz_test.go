package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// FuzzJournalReplay feeds arbitrary bytes to the WAL reader as a segment
// file. Whatever the corruption — truncation, bit flips, garbage lengths,
// hostile uvarints — Open must never panic, must recover a clean prefix of
// good records, and must leave the directory in a state a second Open
// reads back identically (recovery is deterministic and never half-applies
// a torn record).
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed segment so mutations explore the framing.
	valid := []byte(walHeader)
	for _, r := range sampleFuzzRecords() {
		valid = append(valid, encodeFrame(r)...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte(walHeader))
	f.Add([]byte{})
	f.Add([]byte("DJWAL001\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		opts := Options{SyncInterval: time.Millisecond, MaxRecordBytes: 1 << 20}
		s, rec, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("Open must tolerate any segment content, got %v", err)
		}
		// Re-encoding what was recovered must reproduce a decodable
		// prefix: every surviving record round-trips.
		for i, r := range rec.Tail {
			body := encodeRecord(r)
			back, derr := decodeRecord(body)
			if derr != nil {
				t.Fatalf("record %d does not round-trip: %v", i, derr)
			}
			if !reflect.DeepEqual(normalize(back), normalize(r)) {
				t.Fatalf("record %d changed across re-encode:\n got %+v\nwant %+v", i, back, r)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Determinism: a second recovery over the same directory sees the
		// same records (the fuzzed segment is untouched by recovery).
		s2, rec2, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer s2.Close()
		if len(rec2.Tail) != len(rec.Tail) || rec2.Truncated != rec.Truncated {
			t.Fatalf("recovery is not deterministic: %d/%v then %d/%v",
				len(rec.Tail), rec.Truncated, len(rec2.Tail), rec2.Truncated)
		}
	})
}

func sampleFuzzRecords() []Record {
	return []Record{
		&Submit{ProblemID: "fuzz", Epoch: 1, Kind: "k/v1", State: []byte{1, 2, 3}, Shared: []byte("shared")},
		&Fold{ProblemID: "fuzz", Epoch: 1, UnitID: 42, Payload: []byte("payload")},
		&Forget{ProblemID: "fuzz", Epoch: 1},
		&Meta{EpochSeq: 9},
		&Snapshot{ProblemID: "fuzz", Epoch: 1, Kind: "k/v1", State: []byte{4}, Dispatched: 2, Completed: 1},
	}
}

// normalize maps empty and nil byte fields onto one representation: the
// codec does not distinguish them, so round-trip comparison must not
// either.
func normalize(r Record) Record {
	nz := func(b []byte) []byte {
		if len(b) == 0 {
			return nil
		}
		return b
	}
	switch r := r.(type) {
	case *Submit:
		c := *r
		c.State, c.Shared = nz(c.State), nz(c.Shared)
		return &c
	case *Fold:
		c := *r
		c.Payload = nz(c.Payload)
		return &c
	case *Snapshot:
		c := *r
		c.State, c.Shared = nz(c.State), nz(c.Shared)
		return &c
	}
	return r
}
